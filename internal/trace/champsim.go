package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ChampSim-style line format: one memory instruction per line, the shape
// ChampSim-derived tooling (load-trace CSVs, championship harness dumps)
// exchanges traces in. Each line holds 2-4 comma- or whitespace-separated
// fields:
//
//	<pc> <addr> [<kind> [<nonmem>]]
//
// pc and addr parse like Go literals (0x-prefixed hex or decimal); kind is
// L/LOAD/R/READ/0 for a load (the default) or S/STORE/W/WRITE/1 for a
// store; nonmem is the run of non-memory instructions before this one
// (default 0). Blank lines and lines starting with '#' are skipped. The
// canonical spelling ChampSimWriter emits is "0x<pc>,0x<addr>,L|S,<nonmem>",
// which round-trips every Record field.

// ChampSimReader decodes the line format into Records.
type ChampSimReader struct {
	s    *bufio.Scanner
	line int
}

// NewChampSimReader returns a Reader over ChampSim-style lines.
func NewChampSimReader(r io.Reader) *ChampSimReader {
	return &ChampSimReader{s: bufio.NewScanner(r)}
}

func champSeparator(r rune) bool {
	return r == ',' || r == ' ' || r == '\t' || r == '\r'
}

// Next implements Reader. Malformed lines return ErrCorrupt with the line
// number; a transport error from the underlying reader passes through.
func (c *ChampSimReader) Next() (Record, error) {
	for c.s.Scan() {
		c.line++
		line := strings.TrimSpace(c.s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := parseChampSimLine(line)
		if err != nil {
			return Record{}, fmt.Errorf("line %d: %w", c.line, err)
		}
		return rec, nil
	}
	if err := c.s.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			// No valid line is anywhere near the scanner's token limit:
			// this is binary (or otherwise non-trace) input mistaken for
			// the line format — a malformed-input condition, not a
			// transport failure, so it must carry the typed decode error
			// the ingestion layers key client errors on.
			return Record{}, fmt.Errorf("line %d: %w: line exceeds the maximum length", c.line+1, ErrCorrupt)
		}
		return Record{}, err
	}
	return Record{}, io.EOF
}

func parseChampSimLine(line string) (Record, error) {
	fields := strings.FieldsFunc(line, champSeparator)
	if len(fields) < 2 || len(fields) > 4 {
		return Record{}, fmt.Errorf("%w: %d fields (want pc, addr[, kind[, nonmem]])", ErrCorrupt, len(fields))
	}
	pc, err := strconv.ParseUint(fields[0], 0, 64)
	if err != nil {
		return Record{}, fmt.Errorf("%w: pc %q", ErrCorrupt, fields[0])
	}
	addr, err := strconv.ParseUint(fields[1], 0, 64)
	if err != nil {
		return Record{}, fmt.Errorf("%w: addr %q", ErrCorrupt, fields[1])
	}
	rec := Record{PC: pc, Addr: addr}
	if len(fields) >= 3 {
		switch strings.ToUpper(fields[2]) {
		case "L", "LOAD", "R", "READ", "0":
			rec.Kind = Load
		case "S", "STORE", "W", "WRITE", "1":
			rec.Kind = Store
		default:
			return Record{}, fmt.Errorf("%w: kind %q (want L/LOAD/R/0 or S/STORE/W/1)", ErrCorrupt, fields[2])
		}
	}
	if len(fields) == 4 {
		nonMem, err := strconv.ParseUint(fields[3], 0, 16)
		if err != nil {
			return Record{}, fmt.Errorf("%w: nonmem %q (want 0..65535)", ErrCorrupt, fields[3])
		}
		rec.NonMem = uint16(nonMem)
	}
	return rec, nil
}

// ChampSimWriter encodes records as canonical ChampSim-style lines.
type ChampSimWriter struct {
	w *bufio.Writer
}

// NewChampSimWriter returns a RecordWriter emitting the line format.
func NewChampSimWriter(w io.Writer) *ChampSimWriter {
	return &ChampSimWriter{w: bufio.NewWriter(w)}
}

// Write implements RecordWriter.
func (c *ChampSimWriter) Write(r Record) error {
	kind := byte('L')
	if r.Kind == Store {
		kind = 'S'
	}
	_, err := fmt.Fprintf(c.w, "0x%x,0x%x,%c,%d\n", r.PC, r.Addr, kind, r.NonMem)
	return err
}

// Close implements RecordWriter; the line format needs no footer.
func (c *ChampSimWriter) Close() error { return c.w.Flush() }
