package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("seeds 1 and 2 produced %d identical outputs", same)
	}
}

func TestNewFromStringDeterministic(t *testing.T) {
	a := NewFromString("bwaves_s-2609")
	b := NewFromString("bwaves_s-2609")
	c := NewFromString("mcf_s-1554")
	if a.Uint64() != b.Uint64() {
		t.Error("same name gave different streams")
	}
	a2, c2 := a.Uint64(), c.Uint64()
	if a2 == c2 {
		t.Error("different names gave same stream")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(99)
	if err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(7)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(11)
	const samples = 100000
	sum := 0
	for i := 0; i < samples; i++ {
		sum += r.Geometric(8)
	}
	mean := float64(sum) / samples
	if mean < 6.5 || mean > 9.5 {
		t.Errorf("Geometric(8) mean = %.2f, want ~8", mean)
	}
}

func TestGeometricMinimum(t *testing.T) {
	r := New(13)
	for i := 0; i < 1000; i++ {
		if v := r.Geometric(1); v < 1 {
			t.Fatalf("Geometric returned %d < 1", v)
		}
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := New(17)
	const n = 1000
	counts := make([]int, n)
	for i := 0; i < 100000; i++ {
		v := r.Zipf(n, 1.2)
		if v < 0 || v >= n {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Head must be much hotter than tail.
	head, tail := 0, 0
	for i := 0; i < 10; i++ {
		head += counts[i]
	}
	for i := n - 10; i < n; i++ {
		tail += counts[i]
	}
	if head <= tail*4 {
		t.Errorf("Zipf not skewed: head=%d tail=%d", head, tail)
	}
}

func TestZipfDegenerate(t *testing.T) {
	r := New(19)
	if v := r.Zipf(1, 1.2); v != 0 {
		t.Errorf("Zipf(1) = %d, want 0", v)
	}
	if v := r.Zipf(0, 1.2); v != 0 {
		t.Errorf("Zipf(0) = %d, want 0", v)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(23)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.28 || frac > 0.32 {
		t.Errorf("Bool(0.3) frequency = %.3f", frac)
	}
}
