package prefetchers

import (
	"repro/internal/mem"
	"repro/internal/prefetch"
)

// Berti [Navarro-Torres et al., MICRO 2022] selects, per load PC, the
// local deltas that would have produced *timely* prefetches: a delta
// qualifies when the older access it connects to happened at least one
// fetch latency earlier. We implement the enhanced vBerti the paper
// evaluates: virtual-address operation with cross-page prefetching
// restricted to eight virtual pages (four per direction), the
// configuration §IV-A2 justifies for multi-core timeliness.
//
// Berti has no region-activation gating, so it keeps issuing requests for
// data that is already resident when sweeps repeat — the redundant-
// prefetch behaviour §IV-B3 analyses. Requests are issued regardless of
// residency here; the prefetch queue and issue path model the cost.
type Berti struct {
	table *prefetch.Table[bertiEntry]
	// crossPages bounds |delta| in pages (vBerti: 4 per direction).
	crossPages int64
	// latEMA tracks the observed fetch latency (Berti extends L1D lines
	// and MSHRs to measure it; an exponential moving average over misses
	// models that measurement). It is the timeliness bar for deltas.
	latEMA float64
}

const (
	bertiHistory   = 16
	bertiMaxDeltas = 16
	bertiRoundLen  = 32 // accesses per PC between delta re-elections
)

type bertiEntry struct {
	hist    [bertiHistory]bertiAccess
	histPos int
	histLen int

	// Candidate delta scoreboard for the current round.
	candDelta [bertiMaxDeltas]int64
	candTimes [bertiMaxDeltas]uint8
	seen      uint8

	// Elected deltas with their confidence tier.
	bestDelta [4]int64
	bestLevel [4]prefetch.Level
	nBest     int
}

type bertiAccess struct {
	line  int64
	cycle float64
}

// NewBerti builds vBerti per Table IV (2.55KB, eight-page range).
func NewBerti() *Berti {
	return &Berti{
		table:      prefetch.NewTable[bertiEntry](16, 4),
		crossPages: 4,
	}
}

// Name implements prefetch.Prefetcher.
func (*Berti) Name() string { return "vBerti" }

// Train implements prefetch.Prefetcher.
func (b *Berti) Train(a prefetch.Access, issue prefetch.IssueFunc) {
	line := int64(a.VAddr >> mem.LineBits)
	set := b.table.SetIndex(a.PC >> 2)
	e, ok := b.table.Lookup(set, a.PC)
	if !ok {
		var fresh bertiEntry
		fresh.hist[0] = bertiAccess{line: line, cycle: a.Cycle}
		fresh.histPos, fresh.histLen = 1, 1
		b.table.Insert(set, a.PC, fresh)
		return
	}

	// Score timely deltas against history: an older access qualifies as a
	// launch point if issuing "older + delta" back then would have
	// completed by now (age >= the fetch latency). Hits use the measured
	// average fetch latency — a hit's data still took a full fetch to
	// arrive originally.
	if a.MissLatency > 0 {
		if b.latEMA == 0 {
			b.latEMA = a.MissLatency
		} else {
			b.latEMA += (a.MissLatency - b.latEMA) / 16
		}
	}
	lat := a.MissLatency
	if lat <= 0 {
		lat = b.latEMA
		if lat <= 0 {
			lat = 100
		}
	}
	maxDelta := b.crossPages * int64(mem.BlocksPerPage)
	for i := 0; i < e.histLen; i++ {
		h := e.hist[i]
		delta := line - h.line
		if delta == 0 || delta > maxDelta || delta < -maxDelta {
			continue
		}
		if a.Cycle-h.cycle < lat {
			continue // would have been late
		}
		b.scoreDelta(e, delta)
	}
	e.seen++
	if e.seen >= bertiRoundLen {
		b.elect(e)
	}

	// Issue the elected deltas.
	for i := 0; i < e.nBest; i++ {
		target := line + e.bestDelta[i]
		if target <= 0 {
			continue
		}
		issue(prefetch.Request{
			VLine: uint64(target) << mem.LineBits,
			Level: e.bestLevel[i],
		})
	}

	e.hist[e.histPos] = bertiAccess{line: line, cycle: a.Cycle}
	e.histPos = (e.histPos + 1) % bertiHistory
	if e.histLen < bertiHistory {
		e.histLen++
	}
}

func (b *Berti) scoreDelta(e *bertiEntry, delta int64) {
	for i := range e.candDelta {
		if e.candDelta[i] == delta {
			if e.candTimes[i] < 255 {
				e.candTimes[i]++
			}
			return
		}
	}
	// Replace the weakest candidate.
	weakest := 0
	for i := range e.candTimes {
		if e.candTimes[i] < e.candTimes[weakest] {
			weakest = i
		}
	}
	e.candDelta[weakest] = delta
	e.candTimes[weakest] = 1
}

// elect converts the candidate scoreboard into the active delta set with
// Berti's coverage tiers: high-coverage deltas fill L1, mid-coverage L2.
// At most two deltas are elected, preferring the farthest-reaching delta
// within a tier: on a steady stride the deltas 1..k all reach full
// coverage and issuing every one of them would only re-request lines the
// largest delta already covers.
func (b *Berti) elect(e *bertiEntry) {
	e.nBest = 0
	round := float64(e.seen)
	type cand struct {
		delta int64
		cov   float64
	}
	// One delta per tier, preferring the farthest reach within the tier:
	// overlapping deltas of the same direction only re-request lines the
	// largest one already covers. The tiering folds the >= 0.30 coverage
	// cut directly into the scan so electing stays allocation-free.
	var l1Best, l2Best cand
	for i := range e.candDelta {
		if e.candDelta[i] == 0 {
			continue
		}
		cov := float64(e.candTimes[i]) / round
		if cov < 0.30 {
			continue
		}
		c := cand{delta: e.candDelta[i], cov: cov}
		if cov >= 0.60 {
			if abs64(c.delta) > abs64(l1Best.delta) {
				l1Best = c
			}
		} else if abs64(c.delta) > abs64(l2Best.delta) {
			l2Best = c
		}
	}
	if l1Best.delta != 0 {
		e.bestDelta[e.nBest] = l1Best.delta
		e.bestLevel[e.nBest] = prefetch.LevelL1
		e.nBest++
	}
	if l2Best.delta != 0 && l2Best.delta != l1Best.delta {
		e.bestDelta[e.nBest] = l2Best.delta
		e.bestLevel[e.nBest] = prefetch.LevelL2
		e.nBest++
	}
	for i := range e.candTimes {
		e.candTimes[i] = 0
		e.candDelta[i] = 0
	}
	e.seen = 0
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// EvictNotify implements prefetch.Prefetcher.
func (*Berti) EvictNotify(uint64) {}

// StorageBytes reproduces Table IV's 2.55KB vBerti budget.
func (b *Berti) StorageBytes() float64 { return 2.55 * 1024 }

var _ prefetch.Prefetcher = (*Berti)(nil)
