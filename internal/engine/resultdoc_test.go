package engine

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestResultDocumentRoundTrip pins the cluster wire contract: ExportResult
// produces the exact bytes Store.Put persists, ImportResult verifies the
// document against its address, and Adopt lands the result in both the
// memo and the store.
func TestResultDocumentRoundTrip(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Scale: tiny, Store: store})
	job := tinyJob("IP-stride")
	res := e.Run(job)

	key := job.CanonicalJSON(tiny)
	addr := AddressOfKey(key)
	if addr != job.ContentAddress(tiny) {
		t.Errorf("AddressOfKey = %s, ContentAddress = %s", addr, job.ContentAddress(tiny))
	}

	doc, err := ExportResult(key, res)
	if err != nil {
		t.Fatal(err)
	}
	gotKey, gotRes, err := ImportResult(addr, doc)
	if err != nil {
		t.Fatal(err)
	}
	if gotKey != key || !reflect.DeepEqual(gotRes, res) {
		t.Error("ImportResult round-trip changed the record")
	}

	// A fresh engine adopts the document: Lookup and Has see it without
	// simulating, and the store write is the same bytes Put would emit.
	adoptStore, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e2 := New(Options{Scale: tiny, Store: adoptStore})
	if _, ok := e2.Lookup(job); ok {
		t.Fatal("fresh engine already has the result")
	}
	if e2.Has(job) {
		t.Fatal("fresh engine claims to have the result")
	}
	e2.Adopt(key, res)
	got, ok := e2.Lookup(job)
	if !ok || !reflect.DeepEqual(got, res) {
		t.Error("Lookup after Adopt did not return the adopted result")
	}
	if !e2.Has(job) || !adoptStore.Has(key) {
		t.Error("Has after Adopt is false")
	}
	if c := e2.Counters(); c.Simulated != 0 {
		t.Errorf("Adopt simulated: %+v", c)
	}

	// A third engine sharing the store Lookups through disk alone.
	e3 := New(Options{Scale: tiny, Store: adoptStore})
	if got, ok := e3.Lookup(job); !ok || !reflect.DeepEqual(got, res) {
		t.Error("Lookup through the store missed the adopted result")
	}
}

// TestImportResultRejects: the three verification failures that make
// accepting uploads from untrusted workers safe.
func TestImportResultRejects(t *testing.T) {
	job := tinyJob("IP-stride")
	key := job.CanonicalJSON(tiny)
	doc, err := ExportResult(key, sim.Result{})
	if err != nil {
		t.Fatal(err)
	}
	addr := AddressOfKey(key)

	if _, _, err := ImportResult("not-an-address", doc); err == nil {
		t.Error("malformed address accepted")
	}
	if _, _, err := ImportResult(addr, []byte("{")); err == nil {
		t.Error("malformed document accepted")
	}
	other := AddressOfKey(key + "x")
	if _, _, err := ImportResult(other, doc); err == nil {
		t.Error("document accepted under a mismatched address")
	}
	stale := strings.Replace(string(doc), "\"version\": 2", "\"version\": 1", 1)
	if _, _, err := ImportResult(addr, []byte(stale)); err == nil {
		t.Error("stale-schema document accepted")
	}
}

// TestEngineAccessors: the trivial read-only surface the server layers on.
func TestEngineAccessors(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Scale: tiny, Store: store})
	if e.Scale() != tiny {
		t.Errorf("Scale() = %+v", e.Scale())
	}
	if e.Store() != store {
		t.Error("Store() did not return the configured store")
	}
	if store.Dir() == "" {
		t.Error("Dir() is empty")
	}

	res := e.Run(tinyJob("IP-stride"))
	base := e.Run(tinyJob("IP-stride").Baseline())
	if s := Speedup(res, base); s <= 0 {
		t.Errorf("Speedup = %v, want > 0", s)
	}
	if s := Speedup(res, sim.Result{}); s != 0 {
		t.Errorf("Speedup against a missing baseline = %v, want 0", s)
	}

	// Smoke the stderr progress renderer, including the final newline.
	StderrProgress(Progress{Done: 1, Total: 2})
	StderrProgress(Progress{Done: 2, Total: 2})
}
