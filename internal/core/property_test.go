package core

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

// TestPropertyNoPanicsOnRandomStreams drives every variant with arbitrary
// access sequences: no input may panic, and issued requests must stay
// line-aligned and within the addressed region size.
func TestPropertyNoPanicsOnRandomStreams(t *testing.T) {
	variants := []func() *Gaze{
		NewDefault, NewGazePHT, NewOffsetOnly, NewPHT4SS, NewSM4SS,
		func() *Gaze { return NewGazeN(3) },
		func() *Gaze { return NewGazeN(4) },
		func() *Gaze { return NewVGaze(512) },
		func() *Gaze { return NewVGaze(65536) },
	}
	for i, mk := range variants {
		mk := mk
		f := func(pcs []uint16, addrs []uint32, evicts []uint32) bool {
			g := mk()
			ok := true
			issue := func(r prefetch.Request) {
				if r.VLine&(mem.LineSize-1) != 0 {
					ok = false
				}
			}
			for j, a := range addrs {
				pc := uint64(0x400000)
				if len(pcs) > 0 {
					pc += uint64(pcs[j%len(pcs)]) * 4
				}
				g.Train(prefetch.Access{PC: pc, VAddr: uint64(a)}, issue)
			}
			for _, e := range evicts {
				g.EvictNotify(uint64(e) &^ (mem.LineSize - 1))
			}
			return ok
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Errorf("variant %d: %v", i, err)
		}
	}
}

// TestPropertyPBDrainBounded: no single Train call may emit more requests
// than the configured drain bound.
func TestPropertyPBDrainBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PBDrainPerTrain = 3
	f := func(addrs []uint32) bool {
		g := New(cfg)
		for _, a := range addrs {
			n := 0
			g.Train(prefetch.Access{PC: 0x400, VAddr: uint64(a)}, func(prefetch.Request) { n++ })
			if n > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPHTOnlyMultiAccessPatterns: the PHT never stores a pattern
// learned from fewer distinct accesses than the match length.
func TestPropertyPHTOnlyMultiAccessPatterns(t *testing.T) {
	g := NewDefault()
	none := func(prefetch.Request) {}
	// Alternate single-access regions (filtered) with real patterns.
	for p := uint64(0); p < 300; p++ {
		page := 0x1000 + p
		g.Train(prefetch.Access{PC: 0x1, VAddr: page * mem.PageSize}, none)
		if p%3 == 0 {
			g.Train(prefetch.Access{PC: 0x1, VAddr: page*mem.PageSize + 9*mem.LineSize}, none)
		}
		g.EvictNotify(page * mem.PageSize)
	}
	g.pht.Range(func(_ int, _ uint64, v *phtEntry) {
		if v.bits.popcount() < 2 {
			t.Errorf("PHT holds a %d-bit pattern", v.bits.popcount())
		}
	})
}

// TestPropertyDenseCounterBounded: the dense counter stays within its
// 3-bit range under arbitrary update sequences.
func TestPropertyDenseCounterBounded(t *testing.T) {
	f := func(ops []bool) bool {
		dc := newDenseCounter()
		for _, inc := range ops {
			if inc {
				dc.increment()
			} else {
				dc.decrement()
			}
			if dc.v < 0 || dc.v > 7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPropertyStorageScalesWithConfig: storage grows monotonically with
// table sizes (a sanity check on the Table I arithmetic).
func TestPropertyStorageScalesWithConfig(t *testing.T) {
	base := NewDefault().TotalStorageBytes()
	bigger := DefaultConfig()
	bigger.PHTEntries = 1024
	if New(bigger).TotalStorageBytes() <= base {
		t.Error("larger PHT did not grow storage")
	}
	smallRegion := DefaultConfig()
	smallRegion.RegionSize = 1024
	if New(smallRegion).TotalStorageBytes() >= base {
		t.Error("smaller region did not shrink storage")
	}
}

// TestVGazeStreamingHeadScales: stage 1's high-aggressiveness head is a
// quarter of the region for every region size.
func TestVGazeStreamingHeadScales(t *testing.T) {
	for _, size := range []int{1024, 4096, 16384} {
		g := NewVGaze(size)
		blocks := size / mem.LineSize
		// Saturate the dense counter.
		for i := 0; i < 10; i++ {
			g.dc.increment()
		}
		var l1Max, l2Min = -1, blocks
		issue := func(r prefetch.Request) {}
		base := uint64(0x7_0000_0000)
		g.Train(prefetch.Access{PC: 0x9, VAddr: base}, issue)
		g.Train(prefetch.Access{PC: 0x9, VAddr: base + mem.LineSize}, issue)
		// Inspect the PB contents directly.
		for _, e := range g.pb.entries {
			for off, st := range e.states {
				if st == pbL1 && off > l1Max {
					l1Max = off
				}
				if st == pbL2 && off < l2Min {
					l2Min = off
				}
			}
		}
		head := blocks / 4
		if l1Max >= head {
			t.Errorf("size %d: L1 head extends to %d, want < %d", size, l1Max, head)
		}
		if l2Min < head {
			t.Errorf("size %d: L2 tail starts at %d, want >= %d", size, l2Min, head)
		}
	}
}
