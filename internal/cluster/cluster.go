// Package cluster turns gazeserve into a multi-node system: a
// Coordinator that hands engine jobs out as leases over HTTP, and a
// Worker loop that executes them with an ordinary engine and uploads the
// result documents back. The design leans entirely on the repo's
// content addressing: a work unit IS a content address (the SHA-256 of
// the engine job's canonical encoding), so the same unit computed twice
// — by a crashed-and-replaced worker, by two racing workers — commits
// the same bytes to the same store entry and nothing is ever corrupted.
// Crash tolerance therefore needs no distributed consensus: leases carry
// deadlines renewed by heartbeat, and the coordinator simply re-leases
// work from workers that go silent.
//
// The HTTP surface (mounted by internal/server; the path constants below
// are the contract between the two packages):
//
//	GET    /cluster                       coordinator status: scale, schema, workers, counters
//	POST   /cluster/workers               register → worker id + lease TTL (409 on scale/schema mismatch)
//	DELETE /cluster/workers/{id}          graceful deregister (leased units requeue immediately)
//	POST   /cluster/workers/{id}/heartbeat  renew worker + lease deadlines, report replication counters
//	POST   /cluster/lease                 lease up to max pending units
//	PUT    /cluster/results/{addr}        upload a result document (verified against addr before commit)
//	PUT    /cluster/telemetry/{addr}      upload a telemetry timeline document (same verification)
//	POST   /cluster/failures/{addr}       report a deterministic execution failure
//
// Ingested traces replicate on demand: `ingested:<addr>` names are
// location-independent (the digest rides in the name), so a worker that
// leases a unit referencing one fetches GET /traces/{addr}/data from the
// coordinator, ingests it into its local registry, and verifies the
// recomputed address — exactly the pull-through, verify-on-read
// discipline the result path uses in the other direction.
package cluster

import (
	"context"
	"errors"
	"time"

	"repro/internal/engine"
)

// Route path constants shared with internal/server's mux registration.
// They live here — not in the server package — so the cluster package
// (Client) never imports the server package that mounts it.
const (
	PathInfo      = "/cluster"
	PathWorkers   = "/cluster/workers"
	PathLease     = "/cluster/lease"
	PathResults   = "/cluster/results/"   // + {addr}
	PathTelemetry = "/cluster/telemetry/" // + {addr}
	PathFailures  = "/cluster/failures/"  // + {addr}
	heartbeatPath = "/heartbeat"          // PathWorkers + "/{id}" + heartbeatPath
)

// Sentinel errors, mapped to HTTP statuses by internal/server.
var (
	// ErrUnknownWorker means the worker id is not (or no longer)
	// registered — the worker missed enough heartbeats to be expired, or
	// the coordinator restarted. Workers recover by re-registering.
	ErrUnknownWorker = errors.New("cluster: unknown worker")
	// ErrIncompatible rejects a registration whose scale or store schema
	// differs from the coordinator's: such a worker would compute
	// differently-addressed (or differently-defined) results.
	ErrIncompatible = errors.New("cluster: incompatible worker")
	// ErrBadResult rejects an uploaded document that fails verification.
	ErrBadResult = errors.New("cluster: invalid result document")
	// ErrBadTelemetry rejects an uploaded telemetry document that fails
	// verification.
	ErrBadTelemetry = errors.New("cluster: invalid telemetry document")
)

// RegisterRequest is the worker's handshake: its identity label, how
// many units it executes concurrently (the coordinator caps lease
// batches at this), and the scale + store schema it was built with —
// checked against the coordinator's so an incompatible worker is turned
// away at the door instead of poisoning results.
type RegisterRequest struct {
	Name               string       `json:"name,omitempty"`
	Concurrency        int          `json:"concurrency"`
	Scale              engine.Scale `json:"scale"`
	StoreSchemaVersion int          `json:"store_schema_version"`
}

// RegisterResponse assigns the worker its id and the lease TTL both
// sides time against.
type RegisterResponse struct {
	WorkerID   string `json:"worker_id"`
	LeaseTTLMS int64  `json:"lease_ttl_ms"`
}

// HeartbeatRequest renews the worker's liveness and every lease it
// holds, and reports counters the coordinator aggregates for
// monitoring. Replicated is a delta since the last acknowledged
// heartbeat (cumulative totals would double-count across
// re-registrations); delivery is at-least-once, so the aggregate is a
// monitoring number, not an exact count.
type HeartbeatRequest struct {
	Replicated uint64 `json:"replicated,omitempty"`
}

// LeaseRequest asks for up to Max pending units (0 = the coordinator's
// batch cap). Leasing is also a liveness signal: it renews the worker's
// own deadline like a heartbeat does.
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
	Max      int    `json:"max,omitempty"`
}

// WorkUnit is one leased engine job. Address is the unit's identity —
// the content address the job's canonical encoding hashes to on the
// coordinator, which the worker re-derives and verifies before running
// (catching any scale drift the handshake missed).
type WorkUnit struct {
	Address string     `json:"address"`
	Job     engine.Job `json:"job"`
	// Traceparent carries the trace identity of the sweep that enqueued
	// the unit (obs.TraceparentHeader format), so worker-side spans and
	// log lines join the coordinator's trace. Empty when the submitting
	// request was not traced.
	Traceparent string `json:"traceparent,omitempty"`
}

// LeaseResponse carries the leased units; empty means nothing is
// pending and the worker should poll again after a short sleep.
type LeaseResponse struct {
	Units []WorkUnit `json:"units"`
}

// FailRequest reports a deterministic execution failure for a leased
// unit (trace unavailable, address mismatch): retrying elsewhere would
// fail the same way, so the coordinator fails the sweeps waiting on the
// unit instead of re-leasing it forever.
type FailRequest struct {
	WorkerID string `json:"worker_id"`
	Error    string `json:"error"`
}

// UploadResponse acknowledges a result upload. Status is "completed"
// when the upload settled a live unit, "duplicate" when the unit was
// already settled (a benign race: both copies are byte-identical).
type UploadResponse struct {
	Status string `json:"status"`
}

// Counters is the coordinator's monitoring snapshot, served under
// /stats ("cluster") and /metrics (gaze_cluster_*).
type Counters struct {
	// Workers / UnitsPending / UnitsLeased are instantaneous gauges.
	Workers      int `json:"workers"`
	UnitsPending int `json:"units_pending"`
	UnitsLeased  int `json:"units_leased"`
	// Leases counts units handed to workers; Releases counts leases
	// revoked and requeued (deadline expiry or graceful deregister) —
	// the "re-lease" number that shows crash recovery happening.
	Leases   uint64 `json:"leases"`
	Releases uint64 `json:"releases"`
	// Results counts uploads that settled a live unit;
	// DuplicateResults counts verified uploads for already-settled
	// units (racing workers, late arrivals after re-lease).
	Results          uint64 `json:"results"`
	DuplicateResults uint64 `json:"duplicate_results"`
	// Failures counts units failed by deterministic worker reports.
	Failures uint64 `json:"failures"`
	// Replications aggregates worker-reported trace replications.
	Replications uint64 `json:"replications"`
}

// WorkerStatus describes one registered worker in the /cluster document.
type WorkerStatus struct {
	ID          string `json:"id"`
	Name        string `json:"name,omitempty"`
	Concurrency int    `json:"concurrency"`
	// Leased is the number of units currently leased to this worker.
	Leased int `json:"leased"`
}

// Info is the GET /cluster document: everything a worker needs to build
// a compatible engine (cmd/gazeserve's worker mode boots from it) plus
// the operator-facing roster and counters.
type Info struct {
	Scale              engine.Scale   `json:"scale"`
	StoreSchemaVersion int            `json:"store_schema_version"`
	LeaseTTLMS         int64          `json:"lease_ttl_ms"`
	Workers            []WorkerStatus `json:"workers"`
	Counters           Counters       `json:"counters"`
}

// Clock abstracts time for deterministic tests: the coordinator takes a
// Now function, the client and worker take a full Clock (backoff and
// poll sleeps included).
type Clock interface {
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx's error in
	// the latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// RealClock is the wall-clock Clock production code uses.
var RealClock Clock = realClock{}
