package traceset

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

func testRecords(t *testing.T, n int) []trace.Record {
	t.Helper()
	recs, err := workload.Generate("lbm-1274", n)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func encode(t *testing.T, f trace.Format, recs []trace.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteAll(&buf, f, recs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func openTestRegistry(t *testing.T) *Registry {
	t.Helper()
	r, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestIngestRoundTripAllFormats is the generate → export → ingest loop:
// the same logical trace encoded in every supported format must ingest to
// the same registry address with identical records — the dedup property
// the whole registry keys on.
func TestIngestRoundTripAllFormats(t *testing.T) {
	reg := openTestRegistry(t)
	recs := testRecords(t, 2_000)
	want := DigestRecords(recs)

	created := 0
	for _, f := range trace.Formats() {
		m, fresh, err := reg.Ingest(bytes.NewReader(encode(t, f, recs)))
		if err != nil {
			t.Fatalf("%s: ingest: %v", f, err)
		}
		if m.Address != want {
			t.Fatalf("%s: address %s, want %s", f, m.Address, want)
		}
		if fresh {
			created++
			if m.SourceFormat != f {
				t.Errorf("created entry records source format %q, want %q", m.SourceFormat, f)
			}
		}
		if m.Records != len(recs) {
			t.Errorf("%s: manifest records = %d, want %d", f, m.Records, len(recs))
		}
	}
	if created != 1 {
		t.Errorf("created %d entries from 4 formats of one trace, want 1", created)
	}
	if reg.Len() != 1 {
		t.Errorf("registry holds %d entries, want 1", reg.Len())
	}

	got, err := reg.Records(want, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read back %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
}

func TestIngestManifestAndFootprint(t *testing.T) {
	reg := openTestRegistry(t)
	recs := testRecords(t, 3_000)
	m, created, err := reg.Ingest(bytes.NewReader(encode(t, trace.FormatChampSimGz, recs)))
	if err != nil || !created {
		t.Fatalf("ingest: created=%v err=%v", created, err)
	}
	if m.IngestedAt.IsZero() || m.StoredBytes <= 0 {
		t.Errorf("manifest incomplete: %+v", m)
	}
	want := workload.AnalyzeFootprints(recs)
	if m.Footprint != want {
		t.Errorf("footprint = %+v, want %+v", m.Footprint, want)
	}
	if m.Name() != workload.IngestedName(m.Address) {
		t.Errorf("Name() = %q", m.Name())
	}
	// Dedup keeps the original manifest (source format and ingest time).
	m2, created, err := reg.Ingest(bytes.NewReader(encode(t, trace.FormatGZTR, recs)))
	if err != nil || created {
		t.Fatalf("re-ingest: created=%v err=%v", created, err)
	}
	if m2 != m {
		t.Errorf("dedup returned a different manifest: %+v vs %+v", m2, m)
	}
}

func tornTail(data []byte) []byte { return data[:len(data)-1] }

func TestIngestRejectsBadInput(t *testing.T) {
	reg := openTestRegistry(t)
	for _, c := range []struct {
		name  string
		input []byte
		want  error
	}{
		{"empty", nil, trace.ErrTruncated},
		{"champsim garbage", []byte("this is not , a trace\n"), trace.ErrCorrupt},
		// Dropping the final byte always cuts mid-record: the full stream
		// ends exactly at a record boundary.
		{"torn gztr", tornTail(encode(t, trace.FormatGZTR, testRecords(t, 100))), trace.ErrTruncated},
		{"no records", []byte("# only a comment\n"), ErrEmpty},
	} {
		_, _, err := reg.Ingest(bytes.NewReader(c.input))
		if !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
	if reg.Len() != 0 {
		t.Errorf("failed ingests left %d entries", reg.Len())
	}
}

func TestIngestRecordCap(t *testing.T) {
	reg, err := Open(t.TempDir(), Options{MaxRecords: 50})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(t, 51)
	if _, _, err := reg.Ingest(bytes.NewReader(encode(t, trace.FormatGZTR, recs))); !errors.Is(err, ErrTooLarge) {
		t.Errorf("over-cap ingest: err = %v, want ErrTooLarge", err)
	}
	if _, _, err := reg.IngestRecords(recs, trace.FormatGZTR); !errors.Is(err, ErrTooLarge) {
		t.Errorf("over-cap IngestRecords: err = %v, want ErrTooLarge", err)
	}
}

func TestRegistryReopenAndDelete(t *testing.T) {
	dir := t.TempDir()
	reg, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(t, 500)
	m, _, err := reg.IngestRecords(recs, trace.FormatGZTR)
	if err != nil {
		t.Fatal(err)
	}

	// A half-committed entry (manifest without data) must not surface.
	orphan := filepath.Join(dir, "ab"+m.Address[2:]+".json")
	if err := os.WriteFile(orphan, []byte(`{"address":"ab`+m.Address[2:]+`"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Foreign json is skipped too.
	if err := os.WriteFile(filepath.Join(dir, "notes.json"), []byte(`{"hi":1}`), 0o644); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != 1 {
		t.Fatalf("reopened registry holds %d entries, want 1", reopened.Len())
	}
	got, ok := reopened.Get(m.Address)
	if !ok || got.Records != m.Records || !got.IngestedAt.Equal(m.IngestedAt) {
		t.Fatalf("reopened manifest = %+v, want %+v", got, m)
	}

	if err := reopened.Delete(m.Address); err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != 0 {
		t.Error("delete left the index populated")
	}
	if _, err := os.Stat(filepath.Join(dir, m.Address+".gztr")); !os.IsNotExist(err) {
		t.Error("delete left the record stream on disk")
	}
	if err := reopened.Delete(m.Address); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: err = %v, want ErrNotFound", err)
	}
	if _, err := reopened.Records(m.Address, 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("Records after delete: err = %v, want ErrNotFound", err)
	}
}

// TestRegistryAsSource wires a registry into workload's source resolution
// and materializes an ingested trace by name.
func TestRegistryAsSource(t *testing.T) {
	workload.ResetSources()
	workload.ResetTraceCache()
	defer workload.ResetSources()
	defer workload.ResetTraceCache()

	reg := openTestRegistry(t)
	recs := testRecords(t, 800)
	m, _, err := reg.IngestRecords(recs, trace.FormatGZTR)
	if err != nil {
		t.Fatal(err)
	}
	workload.RegisterSource(reg)

	name := m.Name()
	if !workload.Exists(name) {
		t.Fatalf("workload.Exists(%q) = false", name)
	}
	got, err := workload.Materialize(name, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 || got[0] != recs[0] {
		t.Fatalf("materialized %d records, first %+v", len(got), got[0])
	}
	// Beyond the trace length: all records, no error.
	all, err := workload.Materialize(name, len(recs)+5_000)
	if err != nil || len(all) != len(recs) {
		t.Fatalf("long materialize: %d records, err %v", len(all), err)
	}
	if d, ok := workload.TraceDigest(name); !ok || d != m.Address {
		t.Errorf("TraceDigest = %q, %v; want the registry address", d, ok)
	}

	// Delete drops resident slabs so the name stops resolving.
	if err := reg.Delete(m.Address); err != nil {
		t.Fatal(err)
	}
	if workload.Exists(name) {
		t.Error("deleted trace still Exists")
	}
	if _, err := workload.Materialize(name, 50); err == nil {
		t.Error("deleted trace still materializes")
	}
}

// TestConcurrentIngestSinglEntry hammers one payload from many goroutines
// (run under -race in CI): exactly one creation, one registry entry, and
// every caller sees the same address.
func TestConcurrentIngestSingleEntry(t *testing.T) {
	reg := openTestRegistry(t)
	payload := encode(t, trace.FormatChampSim, testRecords(t, 1_000))
	const workers = 16
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		created int
		addrs   = make(map[string]bool)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, fresh, err := reg.Ingest(bytes.NewReader(payload))
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			if fresh {
				created++
			}
			addrs[m.Address] = true
			mu.Unlock()
		}()
	}
	wg.Wait()
	if created != 1 {
		t.Errorf("created = %d, want exactly 1", created)
	}
	if len(addrs) != 1 {
		t.Errorf("observed %d distinct addresses", len(addrs))
	}
	if reg.Len() != 1 {
		t.Errorf("registry holds %d entries, want 1", reg.Len())
	}
}

func TestValidAddress(t *testing.T) {
	good := DigestRecords(nil)
	if !validAddress(good) {
		t.Errorf("validAddress(%q) = false", good)
	}
	for _, bad := range []string{"", "abc", good[:63], good + "0", "../" + good[3:], good[:63] + "G"} {
		if validAddress(bad) {
			t.Errorf("validAddress(%q) = true", bad)
		}
	}
}
