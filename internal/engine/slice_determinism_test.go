package engine_test

// Sliced-execution determinism, end to end over an ingested trace: for a
// fixed (trace, slice_shards) key the merged result document — and the
// bytes the store persists — must be identical whether the slices ran one
// at a time or fanned out across workers, and identical across runs.
// This is the property that lets sliced jobs share the content-addressed
// store with every other execution strategy. Run under -race this also
// exercises the slice worker pool for data races on a single-CPU host
// ("fake multi-core": Options.SliceWorkers is the only lever that
// changes scheduling, and it must never change bytes).

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/trace"
	"repro/internal/traceset"
	"repro/internal/workload"
)

// synthRecords generates a deterministic pseudo-random record stream —
// varied strides and non-memory gaps so slices see genuinely different
// access patterns.
func synthRecords(n int) []trace.Record {
	recs := make([]trace.Record, n)
	state := uint64(0x9e3779b97f4a7c15)
	for i := range recs {
		state = state*6364136223846793005 + 1442695040888963407
		kind := trace.Load
		if state>>63 == 1 {
			kind = trace.Store
		}
		recs[i] = trace.Record{
			PC:     0x400000 + uint64(i%512)*4,
			Addr:   (state >> 20) &^ 63,
			NonMem: uint16(state % 11),
			Kind:   kind,
		}
	}
	return recs
}

// storeBytes reads every result file under dir keyed by relative path.
func storeBytes(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	files := map[string][]byte{}
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		files[rel] = data
		return nil
	})
	if err != nil {
		t.Fatalf("walking store %s: %v", dir, err)
	}
	return files
}

func TestSlicedExecutionDeterminism(t *testing.T) {
	reg, err := traceset.Open(t.TempDir(), traceset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := reg.IngestRecords(synthRecords(4000), trace.FormatGZTR)
	if err != nil {
		t.Fatal(err)
	}
	workload.ResetSources()
	workload.ResetTraceCache()
	t.Cleanup(workload.ResetSources)
	t.Cleanup(workload.ResetTraceCache)
	workload.RegisterSource(reg)

	scale := engine.Scale{TracesPerSuite: 1, TraceLen: 4000, Warmup: 3_000, Sim: 12_000}
	run := func(k, workers int, dir string) (engine.Job, map[string][]byte, []interface{}) {
		store, err := engine.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		e := engine.New(engine.Options{Scale: scale, Store: store, SliceWorkers: workers})
		job := engine.Job{
			Traces:    []string{m.Name()},
			L1:        []string{"Gaze"},
			Overrides: engine.Overrides{SliceShards: k},
		}
		if err := job.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		res, err := e.RunContext(context.Background(), job)
		if err != nil {
			t.Fatalf("k=%d workers=%d: %v", k, workers, err)
		}
		return job, storeBytes(t, dir), []interface{}{res}
	}

	for _, k := range []int{2, 4, 7} {
		base := t.TempDir()
		_, serialStore, serialRes := run(k, 1, filepath.Join(base, "serial"))
		_, parRes1Store, parRes := run(k, 8, filepath.Join(base, "parallel"))
		_, repeatStore, repeatRes := run(k, 8, filepath.Join(base, "repeat"))

		if !reflect.DeepEqual(serialRes, parRes) {
			t.Errorf("k=%d: serial and parallel slice execution disagree\nserial   %+v\nparallel %+v",
				k, serialRes, parRes)
		}
		if !reflect.DeepEqual(parRes, repeatRes) {
			t.Errorf("k=%d: repeated parallel runs disagree", k)
		}
		for _, cmp := range []struct {
			name  string
			other map[string][]byte
		}{{"parallel", parRes1Store}, {"repeat", repeatStore}} {
			if len(cmp.other) != len(serialStore) {
				t.Errorf("k=%d: %s store has %d files, serial has %d", k, cmp.name, len(cmp.other), len(serialStore))
				continue
			}
			for rel, want := range serialStore {
				if got, ok := cmp.other[rel]; !ok || !bytes.Equal(got, want) {
					t.Errorf("k=%d: store file %s differs between serial and %s execution", k, rel, cmp.name)
				}
			}
		}
	}

	// Different K must land at different addresses: a 2-way and a 4-way
	// slicing of the same trace are different simulated experiments.
	j2 := engine.Job{Traces: []string{m.Name()}, L1: []string{"Gaze"}, Overrides: engine.Overrides{SliceShards: 2}}
	j4 := engine.Job{Traces: []string{m.Name()}, L1: []string{"Gaze"}, Overrides: engine.Overrides{SliceShards: 4}}
	if j2.ContentAddress(scale) == j4.ContentAddress(scale) {
		t.Error("slice_shards 2 and 4 share a content address")
	}
}
