// POST /admin/gc: run one result-store collection cycle on demand. The
// handler assembles the server's ref sources — the background-jobs
// manager's live plan addresses and the analytics cache's backing
// addresses — so an operator-triggered collection honors exactly the
// same protections as gazeserve's periodic collector. The body is
// optional: empty (or {}) collects with the server's configured default
// age floor; {"max_age": "30m"} overrides it for one cycle, and
// {"max_age": "0s"} collects everything unreferenced regardless of age.
package server

import (
	"errors"
	"io"
	"net/http"
	"time"

	"repro/internal/engine"
)

// GCRequest is the optional POST /admin/gc body.
type GCRequest struct {
	// MaxAge is a Go duration string ("30m", "24h", "0s"). Empty uses the
	// server's configured default.
	MaxAge string `json:"max_age,omitempty"`
}

// GCResponse reports the cycle.
type GCResponse struct {
	engine.GCStats
	// MaxAgeSeconds echoes the age floor the cycle ran with.
	MaxAgeSeconds float64 `json:"max_age_seconds"`
}

// RunGC runs one result-store collection with the server's ref sources
// attached. It is the single GC entry point — the admin endpoint and
// gazeserve's periodic collector both call it, so every collection
// protects background-job plans and cached analytics documents alike.
func (s *Server) RunGC(maxAge time.Duration) (engine.GCStats, error) {
	refs := []func() map[string]bool{s.analytics.liveAddresses}
	if s.jobs != nil {
		refs = append(refs, s.jobs.LiveAddresses)
	}
	return s.eng.GC(engine.GCPolicy{MaxAge: maxAge}, refs...)
}

func (s *Server) handleAdminGC(w http.ResponseWriter, r *http.Request) {
	maxAge := s.gcAge
	var req GCRequest
	if err := decodeStrict(w, r, &req); err != nil && !errors.Is(err, io.EOF) {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.MaxAge != "" {
		d, err := time.ParseDuration(req.MaxAge)
		if err != nil {
			httpError(w, http.StatusBadRequest, "max_age: %v", err)
			return
		}
		if d < 0 {
			httpError(w, http.StatusBadRequest, "max_age: must not be negative")
			return
		}
		maxAge = d
	}
	stats, err := s.RunGC(maxAge)
	if err != nil {
		if errors.Is(err, engine.ErrNoStore) {
			httpError(w, http.StatusConflict, "%v", err)
			return
		}
		httpError(w, http.StatusInternalServerError, "gc: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, GCResponse{GCStats: stats, MaxAgeSeconds: maxAge.Seconds()})
}
