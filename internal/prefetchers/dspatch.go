package prefetchers

import (
	"repro/internal/mem"
	"repro/internal/prefetch"
)

// DSPatch [Bera et al., MICRO 2019] keeps two patterns per trigger PC:
// CovP (bitwise-OR merge, coverage-biased) and AccP (bitwise-AND merge,
// accuracy-biased), selecting between them with memory-bandwidth
// utilization (§II-A). Configuration per Table IV: 2KB regions, 256-entry
// signature pattern table.
type DSPatch struct {
	tracker *regionTracker
	spt     *prefetch.Table[dspatchEntry]
	// bwProbe returns current DRAM pressure; >= bwThreshold selects the
	// accuracy-biased pattern.
	bwProbe     func() float64
	bwThreshold float64
	pb          *prefetch.Pacer
}

type dspatchEntry struct {
	covP uint64
	accP uint64
	// merges counts footprints merged since the last CovP reset; CovP
	// saturates toward all-ones over time, so it is periodically rebuilt.
	merges int
}

// NewDSPatch builds a DSPatch prefetcher with Table IV's configuration.
func NewDSPatch() *DSPatch {
	d := &DSPatch{bwThreshold: 1.0, bwProbe: func() float64 { return 0 }, pb: prefetch.NewPacer(256, 4)}
	d.tracker = newRegionTracker(2048, d.learn)
	d.spt = prefetch.NewTable[dspatchEntry](64, 4)
	return d
}

// Name implements prefetch.Prefetcher.
func (*DSPatch) Name() string { return "DSPatch" }

// SetBandwidthProbe implements prefetch.BandwidthAware.
func (d *DSPatch) SetBandwidthProbe(f func() float64) { d.bwProbe = f }

func (d *DSPatch) key(pc uint64) uint64 { return pc >> 2 }

// Train implements prefetch.Prefetcher.
func (d *DSPatch) Train(a prefetch.Access, issue prefetch.IssueFunc) {
	defer d.pb.Drain(issue)
	region, off, isTrigger := d.tracker.observe(a)
	if !isTrigger {
		return
	}
	k := d.key(a.PC)
	e, ok := d.spt.Lookup(d.spt.SetIndex(k), k)
	if !ok {
		return
	}
	// Bandwidth-aware dual-pattern selection with bit-measure quality
	// modulation: disagreeing footprints (empty intersection) downgrade
	// the union pattern to L2 placement, and a union that has ballooned
	// past half the region is discarded as noise.
	accPop, covPop := popcount(e.accP), popcount(e.covP)
	pattern := e.covP
	level := prefetch.LevelL1
	switch {
	case accPop == 0:
		if d.bwProbe() >= d.bwThreshold || covPop > d.tracker.blocks/2 {
			return
		}
		level = prefetch.LevelL2
	case d.bwProbe() >= d.bwThreshold || covPop > 4*accPop:
		pattern = e.accP
	}
	pattern = d.tracker.rotl(pattern, off) // un-anchor at this trigger
	pattern &^= 1 << uint(off)
	base := region << d.tracker.shift
	for pattern != 0 {
		bit := pattern & (-pattern)
		idx := popcountBelow(bit)
		d.pb.Push(prefetch.Request{VLine: base + uint64(idx)<<mem.LineBits, Level: level})
		pattern &^= bit
	}
}

// EvictNotify implements prefetch.Prefetcher.
func (d *DSPatch) EvictNotify(vline uint64) { d.tracker.evict(vline) }

// learn merges a deactivated footprint into both patterns, anchored at the
// trigger offset so patterns generalize across regions.
func (d *DSPatch) learn(e *trkAT) {
	if popcount(e.bits) < 2 {
		return
	}
	anchored := d.tracker.rotr(e.bits, int(e.trigger))
	k := d.key(e.pc)
	set := d.spt.SetIndex(k)
	if entry, ok := d.spt.Lookup(set, k); ok {
		entry.merges++
		if entry.merges >= 16 {
			// Periodic rebuild: CovP saturates under OR-merging.
			entry.covP = anchored
			entry.accP = anchored
			entry.merges = 0
			return
		}
		entry.covP |= anchored
		entry.accP &= anchored
		return
	}
	d.spt.Insert(set, k, dspatchEntry{covP: anchored, accP: anchored})
}

// StorageBytes reproduces Table IV's 4.25KB DSPatch budget.
func (d *DSPatch) StorageBytes() float64 { return 4.25 * 1024 }

var (
	_ prefetch.Prefetcher     = (*DSPatch)(nil)
	_ prefetch.BandwidthAware = (*DSPatch)(nil)
)
