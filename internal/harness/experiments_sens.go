package harness

import (
	"repro/internal/stats"
)

// Fig12 reproduces Figure 12: GAP and QMM (server/client) speedups for the
// three main prefetchers.
func Fig12(r *Runner) []stats.Table {
	pfs := []string{"vBerti", "PMP", "Gaze"}
	gap := stats.Table{
		Title:  "Fig 12a: GAP speedups",
		Header: append([]string{"trace"}, pfs...),
	}
	var gapAvg = map[string][]float64{}
	for _, tr := range r.SuiteTraces("gap") {
		row := []string{tr}
		for _, pf := range pfs {
			s := r.Speedup(tr, pf)
			gapAvg[pf] = append(gapAvg[pf], s)
			row = append(row, stats.F(s, 3))
		}
		gap.AddRow(row...)
	}
	row := []string{"avg_gap"}
	for _, pf := range pfs {
		row = append(row, stats.F(stats.Geomean(gapAvg[pf]), 3))
	}
	gap.AddRow(row...)

	qmm := stats.Table{
		Title:  "Fig 12b: QMM speedups (server then client)",
		Header: append([]string{"trace"}, pfs...),
	}
	for _, suite := range []string{"qmm.srv", "qmm.clt"} {
		avg := map[string][]float64{}
		for _, tr := range r.SuiteTraces(suite) {
			row := []string{tr}
			for _, pf := range pfs {
				s := r.Speedup(tr, pf)
				avg[pf] = append(avg[pf], s)
				row = append(row, stats.F(s, 3))
			}
			qmm.AddRow(row...)
		}
		row := []string{"avg_" + suite}
		for _, pf := range pfs {
			row = append(row, stats.F(stats.Geomean(avg[pf]), 3))
		}
		qmm.AddRow(row...)
	}
	return []stats.Table{gap, qmm}
}

// fig16Prefetchers are the six prefetchers of the sensitivity study.
var fig16Prefetchers = []string{"SPP-PPF", "vBerti", "Bingo", "DSPatch", "PMP", "Gaze"}

// Fig16 reproduces Figure 16: sensitivity to DRAM bandwidth, LLC size and
// L2C size (single-core, geometric mean over the evaluation set).
func Fig16(r *Runner) []stats.Table {
	traces := r.sensTraces()

	speedup := func(pf string, o Overrides) float64 {
		var vals []float64
		for _, tr := range traces {
			base := r.Run(Job{Traces: []string{tr}, L1: []string{"none"}, Overrides: o}).MeanIPC()
			res := r.Run(Job{Traces: []string{tr}, L1: []string{pf}, Overrides: o}).MeanIPC()
			if base > 0 {
				vals = append(vals, res/base)
			}
		}
		return stats.Geomean(vals)
	}

	bw := stats.Table{
		Title:  "Fig 16a: sensitivity to DRAM bandwidth (MTPS)",
		Header: []string{"prefetcher", "800", "1600", "3200", "6400", "12800"},
	}
	for _, pf := range fig16Prefetchers {
		row := []string{pf}
		for _, mtps := range []int{800, 1600, 3200, 6400, 12800} {
			row = append(row, stats.F(speedup(pf, Overrides{DRAMMTPS: mtps}), 3))
		}
		bw.AddRow(row...)
	}

	llc := stats.Table{
		Title:  "Fig 16b: sensitivity to LLC size (MB per core)",
		Header: []string{"prefetcher", "0.5", "1", "2", "4", "8"},
	}
	for _, pf := range fig16Prefetchers {
		row := []string{pf}
		for _, mb := range []float64{0.5, 1, 2, 4, 8} {
			row = append(row, stats.F(speedup(pf, Overrides{LLCMBPerCore: mb}), 3))
		}
		llc.AddRow(row...)
	}

	l2 := stats.Table{
		Title:  "Fig 16c: sensitivity to L2C size (KB per core)",
		Header: []string{"prefetcher", "128", "256", "512", "1024", "1536"},
	}
	for _, pf := range fig16Prefetchers {
		row := []string{pf}
		for _, kb := range []int{128, 256, 512, 1024, 1536} {
			row = append(row, stats.F(speedup(pf, Overrides{L2KB: kb}), 3))
		}
		l2.AddRow(row...)
	}
	return []stats.Table{bw, llc, l2}
}

// sensTraces is the reduced trace set used for configuration sweeps.
func (r *Runner) sensTraces() []string {
	return []string{
		"lbm-1274", "bwaves_s-2609", "fotonik3d_s-8225", "mcf_s-1554",
		"PageRank-61", "cassandra-p0c0",
	}
}

// fig17Traces is the per-trace panel of Figures 17 and 18.
var fig17Traces = []string{
	"bwaves-1963", "lbm-1274", "omnetpp-188", "wrf-1254", "gcc_s-2226",
	"mcf_s-484", "xalancbmk_s-202", "pop2_s-17", "fotonik3d_s-7084",
	"roms_s-1070", "PageRank-1", "PageRank-61", "BellmanFord-4",
	"BellmanFord-34", "streamcluster-5",
}

// Fig17 reproduces Figure 17: Gaze's sensitivity to region size
// (0.5-4KB) and PHT size (128-1024 entries), normalized to the baseline
// configuration (4KB region, 256-entry PHT).
func Fig17(r *Runner) []stats.Table {
	region := stats.Table{
		Title:  "Fig 17a: sensitivity to region size (speedup normalized to 4KB)",
		Header: []string{"trace", "0.5KB", "1KB", "2KB", "4KB"},
	}
	sizes := []int{512, 1024, 2048, 4096}
	sums := make([][]float64, len(sizes))
	for _, tr := range fig17Traces {
		base := r.Speedup(tr, "Gaze")
		row := []string{tr}
		for i, size := range sizes {
			s := base
			if size != 4096 {
				s = r.vgazeSpeedup(tr, size)
			}
			norm := 0.0
			if base > 0 {
				norm = s / base
			}
			sums[i] = append(sums[i], norm)
			row = append(row, stats.F(norm, 3))
		}
		region.AddRow(row...)
	}
	avgRow := []string{"AVG"}
	for i := range sizes {
		avgRow = append(avgRow, stats.F(stats.Geomean(sums[i]), 3))
	}
	region.AddRow(avgRow...)

	pht := stats.Table{
		Title:  "Fig 17b: sensitivity to PHT size (speedup normalized to 256 entries)",
		Header: []string{"trace", "128", "256", "512", "1024"},
	}
	entries := []int{128, 256, 512, 1024}
	psums := make([][]float64, len(entries))
	for _, tr := range fig17Traces {
		base := r.Speedup(tr, "Gaze")
		row := []string{tr}
		for i, n := range entries {
			var s float64
			if n == 256 {
				s = base
			} else {
				s = r.gazePHTSizeSpeedup(tr, n)
			}
			norm := 0.0
			if base > 0 {
				norm = s / base
			}
			psums[i] = append(psums[i], norm)
			row = append(row, stats.F(norm, 3))
		}
		pht.AddRow(row...)
	}
	avgRow = []string{"AVG"}
	for i := range entries {
		avgRow = append(avgRow, stats.F(stats.Geomean(psums[i]), 3))
	}
	pht.AddRow(avgRow...)
	return []stats.Table{region, pht}
}

// Fig18 reproduces Figure 18: vGaze with large (huge-page) regions,
// normalized to the 4KB baseline.
func Fig18(r *Runner) []stats.Table {
	t := stats.Table{
		Title:  "Fig 18: vGaze with large regions (normalized to 4KB)",
		Header: []string{"trace", "4KB", "8KB", "16KB", "32KB", "64KB"},
	}
	sizes := []int{4096, 8192, 16384, 32768, 65536}
	sums := make([][]float64, len(sizes))
	for _, tr := range fig17Traces {
		base := r.Speedup(tr, "Gaze")
		row := []string{tr}
		for i, size := range sizes {
			var s float64
			if size == 4096 {
				s = base
			} else {
				s = r.vgazeSpeedup(tr, size)
			}
			norm := 0.0
			if base > 0 {
				norm = s / base
			}
			sums[i] = append(sums[i], norm)
			row = append(row, stats.F(norm, 3))
		}
		t.AddRow(row...)
	}
	avgRow := []string{"AVG"}
	for i := range sizes {
		avgRow = append(avgRow, stats.F(stats.Geomean(sums[i]), 3))
	}
	t.AddRow(avgRow...)
	return []stats.Table{t}
}
