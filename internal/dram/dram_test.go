package dram

import (
	"testing"

	"repro/internal/mem"
)

func TestDDR4ConfigLayouts(t *testing.T) {
	cases := []struct {
		cores, chans, ranks int
	}{
		{1, 1, 1}, {2, 2, 1}, {4, 2, 2}, {8, 4, 2},
	}
	for _, c := range cases {
		cfg := DDR4Config(c.cores)
		if cfg.Channels != c.chans || cfg.RanksPerChan != c.ranks {
			t.Errorf("%d cores: got %d channels %d ranks, want %d/%d",
				c.cores, cfg.Channels, cfg.RanksPerChan, c.chans, c.ranks)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%d cores: invalid config: %v", c.cores, err)
		}
	}
}

func TestBurstCycles(t *testing.T) {
	cfg := DDR4Config(1)
	// 64B at 3200MT/s x 8B = 2.5ns = 10 cycles at 4GHz.
	if b := cfg.BurstCycles(); b < 9.9 || b > 10.1 {
		t.Errorf("BurstCycles = %v, want 10", b)
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	d := New(DDR4Config(1))
	// First access opens the row.
	f1 := d.Access(0x100000, 0)
	// Second access, same row, arrives after everything drained.
	f2start := f1 + 1000
	f2 := d.Access(0x100040, f2start)
	missLat := f1 - 0
	hitLat := f2 - f2start
	if hitLat >= missLat {
		t.Errorf("row hit latency %v >= miss latency %v", hitLat, missLat)
	}
	if d.Stats.RowHits != 1 {
		t.Errorf("RowHits = %d, want 1", d.Stats.RowHits)
	}
}

func TestRowMissLatencyValue(t *testing.T) {
	d := New(DDR4Config(1))
	f := d.Access(0x100000, 0)
	// tRP+tRCD+tCAS = 37.5ns = 150 cycles, + 10 cycle burst.
	if f < 159 || f > 161 {
		t.Errorf("cold access latency = %v, want ~160", f)
	}
}

func TestBusQueuing(t *testing.T) {
	d := New(DDR4Config(1))
	// Two same-cycle requests to the same bank+row must serialize on the
	// bus: second finish >= first finish + burst.
	f1 := d.Access(0x100000, 0)
	f2 := d.Access(0x100040, 0)
	if f2 < f1+d.cfg.BurstCycles()-0.01 {
		t.Errorf("no serialization: f1=%v f2=%v", f1, f2)
	}
}

func TestMoreChannelsMoreParallelism(t *testing.T) {
	run := func(channels int) float64 {
		cfg := DDR4Config(1)
		cfg.Channels = channels
		d := New(cfg)
		var last float64
		// 64 concurrent requests spread over line addresses.
		for i := 0; i < 64; i++ {
			f := d.Access(mem.Addr(i)*64, 0)
			if f > last {
				last = f
			}
		}
		return last
	}
	one := run(1)
	four := run(4)
	if four >= one {
		t.Errorf("4-channel makespan %v >= 1-channel %v", four, one)
	}
}

func TestHigherMTPSFaster(t *testing.T) {
	run := func(mtps int) float64 {
		cfg := DDR4Config(1)
		cfg.MTPS = mtps
		d := New(cfg)
		var last float64
		for i := 0; i < 128; i++ {
			f := d.Access(mem.Addr(i)*64, 0)
			if f > last {
				last = f
			}
		}
		return last
	}
	slow := run(800)
	fast := run(12800)
	if fast >= slow {
		t.Errorf("12800MTPS makespan %v >= 800MTPS %v", fast, slow)
	}
}

func TestBusUtilization(t *testing.T) {
	d := New(DDR4Config(1))
	if u := d.BusUtilization(0, 1000); u != 0 {
		t.Errorf("idle utilization = %v", u)
	}
	for i := 0; i < 10; i++ {
		d.Access(mem.Addr(i)*64, float64(i)*200)
	}
	u := d.BusUtilization(0, 2000)
	if u <= 0 || u > 1 {
		t.Errorf("utilization out of range: %v", u)
	}
}

func TestPressure(t *testing.T) {
	d := New(DDR4Config(1))
	if p := d.Pressure(0); p != 0 {
		t.Errorf("idle pressure = %v", p)
	}
	// Pile up requests at t=0; pressure right after must be positive.
	for i := 0; i < 32; i++ {
		d.Access(mem.Addr(i)*64, 0)
	}
	if p := d.Pressure(1); p <= 0 {
		t.Errorf("pressure after burst = %v, want > 0", p)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{},
		{Channels: 3, RanksPerChan: 1, BanksPerRank: 8, MTPS: 3200, BusBytes: 8, RowBufferBytes: 2048, CPUGHz: 4},
		{Channels: 1, RanksPerChan: 0, BanksPerRank: 8, MTPS: 3200, BusBytes: 8, RowBufferBytes: 2048, CPUGHz: 4},
		{Channels: 1, RanksPerChan: 1, BanksPerRank: 8, MTPS: 0, BusBytes: 8, RowBufferBytes: 2048, CPUGHz: 4},
		{Channels: 1, RanksPerChan: 1, BanksPerRank: 8, MTPS: 3200, BusBytes: 8, RowBufferBytes: 2048, CPUGHz: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestResetStats(t *testing.T) {
	d := New(DDR4Config(1))
	d.Access(0, 0)
	d.ResetStats()
	if d.Stats.Requests != 0 || d.Stats.BusBusyCycles != 0 {
		t.Error("stats not cleared")
	}
}
