package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/engine"
	"repro/internal/trace"
	"repro/internal/traceset"
	"repro/internal/workload"
)

// policyRecords builds a small deterministic stream for ingestion.
func policyRecords(n int) []trace.Record {
	recs := make([]trace.Record, n)
	state := uint64(0x243f6a8885a308d3)
	for i := range recs {
		state = state*6364136223846793005 + 1442695040888963407
		recs[i] = trace.Record{
			PC:     0x400000 + uint64(i%128)*4,
			Addr:   (state >> 18) &^ 63,
			NonMem: uint16(state % 5),
			Kind:   trace.Load,
		}
	}
	return recs
}

// TestSlicePolicyApply pins the rewrite rules: only single-core ingested
// jobs above the threshold slice, an explicit slice_shards (sliced or the
// pinned 1) wins over the policy, and the threshold compares the
// effective slab — the smaller of stored records and the scale's trace
// length.
func TestSlicePolicyApply(t *testing.T) {
	scale := engine.Scale{TraceLen: 4000, Warmup: 100, Sim: 200}
	records := map[string]int{"aa11": 5000, "bb22": 100}
	policy := &SlicePolicy{
		MinRecords: 1000,
		Shards:     6,
		Records: func(addr string) (int, bool) {
			n, ok := records[addr]
			return n, ok
		},
	}
	big := workload.IngestedName("aa11")
	small := workload.IngestedName("bb22")

	cases := []struct {
		name string
		job  engine.Job
		want int
	}{
		{"big ingested trace slices", engine.Job{Traces: []string{big}}, 6},
		{"below threshold stays unsliced", engine.Job{Traces: []string{small}}, 0},
		{"catalogue trace never slices", engine.Job{Traces: []string{"lbm-1274"}}, 0},
		{"unknown address never slices", engine.Job{Traces: []string{workload.IngestedName("ff99")}}, 0},
		{"multi-core never slices", engine.Job{Traces: []string{big, big}}, 0},
		{"explicit shards win", engine.Job{Traces: []string{big}, Overrides: engine.Overrides{SliceShards: 2}}, 2},
		{"explicit 1 pins unsliced", engine.Job{Traces: []string{big}, Overrides: engine.Overrides{SliceShards: 1}}, 1},
	}
	for _, c := range cases {
		policy.apply(scale, &c.job)
		if c.job.Overrides.SliceShards != c.want {
			t.Errorf("%s: slice_shards = %d, want %d", c.name, c.job.Overrides.SliceShards, c.want)
		}
	}

	// The effective slab is capped by the scale: a 5000-record trace at
	// TraceLen 500 materializes 500 records and must not slice.
	short := engine.Scale{TraceLen: 500, Warmup: 100, Sim: 200}
	j := engine.Job{Traces: []string{big}}
	policy.apply(short, &j)
	if j.Overrides.SliceShards != 0 {
		t.Errorf("scale-capped slab sliced to %d shards", j.Overrides.SliceShards)
	}

	// Nil policy and nil lookup are inert.
	j = engine.Job{Traces: []string{big}}
	(*SlicePolicy)(nil).apply(scale, &j)
	(&SlicePolicy{MinRecords: 1}).apply(scale, &j)
	if j.Overrides.SliceShards != 0 {
		t.Error("nil policy rewrote the job")
	}

	// Zero Shards selects the fixed default — never GOMAXPROCS, so
	// addresses reproduce across machines.
	j = engine.Job{Traces: []string{big}}
	(&SlicePolicy{MinRecords: 1000, Records: policy.Records}).apply(scale, &j)
	if j.Overrides.SliceShards != DefaultAutoSliceShards {
		t.Errorf("default shards = %d, want %d", j.Overrides.SliceShards, DefaultAutoSliceShards)
	}
}

// TestAutoSliceEndToEnd: a server with a slice policy rewrites a
// /simulate over a big ingested trace before addressing — the response
// carries slice_shards in its overrides and the sliced job's content
// address — while an explicit slice_shards: 1 keeps the pinned v2
// unsliced address.
func TestAutoSliceEndToEnd(t *testing.T) {
	reg, err := traceset.Open(t.TempDir(), traceset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := reg.IngestRecords(policyRecords(3000), trace.FormatGZTR)
	if err != nil {
		t.Fatal(err)
	}
	workload.ResetSources()
	workload.ResetTraceCache()
	t.Cleanup(workload.ResetSources)
	t.Cleanup(workload.ResetTraceCache)
	workload.RegisterSource(reg)

	scale := engine.Scale{TracesPerSuite: 1, TraceLen: 3000, Warmup: 2000, Sim: 6000}
	eng := engine.New(engine.Options{Scale: scale})
	policy := &SlicePolicy{
		MinRecords: 1000,
		Shards:     2,
		Records: func(addr string) (int, bool) {
			man, ok := reg.Get(addr)
			if !ok {
				return 0, false
			}
			return man.Records, true
		},
	}
	ts := httptest.NewServer(New(eng).AttachTraces(reg).SetSlicePolicy(policy).Handler())
	t.Cleanup(ts.Close)

	var auto SimulateResponse
	r := postJSON(t, ts.URL+"/simulate", SimulateRequest{Trace: m.Name(), Prefetcher: "Gaze"}, &auto)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("auto-sliced simulate: status %d", r.StatusCode)
	}
	if auto.Overrides == nil || auto.Overrides.SliceShards != 2 {
		t.Fatalf("response overrides = %+v, want slice_shards 2", auto.Overrides)
	}
	sliced := engine.Job{
		Traces:    []string{m.Name()},
		L1:        []string{"Gaze"},
		Overrides: engine.Overrides{SliceShards: 2},
	}
	if auto.Address != sliced.ContentAddress(scale) {
		t.Errorf("auto-sliced address %s, want the slice_shards:2 address %s",
			auto.Address, sliced.ContentAddress(scale))
	}

	// slice_shards: 1 opts out and lands at the pinned unsliced address.
	var pinned SimulateResponse
	r = postJSON(t, ts.URL+"/simulate", SimulateRequest{
		Trace: m.Name(), Prefetcher: "Gaze",
		Overrides: &engine.Overrides{SliceShards: 1},
	}, &pinned)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("pinned simulate: status %d", r.StatusCode)
	}
	unsliced := engine.Job{Traces: []string{m.Name()}, L1: []string{"Gaze"}}
	if pinned.Address != unsliced.ContentAddress(scale) {
		t.Errorf("pinned address %s, want the unsliced address %s",
			pinned.Address, unsliced.ContentAddress(scale))
	}
	if pinned.Address == auto.Address {
		t.Error("sliced and unsliced runs share an address")
	}
}
