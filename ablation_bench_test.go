// Ablation benchmarks for the design choices DESIGN.md calls out, beyond
// the paper's own figures: PHT learning policy, strict-vs-partial matching
// value, streaming-module contribution per suite, and the raw simulator
// throughput that bounds experiment cost.
package repro_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func quickSim(b *testing.B, traceName string, pf prefetch.Prefetcher) sim.Result {
	b.Helper()
	cfg := sim.DefaultConfig(1)
	cfg.WarmupInstructions = 40_000
	cfg.SimInstructions = 150_000
	recs := workload.MustGenerate(traceName, 50_000)
	sys, err := sim.New(cfg, []sim.CoreSpec{{
		Trace:        trace.NewLooping(trace.NewSliceReader(recs)),
		L1Prefetcher: pf,
	}})
	if err != nil {
		b.Fatal(err)
	}
	return sys.Run()
}

// BenchmarkAblationStrictMatching quantifies what strict two-access
// matching buys on a trigger-ambiguous workload: the accuracy gap between
// Offset-only and Gaze keying (§III-B's motivation).
func BenchmarkAblationStrictMatching(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		offset := quickSim(b, "fotonik3d_s-8225", core.NewOffsetOnly())
		gaze := quickSim(b, "fotonik3d_s-8225", core.NewGazePHT())
		gap = gaze.Accuracy() - offset.Accuracy()
	}
	b.ReportMetric(100*gap, "accuracy_gain_pct")
}

// BenchmarkAblationStreamingModule isolates the two-stage streaming
// controller's contribution on an interleaved graph-compute trace.
func BenchmarkAblationStreamingModule(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		base := quickSim(b, "PageRank-61", nil).MeanIPC()
		pht := quickSim(b, "PageRank-61", core.NewGazePHT()).MeanIPC()
		full := quickSim(b, "PageRank-61", core.NewDefault()).MeanIPC()
		delta = full/base - pht/base
	}
	b.ReportMetric(delta, "speedup_delta")
}

// BenchmarkAblationBackupStride measures the region-stride backup's
// contribution when strict matching misses (unknown patterns with steady
// strides).
func BenchmarkAblationBackupStride(b *testing.B) {
	noBackup := core.DefaultConfig()
	noBackup.StrideBackup = false
	var delta float64
	for i := 0; i < b.N; i++ {
		with := quickSim(b, "GemsFDTD-1211", core.NewDefault()).MeanIPC()
		without := quickSim(b, "GemsFDTD-1211", core.New(noBackup)).MeanIPC()
		delta = with - without
	}
	b.ReportMetric(delta, "ipc_delta")
}

// BenchmarkAblationPBDrainRate sweeps the prefetch-buffer drain bound: too
// slow starves timeliness, too fast floods the prefetch queue.
func BenchmarkAblationPBDrainRate(b *testing.B) {
	for _, drain := range []int{1, 2, 4, 8, 16} {
		drain := drain
		b.Run(string(rune('0'+drain/10))+string(rune('0'+drain%10)), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.PBDrainPerTrain = drain
			var sp float64
			for i := 0; i < b.N; i++ {
				base := quickSim(b, "bwaves_s-2609", nil).MeanIPC()
				res := quickSim(b, "bwaves_s-2609", core.New(cfg)).MeanIPC()
				sp = res / base
			}
			b.ReportMetric(sp, "speedup")
		})
	}
}

// BenchmarkAblationPromotionDegree sweeps stage 2's promotion degree.
func BenchmarkAblationPromotionDegree(b *testing.B) {
	for _, degree := range []int{2, 4, 8} {
		degree := degree
		b.Run(string(rune('0'+degree)), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.PromoteDegree = degree
			var sp float64
			for i := 0; i < b.N; i++ {
				base := quickSim(b, "lbm-1274", nil).MeanIPC()
				sp = quickSim(b, "lbm-1274", core.New(cfg)).MeanIPC() / base
			}
			b.ReportMetric(sp, "speedup")
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulated instructions per
// second — the cost model behind the harness scales.
func BenchmarkSimulatorThroughput(b *testing.B) {
	recs := workload.MustGenerate("bwaves_s-2609", 50_000)
	b.ResetTimer()
	var instr uint64
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(1)
		cfg.WarmupInstructions = 0
		cfg.SimInstructions = 150_000
		sys, err := sim.New(cfg, []sim.CoreSpec{{
			Trace:        trace.NewLooping(trace.NewSliceReader(recs)),
			L1Prefetcher: core.NewDefault(),
		}})
		if err != nil {
			b.Fatal(err)
		}
		res := sys.Run()
		instr += res.Cores[0].Instructions
	}
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkWorkloadGeneration measures trace synthesis throughput.
func BenchmarkWorkloadGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = workload.MustGenerate("cassandra-p0c0", 100_000)
	}
}

// BenchmarkGazeTrainHot measures the prefetcher's per-access cost on a hot
// streaming loop (the "single CPU cycle per table access" claim is about
// hardware; this tracks software simulation cost).
func BenchmarkGazeTrainHot(b *testing.B) {
	g := core.NewDefault()
	issue := func(prefetch.Request) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(0x10000000) + uint64(i%100000)*64
		g.Train(prefetch.Access{PC: 0x400100, VAddr: addr}, issue)
	}
}

// BenchmarkHarnessQuickFig6 times the full Fig 6 pipeline at Quick scale,
// the unit of cost for the full experiment suite.
func BenchmarkHarnessQuickFig6(b *testing.B) {
	var tables []stats.Table
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(harness.Quick)
		exp, err := harness.Find("fig6")
		if err != nil {
			b.Fatal(err)
		}
		tables = exp.Run(r)
	}
	if len(tables) == 0 {
		b.Fatal("no tables")
	}
}

// BenchmarkAblationConfidenceControl measures the future-work confidence
// extension on a churn-heavy cloud trace: rejecting decayed patterns
// trades a little coverage for accuracy.
func BenchmarkAblationConfidenceControl(b *testing.B) {
	confCfg := core.DefaultConfig()
	confCfg.ConfidenceControl = true
	var accGain float64
	for i := 0; i < b.N; i++ {
		base := quickSim(b, "cassandra-p0c0", core.NewDefault())
		withConf := quickSim(b, "cassandra-p0c0", core.New(confCfg))
		accGain = withConf.Accuracy() - base.Accuracy()
	}
	b.ReportMetric(100*accGain, "accuracy_delta_pct")
}
