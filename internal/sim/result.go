package sim

import "repro/internal/cache"

// CoreResult holds per-core measurements over the measurement window.
type CoreResult struct {
	// IPC is instructions per cycle at the moment the core reached its
	// instruction target.
	IPC float64
	// Instructions is the measured instruction count.
	Instructions uint64

	// L1D and L2C are the private cache counters.
	L1D cache.Stats
	L2C cache.Stats

	// PrefetchesIssued counts requests actually injected into the memory
	// system (after queue and redundancy filtering), per target level.
	PrefetchesIssuedL1 uint64
	PrefetchesIssuedL2 uint64
	// PrefetchesRedundant counts requests dropped because the target line
	// was already resident at (or above) the target level.
	PrefetchesRedundant uint64
	// PQDropsFull / PQDropsDup mirror the queue counters.
	PQDropsFull uint64
	PQDropsDup  uint64
}

// Result aggregates a full simulation.
type Result struct {
	Cores []CoreResult
	// LLC holds the shared-cache counters over the measurement window.
	LLC cache.Stats
	// DRAMRequests and DRAMRowHitRate summarize the memory system.
	DRAMRequests   uint64
	DRAMRowHitRate float64
}

// MeanIPC returns the arithmetic mean of per-core IPCs.
func (r Result) MeanIPC() float64 {
	if len(r.Cores) == 0 {
		return 0
	}
	var s float64
	for _, c := range r.Cores {
		s += c.IPC
	}
	return s / float64(len(r.Cores))
}

// Accuracy returns the paper's overall accuracy: useful prefetched blocks
// at L1D and L2C over all prefetched blocks at both levels
// ((na+ma)/(na+nb+ma+mb), §IV-A3).
func (r Result) Accuracy() float64 {
	var useful, useless uint64
	for _, c := range r.Cores {
		useful += c.L1D.UsefulPrefetches + c.L2C.UsefulPrefetches
		useless += c.L1D.UselessPrefetches + c.L2C.UselessPrefetches
	}
	total := useful + useless
	if total == 0 {
		return 0
	}
	return float64(useful) / float64(total)
}

// Coverage returns LLC miss coverage: the fraction of would-be off-chip
// demand misses eliminated by prefetching. Covered misses are useful
// prefetches whose data was fetched from DRAM.
func (r Result) Coverage() float64 {
	var covered uint64
	for _, c := range r.Cores {
		covered += c.L1D.CoveredMisses + c.L2C.CoveredMisses
	}
	denom := covered + r.LLC.DemandMisses
	if denom == 0 {
		return 0
	}
	return float64(covered) / float64(denom)
}

// LateFraction returns the share of useful prefetches that were late
// (demand arrived while the fill was still in flight).
func (r Result) LateFraction() float64 {
	var useful, late uint64
	for _, c := range r.Cores {
		useful += c.L1D.UsefulPrefetches + c.L2C.UsefulPrefetches
		late += c.L1D.LatePrefetches + c.L2C.LatePrefetches
	}
	if useful == 0 {
		return 0
	}
	return float64(late) / float64(useful)
}

// IssuedPrefetches returns the total prefetches injected into the memory
// system across cores and levels.
func (r Result) IssuedPrefetches() uint64 {
	var n uint64
	for _, c := range r.Cores {
		n += c.PrefetchesIssuedL1 + c.PrefetchesIssuedL2
	}
	return n
}

// L1MPKI returns demand L1D misses per kilo-instruction (averaged over
// cores).
func (r Result) L1MPKI() float64 {
	var misses, instr uint64
	for _, c := range r.Cores {
		misses += c.L1D.DemandMisses
		instr += c.Instructions
	}
	if instr == 0 {
		return 0
	}
	return 1000 * float64(misses) / float64(instr)
}

// LLCMPKI returns shared-LLC demand misses per kilo-instruction.
func (r Result) LLCMPKI() float64 {
	var instr uint64
	for _, c := range r.Cores {
		instr += c.Instructions
	}
	if instr == 0 {
		return 0
	}
	return 1000 * float64(r.LLC.DemandMisses) / float64(instr)
}
