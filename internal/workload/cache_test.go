package workload

import (
	"sync"
	"testing"

	"repro/internal/trace"
)

func TestMaterializeSharesOneSlab(t *testing.T) {
	ResetTraceCache()
	a := MustMaterialize("lbm-1274", 2_000)
	b := MustMaterialize("lbm-1274", 2_000)
	if &a[0] != &b[0] {
		t.Error("repeated Materialize returned distinct slabs")
	}
	c := MustMaterialize("lbm-1274", 3_000) // different length = different key
	if len(c) != 3_000 || &a[0] == &c[0] {
		t.Error("different length shared a slab")
	}

	st := TraceCacheStats()
	if st.Entries != 2 || st.Misses != 2 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 2 entries, 2 misses, 1 hit", st)
	}
	if want := int64(5_000) * trace.RecordBytes; st.Bytes != want {
		t.Errorf("bytes = %d, want %d", st.Bytes, want)
	}
}

func TestMaterializeMatchesGenerate(t *testing.T) {
	ResetTraceCache()
	got := MustMaterialize("fotonik3d_s-8225", 1_500)
	want := MustGenerate("fotonik3d_s-8225", 1_500)
	if len(got) != len(want) {
		t.Fatalf("lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestMaterializeUnknownNameNotCached(t *testing.T) {
	ResetTraceCache()
	if _, err := Materialize("no-such-trace", 100); err == nil {
		t.Fatal("unknown trace did not error")
	}
	st := TraceCacheStats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("failed materialization left %+v behind", st)
	}
}

// TestMaterializeSingleFlight hammers one key from many goroutines (run
// under -race in CI) and asserts the trace was generated exactly once
// and every caller observed the same slab.
func TestMaterializeSingleFlight(t *testing.T) {
	ResetTraceCache()
	const workers = 16
	slabs := make([]*trace.Record, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			recs := MustMaterialize("cassandra-p0c0", 4_000)
			slabs[w] = &recs[0]
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if slabs[w] != slabs[0] {
			t.Fatalf("goroutine %d saw a different slab", w)
		}
	}
	st := TraceCacheStats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 generation", st.Misses)
	}
	if st.Hits != workers-1 {
		t.Errorf("hits = %d, want %d", st.Hits, workers-1)
	}
}

func TestResetTraceCache(t *testing.T) {
	MustMaterialize("lbm-1274", 1_000)
	ResetTraceCache()
	st := TraceCacheStats()
	if st.Entries != 0 || st.Hits != 0 || st.Misses != 0 || st.Bytes != 0 {
		t.Errorf("stats after reset = %+v, want all zero", st)
	}
}
