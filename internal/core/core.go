package core
