package workload

import "repro/internal/mem"

// family is a recurring spatial footprint pattern: a set of block offsets
// accessed in a canonical temporal order, reached through a pool of
// trigger PCs. Families are the synthetic analogue of the paper's Fig 2:
// when a pattern recurs, both its spatial footprint and its internal
// access order recur.
type family struct {
	// triggerPCs rotate across activations: server code reaches the same
	// data-structure walk from many call sites, which is what forces
	// PC-keyed characterizations (SMS/Bingo/DSPatch) to relearn patterns
	// Gaze's (trigger, second) key already knows.
	triggerPCs []uint64
	// order lists block offsets in access order; order[0] is the trigger
	// offset, order[1] the second offset.
	order []int
}

func (f *family) trigger() int { return f.order[0] }
func (f *family) second() int  { return f.order[1] }

// newFamily builds a family with the given first two offsets, total
// density (number of touched blocks, >= 2) and trigger-PC pool.
func (g *gen) newFamily(trigger, second, density int, pcs []uint64) *family {
	if density < 2 {
		density = 2
	}
	if density > mem.BlocksPerPage {
		density = mem.BlocksPerPage
	}
	used := make(map[int]bool, density)
	used[trigger], used[second] = true, true
	order := make([]int, 0, density)
	order = append(order, trigger, second)
	for len(order) < density {
		off := g.r.Intn(mem.BlocksPerPage)
		if !used[off] {
			used[off] = true
			order = append(order, off)
		}
	}
	return &family{triggerPCs: pcs, order: order}
}

// churn re-randomizes the tail of the footprint (everything after the
// first two accesses), modelling pattern drift in long-running servers.
func (f *family) churn(g *gen) {
	if len(f.order) <= 2 {
		return
	}
	used := map[int]bool{f.order[0]: true, f.order[1]: true}
	tail := f.order[2:]
	for i := range tail {
		if g.r.Bool(0.5) {
			for {
				off := g.r.Intn(mem.BlocksPerPage)
				if !used[off] {
					tail[i] = off
					break
				}
			}
		}
		used[tail[i]] = true
	}
}

// noiseOpts control per-activation deviation from the canonical pattern.
type noiseOpts struct {
	// early is the probability the first two accesses deviate (out-of-
	// order interference hitting the region start — this is what breaks
	// strict matching and what the backup stride path compensates for).
	early float64
	// tail is the probability some later accesses deviate.
	tail float64
}

// activate instantiates a family on a page with per-activation noise.
func (g *gen) activate(f *family, page uint64, noise noiseOpts) *regionStream {
	order := make([]int, len(f.order))
	copy(order, f.order)
	if len(order) > 2 && g.r.Bool(noise.tail) {
		// Swap a couple of tail positions and occasionally drop the last.
		i := 2 + g.r.Intn(len(order)-2)
		j := 2 + g.r.Intn(len(order)-2)
		order[i], order[j] = order[j], order[i]
		if g.r.Bool(0.3) {
			order = order[:len(order)-1]
		}
	}
	if len(order) > 2 && g.r.Bool(noise.early) {
		order[1], order[2] = order[2], order[1]
	}
	pc := f.triggerPCs[g.r.Intn(len(f.triggerPCs))]
	return &regionStream{page: page, pcs: []uint64{pc}, order: order}
}

// pcPool allocates n distinct load PCs.
func (g *gen) pcPool(n int) []uint64 {
	pcs := make([]uint64, n)
	for i := range pcs {
		pcs[i] = loadPCBase + uint64(g.r.Intn(1<<20))*16
	}
	return pcs
}

// distinctOffsets draws n distinct block offsets.
func (g *gen) distinctOffsets(n int) []int {
	perm := g.r.Perm(mem.BlocksPerPage)
	return perm[:n]
}

// familySet builds the catalogue of footprint families for a workload.
//
// groups×triggers families are produced: families in the same trigger
// column share a trigger offset (ambiguous for Offset/PMP keying) and
// families in the same PC group share trigger PCs (ambiguous for
// DSPatch's PC keying); the second offset uniquely resolves the family
// within a trigger column, which is exactly the information Gaze's
// (trigger=index, second=tag) PHT key exploits.
func (g *gen) familySet(groups, triggers int, pcsPerGroup, minDensity, maxDensity int) []*family {
	trigOffs := g.distinctOffsets(triggers)
	fams := make([]*family, 0, groups*triggers)
	for gi := 0; gi < groups; gi++ {
		pcs := g.pcPool(pcsPerGroup)
		for ti := 0; ti < triggers; ti++ {
			trigger := trigOffs[ti]
			// Distinct second per group within a trigger column.
			second := (trigger + 1 + gi*5 + ti) % mem.BlocksPerPage
			if second == trigger {
				second = (second + 1) % mem.BlocksPerPage
			}
			density := minDensity
			if maxDensity > minDensity {
				density += g.r.Intn(maxDensity - minDensity)
			}
			fams = append(fams, g.newFamily(trigger, second, density, pcs))
		}
	}
	return fams
}
