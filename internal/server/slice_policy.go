package server

import (
	"repro/internal/engine"
	"repro/internal/workload"
)

// SlicePolicy turns intra-trace parallelism on by default for big ingested
// traces: a single-core job over an ingested trace whose effective slab
// (the smaller of the stored record count and the engine scale's trace
// length) has at least MinRecords records is rewritten to slice into
// Shards time slices — unless the client set slice_shards itself (any
// value, including the explicit 1 that pins the unsliced path).
//
// The rewrite happens at request compile time, BEFORE content addressing,
// so the policy is part of the job's identity: two servers with the same
// policy produce the same addresses, results persisted under a sliced
// address are never confused with unsliced ones, and a cluster worker
// leasing the job sees slice_shards spelled out in the job document
// rather than re-deriving it from local configuration. For the same
// reason Shards is a fixed number, never GOMAXPROCS: a machine-dependent
// default would make addresses irreproducible across hosts.
type SlicePolicy struct {
	// MinRecords is the effective-slab-size threshold at or above which
	// jobs are sliced.
	MinRecords int
	// Shards is the slice count applied (<= 0 selects DefaultAutoSliceShards).
	Shards int
	// Records reports the stored record count of an ingested trace by
	// address (typically Registry-backed). Unknown addresses are never
	// sliced — validation will reject them downstream with a better error.
	Records func(addr string) (int, bool)
}

// DefaultAutoSliceShards is the slice count an auto-slice policy applies
// when unconfigured. Four slices saturate a typical small server while
// keeping the warmup-replay overhead (one extra warmup per slice) a few
// percent of paper-scale budgets.
const DefaultAutoSliceShards = 4

// apply rewrites job in place per the policy. A nil policy applies nothing.
func (p *SlicePolicy) apply(scale engine.Scale, job *engine.Job) {
	if p == nil || p.Records == nil {
		return
	}
	if len(job.Traces) != 1 || job.Overrides.SliceShards != 0 {
		return
	}
	addr, ok := workload.IngestedDigest(job.Traces[0])
	if !ok {
		return
	}
	n, ok := p.Records(addr)
	if !ok {
		return
	}
	if scale.TraceLen < n {
		n = scale.TraceLen
	}
	if p.MinRecords <= 0 || n < p.MinRecords {
		return
	}
	shards := p.Shards
	if shards <= 0 {
		shards = DefaultAutoSliceShards
	}
	job.Overrides.SliceShards = shards
}

// SetSlicePolicy enables auto-slicing on the synchronous compile paths
// (POST /simulate, /sweep) and on analytics grid addressing — the
// analytics endpoints must compute the same content addresses the sweep
// paths persisted under. The background-jobs Compiler picks the policy up
// via CompilerWithPolicy.
func (s *Server) SetSlicePolicy(p *SlicePolicy) *Server {
	s.slice = p
	return s
}
