package trace

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func testRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			PC:     0x400000 + uint64(i)*4,
			Addr:   0x7f0000000000 + uint64(i)*64,
			NonMem: uint16(i % 300),
			Kind:   Kind(i % 2),
		}
	}
	return recs
}

func TestColumnarRoundTrip(t *testing.T) {
	recs := testRecords(1000)
	data := EncodeColumnar(recs)
	if int64(len(data)) != ColumnarSize(len(recs)) {
		t.Fatalf("encoded %d bytes, want %d", len(data), ColumnarSize(len(recs)))
	}
	cols, err := DecodeColumnar(data)
	if err != nil {
		t.Fatal(err)
	}
	if cols.Len() != len(recs) {
		t.Fatalf("Len = %d, want %d", cols.Len(), len(recs))
	}
	for i, want := range recs {
		if got := cols.At(i); got != want {
			t.Fatalf("At(%d) = %+v, want %+v", i, got, want)
		}
	}
	if cols.Mapped() {
		t.Fatal("in-memory decode reports Mapped")
	}

	// Prefix views share planes and clamp out-of-range lengths.
	p := cols.Prefix(10)
	if p.Len() != 10 || p.At(9) != recs[9] {
		t.Fatalf("Prefix(10): Len %d At(9) %+v", p.Len(), p.At(9))
	}
	if cols.Prefix(0) != cols || cols.Prefix(cols.Len()+1) != cols {
		t.Fatal("Prefix out of range should return the receiver")
	}
}

func TestColumnarRejectsDamage(t *testing.T) {
	recs := testRecords(16)
	good := EncodeColumnar(recs)

	for name, mutate := range map[string]func([]byte) []byte{
		"short header":  func(b []byte) []byte { return b[:8] },
		"bad magic":     func(b []byte) []byte { b[0] ^= 0xff; return b },
		"bad version":   func(b []byte) []byte { b[6] = 0x7f; return b },
		"truncated":     func(b []byte) []byte { return b[:len(b)-3] },
		"trailing junk": func(b []byte) []byte { return append(b, 0xaa) },
	} {
		data := mutate(append([]byte(nil), good...))
		if _, err := DecodeColumnar(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestMapColumnar(t *testing.T) {
	recs := testRecords(4096)
	path := filepath.Join(t.TempDir(), "slab.cols")
	if err := os.WriteFile(path, EncodeColumnar(recs), 0o644); err != nil {
		t.Fatal(err)
	}
	cols, err := MapColumnar(path)
	if errors.Is(err, ErrMmapUnsupported) {
		t.Skip("no mmap on this platform")
	}
	if err != nil {
		t.Fatal(err)
	}
	if !cols.Mapped() {
		t.Fatal("mapped slab reports Mapped() == false")
	}
	if cols.MappedBytes() != ColumnarSize(len(recs)) {
		t.Fatalf("MappedBytes = %d, want %d", cols.MappedBytes(), ColumnarSize(len(recs)))
	}
	if cols.HeapBytes() != 0 {
		t.Fatalf("HeapBytes = %d for a mapped slab", cols.HeapBytes())
	}
	for i, want := range recs {
		if got := cols.At(i); got != want {
			t.Fatalf("At(%d) = %+v, want %+v", i, got, want)
		}
	}

	// A reader over the mapped slab replays the identical stream, offset
	// starts included.
	r := NewRecordsReaderAt(cols, cols.Len()-1)
	if rec, err := r.Next(); err != nil || rec != recs[len(recs)-1] {
		t.Fatalf("offset read = %+v, %v", rec, err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("reader past the end should EOF")
	}
	r.Reset()
	if rec, _ := r.Next(); rec != recs[0] {
		t.Fatal("Reset should rewind to record 0, not the start offset")
	}
}

func TestMapColumnarMissing(t *testing.T) {
	if _, err := MapColumnar(filepath.Join(t.TempDir(), "nope.cols")); err == nil {
		t.Fatal("mapping a missing file should fail")
	}
}
