package harness

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/stats"
)

// Fig13 reproduces Figure 13: multi-level prefetching. Group 1 combines an
// L1 prefetcher with an L2 prefetcher; Group 2 uses the commercial
// IP-stride at L1 with the same L2 prefetchers.
func Fig13(r *Runner) []stats.Table {
	l1s := []string{"vBerti", "PMP", "DSPatch", "IPCP-L1", "Gaze"}
	l2s := []string{"SPP-PPF", "Bingo"}
	traces := r.EvalSet()

	speedup := func(l1, l2 string) float64 {
		var vals []float64
		for _, tr := range traces {
			base := r.Run(Job{Traces: []string{tr}, L1: []string{"none"}}).MeanIPC()
			res := r.Run(Job{Traces: []string{tr}, L1: []string{l1}, L2: []string{l2}})
			if base > 0 {
				vals = append(vals, res.MeanIPC()/base)
			}
		}
		return stats.Geomean(vals)
	}

	g1 := stats.Table{
		Title:  "Fig 13 (Group 1): L1+L2 prefetcher combinations, norm. IPC",
		Header: []string{"combination", "speedup"},
	}
	for _, l1 := range l1s {
		for _, l2 := range l2s {
			g1.AddRow(l1+"+"+l2, stats.F(speedup(l1, l2), 3))
		}
	}
	g1.AddRow("Gaze alone (L1)", stats.F(speedup("Gaze", ""), 3))

	g2 := stats.Table{
		Title:  "Fig 13 (Group 2): IP-stride at L1 + L2 prefetcher",
		Header: []string{"combination", "speedup"},
	}
	for _, l2 := range append(l2s, "vBerti", "SMS", "Bingo", "DSPatch", "PMP", "Gaze") {
		g2.AddRow("IP-stride+"+l2, stats.F(speedup("IP-stride", l2), 3))
	}
	return []stats.Table{g1, g2}
}

// fig14Prefetchers are the six prefetchers of the multi-core comparison.
var fig14Prefetchers = []string{"SPP-PPF", "vBerti", "Bingo", "DSPatch", "PMP", "Gaze"}

// Fig14 reproduces Figure 14: homogeneous and heterogeneous multi-core
// speedups for 1-8 cores.
func Fig14(r *Runner) []stats.Table {
	coreCounts := []int{1, 2, 4, 8}
	traces := r.homoTraces()

	homo := stats.Table{
		Title:  "Fig 14a: homogeneous multi-core speedup",
		Header: append([]string{"prefetcher"}, coreLabels(coreCounts)...),
	}
	for _, pf := range fig14Prefetchers {
		row := []string{pf}
		for _, n := range coreCounts {
			var vals []float64
			for _, tr := range traces {
				mix := repeat(tr, n)
				base := r.Run(Job{Traces: mix, L1: []string{"none"}}).MeanIPC()
				res := r.Run(Job{Traces: mix, L1: []string{pf}}).MeanIPC()
				if base > 0 {
					vals = append(vals, res/base)
				}
			}
			row = append(row, stats.F(stats.Geomean(vals), 3))
		}
		homo.AddRow(row...)
	}

	hetero := stats.Table{
		Title:  "Fig 14b: heterogeneous multi-core speedup (random mixes)",
		Header: append([]string{"prefetcher"}, coreLabels(coreCounts)...),
	}
	for _, pf := range fig14Prefetchers {
		row := []string{pf}
		for _, n := range coreCounts {
			mixes := r.heteroMixes(n, 3)
			var vals []float64
			for _, mix := range mixes {
				base := r.Run(Job{Traces: mix, L1: []string{"none"}}).MeanIPC()
				res := r.Run(Job{Traces: mix, L1: []string{pf}}).MeanIPC()
				if base > 0 {
					vals = append(vals, res/base)
				}
			}
			row = append(row, stats.F(stats.Geomean(vals), 3))
		}
		hetero.AddRow(row...)
	}
	return []stats.Table{homo, hetero}
}

// homoTraces picks the homogeneous-mix trace set at this scale.
func (r *Runner) homoTraces() []string {
	picks := []string{"lbm-1274", "bwaves_s-2609", "PageRank-61", "cassandra-p0c0", "mcf_s-1554", "leslie3d-134"}
	if s := r.Scale(); s.TracesPerSuite > 0 && s.TracesPerSuite < 3 {
		picks = picks[:4]
	}
	return picks
}

// heteroMixes draws deterministic random mixes of n traces each.
func (r *Runner) heteroMixes(n, count int) [][]string {
	pool := r.EvalSet()
	src := rng.NewFromString(fmt.Sprintf("hetero-mixes-%d", n))
	mixes := make([][]string, count)
	for i := range mixes {
		mix := make([]string, n)
		for j := range mix {
			mix[j] = pool[src.Intn(len(pool))]
		}
		mixes[i] = mix
	}
	return mixes
}

func repeat(s string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = s
	}
	return out
}

func coreLabels(counts []int) []string {
	out := make([]string, len(counts))
	for i, c := range counts {
		out[i] = fmt.Sprintf("%d-core", c)
	}
	return out
}

// tableVIMixes are the paper's selected four-core mixes (Table VI).
var tableVIMixes = map[string][]string{
	"mix1": {"wrf-1254", "Triangle-1", "lbm_s-2676", "Triangle-6"},
	"mix2": {"GemsFDTD-1211", "PageRank-19", "BFS.B-5", "BFS-5"},
	"mix3": {"bwaves_s-2609", "BFSCC-1", "wrf_s-8065", "astar-359"},
	"mix4": {"PageRank.D-24", "bwaves-1963", "PageRank-61", "facesim-22"},
	"mix5": {"cassandra-p0c0", "cassandra-p0c1", "cassandra-p0c2", "cassandra-p0c3"},
}

// Fig15 reproduces Figure 15: per-core speedups on the Table VI four-core
// heterogeneous mixes for vBerti, PMP and Gaze.
func Fig15(r *Runner) []stats.Table {
	t := stats.Table{
		Title:  "Fig 15: four-core heterogeneous mixes (Table VI), per-core speedup",
		Header: []string{"mix", "core", "vBerti", "PMP", "Gaze"},
	}
	pfs := []string{"vBerti", "PMP", "Gaze"}
	for _, mixName := range []string{"mix1", "mix2", "mix3", "mix4", "mix5"} {
		mix := tableVIMixes[mixName]
		base := r.Run(Job{Traces: mix, L1: []string{"none"}})
		results := make(map[string][]float64)
		for _, pf := range pfs {
			res := r.Run(Job{Traces: mix, L1: []string{pf}})
			for c := range mix {
				ratio := 0.0
				if base.Cores[c].IPC > 0 {
					ratio = res.Cores[c].IPC / base.Cores[c].IPC
				}
				results[pf] = append(results[pf], ratio)
			}
		}
		for c := range mix {
			row := []string{mixName, fmt.Sprintf("c%d", c)}
			for _, pf := range pfs {
				row = append(row, stats.F(results[pf][c], 3))
			}
			t.AddRow(row...)
		}
		row := []string{mixName, "avg"}
		for _, pf := range pfs {
			row = append(row, stats.F(stats.Mean(results[pf]), 3))
		}
		t.AddRow(row...)
	}
	return []stats.Table{t}
}
