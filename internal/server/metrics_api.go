// GET /metrics: the engine's operational counters in Prometheus text
// exposition format (text/plain; version=0.0.4), written by hand — the
// format is three line shapes (# HELP, # TYPE, sample) and taking a
// client library for it would violate the repo's no-dependency rule.
// The endpoint is read-only, unauthenticated and cheap (counter
// snapshots plus one store Len), so scraping it every few seconds is
// fine.
//
// Everything /stats reports as JSON appears here under a gaze_ prefix:
// engine memo/store/simulated counters, trace-cache occupancy and
// eviction counters, result-store size and GC totals, jobs-manager state
// counts, and the analytics document cache. Counters are _total-suffixed
// per Prometheus naming conventions; gauges are instantaneous values.
package server

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// promWriter accumulates one exposition document. Metric names must
// match [a-zA-Z_:][a-zA-Z0-9_:]* and each name's HELP/TYPE header must
// precede its samples — both guaranteed here by construction and
// enforced in tests by a lint pass.
type promWriter struct {
	b strings.Builder
}

func (p *promWriter) metric(name, typ, help string, value float64) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
		name, help, name, typ, name, strconv.FormatFloat(value, 'g', -1, 64))
}

func (p *promWriter) counter(name, help string, v float64) { p.metric(name, "counter", help, v) }
func (p *promWriter) gauge(name, help string, v float64)   { p.metric(name, "gauge", help, v) }

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	var p promWriter

	p.gauge("gaze_stats_schema_version",
		"Schema version of the /stats document.", float64(StatsSchemaVersion))

	p.counter("gaze_engine_memo_hits_total",
		"Engine runs served from the in-process memo.", float64(st.Counters.MemoHits))
	p.counter("gaze_engine_store_hits_total",
		"Engine runs served from the persisted result store.", float64(st.Counters.StoreHits))
	p.counter("gaze_engine_simulated_total",
		"Engine runs computed by the simulator.", float64(st.Counters.Simulated))

	p.gauge("gaze_trace_cache_entries",
		"Materialized trace slabs resident in memory.", float64(st.TraceCacheEntries))
	p.gauge("gaze_trace_cache_bytes",
		"Resident bytes of materialized trace slabs.", float64(st.TraceCacheBytes))
	p.gauge("gaze_trace_cache_mapped_bytes",
		"Bytes of mmap-backed columnar trace slabs (kernel page cache, not heap).",
		float64(st.TraceCacheMapped))
	p.counter("gaze_trace_cache_hits_total",
		"Materialize calls served an existing or in-flight slab.", float64(st.TraceCacheHits))
	p.counter("gaze_trace_cache_misses_total",
		"Materialize calls that generated a slab.", float64(st.TraceCacheMisses))
	p.counter("gaze_trace_cache_evictions_total",
		"Trace slabs dropped to honor the byte budget.", float64(st.TraceCacheEvictions))

	if store := s.eng.Store(); store != nil {
		p.gauge("gaze_store_entries",
			"Result records in the persisted store.", float64(store.Len()))
		p.counter("gaze_store_gc_runs_total",
			"Result-store GC cycles completed.", float64(st.GC.Runs))
		p.counter("gaze_store_gc_reclaimed_entries_total",
			"Result records deleted by GC.", float64(st.GC.ReclaimedEntries))
		p.counter("gaze_store_gc_reclaimed_bytes_total",
			"Bytes reclaimed by result-store GC.", float64(st.GC.ReclaimedBytes))
	}

	if s.jobs != nil {
		c := s.jobs.Counters()
		p.gauge("gaze_jobs_queued", "Background jobs waiting to run.", float64(c.Queued))
		p.gauge("gaze_jobs_running", "Background jobs currently running.", float64(c.Running))
		p.counter("gaze_jobs_succeeded_total", "Background jobs completed successfully.", float64(c.Succeeded))
		p.counter("gaze_jobs_failed_total", "Background jobs that failed.", float64(c.Failed))
		p.counter("gaze_jobs_canceled_total", "Background jobs canceled by clients.", float64(c.Canceled))
		p.counter("gaze_jobs_interrupted_total", "Background jobs interrupted by shutdown.", float64(c.Interrupted))
	}

	if s.cluster != nil {
		c := s.cluster.Counters()
		p.gauge("gaze_cluster_workers", "Workers currently registered with the coordinator.", float64(c.Workers))
		p.gauge("gaze_cluster_units_pending", "Work units waiting to be leased.", float64(c.UnitsPending))
		p.gauge("gaze_cluster_units_leased", "Work units currently leased to workers.", float64(c.UnitsLeased))
		p.counter("gaze_cluster_leases_total", "Work units handed to workers.", float64(c.Leases))
		p.counter("gaze_cluster_releases_total",
			"Leases revoked and requeued (deadline expiry or deregister).", float64(c.Releases))
		p.counter("gaze_cluster_results_total", "Uploaded results that settled a live unit.", float64(c.Results))
		p.counter("gaze_cluster_duplicate_results_total",
			"Verified uploads for already-settled units.", float64(c.DuplicateResults))
		p.counter("gaze_cluster_failures_total", "Units settled by deterministic failure reports.", float64(c.Failures))
		p.counter("gaze_cluster_replications_total",
			"Ingested traces replicated to workers (worker-reported).", float64(c.Replications))
	}

	if s.traces != nil {
		p.gauge("gaze_ingested_traces",
			"External traces resident in the registry.", float64(s.traces.Len()))
	}

	// Telemetry renders unconditionally: the engine always has a telemetry
	// configuration, and interval 0 is itself the "disabled" signal.
	ts := s.eng.TelemetryStats()
	p.gauge("gaze_telemetry_sampling_interval_instructions",
		"Armed interval-telemetry sampling period in measured instructions (0 = disabled).",
		float64(ts.Interval))
	p.gauge("gaze_telemetry_documents",
		"Timeline documents held by the engine (persisted store when attached, in-process memo otherwise).",
		float64(ts.Documents))
	p.gauge("gaze_telemetry_bytes",
		"Byte footprint of the engine's timeline documents.", float64(ts.Bytes))

	// Latency histograms (the obs bundle). The HTTP and engine-phase
	// families always render — New wires a default bundle — while the
	// queue-wait and lease-hold families follow their subsystems'
	// attachment, like the counter blocks above.
	s.metrics.HTTPDuration.WriteProm(&p.b)
	s.metrics.EnginePhase.WriteProm(&p.b)
	if s.jobs != nil {
		s.metrics.JobQueueWait.WriteProm(&p.b)
	}
	if s.cluster != nil {
		s.metrics.LeaseHold.WriteProm(&p.b)
	}

	if s.tracer != nil {
		o := s.tracer.Stats()
		p.counter("gaze_obs_spans_started_total",
			"Spans opened by the tracer.", float64(o.SpansStarted))
		p.counter("gaze_obs_spans_finished_total",
			"Spans ended and recorded.", float64(o.SpansFinished))
		p.counter("gaze_obs_spans_dropped_total",
			"Spans evicted from the ring buffer.", float64(o.SpansDropped))
		p.gauge("gaze_obs_ring_occupancy",
			"Spans currently held in the debug ring buffer.", float64(o.RingOccupancy))
	}

	entries, hits, misses := s.analytics.counters()
	p.gauge("gaze_analytics_cache_entries",
		"Assembled analytics documents cached in memory.", float64(entries))
	p.counter("gaze_analytics_cache_hits_total",
		"Analytics requests served a cached document.", float64(hits))
	p.counter("gaze_analytics_cache_misses_total",
		"Analytics requests that assembled a document.", float64(misses))

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(p.b.String())) //nolint:errcheck // client disconnects are routine
}
