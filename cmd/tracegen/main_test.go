package main

import (
	"bytes"
	"testing"

	"repro/internal/trace"
	"repro/internal/traceset"
	"repro/internal/workload"
)

// TestExportIngestRoundTrip is the satellite acceptance loop: generate a
// synthetic trace, export it through every -format encoder, ingest each
// export into a registry, and require identical records and one shared
// registry address — proving tracegen output is indistinguishable from a
// foreign capture to the ingestion pipeline.
func TestExportIngestRoundTrip(t *testing.T) {
	const name, n = "PageRank-61", 5_000
	recs, err := workload.Generate(name, n)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := traceset.Open(t.TempDir(), traceset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantAddr := traceset.DigestRecords(recs)

	for _, f := range trace.Formats() {
		var buf bytes.Buffer
		if err := writeTrace(&buf, f, recs); err != nil {
			t.Fatalf("%s: export: %v", f, err)
		}
		m, _, err := reg.Ingest(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: ingest: %v", f, err)
		}
		if m.Address != wantAddr {
			t.Fatalf("%s: ingested to %s, want %s", f, m.Address, wantAddr)
		}
	}
	if reg.Len() != 1 {
		t.Fatalf("four formats produced %d registry entries, want 1", reg.Len())
	}
	got, err := reg.Records(wantAddr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("registry returned %d records, want %d", len(got), n)
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
}
