// Fixed-bucket latency histograms in Prometheus exposition shape:
// cumulative _bucket{le="..."} samples in ascending bound order with a
// terminal +Inf bucket, plus _sum and _count. Observe is lock-free
// (atomics only); rendering cumulates on the fly.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets covers sub-millisecond cache hits through multi-second
// sweeps — the serving stack's full latency range.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// WaitBuckets extends DefBuckets for durations that legitimately reach
// minutes: queue wait under load, lease hold across big work units.
var WaitBuckets = append(append([]float64(nil), DefBuckets...), 30, 60, 120)

// Histogram is one fixed-bucket histogram family. A nil *Histogram
// drops observations.
type Histogram struct {
	name   string
	help   string
	bounds []float64 // ascending upper bounds; +Inf is implicit

	counts  []atomic.Uint64 // per-bucket (non-cumulative); last slot is +Inf
	sumBits atomic.Uint64   // float64 bits, CAS-accumulated
	count   atomic.Uint64
}

// NewHistogram builds a histogram with the given ascending bucket upper
// bounds (seconds).
func NewHistogram(name, help string, bounds []float64) *Histogram {
	h := &Histogram{name: name, help: help, bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	return h
}

// Observe records one value (typically seconds).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// WriteProm renders the full family: HELP, TYPE and samples.
func (h *Histogram) WriteProm(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
	h.writeSamples(w, "")
}

// writeSamples emits cumulative buckets plus _sum/_count. labels, when
// non-empty, is a rendered `key="value"` prefix for vec children.
func (h *Histogram) writeSamples(w io.Writer, labels string) {
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", h.name, labels, formatBound(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", h.name, labels, cum)
	sum := math.Float64frombits(h.sumBits.Load())
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", h.name, sum, h.name, h.count.Load())
	} else {
		ls := strings.TrimSuffix(labels, ",")
		fmt.Fprintf(w, "%s_sum{%s} %g\n%s_count{%s} %d\n", h.name, ls, sum, h.name, ls, h.count.Load())
	}
}

func formatBound(b float64) string { return strconv.FormatFloat(b, 'g', -1, 64) }

// HistogramVec is a histogram family keyed by one label (route, phase).
// Children are created on first observation. A nil *HistogramVec drops
// observations.
type HistogramVec struct {
	name   string
	help   string
	label  string
	bounds []float64

	mu       sync.RWMutex
	children map[string]*Histogram
}

// NewHistogramVec builds a label-keyed histogram family.
func NewHistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	return &HistogramVec{
		name:     name,
		help:     help,
		label:    label,
		bounds:   append([]float64(nil), bounds...),
		children: make(map[string]*Histogram),
	}
}

// Observe records v (seconds) under the child for the given label value.
func (v *HistogramVec) Observe(labelValue string, x float64) {
	if v == nil {
		return
	}
	v.mu.RLock()
	h := v.children[labelValue]
	v.mu.RUnlock()
	if h == nil {
		v.mu.Lock()
		h = v.children[labelValue]
		if h == nil {
			h = NewHistogram(v.name, "", v.bounds)
			v.children[labelValue] = h
		}
		v.mu.Unlock()
	}
	h.Observe(x)
}

// WriteProm renders HELP/TYPE plus every child's samples, label values
// sorted for a stable exposition.
func (v *HistogramVec) WriteProm(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", v.name, v.help, v.name)
	v.mu.RLock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		// strconv.Quote covers the three escapes Prometheus label values
		// need (backslash, quote, newline); our values are route patterns
		// and phase names, printable ASCII throughout.
		v.children[k].writeSamples(w, v.label+"="+strconv.Quote(k)+",")
	}
	v.mu.RUnlock()
}

// Metrics bundles the serving stack's latency histograms so one wiring
// point (gazeserve main, or server.New's default) hands each subsystem
// the family it feeds. Any field may be nil.
type Metrics struct {
	// HTTPDuration is per-route HTTP request latency,
	// gaze_http_request_duration_seconds{route="GET /jobs/{id}"}.
	HTTPDuration *HistogramVec
	// EnginePhase is engine phase latency,
	// gaze_engine_phase_duration_seconds{phase="materialize"|...}.
	EnginePhase *HistogramVec
	// JobQueueWait is submit→dispatch wait, gaze_jobs_queue_wait_seconds.
	JobQueueWait *Histogram
	// LeaseHold is lease grant→settle/requeue hold time,
	// gaze_cluster_lease_hold_seconds.
	LeaseHold *Histogram
}

// NewMetrics builds the standard bundle.
func NewMetrics() *Metrics {
	return &Metrics{
		HTTPDuration: NewHistogramVec("gaze_http_request_duration_seconds",
			"HTTP request latency by matched route pattern.", "route", DefBuckets),
		EnginePhase: NewHistogramVec("gaze_engine_phase_duration_seconds",
			"Engine phase latency (queue_wait, materialize, simulate, slice, merge, store_commit).", "phase", DefBuckets),
		JobQueueWait: NewHistogram("gaze_jobs_queue_wait_seconds",
			"Time jobs spent queued between submission and dispatch.", WaitBuckets),
		LeaseHold: NewHistogram("gaze_cluster_lease_hold_seconds",
			"Work-unit lease hold time from grant to settle or expiry requeue.", WaitBuckets),
	}
}
