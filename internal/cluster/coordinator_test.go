package cluster

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/sim"
)

// tinyScale keeps cluster tests fast while still running real simulations.
var tinyScale = engine.Scale{TracesPerSuite: 1, TraceLen: 10_000, Warmup: 5_000, Sim: 20_000}

// fakeNow is an advanceable clock for deterministic lease-expiry tests.
type fakeNow struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeNow() *fakeNow { return &fakeNow{t: time.Unix(1_700_000_000, 0)} }

func (f *fakeNow) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeNow) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func testJob(trace, pf string) engine.Job {
	return engine.Job{Traces: []string{trace}, L1: []string{pf}}
}

func registerTestWorker(t *testing.T, c *Coordinator, name string) string {
	t.Helper()
	resp, err := c.Register(RegisterRequest{
		Name:               name,
		Concurrency:        2,
		Scale:              tinyScale,
		StoreSchemaVersion: engine.StoreSchemaVersion,
	})
	if err != nil {
		t.Fatal(err)
	}
	return resp.WorkerID
}

// completeOnSecondEngine plays the worker role in-process: computes the
// unit on an independent engine and uploads the exported document.
func completeOnSecondEngine(t *testing.T, c *Coordinator, worker *engine.Engine, u WorkUnit) {
	t.Helper()
	key := u.Job.CanonicalJSON(worker.Scale())
	if got := engine.AddressOfKey(key); got != u.Address {
		t.Fatalf("leased address %s, worker derives %s", u.Address, got)
	}
	res := worker.Run(u.Job)
	doc, err := engine.ExportResult(key, res)
	if err != nil {
		t.Fatal(err)
	}
	settled, err := c.CompleteResult(u.Address, doc)
	if err != nil {
		t.Fatal(err)
	}
	if !settled {
		t.Fatalf("upload for %s did not settle the unit", u.Address[:12])
	}
}

// waitPending polls until n units are pending (Execute runs in a
// goroutine; enqueueing is quick but asynchronous to the test body).
func waitPending(t *testing.T, c *Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Counters().UnitsPending != n {
		if time.Now().After(deadline) {
			t.Fatalf("units pending = %d, want %d", c.Counters().UnitsPending, n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRegisterHandshake(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{Engine: engine.New(engine.Options{Scale: tinyScale})})

	if _, err := c.Register(RegisterRequest{Scale: tinyScale, StoreSchemaVersion: 999}); !errors.Is(err, ErrIncompatible) {
		t.Errorf("schema mismatch: err = %v, want ErrIncompatible", err)
	}
	wrong := tinyScale
	wrong.Sim *= 2
	if _, err := c.Register(RegisterRequest{Scale: wrong, StoreSchemaVersion: engine.StoreSchemaVersion}); !errors.Is(err, ErrIncompatible) {
		t.Errorf("scale mismatch: err = %v, want ErrIncompatible", err)
	}
	// TracesPerSuite only selects jobs — it must NOT gate registration.
	selects := tinyScale
	selects.TracesPerSuite = 99
	if _, err := c.Register(RegisterRequest{Scale: selects, StoreSchemaVersion: engine.StoreSchemaVersion}); err != nil {
		t.Errorf("TracesPerSuite mismatch rejected: %v", err)
	}

	id := registerTestWorker(t, c, "node a/1")
	if id == "" {
		t.Fatal("empty worker id")
	}
	if err := c.Heartbeat(id, HeartbeatRequest{}); err != nil {
		t.Errorf("heartbeat: %v", err)
	}
	if err := c.Heartbeat("nope", HeartbeatRequest{}); !errors.Is(err, ErrUnknownWorker) {
		t.Errorf("unknown heartbeat: err = %v, want ErrUnknownWorker", err)
	}
	if _, err := c.Lease("nope", 1); !errors.Is(err, ErrUnknownWorker) {
		t.Errorf("unknown lease: err = %v, want ErrUnknownWorker", err)
	}
	if err := c.Deregister(id); err != nil {
		t.Errorf("deregister: %v", err)
	}
	if err := c.Deregister(id); !errors.Is(err, ErrUnknownWorker) {
		t.Errorf("double deregister: err = %v, want ErrUnknownWorker", err)
	}
}

// TestExecuteRemote drives the full dispatch loop in-process — Execute
// enqueues, a second engine computes, uploads settle the batch — and
// asserts the acceptance criterion: the coordinator's store entries are
// byte-identical to a pure single-node run of the same jobs.
func TestExecuteRemote(t *testing.T) {
	coordDir := t.TempDir()
	store, err := engine.Open(coordDir)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{Scale: tinyScale, Store: store})
	c := NewCoordinator(CoordinatorOptions{Engine: eng})

	// Duplicate jobs in one batch must fan into one unit filling both
	// result slots.
	js := []engine.Job{testJob("lbm-1274", "Gaze"), testJob("lbm-1274", "Gaze"), testJob("lbm-1274", "none")}
	var progress []engine.Progress
	var progressMu sync.Mutex
	type out struct {
		results []sim.Result
		err     error
	}
	done := make(chan out, 1)
	go func() {
		res, err := c.Execute(context.Background(), js, func(p engine.Progress) {
			progressMu.Lock()
			progress = append(progress, p)
			progressMu.Unlock()
		})
		done <- out{res, err}
	}()
	waitPending(t, c, 2) // 3 jobs, 2 distinct addresses

	id := registerTestWorker(t, c, "w")
	units, err := c.Lease(id, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 2 {
		t.Fatalf("leased %d units, want 2", len(units))
	}
	remote := engine.New(engine.Options{Scale: tinyScale})
	for _, u := range units {
		completeOnSecondEngine(t, c, remote, u)
	}

	got := <-done
	if got.err != nil {
		t.Fatal(got.err)
	}
	if len(got.results) != 3 {
		t.Fatalf("got %d results, want 3", len(got.results))
	}
	if got.results[0].MeanIPC() != got.results[1].MeanIPC() {
		t.Error("duplicate jobs returned different results")
	}
	for i, r := range got.results {
		if r.MeanIPC() <= 0 {
			t.Errorf("result %d has no IPC", i)
		}
	}
	// One progress report per settled unit — the duplicate pair of jobs
	// shares an address and completes in one delivery.
	progressMu.Lock()
	if n := len(progress); n != 2 {
		t.Errorf("got %d progress reports, want 2", n)
	}
	last := progress[len(progress)-1]
	progressMu.Unlock()
	if last.Done != 3 || last.Total != 3 {
		t.Errorf("final progress = %d/%d, want 3/3", last.Done, last.Total)
	}

	cts := c.Counters()
	if cts.Results != 2 || cts.UnitsPending != 0 || cts.UnitsLeased != 0 {
		t.Errorf("counters = %+v, want 2 results and an empty table", cts)
	}

	// Byte-identity: a local-only engine writing its own store must
	// produce the same files (same names, same bytes) the cluster path
	// committed via Adopt.
	localDir := t.TempDir()
	localStore, err := engine.Open(localDir)
	if err != nil {
		t.Fatal(err)
	}
	engine.New(engine.Options{Scale: tinyScale, Store: localStore}).RunAll(js)
	if clusterFiles, localFiles := storeFiles(t, coordDir), storeFiles(t, localDir); !sameFiles(clusterFiles, localFiles) {
		t.Errorf("cluster store differs from single-node store:\n cluster %v\n local   %v",
			keys(clusterFiles), keys(localFiles))
	}
}

// storeFiles maps relative path → contents for every .json record under
// a store directory.
func storeFiles(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := make(map[string]string)
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".json" {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		out[rel] = string(data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func sameFiles(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func keys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestLeaseExpiryRequeues is the crash-recovery path: a worker leases a
// unit and goes silent, the deadline passes, and the unit re-leases to a
// replacement — the sweep still completes, with the re-lease visible in
// the Releases counter.
func TestLeaseExpiryRequeues(t *testing.T) {
	clock := newFakeNow()
	eng := engine.New(engine.Options{Scale: tinyScale})
	c := NewCoordinator(CoordinatorOptions{Engine: eng, LeaseTTL: 10 * time.Second, Now: clock.Now})

	done := make(chan []sim.Result, 1)
	go func() {
		res, err := c.Execute(context.Background(), []engine.Job{testJob("lbm-1274", "Gaze")}, nil)
		if err != nil {
			t.Errorf("execute: %v", err)
		}
		done <- res
	}()
	waitPending(t, c, 1)

	crash := registerTestWorker(t, c, "crash")
	units, err := c.Lease(crash, 1)
	if err != nil || len(units) != 1 {
		t.Fatalf("lease = %v, %v", units, err)
	}
	if cts := c.Counters(); cts.UnitsLeased != 1 {
		t.Fatalf("units leased = %d, want 1", cts.UnitsLeased)
	}

	// Heartbeats keep both worker and lease alive across deadlines.
	clock.Advance(8 * time.Second)
	if err := c.Heartbeat(crash, HeartbeatRequest{}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(8 * time.Second)
	c.Tick()
	if cts := c.Counters(); cts.UnitsLeased != 1 || cts.Workers != 1 {
		t.Fatalf("after renewed heartbeat: %+v, want lease and worker alive", cts)
	}

	// Silence: the worker misses its deadline, the unit requeues, the
	// worker drops from the roster.
	clock.Advance(11 * time.Second)
	c.Tick()
	cts := c.Counters()
	if cts.Releases != 1 || cts.UnitsPending != 1 || cts.UnitsLeased != 0 || cts.Workers != 0 {
		t.Fatalf("after expiry: %+v, want 1 release, 1 pending, 0 workers", cts)
	}
	if err := c.Heartbeat(crash, HeartbeatRequest{}); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("expired worker heartbeat: err = %v, want ErrUnknownWorker", err)
	}

	replacement := registerTestWorker(t, c, "replacement")
	units2, err := c.Lease(replacement, 1)
	if err != nil || len(units2) != 1 || units2[0].Address != units[0].Address {
		t.Fatalf("re-lease = %v, %v; want the expired unit again", units2, err)
	}
	completeOnSecondEngine(t, c, engine.New(engine.Options{Scale: tinyScale}), units2[0])
	res := <-done
	if len(res) != 1 || res[0].MeanIPC() <= 0 {
		t.Fatalf("sweep did not complete after re-lease: %v", res)
	}
}

// TestDuplicateUploadHammer races many identical uploads for one unit:
// exactly one settles it, the rest are acknowledged as duplicates, and
// nothing panics or double-delivers.
func TestDuplicateUploadHammer(t *testing.T) {
	eng := engine.New(engine.Options{Scale: tinyScale})
	c := NewCoordinator(CoordinatorOptions{Engine: eng})

	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := c.Execute(context.Background(), []engine.Job{testJob("lbm-1274", "Gaze")}, nil); err != nil {
			t.Errorf("execute: %v", err)
		}
	}()
	waitPending(t, c, 1)
	id := registerTestWorker(t, c, "w")
	units, err := c.Lease(id, 1)
	if err != nil || len(units) != 1 {
		t.Fatalf("lease = %v, %v", units, err)
	}

	u := units[0]
	remote := engine.New(engine.Options{Scale: tinyScale})
	key := u.Job.CanonicalJSON(tinyScale)
	doc, err := engine.ExportResult(key, remote.Run(u.Job))
	if err != nil {
		t.Fatal(err)
	}

	const uploads = 16
	settledCount := make(chan bool, uploads)
	var wg sync.WaitGroup
	for i := 0; i < uploads; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			settled, err := c.CompleteResult(u.Address, doc)
			if err != nil {
				t.Errorf("upload: %v", err)
			}
			settledCount <- settled
		}()
	}
	wg.Wait()
	close(settledCount)
	settled := 0
	for s := range settledCount {
		if s {
			settled++
		}
	}
	if settled != 1 {
		t.Errorf("%d uploads settled the unit, want exactly 1", settled)
	}
	cts := c.Counters()
	if cts.Results != 1 || cts.DuplicateResults != uploads-1 {
		t.Errorf("results = %d, duplicates = %d; want 1 and %d", cts.Results, cts.DuplicateResults, uploads-1)
	}
	<-done

	// Bad documents never settle anything: garbage, and a valid document
	// uploaded under the wrong address.
	if _, err := c.CompleteResult(u.Address, []byte("junk")); !errors.Is(err, ErrBadResult) {
		t.Errorf("garbage upload: err = %v, want ErrBadResult", err)
	}
	wrong := testJob("lbm-1274", "none").ContentAddress(tinyScale)
	if _, err := c.CompleteResult(wrong, doc); !errors.Is(err, ErrBadResult) {
		t.Errorf("misaddressed upload: err = %v, want ErrBadResult", err)
	}
}

// TestExecuteCached: work the engine already knows is answered without
// ever touching the lease table.
func TestExecuteCached(t *testing.T) {
	eng := engine.New(engine.Options{Scale: tinyScale})
	c := NewCoordinator(CoordinatorOptions{Engine: eng})
	j := testJob("lbm-1274", "Gaze")
	want := eng.Run(j)

	res, err := c.Execute(context.Background(), []engine.Job{j}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].MeanIPC() != want.MeanIPC() {
		t.Fatalf("cached execute = %v, want the memoized result", res)
	}
	if cts := c.Counters(); cts.UnitsPending != 0 || cts.Leases != 0 {
		t.Errorf("cached execute touched the lease table: %+v", cts)
	}
}

// TestExecuteCancelDetaches: cancelling a waiting Execute drops its
// pending units so no worker computes for a sweep nobody awaits.
func TestExecuteCancelDetaches(t *testing.T) {
	eng := engine.New(engine.Options{Scale: tinyScale})
	c := NewCoordinator(CoordinatorOptions{Engine: eng})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Execute(ctx, []engine.Job{testJob("lbm-1274", "Gaze")}, nil)
		done <- err
	}()
	waitPending(t, c, 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if cts := c.Counters(); cts.UnitsPending != 0 {
		t.Errorf("pending units after cancel = %d, want 0", cts.UnitsPending)
	}
}

// TestFailUnitFailsWaiters: a deterministic worker failure fails the
// waiting sweep instead of re-leasing forever.
func TestFailUnitFailsWaiters(t *testing.T) {
	eng := engine.New(engine.Options{Scale: tinyScale})
	c := NewCoordinator(CoordinatorOptions{Engine: eng})
	done := make(chan error, 1)
	go func() {
		_, err := c.Execute(context.Background(), []engine.Job{testJob("lbm-1274", "Gaze")}, nil)
		done <- err
	}()
	waitPending(t, c, 1)
	id := registerTestWorker(t, c, "w")
	units, err := c.Lease(id, 1)
	if err != nil || len(units) != 1 {
		t.Fatalf("lease = %v, %v", units, err)
	}
	if !c.FailUnit(units[0].Address, id, "trace registry exploded") {
		t.Fatal("FailUnit ignored a live unit")
	}
	err = <-done
	if err == nil {
		t.Fatal("execute succeeded despite a failed unit")
	}
	if got := err.Error(); !strings.Contains(got, "trace registry exploded") || !strings.Contains(got, id) {
		t.Errorf("failure error %q does not name the cause and worker", got)
	}
	if c.FailUnit(units[0].Address, id, "again") {
		t.Error("FailUnit settled an already-settled unit")
	}
	if cts := c.Counters(); cts.Failures != 1 {
		t.Errorf("failures = %d, want 1", cts.Failures)
	}
}

// TestInfoDocument: the GET /cluster document carries what worker mode
// boots from plus a live roster.
func TestInfoDocument(t *testing.T) {
	eng := engine.New(engine.Options{Scale: tinyScale})
	c := NewCoordinator(CoordinatorOptions{Engine: eng, LeaseTTL: 7 * time.Second})
	id := registerTestWorker(t, c, "roster")
	info := c.Info()
	if info.Scale != tinyScale || info.StoreSchemaVersion != engine.StoreSchemaVersion {
		t.Errorf("info identity = %+v", info)
	}
	if info.LeaseTTLMS != 7000 {
		t.Errorf("lease ttl = %dms, want 7000", info.LeaseTTLMS)
	}
	if len(info.Workers) != 1 || info.Workers[0].ID != id || info.Workers[0].Concurrency != 2 {
		t.Errorf("roster = %+v", info.Workers)
	}
}
