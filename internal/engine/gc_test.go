package engine

import (
	"math/rand"
	"strconv"
	"testing"
	"time"

	"repro/internal/sim"
)

// entriesByAddress snapshots the store as a set.
func entriesByAddress(s *Store) map[string]bool {
	out := make(map[string]bool)
	for _, e := range s.Entries() {
		out[e.Address] = true
	}
	return out
}

// TestGCNeverDeletesReferenced is the randomized property test the
// acceptance criteria name: across 1000 collection cycles with random
// populations, random ref sets, random in-flight claims and random age
// floors, GC must never delete a referenced (or in-flight) entry, must
// delete every unreferenced entry when the age floor is off, must keep
// every entry when the floor is wide, and must report byte-accurate
// reclaim counts.
func TestGCNeverDeletesReferenced(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Scale: Quick, Store: store})
	rng := rand.New(rand.NewSource(0x9a2e))

	result := sim.Result{}
	nextKey := 0
	live := make(map[string]string) // address -> key, the model of what's on disk

	var totalDeleted int
	for cycle := 0; cycle < 1000; cycle++ {
		// Grow: a random handful of fresh entries.
		for n := rng.Intn(4); n > 0; n-- {
			key := "synthetic-job-" + strconv.Itoa(nextKey)
			nextKey++
			if err := store.Put(key, result); err != nil {
				t.Fatal(err)
			}
			live[hashKey(key)] = key
		}

		// Choose a random referenced subset and a random in-flight subset.
		referenced := make(map[string]bool)
		inflightKeys := []string{}
		for addr, key := range live {
			switch rng.Intn(4) {
			case 0:
				referenced[addr] = true
			case 1:
				inflightKeys = append(inflightKeys, key)
			}
		}
		e.mu.Lock()
		for _, key := range inflightKeys {
			e.inflight[key] = make(chan struct{})
		}
		e.mu.Unlock()

		// A third of cycles run with a wide age floor: everything on disk
		// is young, so nothing may be deleted.
		var policy GCPolicy
		wide := rng.Intn(3) == 0
		if wide {
			policy.MaxAge = time.Hour
		}

		stats, err := e.GC(policy, func() map[string]bool { return referenced })
		if err != nil {
			t.Fatal(err)
		}

		e.mu.Lock()
		for _, key := range inflightKeys {
			delete(e.inflight, key)
		}
		e.mu.Unlock()

		if stats.Scanned != len(live) {
			t.Fatalf("cycle %d: scanned %d, want %d", cycle, stats.Scanned, len(live))
		}
		onDisk := entriesByAddress(store)
		inflightAddrs := make(map[string]bool, len(inflightKeys))
		for _, key := range inflightKeys {
			inflightAddrs[hashKey(key)] = true
		}
		survivors := make(map[string]string)
		for addr, key := range live {
			protected := referenced[addr] || inflightAddrs[addr]
			switch {
			case protected && !onDisk[addr]:
				t.Fatalf("cycle %d: referenced/in-flight entry %s deleted", cycle, addr)
			case wide && !onDisk[addr]:
				t.Fatalf("cycle %d: young entry %s deleted under a wide age floor", cycle, addr)
			case !wide && !protected && onDisk[addr]:
				t.Fatalf("cycle %d: unreferenced entry %s survived MaxAge 0", cycle, addr)
			}
			if onDisk[addr] {
				survivors[addr] = key
			}
		}
		if want := len(live) - len(survivors); stats.Deleted != want {
			t.Fatalf("cycle %d: reported %d deleted, want %d", cycle, stats.Deleted, want)
		}
		if stats.Deleted > 0 && stats.ReclaimedBytes <= 0 {
			t.Fatalf("cycle %d: deleted %d entries but reclaimed %d bytes", cycle, stats.Deleted, stats.ReclaimedBytes)
		}
		if stats.KeptReferenced+stats.KeptYoung != len(survivors) {
			t.Fatalf("cycle %d: kept %d+%d, want %d", cycle, stats.KeptReferenced, stats.KeptYoung, len(survivors))
		}
		totalDeleted += stats.Deleted
		live = survivors

		if store.Len() != len(live) {
			t.Fatalf("cycle %d: Len() = %d, want %d (incremental count drifted)", cycle, store.Len(), len(live))
		}
	}
	if totalDeleted == 0 {
		t.Fatal("property test never exercised a deletion")
	}
	totals := e.GCTotals()
	if totals.Runs != 1000 || totals.ReclaimedEntries != uint64(totalDeleted) {
		t.Fatalf("totals = %+v, want 1000 runs / %d reclaimed", totals, totalDeleted)
	}
}

// TestGCNoStore: collecting a store-less engine reports ErrNoStore.
func TestGCNoStore(t *testing.T) {
	e := New(Options{Scale: Quick})
	if _, err := e.GC(GCPolicy{}); err != ErrNoStore {
		t.Fatalf("err = %v, want ErrNoStore", err)
	}
	if totals := e.GCTotals(); totals.Runs != 0 {
		t.Fatalf("failed cycle counted in totals: %+v", totals)
	}
}

// TestGCProtectsConcurrentRuns: a GC racing real engine runs never
// leaves the engine observing a missing result — Run after GC always
// succeeds, from memo or recomputation.
func TestGCProtectsConcurrentRuns(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Scale: Scale{TracesPerSuite: 1, TraceLen: 5_000, Warmup: 1_000, Sim: 5_000}, Store: store})
	job := Job{Traces: []string{"lbm-1274"}, L1: []string{"Gaze"}}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			if _, err := e.GC(GCPolicy{}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 20; i++ {
		e.Run(job)
	}
	<-done
}
