package workload

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

func TestCatalogueCounts(t *testing.T) {
	counts := map[string]int{}
	for _, info := range Catalogue() {
		counts[info.Suite]++
	}
	// Paper's Table III: 39 + 39 + 67 + 4 + 52 = 201 traces, plus the GAP
	// and QMM supplements.
	want := map[string]int{
		"spec06": 39, "spec17": 39, "ligra": 67, "parsec": 4, "cloud": 52,
		"gap": 6, "qmm.srv": 5, "qmm.clt": 5,
	}
	for suite, n := range want {
		if counts[suite] != n {
			t.Errorf("suite %s: %d traces, want %d", suite, counts[suite], n)
		}
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 217 {
		t.Errorf("total traces = %d, want 217 (201 + 16 supplementary)", total)
	}
}

func TestPaperNamedTracesExist(t *testing.T) {
	// Every trace name the paper's figures cite must exist.
	names := []string{
		// Fig 9 / Fig 11 labels.
		"lbm-1274", "cassandra-p1c1", "cactuBSSN_s-2421", "cassandra-p0c0",
		"mcf_s-1554", "mcf_s-484", "roms_s-523", "nutch-p4c2", "BC-4",
		"PageRank.D-52", "BC-5", "CF-155", "leslie3d-134", "bwaves_s-2609",
		"milc-127", "cactusADM-1804", "leslie3d-149", "soplex-247",
		"GemsFDTD-1169", "GemsFDTD-1211", "libquantum-714", "libquantum-1343",
		"sphinx3-417", "wrf-196", "BFS.B-18", "BC-27", "BellmanFord-25",
		"BFS-17", "BFSCC-17", "CF-185", "Components-24", "Components.S-22",
		"MIS-17", "PageRank-80", "PageRank.D-24", "Triangle-4", "canneal-1",
		"facesim-2", "streamcluster-5", "cloud9-p5c2", "nutch-p0c0",
		"stream-p1c0", "gcc_s-734", "gcc_s-2226", "bwaves_s-1740",
		"mcf_s-665", "mcf_s-1536", "cactuBSSN_s-3477", "lbm_s-2676",
		"omnetpp_s-141", "xalancbmk_s-10", "xalancbmk_s-202", "cam4_s-490",
		"pop2_s-17", "fotonik3d_s-8225", "fotonik3d_s-10881", "roms_s-294",
		// Fig 10 labels.
		"bwaves-1963", "leslie3d-271", "wrf-816", "gcc_s-1850", "wrf_s-8065",
		"facesim-22", "nutch-p3c1", "PageRank-1", "PageRank-61",
		"PageRank.D-3", "BellmanFord-4", "BellmanFord-34", "Components-4",
		"Components.S-4", "Components.S-21",
		// Fig 12 (GAP + QMM).
		"cc.twi.10", "cc.web.10", "pr.twi.10", "pr.web.10", "tc.twi.10",
		"tc.web.10", "srv.09", "srv.27", "srv.46", "srv.40", "srv.67",
		"clt.fp.06", "clt.fp.08", "clt.int.01", "clt.int.19", "clt.int.31",
		// Fig 17/18 panel.
		"omnetpp-188", "wrf-1254", "mcf_s-484", "fotonik3d_s-7084",
		"roms_s-1070", "streamcluster-5",
		// Table VI mixes.
		"Triangle-1", "Triangle-6", "PageRank-19", "BFS.B-5", "BFS-5",
		"bwaves_s-2609", "BFSCC-1", "astar-359", "bwaves-1963",
	}
	for _, name := range names {
		if !Exists(name) {
			t.Errorf("paper trace %q missing from catalogue", name)
		}
	}
}

func TestGenerateUnknownName(t *testing.T) {
	if _, err := Generate("no-such-trace", 10); err == nil {
		t.Error("unknown trace accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate("bwaves_s-2609", 5000)
	b := MustGenerate("bwaves_s-2609", 5000)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestGenerateExactLength(t *testing.T) {
	for _, name := range []string{"lbm-1274", "mcf_s-1554", "PageRank-61", "cassandra-p0c0", "srv.09"} {
		recs := MustGenerate(name, 3000)
		if len(recs) != 3000 {
			t.Errorf("%s: generated %d records, want 3000", name, len(recs))
		}
	}
}

func TestDifferentTracesDiffer(t *testing.T) {
	a := MustGenerate("leslie3d-134", 1000)
	b := MustGenerate("leslie3d-149", 1000)
	same := 0
	for i := range a {
		if a[i].Addr == b[i].Addr {
			same++
		}
	}
	if same > 500 {
		t.Errorf("sibling traces nearly identical: %d/1000 equal addresses", same)
	}
}

func TestStreamingIsDense(t *testing.T) {
	st := AnalyzeFootprints(MustGenerate("lbm-1274", 40000))
	if st.MeanDensity < 30 {
		t.Errorf("streaming mean density = %.1f, want high", st.MeanDensity)
	}
	if st.Dense == 0 {
		t.Error("streaming trace produced no fully-dense regions")
	}
}

func TestIrregularIsSparse(t *testing.T) {
	st := AnalyzeFootprints(MustGenerate("mcf_s-1554", 40000))
	if st.MeanDensity > 8 {
		t.Errorf("irregular mean density = %.1f, want low", st.MeanDensity)
	}
	if st.SingleBlock == 0 {
		t.Error("irregular trace produced no single-block regions")
	}
}

func TestCloudIsTriggerAmbiguous(t *testing.T) {
	cloud := AnalyzeFootprints(MustGenerate("cassandra-p0c0", 60000))
	strm := AnalyzeFootprints(MustGenerate("lbm-1274", 60000))
	if cloud.TriggerAmbiguity <= strm.TriggerAmbiguity {
		t.Errorf("cloud ambiguity %.2f <= streaming %.2f; trigger collisions missing",
			cloud.TriggerAmbiguity, strm.TriggerAmbiguity)
	}
	if cloud.TriggerAmbiguity < 2 {
		t.Errorf("cloud trigger ambiguity = %.2f, want >= 2 distinct footprints/trigger",
			cloud.TriggerAmbiguity)
	}
}

func TestGraphComputeMixesDenseAndSparse(t *testing.T) {
	st := AnalyzeFootprints(MustGenerate("PageRank-61", 60000))
	if st.Dense == 0 {
		t.Error("graph compute has no dense (frontier) regions")
	}
	if st.DensityHistogram[0]+st.DensityHistogram[1] == 0 {
		t.Error("graph compute has no sparse (vertex) regions")
	}
}

func TestServerLowIntensityHighLocality(t *testing.T) {
	recs := MustGenerate("srv.09", 40000)
	// Mean gap must be clearly larger than memory-intensive traces.
	var gaps, loads int
	for _, r := range recs {
		gaps += int(r.NonMem)
		loads++
	}
	meanGap := float64(gaps) / float64(loads)
	if meanGap < 9 {
		t.Errorf("server mean gap = %.1f, want >= 9 (low memory intensity)", meanGap)
	}
	// High page-level reuse: touched regions far fewer than accesses.
	st := AnalyzeFootprints(recs)
	if st.Regions > loads/4 {
		t.Errorf("server regions = %d for %d loads; want strong locality", st.Regions, loads)
	}
}

func TestSuiteFilter(t *testing.T) {
	for _, suite := range Suites() {
		infos := Suite(suite)
		if len(infos) == 0 {
			t.Errorf("suite %s empty", suite)
		}
		for _, info := range infos {
			if info.Suite != suite {
				t.Errorf("Suite(%s) returned %+v", suite, info)
			}
		}
	}
}

func TestNewReaderLoops(t *testing.T) {
	r, err := NewReader("leslie3d-134", 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 250; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatalf("looping reader failed at %d: %v", i, err)
		}
	}
	if r.Wraps() < 2 {
		t.Errorf("wraps = %d, want >= 2", r.Wraps())
	}
}

func TestRecordsAreWellFormed(t *testing.T) {
	for _, name := range []string{"bwaves-1963", "mcf-46", "BC-27", "cloud9-p5c2", "clt.fp.06"} {
		for _, r := range MustGenerate(name, 5000) {
			if r.Kind != trace.Load && r.Kind != trace.Store {
				t.Fatalf("%s: bad kind %d", name, r.Kind)
			}
			if r.Addr < dataBase {
				t.Fatalf("%s: address %#x below data base", name, r.Addr)
			}
			if r.PC < loadPCBase {
				t.Fatalf("%s: PC %#x below PC base", name, r.PC)
			}
		}
	}
}

func TestTopPCs(t *testing.T) {
	recs := MustGenerate("lbm-1274", 20000)
	top := TopPCs(recs, 5)
	if len(top) == 0 {
		t.Fatal("no top PCs")
	}
	var sum float64
	for i, p := range top {
		if i > 0 && top[i-1].Share < p.Share {
			t.Error("TopPCs not sorted")
		}
		sum += p.Share
	}
	if sum <= 0 || sum > 1.0001 {
		t.Errorf("share sum = %v", sum)
	}
}

func TestAnalyzeFootprintsEmpty(t *testing.T) {
	st := AnalyzeFootprints(nil)
	if st.Regions != 0 || st.MeanDensity != 0 {
		t.Errorf("empty analysis = %+v", st)
	}
}

func TestFootprintSecondOffsetTracking(t *testing.T) {
	// Directly check the streaming signature: region accessed 0,1,2...
	recs := []trace.Record{}
	page := uint64(dataBase)
	for off := 0; off < 64; off++ {
		recs = append(recs, trace.Record{
			PC: loadPCBase, Addr: page + uint64(off)*mem.LineSize, Kind: trace.Load,
		})
	}
	st := AnalyzeFootprints(recs)
	if st.Regions != 1 || st.Dense != 1 {
		t.Errorf("stats = %+v, want one dense region", st)
	}
}
