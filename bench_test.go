// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation (one benchmark per artifact; DESIGN.md §3 maps IDs to
// modules). Benchmarks run the harness at Quick scale so the whole suite
// finishes in minutes; `cmd/experiments -scale full` reproduces the same
// tables over the entire 217-trace catalogue.
//
// Each benchmark reports the experiment's headline number as a custom
// metric (e.g. gaze_speedup) so regressions in the reproduction are
// visible from benchmark output alone.
package repro_test

import (
	"strconv"
	"sync"
	"testing"

	"repro/internal/harness"
	"repro/internal/stats"
)

// sharedRunner memoizes simulations across benchmarks within one `go test
// -bench` process.
var (
	runnerOnce sync.Once
	runner     *harness.Runner
)

func bench(b *testing.B, id string, metric func([]stats.Table) (string, float64)) {
	b.Helper()
	runnerOnce.Do(func() { runner = harness.NewRunner(harness.Quick) })
	exp, err := harness.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	var tables []stats.Table
	for i := 0; i < b.N; i++ {
		tables = exp.Run(runner)
	}
	if len(tables) == 0 {
		b.Fatalf("%s produced no tables", id)
	}
	if metric != nil {
		name, v := metric(tables)
		b.ReportMetric(v, name)
	}
}

// lastCell parses the float in the last column of the row whose first cell
// equals key (or the last row when key is empty).
func lastCell(t stats.Table, key string) float64 {
	for _, row := range t.Rows {
		if key == "" || row[0] == key {
			v, err := strconv.ParseFloat(trimPct(row[len(row)-1]), 64)
			if err == nil {
				return v
			}
		}
	}
	return 0
}

func trimPct(s string) string {
	for len(s) > 0 && (s[len(s)-1] == '%' || s[len(s)-1] == 'B' || s[len(s)-1] == 'K') {
		s = s[:len(s)-1]
	}
	return s
}

func BenchmarkFig01Characterization(b *testing.B) {
	bench(b, "fig1", func(ts []stats.Table) (string, float64) {
		return "gaze_cloud_speedup", func() float64 {
			for _, row := range ts[0].Rows {
				if row[0] == "Gaze" {
					v, _ := strconv.ParseFloat(row[1], 64)
					return v
				}
			}
			return 0
		}()
	})
}

func BenchmarkFig02Motivation(b *testing.B) {
	bench(b, "fig2", nil)
}

func BenchmarkFig04InitialAccesses(b *testing.B) {
	bench(b, "fig4", func(ts []stats.Table) (string, float64) {
		// Accuracy of the 2-access design point.
		for _, row := range ts[0].Rows {
			if row[0] == "2" {
				v, _ := strconv.ParseFloat(trimPct(row[2]), 64)
				return "acc2_pct", v
			}
		}
		return "acc2_pct", 0
	})
}

func BenchmarkFig06SpeedupSingleCore(b *testing.B) {
	bench(b, "fig6", func(ts []stats.Table) (string, float64) {
		return "gaze_avg_speedup", lastCell(ts[0], "Gaze")
	})
}

func BenchmarkFig07Accuracy(b *testing.B) {
	bench(b, "fig7", func(ts []stats.Table) (string, float64) {
		return "gaze_avg_accuracy_pct", lastCell(ts[0], "Gaze")
	})
}

func BenchmarkFig08CoverageTimeliness(b *testing.B) {
	bench(b, "fig8", func(ts []stats.Table) (string, float64) {
		return "gaze_avg_coverage_pct", lastCell(ts[0], "Gaze")
	})
}

func BenchmarkFig09Characterization(b *testing.B) {
	bench(b, "fig9", func(ts []stats.Table) (string, float64) {
		return "fullgaze_avg_speedup", lastCell(ts[0], "AVG")
	})
}

func BenchmarkFig10StreamingModule(b *testing.B) {
	bench(b, "fig10", func(ts []stats.Table) (string, float64) {
		return "gaze_avg_speedup", lastCell(ts[0], "AVG")
	})
}

func BenchmarkFig11Representative(b *testing.B) {
	bench(b, "fig11", func(ts []stats.Table) (string, float64) {
		return "gaze_avg_all", lastCell(ts[0], "avg_all")
	})
}

func BenchmarkFig12GapQmm(b *testing.B) {
	bench(b, "fig12", func(ts []stats.Table) (string, float64) {
		return "gaze_avg_gap", lastCell(ts[0], "avg_gap")
	})
}

func BenchmarkFig13MultiLevel(b *testing.B) {
	bench(b, "fig13", func(ts []stats.Table) (string, float64) {
		return "gaze_bingo_speedup", lastCell(ts[0], "Gaze+Bingo")
	})
}

func BenchmarkFig14MultiCore(b *testing.B) {
	bench(b, "fig14", func(ts []stats.Table) (string, float64) {
		return "gaze_8core_homo", lastCell(ts[0], "Gaze")
	})
}

func BenchmarkFig15FourCoreMixes(b *testing.B) {
	bench(b, "fig15", nil)
}

func BenchmarkFig16Sensitivity(b *testing.B) {
	bench(b, "fig16", func(ts []stats.Table) (string, float64) {
		return "gaze_12800mtps", lastCell(ts[0], "Gaze")
	})
}

func BenchmarkFig17GazeConfig(b *testing.B) {
	bench(b, "fig17", func(ts []stats.Table) (string, float64) {
		return "halfkb_norm", lastCell(ts[0], "AVG")
	})
}

func BenchmarkFig18LargeRegions(b *testing.B) {
	bench(b, "fig18", func(ts []stats.Table) (string, float64) {
		return "region64kb_norm", lastCell(ts[0], "AVG")
	})
}

func BenchmarkTable1Storage(b *testing.B) {
	bench(b, "tab1", func(ts []stats.Table) (string, float64) {
		return "total_kb", lastCell(ts[0], "Total")
	})
}

func BenchmarkTable4PrefetcherStorage(b *testing.B) {
	bench(b, "tab4", nil)
}

func BenchmarkTable5Comparison(b *testing.B) {
	bench(b, "tab5", nil)
}
