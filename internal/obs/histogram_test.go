package obs

import (
	"strings"
	"testing"
)

func TestHistogramRendersPromHistogram(t *testing.T) {
	h := NewHistogram("x_seconds", "Test latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	var b strings.Builder
	h.WriteProm(&b)
	text := b.String()

	doc, err := LintProm(text)
	if err != nil {
		t.Fatalf("own rendering fails own lint: %v\n%s", err, text)
	}
	for key, want := range map[string]float64{
		`x_seconds_bucket{le="0.01"}`: 1,
		`x_seconds_bucket{le="0.1"}`:  2,
		`x_seconds_bucket{le="1"}`:    3,
		`x_seconds_bucket{le="+Inf"}`: 4,
		`x_seconds_count`:             4,
	} {
		if got := doc.Samples[key]; got != want {
			t.Errorf("%s = %g, want %g", key, got, want)
		}
	}
	if got := doc.Samples["x_seconds_sum"]; got < 5.5 || got > 5.6 {
		t.Errorf("sum = %g, want ≈5.555", got)
	}
	if h.Count() != 4 {
		t.Errorf("Count = %d", h.Count())
	}
}

func TestHistogramBoundaryIsInclusive(t *testing.T) {
	h := NewHistogram("b_seconds", "Boundary.", []float64{1})
	h.Observe(1) // le="1" is inclusive per Prometheus semantics
	var b strings.Builder
	h.WriteProm(&b)
	doc, err := LintProm(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if doc.Samples[`b_seconds_bucket{le="1"}`] != 1 {
		t.Errorf("value on bound not counted ≤ bound:\n%s", b.String())
	}
}

func TestHistogramVecRendering(t *testing.T) {
	v := NewHistogramVec("r_seconds", "By route.", "route", []float64{0.1, 1})
	v.Observe("GET /jobs/{id}", 0.05)
	v.Observe("GET /jobs/{id}", 2)
	v.Observe(`POST "quoted"`, 0.5)
	var b strings.Builder
	v.WriteProm(&b)
	text := b.String()

	doc, err := LintProm(text)
	if err != nil {
		t.Fatalf("vec rendering fails lint: %v\n%s", err, text)
	}
	if got := doc.Samples[`r_seconds_bucket{route="GET /jobs/{id}",le="+Inf"}`]; got != 2 {
		t.Errorf("route bucket = %g, want 2\n%s", got, text)
	}
	if got := doc.Samples[`r_seconds_count{route="GET /jobs/{id}"}`]; got != 2 {
		t.Errorf("route count = %g, want 2", got)
	}
	// Quotes in label values must round-trip through escaping.
	if got := doc.Samples[`r_seconds_count{route="\"quoted\""}`]; got != 0 {
		// Lint unquotes values, so verify via the raw text instead.
		if !strings.Contains(text, `route="POST \"quoted\""`) {
			t.Errorf("quoted label value not escaped:\n%s", text)
		}
	}
	// An empty vec still renders a valid (sample-free) family.
	empty := NewHistogramVec("e_seconds", "Empty.", "route", DefBuckets)
	b.Reset()
	empty.WriteProm(&b)
	if _, err := LintProm(b.String()); err != nil {
		t.Errorf("empty vec fails lint: %v", err)
	}
}

// TestLintPromCatchesHistogramViolations: the extended lint rejects the
// malformed histograms it exists to catch.
func TestLintPromCatchesHistogramViolations(t *testing.T) {
	cases := map[string]string{
		"descending le": `# HELP h_seconds x
# TYPE h_seconds histogram
h_seconds_bucket{le="1"} 1
h_seconds_bucket{le="0.1"} 1
h_seconds_bucket{le="+Inf"} 1
h_seconds_sum 1
h_seconds_count 1
`,
		"missing +Inf": `# HELP h_seconds x
# TYPE h_seconds histogram
h_seconds_bucket{le="1"} 1
h_seconds_sum 1
h_seconds_count 1
`,
		"missing _sum": `# HELP h_seconds x
# TYPE h_seconds histogram
h_seconds_bucket{le="+Inf"} 1
h_seconds_count 1
`,
		"missing _count": `# HELP h_seconds x
# TYPE h_seconds histogram
h_seconds_bucket{le="+Inf"} 1
h_seconds_sum 1
`,
		"count mismatch": `# HELP h_seconds x
# TYPE h_seconds histogram
h_seconds_bucket{le="+Inf"} 2
h_seconds_sum 1
h_seconds_count 3
`,
		"non-cumulative buckets": `# HELP h_seconds x
# TYPE h_seconds histogram
h_seconds_bucket{le="0.1"} 5
h_seconds_bucket{le="1"} 3
h_seconds_bucket{le="+Inf"} 5
h_seconds_sum 1
h_seconds_count 5
`,
		"foreign sample in family": `# HELP h_seconds x
# TYPE h_seconds histogram
h_seconds_other 1
`,
		"labels on a gauge": `# HELP g x
# TYPE g gauge
g{route="a"} 1
`,
		"unterminated label": `# HELP g x
# TYPE g gauge
g{route="a} 1
`,
	}
	for name, text := range cases {
		if _, err := LintProm(text); err == nil {
			t.Errorf("%s: lint accepted malformed exposition", name)
		}
	}

	// And the counter/gauge subset that the old lint covered still passes.
	ok := `# HELP c_total x
# TYPE c_total counter
c_total 3
# HELP g x
# TYPE g gauge
g 1.5
`
	doc, err := LintProm(ok)
	if err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
	if doc.Samples["c_total"] != 3 || doc.Types["g"] != "gauge" {
		t.Errorf("parsed doc = %+v", doc)
	}
}

func TestMetricsBundle(t *testing.T) {
	m := NewMetrics()
	m.HTTPDuration.Observe("GET /stats", 0.001)
	m.EnginePhase.Observe("simulate", 0.2)
	m.JobQueueWait.Observe(0.5)
	m.LeaseHold.Observe(45) // lands in WaitBuckets' extended range
	var b strings.Builder
	m.HTTPDuration.WriteProm(&b)
	m.EnginePhase.WriteProm(&b)
	m.JobQueueWait.WriteProm(&b)
	m.LeaseHold.WriteProm(&b)
	doc, err := LintProm(b.String())
	if err != nil {
		t.Fatalf("bundle rendering fails lint: %v", err)
	}
	if doc.Samples[`gaze_cluster_lease_hold_seconds_bucket{le="30"}`] != 0 ||
		doc.Samples[`gaze_cluster_lease_hold_seconds_bucket{le="60"}`] != 1 {
		t.Error("45s observation not in the 30–60 bucket")
	}
}
