// Command tracegen writes a named synthetic workload to a binary trace
// file, or prints its footprint statistics (the §III-C density analysis).
//
// Usage:
//
//	tracegen -trace PageRank-61 -n 500000 -o pagerank.gztr
//	tracegen -trace fotonik3d_s-8225 -n 200000 -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		name      = flag.String("trace", "", "workload trace name")
		n         = flag.Int("n", 200_000, "number of records")
		out       = flag.String("o", "", "output file (binary trace format)")
		showStats = flag.Bool("stats", false, "print footprint statistics instead of writing")
	)
	flag.Parse()
	if *name == "" {
		fmt.Fprintln(os.Stderr, "need -trace (run 'gazesim -traces' for the catalogue)")
		os.Exit(1)
	}
	recs, err := workload.Generate(*name, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *showStats {
		st := workload.AnalyzeFootprints(recs)
		fmt.Printf("trace               %s\n", *name)
		fmt.Printf("loads               %d\n", st.Loads)
		fmt.Printf("regions             %d\n", st.Regions)
		fmt.Printf("mean density        %.2f blocks\n", st.MeanDensity)
		fmt.Printf("fully dense         %d\n", st.Dense)
		fmt.Printf("single-block        %d\n", st.SingleBlock)
		fmt.Printf("density histogram   1:%d  2-8:%d  9-32:%d  33-63:%d  64:%d\n",
			st.DensityHistogram[0], st.DensityHistogram[1], st.DensityHistogram[2],
			st.DensityHistogram[3], st.DensityHistogram[4])
		fmt.Printf("trigger ambiguity   %.2f footprints/offset\n", st.TriggerAmbiguity)
		fmt.Println("top PCs:")
		for _, p := range workload.TopPCs(recs, 5) {
			fmt.Printf("  %#x  %.1f%%\n", p.PC, 100*p.Share)
		}
		return
	}

	if *out == "" {
		fmt.Fprintln(os.Stderr, "need -o <file> or -stats")
		os.Exit(1)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d records to %s\n", len(recs), *out)
}
