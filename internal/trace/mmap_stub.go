//go:build !unix

package trace

// mapFile reports mmap as unavailable; MapColumnar callers fall back to
// heap decoding of the GZTR stream.
func mapFile(path string) (*mapping, error) { return nil, ErrMmapUnsupported }

func (m *mapping) unmap() {}
