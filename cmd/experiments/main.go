// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig6
//	experiments -run all -scale quick
//
// Scales: quick (smoke test), standard (default), full (entire catalogue,
// longer traces). Results print as aligned text tables — the same rows and
// series the paper's figures plot.
//
// Simulation results persist in a content-addressed store (-cache-dir,
// default $GAZE_CACHE_DIR or the user cache dir), so re-running an
// experiment — or running a different experiment that shares jobs — does
// near-zero simulation work. -no-cache keeps everything in memory.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/profiling"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list available experiments")
		run        = flag.String("run", "", "experiment id to run, or 'all'")
		scale      = flag.String("scale", "standard", "quick | standard | full")
		cacheDir   = flag.String("cache-dir", "", "result store directory (default: $GAZE_CACHE_DIR or the user cache dir)")
		noCache    = flag.Bool("no-cache", false, "disable the persisted result store")
		progress   = flag.Bool("progress", true, "report sweep progress and ETA on stderr")
		workers    = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProfiles()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-7s %s\n", e.ID, e.Description)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <id> or -run all")
		}
		return
	}

	sc, err := engine.ScaleByName(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	opts := engine.Options{Scale: sc, Workers: *workers}
	if !*noCache {
		store, err := engine.Open(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opts.Store = store
	}
	if *progress {
		opts.Progress = engine.StderrProgress
	}
	eng := engine.New(opts)
	runner := harness.FromEngine(eng)

	var exps []harness.Experiment
	if *run == "all" {
		exps = harness.Experiments()
	} else {
		e, err := harness.Find(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		exps = []harness.Experiment{e}
	}

	for _, e := range exps {
		start := time.Now()
		tables := e.Run(runner)
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	c := eng.Counters()
	fmt.Fprintf(os.Stderr, "engine: %d simulated, %d from store, %d from memo\n",
		c.Simulated, c.StoreHits, c.MemoHits)
}
