package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestSpanLifecycle(t *testing.T) {
	var logBuf bytes.Buffer
	tr := NewTracer(TracerOptions{RingSize: 4, Log: &logBuf})
	ctx := WithTracer(context.Background(), tr)

	ctx, root := Start(ctx, "root", String("kind", "test"))
	if root == nil {
		t.Fatal("root span nil with tracer armed")
	}
	_, child := Start(ctx, "child")
	if child.TraceID != root.TraceID {
		t.Errorf("child trace %q != root trace %q", child.TraceID, root.TraceID)
	}
	if child.ParentID != root.SpanID {
		t.Errorf("child parent %q != root span %q", child.ParentID, root.SpanID)
	}
	child.SetAttr("n", "1")
	child.SetAttr("n", "2") // overwrite, not append
	child.End()
	root.End()

	recent := tr.Recent(0)
	if len(recent) != 2 {
		t.Fatalf("ring has %d spans, want 2", len(recent))
	}
	if recent[0].Name != "root" || recent[1].Name != "child" {
		t.Errorf("ring order = %q, %q, want newest first", recent[0].Name, recent[1].Name)
	}

	// NDJSON log: one parseable object per line, attrs as a map.
	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("span log has %d lines, want 2", len(lines))
	}
	var wire struct {
		TraceID  string            `json:"trace_id"`
		Name     string            `json:"name"`
		Duration int64             `json:"duration_us"`
		Attrs    map[string]string `json:"attrs"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &wire); err != nil {
		t.Fatalf("span log line not JSON: %v", err)
	}
	if wire.Name != "child" || wire.TraceID != root.TraceID || wire.Attrs["n"] != "2" {
		t.Errorf("span log line = %+v", wire)
	}

	st := tr.Stats()
	if st.SpansStarted != 2 || st.SpansFinished != 2 || st.SpansDropped != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.RingOccupancy != 2 || st.TraceLogBytes != int64(logBuf.Len()) {
		t.Errorf("stats = %+v, log bytes %d", st, logBuf.Len())
	}
}

func TestTracerRingDrop(t *testing.T) {
	tr := NewTracer(TracerOptions{RingSize: 2})
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 5; i++ {
		_, s := Start(ctx, "s")
		s.End()
	}
	if st := tr.Stats(); st.SpansDropped != 3 || st.RingOccupancy != 2 {
		t.Errorf("stats = %+v, want 3 dropped, occupancy 2", st)
	}
	if got := len(tr.Recent(0)); got != 2 {
		t.Errorf("recent = %d spans, want 2", got)
	}
	if got := len(tr.Recent(1)); got != 1 {
		t.Errorf("recent(1) = %d spans, want 1", got)
	}
}

// TestDisabledIsNil: without a tracer or timings collector in context,
// Start returns nil and every span method is a safe no-op.
func TestDisabledIsNil(t *testing.T) {
	ctx, s := Start(context.Background(), "noop", String("k", "v"))
	if s != nil {
		t.Fatal("span non-nil without tracer")
	}
	s.SetAttr("a", "b")
	s.SetName("renamed")
	s.End()
	if sc := s.Context(); sc.Valid() {
		t.Error("nil span has valid context")
	}
	if _, s2 := Start(ctx, "child"); s2 != nil {
		t.Error("child span non-nil without tracer")
	}
	var tr *Tracer
	tr.Observe(SpanContext{}, "x", time.Now(), time.Second)
	if tr.Stats() != (TracerStats{}) || tr.Recent(0) != nil {
		t.Error("nil tracer not zero-valued")
	}
	var tm *Timings
	tm.Add("x", time.Second)
	if tm.Snapshot() != nil {
		t.Error("nil timings snapshot not nil")
	}
	var h *Histogram
	h.Observe(1)
	var v *HistogramVec
	v.Observe("a", 1)
}

func TestTimingsCollector(t *testing.T) {
	tm := NewTimings()
	ctx := WithTimings(context.Background(), tm)
	ctx, s := Start(ctx, "phase")
	if s == nil {
		t.Fatal("timings collector alone should enable spans")
	}
	_, s2 := Start(ctx, "phase")
	s2.End()
	s.End()
	snap := tm.Snapshot()
	if len(snap) != 1 || snap["phase"] <= 0 {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	ctx := WithTracer(context.Background(), tr)
	ctx, s := Start(ctx, "root")
	defer s.End()

	h := http.Header{}
	Inject(ctx, h)
	v := h.Get(TraceparentHeader)
	if want := "00-" + s.TraceID + "-" + s.SpanID + "-01"; v != want {
		t.Fatalf("traceparent = %q, want %q", v, want)
	}
	sc, ok := ParseTraceparent(v)
	if !ok || sc.TraceID != s.TraceID || sc.SpanID != s.SpanID {
		t.Fatalf("parse(%q) = %+v, %v", v, sc, ok)
	}

	// A remote child continues the trace.
	rctx := WithRemoteParent(WithTracer(context.Background(), tr), sc)
	_, remote := Start(rctx, "remote")
	if remote.TraceID != s.TraceID || remote.ParentID != s.SpanID {
		t.Errorf("remote span = trace %q parent %q", remote.TraceID, remote.ParentID)
	}
	remote.End()

	for _, bad := range []string{
		"", "00", "00-zz-xx-01",
		"01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331", // missing flags
		"00-0af7651916cd43dd8448eb211c80319Z-b7ad6b7169203331-01",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b716920333-01", // short span
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted", bad)
		}
	}
}

func TestTracerObserve(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	parent := SpanContext{TraceID: strings.Repeat("ab", 16), SpanID: strings.Repeat("cd", 8)}
	start := time.Now().Add(-time.Second)
	tr.Observe(parent, "lease", start, time.Second, String("worker", "w1"))
	spans := tr.Recent(0)
	if len(spans) != 1 {
		t.Fatalf("ring has %d spans", len(spans))
	}
	s := spans[0]
	if s.TraceID != parent.TraceID || s.ParentID != parent.SpanID || s.Duration != time.Second {
		t.Errorf("observed span = %+v", s)
	}
	// Invalid parent starts a fresh trace instead of recording junk IDs.
	tr.Observe(SpanContext{TraceID: "short"}, "orphan", start, time.Second)
	if s := tr.Recent(0)[0]; len(s.TraceID) != 32 || s.ParentID != "" {
		t.Errorf("orphan span ids = %q/%q", s.TraceID, s.ParentID)
	}
}

func TestContextLogHandler(t *testing.T) {
	var buf bytes.Buffer
	logger := NewLogger(&buf, "json")
	tr := NewTracer(TracerOptions{})
	ctx := WithTracer(context.Background(), tr)
	ctx, s := Start(ctx, "op")
	logger.InfoContext(ctx, "hello", "k", "v")
	s.End()

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line not JSON: %v (%q)", err, buf.String())
	}
	if rec["trace_id"] != s.TraceID || rec["span_id"] != s.SpanID {
		t.Errorf("log record = %v, want trace %q span %q", rec, s.TraceID, s.SpanID)
	}

	// Text format, no span: no trace attrs, still logs.
	buf.Reset()
	tl := NewLogger(&buf, "text")
	tl.With("component", "x").InfoContext(context.Background(), "plain")
	if out := buf.String(); strings.Contains(out, "trace_id") || !strings.Contains(out, "component=x") {
		t.Errorf("text log = %q", out)
	}
}
