package harness

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/stats"
)

// testRunner is shared across tests (memoization keeps the suite fast).
var testRunner = NewRunner(Quick)

func cell(t stats.Table, rowKey string, col int) float64 {
	for _, row := range t.Rows {
		if row[0] == rowKey {
			s := strings.TrimSuffix(row[col], "%")
			s = strings.TrimSuffix(s, "KB")
			v, _ := strconv.ParseFloat(s, 64)
			return v
		}
	}
	return -1
}

func TestRegistryComplete(t *testing.T) {
	// Every paper artifact listed in DESIGN.md §3 must have an experiment.
	want := []string{
		"fig1", "fig2", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"fig18", "tab1", "tab4", "tab5",
	}
	for _, id := range want {
		if _, err := Find(id); err != nil {
			t.Errorf("experiment %s missing: %v", id, err)
		}
	}
	if _, err := Find("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunnerMemoization(t *testing.T) {
	r := NewRunner(Quick)
	j := Job{Traces: []string{"leslie3d-134"}, L1: []string{"Gaze"}}
	a := r.Run(j)
	b := r.Run(j)
	if a.MeanIPC() != b.MeanIPC() {
		t.Error("memoized results differ")
	}
}

func TestSuiteTracesRespectScale(t *testing.T) {
	r := NewRunner(Quick) // 2 per suite
	for _, suite := range MainSuites() {
		traces := r.SuiteTraces(suite)
		if len(traces) == 0 || len(traces) > 2 {
			t.Errorf("suite %s: %d traces at quick scale", suite, len(traces))
		}
	}
	full := NewRunner(Scale{TracesPerSuite: 0, TraceLen: 1000, Warmup: 1, Sim: 1000})
	if n := len(full.SuiteTraces("ligra")); n != 67 {
		t.Errorf("full ligra = %d traces, want 67", n)
	}
}

func TestSpeedupSanity(t *testing.T) {
	// Gaze on a streaming trace must show a clear speedup.
	if s := testRunner.Speedup("lbm-1274", "Gaze"); s < 1.3 {
		t.Errorf("Gaze on lbm speedup = %.3f, want > 1.3", s)
	}
	// And must be ~neutral on a pointer chase (strict matching).
	if s := testRunner.Speedup("mcf_s-1554", "Gaze"); s < 0.9 || s > 1.1 {
		t.Errorf("Gaze on mcf speedup = %.3f, want ~1.0", s)
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	tables := Table1(testRunner)
	if len(tables) != 1 {
		t.Fatalf("Table1 returned %d tables", len(tables))
	}
	if v := cell(tables[0], "Total", 2); v < 4.4 || v > 4.5 {
		t.Errorf("Gaze total storage = %.2fKB, want 4.46KB", v)
	}
}

func TestTable4HasAllPrefetchers(t *testing.T) {
	tb := Table4(testRunner)[0]
	if len(tb.Rows) != 8 {
		t.Errorf("Table IV rows = %d, want 8", len(tb.Rows))
	}
}

func TestFig02ShowsAmbiguityContrast(t *testing.T) {
	tb := Fig02(testRunner)[0]
	fotonik := cell(tb, "fotonik3d_s-8225", 5)
	lbm := cell(tb, "lbm-1274", 5)
	if fotonik <= lbm {
		t.Errorf("fotonik ambiguity %.2f <= lbm %.2f", fotonik, lbm)
	}
}

// TestPaperShapeFig6 checks the headline qualitative results of the
// paper's main figure at quick scale: Gaze leads the average, and the
// fine-grained prefetchers beat the coarse-grained ones on cloud.
func TestPaperShapeFig6(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	tb := Fig06(testRunner)[0]
	avgCol := len(tb.Header) - 1
	gaze := cell(tb, "Gaze", avgCol)
	for _, pf := range []string{"PMP", "vBerti", "SMS", "Bingo", "DSPatch", "IP-stride", "IPCP-L1", "SPP-PPF"} {
		if v := cell(tb, pf, avgCol); v >= gaze {
			t.Errorf("%s avg speedup %.3f >= Gaze %.3f", pf, v, gaze)
		}
	}
	// Cloud column: Gaze and Bingo must beat PMP (Fig 1/Fig 6's point).
	cloudCol := 5
	if cell(tb, "Gaze", cloudCol) <= cell(tb, "PMP", cloudCol) {
		t.Error("Gaze does not beat PMP on cloud")
	}
	if cell(tb, "Bingo", cloudCol) <= cell(tb, "PMP", cloudCol) {
		t.Error("Bingo does not beat PMP on cloud")
	}
}

func TestPaperShapeFig4(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	tb := Fig04(testRunner)[0]
	// Accuracy must increase monotonically with match length (paper:
	// 56% → 75% → 87% → 90%).
	prev := -1.0
	for _, n := range []string{"1", "2", "3", "4"} {
		acc := cell(tb, n, 2)
		if acc < prev {
			t.Errorf("accuracy not monotone: %s-access %.1f%% < previous %.1f%%", n, acc, prev)
		}
		prev = acc
	}
	// Coverage must not grow with match length (opportunities are lost).
	if cell(tb, "4", 3) > cell(tb, "1", 3)+5 {
		t.Error("coverage grew substantially with stricter matching")
	}
}

func TestPaperShapeFig10(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	tb := Fig10(testRunner)[0]
	// Full Gaze must beat both streaming-only ablations on average.
	avg := len(tb.Header) - 1
	_ = avg
	gaze := cell(tb, "AVG", 3)
	pht4ss := cell(tb, "AVG", 1)
	if gaze <= pht4ss {
		t.Errorf("full Gaze %.3f <= PHT4SS %.3f on streaming panel", gaze, pht4ss)
	}
}

func TestHeteroMixesDeterministic(t *testing.T) {
	a := testRunner.heteroMixes(4, 3)
	b := testRunner.heteroMixes(4, 3)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("hetero mixes not deterministic")
			}
		}
	}
}

func TestGeomeanStats(t *testing.T) {
	if g := stats.Geomean([]float64{1, 4}); g != 2 {
		t.Errorf("Geomean(1,4) = %v", g)
	}
	if g := stats.Geomean(nil); g != 0 {
		t.Errorf("Geomean(nil) = %v", g)
	}
	if m := stats.Mean([]float64{1, 3}); m != 2 {
		t.Errorf("Mean = %v", m)
	}
	if stats.Min([]float64{3, 1, 2}) != 1 || stats.Max([]float64{3, 1, 2}) != 3 {
		t.Error("Min/Max wrong")
	}
}
