package jobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/engine"
)

// The journal is an append-only NDJSON file of state transitions — one
// object per line, written under Manager.mu so lines never interleave. A
// queued entry carries the full spec (the replay seed); later entries for
// the same ID carry only the new state. Recovery folds the file to the
// last state per job: queued jobs re-enqueue, jobs that were running when
// the process died are surfaced as interrupted, terminal jobs become
// historical records. A torn final line — the signature of a crash
// mid-append — is skipped on read and healed by the compacting rewrite at
// Open.

// entry is one journal line. Terminal entries carry the job's phase
// timings and trace ID so GET /jobs/{id} (and /debug/traces?job=) keep
// reporting them after a restart.
type entry struct {
	Time    time.Time `json:"time"`
	ID      string    `json:"id"`
	State   State     `json:"state"`
	Error   string    `json:"error,omitempty"`
	Spec    *Spec     `json:"spec,omitempty"`
	Timings *Timings  `json:"timings,omitempty"`
	TraceID string    `json:"trace_id,omitempty"`
	// Addresses rides terminal entries of succeeded jobs so artifact
	// links (timeline documents) survive restarts like Timings does.
	Addresses []string `json:"addresses,omitempty"`
}

// journal owns the append handle. Appends are serialized by Manager.mu.
type journal struct {
	path string
	f    *os.File
}

// openJournal reads every decodable entry from path (skipping torn or
// corrupt lines) and opens the file for appending.
func openJournal(path string) (*journal, []entry, error) {
	var entries []entry
	if data, err := os.ReadFile(path); err == nil {
		sc := bufio.NewScanner(bytes.NewReader(data))
		sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var e entry
			if err := json.Unmarshal(line, &e); err != nil || e.ID == "" {
				continue // torn tail or foreign garbage
			}
			entries = append(entries, e)
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("jobs: reading journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("jobs: opening journal: %w", err)
	}
	return &journal{path: path, f: f}, entries, nil
}

// append writes one entry. Best-effort at call sites: a full disk must
// not fail job execution, it only degrades recovery.
func (j *journal) append(e entry) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = j.f.Write(append(data, '\n'))
	return err
}

// rewrite atomically replaces the journal with the given entries
// (compaction) and reopens the append handle on the new file.
func (j *journal) rewrite(entries []entry) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf) // Encode appends the newline NDJSON needs
	for _, e := range entries {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	if err := engine.WriteFileAtomic(j.path, buf.Bytes()); err != nil {
		return err
	}
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	j.f.Close()
	j.f = f
	return nil
}

// close flushes the journal to stable storage — the last step of a
// graceful shutdown.
func (j *journal) close() error {
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// journalLocked appends the record's current state. Caller holds m.mu.
func (m *Manager) journalLocked(rec *record) {
	if m.journal == nil {
		return
	}
	e := entry{Time: time.Now(), ID: rec.ID, State: rec.State, Error: rec.Error}
	if rec.State == Queued {
		spec := rec.Spec
		e.Spec = &spec
	}
	if rec.State.Terminal() {
		e.Timings = rec.Timings
		e.TraceID = rec.TraceID
		e.Addresses = rec.Addresses
	}
	m.journal.append(e) //nolint:errcheck // best-effort durability
}

// recover rebuilds the job table from replayed entries. Called from Open
// before the dispatcher starts, so no locking is needed yet.
func (m *Manager) recover(entries []entry) {
	type folded struct {
		spec    *Spec
		state   State
		err     string
		first   time.Time
		last    time.Time
		timings *Timings
		traceID string
		addrs   []string
	}
	byID := make(map[string]*folded)
	var ids []string // first-appearance order
	for _, e := range entries {
		f, ok := byID[e.ID]
		if !ok {
			f = &folded{first: e.Time}
			byID[e.ID] = f
			ids = append(ids, e.ID)
		}
		if e.Spec != nil {
			f.spec = e.Spec
		}
		f.state, f.err, f.last, f.timings, f.traceID = e.State, e.Error, e.Time, e.Timings, e.TraceID
		f.addrs = e.Addresses
	}
	for _, id := range ids {
		f := byID[id]
		if f.spec == nil {
			continue // queued entry lost; nothing to replay
		}
		rec := &record{Record: Record{
			ID: id, Spec: *f.spec, State: f.state, Error: f.err,
			Created: f.first, Timings: f.timings, TraceID: f.traceID,
			Addresses: f.addrs,
		}}
		switch f.state {
		case Queued, Running:
			if f.state == Running {
				// The process died mid-run. The work is resumable in
				// principle (partial results are in the store), but silently
				// re-running would hide the crash — surface it and let the
				// client resubmit (same ID, and completed shards replay from
				// the result store).
				rec.State = Interrupted
				rec.Error = "interrupted by restart"
				rec.Recovered = true
				rec.Finished = f.last
				break
			}
			plan, err := m.compile(*f.spec)
			if err != nil {
				// The spec no longer compiles (catalogue or schema drift):
				// fail it visibly rather than dropping it.
				rec.State = Failed
				rec.Error = fmt.Sprintf("jobs: recompiling recovered job: %v", err)
				rec.Finished = time.Now()
				break
			}
			rec.plan = plan
			rec.Recovered = true
			m.recovered++
			m.lanes[specLane(*f.spec)] = append(m.lanes[specLane(*f.spec)], id)
		default:
			rec.Finished = f.last
		}
		m.recs[id] = rec
		m.order = append(m.order, id)
	}
}

// specLane returns the dispatch lane a recovered spec belongs to,
// defaulting unknown/absent priorities to Normal (a journal written by a
// newer binary must still replay).
func specLane(spec Spec) Priority {
	if spec.Priority == High {
		return High
	}
	return Normal
}

// compactedEntries renders the current job table as a minimal journal.
// Caller holds m.mu or runs before the dispatcher starts.
func (m *Manager) compactedEntries() []entry {
	var out []entry
	for _, id := range m.order {
		rec := m.recs[id]
		spec := rec.Spec
		out = append(out, entry{Time: rec.Created, ID: id, State: Queued, Spec: &spec})
		if rec.State != Queued {
			e := entry{Time: rec.Finished, ID: id, State: rec.State, Error: rec.Error}
			if rec.State.Terminal() {
				e.Timings = rec.Timings
				e.TraceID = rec.TraceID
				e.Addresses = rec.Addresses
			}
			out = append(out, e)
		}
	}
	return out
}
