package prefetchers

import (
	"repro/internal/mem"
	"repro/internal/prefetch"
)

// PMP is the Pattern Merging Prefetcher [Jiang et al., MICRO 2022]:
// spatial patterns are characterized by the trigger Offset alone, and the
// 32 most recent footprints per offset are merged into per-block counter
// vectors, with two confidence thresholds steering L1 vs L2 placement.
// Configuration per Table IV: 4KB regions, 64-entry FT/AT, 64-entry OPT,
// 32-entry PPT, MaxConf 32, L1/L2 thresholds 0.5/0.15.
type PMP struct {
	tracker *regionTracker
	// opt[trigger] is the merged counter vector for that trigger offset,
	// anchored (rotated) at the trigger.
	opt [64]pmpCounters
	// ppt remembers exact footprints of recently deactivated pages for
	// page-recurrence prediction.
	ppt *prefetch.Table[pmpPPTEntry]

	maxConf  int
	l1Thresh float64
	l2Thresh float64
	pb       *prefetch.Pacer
}

type pmpCounters struct {
	counts [64]uint8
	merges int
}

type pmpPPTEntry struct {
	bits uint64
}

// NewPMP builds PMP at Table IV's design point.
func NewPMP() *PMP {
	p := &PMP{maxConf: 32, l1Thresh: 0.5, l2Thresh: 0.15, pb: prefetch.NewPacer(256, 4)}
	p.tracker = newRegionTracker(mem.PageSize, p.learn)
	p.ppt = prefetch.NewTable[pmpPPTEntry](8, 4)
	return p
}

// Name implements prefetch.Prefetcher.
func (*PMP) Name() string { return "PMP" }

// Train implements prefetch.Prefetcher.
func (p *PMP) Train(a prefetch.Access, issue prefetch.IssueFunc) {
	defer p.pb.Drain(issue)
	region, off, isTrigger := p.tracker.observe(a)
	if !isTrigger {
		return
	}
	base := region << p.tracker.shift

	// Page-recurrence path: an exact footprint for this page predicts
	// with full confidence.
	if e, ok := p.ppt.Lookup(p.ppt.SetIndex(region), region); ok {
		fp := e.bits &^ (1 << uint(off))
		for fp != 0 {
			bit := fp & (-fp)
			idx := popcountBelow(bit)
			p.pb.Push(prefetch.Request{VLine: base + uint64(idx)<<mem.LineBits, Level: prefetch.LevelL1})
			fp &^= bit
		}
		return
	}

	// Merged-pattern path: thresholded counter vector, rotated back from
	// the trigger anchor.
	cv := &p.opt[off&63]
	if cv.merges == 0 {
		return
	}
	denom := float64(cv.merges)
	if denom > float64(p.maxConf) {
		denom = float64(p.maxConf)
	}
	for i := 0; i < p.tracker.blocks; i++ {
		conf := float64(cv.counts[i]) / denom
		target := (off + i) & (p.tracker.blocks - 1) // un-anchor
		if target == off {
			continue
		}
		var level prefetch.Level
		switch {
		case conf >= p.l1Thresh:
			level = prefetch.LevelL1
		case conf >= p.l2Thresh:
			level = prefetch.LevelL2
		default:
			continue
		}
		p.pb.Push(prefetch.Request{VLine: base + uint64(target)<<mem.LineBits, Level: level})
	}
}

// EvictNotify implements prefetch.Prefetcher.
func (p *PMP) EvictNotify(vline uint64) { p.tracker.evict(vline) }

// learn merges a deactivated footprint into the trigger offset's counter
// vector and records the exact page footprint.
func (p *PMP) learn(e *trkAT) {
	if popcount(e.bits) < 2 {
		return
	}
	anchored := p.tracker.rotr(e.bits, int(e.trigger))
	cv := &p.opt[e.trigger&63]
	if cv.merges >= p.maxConf {
		// Merging window full: decay so recent patterns dominate.
		for i := range cv.counts {
			cv.counts[i] /= 2
		}
		cv.merges /= 2
	}
	cv.merges++
	for i := 0; i < p.tracker.blocks; i++ {
		if anchored&(1<<uint(i)) != 0 && cv.counts[i] < uint8(p.maxConf) {
			cv.counts[i]++
		}
	}
	p.ppt.Insert(p.ppt.SetIndex(e.region), e.region, pmpPPTEntry{bits: e.bits})
}

// StorageBytes reproduces Table IV's 5.0KB PMP budget.
func (p *PMP) StorageBytes() float64 { return 5.0 * 1024 }

var _ prefetch.Prefetcher = (*PMP)(nil)
