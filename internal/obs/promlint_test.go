package obs

import (
	"strings"
	"testing"
)

func TestLintPromAcceptsWellFormed(t *testing.T) {
	doc, err := LintProm(strings.Join([]string{
		"# HELP gaze_telemetry_documents Timeline documents held by the engine.",
		"# TYPE gaze_telemetry_documents gauge",
		"gaze_telemetry_documents 3",
		"# HELP gaze_engine_simulated_total Simulations executed.",
		"# TYPE gaze_engine_simulated_total counter",
		"gaze_engine_simulated_total 12",
		"",
	}, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Samples["gaze_telemetry_documents"] != 3 || doc.Types["gaze_engine_simulated_total"] != "counter" {
		t.Errorf("parsed doc = %+v", doc)
	}
}

// TestLintPromRejectsWhitespaceHelp: "# HELP name  " splits into a
// non-empty second field, so a plain emptiness check passes it silently —
// the lint must reject help text that is only whitespace, not just help
// text that is absent.
func TestLintPromRejectsWhitespaceHelp(t *testing.T) {
	for name, text := range map[string]string{
		"missing help":         "# HELP gaze_x\n# TYPE gaze_x gauge\ngaze_x 1\n",
		"single space help":    "# HELP gaze_x \n# TYPE gaze_x gauge\ngaze_x 1\n",
		"whitespace-only help": "# HELP gaze_x    \n# TYPE gaze_x gauge\ngaze_x 1\n",
		"tab-only help":        "# HELP gaze_x \t\n# TYPE gaze_x gauge\ngaze_x 1\n",
	} {
		if _, err := LintProm(text); err == nil {
			t.Errorf("%s accepted", name)
		} else if !strings.Contains(err.Error(), "malformed HELP") {
			t.Errorf("%s: error %q, want a malformed-HELP diagnosis", name, err)
		}
	}
}

func TestLintPromRejectsStructuralViolations(t *testing.T) {
	for name, text := range map[string]string{
		"sample without TYPE":   "gaze_x 1\n",
		"TYPE without HELP":     "# TYPE gaze_x gauge\ngaze_x 1\n",
		"unknown type":          "# HELP gaze_x x.\n# TYPE gaze_x summary\ngaze_x 1\n",
		"counter not _total":    "# HELP gaze_x x.\n# TYPE gaze_x counter\ngaze_x 1\n",
		"gauge with _total":     "# HELP gaze_x_total x.\n# TYPE gaze_x_total gauge\ngaze_x_total 1\n",
		"duplicate sample":      "# HELP gaze_x x.\n# TYPE gaze_x gauge\ngaze_x 1\ngaze_x 2\n",
		"duplicate TYPE":        "# HELP gaze_x x.\n# TYPE gaze_x gauge\n# HELP gaze_x x.\n# TYPE gaze_x gauge\n",
		"unparseable value":     "# HELP gaze_x x.\n# TYPE gaze_x gauge\ngaze_x one\n",
		"bad metric name":       "# HELP 1gaze x.\n# TYPE 1gaze gauge\n1gaze 1\n",
		"histogram sans +Inf":   "# HELP gaze_h h.\n# TYPE gaze_h histogram\ngaze_h_bucket{le=\"1\"} 1\ngaze_h_sum 1\ngaze_h_count 1\n",
		"non-cumulative hist":   "# HELP gaze_h h.\n# TYPE gaze_h histogram\ngaze_h_bucket{le=\"1\"} 5\ngaze_h_bucket{le=\"+Inf\"} 3\ngaze_h_sum 1\ngaze_h_count 3\n",
		"hist missing _sum":     "# HELP gaze_h h.\n# TYPE gaze_h histogram\ngaze_h_bucket{le=\"+Inf\"} 1\ngaze_h_count 1\n",
		"hist count mismatch":   "# HELP gaze_h h.\n# TYPE gaze_h histogram\ngaze_h_bucket{le=\"+Inf\"} 1\ngaze_h_sum 1\ngaze_h_count 2\n",
		"labels on plain gauge": "# HELP gaze_x x.\n# TYPE gaze_x gauge\ngaze_x{a=\"b\"} 1\n",
	} {
		if _, err := LintProm(text); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
