// Command gazetrace manages the content-addressed trace registry from the
// shell — the offline counterpart of gazeserve's /traces API. Point it at
// the same -dir gazeserve uses and ingested traces are immediately
// runnable by every entry point as `ingested:<address>`.
//
// Usage:
//
//	gazetrace ingest -dir ~/traces capture.champsim.gz more.gztr
//	gazetrace ingest -dir ~/traces < capture.champsim.gz
//	gazetrace ls -dir ~/traces
//	gazetrace inspect -dir ~/traces <address>
//	gazetrace migrate -dir ~/traces
//	gazetrace export -dir ~/traces -format champsim.gz -o out.champsim.gz <address>
//	gazetrace convert -format gztr -o out.gztr capture.champsim.gz
//
// ingest accepts any supported format (native GZTR, ChampSim-style lines,
// gzip-wrapped variants; sniffed per file) and prints one line per input:
// the registry address plus whether the upload created a new entry or
// deduplicated onto an existing one. convert is registry-free format
// conversion (input sniffed, output per -format).
package main

import (
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"flag"

	"repro/internal/trace"
	"repro/internal/traceset"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "ingest":
		err = cmdIngest(os.Args[2:])
	case "ls":
		err = cmdLs(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "migrate":
		err = cmdMigrate(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "gazetrace: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gazetrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `gazetrace — content-addressed trace registry tool

commands:
  ingest  -dir DIR [file...]          ingest traces (stdin when no files)
  ls      -dir DIR                    list registry entries
  inspect -dir DIR ADDRESS            print one entry's manifest
  migrate -dir DIR                    backfill columnar slabs for old entries
  export  -dir DIR [-format F] [-o FILE] ADDRESS
                                      write an entry's records (default stdout, gztr)
  convert [-format F] [-o FILE] [file]
                                      re-encode a trace without a registry
formats: gztr | gztr.gz | champsim | champsim.gz (ingest/convert inputs are sniffed)
`)
}

func openRegistry(dir string) (*traceset.Registry, error) {
	if dir == "" {
		return nil, fmt.Errorf("need -dir (the registry directory)")
	}
	return traceset.Open(dir, traceset.Options{})
}

func cmdIngest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	dir := fs.String("dir", "", "registry directory")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	reg, err := openRegistry(*dir)
	if err != nil {
		return err
	}
	ingest := func(r io.Reader, label string) error {
		m, created, err := reg.Ingest(r)
		if err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		verdict := "created"
		if !created {
			verdict = "deduplicated"
		}
		fmt.Printf("%s  %d records  %s  (%s, from %s)\n", m.Address, m.Records, verdict, label, m.SourceFormat)
		return nil
	}
	if fs.NArg() == 0 {
		return ingest(os.Stdin, "stdin")
	}
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		err = ingest(f, path)
		f.Close()
		if err != nil {
			return err
		}
	}
	return nil
}

func cmdLs(args []string) error {
	fs := flag.NewFlagSet("ls", flag.ExitOnError)
	dir := fs.String("dir", "", "registry directory")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	reg, err := openRegistry(*dir)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 0, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "ADDRESS\tRECORDS\tSTORED\tINGESTED\tSOURCE")
	for _, m := range reg.List() {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%s\n",
			m.Address, m.Records, m.StoredBytes, m.IngestedAt.Format("2006-01-02 15:04:05"), m.SourceFormat)
	}
	return tw.Flush()
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	dir := fs.String("dir", "", "registry directory")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if fs.NArg() != 1 {
		return fmt.Errorf("inspect takes exactly one address")
	}
	reg, err := openRegistry(*dir)
	if err != nil {
		return err
	}
	addr := fs.Arg(0)
	m, ok := reg.Get(addr)
	if !ok {
		return fmt.Errorf("no such trace %s", addr)
	}
	st := m.Footprint
	fmt.Printf("address             %s\n", m.Address)
	fmt.Printf("name                %s\n", workload.IngestedName(m.Address))
	fmt.Printf("records             %d\n", m.Records)
	fmt.Printf("stored bytes        %d\n", m.StoredBytes)
	fmt.Printf("source format       %s\n", m.SourceFormat)
	fmt.Printf("ingested at         %s\n", m.IngestedAt.Format("2006-01-02 15:04:05 MST"))
	fmt.Printf("loads               %d\n", st.Loads)
	fmt.Printf("regions             %d\n", st.Regions)
	fmt.Printf("mean density        %.2f blocks\n", st.MeanDensity)
	fmt.Printf("fully dense         %d\n", st.Dense)
	fmt.Printf("single-block        %d\n", st.SingleBlock)
	fmt.Printf("density histogram   1:%d  2-8:%d  9-32:%d  33-63:%d  64:%d\n",
		st.DensityHistogram[0], st.DensityHistogram[1], st.DensityHistogram[2],
		st.DensityHistogram[3], st.DensityHistogram[4])
	fmt.Printf("trigger ambiguity   %.2f footprints/offset\n", st.TriggerAmbiguity)
	// The columnar slab is derived data — report its health so an operator
	// can see at a glance whether this entry runs off mmap or falls back
	// to heap decode (and whether `gazetrace migrate` would help).
	ci, err := reg.Columnar(addr)
	switch {
	case err != nil:
		fmt.Printf("columnar slab       error: %v\n", err)
	case !ci.Present:
		fmt.Printf("columnar slab       absent (heap decode; run `gazetrace migrate` to backfill)\n")
	case !ci.Valid:
		fmt.Printf("columnar slab       INVALID (%d bytes; heap decode; re-run `gazetrace migrate`)\n", ci.Bytes)
	default:
		fmt.Printf("columnar slab       present  %d bytes (pc %d, addr %d, nonmem %d, kind %d)\n",
			ci.Bytes, ci.PCBytes, ci.AddrBytes, ci.NonMemBytes, ci.KindBytes)
	}
	return nil
}

// cmdMigrate backfills columnar slabs for entries ingested before the
// sidecar existed (or whose slab was damaged): every entry missing a
// valid .cols file gets one rebuilt from its record stream.
func cmdMigrate(args []string) error {
	fs := flag.NewFlagSet("migrate", flag.ExitOnError)
	dir := fs.String("dir", "", "registry directory")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if fs.NArg() != 0 {
		return fmt.Errorf("migrate takes no arguments (it scans the whole registry)")
	}
	reg, err := openRegistry(*dir)
	if err != nil {
		return err
	}
	var built, skipped, failed int
	for _, m := range reg.List() {
		created, err := reg.BuildColumnar(m.Address)
		switch {
		case err != nil:
			failed++
			fmt.Printf("%s  FAILED: %v\n", m.Address, err)
		case created:
			built++
			fmt.Printf("%s  built (%d records)\n", m.Address, m.Records)
		default:
			skipped++
			fmt.Printf("%s  ok\n", m.Address)
		}
	}
	fmt.Printf("%d built, %d already valid, %d failed\n", built, skipped, failed)
	if failed > 0 {
		return fmt.Errorf("%d entries failed to migrate", failed)
	}
	return nil
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	dir := fs.String("dir", "", "registry directory")
	format := fs.String("format", "gztr", "output format")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if fs.NArg() != 1 {
		return fmt.Errorf("export takes exactly one address")
	}
	f, err := trace.ParseFormat(*format)
	if err != nil {
		return err
	}
	reg, err := openRegistry(*dir)
	if err != nil {
		return err
	}
	recs, err := reg.Records(fs.Arg(0), 0)
	if err != nil {
		return err
	}
	return writeOutput(*out, func(w io.Writer) error {
		return trace.WriteAll(w, f, recs)
	})
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	format := fs.String("format", "gztr", "output format")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	f, err := trace.ParseFormat(*format)
	if err != nil {
		return err
	}
	var in io.Reader = os.Stdin
	switch fs.NArg() {
	case 0:
	case 1:
		file, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer file.Close()
		in = file
	default:
		return fmt.Errorf("convert takes at most one input file")
	}
	rd, _, err := trace.Detect(in)
	if err != nil {
		return err
	}
	recs, err := trace.Collect(rd, 0)
	if err != nil {
		return err
	}
	return writeOutput(*out, func(w io.Writer) error {
		return trace.WriteAll(w, f, recs)
	})
}

// writeOutput writes through fn to path, or stdout when path is empty.
func writeOutput(path string, fn func(io.Writer) error) error {
	if path == "" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
