// Package core implements Gaze, the paper's contribution: a spatial
// prefetcher that characterizes footprint patterns by the *internal
// temporal correlation* of a region's first two accesses (§III-B), with a
// dedicated two-stage aggressiveness controller for spatial-streaming
// footprints (§III-C).
//
// Structures follow Table I exactly in the default configuration:
//
//	FT   64-entry 8-way   — filters one-bit patterns, captures trigger
//	AT   64-entry 8-way   — footprint accumulation + stride tracking
//	PHT  256-entry 4-way  — trigger offset as index, second offset as tag
//	DPCT 8-entry FA       — recently-dense trigger PCs
//	DC   3-bit counter    — streaming confidence
//	PB   32-entry         — per-region pending prefetch patterns
package core

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

// Config parameterizes Gaze. DefaultConfig reproduces the paper's Table I
// design point; the other knobs exist for the paper's sensitivity studies
// (Fig 4, Fig 17, Fig 18) and the ablations of Fig 9/10.
type Config struct {
	// RegionSize is the spatial region in bytes (4KB default; vGaze
	// explores 0.5KB-64KB, Fig 17a/18).
	RegionSize int

	FTEntries int
	FTWays    int
	ATEntries int
	ATWays    int

	// PHTEntries/PHTWays size the pattern history table (Fig 17b sweeps
	// 128-1024 entries).
	PHTEntries int
	PHTWays    int

	DPCTEntries int
	PBEntries   int

	// PBDrainPerTrain bounds how many buffered prefetches issue per
	// observed load (issue smoothing).
	PBDrainPerTrain int

	// MatchAccesses is how many initial accesses must align for a pattern
	// match (Fig 4 sweeps 1-4; 2 is the paper's design point; 1 degrades
	// to trigger-offset-only characterization).
	MatchAccesses int

	// StreamingModule enables the DPCT/DC two-stage streaming path; when
	// false, dense streaming patterns flow through the PHT like any other
	// pattern (the PHT4SS / Gaze-PHT ablations).
	StreamingModule bool

	// StrideBackup enables region-stride prefetching for regions whose
	// strict match failed (§III-C's dual-purpose backup).
	StrideBackup bool

	// StreamingOnly restricts prefetch *triggering* to streaming-start
	// regions (trigger=0, second=1) — the Fig 10 PHT4SS/SM4SS setting.
	StreamingOnly bool

	// DenseFraction of the region prefetched at the higher level in
	// streaming stage 1 (paper: one quarter = 16 of 64 blocks).
	DenseFraction float64

	// PromoteDegree and PromoteSkip parameterize stage 2: on a confirmed
	// stride, promote PromoteDegree blocks after skipping PromoteSkip.
	PromoteDegree int
	PromoteSkip   int

	// ConfidenceControl enables the extension §IV-B3 sketches as future
	// work: each (trigger, second) pattern carries a 2-bit confidence
	// updated by comparing predictions with the region's actual footprint
	// at deactivation; zero-confidence patterns are rejected (the backup
	// stride path takes over). Off by default — the paper's base design.
	ConfidenceControl bool
}

// DefaultConfig returns the paper's Gaze design point.
func DefaultConfig() Config {
	return Config{
		RegionSize:      mem.PageSize,
		FTEntries:       64,
		FTWays:          8,
		ATEntries:       64,
		ATWays:          8,
		PHTEntries:      256,
		PHTWays:         4,
		DPCTEntries:     8,
		PBEntries:       32,
		PBDrainPerTrain: 4,
		MatchAccesses:   2,
		StreamingModule: true,
		StrideBackup:    true,
		DenseFraction:   0.25,
		PromoteDegree:   4,
		PromoteSkip:     2,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.RegionSize < 2*mem.LineSize || c.RegionSize&(c.RegionSize-1) != 0 {
		return fmt.Errorf("core: region size must be a power of two >= 128, got %d", c.RegionSize)
	}
	if c.MatchAccesses < 1 || c.MatchAccesses > 4 {
		return fmt.Errorf("core: MatchAccesses must be in [1,4], got %d", c.MatchAccesses)
	}
	if c.FTEntries <= 0 || c.ATEntries <= 0 || c.PHTEntries <= 0 || c.PBEntries <= 0 {
		return fmt.Errorf("core: table sizes must be positive")
	}
	if c.FTEntries%c.FTWays != 0 || c.ATEntries%c.ATWays != 0 || c.PHTEntries%c.PHTWays != 0 {
		return fmt.Errorf("core: entries must divide evenly into ways")
	}
	return nil
}

// ftEntry is a Filter Table payload (Table I).
type ftEntry struct {
	hashedPC uint16
	trigger  uint16
}

// atEntry is an Accumulation Table payload (Table I).
type atEntry struct {
	region   uint64
	hashedPC uint16
	// firstOffs holds the first MatchAccesses distinct-block offsets in
	// access order; firstOffs[0] is the trigger, firstOffs[1] the second.
	firstOffs [4]uint16
	nFirst    uint8
	// last/penultimate raw access offsets for stride computation.
	last       int16
	penult     int16
	strideFlag bool
	// predicted remembers whether a prefetch decision was already made.
	predicted bool
	// promoteLo/promoteHi bound the offsets already covered by stage-2
	// promotions, so a steady stream does not re-request the same blocks
	// on every access.
	promoteLo int16
	promoteHi int16
	bits      bitvec
}

// phtEntry is a Pattern History Table payload: a footprint bit vector
// (64 bits per line in the default configuration — the storage advantage
// over PMP's counter vectors, §III-E), plus a 2-bit confidence used only
// when Config.ConfidenceControl is on.
type phtEntry struct {
	bits bitvec
	conf uint8
}

// Gaze is the prefetcher. It implements prefetch.Prefetcher.
type Gaze struct {
	cfg    Config
	blocks int  // blocks per region
	shift  uint // log2(RegionSize)

	ft   *prefetch.Table[ftEntry]
	at   *prefetch.Table[atEntry]
	pht  *prefetch.Table[phtEntry]
	dpct *dpct
	dc   *denseCounter
	pb   *prefetchBuffer

	// reuse* back the region-reuse distance histogram of
	// prefetch.Introspector: a direct-mapped table of recently activated
	// regions keyed region→slot, recording the activation sequence
	// number each region was last seen at. Fixed arrays, one masked
	// index per region activation — nothing the hot loop notices.
	reuseSeq  uint64
	reuseTags []uint64 // region+1; 0 = empty slot
	reuseSeen []uint64
	reuseHist [16]uint64

	stats Stats
}

// Stats counts Gaze-internal events, exposed for the analysis experiments.
type Stats struct {
	RegionsTracked    uint64
	RegionsLearned    uint64
	PHTHits           uint64
	PHTMisses         uint64
	StreamingRegions  uint64
	DenseLearned      uint64
	Stage1Full        uint64
	Stage1Half        uint64
	Stage1None        uint64
	Stage2Promotions  uint64
	BackupActivations uint64
	ConfidenceRejects uint64
}

// New constructs a Gaze prefetcher; it panics on invalid configuration
// (construction is setup-time).
func New(cfg Config) *Gaze {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	shift := uint(0)
	for s := cfg.RegionSize; s > 1; s >>= 1 {
		shift++
	}
	g := &Gaze{
		cfg:    cfg,
		blocks: cfg.RegionSize / mem.LineSize,
		shift:  shift,
		ft:     prefetch.NewTable[ftEntry](pow2Sets(cfg.FTEntries, cfg.FTWays), cfg.FTWays),
		at:     prefetch.NewTable[atEntry](pow2Sets(cfg.ATEntries, cfg.ATWays), cfg.ATWays),
		pht:    prefetch.NewTable[phtEntry](pow2Sets(cfg.PHTEntries, cfg.PHTWays), cfg.PHTWays),
		dpct:   newDPCT(cfg.DPCTEntries),
		dc:     newDenseCounter(),
		pb:     newPrefetchBuffer(cfg.PBEntries, cfg.RegionSize/mem.LineSize),

		reuseTags: make([]uint64, reuseSlots),
		reuseSeen: make([]uint64, reuseSlots),
	}
	return g
}

// reuseSlots sizes the direct-mapped region-reuse tracker (power of two).
const reuseSlots = 256

func pow2Sets(entries, ways int) int {
	sets := entries / ways
	p := 1
	for p < sets {
		p <<= 1
	}
	return p
}

// Name implements prefetch.Prefetcher.
func (g *Gaze) Name() string {
	if g.cfg.RegionSize != mem.PageSize {
		return fmt.Sprintf("vGaze-%dKB", g.cfg.RegionSize/1024)
	}
	return "Gaze"
}

// Config returns the active configuration.
func (g *Gaze) Config() Config { return g.cfg }

// InternalStats returns the event counters.
func (g *Gaze) InternalStats() Stats { return g.stats }

func (g *Gaze) region(vaddr uint64) uint64 { return vaddr >> g.shift }
func (g *Gaze) offset(vaddr uint64) int {
	return int((vaddr >> mem.LineBits) & uint64(g.blocks-1))
}

// Train implements prefetch.Prefetcher (the access flow of Fig 3b).
func (g *Gaze) Train(a prefetch.Access, issue prefetch.IssueFunc) {
	region := g.region(a.VAddr)
	off := g.offset(a.VAddr)
	hpc := mem.HashPC(a.PC)

	atSet := g.at.SetIndex(region)
	if e, ok := g.at.Lookup(atSet, region); ok {
		g.trackedAccess(e, off)
	} else if fe, ok := g.ft.Lookup(g.ft.SetIndex(region), region); ok {
		if int(fe.trigger) != off {
			// Second distinct access: promote FT→AT (➌) and decide on
			// prefetching with (trigger, second, trigger PC) (➍➎).
			g.promoteToAT(region, *fe, off)
		}
	} else {
		// Newly activated region (➋): start filtering in the FT.
		g.recordActivation(region)
		g.ft.Insert(g.ft.SetIndex(region), region, ftEntry{hashedPC: hpc, trigger: uint16(off)})
		if g.cfg.MatchAccesses == 1 && !g.cfg.StreamingOnly {
			// Offset-only characterization awakens on the trigger access,
			// like conventional spatial prefetchers (§II-A).
			pseudo := atEntry{region: region, hashedPC: hpc, bits: newBitvec(g.blocks)}
			pseudo.firstOffs[0] = uint16(off)
			pseudo.nFirst = 1
			pseudo.bits.set(off)
			g.phtPredictNoBackup(&pseudo)
		}
	}

	// Smoothed issue from the PB (➎ → memory system).
	g.pb.drain(g.cfg.PBDrainPerTrain, g.shift, issue)
}

// trackedAccess updates an AT-resident region (footprint accumulation,
// delayed matching for MatchAccesses > 2, and stage-2 stride logic).
func (g *Gaze) trackedAccess(e *atEntry, off int) {
	newBlock := !e.bits.get(off)
	if newBlock {
		e.bits.set(off)
		if int(e.nFirst) < g.cfg.MatchAccesses {
			e.firstOffs[e.nFirst] = uint16(off)
			e.nFirst++
			if int(e.nFirst) == g.cfg.MatchAccesses && !e.predicted {
				g.predict(e)
			}
		}
	}

	// Stage 2 / backup: compute the last two strides.
	s1 := int(e.last) - int(e.penult)
	s2 := off - int(e.last)
	if e.strideFlag && s1 == s2 && s1 != 0 {
		g.stridePromote(e, off, s1)
	}
	e.penult = e.last
	e.last = int16(off)
}

// promoteToAT moves a region from FT to AT on its second distinct access.
// fe is passed by value: the FT entry is invalidated here.
func (g *Gaze) promoteToAT(region uint64, fe ftEntry, second int) {
	g.ft.Invalidate(g.ft.SetIndex(region), region)
	g.stats.RegionsTracked++

	e := atEntry{
		region:   region,
		hashedPC: fe.hashedPC,
		last:     int16(second),
		penult:   int16(fe.trigger),
		bits:     newBitvec(g.blocks),
	}
	e.firstOffs[0] = fe.trigger
	e.firstOffs[1] = uint16(second)
	e.nFirst = 2
	e.bits.set(int(fe.trigger))
	e.bits.set(second)

	if g.cfg.MatchAccesses == 2 {
		g.predict(&e)
	} else if g.cfg.MatchAccesses == 1 {
		// The trigger-access prediction already fired; only arm streaming
		// stride tracking so stage 2 still works for this variant.
		e.predicted = true
	}

	if evicted, was := g.at.Insert(g.at.SetIndex(region), region, e); was {
		// LRU deactivation of the displaced region (➏): learn its pattern.
		g.learn(&evicted)
	}
}

// predict runs the PHM decision (Fig 3c) for a region whose first
// MatchAccesses offsets are known.
func (g *Gaze) predict(e *atEntry) {
	e.predicted = true
	trigger := int(e.firstOffs[0])
	second := int(e.firstOffs[1])

	if g.isStreamingStart(trigger, second) {
		g.stats.StreamingRegions++
		if g.cfg.StreamingModule {
			g.streamingStage1(e)
		} else {
			// Ablation: treat the dense pattern like any other PHT entry.
			g.phtPredict(e)
		}
		// Streaming candidates always arm stage 2.
		e.strideFlag = true
		return
	}

	if g.cfg.StreamingOnly {
		// Fig 10 setting: only streaming regions are handled.
		return
	}
	g.phtPredict(e)
}

// isStreamingStart reports the spatial-streaming signature: the first two
// accesses are block 0 then block 1.
func (g *Gaze) isStreamingStart(trigger, second int) bool {
	return g.cfg.MatchAccesses >= 2 && trigger == 0 && second == 1
}

// phtKey maps the first-N offsets to (set, tag). For the paper's design
// point (N=2, 64-set PHT) this is literally "trigger as index, second as
// tag"; larger N concatenates further offsets into the tag, and non-64-set
// geometries fold spill bits into the tag so no information is lost.
func (g *Gaze) phtKey(e *atEntry) (int, uint64) {
	trigger := uint64(e.firstOffs[0])
	var tag uint64
	for i := 1; i < g.cfg.MatchAccesses; i++ {
		tag = tag<<10 | uint64(e.firstOffs[i])
	}
	sets := uint64(g.pht.Sets())
	set := int(trigger % sets)
	tag = tag<<10 | trigger/sets
	return set, tag
}

// phtPredict looks up the learned pattern under strict matching and, on a
// hit, schedules every pattern block (minus those already demanded) for
// the L1D (§III-D: "PHT prefetches all blocks into the L1D").
func (g *Gaze) phtPredict(e *atEntry) {
	hit := g.phtPredictNoBackup(e)
	if !hit && g.cfg.StrideBackup {
		// Strict match failed: arm the region-stride backup (§III-C).
		e.strideFlag = true
		g.stats.BackupActivations++
	}
}

// phtPredictNoBackup performs the lookup + issue without arming the
// backup; it reports whether the lookup hit.
func (g *Gaze) phtPredictNoBackup(e *atEntry) bool {
	set, tag := g.phtKey(e)
	p, ok := g.pht.Lookup(set, tag)
	if !ok {
		g.stats.PHTMisses++
		return false
	}
	if g.cfg.ConfidenceControl && p.conf == 0 {
		// Extension: this pattern kept mispredicting — reject it and let
		// the stride backup handle the region.
		g.stats.ConfidenceRejects++
		return false
	}
	g.stats.PHTHits++
	demanded := e.bits
	p.bits.forEach(g.blocks, func(off int) {
		if !demanded.get(off) {
			g.pb.merge(e.region, off, pbL1)
		}
	})
	return true
}

// streamingStage1 assigns the initial aggressiveness for a likely
// streaming region (Fig 3c, upper part).
func (g *Gaze) streamingStage1(e *atEntry) {
	head := int(float64(g.blocks) * g.cfg.DenseFraction)
	if head < 2 {
		head = 2
	}
	switch {
	case g.dpct.contains(e.hashedPC) || g.dc.full():
		// Confident: first quarter to L1D, the rest to L2C.
		g.stats.Stage1Full++
		for off := 0; off < head; off++ {
			if !e.bits.get(off) {
				g.pb.merge(e.region, off, pbL1)
			}
		}
		for off := head; off < g.blocks; off++ {
			g.pb.merge(e.region, off, pbL2)
		}
	case g.dc.halfConfident():
		// Moderate: only the first quarter, and only into L2C.
		g.stats.Stage1Half++
		for off := 0; off < head; off++ {
			if !e.bits.get(off) {
				g.pb.merge(e.region, off, pbL2)
			}
		}
	default:
		// No confidence: refrain; stage 2 may still promote later.
		g.stats.Stage1None++
	}
}

// stridePromote implements stage 2 and the backup prefetcher: after two
// matching non-zero strides, fetch PromoteDegree blocks into L1D, skipping
// PromoteSkip ahead (in-flight blocks are likely already covered). A
// per-region promotion frontier prevents re-requesting blocks an earlier
// promotion already covered.
func (g *Gaze) stridePromote(e *atEntry, off, stride int) {
	promoted := false
	for k := 1; k <= g.cfg.PromoteDegree; k++ {
		target := off + (g.cfg.PromoteSkip+k)*stride
		if target < 0 || target >= g.blocks {
			break
		}
		if stride > 0 {
			if e.promoteHi != 0 && int16(target) <= e.promoteHi {
				continue
			}
			e.promoteHi = int16(target)
		} else {
			if e.promoteLo != 0 && int16(target) >= e.promoteLo {
				continue
			}
			e.promoteLo = int16(target)
		}
		g.pb.merge(e.region, target, pbL1)
		promoted = true
	}
	if promoted {
		g.stats.Stage2Promotions++
	}
}

// EvictNotify implements prefetch.Prefetcher: eviction of a cached block
// belonging to a tracked region deactivates the region (➏) and learns its
// accumulated pattern.
func (g *Gaze) EvictNotify(vline uint64) {
	region := vline >> g.shift
	if e, ok := g.at.Invalidate(g.at.SetIndex(region), region); ok {
		g.learn(&e)
	}
}

// learn consumes a deactivated region's footprint (Fig 3a).
func (g *Gaze) learn(e *atEntry) {
	g.stats.RegionsLearned++
	trigger := int(e.firstOffs[0])
	second := 0
	if e.nFirst >= 2 {
		second = int(e.firstOffs[1])
	}

	if g.cfg.StreamingModule && g.isStreamingStart(trigger, second) {
		// Spatial-streaming detection: was the region entirely requested?
		if e.bits.full(g.blocks) {
			g.stats.DenseLearned++
			g.dpct.record(e.hashedPC)
			g.dc.increment()
		} else {
			g.dc.decrement()
		}
		return
	}
	if int(e.nFirst) < g.cfg.MatchAccesses {
		// Fewer distinct accesses than the match length: nothing to store.
		return
	}
	set, tag := g.phtKey(e)
	conf := uint8(1)
	if g.cfg.ConfidenceControl {
		if old, ok := g.pht.Peek(set, tag); ok {
			// Compare the stored pattern against what actually happened:
			// Jaccard similarity of the footprints.
			conf = old.conf
			if footprintSimilarity(old.bits, e.bits) >= 0.75 {
				if conf < 3 {
					conf++
				}
			} else if conf > 0 {
				conf--
			}
		}
	}
	g.pht.Insert(set, tag, phtEntry{bits: e.bits.clone(), conf: conf})
}

// footprintSimilarity returns |a∩b| / |a∪b| over the footprint bits.
func footprintSimilarity(a, b bitvec) float64 {
	var inter, union int
	for i := range a.w {
		var bw uint64
		if i < len(b.w) {
			bw = b.w[i]
		}
		inter += popcount64(a.w[i] & bw)
		union += popcount64(a.w[i] | bw)
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// recordActivation feeds the region-reuse distance histogram: when a
// region re-activates and its previous activation is still resident in
// the direct-mapped tracker, the distance between the two activation
// sequence numbers is log2-bucketed. Direct-mapped conflicts drop the
// older region silently — the histogram is a characterization signal,
// not an exact count.
func (g *Gaze) recordActivation(region uint64) {
	i := region & uint64(len(g.reuseTags)-1)
	if g.reuseTags[i] == region+1 {
		dist := g.reuseSeq - g.reuseSeen[i]
		b := 0
		for d := dist; d > 1 && b < len(g.reuseHist)-1; d >>= 1 {
			b++
		}
		g.reuseHist[b]++
	}
	g.reuseTags[i] = region + 1
	g.reuseSeen[i] = g.reuseSeq
	g.reuseSeq++
}

// Introspect implements prefetch.Introspector: PHT occupancy, the
// streaming-vs-pattern issue mix, and the region-reuse histogram.
func (g *Gaze) Introspect() prefetch.Introspection {
	return prefetch.Introspection{
		PatternEntries:  g.pht.Len(),
		PatternCapacity: g.pht.Sets() * g.pht.Ways(),
		StreamHits:      g.stats.Stage1Full + g.stats.Stage1Half + g.stats.Stage2Promotions,
		PatternHits:     g.stats.PHTHits,
		ReuseHistogram:  g.reuseHist,
	}
}

var (
	_ prefetch.Prefetcher   = (*Gaze)(nil)
	_ prefetch.Introspector = (*Gaze)(nil)
)
