package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/jobs"
	"repro/internal/obs"
)

// tracedServer builds a server with tracing and jobs enabled, sharing
// one tracer between the HTTP layer and the jobs manager — the
// production wiring gazeserve uses.
func tracedServer(t *testing.T) (*httptest.Server, *obs.Tracer) {
	t.Helper()
	tracer := obs.NewTracer(obs.TracerOptions{})
	eng := engine.New(engine.Options{Scale: tiny})
	mgr, err := jobs.Open(jobs.Options{Engine: eng, Compile: Compiler(eng), Workers: 1, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Shutdown(context.Background()) }) //nolint:errcheck
	ts := httptest.NewServer(New(eng).AttachJobs(mgr).AttachTracer(tracer).Handler())
	t.Cleanup(ts.Close)
	return ts, tracer
}

// traceSpan/tracesDoc mirror the wire shape of GET /debug/traces
// (obs.Span marshals through spanWire, so the exported struct cannot be
// decoded back directly).
type traceSpan struct {
	TraceID  string            `json:"trace_id"`
	SpanID   string            `json:"span_id"`
	ParentID string            `json:"parent_id"`
	Name     string            `json:"name"`
	Attrs    map[string]string `json:"attrs"`
}

type tracesDoc struct {
	TraceID string      `json:"trace_id"`
	Spans   []traceSpan `json:"spans"`
}

func getTraces(t *testing.T, ts *httptest.Server, query string) (tracesDoc, *http.Response) {
	t.Helper()
	r, err := http.Get(ts.URL + "/debug/traces" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var resp tracesDoc
	if r.StatusCode == http.StatusOK {
		if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
			t.Fatal(err)
		}
	}
	return resp, r
}

// TestDebugTracesDisabled: without a tracer the route answers 503, same
// subsystem-missing discipline as /jobs and /cluster.
func TestDebugTracesDisabled(t *testing.T) {
	ts := newTestServer(t)
	r, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 without a tracer", r.StatusCode)
	}
}

// TestRequestTracing: every request gets a root span named by its
// matched route pattern, and an inbound traceparent header is honored —
// the server's spans join the caller's trace.
func TestRequestTracing(t *testing.T) {
	ts, _ := tracedServer(t)

	const parent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/stats", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceparentHeader, parent)
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()

	resp, _ := getTraces(t, ts, "?trace=4bf92f3577b34da6a3ce929d0e0e4736")
	if len(resp.Spans) != 1 {
		t.Fatalf("got %d spans for the propagated trace, want 1", len(resp.Spans))
	}
	sp := resp.Spans[0]
	if sp.Name != "http GET /stats" {
		t.Errorf("span name = %q, want %q", sp.Name, "http GET /stats")
	}
	if sp.ParentID != "00f067aa0ba902b7" {
		t.Errorf("span parent = %q, want the inbound span id", sp.ParentID)
	}
	if got := sp.Attrs["status"]; got != "200" {
		t.Errorf("status attr = %q, want 200", got)
	}

	// An unmatched path is labeled "unmatched", not its raw path (which
	// would be unbounded histogram cardinality).
	if _, err := http.Get(ts.URL + "/no/such/path"); err != nil {
		t.Fatal(err)
	}
	all, _ := getTraces(t, ts, "")
	found := false
	for _, sp := range all.Spans {
		if sp.Name == "http unmatched" {
			found = true
		}
		if strings.Contains(sp.Name, "/no/such/path") {
			t.Errorf("span name %q leaks the raw unmatched path", sp.Name)
		}
	}
	if !found {
		t.Error(`no "http unmatched" span recorded for the 404`)
	}
}

// TestJobTraceCorrelation is the tentpole acceptance path in one
// process: submit a job, follow its trace_id from GET /jobs/{id} into
// GET /debug/traces?job=, and check the span tree and phase timings.
func TestJobTraceCorrelation(t *testing.T) {
	ts, _ := tracedServer(t)

	st, _ := submitJob(t, ts, JobSubmitRequest{
		Type:    "simulate",
		Request: json.RawMessage(`{"trace":"lbm-1274","prefetcher":"Gaze"}`),
	})
	done := waitJobState(t, ts, st.ID, string(jobs.Succeeded))

	if done.TraceID == "" {
		t.Fatal("terminal job has no trace_id")
	}
	if done.Timings == nil {
		t.Fatal("terminal job has no timings")
	}
	// The phase breakdown must account for (approximately) the job's
	// wall time: queue_wait + execute + finalize ≈ created→finished.
	var phaseSum int64
	for _, ms := range done.Timings.Phases {
		phaseSum += ms
	}
	wall := done.Timings.TotalMS
	if diff := wall - phaseSum; diff < 0 || diff > wall/2+50 {
		t.Errorf("phases sum to %dms, wall %dms — breakdown does not account for the run", phaseSum, wall)
	}

	resp, r := getTraces(t, ts, "?job="+st.ID)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("debug traces by job: status = %d", r.StatusCode)
	}
	if resp.TraceID != done.TraceID {
		t.Errorf("resolved trace id %q, want %q", resp.TraceID, done.TraceID)
	}
	names := make(map[string]int)
	for _, sp := range resp.Spans {
		if sp.TraceID != done.TraceID {
			t.Fatalf("span %q carries trace %q, want %q", sp.Name, sp.TraceID, done.TraceID)
		}
		names[sp.Name]++
	}
	for _, want := range []string{"job.run", "job.execute", "engine.simulate", "engine.materialize"} {
		if names[want] == 0 {
			t.Errorf("trace has no %q span (got %v)", want, names)
		}
	}
}

// TestDebugTracesLimit: ?limit= caps the listing, newest first.
func TestDebugTracesLimit(t *testing.T) {
	ts, _ := tracedServer(t)
	for i := 0; i < 5; i++ {
		r, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	resp, _ := getTraces(t, ts, "?limit=2")
	if len(resp.Spans) != 2 {
		t.Fatalf("got %d spans with limit=2", len(resp.Spans))
	}
}
