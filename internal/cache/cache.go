// Package cache implements the set-associative cache model used at every
// level of the simulated hierarchy (L1D, L2C, LLC).
//
// The model is timing-aware in a single-pass trace-driven style: each line
// carries a readyAt cycle stamp, so a fill issued at cycle t with latency d
// is visible immediately but costs a residual wait to any access arriving
// before t+d. That one mechanism models MSHR merging of demands and the
// paper's "late prefetch" definition ("a CPU access hits on an outstanding
// prefetch request") without a discrete event queue.
//
// Lines also carry a prefetch bit and a fill origin, which drive the
// paper's metrics: overall accuracy (§IV-A3) counts a prefetched line as
// useful on its first demand touch at the level the prefetch targeted and
// useless when evicted untouched; LLC coverage counts useful prefetches
// whose data came from DRAM.
package cache

import (
	"fmt"

	"repro/internal/mem"
)

// Config describes one cache level.
type Config struct {
	// Name identifies the level in stats output ("L1D", "L2C", "LLC").
	Name string
	// Sets and Ways define the geometry; capacity = Sets*Ways*64B.
	Sets int
	Ways int
	// HitLatency is the access latency in CPU cycles.
	HitLatency float64
	// MSHRs bounds the number of outstanding misses. Zero disables the
	// bound (used by unit tests that only exercise placement).
	MSHRs int
}

// SizeBytes returns the cache capacity in bytes.
func (c Config) SizeBytes() int { return c.Sets * c.Ways * mem.LineSize }

// Validate reports configuration errors early instead of panicking deep in
// a simulation.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache %s: sets must be a positive power of two, got %d", c.Name, c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache %s: ways must be positive, got %d", c.Name, c.Ways)
	}
	if c.HitLatency < 0 {
		return fmt.Errorf("cache %s: negative hit latency", c.Name)
	}
	return nil
}

// Line is one cache line's metadata.
type line struct {
	tag     uint64
	vline   uint64 // virtual line number, kept for eviction notifications
	readyAt float64
	lruAt   uint64
	valid   bool
	// prefetch marks a line filled by a prefetch targeted at this level
	// and not yet touched by a demand access.
	prefetch bool
	// fromDRAM marks a prefetch fill whose data came from DRAM (it would
	// have been an off-chip miss); used for LLC coverage accounting.
	fromDRAM bool
}

// Stats accumulates per-level counters. The embedding simulator resets
// Stats at the warm-up boundary.
type Stats struct {
	DemandAccesses uint64
	DemandHits     uint64
	DemandMisses   uint64
	// PrefetchFills counts prefetch-targeted fills at this level.
	PrefetchFills uint64
	// UsefulPrefetches counts first demand touches of prefetched lines.
	UsefulPrefetches uint64
	// UselessPrefetches counts prefetched lines evicted untouched.
	UselessPrefetches uint64
	// LatePrefetches counts useful prefetches whose fill was still in
	// flight at first touch.
	LatePrefetches uint64
	// CoveredMisses counts useful prefetches that were served from DRAM,
	// i.e. demand misses this level would otherwise have sent off-chip.
	CoveredMisses uint64
}

// EvictFunc observes evictions: vline is the virtual line number recorded at
// fill time, wasPrefetch reports an untouched prefetched line.
type EvictFunc func(vline uint64, wasPrefetch bool)

// Cache is a set-associative, LRU, timing-annotated cache.
type Cache struct {
	cfg     Config
	sets    []line // Sets*Ways flattened
	ways    int
	setMask uint64
	clock   uint64
	onEvict EvictFunc

	// mshrFree holds the release times of each MSHR slot.
	mshrFree []float64

	Stats Stats
}

// New constructs a cache; it panics on invalid configuration (construction
// happens at setup time where a panic is an acceptable failure mode, and
// Validate is available for callers that prefer errors).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{
		cfg:     cfg,
		sets:    make([]line, cfg.Sets*cfg.Ways),
		ways:    cfg.Ways,
		setMask: uint64(cfg.Sets - 1),
	}
	if cfg.MSHRs > 0 {
		c.mshrFree = make([]float64, cfg.MSHRs)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// SetEvictFunc installs the eviction observer.
func (c *Cache) SetEvictFunc(f EvictFunc) { c.onEvict = f }

func (c *Cache) setFor(lineNum uint64) []line {
	idx := (lineNum & c.setMask) * uint64(c.ways)
	return c.sets[idx : idx+uint64(c.ways)]
}

// AccessResult reports the outcome of a demand access.
type AccessResult struct {
	Hit bool
	// ReadyAt is the cycle the data is available (>= access cycle when the
	// line was in flight).
	ReadyAt float64
	// WasPrefetch reports that this access was the first demand touch of a
	// prefetched line.
	WasPrefetch bool
	// WasLate reports a WasPrefetch touch that arrived before the fill
	// completed (the paper's late-prefetch definition).
	WasLate bool
}

// Access performs a demand lookup at cycle now. On a hit the LRU state is
// updated, the prefetch bit is consumed and usefulness counters advance.
func (c *Cache) Access(paddr mem.Addr, now float64) AccessResult {
	ln := mem.LineNum(paddr)
	set := c.setFor(ln)
	c.clock++
	c.Stats.DemandAccesses++
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == ln {
			c.Stats.DemandHits++
			l.lruAt = c.clock
			res := AccessResult{Hit: true, ReadyAt: l.readyAt}
			if l.prefetch {
				l.prefetch = false
				c.Stats.UsefulPrefetches++
				res.WasPrefetch = true
				if l.readyAt > now {
					c.Stats.LatePrefetches++
					res.WasLate = true
				}
				if l.fromDRAM {
					c.Stats.CoveredMisses++
				}
			}
			return res
		}
	}
	c.Stats.DemandMisses++
	return AccessResult{}
}

// Probe reports whether the line is present without touching LRU, prefetch
// bits or statistics. Prefetch issue logic uses it for redundancy checks.
func (c *Cache) Probe(paddr mem.Addr) bool {
	ln := mem.LineNum(paddr)
	set := c.setFor(ln)
	for i := range set {
		if set[i].valid && set[i].tag == ln {
			return true
		}
	}
	return false
}

// InFlight reports whether the line is present but its fill has not
// completed by cycle now (an outstanding request).
func (c *Cache) InFlight(paddr mem.Addr, now float64) bool {
	ln := mem.LineNum(paddr)
	set := c.setFor(ln)
	for i := range set {
		if set[i].valid && set[i].tag == ln {
			return set[i].readyAt > now
		}
	}
	return false
}

// FillOpts qualifies a Fill.
type FillOpts struct {
	// Prefetch marks a fill whose prefetch targeted this level.
	Prefetch bool
	// FromDRAM marks data served from DRAM.
	FromDRAM bool
	// VLine is the virtual line number, reported back on eviction.
	VLine uint64
}

// Fill inserts a line that becomes ready at readyAt, evicting the LRU
// victim if needed. Filling an already-present line refreshes its
// readiness only if the new fill completes earlier.
func (c *Cache) Fill(paddr mem.Addr, readyAt float64, opts FillOpts) {
	ln := mem.LineNum(paddr)
	set := c.setFor(ln)
	c.clock++
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == ln {
			if readyAt < l.readyAt {
				l.readyAt = readyAt
			}
			// A demand fill of a line previously prefetched keeps the
			// prefetch bit: usefulness is decided by demand *access*.
			return
		}
	}
	// Choose victim: first invalid way, else LRU.
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range set {
		l := &set[i]
		if !l.valid {
			victim = i
			oldest = 0
			break
		}
		if l.lruAt < oldest {
			oldest = l.lruAt
			victim = i
		}
	}
	v := &set[victim]
	if v.valid {
		if v.prefetch {
			c.Stats.UselessPrefetches++
		}
		if c.onEvict != nil {
			c.onEvict(v.vline, v.prefetch)
		}
	}
	*v = line{
		tag:      ln,
		vline:    opts.VLine,
		readyAt:  readyAt,
		lruAt:    c.clock,
		valid:    true,
		prefetch: opts.Prefetch,
		fromDRAM: opts.FromDRAM && opts.Prefetch,
	}
	if opts.Prefetch {
		c.Stats.PrefetchFills++
	}
}

// AcquireMSHR models MSHR occupancy for a miss issued at cycle now that
// completes at completion. It returns the cycle the request can actually
// start (>= now when all slots are busy).
func (c *Cache) AcquireMSHR(now, completion float64) float64 {
	start, slot := c.MSHRReserve(now)
	if slot >= 0 {
		c.MSHRComplete(slot, completion+(start-now))
	}
	return start
}

// MSHRReserve finds the earliest-available MSHR slot for a miss arriving at
// cycle now. It returns the cycle the request may start (>= now) and the
// slot index; the caller must follow up with MSHRComplete once the finish
// time is known. With MSHRs disabled it returns (now, -1).
func (c *Cache) MSHRReserve(now float64) (start float64, slot int) {
	if c.mshrFree == nil {
		return now, -1
	}
	best := 0
	for i := 1; i < len(c.mshrFree); i++ {
		if c.mshrFree[i] < c.mshrFree[best] {
			best = i
		}
	}
	start = now
	if c.mshrFree[best] > start {
		start = c.mshrFree[best]
	}
	return start, best
}

// MSHRComplete releases the reserved slot at cycle finish.
func (c *Cache) MSHRComplete(slot int, finish float64) {
	if slot < 0 || c.mshrFree == nil {
		return
	}
	c.mshrFree[slot] = finish
}

// ConsumePrefetch clears a resident line's prefetch bit without counting
// it as used or useless, returning whether the bit was set and whether the
// line's data came from DRAM. A higher-level prefetch that is served from
// this level inherits the attribution: the paper's overall-accuracy metric
// counts each prefetched block once (§IV-A3).
func (c *Cache) ConsumePrefetch(paddr mem.Addr) (wasPrefetch, fromDRAM bool) {
	ln := mem.LineNum(paddr)
	set := c.setFor(ln)
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == ln {
			wasPrefetch, fromDRAM = l.prefetch, l.fromDRAM
			if l.prefetch {
				// Transfer: the fill at the level above re-registers it.
				c.Stats.PrefetchFills--
				l.prefetch = false
				l.fromDRAM = false
			}
			return wasPrefetch, fromDRAM
		}
	}
	return false, false
}

// Touch refreshes a line's LRU position without affecting statistics or
// prefetch bits. The prefetch-issue path uses it when a prefetch is served
// by a lower level.
func (c *Cache) Touch(paddr mem.Addr) {
	ln := mem.LineNum(paddr)
	set := c.setFor(ln)
	c.clock++
	for i := range set {
		if set[i].valid && set[i].tag == ln {
			set[i].lruAt = c.clock
			return
		}
	}
}

// MSHRBusy reports how many MSHR slots are still held at cycle now. The
// DSPatch prefetcher uses it as its bandwidth-pressure proxy.
func (c *Cache) MSHRBusy(now float64) int {
	n := 0
	for _, t := range c.mshrFree {
		if t > now {
			n++
		}
	}
	return n
}

// FlushStats finalizes end-of-simulation accounting: every still-resident
// untouched prefetched line counts as useless (it never helped).
func (c *Cache) FlushStats() {
	for i := range c.sets {
		if c.sets[i].valid && c.sets[i].prefetch {
			c.Stats.UselessPrefetches++
			c.sets[i].prefetch = false
		}
	}
}

// ResetStats clears the statistics (used at the warm-up boundary) without
// disturbing cache contents.
func (c *Cache) ResetStats() { c.Stats = Stats{} }
