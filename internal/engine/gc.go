package engine

import (
	"errors"
	"time"
)

// This file implements result-store garbage collection. The store is
// append-only in normal operation — every distinct (job, scale) pair adds
// a record and nothing ever removes one — so a long-lived server
// accumulates entries without bound. GC reclaims disk with an
// age + refcount policy:
//
//   - age: entries younger than GCPolicy.MaxAge are always kept. Fresh
//     results are the ones most likely to be re-read (an analytics matrix
//     assembling, a sweep resuming), and the age floor also protects a
//     concurrent engine's just-written records from a racing collector.
//   - refcount: entries whose address any ref source reports live are
//     always kept, regardless of age. Ref sources are snapshot functions
//     injected by the caller — internal/jobs contributes the addresses of
//     every engine job a queued or running background job will run, and
//     the server's analytics cache contributes the addresses backing its
//     cached matrices — so GC never deletes a result that live work is
//     about to read.
//   - in-flight: addresses the engine itself is computing right now are
//     protected implicitly; deleting one would race the Put that follows
//     the simulation.
//
// Deleting an unreferenced entry is always safe for correctness — the
// store is a cache, and a deleted result is simply re-simulated on next
// request. The policy only bounds how much completed work a collection
// can discard.

// ErrNoStore is returned by GC on an engine with no persisted store.
var ErrNoStore = errors.New("engine: no persisted store to collect")

// GCPolicy bounds what a collection may delete.
type GCPolicy struct {
	// MaxAge keeps entries modified within the window. Zero means no age
	// floor: every unreferenced entry is eligible.
	MaxAge time.Duration
}

// GCStats reports one collection cycle.
type GCStats struct {
	// Scanned counts store entries examined.
	Scanned int `json:"scanned"`
	// Deleted counts entries removed; ReclaimedBytes their total size.
	Deleted        int   `json:"deleted"`
	ReclaimedBytes int64 `json:"reclaimed_bytes"`
	// KeptReferenced counts entries retained because a ref source (or the
	// engine's in-flight set) reported them live; KeptYoung those retained
	// by the age floor. An entry both young and referenced counts as
	// referenced.
	KeptReferenced int `json:"kept_referenced"`
	KeptYoung      int `json:"kept_young"`
}

// GCTotals accumulates collection results across an engine's lifetime,
// for monitoring (/metrics).
type GCTotals struct {
	Runs             uint64 `json:"runs"`
	ReclaimedEntries uint64 `json:"reclaimed_entries"`
	ReclaimedBytes   int64  `json:"reclaimed_bytes"`
}

// GC runs one collection cycle over the engine's persisted store: every
// entry older than policy.MaxAge whose address no ref source (and no
// in-flight computation) claims is deleted. Each ref function is called
// once, at the start of the cycle, and must return the set of content
// addresses that must survive; the engine's own in-flight jobs are always
// protected. GC is safe to run concurrently with simulations — deletion
// races a concurrent Put at worst, which recreates an identical record.
func (e *Engine) GC(policy GCPolicy, refs ...func() map[string]bool) (GCStats, error) {
	if e.store == nil {
		return GCStats{}, ErrNoStore
	}
	protected := e.inflightAddresses()
	for _, ref := range refs {
		for addr := range ref() {
			protected[addr] = true
		}
	}
	cutoff := time.Now().Add(-policy.MaxAge)
	var stats GCStats
	for _, entry := range e.store.Entries() {
		stats.Scanned++
		switch {
		case protected[entry.Address]:
			stats.KeptReferenced++
		case policy.MaxAge > 0 && entry.ModTime.After(cutoff):
			stats.KeptYoung++
		default:
			if n, ok := e.store.Remove(entry.Address); ok {
				stats.Deleted++
				stats.ReclaimedBytes += n
			}
		}
	}
	e.mu.Lock()
	e.gcTotals.Runs++
	e.gcTotals.ReclaimedEntries += uint64(stats.Deleted)
	e.gcTotals.ReclaimedBytes += stats.ReclaimedBytes
	e.mu.Unlock()
	return stats, nil
}

// inflightAddresses snapshots the content addresses of every job the
// engine is computing right now. A GC cycle must not delete them: the
// simulation's Put would race the delete, and a waiter coalesced onto the
// in-flight computation expects the result to be durable afterwards.
func (e *Engine) inflightAddresses() map[string]bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]bool, len(e.inflight))
	for key := range e.inflight {
		out[hashKey(key)] = true
	}
	return out
}

// GCTotals returns the engine's cumulative collection counters.
func (e *Engine) GCTotals() GCTotals {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.gcTotals
}
