package prefetchers

import (
	"repro/internal/mem"
	"repro/internal/prefetch"
)

// BOP is Best-Offset Prefetching [Michaud, HPCA 2016], the delta-
// correlated baseline the paper's related-work section discusses (§V):
// it scores a fixed list of candidate offsets against recent accesses and
// prefetches with the single best-scoring offset. Included beyond the
// paper's evaluated set to position Gaze against the classic offset-
// prefetching line.
type BOP struct {
	// offsets are the candidate deltas in lines (Michaud's list uses
	// products of small primes; a compact subset suffices here).
	offsets []int64
	scores  []int

	// recent holds recently accessed line numbers (the RR table stand-in).
	recent    [64]int64
	recentPos int

	best      int64
	round     int
	scoreMax  int
	roundLen  int
	badScore  int
	learnOnly bool
}

// NewBOP builds a Best-Offset prefetcher with the canonical parameters
// (SCORE_MAX 31, ROUND_MAX 100, BAD_SCORE 1).
func NewBOP() *BOP {
	offs := []int64{1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20, 24, 30, 32, 36, 40, 48, 60, 64}
	return &BOP{
		offsets:  offs,
		scores:   make([]int, len(offs)),
		best:     1,
		scoreMax: 31,
		roundLen: 100,
		badScore: 1,
	}
}

// Name implements prefetch.Prefetcher.
func (*BOP) Name() string { return "BOP" }

// Train implements prefetch.Prefetcher.
func (p *BOP) Train(a prefetch.Access, issue prefetch.IssueFunc) {
	line := int64(a.VAddr >> mem.LineBits)

	// Score every candidate offset d for which line-d was seen recently:
	// a prefetch issued at line-d with offset d would have produced this
	// access.
	for i, d := range p.offsets {
		if p.sawRecently(line - d) {
			p.scores[i]++
			if p.scores[i] >= p.scoreMax {
				p.finishRound(i)
			}
		}
	}
	p.round++
	if p.round >= p.roundLen {
		bestIdx := 0
		for i := range p.scores {
			if p.scores[i] > p.scores[bestIdx] {
				bestIdx = i
			}
		}
		p.finishRound(bestIdx)
	}

	p.recent[p.recentPos] = line
	p.recentPos = (p.recentPos + 1) & 63

	if !p.learnOnly {
		target := line + p.best
		if target > 0 {
			issue(prefetch.Request{VLine: uint64(target) << mem.LineBits, Level: prefetch.LevelL1})
		}
	}
}

func (p *BOP) sawRecently(line int64) bool {
	for _, r := range p.recent {
		if r == line {
			return true
		}
	}
	return false
}

// finishRound elects the winning offset and resets scores. A winner below
// BAD_SCORE turns prefetching off until a later round finds a usable
// offset (Michaud's degree-0 mode).
func (p *BOP) finishRound(winner int) {
	p.learnOnly = p.scores[winner] <= p.badScore
	p.best = p.offsets[winner]
	for i := range p.scores {
		p.scores[i] = 0
	}
	p.round = 0
}

// EvictNotify implements prefetch.Prefetcher.
func (*BOP) EvictNotify(uint64) {}

// StorageBytes: offset scoreboard + RR table, well under 1KB.
func (p *BOP) StorageBytes() float64 { return 0.5 * 1024 }

var _ prefetch.Prefetcher = (*BOP)(nil)
