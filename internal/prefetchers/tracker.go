package prefetchers

import (
	"math/bits"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

// regionTracker is the FT/AT machinery shared by the spatial-pattern-based
// baselines (SMS, Bingo, DSPatch, PMP). Unlike Gaze, these prefetchers
// awaken prediction on the *trigger* (first) access to a region; the FT
// still filters one-bit patterns out of learning.
type regionTracker struct {
	shift  uint // log2(region size)
	blocks int

	ft *prefetch.Table[trkFT]
	at *prefetch.Table[trkAT]

	// onDeactivate learns a finished region's footprint.
	onDeactivate func(e *trkAT)

	// scratch stages the entry handed to onDeactivate: passing a pointer
	// to a struct field (instead of to a loop local) keeps escape
	// analysis from heap-allocating one trkAT per deactivation on the
	// training hot path.
	scratch trkAT
}

type trkFT struct {
	pc      uint64
	trigger uint16
}

// trkAT accumulates a footprint; bits is a plain uint64 because all
// baselines use regions of at most 64 blocks (2KB or 4KB).
type trkAT struct {
	region  uint64
	pc      uint64
	trigger uint16
	bits    uint64
}

func newRegionTracker(regionBytes int, onDeactivate func(e *trkAT)) *regionTracker {
	shift := uint(0)
	for s := regionBytes; s > 1; s >>= 1 {
		shift++
	}
	return &regionTracker{
		shift:        shift,
		blocks:       regionBytes / mem.LineSize,
		ft:           prefetch.NewTable[trkFT](8, 8),
		at:           prefetch.NewTable[trkAT](8, 8),
		onDeactivate: onDeactivate,
	}
}

func (t *regionTracker) region(vaddr uint64) uint64 { return vaddr >> t.shift }
func (t *regionTracker) offset(vaddr uint64) int {
	return int((vaddr >> mem.LineBits) & uint64(t.blocks-1))
}

// observe updates tracking state and reports whether this access activated
// a new region (i.e. is a trigger access).
func (t *regionTracker) observe(a prefetch.Access) (region uint64, off int, isTrigger bool) {
	region = t.region(a.VAddr)
	off = t.offset(a.VAddr)

	if e, ok := t.at.Lookup(t.at.SetIndex(region), region); ok {
		e.bits |= 1 << uint(off)
		return region, off, false
	}
	if fe, ok := t.ft.Lookup(t.ft.SetIndex(region), region); ok {
		if int(fe.trigger) != off {
			entry := trkAT{
				region:  region,
				pc:      fe.pc,
				trigger: fe.trigger,
				bits:    1<<uint(fe.trigger) | 1<<uint(off),
			}
			t.ft.Invalidate(t.ft.SetIndex(region), region)
			if ev, was := t.at.Insert(t.at.SetIndex(region), region, entry); was {
				t.scratch = ev
				t.onDeactivate(&t.scratch)
			}
		}
		return region, off, false
	}
	t.ft.Insert(t.ft.SetIndex(region), region, trkFT{pc: a.PC, trigger: uint16(off)})
	return region, off, true
}

// evict handles an L1 eviction: a tracked region containing the line is
// deactivated and learned.
func (t *regionTracker) evict(vline uint64) {
	region := vline >> t.shift
	if e, ok := t.at.Invalidate(t.at.SetIndex(region), region); ok {
		t.scratch = e
		t.onDeactivate(&t.scratch)
	}
}

// popcount of a footprint.
func popcount(fp uint64) int { return bits.OnesCount64(fp) }

// rotr rotates a footprint right by k within the tracker's block count,
// anchoring bit 0 at the trigger offset (PMP/DSPatch-style pattern
// anchoring).
func (t *regionTracker) rotr(fp uint64, k int) uint64 {
	n := uint(t.blocks)
	k = k & (t.blocks - 1)
	if k == 0 {
		return fp
	}
	mask := uint64(1)<<n - 1
	if n == 64 {
		mask = ^uint64(0)
	}
	fp &= mask
	return ((fp >> uint(k)) | (fp << (n - uint(k)))) & mask
}

// rotl is the inverse of rotr.
func (t *regionTracker) rotl(fp uint64, k int) uint64 {
	return t.rotr(fp, t.blocks-k&(t.blocks-1))
}
