//go:build unix

package trace

import (
	"fmt"
	"os"
	"runtime"
	"syscall"
)

// mapFile maps path read-only. The returned mapping unmaps itself when it
// becomes unreachable; MapColumnar clears the finalizer and unmaps eagerly
// on paths that do not retain the region.
func mapFile(path string) (*mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size <= 0 || size != int64(int(size)) {
		return nil, fmt.Errorf("trace: cannot map %s (%d bytes)", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("trace: mapping %s: %w", path, err)
	}
	m := &mapping{data: data}
	runtime.SetFinalizer(m, (*mapping).unmap)
	return m, nil
}

func (m *mapping) unmap() {
	if m.data != nil {
		syscall.Munmap(m.data) //nolint:errcheck // release-only; nothing to do on failure
		m.data = nil
	}
}
