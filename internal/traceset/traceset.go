// Package traceset is the durable, content-addressed trace registry — the
// bridge from the synthetic workload catalogue to the paper's world of
// real captured traces (ChampSim recordings of SPEC/GAP/LLBench, §V).
// Ingestion accepts any format the trace codec layer speaks (native GZTR,
// ChampSim-style lines, gzip-wrapped variants of both), streams the
// records through validation, and commits an atomically-written registry
// entry: `<dir>/<address>.gztr` holding the normalized record stream plus
// `<dir>/<address>.json` holding the manifest (record count, footprint
// summary, source format, ingest time).
//
// The address is the SHA-256 of the normalized record stream, NOT of the
// uploaded bytes: re-uploading the same logical trace as raw ChampSim
// text, re-gzipped, or re-encoded GZTR dedups onto one entry. The address
// doubles as the trace's engine-cache identity — a Registry implements
// workload.Source, so `ingested:<address>` names run through
// workload.Materialize, engine jobs, sweeps and the HTTP API exactly like
// catalogue names, and the digest embedded in the name keeps result-store
// keys sound.
package traceset

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Typed ingestion errors; the HTTP layer maps them (plus the trace codec's
// ErrCorrupt/ErrTruncated) to client errors.
var (
	// ErrEmpty reports an upload that decoded to zero records.
	ErrEmpty = errors.New("traceset: trace has no records")
	// ErrTooLarge reports an upload beyond the registry's record cap.
	ErrTooLarge = errors.New("traceset: trace exceeds the record limit")
	// ErrNotFound reports an unknown registry address.
	ErrNotFound = errors.New("traceset: no such trace")
)

// DefaultMaxRecords bounds one ingested trace (~230MB of resident records
// at 24 bytes each) so a single upload cannot wedge the process; Options
// can raise or lower it.
const DefaultMaxRecords = 10_000_000

// Manifest is the durable description of one registry entry — the JSON
// document persisted beside the record stream and served by the HTTP API.
type Manifest struct {
	// Address is the SHA-256 hex digest of the normalized record stream —
	// the entry's identity, file name, and engine-cache digest.
	Address string `json:"address"`
	// Records is the trace's record count.
	Records int `json:"records"`
	// SourceFormat is the format the trace was originally ingested from.
	SourceFormat trace.Format `json:"source_format"`
	// IngestedAt is when the entry was first committed (dedup re-uploads
	// keep the original manifest).
	IngestedAt time.Time `json:"ingested_at"`
	// StoredBytes is the size of the normalized GZTR stream on disk.
	StoredBytes int64 `json:"stored_bytes"`
	// Footprint is the §III-C spatial-density summary of the trace.
	Footprint workload.FootprintStats `json:"footprint"`
}

// Name returns the workload name the entry runs under ("ingested:<addr>").
func (m Manifest) Name() string { return workload.IngestedName(m.Address) }

// Options configures Open.
type Options struct {
	// MaxRecords caps one ingested trace (0 selects DefaultMaxRecords).
	MaxRecords int
}

// Registry is the on-disk trace store. It is safe for concurrent use; all
// mutation goes through atomic file writes, so concurrent registries
// sharing one directory never observe torn entries.
type Registry struct {
	dir        string
	maxRecords int

	mu    sync.Mutex
	cond  *sync.Cond
	index map[string]Manifest
	// pending marks addresses whose entry is being committed, so racing
	// ingests of the same records single-flight onto one creation without
	// the heavy work (footprint analysis, file writes) holding mu — Get,
	// Exists and Load stay responsive during large ingests.
	pending map[string]bool
}

// Open creates (if needed) the registry directory and loads its index
// from the persisted manifests. Manifests that fail to parse or whose
// address does not match their file name are skipped (never deleted —
// they may belong to a newer schema).
func Open(dir string, opts Options) (*Registry, error) {
	if opts.MaxRecords <= 0 {
		opts.MaxRecords = DefaultMaxRecords
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("traceset: opening registry: %w", err)
	}
	r := &Registry{dir: dir, maxRecords: opts.MaxRecords, index: make(map[string]Manifest), pending: make(map[string]bool)}
	r.cond = sync.NewCond(&r.mu)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("traceset: reading registry: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		var m Manifest
		if json.Unmarshal(data, &m) != nil {
			continue
		}
		if m.Address != strings.TrimSuffix(e.Name(), ".json") || !validAddress(m.Address) {
			continue
		}
		if _, err := os.Stat(r.dataPath(m.Address)); err != nil {
			continue // manifest without its record stream: half an entry
		}
		r.index[m.Address] = m
	}
	return r, nil
}

// Dir returns the registry's root directory.
func (r *Registry) Dir() string { return r.dir }

// validAddress reports whether s is a well-formed entry address (64 hex
// digits), keeping path construction safe from traversal.
func validAddress(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

func (r *Registry) dataPath(addr string) string {
	return filepath.Join(r.dir, addr+".gztr")
}

func (r *Registry) manifestPath(addr string) string {
	return filepath.Join(r.dir, addr+".json")
}

// colsPath locates the entry's columnar sidecar — the mmap-ready
// fixed-width encoding written beside the GZTR stream.
func (r *Registry) colsPath(addr string) string {
	return filepath.Join(r.dir, addr+".cols")
}

// DigestRecords returns the content address of a record stream: the
// SHA-256 over a versioned, fixed-width little-endian serialization of
// every record. Hashing the records rather than the encoded file is what
// makes byte-different re-uploads of the same logical trace (re-gzipped,
// format-converted) dedup onto one entry.
func DigestRecords(recs []trace.Record) string {
	h := sha256.New()
	io.WriteString(h, "gaze-traceset/v1\n")
	var buf [19]byte
	for _, rec := range recs {
		binary.LittleEndian.PutUint64(buf[0:8], rec.PC)
		binary.LittleEndian.PutUint64(buf[8:16], rec.Addr)
		binary.LittleEndian.PutUint16(buf[16:18], rec.NonMem)
		buf[18] = byte(rec.Kind)
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Ingest decodes src (format sniffed: GZTR or ChampSim lines, either
// optionally gzip-wrapped), validates and normalizes the records, and
// commits them under their content address. The returned bool reports
// whether a new entry was created; false means the upload deduped onto an
// existing one, whose original manifest is returned. Decode failures
// surface the trace codec's typed errors (ErrCorrupt, ErrTruncated).
func (r *Registry) Ingest(src io.Reader) (Manifest, bool, error) {
	rd, format, err := trace.Detect(src)
	if err != nil {
		return Manifest{}, false, err
	}
	recs, err := trace.Collect(rd, r.maxRecords+1)
	if err != nil {
		return Manifest{}, false, err
	}
	if len(recs) == 0 {
		return Manifest{}, false, ErrEmpty
	}
	if len(recs) > r.maxRecords {
		return Manifest{}, false, fmt.Errorf("%w: more than %d records", ErrTooLarge, r.maxRecords)
	}
	return r.IngestRecords(recs, format)
}

// IngestRecords commits an already-decoded record stream (the path
// tracegen-style tooling uses; Ingest delegates here). Racing ingests of
// the same records single-flight onto one creation — exactly one caller
// reports created, everyone else observes the dedup — while the heavy
// work (footprint analysis, encoding, file writes) runs outside the
// registry lock so concurrent lookups never stall behind a large ingest.
func (r *Registry) IngestRecords(recs []trace.Record, format trace.Format) (Manifest, bool, error) {
	if len(recs) == 0 {
		return Manifest{}, false, ErrEmpty
	}
	if len(recs) > r.maxRecords {
		return Manifest{}, false, fmt.Errorf("%w: more than %d records", ErrTooLarge, r.maxRecords)
	}
	addr := DigestRecords(recs)

	r.mu.Lock()
	for {
		if m, ok := r.index[addr]; ok {
			r.mu.Unlock()
			return m, false, nil
		}
		if !r.pending[addr] {
			break
		}
		r.cond.Wait()
	}
	r.pending[addr] = true
	r.mu.Unlock()

	m, err := r.commit(addr, recs, format)

	r.mu.Lock()
	delete(r.pending, addr)
	if err == nil {
		r.index[addr] = m
	}
	r.cond.Broadcast()
	r.mu.Unlock()
	if err != nil {
		return Manifest{}, false, err
	}
	return m, true, nil
}

// commit writes one entry's files. Only the goroutine holding the
// pending[addr] claim runs it for a given address.
func (r *Registry) commit(addr string, recs []trace.Record, format trace.Format) (Manifest, error) {
	var buf bytes.Buffer
	if err := trace.WriteAll(&buf, trace.FormatGZTR, recs); err != nil {
		return Manifest{}, fmt.Errorf("traceset: encoding records: %w", err)
	}
	m := Manifest{
		Address:      addr,
		Records:      len(recs),
		SourceFormat: format,
		IngestedAt:   time.Now().UTC(),
		StoredBytes:  int64(buf.Len()),
		Footprint:    workload.AnalyzeFootprints(recs),
	}
	manifest, err := json.MarshalIndent(m, "", "\t")
	if err != nil {
		return Manifest{}, fmt.Errorf("traceset: encoding manifest: %w", err)
	}
	// Records and columnar sidecar first, manifest last: the manifest's
	// existence is the commit point (Open skips manifests whose record
	// stream is missing), so a crash between the writes leaves at worst
	// orphaned data files that the next ingest of the same trace
	// overwrites in place.
	if err := engine.WriteFileAtomic(r.dataPath(addr), buf.Bytes()); err != nil {
		return Manifest{}, fmt.Errorf("traceset: writing records: %w", err)
	}
	if err := engine.WriteFileAtomic(r.colsPath(addr), trace.EncodeColumnar(recs)); err != nil {
		os.Remove(r.dataPath(addr))
		return Manifest{}, fmt.Errorf("traceset: writing columnar slab: %w", err)
	}
	if err := engine.WriteFileAtomic(r.manifestPath(addr), manifest); err != nil {
		os.Remove(r.dataPath(addr))
		os.Remove(r.colsPath(addr))
		return Manifest{}, fmt.Errorf("traceset: writing manifest: %w", err)
	}
	return m, nil
}

// List returns every entry's manifest, ordered by ingest time then
// address (a stable display order).
func (r *Registry) List() []Manifest {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Manifest, 0, len(r.index))
	for _, m := range r.index {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].IngestedAt.Equal(out[j].IngestedAt) {
			return out[i].IngestedAt.Before(out[j].IngestedAt)
		}
		return out[i].Address < out[j].Address
	})
	return out
}

// Len returns the number of registry entries.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.index)
}

// Get returns the manifest at an address.
func (r *Registry) Get(addr string) (Manifest, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.index[addr]
	return m, ok
}

// Records loads up to n records of the entry at addr (n <= 0 loads all).
func (r *Registry) Records(addr string, n int) ([]trace.Record, error) {
	if _, ok := r.Get(addr); !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, addr)
	}
	f, err := os.Open(r.dataPath(addr))
	if err != nil {
		return nil, fmt.Errorf("traceset: opening records for %s: %w", addr, err)
	}
	defer f.Close()
	fr, err := trace.NewFileReader(f)
	if err != nil {
		return nil, fmt.Errorf("traceset: records for %s: %w", addr, err)
	}
	recs, err := trace.Collect(fr, n)
	if err != nil {
		return nil, fmt.Errorf("traceset: records for %s: %w", addr, err)
	}
	return recs, nil
}

// OpenData returns the entry's raw normalized GZTR stream, for export.
func (r *Registry) OpenData(addr string) (io.ReadCloser, error) {
	if _, ok := r.Get(addr); !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, addr)
	}
	f, err := os.Open(r.dataPath(addr))
	if err != nil {
		return nil, fmt.Errorf("traceset: opening records for %s: %w", addr, err)
	}
	return f, nil
}

// Delete removes the entry at addr — manifest first (un-committing the
// entry for any concurrent Open), then the record stream — and drops the
// trace's materialized slabs from the process-wide cache so the name
// stops resolving immediately. In-use protection is the caller's job
// (the HTTP layer refuses to delete traces referenced by live work); the
// registry itself is mechanical.
func (r *Registry) Delete(addr string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.index[addr]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, addr)
	}
	if err := os.Remove(r.manifestPath(addr)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("traceset: deleting %s: %w", addr, err)
	}
	if err := os.Remove(r.dataPath(addr)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("traceset: deleting %s: %w", addr, err)
	}
	// The columnar sidecar is derived data: a failed removal must not
	// resurrect a deleted entry (mapped slabs already handed out stay
	// valid regardless — the mapping outlives the directory entry).
	os.Remove(r.colsPath(addr)) //nolint:errcheck
	delete(r.index, addr)
	workload.InvalidateTrace(workload.IngestedName(addr))
	return nil
}

// Registry is a workload.Source: ingested traces resolve through
// workload.Exists / Materialize under their "ingested:<address>" names.
var _ workload.Source = (*Registry)(nil)

// Exists implements workload.Source.
func (r *Registry) Exists(name string) bool {
	addr, ok := workload.IngestedDigest(name)
	if !ok {
		return false
	}
	_, ok = r.Get(addr)
	return ok
}

// Load implements workload.Source.
func (r *Registry) Load(name string, n int) ([]trace.Record, error) {
	addr, ok := workload.IngestedDigest(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q is not an ingested trace name", ErrNotFound, name)
	}
	return r.Records(addr, n)
}

// Registry is also a workload.SlabSource: MaterializeRecords serves
// ingested traces as mmap-backed columnar slabs where possible.
var _ workload.SlabSource = (*Registry)(nil)

// LoadSlab implements workload.SlabSource: it maps the entry's columnar
// sidecar read-only and returns an in-place view of up to n records.
// Entries without a (valid) sidecar — ingested before the columnar format
// existed and not yet migrated — and platforms without mmap fall back to
// the heap GZTR decode; the caller cannot tell except by footprint.
func (r *Registry) LoadSlab(name string, n int) (trace.Records, error) {
	addr, ok := workload.IngestedDigest(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q is not an ingested trace name", ErrNotFound, name)
	}
	m, ok := r.Get(addr)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, addr)
	}
	if cols, err := trace.MapColumnar(r.colsPath(addr)); err == nil && cols.Len() == m.Records {
		return cols.Prefix(n), nil
	}
	recs, err := r.Records(addr, n)
	if err != nil {
		return nil, err
	}
	return trace.RecSlice(recs), nil
}

// ColumnarInfo describes an entry's columnar sidecar for inspection
// tooling: whether the file exists, whether its size is consistent with
// the manifest's record count, and the per-plane byte extents.
type ColumnarInfo struct {
	Present bool  `json:"present"`
	Valid   bool  `json:"valid"`
	Bytes   int64 `json:"bytes"`
	// Plane sizes in bytes (fixed-width: 8/8/2/1 per record).
	PCBytes     int64 `json:"pc_bytes"`
	AddrBytes   int64 `json:"addr_bytes"`
	NonMemBytes int64 `json:"nonmem_bytes"`
	KindBytes   int64 `json:"kind_bytes"`
}

// Columnar reports the state of the entry's columnar sidecar.
func (r *Registry) Columnar(addr string) (ColumnarInfo, error) {
	m, ok := r.Get(addr)
	if !ok {
		return ColumnarInfo{}, fmt.Errorf("%w: %s", ErrNotFound, addr)
	}
	st, err := os.Stat(r.colsPath(addr))
	if err != nil {
		return ColumnarInfo{}, nil //nolint:nilerr // absent sidecar is a valid state, not an error
	}
	n := int64(m.Records)
	return ColumnarInfo{
		Present:     true,
		Valid:       st.Size() == trace.ColumnarSize(m.Records),
		Bytes:       st.Size(),
		PCBytes:     8 * n,
		AddrBytes:   8 * n,
		NonMemBytes: 2 * n,
		KindBytes:   n,
	}, nil
}

// BuildColumnar backfills the entry's columnar sidecar from its GZTR
// stream — the migration path for entries ingested before the columnar
// format existed. It reports whether a sidecar was written; entries whose
// sidecar is already present and size-consistent are left untouched.
func (r *Registry) BuildColumnar(addr string) (bool, error) {
	info, err := r.Columnar(addr)
	if err != nil {
		return false, err
	}
	if info.Present && info.Valid {
		return false, nil
	}
	recs, err := r.Records(addr, 0)
	if err != nil {
		return false, err
	}
	if err := engine.WriteFileAtomic(r.colsPath(addr), trace.EncodeColumnar(recs)); err != nil {
		return false, fmt.Errorf("traceset: writing columnar slab: %w", err)
	}
	return true, nil
}
