package sim

import "repro/internal/cache"

// MergeSlices combines the results of K single-core time slices of one
// trace into the result document of one logical single-core run. It is
// pure, order-dependent arithmetic over the parts in slice order — no
// maps, no scheduling state — so a given parts slice always merges to the
// same bytes regardless of how (or how parallel) the slices executed.
//
// Counters sum. IPC is the instruction-weighted harmonic combination
// (total instructions over total cycles, with each slice's cycles
// recovered as instructions/IPC) — the IPC one core would report having
// executed all measurement windows back to back. The DRAM row-hit rate is
// request-weighted for the same reason. Empty input merges to the zero
// Result.
func MergeSlices(parts []Result) Result {
	if len(parts) == 0 {
		return Result{}
	}
	merged := Result{Cores: make([]CoreResult, 1)}
	core := &merged.Cores[0]
	var (
		cycles  float64
		rowHits float64
	)
	for i := range parts {
		p := &parts[i]
		if len(p.Cores) == 0 {
			continue
		}
		c := &p.Cores[0]
		core.Instructions += c.Instructions
		if c.IPC > 0 {
			cycles += float64(c.Instructions) / c.IPC
		}
		addStats(&core.L1D, c.L1D)
		addStats(&core.L2C, c.L2C)
		core.PrefetchesIssuedL1 += c.PrefetchesIssuedL1
		core.PrefetchesIssuedL2 += c.PrefetchesIssuedL2
		core.PrefetchesRedundant += c.PrefetchesRedundant
		core.PQDropsFull += c.PQDropsFull
		core.PQDropsDup += c.PQDropsDup

		addStats(&merged.LLC, p.LLC)
		merged.DRAMRequests += p.DRAMRequests
		rowHits += p.DRAMRowHitRate * float64(p.DRAMRequests)
	}
	if cycles > 0 {
		core.IPC = float64(core.Instructions) / cycles
	}
	if merged.DRAMRequests > 0 {
		merged.DRAMRowHitRate = rowHits / float64(merged.DRAMRequests)
	}
	return merged
}

func addStats(dst *cache.Stats, s cache.Stats) {
	dst.DemandAccesses += s.DemandAccesses
	dst.DemandHits += s.DemandHits
	dst.DemandMisses += s.DemandMisses
	dst.PrefetchFills += s.PrefetchFills
	dst.UsefulPrefetches += s.UsefulPrefetches
	dst.UselessPrefetches += s.UselessPrefetches
	dst.LatePrefetches += s.LatePrefetches
	dst.CoveredMisses += s.CoveredMisses
}
