package core

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

// collect gathers issued requests.
type collect struct{ reqs []prefetch.Request }

func (c *collect) issue(r prefetch.Request) { c.reqs = append(c.reqs, r) }

func (c *collect) lines() map[uint64]prefetch.Level {
	m := make(map[uint64]prefetch.Level)
	for _, r := range c.reqs {
		m[r.VLine] = r.Level
	}
	return m
}

// access sends one load at (page, off) with the given PC.
func access(g *Gaze, c *collect, pc uint64, page uint64, off int) {
	g.Train(prefetch.Access{
		PC:    pc,
		VAddr: page*mem.PageSize + uint64(off)*mem.LineSize,
	}, c.issue)
}

// runRegion plays a full footprint (order of offsets) on a page.
func runRegion(g *Gaze, c *collect, pc uint64, page uint64, order []int) {
	for _, off := range order {
		access(g, c, pc, page, off)
	}
}

// drainAll flushes the PB completely via idle accesses to a throwaway page.
func drainAll(g *Gaze, c *collect) {
	for i := 0; i < 64; i++ {
		access(g, c, 0x999, 0xdead00+uint64(i), 7)
	}
}

func TestOneBitPatternsFiltered(t *testing.T) {
	g := NewDefault()
	c := &collect{}
	// Touch 100 regions once each: all stay in FT, nothing learned,
	// nothing prefetched.
	for p := uint64(0); p < 100; p++ {
		access(g, c, 0x100, 0x1000+p, 5)
	}
	if got := g.InternalStats().RegionsTracked; got != 0 {
		t.Errorf("RegionsTracked = %d, want 0 (FT must filter)", got)
	}
	if len(c.reqs) != 0 {
		t.Errorf("issued %d prefetches from one-bit regions", len(c.reqs))
	}
}

func TestSecondAccessPromotesToAT(t *testing.T) {
	g := NewDefault()
	c := &collect{}
	access(g, c, 0x100, 0x1000, 5)
	access(g, c, 0x100, 0x1000, 5) // same block: still filtered
	if g.InternalStats().RegionsTracked != 0 {
		t.Error("same-block repeat promoted region")
	}
	access(g, c, 0x100, 0x1000, 9) // second distinct block
	if g.InternalStats().RegionsTracked != 1 {
		t.Error("second distinct access did not promote region to AT")
	}
}

func TestPatternLearnAndPredict(t *testing.T) {
	g := NewDefault()
	c := &collect{}
	order := []int{5, 9, 12, 20, 33}
	// Teach the pattern on one page, deactivate via eviction notify.
	runRegion(g, c, 0x100, 0x1000, order)
	g.EvictNotify(0x1000 * mem.PageSize)
	if g.InternalStats().RegionsLearned != 1 {
		t.Fatalf("RegionsLearned = %d", g.InternalStats().RegionsLearned)
	}

	// New page, same first two accesses: must hit the PHT and prefetch
	// the remembered blocks (12, 20, 33) to L1.
	c2 := &collect{}
	access(g, c2, 0x100, 0x2000, 5)
	access(g, c2, 0x100, 0x2000, 9)
	drainAll(g, c2)
	if g.InternalStats().PHTHits != 1 {
		t.Fatalf("PHTHits = %d, want 1", g.InternalStats().PHTHits)
	}
	got := c2.lines()
	for _, off := range []int{12, 20, 33} {
		want := uint64(0x2000)*mem.PageSize + uint64(off)*mem.LineSize
		if lvl, ok := got[want]; !ok || lvl != prefetch.LevelL1 {
			t.Errorf("block %d not prefetched to L1 (got %v, present=%v)", off, lvl, ok)
		}
	}
	// The two demanded blocks must not be prefetched.
	for _, off := range []int{5, 9} {
		bad := uint64(0x2000)*mem.PageSize + uint64(off)*mem.LineSize
		if _, ok := got[bad]; ok {
			t.Errorf("demanded block %d was prefetched", off)
		}
	}
}

func TestStrictMatchingRejectsPartialMatch(t *testing.T) {
	g := NewDefault()
	c := &collect{}
	runRegion(g, c, 0x100, 0x1000, []int{5, 9, 12, 20})
	g.EvictNotify(0x1000 * mem.PageSize)

	// Same trigger, different second: strict matching must NOT fire.
	c2 := &collect{}
	access(g, c2, 0x100, 0x3000, 5)
	access(g, c2, 0x100, 0x3000, 30)
	drainAll(g, c2)
	if g.InternalStats().PHTHits != 0 {
		t.Error("partial match produced a PHT hit (strict matching violated)")
	}
	for line := range c2.lines() {
		if mem.PageNum(mem.Addr(line)) == 0x3000 {
			t.Errorf("prefetch issued for unmatched region: line %#x", line)
		}
	}
}

func TestTemporalOrderDistinguishesPatterns(t *testing.T) {
	// Two patterns share footprint {5,9,...} but differ in the order of
	// the first two accesses: (5,9,...) vs (9,5,...). Gaze must keep them
	// apart — this is the paper's central claim.
	g := NewDefault()
	c := &collect{}
	runRegion(g, c, 0x100, 0x1000, []int{5, 9, 12, 20})
	g.EvictNotify(0x1000 * mem.PageSize)
	runRegion(g, c, 0x100, 0x1001, []int{9, 5, 40, 50})
	g.EvictNotify(0x1001 * mem.PageSize)

	// Replay order (9,5): must predict {40,50}, not {12,20}.
	c2 := &collect{}
	access(g, c2, 0x100, 0x4000, 9)
	access(g, c2, 0x100, 0x4000, 5)
	drainAll(g, c2)
	got := c2.lines()
	base := uint64(0x4000) * mem.PageSize
	for _, off := range []int{40, 50} {
		if _, ok := got[base+uint64(off)*mem.LineSize]; !ok {
			t.Errorf("order-matched block %d not prefetched", off)
		}
	}
	for _, off := range []int{12, 20} {
		if _, ok := got[base+uint64(off)*mem.LineSize]; ok {
			t.Errorf("wrong-order block %d prefetched", off)
		}
	}
}

// teachDense saturates the dense counter by streaming full regions.
func teachDense(g *Gaze, c *collect, pc uint64, firstPage uint64, n int) {
	for p := 0; p < n; p++ {
		page := firstPage + uint64(p)
		runRegion(g, c, pc, page, sequentialOrderTest(0, 63))
		g.EvictNotify(page * mem.PageSize)
	}
}

func sequentialOrderTest(a, b int) []int {
	out := make([]int, 0, b-a+1)
	for i := a; i <= b; i++ {
		out = append(out, i)
	}
	return out
}

func TestStreamingTwoStageAggressiveness(t *testing.T) {
	g := NewDefault()
	c := &collect{}
	teachDense(g, c, 0x200, 0x10000, 10)
	if g.InternalStats().DenseLearned < 8 {
		t.Fatalf("DenseLearned = %d", g.InternalStats().DenseLearned)
	}

	// A fresh streaming start must now trigger stage-1 full confidence:
	// head blocks to L1, the rest to L2.
	fullBefore := g.InternalStats().Stage1Full
	c2 := &collect{}
	access(g, c2, 0x200, 0x20000, 0)
	access(g, c2, 0x200, 0x20000, 1)
	for i := 0; i < 40; i++ { // drain PB
		access(g, c2, 0x999, 0xeeee00+uint64(i), 7)
	}
	got := c2.lines()
	base := uint64(0x20000) * mem.PageSize
	l1, l2 := 0, 0
	for off := 0; off < 64; off++ {
		lvl, ok := got[base+uint64(off)*mem.LineSize]
		if !ok {
			continue
		}
		if lvl == prefetch.LevelL1 {
			l1++
			if off >= 16 {
				t.Errorf("block %d beyond the first quarter went to L1", off)
			}
		} else {
			l2++
			if off < 16 {
				t.Errorf("head block %d went to L2", off)
			}
		}
	}
	if l1 == 0 || l2 == 0 {
		t.Errorf("stage 1 split missing: l1=%d l2=%d", l1, l2)
	}
	if got := g.InternalStats().Stage1Full - fullBefore; got != 1 {
		t.Errorf("Stage1Full delta = %d, want 1", got)
	}
}

func TestStreamingNoConfidenceNoPrefetch(t *testing.T) {
	g := NewDefault()
	c := &collect{}
	// Cold DC, unknown PC: a (0,1) start must not prefetch.
	access(g, c, 0x300, 0x5000, 0)
	access(g, c, 0x300, 0x5000, 1)
	drainAll(g, c)
	for line := range c.lines() {
		if mem.PageNum(mem.Addr(line)) == 0x5000 {
			t.Errorf("prefetch issued without streaming confidence: %#x", line)
		}
	}
	if g.InternalStats().Stage1None != 1 {
		t.Errorf("Stage1None = %d", g.InternalStats().Stage1None)
	}
}

func TestDenseCounterFastDecay(t *testing.T) {
	dc := newDenseCounter()
	for i := 0; i < 10; i++ {
		dc.increment()
	}
	if !dc.full() {
		t.Fatal("DC not saturated after increments")
	}
	dc.decrement() // 7 -> 3
	if dc.v != 3 {
		t.Errorf("after fast decay v = %d, want 3", dc.v)
	}
	dc.decrement() // 3 -> 1 (halving at >2)
	if dc.v != 1 {
		t.Errorf("v = %d, want 1", dc.v)
	}
	dc.decrement() // 1 -> 0 (slow)
	dc.decrement() // floor
	if dc.v != 0 {
		t.Errorf("v = %d, want 0", dc.v)
	}
}

func TestStage2StridePromotion(t *testing.T) {
	g := NewDefault()
	c := &collect{}
	// Teach moderate confidence (DC in (2, 7)): three dense regions then
	// verify half-confidence path arms stride_flag and stage 2 promotes.
	teachDense(g, c, 0x400, 0x30000, 4)
	if !g.dc.halfConfident() || g.dc.full() {
		// Ensure we are exactly in the half-confident band for this test.
		g.dc.v = 4
	}
	g.dpct = newDPCT(8) // forget dense PCs so stage 1 uses DC only

	c2 := &collect{}
	page := uint64(0x40000)
	access(g, c2, 0x401, page, 0) // unseen PC
	access(g, c2, 0x401, page, 1)
	// Continue streaming: strides 1,1 at offset 2 onwards trigger stage 2.
	access(g, c2, 0x401, page, 2)
	access(g, c2, 0x401, page, 3)
	drainAll(g, c2)
	if g.InternalStats().Stage2Promotions == 0 {
		t.Fatal("no stage-2 promotions")
	}
	// Promotion targets skip 2 blocks: access at 3 promotes 6,7,8,9 to L1.
	got := c2.lines()
	base := page * mem.PageSize
	promoted := 0
	for _, off := range []int{6, 7, 8, 9} {
		if lvl, ok := got[base+uint64(off)*mem.LineSize]; ok && lvl == prefetch.LevelL1 {
			promoted++
		}
	}
	if promoted == 0 {
		t.Error("stage-2 promoted no blocks to L1")
	}
}

func TestStrideBackupOnMatchFailure(t *testing.T) {
	g := NewDefault()
	c := &collect{}
	// Unknown pattern (PHT miss) with a steady stride-2 walk: backup must
	// kick in after two matching strides.
	page := uint64(0x50000)
	for _, off := range []int{10, 12, 14, 16} {
		access(g, c, 0x500, page, off)
	}
	drainAll(g, c)
	if g.InternalStats().BackupActivations == 0 {
		t.Fatal("backup never armed")
	}
	if g.InternalStats().Stage2Promotions == 0 {
		t.Fatal("backup stride prefetching never fired")
	}
	got := c.lines()
	base := page * mem.PageSize
	hits := 0
	for _, off := range []int{20, 22, 24, 26} { // from access@14: skip 2*2, promote 4*2
		if _, ok := got[base+uint64(off)*mem.LineSize]; ok {
			hits++
		}
	}
	if hits == 0 {
		t.Error("no stride-backup prefetches issued")
	}
}

func TestDenseRegionNotStoredInPHT(t *testing.T) {
	g := NewDefault()
	c := &collect{}
	teachDense(g, c, 0x600, 0x60000, 3)
	if g.pht.Len() != 0 {
		t.Errorf("streaming regions leaked into PHT: %d entries", g.pht.Len())
	}
}

func TestLearnOnATEviction(t *testing.T) {
	g := NewDefault()
	c := &collect{}
	// Activate far more regions than the AT holds (64): LRU evictions
	// must trigger learning without explicit cache-eviction signals.
	for p := uint64(0); p < 200; p++ {
		runRegion(g, c, 0x700, 0x70000+p, []int{3, 7, 11})
	}
	if g.InternalStats().RegionsLearned == 0 {
		t.Error("AT eviction produced no learning")
	}
}

func TestVGazeRegionSizes(t *testing.T) {
	for _, size := range []int{512, 1024, 2048, 4096, 8192, 65536} {
		g := NewVGaze(size)
		c := &collect{}
		blocks := size / mem.LineSize
		// Stream one full region and deactivate; then check a prediction
		// happens on the next region with matching starts.
		base := uint64(0x3_0000_0000)
		for b := 0; b < blocks; b++ {
			g.Train(prefetch.Access{PC: 0x800, VAddr: base + uint64(b)*mem.LineSize}, c.issue)
		}
		g.EvictNotify(base)
		if g.InternalStats().RegionsLearned == 0 && blocks > 1 {
			t.Errorf("size %d: nothing learned", size)
		}
	}
}

func TestVGazeInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for invalid region size")
		}
	}()
	NewVGaze(100)
}

func TestGazeNMatchLengths(t *testing.T) {
	// With MatchAccesses=3, a two-access prefix must not fire; all three
	// must align.
	g := NewGazeN(3)
	c := &collect{}
	runRegion(g, c, 0x900, 0x8000, []int{4, 8, 15, 16, 23})
	g.EvictNotify(0x8000 * mem.PageSize)

	c2 := &collect{}
	access(g, c2, 0x900, 0x8100, 4)
	access(g, c2, 0x900, 0x8100, 8)
	drainAll(g, c2)
	if g.InternalStats().PHTHits != 0 {
		t.Error("3-access variant fired after 2 accesses")
	}
	access(g, c2, 0x900, 0x8100, 15)
	drainAll(g, c2)
	if g.InternalStats().PHTHits != 1 {
		t.Error("3-access variant did not fire after 3 matching accesses")
	}
}

func TestOffsetOnlyIgnoresSecond(t *testing.T) {
	g := NewOffsetOnly()
	c := &collect{}
	runRegion(g, c, 0xa00, 0x9000, []int{5, 9, 12})
	g.EvictNotify(0x9000 * mem.PageSize)

	// Different second access, same trigger: Offset-only must still fire.
	c2 := &collect{}
	access(g, c2, 0xa00, 0x9100, 5)
	drainAll(g, c2)
	if g.InternalStats().PHTHits != 1 {
		t.Errorf("PHTHits = %d, want 1 (offset-only fires on trigger)", g.InternalStats().PHTHits)
	}
}

func TestStreamingOnlyVariantsIgnoreNormalRegions(t *testing.T) {
	for _, g := range []*Gaze{NewPHT4SS(), NewSM4SS()} {
		c := &collect{}
		runRegion(g, c, 0xb00, 0xa000, []int{5, 9, 12})
		g.EvictNotify(0xa000 * mem.PageSize)
		c2 := &collect{}
		access(g, c2, 0xb00, 0xa100, 5)
		access(g, c2, 0xb00, 0xa100, 9)
		drainAll(g, c2)
		for line := range c2.lines() {
			if mem.PageNum(mem.Addr(line)) == 0xa100 {
				t.Errorf("%s prefetched a non-streaming region", VariantName(g))
			}
		}
	}
}

func TestVariantNames(t *testing.T) {
	cases := map[string]*Gaze{
		"Gaze":     NewDefault(),
		"Gaze-PHT": NewGazePHT(),
		"Offset":   NewOffsetOnly(),
		"PHT4SS":   NewPHT4SS(),
		"SM4SS":    NewSM4SS(),
	}
	for want, g := range cases {
		if got := VariantName(g); got != want {
			t.Errorf("VariantName = %q, want %q", got, want)
		}
	}
	if NewVGaze(8192).Name() != "vGaze-8KB" {
		t.Errorf("vGaze name = %q", NewVGaze(8192).Name())
	}
}

func TestStorageMatchesTableI(t *testing.T) {
	g := NewDefault()
	items := g.StorageBreakdown()
	wantBytes := map[string]float64{
		"FT":   456,
		"AT":   1128,
		"PHT":  2304,
		"DPCT": 15,
		"PB":   668,
	}
	for _, item := range items {
		if want, ok := wantBytes[item.Structure]; ok {
			if item.Bytes() != want {
				t.Errorf("%s storage = %.0fB, want %.0fB", item.Structure, item.Bytes(), want)
			}
		}
	}
	total := g.TotalStorageBytes()
	// Table I: 4.46KB.
	if total < 4500 || total > 4650 {
		t.Errorf("total storage = %.0fB, want ~4571B (4.46KB)", total)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.RegionSize = 100 },
		func(c *Config) { c.MatchAccesses = 0 },
		func(c *Config) { c.MatchAccesses = 5 },
		func(c *Config) { c.FTEntries = 0 },
		func(c *Config) { c.PHTEntries = 255 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestDPCTEvictsLRU(t *testing.T) {
	d := newDPCT(2)
	d.record(1)
	d.record(2)
	d.contains(1) // refresh 1
	d.record(3)   // evicts 2
	if !d.contains(1) || d.contains(2) || !d.contains(3) {
		t.Error("DPCT LRU eviction wrong")
	}
}

func TestBitvec(t *testing.T) {
	b := newBitvec(64)
	b.set(0)
	b.set(63)
	if !b.get(0) || !b.get(63) || b.get(5) {
		t.Error("bitvec get/set wrong")
	}
	if b.popcount() != 2 {
		t.Errorf("popcount = %d", b.popcount())
	}
	var seen []int
	b.forEach(64, func(i int) { seen = append(seen, i) })
	if len(seen) != 2 || seen[0] != 0 || seen[1] != 63 {
		t.Errorf("forEach = %v", seen)
	}
	c := b.clone()
	c.set(5)
	if b.get(5) {
		t.Error("clone aliases original")
	}
	full := newBitvec(8)
	for i := 0; i < 8; i++ {
		full.set(i)
	}
	if !full.full(8) {
		t.Error("full(8) false for saturated vector")
	}
}

func TestPrefetchBufferMergePromotes(t *testing.T) {
	pb := newPrefetchBuffer(4, 64)
	pb.merge(10, 3, pbL2)
	pb.merge(10, 3, pbL1) // promote
	pb.merge(10, 5, pbL1)
	pb.merge(10, 5, pbL2) // must NOT demote
	var got []prefetch.Request
	pb.drain(16, 12, func(r prefetch.Request) { got = append(got, r) })
	if len(got) != 2 {
		t.Fatalf("drained %d requests, want 2", len(got))
	}
	for _, r := range got {
		if r.Level != prefetch.LevelL1 {
			t.Errorf("request %+v not promoted to L1", r)
		}
	}
}

func TestPrefetchBufferFIFOCapacity(t *testing.T) {
	pb := newPrefetchBuffer(2, 64)
	pb.merge(1, 0, pbL1)
	pb.merge(2, 0, pbL1)
	pb.merge(3, 0, pbL1) // evicts region 1
	var got []prefetch.Request
	pb.drain(16, 12, func(r prefetch.Request) { got = append(got, r) })
	regions := map[uint64]bool{}
	for _, r := range got {
		regions[r.VLine>>12] = true
	}
	if regions[1] || !regions[2] || !regions[3] {
		t.Errorf("FIFO eviction wrong: %v", regions)
	}
}

func TestPrefetchBufferDrainBound(t *testing.T) {
	pb := newPrefetchBuffer(4, 64)
	for off := 0; off < 20; off++ {
		pb.merge(1, off, pbL1)
	}
	n := 0
	pb.drain(5, 12, func(prefetch.Request) { n++ })
	if n != 5 {
		t.Errorf("drained %d, want 5", n)
	}
	pb.drain(100, 12, func(prefetch.Request) { n++ })
	if n != 20 {
		t.Errorf("total drained %d, want 20", n)
	}
	if pb.len() != 0 {
		t.Errorf("pb.len = %d after full drain", pb.len())
	}
}
