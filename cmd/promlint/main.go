// Command promlint validates a Prometheus text-exposition document read
// from stdin — the same parser the server's tests use — and optionally
// asserts that specific metric families are declared. CI pipes a live
// /metrics scrape through it:
//
//	curl -s localhost:8321/metrics | go run ./cmd/promlint \
//	    -require gaze_http_request_duration_seconds,gaze_engine_phase_duration_seconds
//
// Exit status is non-zero on a malformed document or a missing family.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/obs"
)

func main() {
	require := flag.String("require", "", "comma-separated metric families that must be declared with a # TYPE line")
	flag.Parse()

	text, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promlint: reading stdin: %v\n", err)
		os.Exit(1)
	}
	doc, err := obs.LintProm(string(text))
	if err != nil {
		fmt.Fprintf(os.Stderr, "promlint: %v\n", err)
		os.Exit(1)
	}

	missing := 0
	for _, fam := range strings.Split(*require, ",") {
		fam = strings.TrimSpace(fam)
		if fam == "" {
			continue
		}
		if typ, ok := doc.Types[fam]; ok {
			fmt.Printf("promlint: %s: %s\n", fam, typ)
		} else {
			fmt.Fprintf(os.Stderr, "promlint: required family %s not declared\n", fam)
			missing++
		}
	}
	if missing > 0 {
		os.Exit(1)
	}
	fmt.Printf("promlint: ok (%d families, %d samples)\n", len(doc.Types), len(doc.Samples))
}
