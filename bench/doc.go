// Package bench holds the hot-path microbenchmark suite: the simulation
// steady-state step, the prefetch queue, trace generation vs. the
// materialized-trace cache, and the end-to-end sweep-repeat scenario the
// experiment engine optimizes for. CI runs it on every push, writes the
// parsed results to BENCH.json (cmd/benchjson) and fails if a pinned
// zero-allocation benchmark allocates; see DESIGN.md's hot-path section
// for what each benchmark guards.
package bench
