package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/prefetch"
	"repro/internal/trace"
)

// CoreSpec binds one core's trace and prefetchers.
type CoreSpec struct {
	// Trace supplies the core's instruction stream. It must not return
	// io.EOF before the instruction budget is reached — wrap finite traces
	// in trace.Looping (the paper replays traces that end early).
	Trace trace.Reader
	// L1Prefetcher observes L1D loads (nil = no prefetching).
	L1Prefetcher prefetch.Prefetcher
	// L2Prefetcher optionally observes L2C demand accesses (Fig 13
	// multi-level configurations); its requests fill the L2C.
	L2Prefetcher prefetch.Prefetcher
}

type coreState struct {
	idx  int
	core *cpu.Core
	l1   *cache.Cache
	l2   *cache.Cache
	tr   *mem.Translator

	pf  prefetch.Prefetcher
	pq  *prefetch.Queue
	pf2 prefetch.Prefetcher
	pq2 *prefetch.Queue

	// sink/issue (and the pq2 pair) are bound once at construction: the
	// hot loop re-points sink.Now at the current cycle and passes the
	// prebuilt IssueFunc, so a Train call allocates nothing.
	sink   prefetch.QueueSink
	issue  prefetch.IssueFunc
	sink2  prefetch.QueueSink
	issue2 prefetch.IssueFunc

	reader trace.Reader
	// loop holds reader's concrete type when it is a *trace.Looping (the
	// engine's standard supply): calling through the concrete pointer
	// lets the compiler inline the whole record fetch into step.
	loop *trace.Looping

	// training is false for the no-prefetch baseline (both prefetchers
	// are Nil): its Train calls are no-ops, so the hot loop skips
	// building the Access record entirely.
	training bool

	// nextFetch caches core.NextFetch() for the scheduler heap; it is
	// only maintained while the heap is engaged (cores > schedHeapMin).
	nextFetch float64

	measuring bool
	done      bool

	issuedL1  uint64
	issuedL2  uint64
	redundant uint64

	// telNext is the next telemetry boundary in measured instructions;
	// telemetryDisabled when collection is off, so the Run loop's only
	// per-step telemetry cost is one always-false compare. Samples and
	// the interval baseline live here; intro is the prefetcher's
	// introspection seam, bound once at construction like the eviction
	// and bandwidth hooks.
	telNext    uint64
	telSamples []IntervalSample
	telPrev    telSnapshot
	intro      prefetch.Introspector

	snapshot CoreResult
}

// System holds a fully assembled simulation. Construct with New, attach
// core specs, then call Run.
type System struct {
	cfg   Config
	cores []*coreState
	llc   *cache.Cache
	dram  *dram.DRAM

	// sched is a min-heap of cores ordered by (nextFetch, idx), engaged
	// above schedHeapMin cores; below that a linear scan is cheaper.
	sched []*coreState
}

// New builds a system for the given specs. len(specs) must equal
// cfg.Cores.
func New(cfg Config, specs []CoreSpec) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(specs) != cfg.Cores {
		return nil, fmt.Errorf("sim: %d core specs for %d cores", len(specs), cfg.Cores)
	}
	s := &System{
		cfg:  cfg,
		llc:  cache.New(cfg.LLC),
		dram: dram.New(cfg.DRAM),
	}
	for i, spec := range specs {
		if spec.Trace == nil {
			return nil, fmt.Errorf("sim: core %d has no trace", i)
		}
		pf := spec.L1Prefetcher
		if pf == nil {
			pf = prefetch.Nil{}
		}
		c := &coreState{
			idx:    i,
			core:   cpu.New(cfg.CPU),
			l1:     cache.New(cfg.L1D),
			l2:     cache.New(cfg.L2C),
			tr:     mem.NewTranslator(cfg.TranslatorSalt + uint64(i)),
			pf:     pf,
			pq:     prefetch.NewQueue(cfg.PQCapacity, cfg.PQDrainRate),
			reader: spec.Trace,
		}
		c.loop, _ = spec.Trace.(*trace.Looping)
		_, pfIsNil := pf.(prefetch.Nil)
		c.training = !pfIsNil || spec.L2Prefetcher != nil
		c.sink.Q = c.pq
		c.issue = c.sink.Issue
		if spec.L2Prefetcher != nil {
			c.pf2 = spec.L2Prefetcher
			c.pq2 = prefetch.NewQueue(cfg.PQCapacity, cfg.PQDrainRate)
			c.sink2.Q = c.pq2
			c.issue2 = c.sink2.Issue
		}
		// Region-deactivation signal: L1 evictions reach the L1 prefetcher.
		thePF := pf
		if eo, ok := pf.(prefetch.EvictObserver); ok {
			c.l1.SetEvictFunc(func(vline uint64, wasPrefetch bool) {
				eo.EvictDetail(vline, wasPrefetch)
				thePF.EvictNotify(vline)
			})
		} else {
			c.l1.SetEvictFunc(func(vline uint64, _ bool) { thePF.EvictNotify(vline) })
		}
		// Bandwidth-aware prefetchers read DRAM pressure.
		if ba, ok := pf.(prefetch.BandwidthAware); ok {
			core := c
			ba.SetBandwidthProbe(func() float64 { return s.dram.Pressure(core.core.Now()) })
		}
		c.telNext = telemetryDisabled
		if cfg.TelemetryInterval > 0 {
			c.telNext = cfg.TelemetryInterval
			c.telSamples = make([]IntervalSample, 0, telemetryPrealloc(cfg))
			c.intro, _ = pf.(prefetch.Introspector)
		}
		s.cores = append(s.cores, c)
	}
	return s, nil
}

// Run executes the simulation until every core has completed its measured
// instruction budget, and returns the aggregated result.
func (s *System) Run() Result {
	warmupsPending := len(s.cores)
	if s.cfg.WarmupInstructions == 0 {
		for _, c := range s.cores {
			c.measuring = true
		}
		warmupsPending = 0
		s.resetSharedStats()
	}
	s.initSched()
	running := len(s.cores)
	for running > 0 {
		c := s.nextCore()
		s.step(c)
		s.reschedule()

		if !c.measuring && c.core.Instructions() >= s.cfg.WarmupInstructions {
			c.measuring = true
			c.core.BeginMeasurement()
			c.l1.ResetStats()
			c.l2.ResetStats()
			c.issuedL1, c.issuedL2, c.redundant = 0, 0, 0
			c.pq.Enqueued, c.pq.DropsFull, c.pq.DropsDup = 0, 0, 0
			if c.pq2 != nil {
				c.pq2.Enqueued, c.pq2.DropsFull, c.pq2.DropsDup = 0, 0, 0
			}
			warmupsPending--
			if warmupsPending == 0 {
				s.resetSharedStats()
			}
		}
		if c.measuring && !c.done && c.core.MeasuredInstructions() >= s.cfg.SimInstructions {
			c.done = true
			running--
			c.l1.FlushStats()
			c.l2.FlushStats()
			c.snapshot = CoreResult{
				IPC:                 c.core.IPC(),
				Instructions:        c.core.MeasuredInstructions(),
				L1D:                 c.l1.Stats,
				L2C:                 c.l2.Stats,
				PrefetchesIssuedL1:  c.issuedL1,
				PrefetchesIssuedL2:  c.issuedL2,
				PrefetchesRedundant: c.redundant,
				PQDropsFull:         c.pq.DropsFull,
				PQDropsDup:          c.pq.DropsDup,
			}
			if c.telNext != telemetryDisabled {
				// Final (possibly partial) interval, taken after FlushStats
				// so the end-of-run useless sweep lands in the last row and
				// the rows sum to the snapshot.
				c.telNext = telemetryDisabled
				s.telemetryRecord(c)
			}
		} else if c.measuring && c.core.MeasuredInstructions() >= c.telNext {
			// Telemetry boundary: one row per step even when a long record
			// crosses several boundaries, then re-arm at the next boundary
			// beyond the current position.
			s.telemetryRecord(c)
			m := c.core.MeasuredInstructions()
			c.telNext += s.cfg.TelemetryInterval * ((m-c.telNext)/s.cfg.TelemetryInterval + 1)
		}
	}
	res := Result{LLC: s.llc.Stats}
	for _, c := range s.cores {
		res.Cores = append(res.Cores, c.snapshot)
	}
	res.DRAMRequests = s.dram.Stats.Requests
	if s.dram.Stats.Requests > 0 {
		res.DRAMRowHitRate = float64(s.dram.Stats.RowHits) / float64(s.dram.Stats.Requests)
	}
	return res
}

func (s *System) resetSharedStats() {
	s.llc.ResetStats()
	s.dram.ResetStats()
	// Cores that warmed up (and possibly sampled) before this reset hold
	// shared-counter baselines that no longer exist; rebase them so the
	// next interval's deltas stay non-negative.
	for _, c := range s.cores {
		c.telPrev.llc = cache.Stats{}
		c.telPrev.dram = dram.Stats{}
	}
}

// schedHeapMin is the core count above which nextCore switches from a
// linear scan to the index min-heap: for the common 1-4 core systems the
// scan's handful of compares beats heap maintenance, while the paper's
// 8-core mixes (and the 16-core API limit) get O(log n) scheduling.
const schedHeapMin = 4

// nextCore picks the core with the earliest next fetch cycle — the global
// time interleaving that makes shared LLC/DRAM contention meaningful.
// Ties break toward the lowest core index in both strategies, so the heap
// and the scan schedule identically.
func (s *System) nextCore() *coreState {
	if s.sched != nil {
		return s.sched[0]
	}
	best := s.cores[0]
	if len(s.cores) == 1 {
		return best
	}
	bt := best.core.NextFetch()
	for _, c := range s.cores[1:] {
		if t := c.core.NextFetch(); t < bt {
			best, bt = c, t
		}
	}
	return best
}

// initSched builds the scheduler heap when the core count warrants it.
// Stepping one core never changes another core's NextFetch (cores couple
// only through shared-resource latencies observed at their own steps), so
// cached keys stay valid until the owning core is stepped again.
func (s *System) initSched() {
	if len(s.cores) <= schedHeapMin {
		return
	}
	s.sched = make([]*coreState, len(s.cores))
	for i, c := range s.cores {
		c.nextFetch = c.core.NextFetch()
		s.sched[i] = c
	}
	for i := len(s.sched)/2 - 1; i >= 0; i-- {
		s.siftDown(i)
	}
}

// reschedule re-keys the just-stepped core (always the heap root) and
// restores the heap order.
func (s *System) reschedule() {
	if s.sched == nil {
		return
	}
	s.sched[0].nextFetch = s.sched[0].core.NextFetch()
	s.siftDown(0)
}

// schedLess orders cores by (nextFetch, idx); the index tiebreak makes
// the heap deterministic and scan-equivalent.
func schedLess(a, b *coreState) bool {
	return a.nextFetch < b.nextFetch || (a.nextFetch == b.nextFetch && a.idx < b.idx)
}

func (s *System) siftDown(i int) {
	h := s.sched
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && schedLess(h[l], h[min]) {
			min = l
		}
		if r < n && schedLess(h[r], h[min]) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// step advances one core by one trace record (its non-memory run plus the
// memory access). It is the simulation's steady-state hot path and must
// stay allocation-free: the address is translated once and shared by the
// demand access and both prefetcher Train calls, and requests flow
// through the per-core sinks bound at construction instead of per-record
// closures.
func (s *System) step(c *coreState) {
	var (
		rec trace.Record
		err error
	)
	if c.loop != nil {
		rec, err = c.loop.Next()
	} else {
		rec, err = c.reader.Next()
	}
	if err != nil {
		// Traces are expected to be endless (Looping); treat exhaustion as
		// pure non-memory work so the run still terminates.
		c.core.ExecuteRun(64)
		return
	}
	c.core.ExecuteRun(int(rec.NonMem))

	t := c.core.NextFetch()
	if c.pq.Len() > 0 || c.pq2 != nil {
		s.drainPQ(c, t)
	}

	paddr := c.tr.Translate(mem.Addr(rec.Addr))
	lat, l1hit := s.demandAccess(c, paddr, rec.Addr, t)
	// t is this instruction's fetch cycle (nothing touched the core since
	// it was read), so skip recomputing it inside Execute.
	c.core.ExecuteFetched(t, lat)

	if rec.Kind == trace.Load && c.training {
		missLat := 0.0
		if !l1hit {
			missLat = lat
		}
		acc := prefetch.Access{
			PC:          rec.PC,
			VAddr:       rec.Addr,
			PAddr:       uint64(paddr),
			Cycle:       t,
			L1Hit:       l1hit,
			MissLatency: missLat,
		}
		c.sink.Now = t
		c.pf.Train(acc, c.issue)

		if c.pf2 != nil && !l1hit {
			// The L2 prefetcher sees the access stream that reaches L2C
			// (acc.L1Hit is false on this path).
			c.sink2.Now = t
			c.pf2.Train(acc, c.issue2)
		}
	}
}

// Advance runs n scheduler iterations (one trace record or idle run each)
// without the warm-up and termination bookkeeping of Run. It exists for
// benchmarks and hot-path allocation tests; Run is the real entry point.
func (s *System) Advance(n int) {
	if s.sched == nil && len(s.cores) > schedHeapMin {
		s.initSched()
	}
	for i := 0; i < n; i++ {
		s.step(s.nextCore())
		s.reschedule()
	}
}

// drainPQ issues every queued prefetch whose pacing slot arrived by cycle
// now, for both the L1 and (when present) L2 prefetch queues.
func (s *System) drainPQ(c *coreState, now float64) {
	for {
		req, at, ok := c.pq.PopReady(now)
		if !ok {
			break
		}
		s.issuePrefetch(c, req, at)
	}
	if c.pq2 == nil {
		return
	}
	for {
		req, at, ok := c.pq2.PopReady(now)
		if !ok {
			break
		}
		// L2-attached prefetchers fill the L2C regardless of request level.
		req.Level = prefetch.LevelL2
		s.issuePrefetch(c, req, at)
	}
}

// demandAccess walks the hierarchy for a demand access issued at cycle t
// and returns (latency, l1Hit). The caller supplies the translation
// (paddr = Translate(vaddr)) so one lookup serves the demand path and the
// prefetcher training structs alike.
func (s *System) demandAccess(c *coreState, paddr mem.Addr, vaddr uint64, t float64) (float64, bool) {
	vline := vaddr &^ (mem.LineSize - 1)

	res := c.l1.Access(paddr, t)
	if res.Hit {
		lat := s.cfg.L1D.HitLatency
		if res.ReadyAt > t {
			lat += res.ReadyAt - t
		}
		return lat, true
	}

	// L1 miss: occupy an L1 MSHR for the duration.
	start, slot := c.l1.MSHRReserve(t)
	t2 := start + s.cfg.L1D.HitLatency

	var ready float64
	res2 := c.l2.Access(paddr, t2)
	if res2.Hit {
		ready = t2 + s.cfg.L2C.HitLatency
		if res2.ReadyAt > ready {
			ready = res2.ReadyAt
		}
	} else {
		t3 := t2 + s.cfg.L2C.HitLatency
		res3 := s.llc.Access(paddr, t3)
		if res3.Hit {
			ready = t3 + s.cfg.LLC.HitLatency
			if res3.ReadyAt > ready {
				ready = res3.ReadyAt
			}
		} else {
			arr := t3 + s.cfg.LLC.HitLatency
			st, llcSlot := s.llc.MSHRReserve(arr)
			finish := s.dram.Access(paddr, st)
			s.llc.MSHRComplete(llcSlot, finish)
			ready = finish
			s.llc.Fill(paddr, ready, cache.FillOpts{VLine: vline})
		}
		c.l2.Fill(paddr, ready, cache.FillOpts{VLine: vline})
	}
	c.l1.MSHRComplete(slot, ready)
	c.l1.Fill(paddr, ready, cache.FillOpts{VLine: vline})
	return ready - t, false
}

// issuePrefetch injects one prefetch request into the memory system at
// cycle t.
func (s *System) issuePrefetch(c *coreState, req prefetch.Request, t float64) {
	paddr := c.tr.Translate(mem.Addr(req.VLine))

	// Redundancy check at the target level: spatial prefetchers avoid
	// re-fetching resident blocks (the check vBerti lacks, §IV-B3).
	if req.Level == prefetch.LevelL1 {
		if c.l1.Probe(paddr) {
			c.redundant++
			return
		}
	} else if c.l2.Probe(paddr) {
		c.redundant++
		return
	}

	// Locate the data. l2Resident caches the L2 probe outcome: nothing on
	// this path fills or evicts the L2 before the fill decision below, so
	// re-probing would do identical work for the same answer.
	var ready float64
	fromDRAM := false
	l2Resident := false
	if req.Level == prefetch.LevelL1 {
		// PromotePrefetch fuses the probe, the LRU touch and the
		// prefetch-bit consumption into one set scan. An L2-resident
		// prefetched line promoted to L1 transfers its attribution: it is
		// counted once, at the L1 where it lands.
		if present, was, fd := c.l2.PromotePrefetch(paddr); present {
			l2Resident = true
			if was {
				fromDRAM = fd
			}
			ready = t + s.cfg.L1D.HitLatency + s.cfg.L2C.HitLatency
		}
	}
	switch {
	case l2Resident:
	case s.llc.ProbeTouch(paddr):
		ready = t + s.cfg.L2C.HitLatency + s.cfg.LLC.HitLatency
	default:
		arr := t + s.cfg.L2C.HitLatency + s.cfg.LLC.HitLatency
		st, llcSlot := s.llc.MSHRReserve(arr)
		finish := s.dram.Access(paddr, st)
		s.llc.MSHRComplete(llcSlot, finish)
		ready = finish
		fromDRAM = true
		s.llc.Fill(paddr, ready, cache.FillOpts{VLine: req.VLine})
	}

	if req.Level == prefetch.LevelL1 {
		// L1-destined prefetches hold an L1 MSHR while in flight,
		// throttling over-aggressive prefetchers against demand traffic.
		st, slot := c.l1.MSHRReserve(t)
		if st > ready {
			ready = st
		}
		c.l1.MSHRComplete(slot, ready)
		if !l2Resident {
			c.l2.Fill(paddr, ready, cache.FillOpts{VLine: req.VLine})
		}
		c.l1.Fill(paddr, ready, cache.FillOpts{Prefetch: true, FromDRAM: fromDRAM, VLine: req.VLine})
		c.issuedL1++
	} else {
		c.l2.Fill(paddr, ready, cache.FillOpts{Prefetch: true, FromDRAM: fromDRAM, VLine: req.VLine})
		c.issuedL2++
	}
}
