package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
)

// sleepClock records Sleep calls and returns immediately, so retry
// pacing is asserted without waiting it out.
type sleepClock struct {
	mu     sync.Mutex
	sleeps []time.Duration
}

func (c *sleepClock) Now() time.Time { return time.Unix(1_700_000_000, 0) }

func (c *sleepClock) Sleep(ctx context.Context, d time.Duration) error {
	c.mu.Lock()
	c.sleeps = append(c.sleeps, d)
	c.mu.Unlock()
	return ctx.Err()
}

func (c *sleepClock) recorded() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.sleeps...)
}

func TestClientRetriesTransientStatuses(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		attempts++
		n := attempts
		mu.Unlock()
		if n <= 2 {
			http.Error(w, `{"error":"glitch"}`, http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
		w.Write([]byte(`{"worker_id":"w1","lease_ttl_ms":15000}`)) //nolint:errcheck
	}))
	defer ts.Close()

	clock := &sleepClock{}
	c := NewClient(ts.URL, ClientOptions{Clock: clock, Retries: 4, Backoff: 100 * time.Millisecond})
	resp, err := c.Register(context.Background(), RegisterRequest{
		Concurrency: 1, Scale: tinyScale, StoreSchemaVersion: engine.StoreSchemaVersion,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.WorkerID != "w1" || resp.LeaseTTLMS != 15000 {
		t.Fatalf("resp = %+v", resp)
	}
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3 (two 500s then success)", attempts)
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond}
	got := clock.recorded()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("backoffs = %v, want %v (exponential from 100ms)", got, want)
	}
}

func TestClientDoesNotRetryContractErrors(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		attempts++
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		w.Write([]byte(`{"error":"incompatible scale"}`)) //nolint:errcheck
	}))
	defer ts.Close()

	clock := &sleepClock{}
	c := NewClient(ts.URL, ClientOptions{Clock: clock})
	_, err := c.Register(context.Background(), RegisterRequest{})
	if !IsStatus(err, http.StatusConflict) {
		t.Fatalf("err = %v, want a 409 StatusError", err)
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Message != "incompatible scale" {
		t.Errorf("err = %v, want the parsed error body", err)
	}
	if attempts != 1 {
		t.Errorf("attempts = %d, want 1 (4xx is a contract answer, not a glitch)", attempts)
	}
	if len(clock.recorded()) != 0 {
		t.Errorf("slept %v before a non-retryable answer", clock.recorded())
	}
}

func TestClientGivesUpAfterRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"down"}`, http.StatusBadGateway)
	}))
	defer ts.Close()

	clock := &sleepClock{}
	c := NewClient(ts.URL, ClientOptions{Clock: clock, Retries: 2, Backoff: time.Millisecond})
	err := c.Heartbeat(context.Background(), "w1", HeartbeatRequest{})
	if !IsStatus(err, http.StatusBadGateway) {
		t.Fatalf("err = %v, want the wrapped 502 after exhausting retries", err)
	}
	if n := len(clock.recorded()); n != 2 {
		t.Errorf("slept %d times, want 2 (Retries)", n)
	}
}

func TestBackoffCapsAtFiveSeconds(t *testing.T) {
	c := NewClient("http://x", ClientOptions{Backoff: 100 * time.Millisecond})
	if d := c.backoffFor(0); d != 100*time.Millisecond {
		t.Errorf("backoffFor(0) = %v", d)
	}
	for _, attempt := range []int{6, 20, 63, 64, 100} {
		if d := c.backoffFor(attempt); d != 5*time.Second {
			t.Errorf("backoffFor(%d) = %v, want the 5s cap", attempt, d)
		}
	}
}
