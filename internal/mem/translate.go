package mem

// Translator maps virtual pages to physical frames. The simulator feeds
// virtual addresses (what the L1D sees) to L1 prefetchers and physical
// addresses below. The mapping scatters adjacent virtual pages to unrelated
// frames, so prefetchers working in the physical address space cannot
// exploit cross-page virtual contiguity — the property that makes vBerti's
// and vGaze's virtual-address operation meaningful (§IV-B8).
//
// The mapping is a keyed Feistel permutation over a 36-bit page-number
// space (256TB of address space), so it is bijective: two distinct virtual
// pages can never collide on one physical frame, just like a real page
// table.
type Translator struct {
	keys [4]uint32

	// tlbTag/tlbPFN form a direct-mapped memo of the permutation — a TLB
	// without timing. Entries are pure memoization (the permutation is a
	// function of the VPN alone), so hits return exactly what the Feistel
	// network would compute; only the simulation's wall-clock changes.
	// Tags store vpn+1 so the zero value means "empty".
	tlbTag [tlbEntries]uint64
	tlbPFN [tlbEntries]uint64
}

const (
	feistelHalfBits = 18 // 2 x 18 = 36-bit page number domain
	feistelHalfMask = 1<<feistelHalfBits - 1
	vpnMask         = 1<<(2*feistelHalfBits) - 1

	tlbEntries = 512 // direct-mapped; 8KB per translator
	tlbMask    = tlbEntries - 1
)

// NewTranslator creates a translator with a deterministic per-process salt.
// Different salts model different physical page placements.
func NewTranslator(salt uint64) *Translator {
	t := &Translator{}
	x := salt
	for i := range t.keys {
		x = mix64(x + uint64(i) + 1)
		t.keys[i] = uint32(x)
	}
	return t
}

// Translate maps a virtual address to a physical address, preserving the
// page offset. Repeated translations of a hot page hit the internal TLB
// memo instead of re-running the permutation.
func (t *Translator) Translate(v Addr) Addr {
	vpn := PageNum(v)
	idx := vpn & tlbMask
	if t.tlbTag[idx] == vpn+1 {
		return Addr(t.tlbPFN[idx]<<PageBits) | (v & (PageSize - 1))
	}
	hi := vpn &^ uint64(vpnMask) // preserve bits above the permuted domain
	l := uint32(vpn>>feistelHalfBits) & feistelHalfMask
	r := uint32(vpn) & feistelHalfMask
	for _, k := range t.keys {
		l, r = r, l^feistelRound(r, k)
	}
	pfn := hi | uint64(l)<<feistelHalfBits | uint64(r)
	t.tlbTag[idx] = vpn + 1
	t.tlbPFN[idx] = pfn
	return Addr(pfn<<PageBits) | (v & (PageSize - 1))
}

// feistelRound is the keyed round function; any function works for
// bijectivity, a multiplicative mix gives good diffusion.
func feistelRound(r, k uint32) uint32 {
	x := (r + k) * 0x9e3779b1
	x ^= x >> 15
	x *= 0x85ebca6b
	x ^= x >> 13
	return x & feistelHalfMask
}

// mix64 is the splitmix64 finalizer: a bijective 64-bit mixing function.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashPC folds a 64-bit PC into the 12-bit hashed-PC fields used by Gaze's
// FT/AT/DPCT entries (Table I).
func HashPC(pc uint64) uint16 {
	h := mix64(pc)
	return uint16((h ^ h>>12 ^ h>>24) & 0xfff)
}
