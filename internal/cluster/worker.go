package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/traceset"
	"repro/internal/workload"
)

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// Client talks to the coordinator. Required.
	Client *Client
	// Engine executes leased jobs. Its scale MUST match the
	// coordinator's (build it from Client.Info's scale); the handshake
	// and the per-unit address check both enforce it. Required.
	Engine *engine.Engine
	// Registry caches replicated ingested traces (nil: units
	// referencing ingested traces fail deterministically). Register it
	// as a workload source so the engine can materialize from it.
	Registry *traceset.Registry
	// Concurrency bounds units executed in parallel and sizes lease
	// batches (0 = GOMAXPROCS).
	Concurrency int
	// Name labels this worker in the coordinator's roster and id.
	Name string
	// PollInterval is the idle sleep between empty lease responses.
	// Default 250ms.
	PollInterval time.Duration
	// Clock drives sleeps and heartbeat pacing (default RealClock).
	Clock Clock
	// Logger observes worker lifecycle events (default slog.Default()).
	// The worker wraps it with obs.ContextHandler, so lines logged while
	// executing a leased unit carry the coordinator's trace ID.
	Logger *slog.Logger
	// Tracer, when set, records worker-side spans ("worker.unit" around
	// each leased execution), parented on the coordinator trace the
	// unit's traceparent names.
	Tracer *obs.Tracer
}

// WorkerCounters is a snapshot of one worker's lifetime totals.
type WorkerCounters struct {
	Completed  uint64 // units executed and uploaded
	Failed     uint64 // units reported as deterministic failures
	Replicated uint64 // ingested traces fetched and verified
}

// Worker is the execute side of the cluster: register, heartbeat,
// lease, run, upload — until its context is cancelled. It is
// crash-tolerant from the other side's perspective (a killed worker's
// leases expire and requeue) and restart-tolerant from its own (any
// error that could mean "the coordinator forgot me" re-runs the
// handshake).
type Worker struct {
	client *Client
	eng    *engine.Engine
	reg    *traceset.Registry
	conc   int
	name   string
	poll   time.Duration
	clock  Clock
	log    *slog.Logger
	tracer *obs.Tracer

	mu       sync.Mutex
	counters WorkerCounters
	// pendingReplicated accumulates replications not yet acknowledged
	// by a heartbeat (deltas, so re-registration never double-reports).
	pendingReplicated uint64
	// repInflight single-flights trace replication per digest, so a
	// batch of units over one new trace downloads it once.
	repInflight map[string]chan struct{}
}

// errReregister signals the serve loop that the coordinator no longer
// knows this worker id.
var errReregister = errors.New("cluster: worker must re-register")

// NewWorker builds a worker.
func NewWorker(opts WorkerOptions) *Worker {
	if opts.Client == nil || opts.Engine == nil {
		panic("cluster: WorkerOptions.Client and Engine are required")
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = runtime.GOMAXPROCS(0)
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 250 * time.Millisecond
	}
	if opts.Clock == nil {
		opts.Clock = RealClock
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	return &Worker{
		client:      opts.Client,
		eng:         opts.Engine,
		reg:         opts.Registry,
		conc:        opts.Concurrency,
		name:        opts.Name,
		poll:        opts.PollInterval,
		clock:       opts.Clock,
		log:         slog.New(obs.ContextHandler(opts.Logger.Handler())),
		tracer:      opts.Tracer,
		repInflight: make(map[string]chan struct{}),
	}
}

// Counters returns the worker's lifetime totals.
func (w *Worker) Counters() WorkerCounters {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.counters
}

// Run drives the worker until ctx is cancelled (returns nil) or the
// coordinator permanently rejects it (returns the rejection — an
// incompatible scale will never fix itself by retrying).
func (w *Worker) Run(ctx context.Context) error {
	for ctx.Err() == nil {
		id, ttl, err := w.register(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		w.log.Info("cluster worker: registered", "worker_id", id, "lease_ttl", ttl.String())
		err = w.serve(ctx, id, ttl)
		if errors.Is(err, errReregister) {
			w.log.Info("cluster worker: coordinator dropped registration, re-registering", "worker_id", id)
			continue
		}
		if ctx.Err() != nil {
			// Graceful exit: hand leases back immediately instead of
			// making the coordinator wait out their deadlines.
			dctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			w.client.Deregister(dctx, id) //nolint:errcheck // best-effort
			cancel()
			return nil
		}
		return err
	}
	return nil
}

// register performs the handshake. The client's own retry loop covers
// transient failures; a contract rejection (409 incompatible) comes
// back as the permanent error it is.
func (w *Worker) register(ctx context.Context) (id string, ttl time.Duration, err error) {
	resp, err := w.client.Register(ctx, RegisterRequest{
		Name:               w.name,
		Concurrency:        w.conc,
		Scale:              w.eng.Scale(),
		StoreSchemaVersion: engine.StoreSchemaVersion,
	})
	if err != nil {
		return "", 0, err
	}
	ttl = time.Duration(resp.LeaseTTLMS) * time.Millisecond
	if ttl <= 0 {
		ttl = 15 * time.Second
	}
	return resp.WorkerID, ttl, nil
}

// serve runs the lease/execute loop under one registration, with a
// heartbeat goroutine renewing it at TTL/3.
func (w *Worker) serve(ctx context.Context, id string, ttl time.Duration) error {
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	hbLost := make(chan struct{}, 1)
	go w.heartbeatLoop(hbCtx, id, ttl, hbLost)

	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-hbLost:
			return errReregister
		default:
		}
		lease, err := w.client.Lease(ctx, LeaseRequest{WorkerID: id, Max: w.conc})
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if IsStatus(err, 404) {
				return errReregister
			}
			// Transient even after the client's retries (coordinator
			// restarting, network partition): keep polling rather than
			// dying — the whole point of the worker is to survive this.
			w.log.Warn("cluster worker: lease failed", "error", err.Error())
			if err := w.clock.Sleep(ctx, w.poll); err != nil {
				return err
			}
			continue
		}
		if len(lease.Units) == 0 {
			if err := w.clock.Sleep(ctx, w.poll); err != nil {
				return err
			}
			continue
		}
		// Run the batch with bounded parallelism and wait for it before
		// leasing again: leased-but-unstarted units would just sit on
		// this worker's clock.
		var wg sync.WaitGroup
		sem := make(chan struct{}, w.conc)
		for _, u := range lease.Units {
			wg.Add(1)
			sem <- struct{}{}
			go func(u WorkUnit) {
				defer wg.Done()
				defer func() { <-sem }()
				w.runUnit(ctx, id, u)
			}(u)
		}
		wg.Wait()
	}
}

// heartbeatLoop renews the registration every ttl/3, reporting
// replication deltas. A 404 means the coordinator dropped us — signal
// the serve loop to re-register.
func (w *Worker) heartbeatLoop(ctx context.Context, id string, ttl time.Duration, lost chan<- struct{}) {
	interval := ttl / 3
	if interval <= 0 {
		interval = time.Second
	}
	for {
		if err := w.clock.Sleep(ctx, interval); err != nil {
			return
		}
		delta := w.takeReplicatedDelta()
		err := w.client.Heartbeat(ctx, id, HeartbeatRequest{Replicated: delta})
		if err != nil {
			// Unacknowledged: report the delta again next time.
			w.returnReplicatedDelta(delta)
			if IsStatus(err, 404) {
				select {
				case lost <- struct{}{}:
				default:
				}
				return
			}
			if ctx.Err() != nil {
				return
			}
			w.log.Warn("cluster worker: heartbeat failed", "error", err.Error())
		}
	}
}

func (w *Worker) takeReplicatedDelta() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	d := w.pendingReplicated
	w.pendingReplicated = 0
	return d
}

func (w *Worker) returnReplicatedDelta(d uint64) {
	w.mu.Lock()
	w.pendingReplicated += d
	w.mu.Unlock()
}

// runUnit executes one leased unit end to end. Transient trouble
// (cancelled context, coordinator unreachable on upload, replication
// download glitch) just abandons the unit — its lease expires and it
// re-leases elsewhere, and a duplicate later upload is harmless by
// content addressing. Deterministic trouble (address mismatch, missing
// trace, simulation error) is reported so waiting sweeps fail fast
// instead of bouncing the unit between workers forever.
func (w *Worker) runUnit(ctx context.Context, id string, u WorkUnit) {
	// Join the coordinator's trace: the unit carries the traceparent of
	// the sweep that enqueued it, so every span and log line below lands
	// under the same trace ID the submitting client saw.
	ctx = obs.WithTracer(ctx, w.tracer)
	if sc, ok := obs.ParseTraceparent(u.Traceparent); ok {
		ctx = obs.WithRemoteParent(ctx, sc)
	}
	ctx, span := obs.Start(ctx, "worker.unit",
		obs.String("worker", id), obs.String("unit", short(u.Address)))
	defer span.End()

	scale := w.eng.Scale()
	key := u.Job.CanonicalJSON(scale)
	if engineAddress(key) != u.Address {
		// The handshake checks the scale, but a drifted binary (schema
		// skew inside one version) could still disagree; computing under
		// the wrong identity would be wasted work at best.
		w.failUnit(ctx, id, u.Address, fmt.Sprintf(
			"job canonical encoding hashes to %s on this worker, not the leased address", engineAddress(key)[:12]))
		return
	}
	if err := w.replicateTraces(ctx, u.Job); err != nil {
		if ctx.Err() != nil {
			return
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			w.failUnit(ctx, id, u.Address, pe.Error())
			return
		}
		w.log.WarnContext(ctx, "cluster worker: trace replication failed; lease will expire",
			"unit", short(u.Address), "error", err.Error())
		return
	}
	res, err := w.eng.RunContext(ctx, u.Job)
	if err != nil {
		if ctx.Err() != nil {
			return
		}
		w.failUnit(ctx, id, u.Address, err.Error())
		return
	}
	doc, err := engine.ExportResult(key, res)
	if err != nil {
		w.failUnit(ctx, id, u.Address, fmt.Sprintf("encoding result: %v", err))
		return
	}
	// Telemetry uploads BEFORE the result: a unit the coordinator can
	// observe as complete then already has its timeline. Best-effort —
	// telemetry is derived data, and a missing timeline must never fail
	// (or re-lease) a unit whose result is in hand.
	if tdoc, ok := w.eng.Telemetry(u.Address); ok {
		if _, err := w.client.UploadTelemetry(ctx, u.Address, tdoc); err != nil && ctx.Err() == nil {
			w.log.WarnContext(ctx, "cluster worker: telemetry upload failed; timeline stays local",
				"unit", short(u.Address), "error", err.Error())
		}
	}
	if _, err := w.client.UploadResult(ctx, u.Address, doc); err != nil {
		if ctx.Err() == nil {
			w.log.WarnContext(ctx, "cluster worker: upload failed; lease will expire",
				"unit", short(u.Address), "error", err.Error())
		}
		return
	}
	w.mu.Lock()
	w.counters.Completed++
	w.mu.Unlock()
	w.log.InfoContext(ctx, "cluster worker: unit completed", "worker_id", id, "unit", short(u.Address))
}

// short abbreviates a content address for log lines and span attrs.
func short(addr string) string {
	if len(addr) > 12 {
		return addr[:12]
	}
	return addr
}

// failUnit reports a deterministic failure, best-effort.
func (w *Worker) failUnit(ctx context.Context, id, addr, msg string) {
	w.mu.Lock()
	w.counters.Failed++
	w.mu.Unlock()
	if err := w.client.ReportFailure(ctx, addr, FailRequest{WorkerID: id, Error: msg}); err != nil && ctx.Err() == nil {
		w.log.WarnContext(ctx, "cluster worker: reporting failure failed",
			"unit", short(addr), "error", err.Error())
	}
}

// permanentError marks replication failures that retrying elsewhere
// cannot fix.
type permanentError struct{ msg string }

func (e *permanentError) Error() string { return e.msg }

// replicateTraces ensures every ingested trace a job references is
// present in the local registry, fetching missing ones from the
// coordinator and verifying the recomputed content address against the
// digest in the name. Catalogue traces regenerate locally and need no
// replication.
func (w *Worker) replicateTraces(ctx context.Context, job engine.Job) error {
	for _, tr := range job.Traces {
		digest, ok := workload.IngestedDigest(tr)
		if !ok {
			continue
		}
		if w.reg == nil {
			return &permanentError{msg: fmt.Sprintf(
				"job references ingested trace %s but this worker has no trace registry", digest[:12])}
		}
		if err := w.replicateOne(ctx, digest); err != nil {
			return err
		}
	}
	return nil
}

// replicateOne fetches one trace by digest, single-flighted per digest
// so concurrent units over a new trace download it once.
func (w *Worker) replicateOne(ctx context.Context, digest string) error {
	for {
		if _, ok := w.reg.Get(digest); ok {
			return nil
		}
		w.mu.Lock()
		ch, busy := w.repInflight[digest]
		if !busy {
			ch = make(chan struct{})
			w.repInflight[digest] = ch
			w.mu.Unlock()
			break
		}
		w.mu.Unlock()
		select {
		case <-ch:
			// Re-check: the flight leader may have failed; loop and
			// either find the trace or claim the flight ourselves.
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	defer func() {
		w.mu.Lock()
		ch := w.repInflight[digest]
		delete(w.repInflight, digest)
		w.mu.Unlock()
		close(ch)
	}()

	ctx, sp := obs.Start(ctx, "worker.replicate", obs.String("trace", short(digest)))
	defer sp.End()
	rc, err := w.client.FetchTrace(ctx, digest)
	if err != nil {
		if IsStatus(err, 404) {
			return &permanentError{msg: fmt.Sprintf("coordinator has no ingested trace %s", digest[:12])}
		}
		return err
	}
	m, _, err := w.reg.Ingest(rc)
	rc.Close()
	if err != nil {
		return fmt.Errorf("ingesting replicated trace %s: %w", digest[:12], err)
	}
	if m.Address != digest {
		// The bytes the coordinator served hash to something else —
		// fetch-and-verify caught corruption in transit or at rest.
		w.reg.Delete(m.Address) //nolint:errcheck // best-effort cleanup of the misfiled entry
		return &permanentError{msg: fmt.Sprintf(
			"replicated trace hashes to %s, not the requested %s", m.Address[:12], digest[:12])}
	}
	w.mu.Lock()
	w.counters.Replicated++
	w.pendingReplicated++
	w.mu.Unlock()
	w.log.InfoContext(ctx, "cluster worker: replicated trace", "trace", short(digest))
	return nil
}

// engineAddress hashes a canonical job key the way the engine does —
// one exported helper avoids re-deriving ContentAddress from the Job
// (which would recompute the canonical encoding a second time).
func engineAddress(key string) string { return engine.AddressOfKey(key) }
