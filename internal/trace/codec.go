package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary trace file format (all little-endian-free varints):
//
//	magic   "GZTR\x01"
//	records repeated:
//	  kindAndNonMem varint  (kind in low bit, NonMem in the rest)
//	  pcDelta       signed varint (delta from previous PC)
//	  addrDelta     signed varint (delta from previous Addr)
//
// Delta + varint encoding keeps streaming traces compact (~3-6 bytes per
// record) which matters for the cmd/tracegen round-trip tooling.

var magic = [5]byte{'G', 'Z', 'T', 'R', 1}

// Writer encodes records to an io.Writer.
type Writer struct {
	w        *bufio.Writer
	prevPC   uint64
	prevAddr uint64
	buf      [binary.MaxVarintLen64]byte
	started  bool
}

// NewWriter creates a trace writer and emits the file header.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	head := uint64(r.NonMem)<<1 | uint64(r.Kind&1)
	if err := w.putUvarint(head); err != nil {
		return err
	}
	if err := w.putVarint(int64(r.PC - w.prevPC)); err != nil {
		return err
	}
	if err := w.putVarint(int64(r.Addr - w.prevAddr)); err != nil {
		return err
	}
	w.prevPC, w.prevAddr = r.PC, r.Addr
	w.started = true
	return nil
}

// Flush writes any buffered bytes to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Close implements RecordWriter; the GZTR stream needs no footer, so Close
// is Flush.
func (w *Writer) Close() error { return w.Flush() }

func (w *Writer) putUvarint(v uint64) error {
	n := binary.PutUvarint(w.buf[:], v)
	_, err := w.w.Write(w.buf[:n])
	return err
}

func (w *Writer) putVarint(v int64) error {
	n := binary.PutVarint(w.buf[:], v)
	_, err := w.w.Write(w.buf[:n])
	return err
}

// FileReader decodes a binary trace stream produced by Writer.
type FileReader struct {
	r        *bufio.Reader
	prevPC   uint64
	prevAddr uint64
}

// NewFileReader validates the header and returns a trace Reader. A header
// cut short returns ErrTruncated; wrong magic bytes return ErrCorrupt.
func NewFileReader(r io.Reader) (*FileReader, error) {
	br := bufio.NewReader(r)
	var hdr [5]byte
	if n, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: header is %d bytes, want %d", ErrTruncated, n, len(magic))
		}
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if hdr != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, hdr[:])
	}
	return &FileReader{r: br}, nil
}

// readUvarint decodes one varint, reporting whether any byte was consumed.
// The distinction is what makes truncation detectable: stdlib
// binary.ReadUvarint returns a bare io.EOF for a stream that ends mid-
// varint, indistinguishable from a clean end-of-trace, which would turn a
// torn tail into a silent short read.
func (f *FileReader) readUvarint() (v uint64, started bool, err error) {
	var shift uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b, err := f.r.ReadByte()
		if err != nil {
			return 0, i > 0, err
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, true, fmt.Errorf("%w: varint overflows uint64", ErrCorrupt)
			}
			return v | uint64(b)<<shift, true, nil
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, true, fmt.Errorf("%w: varint exceeds %d bytes", ErrCorrupt, binary.MaxVarintLen64)
}

// readVarint is readUvarint with zig-zag decoding (mirrors binary.ReadVarint).
func (f *FileReader) readVarint() (int64, bool, error) {
	uv, started, err := f.readUvarint()
	v := int64(uv >> 1)
	if uv&1 != 0 {
		v = ^v
	}
	return v, started, err
}

// Next implements Reader. The end of the stream at a record boundary is a
// clean io.EOF; a stream that ends inside a record — mid-varint or between
// a record's three fields — returns ErrTruncated, and structurally invalid
// bytes (varint overflow, out-of-range NonMem) return ErrCorrupt.
func (f *FileReader) Next() (Record, error) {
	head, started, err := f.readUvarint()
	if err != nil {
		if err == io.EOF && !started {
			return Record{}, io.EOF
		}
		return Record{}, recordErr(err)
	}
	pcD, _, err := f.readVarint()
	if err != nil {
		return Record{}, recordErr(err)
	}
	addrD, _, err := f.readVarint()
	if err != nil {
		return Record{}, recordErr(err)
	}
	nonMem := head >> 1
	if nonMem > 0xffff {
		return Record{}, fmt.Errorf("%w: non-mem run %d exceeds uint16", ErrCorrupt, nonMem)
	}
	f.prevPC += uint64(pcD)
	f.prevAddr += uint64(addrD)
	return Record{
		PC:     f.prevPC,
		Addr:   f.prevAddr,
		NonMem: uint16(nonMem),
		Kind:   Kind(head & 1),
	}, nil
}

// recordErr maps a mid-record read failure to the typed decode errors:
// any end-of-input inside a record is truncation, everything else passes
// through (ErrCorrupt stays ErrCorrupt, transport errors stay themselves).
func recordErr(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("%w: stream ends mid-record", ErrTruncated)
	}
	return err
}
