// End-to-end cluster tests: a real coordinator HTTP server (the full
// internal/server handler with jobs dispatching through the
// coordinator) driven by real Workers over the wire. This is the
// acceptance criterion executed as a test: a sweep across two workers —
// one of which dies mid-flight — completes with store entries and an
// analytics ETag byte-identical to a pure single-node run.
package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/traceset"
	"repro/internal/workload"
)

var tiny = engine.Scale{TracesPerSuite: 1, TraceLen: 10_000, Warmup: 5_000, Sim: 20_000}

// coordNode is one assembled coordinator-mode server.
type coordNode struct {
	ts    *httptest.Server
	coord *cluster.Coordinator
	dir   string // result-store directory
}

// newCoordNode builds a full coordinator: engine + store, jobs manager
// dispatching through the coordinator's Execute, HTTP handler with
// cluster routes mounted. A non-nil tracer is threaded through every
// layer the way gazeserve wires it.
func newCoordNode(t *testing.T, reg *traceset.Registry, tracer *obs.Tracer) *coordNode {
	t.Helper()
	dir := t.TempDir()
	store, err := engine.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{Scale: tiny, Store: store})
	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{
		Engine:   eng,
		LeaseTTL: 30 * time.Second, // worker loss is exercised via deregister, not wall-clock expiry
		// One unit per lease call spreads a small sweep across workers
		// instead of letting the first poller swallow it whole.
		MaxLeaseBatch: 1,
		Tracer:        tracer,
	})
	mgr, err := jobs.Open(jobs.Options{
		Engine:  eng,
		Compile: server.Compiler(eng),
		Workers: 2,
		Execute: coord.Execute,
		Tracer:  tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Shutdown(context.Background()) }) //nolint:errcheck
	srv := server.New(eng).AttachJobs(mgr).AttachCluster(coord)
	if tracer != nil {
		srv.AttachTracer(tracer)
	}
	if reg != nil {
		srv.AttachTraces(reg)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &coordNode{ts: ts, coord: coord, dir: dir}
}

// newLocalNode builds the single-node control: same engine scale, own
// store, jobs execute locally.
func newLocalNode(t *testing.T) *coordNode {
	t.Helper()
	dir := t.TempDir()
	store, err := engine.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{Scale: tiny, Store: store})
	mgr, err := jobs.Open(jobs.Options{Engine: eng, Compile: server.Compiler(eng), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Shutdown(context.Background()) }) //nolint:errcheck
	ts := httptest.NewServer(server.New(eng).AttachJobs(mgr).Handler())
	t.Cleanup(ts.Close)
	return &coordNode{ts: ts, dir: dir}
}

// startWorker boots a Worker against the coordinator's URL with its own
// engine (and optionally its own trace registry), returning its cancel
// and counters.
func startWorker(t *testing.T, url, name string, reg *traceset.Registry) (*cluster.Worker, context.CancelFunc, <-chan error) {
	t.Helper()
	w := cluster.NewWorker(cluster.WorkerOptions{
		Client:       cluster.NewClient(url, cluster.ClientOptions{Backoff: 5 * time.Millisecond}),
		Engine:       engine.New(engine.Options{Scale: tiny}),
		Registry:     reg,
		Concurrency:  1,
		Name:         name,
		PollInterval: 10 * time.Millisecond,
		Logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error)
	go func() {
		done <- w.Run(ctx)
		close(done)
	}()
	t.Cleanup(func() {
		cancel()
		for range done { // drain whether or not the test already waited
		}
	})
	return w, cancel, done
}

func postJSON(t *testing.T, url, body string, out any) int {
	t.Helper()
	r, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if out != nil {
		if err := json.NewDecoder(r.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return r.StatusCode
}

// waitJob polls GET /jobs/{id} until it reaches a terminal state,
// running onPoll (when set) each iteration.
func waitJob(t *testing.T, base, id string, onPoll func()) string {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish", id)
		}
		if onPoll != nil {
			onPoll()
		}
		r, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		err = json.NewDecoder(r.Body).Decode(&st)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case "succeeded":
			return st.State
		case "failed", "canceled", "interrupted":
			t.Fatalf("job %s ended %s: %s", id, st.State, st.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// storeSnapshot maps relative path → contents for every .json record
// under a store directory.
func storeSnapshot(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := make(map[string]string)
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".json" {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		out[rel] = string(data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func etagOf(t *testing.T, base, query string) string {
	t.Helper()
	r, err := http.Get(base + "/analytics/speedup?" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("analytics: status %d", r.StatusCode)
	}
	etag := r.Header.Get("ETag")
	if etag == "" {
		t.Fatal("analytics response has no ETag")
	}
	return etag
}

// TestClusterSweepSurvivesWorkerLoss runs the flagship scenario: an
// async sweep on a coordinator with two real workers over HTTP, one
// worker killed after it completes its first unit. The sweep must still
// succeed, and both the result-store bytes and the analytics ETag must
// equal a single-node run of the same sweep.
func TestClusterSweepSurvivesWorkerLoss(t *testing.T) {
	node := newCoordNode(t, nil, nil)

	w0, cancel0, errc0 := startWorker(t, node.ts.URL, "doomed", nil)
	startWorker(t, node.ts.URL, "survivor", nil)

	const sweepBody = `{"type":"sweep","request":{"traces":["lbm-1274","bwaves-1963"],"prefetchers":["Gaze"]}}`
	var submitted struct {
		ID string `json:"id"`
	}
	if code := postJSON(t, node.ts.URL+"/jobs", sweepBody, &submitted); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}

	killed := false
	waitJob(t, node.ts.URL, submitted.ID, func() {
		// Kill worker 0 the moment it has computed at least one unit:
		// mid-sweep, with work provably split across nodes.
		if !killed && w0.Counters().Completed >= 1 {
			killed = true
			cancel0()
			<-errc0
		}
	})
	if !killed {
		// The sweep finished before worker 0 completed anything — the
		// loss scenario was not exercised; the scheduling must be rerun
		// rather than silently passing. With MaxLeaseBatch 1 and two
		// polling workers this is effectively impossible for a 4-unit
		// sweep, but fail loudly if it ever happens.
		t.Fatal("worker 0 never completed a unit before the sweep finished")
	}

	// The killed worker deregistered (graceful cancel) or its leases
	// expired; either way the survivor finished the sweep.
	cts := node.coord.Counters()
	if cts.Results == 0 {
		t.Fatalf("coordinator counters = %+v, want uploaded results", cts)
	}
	if r, err := http.Get(node.ts.URL + "/jobs/" + submitted.ID + "/result"); err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("result fetch: %v / %d", err, r.StatusCode)
	} else {
		r.Body.Close()
	}

	// Single-node control run of the identical sweep.
	local := newLocalNode(t)
	var localJob struct {
		ID string `json:"id"`
	}
	if code := postJSON(t, local.ts.URL+"/jobs", sweepBody, &localJob); code != http.StatusAccepted {
		t.Fatalf("local submit: status %d", code)
	}
	waitJob(t, local.ts.URL, localJob.ID, nil)

	clusterStore, localStore := storeSnapshot(t, node.dir), storeSnapshot(t, local.dir)
	if len(clusterStore) == 0 {
		t.Fatal("cluster run committed no store entries")
	}
	if len(clusterStore) != len(localStore) {
		t.Fatalf("store entry count: cluster %d, local %d", len(clusterStore), len(localStore))
	}
	for rel, data := range localStore {
		if clusterStore[rel] != data {
			t.Errorf("store entry %s differs between cluster and single-node runs", rel)
		}
	}

	const analyticsQuery = "traces=lbm-1274,bwaves-1963&prefetchers=Gaze"
	if ct, lt := etagOf(t, node.ts.URL, analyticsQuery), etagOf(t, local.ts.URL, analyticsQuery); ct != lt {
		t.Errorf("analytics ETag: cluster %s, local %s", ct, lt)
	}
}

// TestClusterDuplicateUploadOverHTTP hammers PUT /cluster/results with
// identical documents through the real handler stack: one "completed",
// the rest "duplicate", never an error.
func TestClusterDuplicateUploadOverHTTP(t *testing.T) {
	node := newCoordNode(t, nil, nil)
	client := cluster.NewClient(node.ts.URL, cluster.ClientOptions{})
	ctx := context.Background()

	resp, err := client.Register(ctx, cluster.RegisterRequest{
		Concurrency: 1, Scale: tiny, StoreSchemaVersion: engine.StoreSchemaVersion,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Enqueue units via a submitted simulate job (it compiles to the run
	// plus its baseline), then lease them all — every unit must settle or
	// the job (and the manager's shutdown) would wait forever.
	var submitted struct {
		ID string `json:"id"`
	}
	postJSON(t, node.ts.URL+"/jobs",
		`{"type":"simulate","request":{"trace":"lbm-1274","prefetcher":"Gaze"}}`, &submitted)
	var units []cluster.WorkUnit
	deadline := time.Now().Add(5 * time.Second)
	for len(units) == 0 || node.coord.Counters().UnitsPending > 0 {
		if time.Now().After(deadline) {
			t.Fatal("no units to lease")
		}
		lease, err := client.Lease(ctx, cluster.LeaseRequest{WorkerID: resp.WorkerID, Max: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(lease.Units) == 0 {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		units = append(units, lease.Units...)
	}
	eng := engine.New(engine.Options{Scale: tiny})

	// Settle every sibling unit normally so the job completes; the hammer
	// targets the first unit only.
	for _, sibling := range units[1:] {
		doc, err := engine.ExportResult(sibling.Job.CanonicalJSON(tiny), eng.Run(sibling.Job))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := client.UploadResult(ctx, sibling.Address, doc); err != nil {
			t.Fatal(err)
		}
	}
	u := units[0]
	doc, err := engine.ExportResult(u.Job.CanonicalJSON(tiny), eng.Run(u.Job))
	if err != nil {
		t.Fatal(err)
	}

	statuses := make(chan string, 8)
	for i := 0; i < cap(statuses); i++ {
		go func() {
			up, err := client.UploadResult(ctx, u.Address, doc)
			if err != nil {
				t.Errorf("upload: %v", err)
				statuses <- "error"
				return
			}
			statuses <- up.Status
		}()
	}
	completed, duplicate := 0, 0
	for i := 0; i < cap(statuses); i++ {
		switch <-statuses {
		case "completed":
			completed++
		case "duplicate":
			duplicate++
		}
	}
	if completed != 1 || duplicate != cap(statuses)-1 {
		t.Errorf("completed = %d, duplicate = %d; want 1 and %d", completed, duplicate, cap(statuses)-1)
	}
	// Every unit settled, so the submitted job itself must now succeed.
	waitJob(t, node.ts.URL, submitted.ID, nil)
}

// TestClusterTraceReplication: a sweep over an ingested trace makes the
// worker pull the trace from the coordinator by digest, verify it, and
// land it in its own registry before simulating.
func TestClusterTraceReplication(t *testing.T) {
	coordReg, err := traceset.Open(t.TempDir(), traceset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	workload.ResetSources()
	workload.RegisterSource(coordReg)
	t.Cleanup(workload.ResetSources)

	// Seed the coordinator's registry with real record content: a
	// catalogue trace's records re-ingested as an "external" trace.
	recs, err := workload.Generate("lbm-1274", tiny.TraceLen)
	if err != nil {
		t.Fatal(err)
	}
	manifest, _, err := coordReg.IngestRecords(recs, trace.FormatGZTR)
	if err != nil {
		t.Fatal(err)
	}

	node := newCoordNode(t, coordReg, nil)
	workerReg, err := traceset.Open(t.TempDir(), traceset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w, _, _ := startWorker(t, node.ts.URL, "replicator", workerReg)

	name := workload.IngestedName(manifest.Address)
	var submitted struct {
		ID string `json:"id"`
	}
	body := fmt.Sprintf(`{"type":"simulate","request":{"trace":%q,"prefetcher":"Gaze"}}`, name)
	if code := postJSON(t, node.ts.URL+"/jobs", body, &submitted); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	waitJob(t, node.ts.URL, submitted.ID, nil)

	if _, ok := workerReg.Get(manifest.Address); !ok {
		t.Error("worker registry does not hold the replicated trace")
	}
	if got := w.Counters().Replicated; got < 1 {
		t.Errorf("worker replicated counter = %d, want >= 1", got)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the worker's slog handler
// and the tracer's NDJSON log both write from worker/handler goroutines
// while the test reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestClusterTraceContinuity is the tracing acceptance criterion: one
// trace ID spans submit → lease → worker execution → upload → adopt.
// The coordinator's ring (via GET /debug/traces?job=) holds the job and
// lease spans; the worker's own tracer and its structured log lines
// carry the SAME trace ID, received over the wire via the work unit's
// traceparent; and every span lands in the coordinator's NDJSON log.
func TestClusterTraceContinuity(t *testing.T) {
	var ndjson syncBuffer
	tracer := obs.NewTracer(obs.TracerOptions{Log: &ndjson})
	node := newCoordNode(t, nil, tracer)

	var workerLog syncBuffer
	wTracer := obs.NewTracer(obs.TracerOptions{})
	w := cluster.NewWorker(cluster.WorkerOptions{
		Client:       cluster.NewClient(node.ts.URL, cluster.ClientOptions{Backoff: 5 * time.Millisecond}),
		Engine:       engine.New(engine.Options{Scale: tiny}),
		Concurrency:  1,
		Name:         "traced",
		PollInterval: 10 * time.Millisecond,
		Logger:       slog.New(slog.NewTextHandler(&workerLog, nil)),
		Tracer:       wTracer,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error)
	go func() {
		done <- w.Run(ctx)
		close(done)
	}()
	stopped := false
	stop := func() {
		if !stopped {
			stopped = true
			cancel()
			for range done {
			}
		}
	}
	t.Cleanup(stop)

	var submitted struct {
		ID string `json:"id"`
	}
	body := `{"type":"simulate","request":{"trace":"lbm-1274","prefetcher":"Gaze"}}`
	if code := postJSON(t, node.ts.URL+"/jobs", body, &submitted); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	waitJob(t, node.ts.URL, submitted.ID, nil)

	// The terminal job reports the trace ID every later assertion keys on.
	r, err := http.Get(node.ts.URL + "/jobs/" + submitted.ID)
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		TraceID string `json:"trace_id"`
	}
	err = json.NewDecoder(r.Body).Decode(&st)
	r.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.TraceID == "" {
		t.Fatal("terminal job has no trace_id")
	}

	// Coordinator side: GET /debug/traces?job= resolves the same trace and
	// shows the job spans plus the synthesized lease spans.
	r, err = http.Get(node.ts.URL + "/debug/traces?job=" + submitted.ID)
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("debug traces: status %d", r.StatusCode)
	}
	var doc struct {
		TraceID string `json:"trace_id"`
		Spans   []struct {
			TraceID string            `json:"trace_id"`
			Name    string            `json:"name"`
			Attrs   map[string]string `json:"attrs"`
		} `json:"spans"`
	}
	err = json.NewDecoder(r.Body).Decode(&doc)
	r.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if doc.TraceID != st.TraceID {
		t.Fatalf("debug traces resolved %q, job reports %q", doc.TraceID, st.TraceID)
	}
	names := make(map[string]int)
	for _, sp := range doc.Spans {
		if sp.TraceID != st.TraceID {
			t.Fatalf("span %q carries trace %q, want %q", sp.Name, sp.TraceID, st.TraceID)
		}
		names[sp.Name]++
	}
	for _, want := range []string{"job.run", "job.execute", "cluster.lease"} {
		if names[want] == 0 {
			t.Errorf("coordinator trace lacks a %q span (got %v)", want, names)
		}
	}

	// Worker side: stop it, then check its own spans and log lines carry
	// the coordinator's trace ID — continuity over the wire.
	stop()
	units := 0
	for _, sp := range wTracer.Recent(0) {
		if sp.Name != "worker.unit" {
			continue
		}
		units++
		if sp.TraceID != st.TraceID {
			t.Errorf("worker.unit span carries trace %q, want coordinator trace %q", sp.TraceID, st.TraceID)
		}
	}
	if units == 0 {
		t.Error("worker tracer recorded no worker.unit spans")
	}
	logText := workerLog.String()
	completedLine := ""
	for _, line := range strings.Split(logText, "\n") {
		if strings.Contains(line, "unit completed") {
			completedLine = line
			break
		}
	}
	if completedLine == "" {
		t.Fatalf("worker log has no completion line:\n%s", logText)
	}
	if !strings.Contains(completedLine, "trace_id="+st.TraceID) {
		t.Errorf("worker completion line lacks the coordinator's trace id %s:\n%s", st.TraceID, completedLine)
	}

	// NDJSON export: every line is a valid span document, and the job's
	// root span is among them.
	sawRoot := false
	for _, line := range strings.Split(strings.TrimSuffix(ndjson.String(), "\n"), "\n") {
		var sp struct {
			TraceID string `json:"trace_id"`
			Name    string `json:"name"`
		}
		if err := json.Unmarshal([]byte(line), &sp); err != nil {
			t.Fatalf("NDJSON line does not parse: %v\n%s", err, line)
		}
		if sp.Name == "job.run" && sp.TraceID == st.TraceID {
			sawRoot = true
		}
	}
	if !sawRoot {
		t.Error("NDJSON log has no job.run line for the job's trace")
	}
}
