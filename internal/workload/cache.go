package workload

import (
	"sync"

	"repro/internal/trace"
)

// This file implements the process-wide materialized-trace cache. Every
// entry point that simulates — the engine's sweep shards, gazeserve
// handlers, benchmarks — asks for traces through Materialize, so N
// prefetchers x M config points over one trace generate it exactly once
// per process instead of once per job. Entries are immutable [] Record
// slabs keyed by {name, length}; population is single-flight, so
// concurrent shards requesting the same trace block on one generation
// instead of racing duplicates.
//
// The cache is byte-budget bounded: synthetic slabs are small and
// regenerate cheaply, but once arbitrarily large ingested traces join the
// catalogue an unbounded cache is a memory liability in a long-lived
// server. SetTraceCacheBudget caps the resident footprint; over budget,
// ready entries are evicted least-recently-used first (in-flight entries
// and the most recent slab are never evicted — callers already hold
// references, eviction only drops the map's, so evicted slabs stay valid
// for whoever has them and are simply re-materialized on next request).

// CacheStats is a point-in-time snapshot of the materialized-trace cache.
type CacheStats struct {
	// Entries is the number of materialized traces resident in memory.
	Entries int `json:"entries"`
	// Hits counts Materialize calls served an existing (or in-flight)
	// slab; Misses counts calls that generated one.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Bytes is the resident record-slab footprint (records x record size).
	Bytes int64 `json:"bytes"`
	// Evictions counts slabs dropped to honor the byte budget.
	Evictions uint64 `json:"evictions"`
}

type traceKey struct {
	name string
	n    int
}

// traceEntry is one cache slot. ready is closed once recs/err are final;
// readers that find an in-flight entry block on it — the single-flight
// discipline that keeps shards from generating duplicates. done and
// lastUse drive LRU eviction and are guarded by traceCache.mu.
type traceEntry struct {
	ready   chan struct{}
	recs    []trace.Record
	err     error
	done    bool
	bytes   int64
	lastUse uint64
}

var traceCache = struct {
	mu        sync.Mutex
	entries   map[traceKey]*traceEntry
	hits      uint64
	misses    uint64
	bytes     int64
	evictions uint64
	budget    int64  // max resident bytes; <= 0 means unbounded
	clock     uint64 // logical LRU clock, bumped per touch
}{entries: make(map[traceKey]*traceEntry)}

// SetTraceCacheBudget bounds the cache's resident slab footprint to at
// most budget bytes (<= 0 restores unbounded). Lowering the budget evicts
// immediately. The budget is process-wide, like the cache itself.
func SetTraceCacheBudget(budget int64) {
	traceCache.mu.Lock()
	defer traceCache.mu.Unlock()
	traceCache.budget = budget
	evictLocked(nil)
}

// evictLocked drops ready entries, least-recently-used first, until the
// footprint fits the budget. keep (the entry just materialized, when set)
// is exempt: evicting the slab its caller is about to receive would make
// one oversized trace thrash the whole cache on every request.
func evictLocked(keep *traceEntry) {
	if traceCache.budget <= 0 {
		return
	}
	for traceCache.bytes > traceCache.budget {
		var (
			victimKey traceKey
			victim    *traceEntry
		)
		for k, e := range traceCache.entries {
			if !e.done || e == keep {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victimKey, victim = k, e
			}
		}
		if victim == nil {
			return
		}
		delete(traceCache.entries, victimKey)
		traceCache.bytes -= victim.bytes
		traceCache.evictions++
	}
}

// Materialize returns the first n records of the named workload from the
// process-wide cache, generating (or source-loading) them on first
// request. The returned slice is shared and immutable: callers must not
// modify it (wrap it in trace.NewSliceReader / trace.NewLooping to consume
// it). It is safe for concurrent use from any number of goroutines.
func Materialize(name string, n int) ([]trace.Record, error) {
	key := traceKey{name: name, n: n}
	traceCache.mu.Lock()
	if e, ok := traceCache.entries[key]; ok {
		traceCache.hits++
		traceCache.clock++
		e.lastUse = traceCache.clock
		traceCache.mu.Unlock()
		<-e.ready
		return e.recs, e.err
	}
	e := &traceEntry{ready: make(chan struct{})}
	traceCache.entries[key] = e
	traceCache.misses++
	traceCache.mu.Unlock()

	e.recs, e.err = produce(name, n)

	traceCache.mu.Lock()
	if cur, ok := traceCache.entries[key]; ok && cur == e {
		// The identity check keeps a ResetTraceCache racing an in-flight
		// generation from corrupting the byte accounting of the new map.
		if e.err != nil {
			// Don't cache failures (unknown names): drop the slot so the
			// map and Entries only ever hold materialized traces.
			delete(traceCache.entries, key)
		} else {
			e.done = true
			e.bytes = int64(len(e.recs)) * trace.RecordBytes
			traceCache.clock++
			e.lastUse = traceCache.clock
			traceCache.bytes += e.bytes
			evictLocked(e)
		}
	}
	traceCache.mu.Unlock()
	close(e.ready)
	return e.recs, e.err
}

// MustMaterialize is Materialize for known-good names; it panics on error.
func MustMaterialize(name string, n int) []trace.Record {
	recs, err := Materialize(name, n)
	if err != nil {
		panic(err)
	}
	return recs
}

// InvalidateTrace drops every resident slab of the named trace, at any
// length. It is the delete-side hook for registry traces: after an
// ingested trace is removed from disk, its cached slabs must not keep
// serving a name that no longer resolves. In-flight generations are left
// to complete (their callers hold the slab either way). Invalidations are
// not counted as evictions — the budget did not force them.
func InvalidateTrace(name string) {
	traceCache.mu.Lock()
	defer traceCache.mu.Unlock()
	for k, e := range traceCache.entries {
		if k.name == name && e.done {
			delete(traceCache.entries, k)
			traceCache.bytes -= e.bytes
		}
	}
}

// TraceCacheStats returns a snapshot of the cache counters.
func TraceCacheStats() CacheStats {
	traceCache.mu.Lock()
	defer traceCache.mu.Unlock()
	return CacheStats{
		Entries:   len(traceCache.entries),
		Hits:      traceCache.hits,
		Misses:    traceCache.misses,
		Bytes:     traceCache.bytes,
		Evictions: traceCache.evictions,
	}
}

// ResetTraceCache discards every materialized trace, zeroes the counters
// and restores an unbounded budget. It is for tests and benchmarks that
// need a cold cache or a clean counter baseline; callers must ensure no
// Materialize call is in flight (in-flight generations complete against
// the old entries and are simply not retained).
func ResetTraceCache() {
	traceCache.mu.Lock()
	defer traceCache.mu.Unlock()
	traceCache.entries = make(map[traceKey]*traceEntry)
	traceCache.hits, traceCache.misses, traceCache.bytes = 0, 0, 0
	traceCache.evictions = 0
	traceCache.budget = 0
	traceCache.clock = 0
}
