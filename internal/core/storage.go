package core

import "fmt"

// StorageItem is one row of the Table I storage breakdown.
type StorageItem struct {
	Structure   string
	Description string
	Bits        int
}

// Bytes returns the item's size in bytes.
func (s StorageItem) Bytes() float64 { return float64(s.Bits) / 8 }

// StorageBreakdown reproduces Table I: the per-structure and total storage
// cost of a Gaze configuration, computed from entry counts and field
// widths.
func (g *Gaze) StorageBreakdown() []StorageItem {
	cfg := g.cfg
	offBits := log2(g.blocks) // 6 bits for 64-block regions

	// Field widths from Table I.
	const (
		regionTagBits = 36
		lruFTATBits   = 3
		hashedPCBits  = 12
		phtLRUBits    = 2
		dpctLRUBits   = 3
	)
	ftEntryBits := regionTagBits + lruFTATBits + hashedPCBits + offBits
	atEntryBits := regionTagBits + lruFTATBits + hashedPCBits + 1 + // stride flag
		2*offBits + // trigger & second
		2*offBits + // last & penultimate
		g.blocks + // bit vector
		1 // valid
	phtTagBits := offBits // second offset as tag
	if cfg.MatchAccesses > 2 {
		phtTagBits = offBits * (cfg.MatchAccesses - 1)
	}
	phtEntryBits := phtTagBits + phtLRUBits + g.blocks
	dpctEntryBits := hashedPCBits + dpctLRUBits
	pbEntryBits := regionTagBits + lruFTATBits + 2*g.blocks // 2b per offset

	items := []StorageItem{
		{"FT", fmt.Sprintf("%d-way; %d entries", cfg.FTWays, cfg.FTEntries),
			cfg.FTEntries * ftEntryBits},
		{"AT", fmt.Sprintf("%d-way; %d entries", cfg.ATWays, cfg.ATEntries),
			cfg.ATEntries * atEntryBits},
		{"PHT", fmt.Sprintf("%d-way; %d entries", cfg.PHTWays, cfg.PHTEntries),
			cfg.PHTEntries * phtEntryBits},
		{"DPCT", fmt.Sprintf("fully-assoc; %d entries", cfg.DPCTEntries),
			cfg.DPCTEntries * dpctEntryBits},
		{"PB", fmt.Sprintf("%d entries", cfg.PBEntries),
			cfg.PBEntries * pbEntryBits},
	}
	return items
}

// TotalStorageBytes sums the breakdown (Table I reports 4.46KB for the
// default configuration; the DC's 3 bits are omitted there too).
func (g *Gaze) TotalStorageBytes() float64 {
	var bits int
	for _, item := range g.StorageBreakdown() {
		bits += item.Bits
	}
	return float64(bits) / 8
}

func log2(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}
