// Package workload synthesizes the instruction traces the evaluation runs
// on. The paper uses 201 captured traces from SPEC06, SPEC17, Ligra,
// PARSEC and CloudSuite (plus GAP and QMM supplements); those binary
// traces are not redistributable, so this package generates deterministic
// synthetic equivalents that reproduce the pattern *structure* each suite
// is cited for:
//
//   - dense spatial streaming (bwaves/lbm/leslie3d, Ligra init phases),
//   - recurring spatial footprints with internal temporal order —
//     including trigger-offset-ambiguous families (the fotonik3d example
//     of Fig 2 and the CloudSuite behaviour of Fig 1),
//   - interleaved streaming + irregular access (Ligra/GAP compute phases,
//     the §III-C motivation for the two-stage streaming controller),
//   - pointer chasing with little spatial structure (mcf, canneal),
//   - low-data-MPKI server code (QMM srv).
//
// Every named workload is generated from its name alone (the name seeds
// the PRNG), so experiments are reproducible bit for bit.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/rng"
	"repro/internal/trace"
)

// Info identifies one catalogue entry.
type Info struct {
	// Name is the trace name, mirroring the paper's trace naming
	// (e.g. "bwaves_s-2609", "PageRank-61", "cassandra-p0c0").
	Name string
	// Suite is one of "spec06", "spec17", "ligra", "parsec", "cloud",
	// "gap", "qmm.srv", "qmm.clt".
	Suite string
}

// Generate produces the first n records of the named workload. It returns
// an error for unknown names.
func Generate(name string, n int) ([]trace.Record, error) {
	spec, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown trace %q", name)
	}
	g := newGen(name, spec)
	return g.records(n), nil
}

// MustGenerate is Generate for known-good names; it panics on error.
func MustGenerate(name string, n int) []trace.Record {
	recs, err := Generate(name, n)
	if err != nil {
		panic(err)
	}
	return recs
}

// NewReader returns a looping trace reader over the first n generated
// records of the named workload, ready to hand to sim.CoreSpec.
func NewReader(name string, n int) (*trace.Looping, error) {
	recs, err := Generate(name, n)
	if err != nil {
		return nil, err
	}
	return trace.NewLooping(trace.NewSliceReader(recs)), nil
}

// Catalogue lists every named workload, ordered by suite then name.
func Catalogue() []Info {
	out := make([]Info, 0, len(registry))
	for name, spec := range registry {
		out = append(out, Info{Name: name, Suite: spec.suite})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Suite != out[j].Suite {
			return out[i].Suite < out[j].Suite
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Suite returns the catalogue entries of one suite.
func Suite(suite string) []Info {
	var out []Info
	for _, info := range Catalogue() {
		if info.Suite == suite {
			out = append(out, info)
		}
	}
	return out
}

// Suites returns all suite identifiers in display order.
func Suites() []string {
	return []string{"spec06", "spec17", "ligra", "parsec", "cloud", "gap", "qmm.srv", "qmm.clt"}
}

// Exists reports whether a trace name resolves: in the synthetic
// catalogue, or through a registered Source (e.g. an ingested real trace).
func Exists(name string) bool {
	if _, ok := registry[name]; ok {
		return true
	}
	return sourceFor(name) != nil
}

// produce yields the first n records of a trace name from wherever it
// resolves: the synthetic catalogue generates them, registered Sources
// load them. It is the supply behind Materialize.
func produce(name string, n int) ([]trace.Record, error) {
	if _, ok := registry[name]; ok {
		return Generate(name, n)
	}
	if s := sourceFor(name); s != nil {
		return s.Load(name, n)
	}
	return nil, fmt.Errorf("workload: unknown trace %q", name)
}

func newGen(name string, spec profile) *gen {
	return &gen{
		name: name,
		spec: spec,
		r:    rng.NewFromString(name),
	}
}
