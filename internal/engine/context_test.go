package engine

import (
	"context"
	"errors"
	"testing"
)

// distinctJobs builds n jobs that cannot coalesce (distinct PQ capacities),
// so a cancellation test gets n real simulations to interrupt.
func distinctJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			Traces:    []string{"lbm-1274"},
			L1:        []string{"IP-stride"},
			Overrides: Overrides{PQCapacity: 8 + i},
		}
	}
	return jobs
}

func TestRunContextPreCanceled(t *testing.T) {
	e := New(Options{Scale: tiny})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.RunContext(ctx, tinyJob("IP-stride")); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c := e.Counters(); c.Simulated != 0 {
		t.Errorf("simulated = %d, want 0 — a canceled context must not start work", c.Simulated)
	}
}

// TestRunAllContextCancelStopsAtJobBoundary cancels a single-shard sweep
// from its first progress callback and asserts the shard stops there: the
// error is context.Canceled, far fewer jobs completed than were
// submitted, and the skipped slots are zero results.
func TestRunAllContextCancelStopsAtJobBoundary(t *testing.T) {
	e := New(Options{Scale: tiny, Workers: 1})
	jobs := distinctJobs(12)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var completions int
	results, err := e.RunAllContext(ctx, jobs, func(p Progress) {
		completions++
		cancel()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if completions >= len(jobs) {
		t.Fatalf("all %d jobs completed despite cancellation", len(jobs))
	}
	done := 0
	for _, r := range results {
		if r.MeanIPC() > 0 {
			done++
		}
	}
	if done != completions {
		t.Errorf("%d non-zero results, %d progress completions", done, completions)
	}
	if c := e.Counters(); int(c.Simulated) >= len(jobs) {
		t.Errorf("simulated = %d, want < %d", c.Simulated, len(jobs))
	}
}

// TestRunAllContextPartialResultsResume: a cancelled sweep's completed
// jobs stay memoized, so resubmitting finishes the remainder instead of
// recomputing from scratch.
func TestRunAllContextPartialResultsResume(t *testing.T) {
	e := New(Options{Scale: tiny, Workers: 1})
	jobs := distinctJobs(6)
	ctx, cancel := context.WithCancel(context.Background())
	e.RunAllContext(ctx, jobs, func(p Progress) { cancel() }) //nolint:errcheck

	before := e.Counters()
	if before.Simulated == 0 {
		t.Fatal("cancellation raced ahead of the first completion")
	}
	results, err := e.RunAllContext(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.MeanIPC() <= 0 {
			t.Errorf("job %d missing after resume", i)
		}
	}
	after := e.Counters()
	if after.MemoHits < before.Simulated {
		t.Errorf("memo hits = %d, want >= %d — completed work must be reused",
			after.MemoHits, before.Simulated)
	}
	if got := after.Simulated; got != uint64(len(jobs)) {
		t.Errorf("total simulated = %d, want %d (each job exactly once)", got, len(jobs))
	}
}
