// Observability wiring shared by server and worker modes: the process
// logger, the span tracer with its optional NDJSON export file, and the
// private debug listener.
//
// The debug listener (-debug-addr) is deliberately a separate socket
// from the API: profiling endpoints and raw expvar leak operational
// detail (memory layout, command line, internals) that the public,
// unauthenticated API must never expose. Bind it to localhost or an
// operator-only interface. Example:
//
//	gazeserve -debug-addr localhost:6060 &
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
package main

import (
	"expvar"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"repro/internal/obs"
)

// buildTracer assembles the span tracer, appending NDJSON span lines to
// logPath when set. The returned cleanup closes the log file and is safe
// to call with no file open.
func buildTracer(ringSize int, logPath string, logger *slog.Logger) (*obs.Tracer, func(), error) {
	var w *os.File
	if logPath != "" {
		f, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, err
		}
		w = f
		logger.Info("span log open", "path", logPath)
	}
	opts := obs.TracerOptions{RingSize: ringSize}
	if w != nil {
		opts.Log = w
	}
	cleanup := func() {
		if w != nil {
			w.Close() //nolint:errcheck
		}
	}
	return obs.NewTracer(opts), cleanup, nil
}

// startDebugListener serves net/http/pprof and expvar on their own
// mux — never the public API mux — at addr.
func startDebugListener(addr string, logger *slog.Logger) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			logger.Error("debug listener failed", "addr", addr, "error", err)
		}
	}()
	logger.Info("debug listener on private mux", "addr", addr)
}
