package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/jobs"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/traceset"
	"repro/internal/workload"
)

// newTraceTestServer wires engine + trace registry + jobs manager the way
// cmd/gazeserve does: the registry is registered as a workload source (so
// ingested names simulate) and attached to the server (so they serve over
// HTTP). wrapCompile, when non-nil, decorates the jobs compiler — tests
// use it to hold a job in running deterministically.
func newTraceTestServer(t *testing.T, wrapCompile func(jobs.Compiler) jobs.Compiler) (*httptest.Server, *traceset.Registry) {
	t.Helper()
	reg, err := traceset.Open(t.TempDir(), traceset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	workload.ResetSources()
	workload.ResetTraceCache()
	workload.RegisterSource(reg)
	t.Cleanup(workload.ResetSources)
	t.Cleanup(workload.ResetTraceCache)

	eng := engine.New(engine.Options{Scale: tiny, Workers: 1})
	compile := Compiler(eng)
	if wrapCompile != nil {
		compile = wrapCompile(compile)
	}
	mgr, err := jobs.Open(jobs.Options{Engine: eng, Compile: compile, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng).AttachJobs(mgr).AttachTraces(reg).Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		mgr.Shutdown(ctx) //nolint:errcheck
	})
	return ts, reg
}

// externalTrace fabricates a "real captured trace": catalogue-generated
// records encoded in an external format.
func externalTrace(t *testing.T, name string, n int, f trace.Format) ([]trace.Record, []byte) {
	t.Helper()
	recs, err := workload.Generate(name, n)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteAll(&buf, f, recs); err != nil {
		t.Fatal(err)
	}
	return recs, buf.Bytes()
}

func uploadTrace(t *testing.T, ts *httptest.Server, payload []byte) (TraceUploadResponse, int) {
	t.Helper()
	r, err := http.Post(ts.URL+"/traces", "application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var resp TraceUploadResponse
	if r.StatusCode == http.StatusCreated || r.StatusCode == http.StatusOK {
		if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
			t.Fatal(err)
		}
	}
	return resp, r.StatusCode
}

// TestTraceUploadEndToEnd is the acceptance path: a gzip ChampSim-format
// trace uploaded over HTTP is listed, inspectable, exportable, runnable by
// name through sync /sweep AND the async jobs API (with content addresses
// agreeing), dedups a byte-different re-upload, and deletes cleanly.
func TestTraceUploadEndToEnd(t *testing.T) {
	ts, reg := newTraceTestServer(t, nil)
	recs, champsimGz := externalTrace(t, "leslie3d-134", 4_000, trace.FormatChampSimGz)

	// Upload the gzip ChampSim stream: 201 + manifest.
	resp, status := uploadTrace(t, ts, champsimGz)
	if status != http.StatusCreated {
		t.Fatalf("upload status = %d, want 201", status)
	}
	if resp.Records != len(recs) || resp.SourceFormat != trace.FormatChampSimGz {
		t.Fatalf("manifest = %+v", resp.Manifest)
	}
	if resp.Address != traceset.DigestRecords(recs) {
		t.Fatalf("address %s does not match the record digest", resp.Address)
	}
	name := resp.Name

	// Re-uploading the same logical trace as different bytes (raw GZTR
	// re-encoding) dedups: 200, same address, Deduplicated set.
	_, gztr := externalTrace(t, "leslie3d-134", 4_000, trace.FormatGZTR)
	if bytes.Equal(gztr, champsimGz) {
		t.Fatal("test premise broken: payloads should differ")
	}
	dedup, status := uploadTrace(t, ts, gztr)
	if status != http.StatusOK || !dedup.Deduplicated || dedup.Address != resp.Address {
		t.Fatalf("re-upload: status %d, %+v", status, dedup)
	}
	if reg.Len() != 1 {
		t.Fatalf("registry holds %d entries, want 1", reg.Len())
	}

	// Listed beside the catalogue under the ingested suite.
	var listing []struct{ Name, Suite string }
	r, err := http.Get(ts.URL + "/traces?suite=ingested")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if err := json.NewDecoder(r.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing) != 1 || listing[0].Name != name || listing[0].Suite != "ingested" {
		t.Fatalf("ingested listing = %+v", listing)
	}

	// Manifest endpoint.
	r, err = http.Get(ts.URL + "/traces/" + resp.Address)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var manifest TraceUploadResponse
	if err := json.NewDecoder(r.Body).Decode(&manifest); err != nil {
		t.Fatal(err)
	}
	if manifest.Name != name || manifest.Records != len(recs) {
		t.Fatalf("manifest endpoint = %+v", manifest)
	}

	// Export round-trips identical records in both gztr and champsim.
	for _, format := range []string{"", "?format=champsim"} {
		r, err := http.Get(ts.URL + "/traces/" + resp.Address + "/data" + format)
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(r.Body)
		r.Body.Close()
		if err != nil || r.StatusCode != http.StatusOK {
			t.Fatalf("export %q: status %d, %v", format, r.StatusCode, err)
		}
		rd, _, err := trace.Detect(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		got, err := trace.Collect(rd, 0)
		if err != nil || len(got) != len(recs) {
			t.Fatalf("export %q: %d records, err %v", format, len(got), err)
		}
		for i := range got {
			if got[i] != recs[i] {
				t.Fatalf("export %q: record %d differs", format, i)
			}
		}
	}

	// Sync sweep by name.
	var sweep SweepResponse
	pr := postJSON(t, ts.URL+"/sweep", SweepRequest{
		Traces: []string{name}, Prefetchers: []string{"Gaze"},
	}, &sweep)
	if pr.StatusCode != http.StatusOK {
		t.Fatalf("sweep status = %d", pr.StatusCode)
	}
	if len(sweep.Rows) != 1 || sweep.Rows[0].IPC <= 0 || sweep.Rows[0].Address == "" {
		t.Fatalf("sweep rows = %+v", sweep.Rows)
	}
	// The engine job's content address must fold in the trace digest: the
	// canonical encoding of the row's job carries trace_digests.
	job := engine.Job{Traces: []string{name}, L1: []string{"Gaze"}}
	if sweep.Rows[0].Address != job.ContentAddress(tiny) {
		t.Errorf("row address %s != recomputed content address", sweep.Rows[0].Address)
	}
	if !bytes.Contains([]byte(job.CanonicalJSON(tiny)), []byte(`"trace_digests":["`+resp.Address+`"]`)) {
		t.Errorf("canonical encoding lacks the trace digest: %s", job.CanonicalJSON(tiny))
	}

	// Async jobs API on the same request coalesces onto the same engine
	// work and returns the same rows.
	st, jr := submitJob(t, ts, JobSubmitRequest{
		Type:    "sweep",
		Request: mustRaw(t, SweepRequest{Traces: []string{name}, Prefetchers: []string{"Gaze"}}),
	})
	if jr.StatusCode != http.StatusAccepted {
		t.Fatalf("job submit status = %d", jr.StatusCode)
	}
	waitJobState(t, ts, st.ID, string(jobs.Succeeded))
	rr, err := http.Get(ts.URL + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Body.Close()
	var jobSweep SweepResponse
	if err := json.NewDecoder(rr.Body).Decode(&jobSweep); err != nil {
		t.Fatal(err)
	}
	if len(jobSweep.Rows) != 1 || jobSweep.Rows[0].Address != sweep.Rows[0].Address {
		t.Fatalf("async rows = %+v, want the sync row", jobSweep.Rows)
	}
	if jobSweep.Rows[0].IPC != sweep.Rows[0].IPC {
		t.Errorf("async IPC %v != sync IPC %v", jobSweep.Rows[0].IPC, sweep.Rows[0].IPC)
	}

	// Delete (no live references) and verify the name stops resolving.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/traces/"+resp.Address, nil)
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()
	if dr.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status = %d, want 204", dr.StatusCode)
	}
	if mr, err := http.Get(ts.URL + "/traces/" + resp.Address); err == nil {
		mr.Body.Close()
		if mr.StatusCode != http.StatusNotFound {
			t.Errorf("manifest after delete: %d, want 404", mr.StatusCode)
		}
	}
	pr = postJSON(t, ts.URL+"/sweep", SweepRequest{Traces: []string{name}, Prefetchers: []string{"Gaze"}}, nil)
	if pr.StatusCode != http.StatusBadRequest {
		t.Errorf("sweep over deleted trace: %d, want 400", pr.StatusCode)
	}
}

// TestTraceDeleteWhileReferenced holds a background job in running (its
// Finalize blocks on a gate) and checks DELETE answers 409 until the job
// completes, then 204.
func TestTraceDeleteWhileReferenced(t *testing.T) {
	gate := make(chan struct{})
	ts, _ := newTraceTestServer(t, func(base jobs.Compiler) jobs.Compiler {
		return func(spec jobs.Spec) (*jobs.Plan, error) {
			plan, err := base(spec)
			if err != nil {
				return nil, err
			}
			inner := plan.Finalize
			plan.Finalize = func(results []sim.Result) any {
				<-gate
				return inner(results)
			}
			return plan, nil
		}
	})
	_, payload := externalTrace(t, "lbm-1274", 2_000, trace.FormatChampSimGz)
	resp, status := uploadTrace(t, ts, payload)
	if status != http.StatusCreated {
		t.Fatalf("upload status = %d", status)
	}

	st, _ := submitJob(t, ts, JobSubmitRequest{
		Type:    "simulate",
		Request: mustRaw(t, SimulateRequest{Trace: resp.Name, Prefetcher: "Gaze"}),
	})
	waitJobState(t, ts, st.ID, string(jobs.Running))

	del := func() int {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/traces/"+resp.Address, nil)
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		return r.StatusCode
	}
	if got := del(); got != http.StatusConflict {
		t.Fatalf("delete while running = %d, want 409", got)
	}
	close(gate)
	waitJobState(t, ts, st.ID, string(jobs.Succeeded))
	if got := del(); got != http.StatusNoContent {
		t.Errorf("delete after completion = %d, want 204", got)
	}
}

// TestConcurrentTraceUploadHammer posts one payload from many goroutines
// (run under -race in CI): exactly one 201, one registry entry, and one
// address across all responses.
func TestConcurrentTraceUploadHammer(t *testing.T) {
	ts, reg := newTraceTestServer(t, nil)
	_, payload := externalTrace(t, "mcf_s-1554", 3_000, trace.FormatChampSim)

	const workers = 12
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		created int
		addrs   = make(map[string]bool)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, status := uploadTrace(t, ts, payload)
			mu.Lock()
			defer mu.Unlock()
			switch status {
			case http.StatusCreated:
				created++
			case http.StatusOK:
			default:
				t.Errorf("upload status = %d", status)
				return
			}
			addrs[resp.Address] = true
		}()
	}
	wg.Wait()
	if created != 1 {
		t.Errorf("got %d 201s, want exactly 1", created)
	}
	if len(addrs) != 1 {
		t.Errorf("observed %d distinct addresses", len(addrs))
	}
	if reg.Len() != 1 {
		t.Errorf("registry holds %d entries, want 1", reg.Len())
	}
}

func TestTraceUploadRejectsBadPayloads(t *testing.T) {
	ts, _ := newTraceTestServer(t, nil)
	for name, payload := range map[string][]byte{
		"empty":         {},
		"garbage lines": []byte("hello world this is not a trace\n"),
		"torn gztr":     {'G', 'Z', 'T', 'R', 1, 0x80},
	} {
		_, status := uploadTrace(t, ts, payload)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, status)
		}
	}
}

func TestTraceEndpointsWithoutRegistry(t *testing.T) {
	ts := newTestServer(t)
	if _, status := uploadTrace(t, ts, []byte("x")); status != http.StatusServiceUnavailable {
		t.Errorf("upload without registry = %d, want 503", status)
	}
	r, err := http.Get(ts.URL + "/traces/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("manifest without registry = %d, want 503", r.StatusCode)
	}
	// The catalogue listing keeps working, with no ingested suite.
	r, err = http.Get(ts.URL + "/traces?suite=ingested")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("?suite=ingested without registry = %d, want 400", r.StatusCode)
	}
}

func TestStatsReportsTraceRegistry(t *testing.T) {
	ts, _ := newTraceTestServer(t, nil)
	_, payload := externalTrace(t, "lbm-1274", 1_000, trace.FormatGZTRGz)
	if _, status := uploadTrace(t, ts, payload); status != http.StatusCreated {
		t.Fatal("upload failed")
	}
	r, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(r.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if got := string(raw["ingested_traces"]); got != "1" {
		t.Errorf("ingested_traces = %s, want 1", got)
	}
	if _, ok := raw["trace_cache_evictions"]; !ok {
		t.Error("stats response missing trace_cache_evictions")
	}
	if _, ok := raw["trace_registry_dir"]; !ok {
		t.Error("stats response missing trace_registry_dir")
	}

	// Without a registry: null, mirroring store_entries.
	plain := newTestServer(t)
	r2, err := http.Get(plain.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var raw2 map[string]json.RawMessage
	if err := json.NewDecoder(r2.Body).Decode(&raw2); err != nil {
		t.Fatal(err)
	}
	if got := string(raw2["ingested_traces"]); got != "null" {
		t.Errorf("no registry: ingested_traces = %s, want null", got)
	}
}

// TestTraceUseTracker covers the sync-request reference counter directly.
func TestTraceUseTracker(t *testing.T) {
	var u traceUse
	name := workload.IngestedName("aa11")
	jobsRef := []engine.Job{
		{Traces: []string{name, "lbm-1274"}},
		{Traces: []string{name}},
	}
	if u.inUse(name) {
		t.Fatal("fresh tracker reports in use")
	}
	rel1 := u.acquire(jobsRef)
	rel2 := u.acquire(jobsRef[:1])
	if !u.inUse(name) {
		t.Fatal("acquired trace not in use")
	}
	if u.inUse("lbm-1274") {
		t.Error("catalogue trace tracked")
	}
	rel1()
	if !u.inUse(name) {
		t.Fatal("released too early")
	}
	rel2()
	rel2() // idempotent-ish: double release must not underflow into in-use
	if u.inUse(name) {
		t.Fatal("release did not clear the reference")
	}
}
