package trace

// Records is the random-access view of a materialized trace slab — the
// seam that lets the simulator's step loop iterate a heap []Record and an
// mmap-backed columnar slab (Columns) through one code path. Implementations
// are immutable and safe for concurrent readers; At must not allocate, so
// the zero-alloc step loop holds over every slab kind.
type Records interface {
	// Len returns the number of records in the slab.
	Len() int
	// At returns record i. i must be in [0, Len()).
	At(i int) Record
}

// RecSlice adapts a heap-resident []Record slab to the Records seam.
type RecSlice []Record

// Len implements Records.
func (r RecSlice) Len() int { return len(r) }

// At implements Records.
func (r RecSlice) At(i int) Record { return r[i] }
