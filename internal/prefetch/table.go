package prefetch

// Table is a generic set-associative LRU metadata table — the structure
// behind FT, AT, PHT, Bingo/SMS history tables and the prefetch buffer.
// Entries hold a caller-defined payload V and are located by (set, tag).
//
// Storage is structure-of-arrays: tags and LRU stamps are packed in their
// own slices so the per-way scans every prefetcher runs on every training
// access stream through contiguous words, and payloads are only touched
// for the way that matches. Validity is encoded in the stamp (0 =
// invalid; live entries always stamp >= 1 because the clock
// pre-increments), which also makes victim selection a single argmin —
// zeros lose to nothing and first-among-ties picks the first free way,
// matching the historical scan exactly.
type Table[V any] struct {
	sets  int
	ways  int
	tags  []uint64
	lru   []uint64
	vals  []V
	clock uint64
}

// NewTable allocates a sets×ways table. sets must be a power of two.
func NewTable[V any](sets, ways int) *Table[V] {
	if sets <= 0 || sets&(sets-1) != 0 || ways <= 0 {
		panic("prefetch: table sets must be a positive power of two, ways positive")
	}
	n := sets * ways
	return &Table[V]{
		sets: sets, ways: ways,
		tags: make([]uint64, n),
		lru:  make([]uint64, n),
		vals: make([]V, n),
	}
}

// Sets returns the number of sets.
func (t *Table[V]) Sets() int { return t.sets }

// Ways returns the associativity.
func (t *Table[V]) Ways() int { return t.ways }

// SetIndex maps an arbitrary key to a set index.
func (t *Table[V]) SetIndex(key uint64) int { return int(key) & (t.sets - 1) }

// base returns the index of way 0 of setIdx.
func (t *Table[V]) base(setIdx int) int {
	return (setIdx & (t.sets - 1)) * t.ways
}

// find returns the table index of the valid (set, tag) entry, or -1. A
// stale tag word on an invalidated way cannot false-match because
// validity is re-checked from the stamp.
func (t *Table[V]) find(base int, tag uint64) int {
	tags := t.tags[base : base+t.ways]
	for i, tg := range tags {
		if tg == tag && t.lru[base+i] != 0 {
			return base + i
		}
	}
	return -1
}

// Lookup finds (set, tag) and refreshes its LRU position. It returns a
// pointer to the payload, valid until the next Insert into the same set.
func (t *Table[V]) Lookup(setIdx int, tag uint64) (*V, bool) {
	t.clock++
	if i := t.find(t.base(setIdx), tag); i >= 0 {
		t.lru[i] = t.clock
		return &t.vals[i], true
	}
	return nil, false
}

// Peek finds (set, tag) without refreshing LRU.
func (t *Table[V]) Peek(setIdx int, tag uint64) (*V, bool) {
	if i := t.find(t.base(setIdx), tag); i >= 0 {
		return &t.vals[i], true
	}
	return nil, false
}

// Insert places a payload at (set, tag), evicting the LRU entry of the set
// when full. It returns the evicted payload (zero V when nothing valid was
// displaced) and whether an eviction happened.
func (t *Table[V]) Insert(setIdx int, tag uint64, val V) (evicted V, wasEvict bool) {
	t.clock++
	base := t.base(setIdx)
	if i := t.find(base, tag); i >= 0 {
		t.vals[i] = val
		t.lru[i] = t.clock
		return evicted, false
	}
	// Victim: first free way, else LRU (zero stamps mark free ways and
	// win the argmin first, like the historical first-invalid scan).
	lru := t.lru[base : base+t.ways]
	victim, oldest := 0, lru[0]
	for i := 1; i < len(lru); i++ {
		if lru[i] < oldest {
			victim, oldest = i, lru[i]
		}
	}
	i := base + victim
	if oldest != 0 {
		evicted, wasEvict = t.vals[i], true
	}
	t.tags[i] = tag
	t.lru[i] = t.clock
	t.vals[i] = val
	return evicted, wasEvict
}

// Invalidate removes (set, tag); it reports whether an entry was removed
// and returns the removed payload.
func (t *Table[V]) Invalidate(setIdx int, tag uint64) (V, bool) {
	var zero V
	if i := t.find(t.base(setIdx), tag); i >= 0 {
		v := t.vals[i]
		t.tags[i] = 0
		t.lru[i] = 0
		t.vals[i] = zero
		return v, true
	}
	return zero, false
}

// ScanSet iterates the valid entries of one set without touching LRU
// state; fn returning false stops the scan. Bingo-style dual-tag lookups
// (exact long-event match first, then approximate short-event match) use
// this to inspect all ways of a set.
func (t *Table[V]) ScanSet(setIdx int, fn func(tag uint64, val *V) bool) {
	base := t.base(setIdx)
	for i := base; i < base+t.ways; i++ {
		if t.lru[i] != 0 {
			if !fn(t.tags[i], &t.vals[i]) {
				return
			}
		}
	}
}

// TouchEntry refreshes the LRU position of (set, tag) if present.
func (t *Table[V]) TouchEntry(setIdx int, tag uint64) {
	t.clock++
	if i := t.find(t.base(setIdx), tag); i >= 0 {
		t.lru[i] = t.clock
	}
}

// Range calls fn for every valid entry; fn may mutate the payload through
// the pointer. Iteration order is unspecified.
func (t *Table[V]) Range(fn func(setIdx int, tag uint64, val *V)) {
	for i := range t.lru {
		if t.lru[i] != 0 {
			fn(i/t.ways, t.tags[i], &t.vals[i])
		}
	}
}

// Len returns the number of valid entries.
func (t *Table[V]) Len() int {
	n := 0
	for i := range t.lru {
		if t.lru[i] != 0 {
			n++
		}
	}
	return n
}

// Clear invalidates everything.
func (t *Table[V]) Clear() {
	var zero V
	clear(t.tags)
	clear(t.lru)
	for i := range t.vals {
		t.vals[i] = zero
	}
}
