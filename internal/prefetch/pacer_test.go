package prefetch

import "testing"

func TestPacerDrainBound(t *testing.T) {
	p := NewPacer(16, 3)
	for i := 0; i < 10; i++ {
		p.Push(Request{VLine: uint64(i+1) * 64})
	}
	var got []Request
	p.Drain(func(r Request) { got = append(got, r) })
	if len(got) != 3 {
		t.Errorf("drained %d, want 3", len(got))
	}
	if p.Len() != 7 {
		t.Errorf("Len = %d, want 7", p.Len())
	}
	// FIFO order.
	if got[0].VLine != 64 || got[2].VLine != 3*64 {
		t.Errorf("drain order wrong: %v", got)
	}
}

func TestPacerCapacityDrops(t *testing.T) {
	p := NewPacer(2, 1)
	p.Push(Request{VLine: 64})
	p.Push(Request{VLine: 128})
	p.Push(Request{VLine: 192})
	if p.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", p.Dropped)
	}
}

func TestPacerDupMerge(t *testing.T) {
	p := NewPacer(8, 8)
	p.Push(Request{VLine: 64, Level: LevelL2})
	p.Push(Request{VLine: 64, Level: LevelL1})
	if p.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (merged)", p.Len())
	}
	var got []Request
	p.Drain(func(r Request) { got = append(got, r) })
	if got[0].Level != LevelL1 {
		t.Error("duplicate merge did not promote level")
	}
}

func TestPacerEmptyDrain(t *testing.T) {
	p := NewPacer(4, 4)
	n := 0
	p.Drain(func(Request) { n++ })
	if n != 0 {
		t.Error("drained from empty pacer")
	}
}

func TestPacerPanicsOnBadConfig(t *testing.T) {
	for _, c := range []struct{ cap, drain int }{{0, 1}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPacer(%d,%d) did not panic", c.cap, c.drain)
				}
			}()
			NewPacer(c.cap, c.drain)
		}()
	}
}
