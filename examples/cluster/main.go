// Example cluster runs a coordinator and two workers fully in-process
// and proves the subsystem's core claim: a sweep distributed across
// worker nodes — one of which dies mid-flight — lands byte-for-byte the
// same result store and the same analytics ETag as a single-node run.
//
//  1. a coordinator node starts exactly as `gazeserve -coordinator`
//     wires it: engine + result store + jobs manager whose Execute hook
//     dispatches through the cluster lease table;
//  2. two workers register over HTTP, lease units, execute them with
//     their own engines and upload result documents back;
//  3. POST /jobs submits a sweep; while its NDJSON event stream reports
//     progress, worker-1 is killed — its leases expire and requeue, and
//     worker-2 finishes the job alone;
//  4. GET /cluster shows the roster and the lease/release/result
//     counters that recorded the recovery;
//  5. the same sweep runs on an isolated single-node server, and the
//     two result-store directories and analytics ETags are compared.
//
// Against separately running `gazeserve -coordinator` and `gazeserve
// -worker <url>` processes the same requests work unchanged.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/jobs"
	"repro/internal/server"
)

func main() {
	// --- 1. Coordinator node: engine + store + jobs, cluster-dispatched.
	coordDir, err := os.MkdirTemp("", "cluster-coord-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(coordDir)
	store, err := engine.Open(filepath.Join(coordDir, "store"))
	if err != nil {
		log.Fatal(err)
	}
	eng := engine.New(engine.Options{Scale: engine.Quick, Store: store})
	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{
		Engine:        eng,
		LeaseTTL:      3 * time.Second,
		MaxLeaseBatch: 1, // one unit per lease call spreads a small sweep across nodes
	})
	mgr, err := jobs.Open(jobs.Options{
		Engine:  eng,
		Compile: server.Compiler(eng),
		Dir:     filepath.Join(coordDir, "jobs"),
		Execute: coord.Execute,
	})
	if err != nil {
		log.Fatal(err)
	}
	tickCtx, stopTicks := context.WithCancel(context.Background())
	defer stopTicks()
	go func() {
		t := time.NewTicker(coord.LeaseTTL() / 2)
		defer t.Stop()
		for {
			select {
			case <-tickCtx.Done():
				return
			case <-t.C:
				coord.Tick()
			}
		}
	}()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, server.New(eng).AttachJobs(mgr).AttachCluster(coord).Handler()) //nolint:errcheck
	base := "http://" + ln.Addr().String()
	fmt.Println("coordinator listening on", base)

	// --- 2. Two workers, each with its own engine (no store of their
	// own: the coordinator's store is the authoritative one).
	cancel1, done1 := startWorker(base, "worker-1")
	cancel2, done2 := startWorker(base, "worker-2")
	defer func() { cancel2(); <-done2 }()

	// --- 3. Submit a sweep and kill worker-1 mid-flight.
	campaign := map[string]any{
		"type": "sweep",
		"request": map[string]any{
			"traces":      []string{"lbm-1274", "bwaves-1963"},
			"prefetchers": []string{"IP-stride", "Gaze"},
		},
	}
	var job server.JobStatus
	post(base+"/jobs", campaign, &job)
	fmt.Printf("\nPOST /jobs → %s (%s)\n", job.ID[:12], job.State)

	fmt.Println("GET /jobs/" + job.ID[:12] + "/events:")
	resp, err := http.Get(base + "/jobs/" + job.ID + "/events")
	if err != nil {
		log.Fatal(err)
	}
	killed := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev server.JobStatus
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s %2d/%2d done\n", ev.State, ev.Progress.Done, ev.Progress.Total)
		if !killed && ev.Progress.Done >= 1 {
			killed = true
			cancel1()
			<-done1
			fmt.Println("  ** worker-1 killed — its leases requeue to worker-2 **")
		}
	}
	resp.Body.Close()
	get(base+"/jobs/"+job.ID, &job)
	if job.State != string(jobs.Succeeded) {
		log.Fatalf("job finished %s, want succeeded", job.State)
	}

	var result server.SweepResponse
	get(base+"/jobs/"+job.ID+"/result", &result)
	fmt.Println("\nGET /jobs/{id}/result — every row carries its content address:")
	for _, row := range result.Rows {
		fmt.Printf("  %-12s %-10s speedup %.3f  %s\n",
			row.Traces[0], row.Prefetcher, row.Speedup, row.Address[:16])
	}

	// --- 4. The roster and counters recorded the recovery.
	var info cluster.Info
	get(base+"/cluster", &info)
	fmt.Printf("\nGET /cluster: %d worker(s) registered", len(info.Workers))
	for _, w := range info.Workers {
		fmt.Printf("  [%s conc=%d]", w.Name, w.Concurrency)
	}
	c := info.Counters
	fmt.Printf("\n  leases=%d releases=%d results=%d duplicates=%d failures=%d\n",
		c.Leases, c.Releases, c.Results, c.DuplicateResults, c.Failures)

	// --- 5. The single-node control: same sweep, one process, no
	// cluster anywhere. Stores and analytics ETags must agree exactly.
	localDir, err := os.MkdirTemp("", "cluster-local-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(localDir)
	localStore, err := engine.Open(filepath.Join(localDir, "store"))
	if err != nil {
		log.Fatal(err)
	}
	localEng := engine.New(engine.Options{Scale: engine.Quick, Store: localStore})
	localLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(localLn, server.New(localEng).Handler()) //nolint:errcheck
	localBase := "http://" + localLn.Addr().String()

	var localResult server.SweepResponse
	post(localBase+"/sweep", campaign["request"], &localResult)

	clusterFiles := snapshot(filepath.Join(coordDir, "store"))
	localFiles := snapshot(filepath.Join(localDir, "store"))
	if len(clusterFiles) == 0 {
		log.Fatal("cluster run committed no store entries")
	}
	same := len(clusterFiles) == len(localFiles)
	for rel, data := range clusterFiles {
		if localFiles[rel] != data {
			same = false
		}
	}
	fmt.Printf("\nstore comparison: %d cluster entries vs %d local — byte-identical: %v\n",
		len(clusterFiles), len(localFiles), same)

	query := "/analytics/speedup?traces=lbm-1274,bwaves-1963&prefetchers=IP-stride,Gaze"
	ct, lt := etag(base+query), etag(localBase+query)
	fmt.Printf("analytics ETag: cluster %s, local %s — equal: %v\n", ct, lt, ct == lt)
	if !same || ct != lt {
		log.Fatal("cluster run diverged from the single-node control")
	}

	if err := mgr.Shutdown(context.Background()); err != nil {
		log.Fatal(err)
	}
}

// startWorker boots an in-process cluster worker against base and
// returns its kill switch plus a channel closed once it has fully
// stopped.
func startWorker(base, name string) (context.CancelFunc, chan struct{}) {
	w := cluster.NewWorker(cluster.WorkerOptions{
		Client:       cluster.NewClient(base, cluster.ClientOptions{Backoff: 50 * time.Millisecond}),
		Engine:       engine.New(engine.Options{Scale: engine.Quick}),
		Concurrency:  1,
		Name:         name,
		PollInterval: 50 * time.Millisecond,
		Logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := w.Run(ctx); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}()
	return cancel, done
}

// snapshot maps relative path → contents for every record under a
// store directory.
func snapshot(dir string) map[string]string {
	out := make(map[string]string)
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".json" {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		out[rel] = string(data)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	return out
}

func etag(url string) string {
	r, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: status %d", url, r.StatusCode)
	}
	return r.Header.Get("ETag")
}

func post(url string, req, resp any) {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode >= 300 {
		log.Fatalf("POST %s: status %d", url, r.StatusCode)
	}
	if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
		log.Fatal(err)
	}
}

func get(url string, resp any) {
	r, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: status %d", url, r.StatusCode)
	}
	if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
		log.Fatal(err)
	}
}
