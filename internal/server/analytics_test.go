package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/engine"
)

// newHTTPServer serves an assembled *Server for tests that need direct
// access to its internals alongside the HTTP face.
func newHTTPServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// getAnalytics issues one GET with an optional If-None-Match, returning
// the response (body decoded into doc when 200 and doc != nil).
func getAnalytics(t *testing.T, url, inm string, doc any) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Body.Close() })
	if doc != nil && r.StatusCode == http.StatusOK {
		if err := json.NewDecoder(r.Body).Decode(doc); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

// TestAnalyticsMatrixLifecycle walks the central contract: an empty
// matrix names the grid but completes no cells; completing a result
// changes the ETag and fills its cell; a matching If-None-Match answers
// 304 without a body.
func TestAnalyticsMatrixLifecycle(t *testing.T) {
	ts := newTestServer(t)
	url := ts.URL + "/analytics/matrix?traces=lbm-1274&prefetchers=Gaze"

	var before MatrixResponse
	r := getAnalytics(t, url, "", &before)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", r.StatusCode)
	}
	if r.Header.Get("Content-Type") != "application/json" {
		t.Errorf("content type = %q", r.Header.Get("Content-Type"))
	}
	etag := r.Header.Get("ETag")
	if etag == "" || etag[0] != '"' {
		t.Fatalf("ETag = %q, want quoted entity tag", etag)
	}
	if before.ETag != etag {
		t.Errorf("body etag %q != header %q", before.ETag, etag)
	}
	if before.SchemaVersion != AnalyticsSchemaVersion {
		t.Errorf("schema_version = %d", before.SchemaVersion)
	}
	if before.CellsTotal != 1 || before.CellsComplete != 0 {
		t.Fatalf("fresh server: cells = %d/%d, want 0/1", before.CellsComplete, before.CellsTotal)
	}
	if len(before.Cells) != 1 || before.Cells[0].Complete {
		t.Fatalf("fresh server cells = %+v", before.Cells)
	}
	if before.Cells[0].Address == "" || before.Cells[0].BaselineAddress == "" {
		t.Error("incomplete cell must still carry its content addresses")
	}

	// 304 for the empty document too — the ETag protocol doesn't care
	// whether anything completed yet.
	if r := getAnalytics(t, url, etag, nil); r.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match on empty matrix: status = %d, want 304", r.StatusCode)
	}

	// Complete the cell through the ordinary simulate path (which also
	// runs the baseline).
	var sim SimulateResponse
	if r := postJSON(t, ts.URL+"/simulate", SimulateRequest{Trace: "lbm-1274", Prefetcher: "Gaze"}, &sim); r.StatusCode != http.StatusOK {
		t.Fatalf("simulate: status = %d", r.StatusCode)
	}

	// The old tag must now miss (200 with a new tag), and the cell must
	// agree with the synchronous response.
	var after MatrixResponse
	r = getAnalytics(t, url, etag, &after)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("after completion: status = %d, want 200", r.StatusCode)
	}
	if r.Header.Get("ETag") == etag {
		t.Fatal("ETag unchanged after underlying result completed")
	}
	if after.ResultSet != before.ResultSet {
		t.Errorf("result_set changed (%q -> %q); it identifies the grid, not its completion", before.ResultSet, after.ResultSet)
	}
	if after.CellsComplete != 1 || !after.Cells[0].Complete {
		t.Fatalf("after completion: %+v", after.Cells)
	}
	cell := after.Cells[0]
	if cell.Address != sim.Address {
		t.Errorf("cell address %q != simulate address %q", cell.Address, sim.Address)
	}
	if cell.Speedup != sim.Speedup || cell.IPC != sim.IPC || cell.Accuracy != sim.Accuracy {
		t.Errorf("cell metrics diverge from /simulate: %+v vs %+v", cell, sim)
	}
	if g := after.GeomeanSpeedup["Gaze"]; g != sim.Speedup {
		t.Errorf("geomean over one cell = %v, want %v", g, sim.Speedup)
	}

	// And the new tag revalidates.
	if r := getAnalytics(t, url, r.Header.Get("ETag"), nil); r.StatusCode != http.StatusNotModified {
		t.Fatalf("new tag revalidation: status = %d, want 304", r.StatusCode)
	}
	// If-None-Match: * matches any current representation.
	if r := getAnalytics(t, url, "*", nil); r.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match: * status = %d, want 304", r.StatusCode)
	}
}

// TestAnalyticsETagGolden pins the change-detection contract: for a
// fixed URL the ETag is a pure function of the completed underlying
// result set — stable across requests and across server instances,
// unmoved by unrelated results, moved by grid results.
func TestAnalyticsETagGolden(t *testing.T) {
	ts := newTestServer(t)
	url := ts.URL + "/analytics/matrix?traces=lbm-1274,milc-127&prefetchers=Gaze"

	tag := func() string {
		t.Helper()
		r := getAnalytics(t, url, "", &MatrixResponse{})
		if r.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", r.StatusCode)
		}
		return r.Header.Get("ETag")
	}

	empty := tag()
	if again := tag(); again != empty {
		t.Fatalf("ETag not stable with no state change: %q vs %q", empty, again)
	}

	// A deterministic engine on a second server derives the identical tag:
	// nothing request- or process-unique leaks in.
	ts2 := newTestServer(t)
	r2 := getAnalytics(t, ts2.URL+"/analytics/matrix?traces=lbm-1274,milc-127&prefetchers=Gaze", "", nil)
	if got := r2.Header.Get("ETag"); got != empty {
		t.Errorf("fresh identical server ETag %q != %q", got, empty)
	}

	// Completing a result OUTSIDE the grid must not move the tag.
	postJSON(t, ts.URL+"/simulate", SimulateRequest{Trace: "bwaves-1963", Prefetcher: "Gaze"}, nil)
	if got := tag(); got != empty {
		t.Fatalf("ETag moved on unrelated completion: %q -> %q", empty, got)
	}

	// Completing each grid result moves it, to a fresh value every time.
	seen := map[string]bool{empty: true}
	for _, trace := range []string{"lbm-1274", "milc-127"} {
		postJSON(t, ts.URL+"/simulate", SimulateRequest{Trace: trace, Prefetcher: "Gaze"}, nil)
		got := tag()
		if seen[got] {
			t.Fatalf("ETag %q repeated after completing %s", got, trace)
		}
		seen[got] = true
	}
}

// TestAnalyticsResultSetPermutationInvariant pins result-set addressing:
// the address names the *set* of underlying jobs, so any spelling of the
// same grid — reordered trace or prefetcher lists — is one result set
// (and one cache entry), while a different grid is a different set.
func TestAnalyticsResultSetPermutationInvariant(t *testing.T) {
	ts := newTestServer(t)
	get := func(query string) MatrixResponse {
		t.Helper()
		var doc MatrixResponse
		r := getAnalytics(t, ts.URL+"/analytics/matrix?"+query, "", &doc)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("%s: status = %d", query, r.StatusCode)
		}
		return doc
	}

	base := get("traces=lbm-1274,milc-127&prefetchers=Gaze,IP-stride")
	for _, query := range []string{
		"traces=milc-127,lbm-1274&prefetchers=Gaze,IP-stride",
		"traces=lbm-1274,milc-127&prefetchers=IP-stride,Gaze",
		"prefetchers=IP-stride,Gaze&traces=milc-127,lbm-1274",
		"traces=lbm-1274,milc-127,lbm-1274&prefetchers=Gaze,IP-stride", // duplicate folds
	} {
		if got := get(query); got.ResultSet != base.ResultSet {
			t.Errorf("%s: result_set %q, want %q (permutation must not matter)", query, got.ResultSet, base.ResultSet)
		}
	}
	if got := get("traces=lbm-1274&prefetchers=Gaze,IP-stride"); got.ResultSet == base.ResultSet {
		t.Error("smaller grid shares the result set address")
	}
}

// TestAnalyticsSpeedupEndpoint exercises the condensed document.
func TestAnalyticsSpeedupEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var sim SimulateResponse
	postJSON(t, ts.URL+"/simulate", SimulateRequest{Trace: "lbm-1274", Prefetcher: "Gaze"}, &sim)

	var doc SpeedupResponse
	r := getAnalytics(t, ts.URL+"/analytics/speedup?traces=lbm-1274,milc-127&prefetchers=Gaze", "", &doc)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", r.StatusCode)
	}
	if doc.CellsTotal != 2 || doc.CellsComplete != 1 {
		t.Fatalf("cells = %d/%d, want 1/2", doc.CellsComplete, doc.CellsTotal)
	}
	if got := doc.Speedup["Gaze"]["lbm-1274"]; got != sim.Speedup {
		t.Errorf("speedup cell = %v, want %v", got, sim.Speedup)
	}
	if _, ok := doc.Speedup["Gaze"]["milc-127"]; ok {
		t.Error("incomplete cell present in speedup matrix")
	}
	if g := doc.GeomeanSpeedup["Gaze"]; g != sim.Speedup {
		t.Errorf("geomean = %v, want %v", g, sim.Speedup)
	}
	if r := getAnalytics(t, ts.URL+"/analytics/speedup?traces=lbm-1274,milc-127&prefetchers=Gaze", r.Header.Get("ETag"), nil); r.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation: status = %d, want 304", r.StatusCode)
	}
}

// TestAnalyticsMatrixSensitivity runs a two-point axis and checks the
// Fig 16-style aggregation.
func TestAnalyticsMatrixSensitivity(t *testing.T) {
	ts := newTestServer(t)
	url := ts.URL + "/analytics/matrix?traces=lbm-1274&prefetchers=Gaze&param=llc_mb_per_core&values=1,2"

	var doc MatrixResponse
	if r := getAnalytics(t, url, "", &doc); r.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", r.StatusCode)
	}
	if doc.CellsTotal != 2 || len(doc.Points) != 2 {
		t.Fatalf("cells_total = %d points = %v", doc.CellsTotal, doc.Points)
	}

	// Complete the llc=1 point via a sweep over the same axis.
	if r := postJSON(t, ts.URL+"/sweep", SweepRequest{
		Traces: []string{"lbm-1274"}, Prefetchers: []string{"Gaze"},
		Axis: &SweepAxis{Param: "llc_mb_per_core", Values: []float64{1}},
	}, nil); r.StatusCode != http.StatusOK {
		t.Fatalf("sweep: status = %d", r.StatusCode)
	}
	if r := getAnalytics(t, url, "", &doc); r.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", r.StatusCode)
	}
	if doc.CellsComplete != 1 {
		t.Fatalf("cells_complete = %d, want 1", doc.CellsComplete)
	}
	if len(doc.Sensitivity) != 1 || doc.Sensitivity[0].Value != 1 || doc.Sensitivity[0].Param != "llc_mb_per_core" {
		t.Fatalf("sensitivity = %+v", doc.Sensitivity)
	}
	if doc.GeomeanSpeedup != nil {
		t.Error("axis document must report sensitivity, not flat geomeans")
	}
}

func TestAnalyticsValidation(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		path string
		want int
	}{
		{"/analytics/matrix?traces=lbm-1274&bogus=1", http.StatusBadRequest}, // unknown query param
		{"/analytics/matrix?traces=no-such-trace", http.StatusBadRequest},    // unknown trace
		{"/analytics/matrix?traces=lbm-1274&prefetchers=nope", http.StatusBadRequest},
		{"/analytics/matrix?traces=lbm-1274&values=1,2", http.StatusBadRequest},            // values without param
		{"/analytics/matrix?traces=lbm-1274&param=llc_mb_per_core", http.StatusBadRequest}, // param without values
		{"/analytics/matrix?traces=lbm-1274&param=llc_mb_per_core&values=abc", http.StatusBadRequest},
		{"/analytics/matrix?traces=lbm-1274&param=no_such_knob&values=1", http.StatusBadRequest},
		{"/analytics/matrix?suite=no-such-suite", http.StatusBadRequest},
		{"/analytics/speedup?traces=lbm-1274&param=llc_mb_per_core&values=1", http.StatusBadRequest}, // axis on speedup
		{"/analytics/matrix?traces=lbm-1274", http.StatusOK},                                         // default prefetcher roster
	}
	for _, tc := range cases {
		r, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Error string `json:"error"`
		}
		json.NewDecoder(r.Body).Decode(&body) //nolint:errcheck
		r.Body.Close()
		if r.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.path, r.StatusCode, tc.want)
		}
		if tc.want != http.StatusOK && body.Error == "" {
			t.Errorf("%s: error body missing", tc.path)
		}
	}
}

// TestAnalyticsCacheConcurrent hammers the analytics cache from many
// goroutines while simulations complete underneath it — run under -race
// this is the regression net for the cache's locking. Every response
// must be internally coherent: the body's etag equals the header's, and
// a complete cell count within the document's own bounds.
func TestAnalyticsCacheConcurrent(t *testing.T) {
	ts := newTestServer(t)
	traces := []string{"lbm-1274", "milc-127", "bwaves-1963"}
	url := ts.URL + "/analytics/matrix?traces=lbm-1274,milc-127,bwaves-1963&prefetchers=Gaze"

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for _, tr := range traces {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(SimulateRequest{Trace: tr, Prefetcher: "Gaze"})
			r, err := http.Post(ts.URL+"/simulate", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			r.Body.Close()
			if r.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("simulate %s: status %d", tr, r.StatusCode)
			}
		}()
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				r, err := http.Get(url)
				if err != nil {
					errs <- err
					return
				}
				var doc MatrixResponse
				err = json.NewDecoder(r.Body).Decode(&doc)
				r.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if doc.ETag != r.Header.Get("ETag") {
					errs <- fmt.Errorf("body etag %q != header %q", doc.ETag, r.Header.Get("ETag"))
					return
				}
				if doc.CellsComplete < 0 || doc.CellsComplete > doc.CellsTotal {
					errs <- fmt.Errorf("cells %d/%d out of bounds", doc.CellsComplete, doc.CellsTotal)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Steady state: everything complete, ETag settled, document cached.
	var doc MatrixResponse
	r := getAnalytics(t, url, "", &doc)
	if doc.CellsComplete != len(traces) {
		t.Fatalf("cells_complete = %d, want %d", doc.CellsComplete, len(traces))
	}
	if rr := getAnalytics(t, url, r.Header.Get("ETag"), nil); rr.StatusCode != http.StatusNotModified {
		t.Fatalf("settled revalidation: %d, want 304", rr.StatusCode)
	}
}

// TestAnalyticsCacheLRUBound fills the document cache past its cap and
// checks the bound holds.
func TestAnalyticsCacheLRUBound(t *testing.T) {
	var c analyticsCache
	for i := 0; i < maxAnalyticsEntries+32; i++ {
		c.put(fmt.Sprintf("key-%d", i), `"tag"`, []byte("{}"), nil)
	}
	if n, _, _ := c.counters(); n != maxAnalyticsEntries {
		t.Fatalf("entries = %d, want cap %d", n, maxAnalyticsEntries)
	}
	// The most recent keys survive LRU eviction.
	if _, ok := c.get(fmt.Sprintf("key-%d", maxAnalyticsEntries+31), `"tag"`); !ok {
		t.Error("most recent entry evicted")
	}
	// Stale-etag lookups miss even when the key is resident.
	if _, ok := c.get(fmt.Sprintf("key-%d", maxAnalyticsEntries+31), `"other"`); ok {
		t.Error("etag mismatch served stale document")
	}
}

// TestAnalyticsCacheHoldsGCRefs checks the cache's ref source reports
// the addresses backing cached documents, and that a server-side GC with
// those refs spares them: serve an analytics document, then collect with
// MaxAge 0 — the grid's completed results must survive while an
// unrelated completed result is reclaimed.
func TestAnalyticsCacheHoldsGCRefs(t *testing.T) {
	store, err := engine.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(engine.New(engine.Options{Scale: tiny, Store: store}))
	hs := newHTTPServer(t, srv)

	var inGrid, unrelated SimulateResponse
	postJSON(t, hs.URL+"/simulate", SimulateRequest{Trace: "lbm-1274", Prefetcher: "Gaze"}, &inGrid)
	postJSON(t, hs.URL+"/simulate", SimulateRequest{Trace: "milc-127", Prefetcher: "Gaze"}, &unrelated)

	var doc MatrixResponse
	if r := getAnalytics(t, hs.URL+"/analytics/matrix?traces=lbm-1274&prefetchers=Gaze", "", &doc); r.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", r.StatusCode)
	}
	if doc.CellsComplete != 1 {
		t.Fatalf("cells_complete = %d, want 1", doc.CellsComplete)
	}

	refs := srv.analytics.liveAddresses()
	if !refs[inGrid.Address] {
		t.Fatalf("cache refs %v missing served address %s", refs, inGrid.Address)
	}

	stats, err := srv.RunGC(0)
	if err != nil {
		t.Fatal(err)
	}
	onDisk := make(map[string]bool)
	for _, e := range store.Entries() {
		onDisk[e.Address] = true
	}
	if !onDisk[inGrid.Address] {
		t.Error("GC deleted a result backing a cached analytics document")
	}
	if onDisk[unrelated.Address] {
		t.Error("GC kept an unreferenced result at MaxAge 0")
	}
	if stats.KeptReferenced == 0 || stats.Deleted == 0 {
		t.Errorf("gc stats = %+v, want both kept-referenced and deleted entries", stats)
	}
}
