package core

import "fmt"

// This file defines the named Gaze variants used by the paper's ablation
// experiments (Fig 4, Fig 9, Fig 10, Fig 17, Fig 18).

// NewDefault returns the full Gaze at the paper's design point.
func NewDefault() *Gaze { return New(DefaultConfig()) }

// NewGazeN returns the Fig 4 variant that requires the first n accesses to
// align (spatially and temporally) before predicting. The streaming module
// and backup are disabled so the figure isolates pattern characterization,
// matching the paper's methodology for that study.
func NewGazeN(n int) *Gaze {
	cfg := DefaultConfig()
	cfg.MatchAccesses = n
	cfg.StreamingModule = false
	cfg.StrideBackup = false
	if n == 1 {
		// Trigger-offset-only: the paper uses a direct 64-entry table.
		cfg.PHTEntries, cfg.PHTWays = 64, 1
	}
	return New(cfg)
}

// NewOffsetOnly returns the "Offset" characterization of Fig 1/Fig 9:
// patterns keyed by the trigger offset alone.
func NewOffsetOnly() *Gaze {
	g := NewGazeN(1)
	return g
}

// NewGazePHT returns "Gaze-PHT" (Fig 9): two-access characterization only,
// with the streaming module and stride backup disabled.
func NewGazePHT() *Gaze {
	cfg := DefaultConfig()
	cfg.StreamingModule = false
	cfg.StrideBackup = false
	return New(cfg)
}

// NewPHT4SS returns the Fig 10 ablation that handles spatial streaming
// naively through the PHT, operating only on streaming regions.
func NewPHT4SS() *Gaze {
	cfg := DefaultConfig()
	cfg.StreamingModule = false
	cfg.StrideBackup = false
	cfg.StreamingOnly = true
	return New(cfg)
}

// NewSM4SS returns the Fig 10 ablation that uses the dedicated streaming
// module (DPCT + DC + two-stage control), operating only on streaming
// regions.
func NewSM4SS() *Gaze {
	cfg := DefaultConfig()
	cfg.StreamingOnly = true
	return New(cfg)
}

// NewVGaze returns virtual Gaze with an arbitrary power-of-two region size
// (Fig 17a: 0.5-4KB, Fig 18: 4-64KB). Gaze already operates on virtual
// addresses at the L1D, so no extra architectural support is modelled.
func NewVGaze(regionBytes int) *Gaze {
	cfg := DefaultConfig()
	cfg.RegionSize = regionBytes
	return New(cfg)
}

// NewWithConfidence returns Gaze with the future-work per-pattern
// confidence control enabled (§IV-B3's sketched extension).
func NewWithConfidence() *Gaze {
	cfg := DefaultConfig()
	cfg.ConfidenceControl = true
	return New(cfg)
}

// NewWithPHTEntries returns Gaze with a resized PHT (Fig 17b).
func NewWithPHTEntries(entries int) *Gaze {
	cfg := DefaultConfig()
	cfg.PHTEntries = entries
	return New(cfg)
}

// VariantName labels ablation variants for reports.
func VariantName(g *Gaze) string {
	cfg := g.Config()
	switch {
	case cfg.StreamingOnly && cfg.StreamingModule:
		return "SM4SS"
	case cfg.StreamingOnly:
		return "PHT4SS"
	case cfg.MatchAccesses == 1:
		return "Offset"
	case cfg.MatchAccesses != 2:
		return fmt.Sprintf("Gaze-%dacc", cfg.MatchAccesses)
	case !cfg.StreamingModule:
		return "Gaze-PHT"
	default:
		return g.Name()
	}
}
