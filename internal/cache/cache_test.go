package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func testCfg(sets, ways int) Config {
	return Config{Name: "T", Sets: sets, Ways: ways, HitLatency: 4, MSHRs: 8}
}

func TestConfigValidate(t *testing.T) {
	good := testCfg(64, 8)
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Name: "a", Sets: 0, Ways: 1},
		{Name: "b", Sets: 3, Ways: 1},
		{Name: "c", Sets: 4, Ways: 0},
		{Name: "d", Sets: 4, Ways: 1, HitLatency: -1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("invalid config %+v accepted", cfg)
		}
	}
}

func TestSizeBytes(t *testing.T) {
	cfg := Config{Sets: 64, Ways: 12}
	if cfg.SizeBytes() != 48*1024 {
		t.Errorf("SizeBytes = %d, want 49152", cfg.SizeBytes())
	}
}

func TestMissThenHit(t *testing.T) {
	c := New(testCfg(16, 4))
	a := mem.Addr(0x1000)
	if res := c.Access(a, 0); res.Hit {
		t.Fatal("cold access hit")
	}
	c.Fill(a, 10, FillOpts{})
	res := c.Access(a, 20)
	if !res.Hit {
		t.Fatal("filled line missed")
	}
	if res.ReadyAt != 10 {
		t.Errorf("ReadyAt = %v, want 10", res.ReadyAt)
	}
	if c.Stats.DemandAccesses != 2 || c.Stats.DemandHits != 1 || c.Stats.DemandMisses != 1 {
		t.Errorf("stats wrong: %+v", c.Stats)
	}
}

func TestSameLineDifferentBytes(t *testing.T) {
	c := New(testCfg(16, 4))
	c.Fill(0x1000, 0, FillOpts{})
	if !c.Access(0x103f, 1).Hit {
		t.Error("access within same line missed")
	}
	if c.Access(0x1040, 1).Hit {
		t.Error("next line hit unexpectedly")
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped-per-set behaviour: 1 set, 2 ways.
	c := New(Config{Name: "T", Sets: 1, Ways: 2, HitLatency: 1})
	c.Fill(0x0000, 0, FillOpts{})
	c.Fill(0x0040, 0, FillOpts{})
	// Touch line 0 so line 1 becomes LRU.
	c.Access(0x0000, 1)
	c.Fill(0x0080, 2, FillOpts{})
	if !c.Probe(0x0000) {
		t.Error("MRU line evicted")
	}
	if c.Probe(0x0040) {
		t.Error("LRU line survived")
	}
	if !c.Probe(0x0080) {
		t.Error("new line absent")
	}
}

func TestEvictCallback(t *testing.T) {
	c := New(Config{Name: "T", Sets: 1, Ways: 1, HitLatency: 1})
	var evicted []uint64
	var prefFlags []bool
	c.SetEvictFunc(func(vline uint64, wasPrefetch bool) {
		evicted = append(evicted, vline)
		prefFlags = append(prefFlags, wasPrefetch)
	})
	c.Fill(0x0000, 0, FillOpts{VLine: 111, Prefetch: true})
	c.Fill(0x0040, 0, FillOpts{VLine: 222})
	c.Fill(0x0080, 0, FillOpts{VLine: 333})
	if len(evicted) != 2 || evicted[0] != 111 || evicted[1] != 222 {
		t.Fatalf("evictions = %v", evicted)
	}
	if !prefFlags[0] || prefFlags[1] {
		t.Errorf("prefetch flags = %v", prefFlags)
	}
}

func TestPrefetchUsefulAccounting(t *testing.T) {
	c := New(testCfg(16, 4))
	c.Fill(0x1000, 5, FillOpts{Prefetch: true, FromDRAM: true})
	if c.Stats.PrefetchFills != 1 {
		t.Fatalf("PrefetchFills = %d", c.Stats.PrefetchFills)
	}
	res := c.Access(0x1000, 10) // after fill completes: useful, not late
	if !res.WasPrefetch || res.WasLate {
		t.Errorf("result = %+v, want useful & on-time", res)
	}
	if c.Stats.UsefulPrefetches != 1 || c.Stats.LatePrefetches != 0 {
		t.Errorf("stats = %+v", c.Stats)
	}
	if c.Stats.CoveredMisses != 1 {
		t.Errorf("CoveredMisses = %d, want 1", c.Stats.CoveredMisses)
	}
	// Second touch is an ordinary hit.
	res = c.Access(0x1000, 11)
	if res.WasPrefetch {
		t.Error("second touch still counted as prefetch use")
	}
	if c.Stats.UsefulPrefetches != 1 {
		t.Errorf("UsefulPrefetches double-counted: %d", c.Stats.UsefulPrefetches)
	}
}

func TestLatePrefetch(t *testing.T) {
	c := New(testCfg(16, 4))
	c.Fill(0x2000, 100, FillOpts{Prefetch: true})
	res := c.Access(0x2000, 50) // touch while in flight
	if !res.Hit || !res.WasPrefetch || !res.WasLate {
		t.Errorf("result = %+v, want late useful prefetch", res)
	}
	if res.ReadyAt != 100 {
		t.Errorf("ReadyAt = %v", res.ReadyAt)
	}
	if c.Stats.LatePrefetches != 1 || c.Stats.UsefulPrefetches != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestUselessPrefetchOnEviction(t *testing.T) {
	c := New(Config{Name: "T", Sets: 1, Ways: 1, HitLatency: 1})
	c.Fill(0x0000, 0, FillOpts{Prefetch: true})
	c.Fill(0x0040, 0, FillOpts{}) // evicts untouched prefetch
	if c.Stats.UselessPrefetches != 1 {
		t.Errorf("UselessPrefetches = %d, want 1", c.Stats.UselessPrefetches)
	}
}

func TestFlushStatsCountsResidentUnused(t *testing.T) {
	c := New(testCfg(16, 4))
	c.Fill(0x1000, 0, FillOpts{Prefetch: true})
	c.Fill(0x2000, 0, FillOpts{Prefetch: true})
	c.Access(0x1000, 1)
	c.FlushStats()
	if c.Stats.UselessPrefetches != 1 {
		t.Errorf("UselessPrefetches = %d, want 1", c.Stats.UselessPrefetches)
	}
	if c.Stats.UsefulPrefetches != 1 {
		t.Errorf("UsefulPrefetches = %d, want 1", c.Stats.UsefulPrefetches)
	}
}

func TestRefillKeepsEarliestReady(t *testing.T) {
	c := New(testCfg(16, 4))
	c.Fill(0x1000, 100, FillOpts{})
	c.Fill(0x1000, 50, FillOpts{})
	if res := c.Access(0x1000, 0); res.ReadyAt != 50 {
		t.Errorf("ReadyAt = %v, want 50", res.ReadyAt)
	}
	c.Fill(0x1000, 80, FillOpts{})
	// Later fill must not push readiness back out.
	// (The line was accessed at t=0, so re-access to check.)
	if res := c.Access(0x1000, 0); res.ReadyAt != 50 {
		t.Errorf("ReadyAt after worse refill = %v, want 50", res.ReadyAt)
	}
}

func TestInFlight(t *testing.T) {
	c := New(testCfg(16, 4))
	c.Fill(0x1000, 100, FillOpts{})
	if !c.InFlight(0x1000, 50) {
		t.Error("line should be in flight at t=50")
	}
	if c.InFlight(0x1000, 150) {
		t.Error("line should be complete at t=150")
	}
	if c.InFlight(0x9000, 0) {
		t.Error("absent line reported in flight")
	}
}

func TestProbeDoesNotDisturbState(t *testing.T) {
	c := New(Config{Name: "T", Sets: 1, Ways: 2, HitLatency: 1})
	c.Fill(0x0000, 0, FillOpts{Prefetch: true})
	c.Fill(0x0040, 0, FillOpts{})
	before := c.Stats
	if !c.Probe(0x0000) {
		t.Fatal("probe missed resident line")
	}
	if c.Stats != before {
		t.Error("Probe changed statistics")
	}
	// Probe must not refresh LRU: 0x0000 stays older... fill order made
	// 0x0000 LRU; a new fill must evict it despite the probe.
	c.Fill(0x0080, 0, FillOpts{})
	if c.Probe(0x0000) {
		t.Error("Probe refreshed LRU state")
	}
	// And the prefetch bit was untouched by Probe, so eviction counted it.
	if c.Stats.UselessPrefetches != 1 {
		t.Errorf("UselessPrefetches = %d, want 1", c.Stats.UselessPrefetches)
	}
}

func TestMSHRSerialization(t *testing.T) {
	c := New(Config{Name: "T", Sets: 16, Ways: 4, HitLatency: 1, MSHRs: 2})
	// Two misses fit; the third must wait for the first to complete.
	s1 := c.AcquireMSHR(0, 100)
	s2 := c.AcquireMSHR(0, 100)
	s3 := c.AcquireMSHR(0, 100)
	if s1 != 0 || s2 != 0 {
		t.Errorf("first two starts = %v, %v; want 0,0", s1, s2)
	}
	if s3 != 100 {
		t.Errorf("third start = %v, want 100", s3)
	}
}

func TestMSHRUnlimitedWhenZero(t *testing.T) {
	c := New(Config{Name: "T", Sets: 16, Ways: 4, HitLatency: 1})
	for i := 0; i < 100; i++ {
		if s := c.AcquireMSHR(5, 1000); s != 5 {
			t.Fatalf("unbounded MSHR delayed request: %v", s)
		}
	}
}

func TestMSHRBusyCount(t *testing.T) {
	c := New(Config{Name: "T", Sets: 16, Ways: 4, HitLatency: 1, MSHRs: 4})
	c.AcquireMSHR(0, 100)
	c.AcquireMSHR(0, 50)
	if n := c.MSHRBusy(10); n != 2 {
		t.Errorf("busy at t=10: %d, want 2", n)
	}
	if n := c.MSHRBusy(75); n != 1 {
		t.Errorf("busy at t=75: %d, want 1", n)
	}
	if n := c.MSHRBusy(200); n != 0 {
		t.Errorf("busy at t=200: %d, want 0", n)
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := New(testCfg(16, 4))
	c.Fill(0x1000, 0, FillOpts{})
	c.Access(0x1000, 1)
	c.ResetStats()
	if c.Stats.DemandAccesses != 0 {
		t.Error("stats not reset")
	}
	if !c.Probe(0x1000) {
		t.Error("contents lost on stats reset")
	}
}

// Property: the cache never exceeds its capacity and presence implies a
// prior fill that has not been evicted by associativity pressure.
func TestPropertyNoPhantomLines(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := New(Config{Name: "T", Sets: 4, Ways: 2, HitLatency: 1})
		filled := make(map[uint64]bool)
		for _, a := range addrs {
			addr := mem.Addr(a) &^ (mem.LineSize - 1)
			c.Fill(addr, 0, FillOpts{})
			filled[mem.LineNum(addr)] = true
		}
		// Anything probed present must have been filled at some point.
		for _, a := range addrs {
			addr := mem.Addr(a)
			if c.Probe(addr) && !filled[mem.LineNum(addr)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: hits and misses partition demand accesses.
func TestPropertyStatsPartition(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := New(testCfg(8, 2))
		for i, a := range addrs {
			addr := mem.Addr(a) << 6
			if i%3 == 0 {
				c.Fill(addr, float64(i), FillOpts{})
			} else {
				c.Access(addr, float64(i))
			}
		}
		return c.Stats.DemandAccesses == c.Stats.DemandHits+c.Stats.DemandMisses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestMSHROutOfOrderCompletion exercises the sorted-ring insert path:
// completions that finish earlier than older in-flight requests must
// keep the earliest-release invariant exact.
func TestMSHROutOfOrderCompletion(t *testing.T) {
	c := New(Config{Name: "T", Sets: 16, Ways: 4, HitLatency: 1, MSHRs: 3})
	complete := func(finish float64) {
		_, slot := c.MSHRReserve(0)
		c.MSHRComplete(slot, finish)
	}
	// Occupy all three slots with descending finish times: each insert
	// lands ahead of the previously queued releases (the slow path).
	complete(300)
	complete(200)
	complete(50) // releases {50, 200, 300}
	if s, _ := c.MSHRReserve(0); s != 50 {
		t.Fatalf("earliest release = %v, want 50", s)
	}
	// Replace the 50 with a mid-range finish: releases {120, 200, 300}.
	complete(120)
	if s, _ := c.MSHRReserve(0); s != 120 {
		t.Fatalf("earliest release = %v, want 120", s)
	}
	// Replace the 120 with a new maximum (fast path): {200, 300, 400}.
	complete(400)
	if s, _ := c.MSHRReserve(150); s != 200 {
		t.Fatalf("start at t=150 = %v, want 200", s)
	}
	if s, _ := c.MSHRReserve(250); s != 250 {
		t.Fatalf("start at t=250 = %v, want 250 (slot free since 200)", s)
	}
}

// TestMSHRBusyAfterReordering pins MSHRBusy against the ring layout.
func TestMSHRBusyAfterReordering(t *testing.T) {
	c := New(Config{Name: "T", Sets: 16, Ways: 4, HitLatency: 1, MSHRs: 4})
	c.AcquireMSHR(0, 300)
	c.AcquireMSHR(0, 50) // out of order: earlier than 300
	c.AcquireMSHR(0, 200)
	if n := c.MSHRBusy(100); n != 2 {
		t.Errorf("busy at t=100: %d, want 2 (200 and 300)", n)
	}
	if n := c.MSHRBusy(250); n != 1 {
		t.Errorf("busy at t=250: %d, want 1", n)
	}
}

// TestPromotePrefetchMatchesUnfusedSequence runs the fused call and the
// historical Probe+Touch+ConsumePrefetch sequence on twin caches and
// requires identical observable state.
func TestPromotePrefetchMatchesUnfusedSequence(t *testing.T) {
	build := func() *Cache {
		c := New(testCfg(4, 2))
		c.Fill(0x1000, 5, FillOpts{Prefetch: true, FromDRAM: true, VLine: 0x1000})
		c.Fill(0x2000, 6, FillOpts{})
		return c
	}
	fused, unfused := build(), build()

	p, was, dram := fused.PromotePrefetch(0x1000)
	present := unfused.Probe(0x1000)
	unfused.Touch(0x1000)
	uwas, udram := unfused.ConsumePrefetch(0x1000)
	if !p || !present || was != uwas || dram != udram {
		t.Fatalf("fused = (%v,%v,%v), unfused = (%v,%v,%v)",
			p, was, dram, present, uwas, udram)
	}
	if fused.Stats != unfused.Stats {
		t.Errorf("stats diverged: %+v vs %+v", fused.Stats, unfused.Stats)
	}
	// Absent line: both report absence and leave stats alone.
	if p, _, _ := fused.PromotePrefetch(0x9000); p {
		t.Error("PromotePrefetch claimed an absent line present")
	}
	// A second promote must not double-consume.
	if _, was, _ := fused.PromotePrefetch(0x1000); was {
		t.Error("prefetch bit consumed twice")
	}
}

// TestProbeTouchRefreshesLRU verifies the fused probe+touch keeps a line
// resident under fills that would otherwise evict it.
func TestProbeTouchRefreshesLRU(t *testing.T) {
	c := New(testCfg(1, 2))
	c.Fill(0x0000, 0, FillOpts{})
	c.Fill(0x0040, 0, FillOpts{})
	if !c.ProbeTouch(0x0000) { // refresh the older line
		t.Fatal("resident line reported absent")
	}
	c.Fill(0x0080, 0, FillOpts{}) // must evict 0x0040, the LRU now
	if !c.Probe(0x0000) {
		t.Error("touched line was evicted")
	}
	if c.Probe(0x0040) {
		t.Error("LRU line survived the fill")
	}
	if c.ProbeTouch(0x1FC0) {
		t.Error("ProbeTouch claimed an absent line present")
	}
}

// TestLRURebasePreservesOrder forces the uint32 clock wrap and checks
// that victim selection is unchanged by the re-ranking.
func TestLRURebasePreservesOrder(t *testing.T) {
	c := New(testCfg(1, 4))
	for i, a := range []mem.Addr{0x0000, 0x0040, 0x0080, 0x00C0} {
		c.Fill(a, float64(i), FillOpts{})
	}
	c.Access(0x0000, 10) // 0x0000 becomes MRU; LRU order: 40, 80, C0, 00
	c.clock = ^uint32(0) // force the wrap on the next tick
	c.Access(0x0080, 11) // triggers rebase, then refreshes 0x0080
	// LRU order now: 40, C0, 00, 80 — three fills must evict in that order.
	for _, want := range []mem.Addr{0x0040, 0x00C0, 0x0000} {
		if !c.Probe(want) {
			t.Fatalf("line %#x missing before its eviction turn", want)
		}
		c.Fill(0x4000+want, 0, FillOpts{})
		if c.Probe(want) {
			t.Fatalf("fill did not evict %#x (LRU order broken by rebase)", want)
		}
	}
	if !c.Probe(0x0080) {
		t.Error("MRU line evicted out of order after rebase")
	}
}
