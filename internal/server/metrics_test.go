package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/jobs"
	"repro/internal/obs"
)

// lintPromText validates a Prometheus text-exposition document via the
// shared obs lint (the same parser cmd/promlint and CI use): HELP/TYPE
// pairing, counter/gauge naming, and full histogram-family conformance
// (le ordering, cumulative buckets, +Inf terminal, _sum/_count
// presence).
func lintPromText(t *testing.T, text string) *obs.PromText {
	t.Helper()
	doc, err := obs.LintProm(text)
	if err != nil {
		t.Fatalf("prometheus lint: %v", err)
	}
	return doc
}

// scrapeDoc fetches and lints /metrics, returning the parsed document
// (unlabeled samples keyed by bare name, labeled ones by name{labels}).
func scrapeDoc(t *testing.T, url string) *obs.PromText {
	t.Helper()
	r, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", r.StatusCode)
	}
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q, want Prometheus text format", ct)
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	return lintPromText(t, string(body))
}

func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	return scrapeDoc(t, url).Samples
}

// TestMetricsEndpoint lints the exposition and checks the counters move
// with the engine.
func TestMetricsEndpoint(t *testing.T) {
	store, err := engine.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{Scale: tiny, Store: store})
	mgr, err := jobs.Open(jobs.Options{Engine: eng, Compile: Compiler(eng), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Shutdown(context.Background()) }) //nolint:errcheck
	ts := httptest.NewServer(New(eng).AttachJobs(mgr).Handler())
	t.Cleanup(ts.Close)

	before := scrape(t, ts.URL)
	for _, name := range []string{
		"gaze_stats_schema_version",
		"gaze_engine_memo_hits_total", "gaze_engine_store_hits_total", "gaze_engine_simulated_total",
		"gaze_trace_cache_entries", "gaze_trace_cache_bytes",
		"gaze_trace_cache_hits_total", "gaze_trace_cache_misses_total", "gaze_trace_cache_evictions_total",
		"gaze_store_entries", "gaze_store_gc_runs_total",
		"gaze_store_gc_reclaimed_entries_total", "gaze_store_gc_reclaimed_bytes_total",
		"gaze_jobs_queued", "gaze_jobs_running", "gaze_jobs_succeeded_total",
		"gaze_analytics_cache_entries", "gaze_analytics_cache_hits_total", "gaze_analytics_cache_misses_total",
		"gaze_telemetry_sampling_interval_instructions", "gaze_telemetry_documents", "gaze_telemetry_bytes",
	} {
		if _, ok := before[name]; !ok {
			t.Errorf("metric %s missing", name)
		}
	}
	if v := before["gaze_stats_schema_version"]; v != float64(StatsSchemaVersion) {
		t.Errorf("gaze_stats_schema_version = %v, want %d", v, StatsSchemaVersion)
	}

	// One simulation moves the engine counters and populates the store.
	postJSON(t, ts.URL+"/simulate", SimulateRequest{Trace: "lbm-1274", Prefetcher: "Gaze"}, nil)
	mid := scrape(t, ts.URL)
	if mid["gaze_engine_simulated_total"] <= before["gaze_engine_simulated_total"] {
		t.Error("simulated counter did not advance")
	}
	if mid["gaze_store_entries"] < 2 {
		t.Errorf("store entries = %v, want >= 2 (job + baseline)", mid["gaze_store_entries"])
	}

	// A GC cycle shows up in the reclaim counters — the acceptance
	// criterion that reclaimed bytes are visible in /metrics.
	r := postJSON(t, ts.URL+"/admin/gc", GCRequest{MaxAge: "0s"}, nil)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("admin gc: status = %d", r.StatusCode)
	}
	after := scrape(t, ts.URL)
	if after["gaze_store_gc_runs_total"] != mid["gaze_store_gc_runs_total"]+1 {
		t.Error("gc runs counter did not advance")
	}
	if after["gaze_store_gc_reclaimed_bytes_total"] <= mid["gaze_store_gc_reclaimed_bytes_total"] {
		t.Error("gc reclaimed-bytes counter did not advance")
	}
	if after["gaze_store_entries"] != 0 {
		t.Errorf("store entries after full GC = %v, want 0", after["gaze_store_entries"])
	}
}

// TestMetricsWithoutStoreOrJobs: the optional metric families drop out
// cleanly instead of exporting zeros for absent subsystems.
func TestMetricsWithoutStoreOrJobs(t *testing.T) {
	ts := newTestServer(t)
	samples := scrape(t, ts.URL)
	for _, name := range []string{
		"gaze_store_entries", "gaze_jobs_queued", "gaze_ingested_traces", "gaze_cluster_workers",
	} {
		if _, ok := samples[name]; ok {
			t.Errorf("metric %s present without its subsystem", name)
		}
	}
	if _, ok := samples["gaze_engine_simulated_total"]; !ok {
		t.Error("core engine metrics missing")
	}
}

// TestMetricsCluster: attaching a coordinator exposes the gaze_cluster_*
// family, and registration moves the worker gauge.
func TestMetricsCluster(t *testing.T) {
	eng := engine.New(engine.Options{Scale: tiny})
	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{Engine: eng})
	ts := httptest.NewServer(New(eng).AttachCluster(coord).Handler())
	t.Cleanup(ts.Close)

	samples := scrape(t, ts.URL)
	for _, name := range []string{
		"gaze_cluster_workers", "gaze_cluster_units_pending", "gaze_cluster_units_leased",
		"gaze_cluster_leases_total", "gaze_cluster_releases_total",
		"gaze_cluster_results_total", "gaze_cluster_duplicate_results_total",
		"gaze_cluster_failures_total", "gaze_cluster_replications_total",
	} {
		if _, ok := samples[name]; !ok {
			t.Errorf("metric %s missing with a coordinator attached", name)
		}
	}
	if samples["gaze_cluster_workers"] != 0 {
		t.Errorf("gaze_cluster_workers = %v, want 0", samples["gaze_cluster_workers"])
	}

	if _, err := coord.Register(cluster.RegisterRequest{
		Concurrency:        1,
		Scale:              eng.Scale(),
		StoreSchemaVersion: engine.StoreSchemaVersion,
	}); err != nil {
		t.Fatal(err)
	}
	if v := scrape(t, ts.URL)["gaze_cluster_workers"]; v != 1 {
		t.Errorf("gaze_cluster_workers after register = %v, want 1", v)
	}
}

// TestAdminGCEndpoint covers the admin surface: bad bodies, no-store
// conflict, and the stats document of a real cycle.
func TestAdminGCEndpoint(t *testing.T) {
	t.Run("no store", func(t *testing.T) {
		ts := newTestServer(t)
		r := postJSON(t, ts.URL+"/admin/gc", GCRequest{}, nil)
		if r.StatusCode != http.StatusConflict {
			t.Fatalf("status = %d, want 409 without a store", r.StatusCode)
		}
	})

	store, err := engine.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(engine.New(engine.Options{Scale: tiny, Store: store})).Handler())
	t.Cleanup(ts.Close)

	t.Run("validation", func(t *testing.T) {
		for _, body := range []string{`{"max_age":"not-a-duration"}`, `{"max_age":"-5m"}`, `{"bogus":1}`} {
			r, err := http.Post(ts.URL+"/admin/gc", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			r.Body.Close()
			if r.StatusCode != http.StatusBadRequest {
				t.Errorf("%s: status = %d, want 400", body, r.StatusCode)
			}
		}
	})

	t.Run("cycle", func(t *testing.T) {
		postJSON(t, ts.URL+"/simulate", SimulateRequest{Trace: "lbm-1274", Prefetcher: "Gaze"}, nil)

		// Default age floor keeps the just-written entries.
		var young GCResponse
		if r := postJSON(t, ts.URL+"/admin/gc", GCRequest{MaxAge: "24h"}, &young); r.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", r.StatusCode)
		}
		if young.Deleted != 0 || young.KeptYoung != 2 || young.MaxAgeSeconds != 24*3600 {
			t.Fatalf("young cycle = %+v", young)
		}

		// max_age 0s collects everything unreferenced.
		var full GCResponse
		postJSON(t, ts.URL+"/admin/gc", GCRequest{MaxAge: "0s"}, &full)
		if full.Deleted != 2 || full.ReclaimedBytes <= 0 {
			t.Fatalf("full cycle = %+v", full)
		}
		if store.Len() != 0 {
			t.Fatalf("store len = %d after full GC", store.Len())
		}
	})

	t.Run("empty body uses default", func(t *testing.T) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/admin/gc", nil)
		if err != nil {
			t.Fatal(err)
		}
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("empty body: status = %d, want 200", r.StatusCode)
		}
	})
}

// TestMetricsTelemetry: the gaze_telemetry_* family (validated by the
// lint every scrape runs through) reports the armed sampling interval
// and counts documents with their byte footprint as runs persist
// timelines.
func TestMetricsTelemetry(t *testing.T) {
	eng := engine.New(engine.Options{Scale: tiny, TelemetryInterval: 5_000})
	ts := httptest.NewServer(New(eng).Handler())
	t.Cleanup(ts.Close)

	before := scrape(t, ts.URL)
	if v := before["gaze_telemetry_sampling_interval_instructions"]; v != 5_000 {
		t.Errorf("sampling interval gauge = %v, want 5000", v)
	}
	if v := before["gaze_telemetry_documents"]; v != 0 {
		t.Errorf("documents before any run = %v, want 0", v)
	}

	postJSON(t, ts.URL+"/simulate", SimulateRequest{Trace: "lbm-1274", Prefetcher: "Gaze"}, nil)
	after := scrape(t, ts.URL)
	// The simulate computes baseline + target: two timeline documents.
	if v := after["gaze_telemetry_documents"]; v != 2 {
		t.Errorf("documents after a simulate = %v, want 2", v)
	}
	if v := after["gaze_telemetry_bytes"]; v <= 0 {
		t.Errorf("telemetry bytes = %v, want > 0", v)
	}
}

// TestMetricsHistograms: the latency-histogram families render as valid
// Prometheus histograms (the scrape passes the shared lint), the HTTP
// family is labeled by route pattern — never raw path — and the
// queue-wait and lease-hold families follow their subsystems.
func TestMetricsHistograms(t *testing.T) {
	m := obs.NewMetrics()
	eng := engine.New(engine.Options{Scale: tiny, Phases: m.EnginePhase})
	mgr, err := jobs.Open(jobs.Options{Engine: eng, Compile: Compiler(eng), Workers: 1, QueueWait: m.JobQueueWait})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Shutdown(context.Background()) }) //nolint:errcheck
	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{Engine: eng, LeaseHold: m.LeaseHold})
	ts := httptest.NewServer(New(eng).AttachJobs(mgr).AttachCluster(coord).SetMetrics(m).Handler())
	t.Cleanup(ts.Close)

	doc := scrapeDoc(t, ts.URL)
	for _, fam := range []string{
		"gaze_http_request_duration_seconds",
		"gaze_engine_phase_duration_seconds",
		"gaze_jobs_queue_wait_seconds",
		"gaze_cluster_lease_hold_seconds",
	} {
		if doc.Types[fam] != "histogram" {
			t.Errorf("family %s: TYPE = %q, want histogram", fam, doc.Types[fam])
		}
	}

	// A simulate populates the engine-phase family; the scrape above
	// populates the HTTP family (durations observe after the response,
	// so a request sees every request before it, not itself).
	postJSON(t, ts.URL+"/simulate", SimulateRequest{Trace: "lbm-1274", Prefetcher: "Gaze"}, nil)
	doc = scrapeDoc(t, ts.URL)
	if v := doc.Samples[`gaze_http_request_duration_seconds_count{route="GET /metrics"}`]; v < 1 {
		t.Errorf("GET /metrics route count = %v, want >= 1", v)
	}
	if v := doc.Samples[`gaze_http_request_duration_seconds_count{route="POST /simulate"}`]; v != 1 {
		t.Errorf("POST /simulate route count = %v, want 1", v)
	}
	for _, phase := range []string{"queue_wait", "simulate", "materialize"} {
		key := `gaze_engine_phase_duration_seconds_count{phase="` + phase + `"}`
		if v := doc.Samples[key]; v < 1 {
			t.Errorf("engine phase %q count = %v, want >= 1", phase, v)
		}
	}
}

// TestMetricsHistogramsWithoutSubsystems: without a jobs manager or
// coordinator, the conditional histogram families drop out while the
// always-on HTTP and engine families remain.
func TestMetricsHistogramsWithoutSubsystems(t *testing.T) {
	ts := newTestServer(t)
	doc := scrapeDoc(t, ts.URL)
	if doc.Types["gaze_http_request_duration_seconds"] != "histogram" {
		t.Error("HTTP duration family missing")
	}
	if doc.Types["gaze_engine_phase_duration_seconds"] != "histogram" {
		t.Error("engine phase family missing")
	}
	for _, fam := range []string{"gaze_jobs_queue_wait_seconds", "gaze_cluster_lease_hold_seconds"} {
		if _, ok := doc.Types[fam]; ok {
			t.Errorf("family %s present without its subsystem", fam)
		}
	}
}
