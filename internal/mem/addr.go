// Package mem provides address arithmetic for the simulated memory system:
// cache-line and spatial-region (page) decomposition, block offsets within a
// region, and a deterministic virtual-to-physical page mapping.
//
// The whole simulator works on byte addresses (type Addr). Spatial
// prefetchers reason about 64-byte cache blocks within 4KB regions, i.e.
// 64 block offsets per region, exactly as the paper does (§III).
package mem

// Addr is a byte address, virtual or physical depending on context.
type Addr uint64

// Fixed machine geometry. The paper (and ChampSim) use 64B lines; the
// default spatial region is a 4KB page but Gaze variants support other
// region sizes, so region helpers also exist in parameterized form.
const (
	LineBits = 6 // log2(64)
	LineSize = 1 << LineBits

	PageBits = 12 // log2(4096)
	PageSize = 1 << PageBits

	// BlocksPerPage is the number of cache blocks in a 4KB region (64),
	// which is why spatial footprints fit in a uint64 bit vector.
	BlocksPerPage = PageSize / LineSize
)

// LineAddr returns the address truncated to its cache-line base.
func LineAddr(a Addr) Addr { return a &^ (LineSize - 1) }

// LineNum returns the cache-line number (address >> 6).
func LineNum(a Addr) uint64 { return uint64(a) >> LineBits }

// PageNum returns the 4KB page (region) number.
func PageNum(a Addr) uint64 { return uint64(a) >> PageBits }

// PageBase returns the base address of the 4KB page containing a.
func PageBase(a Addr) Addr { return a &^ (PageSize - 1) }

// BlockOffset returns the block offset of a within its 4KB region, in
// [0, 64). This is the paper's "offset": the distance of the block address
// from the beginning of a region, in blocks.
func BlockOffset(a Addr) int {
	return int((uint64(a) >> LineBits) & (BlocksPerPage - 1))
}

// BlockAddr reconstructs the block base address for block `off` of the
// region containing a.
func BlockAddr(region uint64, off int) Addr {
	return Addr(region<<PageBits) + Addr(off<<LineBits)
}

// RegionGeometry describes a spatial region of arbitrary power-of-two size,
// used by vGaze (Fig 17a / Fig 18) where regions range from 0.5KB to 64KB.
type RegionGeometry struct {
	// RegionBits is log2 of the region size in bytes.
	RegionBits uint
}

// NewRegionGeometry returns the geometry for a region of `size` bytes.
// size must be a power of two and at least one cache line.
func NewRegionGeometry(size int) RegionGeometry {
	if size < LineSize || size&(size-1) != 0 {
		panic("mem: region size must be a power of two >= 64")
	}
	bits := uint(0)
	for s := size; s > 1; s >>= 1 {
		bits++
	}
	return RegionGeometry{RegionBits: bits}
}

// Size returns the region size in bytes.
func (g RegionGeometry) Size() int { return 1 << g.RegionBits }

// Blocks returns the number of cache blocks per region.
func (g RegionGeometry) Blocks() int { return 1 << (g.RegionBits - LineBits) }

// RegionNum returns the region number of address a.
func (g RegionGeometry) RegionNum(a Addr) uint64 { return uint64(a) >> g.RegionBits }

// Offset returns the block offset of a within its region, in [0, Blocks()).
func (g RegionGeometry) Offset(a Addr) int {
	return int((uint64(a) >> LineBits) & uint64(g.Blocks()-1))
}

// BlockAddr reconstructs the block base address for block off of region.
func (g RegionGeometry) BlockAddr(region uint64, off int) Addr {
	return Addr(region<<g.RegionBits) + Addr(off<<LineBits)
}
