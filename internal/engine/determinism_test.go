package engine

import (
	"encoding/json"
	"testing"
)

// TestResultsDeterministicAcrossEngines runs a mixed job set — single-
// and multi-core (the scheduler heap engages above 4 cores), an L2
// prefetcher, and overrides — on two independent engines sharing the
// process-wide trace cache, and requires identical results. This guards
// the hot-path machinery end to end: materialized-trace slabs must be
// safely shareable, and rings, fill hints, sorted-ring MSHRs and the
// scheduler heap must be deterministic. An accidental dependence on map
// order, shared mutable state or slot identity fails here.
func TestResultsDeterministicAcrossEngines(t *testing.T) {
	jobs := []Job{
		{Traces: []string{"lbm-1274"}, L1: []string{"Gaze"}},
		{Traces: []string{"fotonik3d_s-8225"}, L1: []string{"PMP"}},
		{Traces: []string{"mcf-46"}, L1: []string{"Gaze"}, L2: []string{"Bingo"}},
		{Traces: []string{"lbm-1274", "mcf-46", "cassandra-p0c0", "PageRank-61",
			"bwaves_s-2609", "soplex-66", "srv.09", "cc.twi.10"}, L1: []string{"Gaze"}},
		{Traces: []string{"lbm-1274"}, L1: []string{"Gaze"},
			Overrides: Overrides{DRAMMTPS: 1600, PQCapacity: 8}},
	}
	run := func(workers int) string {
		res := New(Options{Scale: tiny, Workers: workers}).RunAll(jobs)
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	serial := run(1)
	if sharded := run(4); sharded != serial {
		t.Error("sharded sweep produced different results than serial")
	}
	if repeat := run(1); repeat != serial {
		t.Error("repeated sweep on a fresh engine produced different results")
	}
}
