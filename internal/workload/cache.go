package workload

import (
	"sort"
	"sync"

	"repro/internal/trace"
)

// This file implements the process-wide materialized-trace cache. Every
// entry point that simulates — the engine's sweep shards, gazeserve
// handlers, benchmarks — asks for traces through Materialize (heap record
// slabs) or MaterializeRecords (which additionally serves mmap-backed
// columnar slabs for sources that provide them), so N prefetchers x M
// config points over one trace generate it exactly once per process
// instead of once per job. Entries are immutable slabs keyed by {name,
// length, kind}; population is single-flight, so concurrent shards
// requesting the same trace block on one generation instead of racing
// duplicates.
//
// The cache is byte-budget bounded: synthetic slabs are small and
// regenerate cheaply, but once arbitrarily large ingested traces join the
// catalogue an unbounded cache is a memory liability in a long-lived
// server. SetTraceCacheBudget caps the resident heap footprint; over
// budget, ready entries are evicted least-recently-used first (in-flight
// entries and the most recent slab are never evicted — callers already
// hold references, eviction only drops the map's, so evicted slabs stay
// valid for whoever has them and are simply re-materialized on next
// request). Mapped slabs are accounted separately (MappedBytes): their
// memory belongs to the page cache, which the kernel already reclaims
// under pressure, so they never count against — nor are they evicted to
// honor — the heap budget.

// CacheStats is a point-in-time snapshot of the materialized-trace cache.
type CacheStats struct {
	// Entries is the number of materialized traces resident in memory.
	Entries int `json:"entries"`
	// Hits counts Materialize calls served an existing (or in-flight)
	// slab; Misses counts calls that generated one.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Bytes is the resident heap record-slab footprint — what the byte
	// budget bounds.
	Bytes int64 `json:"bytes"`
	// MappedBytes is the total size of mmap-backed slabs' file mappings;
	// page-cache-resident, not heap, and not subject to the byte budget.
	MappedBytes int64 `json:"mapped_bytes"`
	// Evictions counts slabs dropped to honor the byte budget.
	Evictions uint64 `json:"evictions"`
}

// traceKey identifies one cache slot. mapped separates the heap slab a
// Materialize caller gets from the mapped slab a MaterializeRecords caller
// gets for the same {name, n}: the two representations have different
// memory economics and invalidate independently.
type traceKey struct {
	name   string
	n      int
	mapped bool
}

// traceEntry is one cache slot. ready is closed once slab/err are final;
// readers that find an in-flight entry block on it — the single-flight
// discipline that keeps shards from generating duplicates. done and
// lastUse drive LRU eviction and are guarded by traceCache.mu.
type traceEntry struct {
	ready   chan struct{}
	slab    trace.Records
	err     error
	done    bool
	bytes   int64 // heap footprint, counted against the budget
	mapped  int64 // mapping size, tracked but never budget-evicted
	lastUse uint64
}

var traceCache = struct {
	mu          sync.Mutex
	entries     map[traceKey]*traceEntry
	hits        uint64
	misses      uint64
	bytes       int64
	mappedBytes int64
	evictions   uint64
	budget      int64  // max resident heap bytes; <= 0 means unbounded
	clock       uint64 // logical LRU clock, bumped per touch
}{entries: make(map[traceKey]*traceEntry)}

// SetTraceCacheBudget bounds the cache's resident heap slab footprint to
// at most budget bytes (<= 0 restores unbounded). Lowering the budget
// evicts immediately. The budget is process-wide, like the cache itself.
// Mapped slabs are exempt: the kernel, not this budget, bounds the page
// cache.
func SetTraceCacheBudget(budget int64) {
	traceCache.mu.Lock()
	defer traceCache.mu.Unlock()
	traceCache.budget = budget
	evictLocked(nil)
}

// evictLocked drops ready heap entries, least-recently-used first, until
// the heap footprint fits the budget. One pass: the candidates are
// collected and ordered once, then evicted in LRU order until the
// footprint fits — not re-scanned per victim. keep (the entry just
// materialized, when set) is exempt: evicting the slab its caller is
// about to receive would make one oversized trace thrash the whole cache
// on every request. Mapped entries are skipped — they hold no heap.
func evictLocked(keep *traceEntry) {
	if traceCache.budget <= 0 || traceCache.bytes <= traceCache.budget {
		return
	}
	type victim struct {
		key traceKey
		e   *traceEntry
	}
	victims := make([]victim, 0, len(traceCache.entries))
	for k, e := range traceCache.entries {
		if e.done && e != keep && e.bytes > 0 {
			victims = append(victims, victim{k, e})
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].e.lastUse < victims[j].e.lastUse })
	for _, v := range victims {
		if traceCache.bytes <= traceCache.budget {
			return
		}
		delete(traceCache.entries, v.key)
		traceCache.bytes -= v.e.bytes
		traceCache.evictions++
	}
}

// materializeSlab is the single-flight core under Materialize and
// MaterializeRecords: one cache slot per key, exactly one generation per
// cold key, byte accounting by slab kind. hit reports whether an
// existing (or in-flight) slab served the call — the engine's
// materialize spans record it as a cache=hit|miss attribute.
func materializeSlab(key traceKey, gen func() (trace.Records, error)) (_ trace.Records, hit bool, _ error) {
	traceCache.mu.Lock()
	if e, ok := traceCache.entries[key]; ok {
		traceCache.hits++
		traceCache.clock++
		e.lastUse = traceCache.clock
		traceCache.mu.Unlock()
		<-e.ready
		return e.slab, true, e.err
	}
	e := &traceEntry{ready: make(chan struct{})}
	traceCache.entries[key] = e
	traceCache.misses++
	traceCache.mu.Unlock()

	e.slab, e.err = gen()

	traceCache.mu.Lock()
	if cur, ok := traceCache.entries[key]; ok && cur == e {
		// The identity check keeps a ResetTraceCache racing an in-flight
		// generation from corrupting the byte accounting of the new map.
		if e.err != nil {
			// Don't cache failures (unknown names): drop the slot so the
			// map and Entries only ever hold materialized traces.
			delete(traceCache.entries, key)
		} else {
			e.done = true
			e.bytes, e.mapped = slabFootprint(e.slab)
			traceCache.clock++
			e.lastUse = traceCache.clock
			traceCache.bytes += e.bytes
			traceCache.mappedBytes += e.mapped
			evictLocked(e)
		}
	}
	traceCache.mu.Unlock()
	close(e.ready)
	return e.slab, false, e.err
}

// slabFootprint splits a slab's memory cost into budget-relevant heap
// bytes and page-cache-backed mapped bytes.
func slabFootprint(s trace.Records) (heap, mapped int64) {
	switch v := s.(type) {
	case trace.RecSlice:
		return int64(len(v)) * trace.RecordBytes, 0
	case *trace.Columns:
		return v.HeapBytes(), v.MappedBytes()
	default:
		return int64(s.Len()) * trace.RecordBytes, 0
	}
}

// Materialize returns the first n records of the named workload from the
// process-wide cache, generating (or source-loading) them on first
// request. The returned slice is shared and immutable: callers must not
// modify it (wrap it in trace.NewSliceReader / trace.NewLooping to consume
// it). It is safe for concurrent use from any number of goroutines.
func Materialize(name string, n int) ([]trace.Record, error) {
	slab, _, err := materializeSlab(traceKey{name: name, n: n}, func() (trace.Records, error) {
		recs, err := produce(name, n)
		if err != nil {
			return nil, err
		}
		return trace.RecSlice(recs), nil
	})
	if err != nil {
		return nil, err
	}
	return []trace.Record(slab.(trace.RecSlice)), nil
}

// MaterializeRecords is Materialize behind the trace.Records seam: for
// names served by a SlabSource it caches whatever slab the source hands
// back — preferably an mmap-backed columnar view, whose bytes live in the
// page cache instead of the heap — and for everything else (catalogue
// names, plain Sources) it returns the heap slab Materialize would. The
// engine's step loop iterates either kind through the same accessor.
func MaterializeRecords(name string, n int) (trace.Records, error) {
	slab, _, err := MaterializeRecordsCached(name, n)
	return slab, err
}

// MaterializeRecordsCached is MaterializeRecords plus a cache-hit flag:
// whether the slab was already resident (or in flight) rather than
// generated by this call. Observability-only — the slab is identical
// either way.
func MaterializeRecordsCached(name string, n int) (trace.Records, bool, error) {
	ss, _ := sourceFor(name).(SlabSource)
	if ss == nil {
		return materializeSlab(traceKey{name: name, n: n}, func() (trace.Records, error) {
			recs, err := produce(name, n)
			if err != nil {
				return nil, err
			}
			return trace.RecSlice(recs), nil
		})
	}
	return materializeSlab(traceKey{name: name, n: n, mapped: true}, func() (trace.Records, error) {
		return ss.LoadSlab(name, n)
	})
}

// MustMaterialize is Materialize for known-good names; it panics on error.
func MustMaterialize(name string, n int) []trace.Record {
	recs, err := Materialize(name, n)
	if err != nil {
		panic(err)
	}
	return recs
}

// InvalidateTrace drops every resident slab of the named trace, at any
// length and of either kind. It is the delete-side hook for registry
// traces: after an ingested trace is removed from disk, its cached slabs
// must not keep serving a name that no longer resolves. In-flight
// generations are left to complete (their callers hold the slab either
// way). Invalidations are not counted as evictions — the budget did not
// force them.
func InvalidateTrace(name string) {
	traceCache.mu.Lock()
	defer traceCache.mu.Unlock()
	for k, e := range traceCache.entries {
		if k.name == name && e.done {
			delete(traceCache.entries, k)
			traceCache.bytes -= e.bytes
			traceCache.mappedBytes -= e.mapped
		}
	}
}

// TraceCacheStats returns a snapshot of the cache counters.
func TraceCacheStats() CacheStats {
	traceCache.mu.Lock()
	defer traceCache.mu.Unlock()
	return CacheStats{
		Entries:     len(traceCache.entries),
		Hits:        traceCache.hits,
		Misses:      traceCache.misses,
		Bytes:       traceCache.bytes,
		MappedBytes: traceCache.mappedBytes,
		Evictions:   traceCache.evictions,
	}
}

// ResetTraceCache discards every materialized trace, zeroes the counters
// and restores an unbounded budget. It is for tests and benchmarks that
// need a cold cache or a clean counter baseline; callers must ensure no
// Materialize call is in flight (in-flight generations complete against
// the old entries and are simply not retained).
func ResetTraceCache() {
	traceCache.mu.Lock()
	defer traceCache.mu.Unlock()
	traceCache.entries = make(map[traceKey]*traceEntry)
	traceCache.hits, traceCache.misses, traceCache.bytes = 0, 0, 0
	traceCache.mappedBytes = 0
	traceCache.evictions = 0
	traceCache.budget = 0
	traceCache.clock = 0
}
