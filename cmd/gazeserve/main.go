// Command gazeserve serves simulations over HTTP, batching every request
// through one shared experiment engine so concurrent and repeated queries
// coalesce onto memoized — and disk-persisted — results.
//
// Usage:
//
//	gazeserve                         # listen on :8321, standard scale
//	gazeserve -addr :9000 -scale quick
//	gazeserve -no-cache               # in-memory memoization only
//	gazeserve -jobs-workers 4 -jobs-dir /var/lib/gaze/jobs
//	gazeserve -trace-dir /var/lib/gaze/traces -trace-cache-mb 4096
//	gazeserve -coordinator -lease-ttl 15s      # serve jobs-manager work to cluster workers
//	gazeserve -worker http://coord:8321 -worker-concurrency 4   # execute leased units (no listener)
//
// Endpoints:
//
//	GET  /healthz           liveness probe
//	GET  /readyz            readiness probe (store reachable, jobs accepting)
//	GET  /cluster           coordinator status (workers, leases, counters)
//	GET  /traces            workload catalogue + ingested traces (?suite= filters)
//	POST /traces            ingest a trace (gztr/champsim, optionally gzipped) → 201 + address
//	GET  /traces/{addr}         ingested-trace manifest
//	GET  /traces/{addr}/data    export (?format=gztr|champsim[.gz])
//	DELETE /traces/{addr}       delete (409 while referenced by live work)
//	GET  /prefetchers       the paper's evaluated prefetcher names
//	GET  /stats             engine scale + cache counters + store size/schema + jobs counters
//	GET  /metrics           the same counters in Prometheus text format
//	GET  /analytics/matrix  cached metric matrix over completed results (ETag/304)
//	GET  /analytics/speedup cached speedup matrix + per-prefetcher geomeans (ETag/304)
//	GET  /analytics/timeline           per-prefetcher interval-timeline overlay for one trace
//	GET  /results/{addr}/timeline      one run's interval telemetry (?format=json|csv)
//	POST /admin/gc          one result-store GC cycle ({"max_age":"30m"} optional)
//	POST /simulate          {"trace","prefetcher","l2","cores","overrides"} → §IV-A3 metrics
//	POST /sweep             {"suite"|"traces","prefetchers","overrides","axis"} → rows + geomeans
//	POST /jobs              {"type":"sweep"|"simulate","priority","request":{...}} → 202 + id
//	GET  /jobs[/{id}]       job list / status+progress+ETA
//	GET  /jobs/{id}/result  finished job's response document
//	GET  /jobs/{id}/events  NDJSON progress stream
//	DELETE /jobs/{id}       cooperative cancel
//
// Scenarios are declarative: "overrides" perturbs the Table II system
// (LLC/L2 size, DRAM MTPS, prefetch queue, instruction budgets) and
// "axis" walks one of those knobs over a value list, reproducing the
// paper's Fig 16 sensitivity curves in a single request. Synchronous
// /simulate and /sweep abort at the next shard boundary when the client
// disconnects; POST /jobs runs the same requests as durable background
// jobs that survive a restart (queued jobs resume from the journal,
// crashed-while-running ones are surfaced as interrupted).
//
// On SIGINT/SIGTERM the server shuts down gracefully: in-flight HTTP
// requests finish, running jobs drain (up to -drain, then they are
// cancelled and journaled interrupted), and the job journal is flushed.
//
// Cluster mode: -coordinator mounts the /cluster API and dispatches
// every background job's engine work to registered workers as
// content-addressed leases. -worker <url> runs no HTTP listener at all —
// it boots an engine from the coordinator's advertised scale, then
// leases, executes and uploads until stopped. Workers lease work, so a
// fleet scales by just starting more of them; killing one mid-batch is
// safe (its leases expire and re-lease, and duplicate results are
// byte-identical by content addressing).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/traceset"
	"repro/internal/workload"
)

func main() {
	var (
		addr        = flag.String("addr", ":8321", "listen address")
		scale       = flag.String("scale", "standard", "quick | standard | full")
		cacheDir    = flag.String("cache-dir", "", "result store directory (default: $GAZE_CACHE_DIR or the user cache dir)")
		noCache     = flag.Bool("no-cache", false, "disable the persisted result store")
		workers     = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		seed        = flag.Uint64("seed", 0, "sweep scheduling seed")
		telInterval = flag.Uint64("telemetry-interval", sim.DefaultTelemetryInterval, "interval-telemetry sampling period in measured instructions per core (0 = disabled)")
		jobsWorkers = flag.Int("jobs-workers", 2, "concurrently running background jobs")
		jobsQueue   = flag.Int("jobs-queue", 64, "max queued background jobs")
		jobsDir     = flag.String("jobs-dir", "", `job journal directory ("" = beside the result store, "none" = not durable)`)
		traceDir    = flag.String("trace-dir", "", `ingested-trace registry directory ("" = beside the result store, "none" = disabled)`)
		traceCache  = flag.Int64("trace-cache-mb", 2048, "materialized-trace cache budget in MB (0 = unbounded)")
		autoSliceAt = flag.Int("auto-slice-records", 2_000_000, "auto-slice single-core jobs over ingested traces at or above this many effective records (0 = never)")
		autoShards  = flag.Int("auto-slice-shards", server.DefaultAutoSliceShards, "slice count auto-sliced jobs use (fixed, so content addresses reproduce across servers)")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight requests and running jobs")
		admitRPS    = flag.Float64("admit-rps", 0, "per-client admitted requests/second on POST /simulate, /sweep and /jobs (0 = no admission control)")
		admitBurst  = flag.Int("admit-burst", 8, "per-client burst allowance for -admit-rps")
		gcAge       = flag.Duration("store-gc-age", 14*24*time.Hour, "result-store GC age floor: entries modified within this window are kept")
		gcEvery     = flag.Duration("store-gc-every", 0, "run result-store GC on this period (0 = only on demand via -store-gc or POST /admin/gc)")
		gcNow       = flag.Bool("store-gc", false, "run one result-store GC cycle at startup")
		coordinator = flag.Bool("coordinator", false, "serve the /cluster API and dispatch background jobs to registered workers")
		workerURL   = flag.String("worker", "", "run as a cluster worker against the coordinator at this URL (no HTTP listener)")
		workerConc  = flag.Int("worker-concurrency", 0, "units a worker executes in parallel (0 = GOMAXPROCS)")
		workerName  = flag.String("worker-name", "", "worker label in the coordinator's roster")
		leaseTTL    = flag.Duration("lease-ttl", 15*time.Second, "coordinator lease/liveness deadline, renewed by worker heartbeats")
		logFormat   = flag.String("log-format", "text", "structured-log encoding: text | json")
		traceLog    = flag.String("trace-log", "", "append every finished span as one NDJSON line to this file")
		traceRing   = flag.Int("trace-ring", 512, "spans kept in memory for GET /debug/traces (0 = default)")
		noTrace     = flag.Bool("no-trace", false, "disable span tracing (histograms and /metrics stay on)")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof and expvar on this separate listener (keep it private)")
	)
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, *logFormat)
	slog.SetDefault(logger)
	var tracer *obs.Tracer
	if !*noTrace {
		var cleanup func()
		var err error
		tracer, cleanup, err = buildTracer(*traceRing, *traceLog, logger)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer cleanup()
	}
	if *debugAddr != "" {
		startDebugListener(*debugAddr, logger)
	}

	if *workerURL != "" {
		os.Exit(runWorker(*workerURL, *workerConc, *workerName, *cacheDir, *noCache, *traceDir, *workers, *seed, *telInterval, logger, tracer))
	}

	// One histogram bundle feeds every layer: the engine's phase
	// durations, the jobs queue-wait, the coordinator's lease holds and
	// the server's per-route HTTP family all render on GET /metrics.
	metrics := obs.NewMetrics()

	// Generous by default, but bounded: synthetic slabs are small, while
	// ingested real traces can be arbitrarily large — an unbounded cache
	// would grow with every distinct uploaded trace for the life of the
	// server.
	if *traceCache > 0 {
		workload.SetTraceCacheBudget(*traceCache << 20)
	}

	sc, err := engine.ScaleByName(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	opts := engine.Options{
		Scale: sc, Workers: *workers, Seed: *seed, Phases: metrics.EnginePhase,
		TelemetryInterval: *telInterval,
	}
	if !*noCache {
		store, err := engine.Open(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opts.Store = store
		logger.Info("result store open", "dir", store.Dir(), "entries", store.Len())
	}
	eng := engine.New(opts)

	// The coordinator is built before the jobs manager so job execution
	// can be routed through it: with -coordinator, every background job's
	// engine work is handed to cluster workers as content-addressed
	// leases instead of running on this process's engine.
	var coord *cluster.Coordinator
	if *coordinator {
		coord = cluster.NewCoordinator(cluster.CoordinatorOptions{
			Engine:    eng,
			LeaseTTL:  *leaseTTL,
			Tracer:    tracer,
			LeaseHold: metrics.LeaseHold,
		})
	}

	// The trace registry follows the jobs-dir convention below: a durable
	// sibling of the result store ("<store>.traces") unless pointed
	// elsewhere or disabled. Registering it as a workload source is what
	// lets every entry point run `ingested:<address>` names. It opens
	// BEFORE the jobs manager because the auto-slice policy needs its
	// record counts at compile time, and background jobs compile too.
	var reg *traceset.Registry
	tdir := *traceDir
	switch {
	case tdir == "none":
		tdir = ""
	case tdir == "" && opts.Store != nil:
		tdir = opts.Store.Dir() + ".traces"
	case tdir == "":
		tdir = engine.DefaultDir() + ".traces"
	}
	if tdir != "" {
		reg, err = traceset.Open(tdir, traceset.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		workload.RegisterSource(reg)
		logger.Info("trace registry open", "dir", tdir, "traces", reg.Len())
	}

	// Auto-slicing rewrites big single-core ingested-trace jobs to
	// slice_shards at compile time — the same policy on the synchronous
	// handlers, background jobs and analytics addressing, so all three
	// agree on content addresses.
	var policy *server.SlicePolicy
	if *autoSliceAt > 0 && reg != nil {
		policy = &server.SlicePolicy{
			MinRecords: *autoSliceAt,
			Shards:     *autoShards,
			Records: func(addr string) (int, bool) {
				m, ok := reg.Get(addr)
				if !ok {
					return 0, false
				}
				return m.Records, true
			},
		}
		logger.Info("auto-slicing ingested-trace jobs", "min_records", *autoSliceAt, "shards", *autoShards)
	}

	// The job journal lives beside the result store by default — a
	// sibling "<store>.jobs", NOT inside it: the store sweeps its own
	// directory for stale-schema .json garbage at Open and would eat
	// persisted job results nested under it.
	dir := *jobsDir
	switch {
	case dir == "none":
		dir = ""
	case dir == "" && opts.Store != nil:
		dir = opts.Store.Dir() + ".jobs"
	case dir == "":
		dir = engine.DefaultDir() + ".jobs"
	}
	jobOpts := jobs.Options{
		Engine:     eng,
		Compile:    server.CompilerWithPolicy(eng, policy),
		Dir:        dir,
		Workers:    *jobsWorkers,
		QueueDepth: *jobsQueue,
		Tracer:     tracer,
		QueueWait:  metrics.JobQueueWait,
	}
	if coord != nil {
		jobOpts.Execute = coord.Execute
	}
	mgr, err := jobs.Open(jobOpts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if dir != "" {
		c := mgr.Counters()
		logger.Info("job journal open", "dir", dir, "recovered", c.Recovered, "interrupted", c.Interrupted)
	}

	srvHandle := server.New(eng).AttachJobs(mgr).SetSlicePolicy(policy).
		SetMetrics(metrics).SetRequestLogger(logger)
	if tracer != nil {
		srvHandle.AttachTracer(tracer)
	}
	if coord != nil {
		srvHandle.AttachCluster(coord)
		logger.Info("cluster coordinator enabled", "lease_ttl", coord.LeaseTTL())
	}
	if reg != nil {
		srvHandle.AttachTraces(reg)
	}

	srvHandle.SetGCAge(*gcAge)
	if *admitRPS > 0 {
		srvHandle.SetAdmission(*admitRPS, *admitBurst)
		logger.Info("admission control enabled", "rps", *admitRPS, "burst", *admitBurst)
	}
	if *gcNow && opts.Store != nil {
		if st, err := srvHandle.RunGC(*gcAge); err != nil {
			logger.Error("store gc failed", "error", err)
		} else {
			logger.Info("store gc done", "reclaimed_entries", st.Deleted, "reclaimed_bytes", st.ReclaimedBytes,
				"kept_referenced", st.KeptReferenced, "kept_young", st.KeptYoung)
		}
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           srvHandle.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Lease expiry must not depend on a surviving worker happening to
	// poll: the coordinator ticks at half the TTL so a silent worker's
	// units requeue on the coordinator's own clock.
	if coord != nil {
		go func() {
			t := time.NewTicker(coord.LeaseTTL() / 2)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					coord.Tick()
				}
			}
		}()
	}

	// Periodic collection shares RunGC with POST /admin/gc, so it honors
	// the same ref sources (live job plans, cached analytics documents).
	if *gcEvery > 0 && opts.Store != nil {
		go func() {
			t := time.NewTicker(*gcEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if st, err := srvHandle.RunGC(*gcAge); err != nil {
						logger.Error("store gc failed", "error", err)
					} else if st.Deleted > 0 {
						logger.Info("store gc done", "reclaimed_entries", st.Deleted, "reclaimed_bytes", st.ReclaimedBytes)
					}
				}
			}
		}()
		logger.Info("periodic store gc scheduled", "every", *gcEvery, "age_floor", *gcAge)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "scale", *scale)

	select {
	case err := <-errc:
		logger.Error("http server failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	logger.Info("shutting down", "drain", *drain)

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("http shutdown", "error", err)
	}
	// Drain running jobs on the remaining budget, then flush the journal;
	// queued jobs stay journaled and resume on the next start.
	if err := mgr.Shutdown(shutdownCtx); err != nil {
		logger.Warn("jobs shutdown", "error", err)
	}
	logger.Info("bye")
}
