// Package stats provides metric aggregation and table formatting for the
// experiment harness.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Geomean returns the geometric mean of positive values; zero for empty
// input. Speedup averages across traces use it, as is conventional.
func Geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var logSum float64
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(vals)))
}

// Mean returns the arithmetic mean; zero for empty input.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// Min and Max return extrema (0 for empty input).
func Min(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	m := vals[0]
	for _, v := range vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum value.
func Max(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	m := vals[0]
	for _, v := range vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Table is a printable experiment result: the rows/series a paper table or
// figure reports.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "   %s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, 0, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			if i == 0 {
				parts = append(parts, fmt.Sprintf("%-*s", w, c))
			} else {
				parts = append(parts, fmt.Sprintf("%*s", w, c))
			}
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// F formats a float at the given precision.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
