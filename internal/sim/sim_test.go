package sim

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/prefetch"
	"repro/internal/trace"
)

// streamTrace builds a stride-1 load stream touching `lines` consecutive
// cache lines with gap non-memory instructions between loads.
func streamTrace(lines int, gap int) []trace.Record {
	recs := make([]trace.Record, lines)
	for i := range recs {
		recs[i] = trace.Record{
			PC:     0x400100,
			Addr:   0x10000000 + uint64(i)*mem.LineSize,
			NonMem: uint16(gap),
			Kind:   trace.Load,
		}
	}
	return recs
}

// pointerChaseTrace revisits random-looking lines over a large footprint so
// that every access misses everywhere (no reuse, no spatial locality).
func pointerChaseTrace(n int, gap int) []trace.Record {
	recs := make([]trace.Record, n)
	x := uint64(0x12345)
	for i := range recs {
		x = x*6364136223846793005 + 1442695040888963407
		recs[i] = trace.Record{
			PC:     0x400200,
			Addr:   0x20000000 + (x%(1<<28))&^63,
			NonMem: uint16(gap),
			Kind:   trace.Load,
		}
	}
	return recs
}

func smallCfg(cores int) Config {
	cfg := DefaultConfig(cores)
	cfg.WarmupInstructions = 5_000
	cfg.SimInstructions = 40_000
	return cfg
}

func runOne(t *testing.T, cfg Config, recs []trace.Record, pf prefetch.Prefetcher) Result {
	t.Helper()
	specs := []CoreSpec{{
		Trace:        trace.NewLooping(trace.NewSliceReader(recs)),
		L1Prefetcher: pf,
	}}
	sys, err := New(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	return sys.Run()
}

// nextLinePF is a minimal next-line prefetcher used to exercise the
// prefetch path without depending on the real prefetcher implementations.
type nextLinePF struct{ degree int }

func (nextLinePF) Name() string { return "nextline-test" }
func (p nextLinePF) Train(a prefetch.Access, issue prefetch.IssueFunc) {
	line := a.VAddr &^ (mem.LineSize - 1)
	for d := 1; d <= p.degree; d++ {
		issue(prefetch.Request{VLine: line + uint64(d)*mem.LineSize, Level: prefetch.LevelL1})
	}
}
func (nextLinePF) EvictNotify(uint64) {}

func TestRunCompletesAndCountsInstructions(t *testing.T) {
	cfg := smallCfg(1)
	res := runOne(t, cfg, streamTrace(4096, 9), nil)
	if len(res.Cores) != 1 {
		t.Fatalf("cores = %d", len(res.Cores))
	}
	if res.Cores[0].Instructions < cfg.SimInstructions {
		t.Errorf("measured %d instructions, want >= %d", res.Cores[0].Instructions, cfg.SimInstructions)
	}
	if res.Cores[0].IPC <= 0 {
		t.Errorf("IPC = %v", res.Cores[0].IPC)
	}
}

func TestCacheFriendlyIPCNearWidth(t *testing.T) {
	// Tiny footprint (fits in L1) ⇒ all hits ⇒ IPC near fetch width.
	recs := make([]trace.Record, 64)
	for i := range recs {
		recs[i] = trace.Record{PC: 0x400000, Addr: 0x5000 + uint64(i%8)*64, NonMem: 9, Kind: trace.Load}
	}
	res := runOne(t, smallCfg(1), recs, nil)
	if res.Cores[0].IPC < 3.0 {
		t.Errorf("cache-resident IPC = %v, want ~4", res.Cores[0].IPC)
	}
}

func TestMemoryBoundIPCLow(t *testing.T) {
	res := runOne(t, smallCfg(1), pointerChaseTrace(100000, 9), nil)
	if res.Cores[0].IPC > 2.0 {
		t.Errorf("pointer-chase IPC = %v, want well below peak", res.Cores[0].IPC)
	}
	if res.LLCMPKI() < 1 {
		t.Errorf("pointer chase LLC MPKI = %v, want memory-intensive (>1)", res.LLCMPKI())
	}
}

func TestNextLinePrefetchSpeedsUpStreaming(t *testing.T) {
	cfg := smallCfg(1)
	recs := streamTrace(8192, 9)
	base := runOne(t, cfg, recs, nil)
	pf := runOne(t, cfg, recs, nextLinePF{degree: 4})
	if pf.Cores[0].IPC <= base.Cores[0].IPC*1.05 {
		t.Errorf("next-line gave no speedup: %.3f vs %.3f", pf.Cores[0].IPC, base.Cores[0].IPC)
	}
	if pf.Accuracy() < 0.8 {
		t.Errorf("streaming next-line accuracy = %v, want high", pf.Accuracy())
	}
	if pf.Coverage() <= 0.2 {
		t.Errorf("streaming next-line coverage = %v, want substantial", pf.Coverage())
	}
}

func TestUselessPrefetchesHurtAccuracy(t *testing.T) {
	// Next-line on a pointer chase: almost every prefetch is useless.
	res := runOne(t, smallCfg(1), pointerChaseTrace(60000, 9), nextLinePF{degree: 4})
	if res.Accuracy() > 0.3 {
		t.Errorf("pointer-chase next-line accuracy = %v, want low", res.Accuracy())
	}
	if res.IssuedPrefetches() == 0 {
		t.Error("no prefetches issued")
	}
}

func TestAccuracyWithinBounds(t *testing.T) {
	for _, recs := range [][]trace.Record{streamTrace(4096, 5), pointerChaseTrace(30000, 5)} {
		res := runOne(t, smallCfg(1), recs, nextLinePF{degree: 2})
		if a := res.Accuracy(); a < 0 || a > 1 {
			t.Errorf("accuracy out of range: %v", a)
		}
		if cv := res.Coverage(); cv < 0 || cv > 1 {
			t.Errorf("coverage out of range: %v", cv)
		}
		if lf := res.LateFraction(); lf < 0 || lf > 1 {
			t.Errorf("late fraction out of range: %v", lf)
		}
	}
}

func TestMultiCoreContention(t *testing.T) {
	// The same memory-intensive trace on 4 cores must yield lower per-core
	// IPC than alone (shared DRAM), with the paper's Table II scaling.
	single := runOne(t, smallCfg(1), pointerChaseTrace(60000, 9), nil)

	cfg := smallCfg(4)
	specs := make([]CoreSpec, 4)
	for i := range specs {
		specs[i] = CoreSpec{Trace: trace.NewLooping(trace.NewSliceReader(pointerChaseTrace(60000, 9)))}
	}
	sys, err := New(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	multi := sys.Run()
	if len(multi.Cores) != 4 {
		t.Fatalf("cores = %d", len(multi.Cores))
	}
	if multi.MeanIPC() >= single.Cores[0].IPC {
		t.Errorf("4-core mean IPC %.3f >= single-core %.3f: no contention modelled",
			multi.MeanIPC(), single.Cores[0].IPC)
	}
}

func TestRedundantPrefetchesDropped(t *testing.T) {
	// A prefetcher that targets the line just demanded must be filtered.
	res := runOne(t, smallCfg(1), streamTrace(64, 9), redundantPF{})
	if res.Cores[0].PrefetchesRedundant == 0 {
		t.Error("no redundant drops recorded")
	}
	if res.Cores[0].PrefetchesIssuedL1 != 0 {
		t.Errorf("redundant prefetches issued: %d", res.Cores[0].PrefetchesIssuedL1)
	}
}

type redundantPF struct{}

func (redundantPF) Name() string { return "redundant-test" }
func (redundantPF) Train(a prefetch.Access, issue prefetch.IssueFunc) {
	issue(prefetch.Request{VLine: a.VAddr &^ (mem.LineSize - 1), Level: prefetch.LevelL1})
}
func (redundantPF) EvictNotify(uint64) {}

func TestL2LevelPrefetchCountedAtL2(t *testing.T) {
	res := runOne(t, smallCfg(1), streamTrace(8192, 9), l2LinePF{})
	if res.Cores[0].PrefetchesIssuedL2 == 0 {
		t.Fatal("no L2 prefetches issued")
	}
	if res.Cores[0].L2C.UsefulPrefetches == 0 {
		t.Error("L2-targeted prefetches never useful on a stream")
	}
	if res.Cores[0].L1D.PrefetchFills != 0 {
		t.Error("L2-targeted prefetch filled L1")
	}
}

type l2LinePF struct{}

func (l2LinePF) Name() string { return "l2line-test" }
func (l2LinePF) Train(a prefetch.Access, issue prefetch.IssueFunc) {
	line := a.VAddr &^ (mem.LineSize - 1)
	issue(prefetch.Request{VLine: line + 2*mem.LineSize, Level: prefetch.LevelL2})
}
func (l2LinePF) EvictNotify(uint64) {}

func TestEvictNotifyDelivered(t *testing.T) {
	// A footprint far larger than L1 guarantees evictions.
	pf := &evictRecorder{}
	runOne(t, smallCfg(1), streamTrace(16384, 4), pf)
	if pf.evictions == 0 {
		t.Error("no eviction notifications delivered")
	}
}

type evictRecorder struct{ evictions int }

func (*evictRecorder) Name() string                              { return "evict-test" }
func (*evictRecorder) Train(prefetch.Access, prefetch.IssueFunc) {}
func (e *evictRecorder) EvictNotify(uint64)                      { e.evictions++ }

func TestConfigResizers(t *testing.T) {
	cfg := DefaultConfig(1)
	if got := cfg.WithLLCSizeMB(0.5).LLC.Sets * cfg.LLC.Ways * 64; got != 512*1024 {
		t.Errorf("0.5MB LLC = %d bytes", got)
	}
	if got := cfg.WithL2SizeKB(128).L2C.Sets * cfg.L2C.Ways * 64; got != 128*1024 {
		t.Errorf("128KB L2 = %d bytes", got)
	}
	if cfg.WithDRAMMTPS(800).DRAM.MTPS != 800 {
		t.Error("WithDRAMMTPS did not apply")
	}
}

func TestNewValidatesSpecs(t *testing.T) {
	cfg := smallCfg(2)
	if _, err := New(cfg, []CoreSpec{{}}); err == nil {
		t.Error("mismatched spec count accepted")
	}
	if _, err := New(cfg, []CoreSpec{{}, {}}); err == nil {
		t.Error("nil traces accepted")
	}
	bad := cfg
	bad.SimInstructions = 0
	if _, err := New(bad, nil); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		cfg := smallCfg(1)
		specs := []CoreSpec{{
			Trace:        trace.NewLooping(trace.NewSliceReader(streamTrace(2048, 9))),
			L1Prefetcher: nextLinePF{degree: 2},
		}}
		sys, err := New(cfg, specs)
		if err != nil {
			t.Fatal(err)
		}
		return sys.Run()
	}
	a, b := run(), run()
	if a.Cores[0].IPC != b.Cores[0].IPC || a.Accuracy() != b.Accuracy() {
		t.Errorf("non-deterministic results: %+v vs %+v", a.Cores[0], b.Cores[0])
	}
}
