// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig6
//	experiments -run all -scale quick
//
// Scales: quick (smoke test), standard (default), full (entire catalogue,
// longer traces). Results print as aligned text tables — the same rows and
// series the paper's figures plot.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available experiments")
		run   = flag.String("run", "", "experiment id to run, or 'all'")
		scale = flag.String("scale", "standard", "quick | standard | full")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-7s %s\n", e.ID, e.Description)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <id> or -run all")
		}
		return
	}

	var sc harness.Scale
	switch *scale {
	case "quick":
		sc = harness.Quick
	case "standard":
		sc = harness.Standard
	case "full":
		sc = harness.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(1)
	}
	runner := harness.NewRunner(sc)

	var exps []harness.Experiment
	if *run == "all" {
		exps = harness.Experiments()
	} else {
		e, err := harness.Find(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		exps = []harness.Experiment{e}
	}

	for _, e := range exps {
		start := time.Now()
		tables := e.Run(runner)
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
