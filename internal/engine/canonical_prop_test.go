package engine

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// This file property-tests the canonical job encoding — the preimage of
// every content address, so every invariant here is a cache-correctness
// invariant: two spellings that run the same simulation MUST share one
// encoding (or results stop deduplicating), and two jobs that differ in
// any outcome-affecting way MUST NOT (or one would be served the other's
// result).

// randomOverrides draws a valid Overrides with each knob independently
// present or defaulted.
func randomOverrides(rng *rand.Rand) Overrides {
	var o Overrides
	if rng.Intn(2) == 0 {
		o.LLCMBPerCore = []float64{0.5, 1, 2, 4, 8}[rng.Intn(5)]
	}
	if rng.Intn(2) == 0 {
		o.L2KB = []int{128, 256, 512, 1024}[rng.Intn(4)]
	}
	if rng.Intn(2) == 0 {
		o.DRAMMTPS = []int{1600, 3200, 6400}[rng.Intn(3)]
	}
	if rng.Intn(3) == 0 {
		o.PQCapacity = 1 + rng.Intn(64)
	}
	if rng.Intn(3) == 0 {
		o.PQDrainRate = float64(1+rng.Intn(8)) / 2
	}
	if rng.Intn(4) == 0 {
		o.WarmupInstructions = uint64(1_000 * (1 + rng.Intn(50)))
	}
	if rng.Intn(4) == 0 {
		o.SimInstructions = uint64(10_000 * (1 + rng.Intn(50)))
	}
	return o
}

func randomJob(rng *rand.Rand) Job {
	traces := []string{"lbm-1274", "milc-127", "bwaves-1963", "gcc-13"}
	pfs := []string{"Gaze", "IP-stride", "none", ""}
	cores := 1 << rng.Intn(3)
	j := Job{Overrides: randomOverrides(rng)}
	for i := 0; i < cores; i++ {
		j.Traces = append(j.Traces, traces[rng.Intn(len(traces))])
	}
	// Empty, broadcast-1 or per-core prefetcher slices, like real requests.
	switch rng.Intn(3) {
	case 0: // no L1 slice
	case 1:
		j.L1 = []string{pfs[rng.Intn(len(pfs))]}
	default:
		for i := 0; i < cores; i++ {
			j.L1 = append(j.L1, pfs[rng.Intn(len(pfs))])
		}
	}
	if rng.Intn(3) == 0 {
		j.L2 = []string{pfs[rng.Intn(len(pfs))]}
	}
	return j
}

// TestCanonicalJSONRoundTrips: the canonical encoding is valid JSON that
// decodes back to a job running the identical simulation — re-encoding
// the decoded form is a fixed point. This is what makes store records
// self-describing: the persisted key alone reconstructs the job.
func TestCanonicalJSONRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(0x51a7e))
	for i := 0; i < 500; i++ {
		j := randomJob(rng)
		enc := j.CanonicalJSON(Quick)

		var doc struct {
			V        int       `json:"v"`
			TraceLen int       `json:"trace_len"`
			Warmup   uint64    `json:"warmup"`
			Sim      uint64    `json:"sim"`
			Traces   []string  `json:"traces"`
			L1       []string  `json:"l1"`
			L2       []string  `json:"l2"`
			Over     Overrides `json:"overrides"`
		}
		if err := json.Unmarshal([]byte(enc), &doc); err != nil {
			t.Fatalf("job %d: canonical encoding is not JSON: %v\n%s", i, err, enc)
		}
		if doc.V != canonicalVersion {
			t.Fatalf("job %d: encoded version %d, want %d", i, doc.V, canonicalVersion)
		}

		// Rebuild a job from the decoded document. The decoded budgets are
		// already folded (warmup/sim fields), so pin them via overrides —
		// the fold rule says that must reproduce the identical encoding at
		// ANY scale.
		back := Job{Traces: doc.Traces, L1: doc.L1, L2: doc.L2, Overrides: doc.Over}
		back.Overrides.WarmupInstructions = doc.Warmup
		back.Overrides.SimInstructions = doc.Sim
		sameScale := Scale{TraceLen: doc.TraceLen, Warmup: 1, Sim: 1, TracesPerSuite: 1}
		if got := back.CanonicalJSON(sameScale); got != enc {
			t.Fatalf("job %d: round trip not a fixed point\n in  %s\n out %s", i, enc, got)
		}
	}
}

// TestContentAddressSpellingInvariance: every equivalent spelling of a
// job — broadcast vs expanded prefetcher slices, "" vs "none", nil vs
// all-disabled slices, budget overrides equal to the scale's budgets —
// shares one content address. (Full joint permutation of the trace slice
// is NOT an equivalence: core i's trace is core i's workload.)
func TestContentAddressSpellingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(0xadd2))
	for i := 0; i < 500; i++ {
		j := randomJob(rng)
		addr := j.ContentAddress(Quick)
		cores := len(j.Traces)

		variants := []Job{}

		// Broadcast-1 slice <-> fully expanded slice.
		if len(j.L1) == 1 {
			v := j
			v.L1 = make([]string, cores)
			for k := range v.L1 {
				v.L1[k] = j.L1[0]
			}
			variants = append(variants, v)
		}

		// "none" <-> "" on every core.
		{
			v := j
			v.L1 = append([]string(nil), j.L1...)
			for k, name := range v.L1 {
				switch name {
				case "none":
					v.L1[k] = ""
				case "":
					v.L1[k] = "none"
				}
			}
			variants = append(variants, v)
		}

		// A nil L2 <-> an explicit all-"none" L2.
		if j.L2 == nil {
			v := j
			v.L2 = []string{"none"}
			variants = append(variants, v)
		}

		// Budget overrides equal to the scale's own budgets fold away.
		if j.Overrides.WarmupInstructions == 0 && j.Overrides.SimInstructions == 0 {
			v := j
			v.Overrides.WarmupInstructions = Quick.Warmup
			v.Overrides.SimInstructions = Quick.Sim
			variants = append(variants, v)
		}

		for vi, v := range variants {
			if got := v.ContentAddress(Quick); got != addr {
				t.Fatalf("job %d variant %d: address %s != %s\n job     %+v\n variant %+v",
					i, vi, got, addr, j, v)
			}
		}

		// And the inequivalence direction: a changed outcome-affecting
		// input must change the address.
		mut := j
		mut.Overrides.DRAMMTPS = 12800
		if mut.Overrides == j.Overrides {
			continue
		}
		if mut.ContentAddress(Quick) == addr {
			t.Fatalf("job %d: DRAM override did not move the content address", i)
		}
	}
}

// TestContentAddressBaselinePQFold: the no-prefetch baseline folds PQ
// knobs out of its encoding, so every point of a PQ-axis sweep shares
// one baseline entry.
func TestContentAddressBaselinePQFold(t *testing.T) {
	j := Job{Traces: []string{"lbm-1274"}, L1: []string{"Gaze"}}
	a, _ := j.Overrides.WithParam("pq_capacity", 8)
	b, _ := j.Overrides.WithParam("pq_capacity", 64)
	ja, jb := j, j
	ja.Overrides, jb.Overrides = a, b

	if ja.ContentAddress(Quick) == jb.ContentAddress(Quick) {
		t.Fatal("PQ capacity must distinguish prefetching jobs")
	}
	if ja.Baseline().ContentAddress(Quick) != jb.Baseline().ContentAddress(Quick) {
		t.Fatal("PQ capacity must fold out of no-prefetch baselines")
	}
}

// TestCanonicalJSONDeterminism: the encoding is byte-stable across
// repeated calls (map iteration or pointer identity never leaks in).
func TestCanonicalJSONDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		j := randomJob(rng)
		first := j.CanonicalJSON(Standard)
		for k := 0; k < 3; k++ {
			if got := j.CanonicalJSON(Standard); got != first {
				t.Fatalf("job %d: encoding unstable:\n%s\n%s", i, first, got)
			}
		}
		if hashKey(first) != j.ContentAddress(Standard) {
			t.Fatalf("job %d: ContentAddress is not the hash of CanonicalJSON", i)
		}
	}
}

// TestResultSetAddressPermutationInvariance mirrors the server-side
// property at the engine layer: a *set* of jobs content-addresses
// identically under any enumeration order, because identity sorting
// happens over addresses, not request order. This is the invariant the
// /analytics result-set addressing builds on.
func TestResultSetAddressPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5e7))
	jobs := make([]Job, 6)
	for i := range jobs {
		jobs[i] = randomJob(rng)
	}
	addrs := make(map[string]bool)
	for _, j := range jobs {
		addrs[j.ContentAddress(Quick)] = true
	}
	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(len(jobs))
		got := make(map[string]bool)
		for _, pi := range perm {
			got[jobs[pi].ContentAddress(Quick)] = true
		}
		if len(got) != len(addrs) {
			t.Fatalf("permuted enumeration changed the address set: %d vs %d", len(got), len(addrs))
		}
		for a := range got {
			if !addrs[a] {
				t.Fatalf("permuted enumeration invented address %s", a)
			}
		}
	}
}
