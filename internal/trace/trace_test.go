package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func sampleRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			PC:     0x400000 + uint64(i%7)*4,
			Addr:   0x10000000 + uint64(i)*64,
			NonMem: uint16(i % 13),
			Kind:   Kind(i % 2),
		}
	}
	return recs
}

func TestSliceReader(t *testing.T) {
	recs := sampleRecords(10)
	r := NewSliceReader(recs)
	got, err := Collect(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("collected %d records, want 10", len(got))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestSliceReaderReset(t *testing.T) {
	r := NewSliceReader(sampleRecords(3))
	if _, err := Collect(r, 0); err != nil {
		t.Fatal(err)
	}
	r.Reset()
	got, _ := Collect(r, 0)
	if len(got) != 3 {
		t.Errorf("after Reset, collected %d", len(got))
	}
}

func TestCollectMax(t *testing.T) {
	r := NewSliceReader(sampleRecords(100))
	got, err := Collect(r, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Errorf("Collect(max=7) returned %d", len(got))
	}
}

func TestLoopingWraps(t *testing.T) {
	recs := sampleRecords(4)
	l := NewLooping(NewSliceReader(recs))
	for i := 0; i < 10; i++ {
		rec, err := l.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rec != recs[i%4] {
			t.Fatalf("loop step %d: got %+v want %+v", i, rec, recs[i%4])
		}
	}
	if l.Wraps() != 2 {
		t.Errorf("Wraps() = %d, want 2", l.Wraps())
	}
}

func TestLoopingEmptyTrace(t *testing.T) {
	l := NewLooping(NewSliceReader(nil))
	if _, err := l.Next(); err == nil {
		t.Error("expected error on empty looping trace")
	}
}

func TestRecordInstructions(t *testing.T) {
	r := Record{NonMem: 9}
	if r.Instructions() != 10 {
		t.Errorf("Instructions() = %d, want 10", r.Instructions())
	}
}

func TestCodecRoundTrip(t *testing.T) {
	recs := sampleRecords(1000)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	fr, err := NewFileReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(fr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(pcs []uint64, addrs []uint64, nonmems []uint16) bool {
		n := len(pcs)
		if len(addrs) < n {
			n = len(addrs)
		}
		if len(nonmems) < n {
			n = len(nonmems)
		}
		recs := make([]Record, n)
		for i := 0; i < n; i++ {
			recs[i] = Record{PC: pcs[i], Addr: addrs[i], NonMem: nonmems[i], Kind: Kind(i % 2)}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, rec := range recs {
			if w.Write(rec) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		fr, err := NewFileReader(&buf)
		if err != nil {
			return false
		}
		got, err := Collect(fr, 0)
		if err != nil || len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFileReaderBadMagic(t *testing.T) {
	if _, err := NewFileReader(bytes.NewReader([]byte("NOPE\x01xxx"))); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic: err = %v, want ErrCorrupt", err)
	}
}

func TestFileReaderTruncatedHeader(t *testing.T) {
	for _, n := range []int{0, 1, 4} {
		if _, err := NewFileReader(bytes.NewReader(magic[:n])); !errors.Is(err, ErrTruncated) {
			t.Errorf("%d-byte header: err = %v, want ErrTruncated", n, err)
		}
	}
}

// encodeRecords is the raw GZTR byte stream of recs, for truncation tests.
func encodeRecords(t *testing.T, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteAll(&buf, FormatGZTR, recs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFileReaderTruncated cuts a valid stream at every possible byte
// offset past the header: each cut must decode some prefix of the records
// and then fail with ErrTruncated — never a silent short read (the failure
// mode of stdlib ReadUvarint, which reports a torn varint as a clean EOF)
// and never a panic.
func TestFileReaderTruncated(t *testing.T) {
	recs := []Record{
		{PC: 1, Addr: 2, NonMem: 3},
		{PC: 0x400100, Addr: 0xdeadbeef00, NonMem: 700, Kind: Store},
		{PC: 0x400100, Addr: 0, NonMem: 0},
	}
	data := encodeRecords(t, recs)
	// A cut at a record boundary is a valid, shorter trace (the format is
	// self-delimiting per record, not per file); every other cut must fail
	// typed. Boundary offsets are the lengths of each prefix's encoding.
	boundary := make(map[int]int) // offset -> records before it
	for k := 0; k <= len(recs); k++ {
		boundary[len(encodeRecords(t, recs[:k]))] = k
	}
	for cut := len(magic); cut < len(data); cut++ {
		fr, err := NewFileReader(bytes.NewReader(data[:cut]))
		if err != nil {
			t.Fatalf("cut %d: header rejected: %v", cut, err)
		}
		got, err := Collect(fr, 0)
		if want, ok := boundary[cut]; ok {
			if err != nil || len(got) != want {
				t.Errorf("cut %d (boundary): decoded %d records with err %v, want clean %d", cut, len(got), err, want)
			}
			continue
		}
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("cut %d: decoded %d records with err %v, want ErrTruncated", cut, len(got), err)
		}
		if len(got) >= len(recs) {
			t.Errorf("cut %d: short input decoded all %d records", cut, len(got))
		}
	}
	// The untruncated stream still decodes cleanly.
	fr, err := NewFileReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := Collect(fr, 0); err != nil || len(got) != len(recs) {
		t.Errorf("full stream: %d records, err %v", len(got), err)
	}
}

func TestFileReaderOverlongVarint(t *testing.T) {
	// 11 continuation bytes never terminate a varint: structurally corrupt.
	data := append(append([]byte{}, magic[:]...), bytes.Repeat([]byte{0x80}, 11)...)
	fr, err := NewFileReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fr.Next(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("overlong varint: err = %v, want ErrCorrupt", err)
	}
}

func TestFileReaderOversizedNonMem(t *testing.T) {
	// head = (0x10000<<1): a non-mem run that overflows uint16.
	var buf bytes.Buffer
	buf.Write(magic[:])
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(0x10000)<<1)
	buf.Write(tmp[:n])
	buf.WriteByte(0) // pc delta 0
	buf.WriteByte(0) // addr delta 0
	fr, err := NewFileReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fr.Next(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("oversized NonMem: err = %v, want ErrCorrupt", err)
	}
}

func TestCodecCompactness(t *testing.T) {
	// Sequential access traces should compress well below 8 bytes/record.
	recs := make([]Record, 10000)
	for i := range recs {
		recs[i] = Record{PC: 0x400100, Addr: uint64(i) * 64, NonMem: 10}
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for _, rec := range recs {
		_ = w.Write(rec)
	}
	_ = w.Flush()
	perRec := float64(buf.Len()) / float64(len(recs))
	if perRec > 8 {
		t.Errorf("encoding too large: %.1f bytes/record", perRec)
	}
}
