package core

import "math/bits"

// bitvec is a footprint bit vector over up to 1024 block offsets (64KB
// regions at 64B lines). The default 4KB region needs exactly one word —
// the 64-bit footprint of Table I.
type bitvec struct {
	w []uint64
}

func newBitvec(nbits int) bitvec {
	return bitvec{w: make([]uint64, (nbits+63)/64)}
}

func (b bitvec) set(i int)      { b.w[i>>6] |= 1 << uint(i&63) }
func (b bitvec) get(i int) bool { return b.w[i>>6]&(1<<uint(i&63)) != 0 }

func popcount64(w uint64) int { return bits.OnesCount64(w) }

func (b bitvec) popcount() int {
	n := 0
	for _, w := range b.w {
		n += bits.OnesCount64(w)
	}
	return n
}

func (b bitvec) clone() bitvec {
	c := bitvec{w: make([]uint64, len(b.w))}
	copy(c.w, b.w)
	return c
}

// full reports whether the first nbits bits are all set.
func (b bitvec) full(nbits int) bool { return b.popcount() == nbits }

// forEach calls fn for every set bit below nbits.
func (b bitvec) forEach(nbits int, fn func(i int)) {
	for wi, w := range b.w {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			i := wi*64 + bit
			if i >= nbits {
				return
			}
			fn(i)
			w &^= 1 << uint(bit)
		}
	}
}
