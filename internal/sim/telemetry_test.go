package sim

import (
	"reflect"
	"testing"

	"repro/internal/prefetch"
	"repro/internal/trace"
)

// telemetryRun executes one single-core run with the given sampling
// interval and returns both the result and the collected telemetry.
func telemetryRun(t *testing.T, interval uint64, pf prefetch.Prefetcher) (Result, *Telemetry) {
	t.Helper()
	cfg := smallCfg(1)
	cfg.TelemetryInterval = interval
	specs := []CoreSpec{{
		Trace:        trace.NewLooping(trace.NewSliceReader(streamTrace(8192, 9))),
		L1Prefetcher: pf,
	}}
	sys, err := New(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	return sys.Run(), sys.Telemetry()
}

func TestTelemetryDisabledReturnsNil(t *testing.T) {
	_, tel := telemetryRun(t, 0, nextLinePF{degree: 2})
	if tel != nil {
		t.Fatalf("Telemetry() with interval 0 = %+v, want nil", tel)
	}
}

// TestTelemetryRowsPartitionAndSum is the core conservation invariant:
// a core's rows tile its measurement window exactly, and every windowed
// counter column sums to the run's CoreResult value — so the timeline is
// a lossless decomposition of the result, not an approximation of it.
func TestTelemetryRowsPartitionAndSum(t *testing.T) {
	res, tel := telemetryRun(t, 10_000, nextLinePF{degree: 2})
	if tel == nil || len(tel.Cores) != 1 {
		t.Fatalf("telemetry = %+v, want 1 core", tel)
	}
	ct := tel.Cores[0]
	if len(ct.Samples) < 3 {
		t.Fatalf("got %d samples for a 40k window at 10k interval", len(ct.Samples))
	}

	core := res.Cores[0]
	var prevEnd uint64
	var issued, useful, late uint64
	for i, sm := range ct.Samples {
		if sm.Start != prevEnd {
			t.Errorf("sample %d starts at %d, previous ended at %d: rows must tile the window", i, sm.Start, prevEnd)
		}
		if sm.End < sm.Start {
			t.Errorf("sample %d has End %d < Start %d", i, sm.End, sm.Start)
		}
		prevEnd = sm.End
		issued += sm.PrefetchesIssued
		useful += sm.UsefulPrefetches
		late += sm.LatePrefetches
		if sm.Accuracy < 0 || sm.Accuracy > 1 || sm.Coverage < 0 || sm.Coverage > 1 {
			t.Errorf("sample %d ratios out of range: accuracy %v coverage %v", i, sm.Accuracy, sm.Coverage)
		}
	}
	if ct.Samples[0].Start != 0 {
		t.Errorf("first sample starts at %d, want 0", ct.Samples[0].Start)
	}
	if prevEnd != core.Instructions {
		t.Errorf("last sample ends at %d, want the core's %d measured instructions", prevEnd, core.Instructions)
	}
	if want := core.PrefetchesIssuedL1 + core.PrefetchesIssuedL2; issued != want {
		t.Errorf("issued column sums to %d, CoreResult says %d", issued, want)
	}
	if want := core.L1D.UsefulPrefetches + core.L2C.UsefulPrefetches; useful != want {
		t.Errorf("useful column sums to %d, CoreResult says %d", useful, want)
	}
	if want := core.L1D.LatePrefetches + core.L2C.LatePrefetches; late != want {
		t.Errorf("late column sums to %d, CoreResult says %d", late, want)
	}
}

// TestTelemetryNeverPerturbsResult: collecting telemetry reads counters
// the run maintains anyway, so arming it must leave every result bit
// unchanged. This is the sim-level half of the content-address
// invisibility guarantee (the engine-level half byte-compares stores).
func TestTelemetryNeverPerturbsResult(t *testing.T) {
	bare, _ := telemetryRun(t, 0, nextLinePF{degree: 2})
	armed, tel := telemetryRun(t, 7_000, nextLinePF{degree: 2})
	if tel == nil {
		t.Fatal("no telemetry collected")
	}
	if !reflect.DeepEqual(bare, armed) {
		t.Errorf("telemetry perturbed the run:\nbare  %+v\narmed %+v", bare, armed)
	}
}

func TestConcatSliceTelemetryRebasesAndSums(t *testing.T) {
	part := func(end uint64, stream uint64) *Telemetry {
		return &Telemetry{Interval: 100, Cores: []CoreTelemetry{{
			Prefetcher: "Gaze",
			Samples: []IntervalSample{
				{Start: 0, End: end / 2, PrefetchesIssued: 3},
				{Start: end / 2, End: end, PrefetchesIssued: 4},
			},
			Introspection: &prefetch.Introspection{
				PatternEntries: int(stream), PatternCapacity: 64,
				StreamHits: stream, PatternHits: 1,
			},
		}}}
	}
	merged := ConcatSliceTelemetry([]*Telemetry{part(200, 10), nil, part(150, 5)})
	if merged == nil || len(merged.Cores) != 1 {
		t.Fatalf("merged = %+v", merged)
	}
	c := merged.Cores[0]
	if c.Prefetcher != "Gaze" || merged.Interval != 100 {
		t.Errorf("header not carried: %q interval %d", c.Prefetcher, merged.Interval)
	}
	wantBounds := [][2]uint64{{0, 100}, {100, 200}, {200, 275}, {275, 350}}
	if len(c.Samples) != len(wantBounds) {
		t.Fatalf("got %d samples, want %d", len(c.Samples), len(wantBounds))
	}
	for i, w := range wantBounds {
		if c.Samples[i].Start != w[0] || c.Samples[i].End != w[1] {
			t.Errorf("sample %d = [%d,%d), want [%d,%d): slice axes not rebased",
				i, c.Samples[i].Start, c.Samples[i].End, w[0], w[1])
		}
	}
	in := c.Introspection
	if in == nil {
		t.Fatal("introspection dropped")
	}
	// Event counters sum; occupancy is the last slice's.
	if in.StreamHits != 15 || in.PatternHits != 2 {
		t.Errorf("event counters = %d/%d, want 15/2", in.StreamHits, in.PatternHits)
	}
	if in.PatternEntries != 5 || in.PatternCapacity != 64 {
		t.Errorf("occupancy = %d/%d, want the last slice's 5/64", in.PatternEntries, in.PatternCapacity)
	}
}

func TestConcatSliceTelemetryAllNil(t *testing.T) {
	if got := ConcatSliceTelemetry([]*Telemetry{nil, nil}); got != nil {
		t.Errorf("all-nil concat = %+v, want nil", got)
	}
}
