// Columnar slab codec: a fixed-width on-disk layout designed to be mapped
// read-only and iterated in place. Where the GZTR stream optimizes for
// transport (varint deltas, gzip), the columnar sidecar optimizes for
// execution — each Record field lives in its own contiguous plane, so a
// page-cache-backed mapping serves the step loop with zero decode work and
// zero resident heap beyond the kernel's own cache.
//
// Layout (all integers little-endian):
//
//	offset  size  field
//	0       6     magic "GZCOLS"
//	6       2     version (uint16, currently 1)
//	8       8     record count n (uint64)
//	16      16    reserved (zero)
//	32      8*n   PC plane      (uint64 each)
//	32+8n   8*n   Addr plane    (uint64 each)
//	32+16n  2*n   NonMem plane  (uint16 each)
//	32+18n  1*n   Kind plane    (byte each)
//
// Plane offsets are naturally aligned for their element width whenever the
// buffer base is 8-aligned (mmap returns page-aligned memory), so on
// little-endian hosts the planes are reinterpreted in place; other hosts —
// or misaligned buffers — fall back to an allocating decode of the same
// bytes. ColumnarVersion guards the layout: readers reject versions they
// do not speak instead of misparsing them.
package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"unsafe"
)

// ColumnarVersion is the on-disk columnar layout version this package
// writes and reads.
const ColumnarVersion = 1

const (
	colsMagic      = "GZCOLS"
	colsHeaderSize = 32
)

// ErrMmapUnsupported reports a platform without memory-mapped file
// support; callers fall back to heap decoding.
var ErrMmapUnsupported = errors.New("trace: mmap unsupported on this platform")

// hostLittleEndian reports whether native integer layout matches the
// columnar on-disk encoding, enabling the zero-copy plane views.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// ColumnarSize returns the encoded size of an n-record columnar slab.
func ColumnarSize(n int) int64 {
	return colsHeaderSize + int64(n)*(8+8+2+1)
}

// EncodeColumnar serializes recs into the columnar layout.
func EncodeColumnar(recs []Record) []byte {
	n := len(recs)
	buf := make([]byte, ColumnarSize(n))
	copy(buf, colsMagic)
	binary.LittleEndian.PutUint16(buf[6:8], ColumnarVersion)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(n))
	pc := buf[colsHeaderSize:]
	addr := pc[8*n:]
	nonmem := addr[8*n:]
	kind := nonmem[2*n:]
	for i, rec := range recs {
		binary.LittleEndian.PutUint64(pc[8*i:], rec.PC)
		binary.LittleEndian.PutUint64(addr[8*i:], rec.Addr)
		binary.LittleEndian.PutUint16(nonmem[2*i:], rec.NonMem)
		kind[i] = byte(rec.Kind)
	}
	return buf
}

// mapping owns one mmap'd region. Unmapping is driven by garbage
// collection (a finalizer set at map time), never by cache eviction:
// every Columns view holds the mapping alive, so an evicted slab stays
// valid for whoever is still iterating it — the same contract heap slabs
// get from the GC for free.
type mapping struct {
	data []byte
}

// Columns is a columnar record slab: four per-field planes viewed either
// directly over a mapped (or in-memory) encoded buffer, or as heap copies
// on hosts that cannot reinterpret the encoding in place. It implements
// Records; At reads one element from each plane and must stay
// allocation-free (the zero-alloc step loop runs over it).
type Columns struct {
	pc     []uint64
	addr   []uint64
	nonmem []uint16
	kind   []byte
	src    *mapping // nil unless the planes view an mmap'd region
}

// Len implements Records.
func (c *Columns) Len() int { return len(c.kind) }

// At implements Records.
func (c *Columns) At(i int) Record {
	return Record{
		PC:     c.pc[i],
		Addr:   c.addr[i],
		NonMem: c.nonmem[i],
		Kind:   Kind(c.kind[i]),
	}
}

// Mapped reports whether the planes view an mmap'd file.
func (c *Columns) Mapped() bool { return c.src != nil }

// MappedBytes returns the size of the underlying mapping (0 for heap
// slabs) — what the trace cache accounts under its mapped-bytes gauge.
func (c *Columns) MappedBytes() int64 {
	if c.src == nil {
		return 0
	}
	return int64(len(c.src.data))
}

// HeapBytes returns the resident heap footprint of the planes (0 for
// mapped slabs, whose memory belongs to the page cache).
func (c *Columns) HeapBytes() int64 {
	if c.src != nil {
		return 0
	}
	return int64(len(c.pc))*8 + int64(len(c.addr))*8 + int64(len(c.nonmem))*2 + int64(len(c.kind))
}

// Prefix returns a view of the first n records (n <= 0 or beyond the end
// returns c itself). Views share the underlying mapping: the region stays
// mapped until every view is unreachable.
func (c *Columns) Prefix(n int) *Columns {
	if n <= 0 || n >= c.Len() {
		return c
	}
	return &Columns{
		pc:     c.pc[:n],
		addr:   c.addr[:n],
		nonmem: c.nonmem[:n],
		kind:   c.kind[:n],
		src:    c.src,
	}
}

// DecodeColumnar builds a Columns over an encoded in-memory buffer.
// On little-endian hosts with an 8-aligned buffer the planes alias data
// (the caller must not mutate it); otherwise they are decoded copies.
func DecodeColumnar(data []byte) (*Columns, error) {
	return columnsFromBytes(data, nil)
}

// columnsFromBytes validates the header and builds the plane views.
// retain, when non-nil, is the mapping that owns data; it is attached to
// the result only when the zero-copy path is taken (the caller unmaps
// immediately otherwise).
func columnsFromBytes(data []byte, retain *mapping) (*Columns, error) {
	if len(data) < colsHeaderSize || string(data[:6]) != colsMagic {
		return nil, fmt.Errorf("%w: bad columnar header", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(data[6:8]); v != ColumnarVersion {
		return nil, fmt.Errorf("%w: columnar version %d (want %d)", ErrCorrupt, v, ColumnarVersion)
	}
	count := binary.LittleEndian.Uint64(data[8:16])
	if count > uint64(int(^uint(0)>>1))/19 || int64(len(data)) != ColumnarSize(int(count)) {
		return nil, fmt.Errorf("%w: columnar size %d does not match %d records", ErrCorrupt, len(data), count)
	}
	n := int(count)
	if n == 0 {
		return &Columns{}, nil
	}
	body := data[colsHeaderSize:]
	if hostLittleEndian && uintptr(unsafe.Pointer(&data[0]))%8 == 0 {
		c := &Columns{
			pc:     unsafe.Slice((*uint64)(unsafe.Pointer(&body[0])), n),
			addr:   unsafe.Slice((*uint64)(unsafe.Pointer(&body[8*n])), n),
			nonmem: unsafe.Slice((*uint16)(unsafe.Pointer(&body[16*n])), n),
			kind:   body[18*n : 19*n : 19*n],
			src:    retain,
		}
		return c, nil
	}
	c := &Columns{
		pc:     make([]uint64, n),
		addr:   make([]uint64, n),
		nonmem: make([]uint16, n),
		kind:   make([]byte, n),
	}
	for i := 0; i < n; i++ {
		c.pc[i] = binary.LittleEndian.Uint64(body[8*i:])
		c.addr[i] = binary.LittleEndian.Uint64(body[8*n+8*i:])
		c.nonmem[i] = binary.LittleEndian.Uint16(body[16*n+2*i:])
	}
	copy(c.kind, body[18*n:])
	return c, nil
}

// MapColumnar maps an encoded columnar file read-only and returns a
// Columns iterating it in place. The mapping is released when the last
// view becomes unreachable (finalizer-driven), so callers treat the result
// exactly like a heap slab. On hosts where the in-place view is impossible
// (big-endian, no mmap) the file's bytes are decoded onto the heap instead
// — correct, just not zero-copy.
func MapColumnar(path string) (*Columns, error) {
	m, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	c, err := columnsFromBytes(m.data, m)
	if err != nil || c.src == nil {
		// Decode error, or the copy path ran: the mapping is not referenced
		// by the result, release it now instead of waiting on the GC.
		runtime.SetFinalizer(m, nil)
		m.unmap()
	}
	return c, err
}
