// Command gazeserve serves simulations over HTTP, batching every request
// through one shared experiment engine so concurrent and repeated queries
// coalesce onto memoized — and disk-persisted — results.
//
// Usage:
//
//	gazeserve                         # listen on :8321, standard scale
//	gazeserve -addr :9000 -scale quick
//	gazeserve -no-cache               # in-memory memoization only
//
// Endpoints:
//
//	GET  /healthz      liveness probe
//	GET  /traces       workload catalogue (?suite= filters)
//	GET  /prefetchers  the paper's evaluated prefetcher names
//	GET  /stats        engine scale + cache counters + store size/schema
//	POST /simulate     {"trace","prefetcher","l2","cores","overrides"} → §IV-A3 metrics
//	POST /sweep        {"suite"|"traces","prefetchers","overrides","axis"} → rows + geomeans
//
// Scenarios are declarative: "overrides" perturbs the Table II system
// (LLC/L2 size, DRAM MTPS, prefetch queue, instruction budgets) and
// "axis" walks one of those knobs over a value list, reproducing the
// paper's Fig 16 sensitivity curves in a single request.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8321", "listen address")
		scale    = flag.String("scale", "standard", "quick | standard | full")
		cacheDir = flag.String("cache-dir", "", "result store directory (default: $GAZE_CACHE_DIR or the user cache dir)")
		noCache  = flag.Bool("no-cache", false, "disable the persisted result store")
		workers  = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		seed     = flag.Uint64("seed", 0, "sweep scheduling seed")
	)
	flag.Parse()

	sc, err := engine.ScaleByName(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	opts := engine.Options{Scale: sc, Workers: *workers, Seed: *seed}
	if !*noCache {
		store, err := engine.Open(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opts.Store = store
		log.Printf("gazeserve: result store at %s (%d entries)", store.Dir(), store.Len())
	}
	eng := engine.New(opts)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(server.New(eng).Handler()),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("gazeserve: listening on %s (scale %s)", *addr, *scale)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}

func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %v", r.Method, r.URL.Path, time.Since(start).Round(time.Millisecond))
	})
}
