package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/engine"
)

// tiny keeps HTTP tests fast while still exercising real simulations.
var tiny = engine.Scale{TracesPerSuite: 1, TraceLen: 10_000, Warmup: 5_000, Sim: 20_000}

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(engine.New(engine.Options{Scale: tiny})).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, req, resp any) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Body.Close() })
	if resp != nil && r.StatusCode == http.StatusOK {
		if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestSimulateEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var resp SimulateResponse
	r := postJSON(t, ts.URL+"/simulate",
		SimulateRequest{Trace: "lbm-1274", Prefetcher: "Gaze"}, &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", r.StatusCode)
	}
	if r.Header.Get("Content-Type") != "application/json" {
		t.Errorf("content type = %q", r.Header.Get("Content-Type"))
	}
	if resp.IPC <= 0 {
		t.Errorf("IPC = %v, want > 0", resp.IPC)
	}
	// Gaze on a streaming trace must beat the no-prefetch baseline and
	// report sane fractional metrics — the IPC/coverage/accuracy JSON the
	// acceptance criteria name.
	if resp.Speedup <= 1 {
		t.Errorf("speedup = %v, want > 1 on lbm", resp.Speedup)
	}
	if resp.Accuracy < 0 || resp.Accuracy > 1 || resp.Coverage < 0 || resp.Coverage > 1 {
		t.Errorf("accuracy/coverage out of range: %+v", resp)
	}
	if resp.IssuedPrefetches == 0 {
		t.Error("no prefetches issued")
	}
	if len(resp.Traces) != 1 || resp.Traces[0] != "lbm-1274" || resp.Cores != 1 {
		t.Errorf("echoed job wrong: %+v", resp)
	}
}

func TestSimulateMultiCore(t *testing.T) {
	ts := newTestServer(t)
	var resp SimulateResponse
	postJSON(t, ts.URL+"/simulate",
		SimulateRequest{Trace: "lbm-1274", Prefetcher: "IP-stride", Cores: 2}, &resp)
	if resp.Cores != 2 || len(resp.Traces) != 2 {
		t.Errorf("cores = %d traces = %v", resp.Cores, resp.Traces)
	}
}

func TestSimulateValidation(t *testing.T) {
	ts := newTestServer(t)
	cases := []SimulateRequest{
		{Prefetcher: "Gaze"},                                                       // no trace
		{Trace: "no-such-trace", Prefetcher: "Gaze"},                               // unknown trace
		{Trace: "lbm-1274", Prefetcher: "no-such-pf"},                              // unknown prefetcher
		{Trace: "lbm-1274", Prefetcher: "Gaze", L2: "xx"},                          // unknown L2
		{Trace: "lbm-1274", Prefetcher: "Gaze", Cores: 1 << 20},                    // absurd core count
		{Trace: "lbm-1274", Prefetcher: "Gaze", Cores: 3},                          // non-power-of-two cores
		{Traces: []string{"lbm-1274", "lbm-1274", "lbm-1274"}, Prefetcher: "Gaze"}, // ditto via traces
	}
	for _, c := range cases {
		r := postJSON(t, ts.URL+"/simulate", c, nil)
		if r.StatusCode != http.StatusBadRequest {
			t.Errorf("%+v: status = %d, want 400", c, r.StatusCode)
		}
	}
	r, err := http.Post(ts.URL+"/simulate", "application/json",
		bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status = %d, want 400", r.StatusCode)
	}
}

func TestSweepEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var resp SweepResponse
	r := postJSON(t, ts.URL+"/sweep", SweepRequest{
		Traces:      []string{"lbm-1274", "bwaves_s-2609"},
		Prefetchers: []string{"IP-stride", "Gaze"},
	}, &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", r.StatusCode)
	}
	if len(resp.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(resp.Rows))
	}
	for _, row := range resp.Rows {
		if row.IPC <= 0 || row.Speedup <= 0 {
			t.Errorf("empty row: %+v", row)
		}
	}
	for _, pf := range []string{"IP-stride", "Gaze"} {
		if resp.GeomeanSpeedup[pf] <= 0 {
			t.Errorf("geomean for %s missing: %v", pf, resp.GeomeanSpeedup)
		}
	}
}

func TestSweepBySuite(t *testing.T) {
	ts := newTestServer(t)
	var resp SweepResponse
	r := postJSON(t, ts.URL+"/sweep", SweepRequest{
		Suite:       "cloud",
		Prefetchers: []string{"IP-stride"},
	}, &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", r.StatusCode)
	}
	if len(resp.Rows) == 0 {
		t.Error("suite sweep returned no rows")
	}
}

func TestSweepValidation(t *testing.T) {
	ts := newTestServer(t)
	for _, c := range []SweepRequest{
		{Prefetchers: []string{"Gaze"}},                             // no traces
		{Suite: "no-such-suite", Prefetchers: []string{"Gaze"}},     // bad suite
		{Traces: []string{"lbm-1274"}},                              // no prefetchers
		{Traces: []string{"lbm-1274"}, Prefetchers: []string{"xx"}}, // bad pf
		{Traces: []string{"lbm-1274"}, Prefetchers: hugeGrid()},     // unbounded parametric grid
	} {
		r := postJSON(t, ts.URL+"/sweep", c, nil)
		if r.StatusCode != http.StatusBadRequest {
			t.Errorf("%+v: status = %d, want 400", c, r.StatusCode)
		}
	}
}

// hugeGrid builds thousands of individually valid parametric prefetcher
// names — the shape a resource-exhaustion request would use.
func hugeGrid() []string {
	names := make([]string, 5000)
	for i := range names {
		names[i] = fmt.Sprintf("vGaze-%dB", i+1)
	}
	return names
}

func TestMetadataEndpoints(t *testing.T) {
	ts := newTestServer(t)

	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d", r.StatusCode)
	}

	r, err = http.Get(ts.URL + "/traces?suite=cloud")
	if err != nil {
		t.Fatal(err)
	}
	var traces []struct{ Name, Suite string }
	if err := json.NewDecoder(r.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(traces) == 0 || traces[0].Suite != "cloud" {
		t.Errorf("traces = %v", traces)
	}

	r, err = http.Get(ts.URL + "/prefetchers")
	if err != nil {
		t.Fatal(err)
	}
	var pfs []string
	if err := json.NewDecoder(r.Body).Decode(&pfs); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(pfs) != 9 {
		t.Errorf("prefetchers = %v, want the 9 evaluated names", pfs)
	}
}

func TestStatsReflectsMemoization(t *testing.T) {
	ts := newTestServer(t)
	req := SimulateRequest{Trace: "lbm-1274", Prefetcher: "IP-stride"}
	postJSON(t, ts.URL+"/simulate", req, nil)
	postJSON(t, ts.URL+"/simulate", req, nil)

	r, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	// First request simulates baseline+target; the repeat is pure memo.
	if st.Counters.Simulated != 2 {
		t.Errorf("simulated = %d, want 2", st.Counters.Simulated)
	}
	if st.Counters.MemoHits < 2 {
		t.Errorf("memo hits = %d, want >= 2", st.Counters.MemoHits)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t)
	r, err := http.Get(ts.URL + "/simulate")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /simulate status = %d, want 405", r.StatusCode)
	}
}
