package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/obs"
)

// ClientOptions configures a Client. The zero value is production-ready.
type ClientOptions struct {
	// HTTPClient overrides the transport (default: a dedicated
	// http.Client; per-request deadlines come from contexts).
	HTTPClient *http.Client
	// Clock drives retry backoff sleeps (default RealClock).
	Clock Clock
	// Retries is the number of re-attempts after a transient failure
	// (so Retries+1 attempts total). Default 4.
	Retries int
	// Backoff is the first retry delay, doubled per attempt and capped
	// at 5s. Default 100ms.
	Backoff time.Duration
}

// Client is the worker side of the cluster wire protocol: a thin JSON
// client with exponential-backoff retries on transport errors and
// retryable statuses (500/502/503-with-Retry/504 are NOT all retryable
// here — see retryableStatus; 4xx and 503 are contract answers, not
// glitches). All methods honor ctx for cancellation, including
// mid-backoff.
type Client struct {
	base    string
	hc      *http.Client
	clock   Clock
	retries int
	backoff time.Duration
}

// NewClient builds a client for the coordinator at base (e.g.
// "http://coord:8321").
func NewClient(base string, opts ClientOptions) *Client {
	if opts.HTTPClient == nil {
		opts.HTTPClient = &http.Client{}
	}
	if opts.Clock == nil {
		opts.Clock = RealClock
	}
	if opts.Retries <= 0 {
		opts.Retries = 4
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 100 * time.Millisecond
	}
	return &Client{
		base:    strings.TrimRight(base, "/"),
		hc:      opts.HTTPClient,
		clock:   opts.Clock,
		retries: opts.Retries,
		backoff: opts.Backoff,
	}
}

// StatusError is a non-2xx answer from the coordinator, carrying the
// parsed {"error": ...} body when present.
type StatusError struct {
	Code    int
	Message string
}

func (e *StatusError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("cluster: coordinator answered %d: %s", e.Code, e.Message)
	}
	return fmt.Sprintf("cluster: coordinator answered %d", e.Code)
}

// IsStatus reports whether err is (or wraps) a StatusError with the
// given code.
func IsStatus(err error, code int) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == code
}

// retryableStatus: pure server-side glitches worth retrying. 4xx are
// contract violations, 503 is the server's explicit "this subsystem is
// not here" answer — retrying either would just hide a configuration
// error under timeouts.
func retryableStatus(code int) bool {
	return code == http.StatusInternalServerError ||
		code == http.StatusBadGateway ||
		code == http.StatusGatewayTimeout
}

// do runs one JSON request with retries. in == nil sends no body;
// json.RawMessage passes through verbatim (result-document uploads).
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if raw, ok := in.(json.RawMessage); ok {
		// json.Marshal would compact (and re-escape) a RawMessage, but
		// uploaded documents must reach the coordinator byte-identical
		// to what the worker's engine persisted.
		body = raw
	} else if in != nil {
		var err error
		body, err = json.Marshal(in)
		if err != nil {
			return fmt.Errorf("cluster: encoding request: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return fmt.Errorf("cluster: building request: %w", err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		obs.Inject(ctx, req.Header)
		resp, err := c.hc.Do(req)
		if err == nil {
			data, readErr := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
			resp.Body.Close()
			switch {
			case resp.StatusCode >= 200 && resp.StatusCode < 300:
				if readErr != nil {
					err = readErr
					break
				}
				if out != nil {
					if err := json.Unmarshal(data, out); err != nil {
						return fmt.Errorf("cluster: decoding %s %s response: %w", method, path, err)
					}
				}
				return nil
			default:
				se := &StatusError{Code: resp.StatusCode}
				var e struct {
					Error string `json:"error"`
				}
				if json.Unmarshal(data, &e) == nil {
					se.Message = e.Error
				}
				if !retryableStatus(resp.StatusCode) {
					return se
				}
				err = se
			}
		}
		lastErr = err
		if attempt >= c.retries {
			return fmt.Errorf("cluster: %s %s failed after %d attempts: %w", method, path, attempt+1, lastErr)
		}
		if serr := c.clock.Sleep(ctx, c.backoffFor(attempt)); serr != nil {
			return fmt.Errorf("cluster: %s %s: %w (last error: %v)", method, path, serr, lastErr)
		}
	}
}

// backoffFor returns the exponential delay before retry attempt+1,
// capped at 5s.
func (c *Client) backoffFor(attempt int) time.Duration {
	d := c.backoff << uint(attempt)
	if max := 5 * time.Second; d > max || d <= 0 {
		d = 5 * time.Second
	}
	return d
}

// Info fetches the coordinator's GET /cluster document — worker mode
// boots its engine from the scale in here.
func (c *Client) Info(ctx context.Context) (Info, error) {
	var info Info
	err := c.do(ctx, http.MethodGet, PathInfo, nil, &info)
	return info, err
}

// Register performs the worker handshake.
func (c *Client) Register(ctx context.Context, req RegisterRequest) (RegisterResponse, error) {
	var resp RegisterResponse
	err := c.do(ctx, http.MethodPost, PathWorkers, req, &resp)
	return resp, err
}

// Deregister removes the worker gracefully, requeueing its leases.
func (c *Client) Deregister(ctx context.Context, workerID string) error {
	return c.do(ctx, http.MethodDelete, PathWorkers+"/"+url.PathEscape(workerID), nil, nil)
}

// Heartbeat renews the worker's liveness and leases.
func (c *Client) Heartbeat(ctx context.Context, workerID string, req HeartbeatRequest) error {
	return c.do(ctx, http.MethodPost, PathWorkers+"/"+url.PathEscape(workerID)+heartbeatPath, req, nil)
}

// Lease asks for up to req.Max pending units.
func (c *Client) Lease(ctx context.Context, req LeaseRequest) (LeaseResponse, error) {
	var resp LeaseResponse
	err := c.do(ctx, http.MethodPost, PathLease, req, &resp)
	return resp, err
}

// UploadResult uploads a result document (engine.ExportResult bytes)
// under its content address.
func (c *Client) UploadResult(ctx context.Context, addr string, doc []byte) (UploadResponse, error) {
	var resp UploadResponse
	err := c.do(ctx, http.MethodPut, PathResults+addr, json.RawMessage(doc), &resp)
	return resp, err
}

// UploadTelemetry uploads a telemetry document (engine.ExportTelemetry
// bytes) under its content address. Telemetry rides the same verified
// pull-through path as results; it is uploaded before the result so a
// unit observable as complete already has its timeline on the
// coordinator.
func (c *Client) UploadTelemetry(ctx context.Context, addr string, doc []byte) (UploadResponse, error) {
	var resp UploadResponse
	err := c.do(ctx, http.MethodPut, PathTelemetry+addr, json.RawMessage(doc), &resp)
	return resp, err
}

// ReportFailure reports a deterministic unit failure.
func (c *Client) ReportFailure(ctx context.Context, addr string, req FailRequest) error {
	return c.do(ctx, http.MethodPost, PathFailures+addr, req, nil)
}

// FetchTrace streams GET /traces/{digest}/data — the replication source
// for ingested traces. No retry loop: the caller re-drives replication
// as a whole (a half-read body cannot be resumed).
func (c *Client) FetchTrace(ctx context.Context, digest string) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/traces/"+digest+"/data", nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: building request: %w", err)
	}
	obs.Inject(ctx, req.Header)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		se := &StatusError{Code: resp.StatusCode}
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil {
			se.Message = e.Error
		}
		return nil, se
	}
	return resp.Body, nil
}
