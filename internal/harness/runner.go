// Package harness regenerates every table and figure of the paper's
// evaluation (§IV) from the simulator: it binds workloads, prefetchers and
// system configurations, runs the simulations through the shared
// experiment engine (memoized, optionally disk-persisted, shard-parallel),
// and formats the same rows/series the paper reports.
package harness

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Scale bounds experiment cost; see engine.Scale.
type Scale = engine.Scale

// Predefined scales, re-exported from the engine.
var (
	Quick    = engine.Quick
	Standard = engine.Standard
	Full     = engine.Full
)

// Job describes one simulation; see engine.Job.
type Job = engine.Job

// Overrides declaratively perturbs a job's system configuration; see
// engine.Overrides.
type Overrides = engine.Overrides

// Runner layers the paper's experiment vocabulary (suites, speedups,
// sweeps) over an engine.Engine, which supplies memoization, the
// persisted result store, and shard-parallel execution.
type Runner struct {
	eng *engine.Engine
}

// NewRunner builds a runner at the given scale with in-memory memoization
// only (hermetic — what tests and benchmarks want). Use FromEngine to
// attach a persisted store.
func NewRunner(scale Scale) *Runner {
	return FromEngine(engine.New(engine.Options{Scale: scale}))
}

// FromEngine wraps an existing engine, inheriting its scale, store and
// progress reporting.
func FromEngine(e *engine.Engine) *Runner { return &Runner{eng: e} }

// Engine returns the underlying engine.
func (r *Runner) Engine() *engine.Engine { return r.eng }

// Scale returns the runner's scale.
func (r *Runner) Scale() Scale { return r.eng.Scale() }

// Run executes one job (memoized).
func (r *Runner) Run(j Job) sim.Result { return r.eng.Run(j) }

// RunAll executes jobs shard-parallel and returns results in order.
func (r *Runner) RunAll(jobs []Job) []sim.Result { return r.eng.RunAll(jobs) }

// single runs one single-core (trace, prefetcher) pair with the default
// config.
func (r *Runner) single(traceName, pf string) sim.Result {
	return r.Run(Job{Traces: []string{traceName}, L1: []string{pf}})
}

// Speedup returns IPC(pf)/IPC(none) for one trace.
func (r *Runner) Speedup(traceName, pf string) float64 {
	base := r.single(traceName, "none").MeanIPC()
	if base == 0 {
		return 0
	}
	return r.single(traceName, pf).MeanIPC() / base
}

// SuiteTraces returns the evaluated trace names of a suite at this scale.
func (r *Runner) SuiteTraces(suite string) []string {
	infos := workload.Suite(suite)
	names := make([]string, 0, len(infos))
	for _, info := range infos {
		names = append(names, info.Name)
	}
	sort.Strings(names)
	scale := r.Scale()
	if scale.TracesPerSuite > 0 && len(names) > scale.TracesPerSuite {
		// Deterministic spread across the suite rather than a prefix.
		step := len(names) / scale.TracesPerSuite
		picked := make([]string, 0, scale.TracesPerSuite)
		for i := 0; i < scale.TracesPerSuite; i++ {
			picked = append(picked, names[i*step])
		}
		return picked
	}
	return names
}

// MainSuites returns the five suites of the paper's primary evaluation.
func MainSuites() []string {
	return []string{"spec06", "spec17", "ligra", "parsec", "cloud"}
}

// EvalSet returns the union of all main-suite traces at this scale.
func (r *Runner) EvalSet() []string {
	var out []string
	for _, s := range MainSuites() {
		out = append(out, r.SuiteTraces(s)...)
	}
	return out
}

// prewarm launches the (trace, pf) sims for all combinations in parallel.
func (r *Runner) prewarm(traces, pfs []string) {
	var jobs []Job
	for _, t := range traces {
		jobs = append(jobs, Job{Traces: []string{t}, L1: []string{"none"}})
		for _, p := range pfs {
			jobs = append(jobs, Job{Traces: []string{t}, L1: []string{p}})
		}
	}
	r.RunAll(jobs)
}

// vgazeSpeedup runs the vGaze variant with an arbitrary region byte size.
func (r *Runner) vgazeSpeedup(traceName string, regionBytes int) float64 {
	return r.Speedup(traceName, fmt.Sprintf("vGaze-%dB", regionBytes))
}

// gazePHTSizeSpeedup runs Gaze with a resized PHT (Fig 17b).
func (r *Runner) gazePHTSizeSpeedup(traceName string, entries int) float64 {
	return r.Speedup(traceName, fmt.Sprintf("Gaze-PHT%d", entries))
}

// suiteSpeedups computes per-suite geometric-mean speedups for a
// prefetcher.
func (r *Runner) suiteSpeedup(suite, pf string) float64 {
	var vals []float64
	for _, t := range r.SuiteTraces(suite) {
		vals = append(vals, r.Speedup(t, pf))
	}
	return stats.Geomean(vals)
}
