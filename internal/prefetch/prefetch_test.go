package prefetch

import (
	"testing"
	"testing/quick"
)

func TestTableLookupInsert(t *testing.T) {
	tb := NewTable[int](4, 2)
	if _, ok := tb.Lookup(0, 100); ok {
		t.Fatal("empty table hit")
	}
	tb.Insert(0, 100, 7)
	v, ok := tb.Lookup(0, 100)
	if !ok || *v != 7 {
		t.Fatalf("lookup after insert: %v, %v", v, ok)
	}
	// Same tag in a different set is distinct.
	if _, ok := tb.Lookup(1, 100); ok {
		t.Error("cross-set hit")
	}
}

func TestTableLRUEviction(t *testing.T) {
	tb := NewTable[string](1, 2)
	tb.Insert(0, 1, "a")
	tb.Insert(0, 2, "b")
	tb.Lookup(0, 1) // refresh "a"
	ev, was := tb.Insert(0, 3, "c")
	if !was || ev != "b" {
		t.Fatalf("evicted %q (was=%v), want \"b\"", ev, was)
	}
	if _, ok := tb.Peek(0, 1); !ok {
		t.Error("MRU entry evicted")
	}
}

func TestTableInsertUpdatesInPlace(t *testing.T) {
	tb := NewTable[int](2, 2)
	tb.Insert(0, 5, 1)
	ev, was := tb.Insert(0, 5, 2)
	if was {
		t.Errorf("in-place update reported eviction of %v", ev)
	}
	v, _ := tb.Peek(0, 5)
	if *v != 2 {
		t.Errorf("payload = %d, want 2", *v)
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d, want 1", tb.Len())
	}
}

func TestTablePeekDoesNotRefreshLRU(t *testing.T) {
	tb := NewTable[int](1, 2)
	tb.Insert(0, 1, 1)
	tb.Insert(0, 2, 2)
	tb.Peek(0, 1) // must NOT refresh
	tb.Insert(0, 3, 3)
	if _, ok := tb.Peek(0, 1); ok {
		t.Error("peeked entry survived eviction; Peek refreshed LRU")
	}
}

func TestTableInvalidate(t *testing.T) {
	tb := NewTable[int](2, 2)
	tb.Insert(1, 9, 42)
	v, ok := tb.Invalidate(1, 9)
	if !ok || v != 42 {
		t.Fatalf("invalidate returned %v, %v", v, ok)
	}
	if _, ok := tb.Peek(1, 9); ok {
		t.Error("entry present after invalidate")
	}
	if _, ok := tb.Invalidate(1, 9); ok {
		t.Error("double invalidate succeeded")
	}
}

func TestTableRangeAndClear(t *testing.T) {
	tb := NewTable[int](4, 2)
	tb.Insert(0, 1, 10)
	tb.Insert(1, 2, 20)
	tb.Insert(2, 3, 30)
	sum := 0
	tb.Range(func(_ int, _ uint64, v *int) { sum += *v })
	if sum != 60 {
		t.Errorf("Range sum = %d, want 60", sum)
	}
	tb.Clear()
	if tb.Len() != 0 {
		t.Errorf("Len after Clear = %d", tb.Len())
	}
}

func TestTableSetMasking(t *testing.T) {
	tb := NewTable[int](4, 1)
	tb.Insert(5, 7, 1) // set 5 & 3 == 1
	if _, ok := tb.Lookup(1, 7); !ok {
		t.Error("set index not masked consistently")
	}
}

func TestTablePanicsOnBadGeometry(t *testing.T) {
	for _, c := range []struct{ sets, ways int }{{0, 1}, {3, 1}, {4, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTable(%d,%d) did not panic", c.sets, c.ways)
				}
			}()
			NewTable[int](c.sets, c.ways)
		}()
	}
}

// Property: a table never holds more than sets*ways entries and an
// inserted key is immediately findable.
func TestTableProperty(t *testing.T) {
	f := func(keys []uint16) bool {
		tb := NewTable[uint16](4, 4)
		for _, k := range keys {
			tb.Insert(int(k%4), uint64(k), k)
			if v, ok := tb.Peek(int(k%4), uint64(k)); !ok || *v != k {
				return false
			}
			if tb.Len() > 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQueuePushPop(t *testing.T) {
	q := NewQueue(4, 1)
	q.Push(Request{VLine: 0x40, Level: LevelL1}, 10)
	req, at, ok := q.PopReady(10)
	if !ok || req.VLine != 0x40 || at != 10 {
		t.Fatalf("pop = %+v @%v ok=%v", req, at, ok)
	}
	if _, _, ok := q.PopReady(100); ok {
		t.Error("pop from empty queue succeeded")
	}
}

func TestQueueDrainRatePacing(t *testing.T) {
	q := NewQueue(16, 0.5) // one request per 2 cycles
	for i := 0; i < 4; i++ {
		q.Push(Request{VLine: uint64(i+1) * 64}, 0)
	}
	// At t=0 only the first is ready.
	var popped int
	for {
		if _, _, ok := q.PopReady(0); !ok {
			break
		}
		popped++
	}
	if popped != 1 {
		t.Errorf("popped %d at t=0, want 1", popped)
	}
	// By t=6 the rest are ready (slots at 2, 4, 6).
	for {
		if _, _, ok := q.PopReady(6); !ok {
			break
		}
		popped++
	}
	if popped != 4 {
		t.Errorf("popped %d by t=6, want 4", popped)
	}
}

func TestQueueFullDrops(t *testing.T) {
	q := NewQueue(2, 1)
	q.Push(Request{VLine: 64}, 0)
	q.Push(Request{VLine: 128}, 0)
	q.Push(Request{VLine: 192}, 0)
	if q.DropsFull != 1 {
		t.Errorf("DropsFull = %d, want 1", q.DropsFull)
	}
	if q.Len() != 2 {
		t.Errorf("Len = %d, want 2", q.Len())
	}
}

func TestQueueDupMergePromotesLevel(t *testing.T) {
	q := NewQueue(4, 1)
	q.Push(Request{VLine: 64, Level: LevelL2}, 0)
	q.Push(Request{VLine: 64, Level: LevelL1}, 0)
	if q.DropsDup != 1 {
		t.Errorf("DropsDup = %d, want 1", q.DropsDup)
	}
	req, _, _ := q.PopReady(10)
	if req.Level != LevelL1 {
		t.Errorf("merged level = %v, want L1", req.Level)
	}
	// And a weaker duplicate must not demote.
	q.Push(Request{VLine: 128, Level: LevelL1}, 0)
	q.Push(Request{VLine: 128, Level: LevelL2}, 0)
	req, _, _ = q.PopReady(10)
	if req.Level != LevelL1 {
		t.Errorf("level demoted to %v", req.Level)
	}
}

func TestQueueFIFOOrder(t *testing.T) {
	q := NewQueue(8, 8)
	for i := 1; i <= 5; i++ {
		q.Push(Request{VLine: uint64(i) * 64}, 0)
	}
	for i := 1; i <= 5; i++ {
		req, _, ok := q.PopReady(10)
		if !ok || req.VLine != uint64(i)*64 {
			t.Fatalf("pop %d = %+v ok=%v", i, req, ok)
		}
	}
}

func TestQueueFlush(t *testing.T) {
	q := NewQueue(8, 1)
	q.Push(Request{VLine: 64}, 0)
	q.Flush()
	if q.Len() != 0 {
		t.Error("queue not empty after flush")
	}
}

func TestLevelString(t *testing.T) {
	if LevelL1.String() != "L1" || LevelL2.String() != "L2" {
		t.Error("Level.String incorrect")
	}
}

func TestNilPrefetcher(t *testing.T) {
	var n Nil
	if n.Name() != "none" {
		t.Error("Nil name")
	}
	issued := 0
	n.Train(Access{}, func(Request) { issued++ })
	n.EvictNotify(0)
	if issued != 0 {
		t.Error("Nil issued a prefetch")
	}
}

func TestQueueRingWrap(t *testing.T) {
	q := NewQueue(4, 8)
	// Cycle pushes and pops well past the capacity so head wraps.
	next := uint64(64)
	for i := 0; i < 40; i++ {
		q.Push(Request{VLine: next}, float64(i))
		next += 64
		if i%2 == 1 {
			if _, _, ok := q.PopReady(float64(i) + 100); !ok {
				t.Fatalf("pop %d failed", i)
			}
		}
	}
	// FIFO must survive the wrapping: drain everything, in order.
	var prev uint64
	for q.Len() > 0 {
		req, _, ok := q.PopReady(1e9)
		if !ok {
			t.Fatal("queue non-empty but nothing ready")
		}
		if req.VLine <= prev {
			t.Fatalf("FIFO order broken: %#x after %#x", req.VLine, prev)
		}
		prev = req.VLine
	}
}

func TestQueueDupAfterWrap(t *testing.T) {
	q := NewQueue(2, 8)
	q.Push(Request{VLine: 64}, 0)
	q.Push(Request{VLine: 128}, 0)
	q.PopReady(100) // pops 64; head advanced
	q.Push(Request{VLine: 192}, 1)
	// 128 sits at a wrapped slot: its duplicate must still merge.
	q.Push(Request{VLine: 128, Level: LevelL1}, 2)
	if q.DropsDup != 1 {
		t.Fatalf("DropsDup = %d, want 1", q.DropsDup)
	}
	req, _, _ := q.PopReady(100)
	if req.VLine != 128 || req.Level != LevelL1 {
		t.Errorf("merged request = %+v, want vline 128 at L1", req)
	}
}

// TestRegionIndexDeletionChains drives the open-addressed index through
// colliding insert/remove sequences and cross-checks against a map.
func TestRegionIndexDeletionChains(t *testing.T) {
	idx := NewRegionIndex(32)
	ref := make(map[uint64]int)
	// A deterministic pseudo-random torture: keys drawn from a small
	// space force probe-chain collisions; interleaved removals exercise
	// backward-shift compaction, including wrapped segments.
	state := uint64(1)
	rnd := func(n uint64) uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return (state >> 33) % n
	}
	for i := 0; i < 5_000; i++ {
		key := rnd(64) * 64
		if _, ok := ref[key]; ok {
			if rnd(2) == 0 {
				idx.Remove(key)
				delete(ref, key)
			}
		} else if len(ref) < 32 {
			slot := int(rnd(1024))
			idx.Insert(key, slot)
			ref[key] = slot
		}
		probe := rnd(64) * 64
		got := idx.Lookup(probe)
		want, ok := ref[probe]
		if ok && got != want {
			t.Fatalf("step %d: Lookup(%#x) = %d, want %d", i, probe, got, want)
		}
		if !ok && got != -1 {
			t.Fatalf("step %d: Lookup(%#x) = %d, want absent", i, probe, got)
		}
	}
}

func TestPacerRingFIFOAndDedup(t *testing.T) {
	p := NewPacer(4, 2)
	for i := 1; i <= 6; i++ {
		p.Push(Request{VLine: uint64(i) * 64, Level: LevelL2})
	}
	if p.Dropped != 2 {
		t.Fatalf("Dropped = %d, want 2", p.Dropped)
	}
	p.Push(Request{VLine: 64, Level: LevelL1}) // dup upgrades level
	var got []Request
	issue := func(r Request) { got = append(got, r) }
	p.Drain(issue)
	p.Drain(issue)
	if len(got) != 4 {
		t.Fatalf("drained %d, want 4", len(got))
	}
	if got[0].VLine != 64 || got[0].Level != LevelL1 {
		t.Errorf("first drained = %+v, want upgraded vline 64", got[0])
	}
	for i := 1; i < len(got); i++ {
		if got[i].VLine != uint64(i+1)*64 {
			t.Errorf("drain order broken at %d: %+v", i, got[i])
		}
	}
	// After draining, re-pushing a previously seen line must not be
	// treated as a duplicate.
	p.Push(Request{VLine: 128, Level: LevelL2})
	if p.Len() != 1 {
		t.Errorf("re-push after drain: Len = %d, want 1", p.Len())
	}
}
