// A dependency-free lint for the Prometheus text exposition subset this
// repo emits, shared by the server's /metrics tests and cmd/promlint
// (which CI pipes a live scrape through). One parser, one set of rules:
// HELP/TYPE precede samples, TYPE is counter|gauge|histogram, counters
// are _total-suffixed, histogram families expose cumulative _bucket
// samples in ascending le order ending at +Inf plus matching _sum and
// _count, and nothing is declared or sampled twice.
package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// PromText is a parsed, validated exposition document. Samples are
// keyed by bare metric name when unlabeled, or name{labels-as-written}
// when labeled.
type PromText struct {
	// Types maps each declared family name to counter|gauge|histogram.
	Types map[string]string
	// Samples maps each sample line's identity to its value.
	Samples map[string]float64
}

// LintProm parses and validates a Prometheus text-format document,
// returning the parsed samples or the first convention violation.
func LintProm(text string) (*PromText, error) {
	doc := &PromText{Types: make(map[string]string), Samples: make(map[string]float64)}
	hists := make(map[string]*histFamily)
	var helpFor, typeFor string
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		fail := func(format string, args ...any) error {
			return fmt.Errorf("line %d: %s: %q", ln+1, fmt.Sprintf(format, args...), line)
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			// TrimSpace, not == "": "# HELP name  " (whitespace-only help)
			// split as a non-empty second field and passed silently.
			if len(parts) != 2 || !validMetricName(parts[0]) || strings.TrimSpace(parts[1]) == "" {
				return nil, fail("malformed HELP")
			}
			helpFor = parts[0]
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 || !validMetricName(parts[0]) {
				return nil, fail("malformed TYPE")
			}
			if parts[1] != "counter" && parts[1] != "gauge" && parts[1] != "histogram" {
				return nil, fail("TYPE %q not counter|gauge|histogram", parts[1])
			}
			if parts[0] != helpFor {
				return nil, fail("TYPE for %q without preceding HELP", parts[0])
			}
			if _, dup := doc.Types[parts[0]]; dup {
				return nil, fail("metric %q declared twice", parts[0])
			}
			typeFor, doc.Types[parts[0]] = parts[0], parts[1]
			if parts[1] == "histogram" {
				hists[parts[0]] = newHistFamily()
			}
		case strings.HasPrefix(line, "#"):
			return nil, fail("unexpected comment")
		default:
			name, labels, labelsRaw, value, err := parseSample(line)
			if err != nil {
				return nil, fail("%v", err)
			}
			key := name
			if labelsRaw != "" {
				key = name + "{" + labelsRaw + "}"
			}
			if _, dup := doc.Samples[key]; dup {
				return nil, fail("duplicate sample for %q", key)
			}
			doc.Samples[key] = value
			family, suffix := name, ""
			if h := hists[typeFor]; h != nil {
				// Histogram samples are family_bucket/_sum/_count.
				ok := false
				for _, sfx := range []string{"_bucket", "_sum", "_count"} {
					if name == typeFor+sfx {
						family, suffix, ok = typeFor, sfx, true
						break
					}
				}
				if !ok {
					return nil, fail("sample %q is not a _bucket/_sum/_count of histogram %q", name, typeFor)
				}
				if err := h.add(suffix, labels, value); err != nil {
					return nil, fail("%v", err)
				}
			} else {
				if family != typeFor {
					return nil, fail("sample %q without its TYPE header", name)
				}
				if len(labels) != 0 {
					return nil, fail("unexpected labels on %s %q", doc.Types[family], name)
				}
			}
			switch hasTotal := strings.HasSuffix(name, "_total"); {
			case doc.Types[family] == "counter" && !hasTotal:
				return nil, fail("counter %q not _total-suffixed", name)
			case doc.Types[family] != "counter" && hasTotal:
				return nil, fail("%s %q is _total-suffixed", doc.Types[family], name)
			}
		}
	}
	for name, h := range hists {
		if err := h.check(); err != nil {
			return nil, fmt.Errorf("histogram %s: %v", name, err)
		}
	}
	return doc, nil
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
			(i > 0 && '0' <= c && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// parseSample splits `name value` or `name{k="v",...} value` into its
// parts. labels preserves declaration order; labelsRaw is the verbatim
// text between the braces.
func parseSample(line string) (name string, labels [][2]string, labelsRaw string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", nil, "", 0, fmt.Errorf("unbalanced label braces")
		}
		name, labelsRaw, rest = line[:i], line[i+1:j], strings.TrimSpace(line[j+1:])
		if labels, err = parseLabels(labelsRaw); err != nil {
			return "", nil, "", 0, err
		}
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return "", nil, "", 0, fmt.Errorf("malformed sample")
		}
		name, rest = fields[0], fields[1]
	}
	if !validMetricName(name) {
		return "", nil, "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	if len(strings.Fields(rest)) != 1 {
		return "", nil, "", 0, fmt.Errorf("malformed sample value %q", rest)
	}
	value, err = strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", nil, "", 0, fmt.Errorf("unparseable value %q", rest)
	}
	return name, labels, labelsRaw, value, nil
}

// parseLabels parses `k="v",k2="v2"` honoring backslash escapes inside
// values.
func parseLabels(s string) ([][2]string, error) {
	var out [][2]string
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("malformed label pair in %q", s)
		}
		key := s[:eq]
		if !validMetricName(key) {
			return nil, fmt.Errorf("invalid label name %q", key)
		}
		s = s[eq+1:]
		if s == "" || s[0] != '"' {
			return nil, fmt.Errorf("label %q value not quoted", key)
		}
		i := 1
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(s) {
			return nil, fmt.Errorf("unterminated label value for %q", key)
		}
		val, err := strconv.Unquote(s[:i+1])
		if err != nil {
			return nil, fmt.Errorf("bad label value for %q: %v", key, err)
		}
		out = append(out, [2]string{key, val})
		s = s[i+1:]
		if s != "" {
			if s[0] != ',' {
				return nil, fmt.Errorf("expected ',' between labels, got %q", s)
			}
			s = s[1:]
		}
	}
	return out, nil
}

// histFamily accumulates one histogram family's samples for the
// post-pass structural checks, grouped by the non-le label set.
type histFamily struct {
	groups map[string]*histGroup
	sums   map[string]bool
	counts map[string]float64
}

type histGroup struct {
	les  []float64
	vals []float64
}

func newHistFamily() *histFamily {
	return &histFamily{
		groups: make(map[string]*histGroup),
		sums:   make(map[string]bool),
		counts: make(map[string]float64),
	}
}

func groupKey(labels [][2]string) string {
	var b strings.Builder
	for _, kv := range labels {
		if kv[0] == "le" {
			continue
		}
		b.WriteString(kv[0])
		b.WriteByte('=')
		b.WriteString(kv[1])
		b.WriteByte(',')
	}
	return b.String()
}

func (h *histFamily) add(suffix string, labels [][2]string, value float64) error {
	key := groupKey(labels)
	switch suffix {
	case "_bucket":
		le := ""
		for _, kv := range labels {
			if kv[0] == "le" {
				le = kv[1]
			}
		}
		if le == "" {
			return fmt.Errorf("_bucket sample missing le label")
		}
		bound := math.Inf(1)
		if le != "+Inf" {
			var err error
			if bound, err = strconv.ParseFloat(le, 64); err != nil {
				return fmt.Errorf("unparseable le %q", le)
			}
		}
		g := h.groups[key]
		if g == nil {
			g = &histGroup{}
			h.groups[key] = g
		}
		g.les = append(g.les, bound)
		g.vals = append(g.vals, value)
	case "_sum":
		h.sums[key] = true
	case "_count":
		h.counts[key] = value
	}
	return nil
}

func (h *histFamily) check() error {
	for key, g := range h.groups {
		name := key
		if name == "" {
			name = "(no labels)"
		}
		for i := 1; i < len(g.les); i++ {
			if g.les[i] <= g.les[i-1] {
				return fmt.Errorf("%s: le bounds not ascending", name)
			}
			if g.vals[i] < g.vals[i-1] {
				return fmt.Errorf("%s: bucket counts not cumulative", name)
			}
		}
		if len(g.les) == 0 || !math.IsInf(g.les[len(g.les)-1], 1) {
			return fmt.Errorf("%s: terminal bucket is not le=\"+Inf\"", name)
		}
		if !h.sums[key] {
			return fmt.Errorf("%s: missing _sum sample", name)
		}
		count, ok := h.counts[key]
		if !ok {
			return fmt.Errorf("%s: missing _count sample", name)
		}
		if g.vals[len(g.vals)-1] != count {
			return fmt.Errorf("%s: +Inf bucket (%g) != _count (%g)", name, g.vals[len(g.vals)-1], count)
		}
	}
	// _sum/_count without any buckets is also malformed.
	for key := range h.counts {
		if h.groups[key] == nil {
			return fmt.Errorf("%s: _count without _bucket samples", key)
		}
	}
	return nil
}
