package engine

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestOverridesValidateBounds(t *testing.T) {
	good := []Overrides{
		{}, // all defaults
		{LLCMBPerCore: 0.5}, {LLCMBPerCore: 64},
		{L2KB: 128}, {L2KB: 16384},
		{DRAMMTPS: 800}, {DRAMMTPS: 51200},
		{PQCapacity: 1}, {PQCapacity: 4096},
		{PQDrainRate: 0.5}, {PQDrainRate: 64},
		{WarmupInstructions: 1000, SimInstructions: 50_000_000},
		{LLCMBPerCore: 2, L2KB: 512, DRAMMTPS: 3200, PQCapacity: 32, PQDrainRate: 1},
	}
	for _, o := range good {
		if err := o.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", o, err)
		}
	}
	bad := []Overrides{
		{LLCMBPerCore: math.NaN()}, {PQDrainRate: math.NaN()},
		{LLCMBPerCore: math.Inf(1)}, {PQDrainRate: math.Inf(-1)},
		{LLCMBPerCore: 0.01}, {LLCMBPerCore: 1000}, {LLCMBPerCore: -1},
		{L2KB: 4}, {L2KB: 1 << 20}, {L2KB: -128},
		{DRAMMTPS: 50}, {DRAMMTPS: 1 << 20}, {DRAMMTPS: -800},
		{PQCapacity: -1}, {PQCapacity: 1 << 20},
		{PQDrainRate: -2}, {PQDrainRate: 1000},
		{WarmupInstructions: 1 << 40}, {SimInstructions: 1 << 40},
	}
	for _, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an out-of-range override", o)
		}
	}
}

func TestOverridesApply(t *testing.T) {
	def := sim.DefaultConfig(1)
	if got := (Overrides{}).Apply(def); got != def {
		t.Errorf("zero Overrides changed the config: %+v", got)
	}
	o := Overrides{
		LLCMBPerCore:       1,
		L2KB:               256,
		DRAMMTPS:           1600,
		PQCapacity:         16,
		PQDrainRate:        2,
		WarmupInstructions: 1111,
		SimInstructions:    2222,
	}
	got := o.Apply(def)
	if got.LLC.Sets != def.LLC.Sets/2 {
		t.Errorf("1MB/core LLC sets = %d, want half of default %d", got.LLC.Sets, def.LLC.Sets)
	}
	if got.L2C.Sets != def.L2C.Sets/2 {
		t.Errorf("256KB L2C sets = %d, want half of default %d", got.L2C.Sets, def.L2C.Sets)
	}
	if got.DRAM.MTPS != 1600 || got.PQCapacity != 16 || got.PQDrainRate != 2 ||
		got.WarmupInstructions != 1111 || got.SimInstructions != 2222 {
		t.Errorf("Apply dropped a knob: %+v", got)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("applied config invalid: %v", err)
	}
}

func TestOverridesWithParam(t *testing.T) {
	base := Overrides{DRAMMTPS: 1600}
	o, err := base.WithParam("llc_mb_per_core", 0.5)
	if err != nil || o.LLCMBPerCore != 0.5 || o.DRAMMTPS != 1600 {
		t.Errorf("WithParam(llc_mb_per_core) = %+v, %v", o, err)
	}
	for param, v := range map[string]float64{
		"l2_kb": 256, "dram_mtps": 800, "pq_capacity": 8, "pq_drain_rate": 0.5,
	} {
		if _, err := (Overrides{}).WithParam(param, v); err != nil {
			t.Errorf("WithParam(%s, %g) = %v", param, v, err)
		}
	}
	if _, err := base.WithParam("dram_mtps", 1600.5); err == nil ||
		!strings.Contains(err.Error(), "integer") {
		t.Errorf("fractional integer knob accepted: %v", err)
	}
	if _, err := base.WithParam("llc", 1); err == nil ||
		!strings.Contains(err.Error(), "unknown sweep param") {
		t.Errorf("unknown param accepted: %v", err)
	}
	if _, err := base.WithParam("dram_mtps", 1); err == nil {
		t.Error("out-of-range value accepted")
	}
	// Zero would run the default config while claiming to be a swept point.
	if _, err := base.WithParam("llc_mb_per_core", 0); err == nil {
		t.Error("zero axis value accepted")
	}
	if len(SweepParams()) != 5 {
		t.Errorf("SweepParams = %v, want the five sweepable knobs", SweepParams())
	}
}
