// Timeline API: serving the interval-sampled simulation telemetry
// documents the engine persists beside its results (DESIGN.md §11).
//
//	GET /results/{addr}/timeline  one run's timeline (JSON, or CSV via ?format=csv)
//	GET /analytics/timeline       per-prefetcher timeline overlay for one workload
//
// Timelines are derived data: they exist only for runs computed with
// telemetry armed, so the document endpoint distinguishes "not yet" from
// "never" — 409 while the engine is computing the address right now
// (poll again), 404 when no document exists and nothing is in flight.
// Both endpoints are pure reads with strong ETags, following the
// /analytics caching discipline: the document ETag hashes the exact
// bytes served, so a matching If-None-Match answers 304 without
// re-rendering.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/engine"
	"repro/internal/prefetchers"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TimelineSchemaVersion stamps the /analytics/timeline overlay document
// shape (the per-result document carries engine.TelemetrySchemaVersion).
//
// v1: first version (PR 10).
const TimelineSchemaVersion = 1

// timelineQueryParams is the accepted query-parameter set for
// GET /results/{addr}/timeline. Unknown parameters are rejected with a
// 400, mirroring the /analytics strictness.
var timelineQueryParams = map[string]bool{"format": true}

func (s *Server) handleResultTimeline(w http.ResponseWriter, r *http.Request) {
	for k := range r.URL.Query() {
		if !timelineQueryParams[k] {
			httpError(w, http.StatusBadRequest, "unknown query parameter %q (want format)", k)
			return
		}
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	if format != "json" && format != "csv" {
		httpError(w, http.StatusBadRequest, "unknown format %q (want json or csv)", format)
		return
	}
	addr := r.PathValue("addr")
	doc, ok := s.eng.Telemetry(addr)
	if !ok {
		// Distinguish "not yet" from "never": an in-flight computation of
		// this address will persist its timeline before the result commits,
		// so a 409 here means "poll again", while 404 is definitive — no
		// document, nothing running (completed runs without telemetry armed,
		// cached replays, or an address this service has never seen).
		if s.eng.Computing(addr) {
			httpError(w, http.StatusConflict, "result %s is computing; its timeline is not yet persisted", short12(addr))
			return
		}
		httpError(w, http.StatusNotFound, "no timeline document for %s (run completed without telemetry, or unknown address)", short12(addr))
		return
	}
	// Strong per-representation ETag: the served bytes are a pure function
	// of (document, format), and the document at one address never changes
	// (content addressing), so the tag is stable until GC removes it.
	etag := timelineETag(format, doc)
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "public, no-cache")
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	if format == "csv" {
		tel, err := engine.DecodeTelemetry(doc)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "decoding stored timeline: %v", err)
			return
		}
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		writeTimelineCSV(w, tel)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(doc) //nolint:errcheck // client disconnects are routine
}

// timelineETag derives the strong ETag for one rendered representation.
func timelineETag(format string, doc []byte) string {
	h := sha256.New()
	io.WriteString(h, "timeline-etag/v1\n")
	io.WriteString(h, format)
	io.WriteString(h, "\n")
	h.Write(doc)
	return `"` + hex.EncodeToString(h.Sum(nil)) + `"`
}

// timelineCSVHeader names the flattened per-interval columns, one row
// per (core, interval).
const timelineCSVHeader = "core,prefetcher,start,end,ipc,l1_mpki,l2_mpki,llc_mpki,prefetches_issued,useful_prefetches,late_prefetches,accuracy,coverage,pq_occupancy,dram_row_hit_rate\n"

// writeTimelineCSV flattens a timeline document into spreadsheet- and
// gnuplot-friendly rows.
func writeTimelineCSV(w io.Writer, tel *sim.Telemetry) {
	var b strings.Builder
	b.WriteString(timelineCSVHeader)
	for ci, core := range tel.Cores {
		for _, s := range core.Samples {
			b.WriteString(strconv.Itoa(ci))
			b.WriteByte(',')
			b.WriteString(core.Prefetcher)
			b.WriteByte(',')
			b.WriteString(strconv.FormatUint(s.Start, 10))
			b.WriteByte(',')
			b.WriteString(strconv.FormatUint(s.End, 10))
			b.WriteByte(',')
			b.WriteString(csvFloat(s.IPC))
			b.WriteByte(',')
			b.WriteString(csvFloat(s.L1MPKI))
			b.WriteByte(',')
			b.WriteString(csvFloat(s.L2MPKI))
			b.WriteByte(',')
			b.WriteString(csvFloat(s.LLCMPKI))
			b.WriteByte(',')
			b.WriteString(strconv.FormatUint(s.PrefetchesIssued, 10))
			b.WriteByte(',')
			b.WriteString(strconv.FormatUint(s.UsefulPrefetches, 10))
			b.WriteByte(',')
			b.WriteString(strconv.FormatUint(s.LatePrefetches, 10))
			b.WriteByte(',')
			b.WriteString(csvFloat(s.Accuracy))
			b.WriteByte(',')
			b.WriteString(csvFloat(s.Coverage))
			b.WriteByte(',')
			b.WriteString(strconv.Itoa(s.PQOccupancy))
			b.WriteByte(',')
			b.WriteString(csvFloat(s.DRAMRowHitRate))
			b.WriteByte('\n')
		}
	}
	io.WriteString(w, b.String()) //nolint:errcheck // client disconnects are routine
}

func csvFloat(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// short12 abbreviates a content address for error messages.
func short12(addr string) string {
	if len(addr) > 12 {
		return addr[:12]
	}
	return addr
}

// TimelineSeries is one prefetcher's timeline in the overlay: the
// engine job's content address (correlatable with /sweep rows and store
// entries), whether a timeline document exists for it, and when it does,
// core 0's interval samples plus the prefetcher's introspection
// document.
type TimelineSeries struct {
	Prefetcher    string               `json:"prefetcher"`
	Address       string               `json:"address"`
	Complete      bool                 `json:"complete"`
	Samples       []sim.IntervalSample `json:"samples,omitempty"`
	Introspection json.RawMessage      `json:"introspection,omitempty"`
}

// TimelineOverlayResponse is the GET /analytics/timeline document:
// per-prefetcher interval timelines for one workload, aggregating only
// timelines that already exist (like the other analytics endpoints, it
// never simulates).
type TimelineOverlayResponse struct {
	SchemaVersion  int              `json:"schema_version"`
	Trace          string           `json:"trace"`
	Interval       uint64           `json:"interval,omitempty"`
	ETag           string           `json:"etag"`
	SeriesTotal    int              `json:"series_total"`
	SeriesComplete int              `json:"series_complete"`
	Series         []TimelineSeries `json:"series"`
}

// timelineOverlayParams is the accepted query-parameter set for
// GET /analytics/timeline.
var timelineOverlayParams = map[string]bool{"trace": true, "prefetchers": true}

func (s *Server) handleAnalyticsTimeline(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	for k := range q {
		if !timelineOverlayParams[k] {
			httpError(w, http.StatusBadRequest, "unknown query parameter %q (want trace, prefetchers)", k)
			return
		}
	}
	tr := q.Get("trace")
	if tr == "" {
		httpError(w, http.StatusBadRequest, "trace is required")
		return
	}
	if !workload.Exists(tr) {
		httpError(w, http.StatusBadRequest, "unknown trace %q", tr)
		return
	}
	pfs := splitList(q.Get("prefetchers"))
	if len(pfs) == 0 {
		pfs = prefetchers.EvaluatedNames()
	}
	pfs = dedupe(pfs)
	for _, pf := range pfs {
		if _, err := prefetchers.New(pf); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	// The overlay addresses exactly the single-core jobs a sweep of
	// (trace, prefetchers) would run — slice policy included, so a sweep's
	// auto-sliced timelines are found under the same addresses.
	scale := s.eng.Scale()
	resp := TimelineOverlayResponse{
		SchemaVersion: TimelineSchemaVersion,
		Trace:         tr,
		SeriesTotal:   len(pfs),
	}
	var present []string
	addrs := make([]string, len(pfs))
	for i, pf := range pfs {
		job := engine.Job{Traces: []string{tr}, L1: []string{pf}}
		s.slice.apply(scale, &job)
		addrs[i] = job.ContentAddress(scale)
	}
	for i, pf := range pfs {
		series := TimelineSeries{Prefetcher: pf, Address: addrs[i]}
		if doc, ok := s.eng.Telemetry(addrs[i]); ok {
			if tel, err := engine.DecodeTelemetry(doc); err == nil && len(tel.Cores) > 0 {
				series.Complete = true
				series.Samples = tel.Cores[0].Samples
				if tel.Cores[0].Introspection != nil {
					if raw, err := json.Marshal(tel.Cores[0].Introspection); err == nil {
						series.Introspection = raw
					}
				}
				if resp.Interval == 0 {
					resp.Interval = tel.Interval
				}
				resp.SeriesComplete++
				present = append(present, addrs[i])
			}
		}
		resp.Series = append(resp.Series, series)
	}
	// ETag over the requested series set plus the subset with timelines:
	// for a fixed URL it changes exactly when a new timeline lands (or is
	// GC'd), so dashboards revalidate with stat-cheap 304s.
	sort.Strings(present)
	h := sha256.New()
	io.WriteString(h, "timeline-overlay-etag/v1\n")
	for _, a := range addrs {
		fmt.Fprintln(h, a)
	}
	io.WriteString(h, "--\n")
	for _, a := range present {
		fmt.Fprintln(h, a)
	}
	etag := `"` + hex.EncodeToString(h.Sum(nil)) + `"`
	resp.ETag = etag
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "public, no-cache")
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
