package prefetch

// Queue is the prefetch queue (PQ) between a prefetcher and the memory
// system. Requests enter when the prefetcher issues them and drain at a
// bounded rate; when the queue is full, new requests are dropped — the
// saturation behaviour behind the paper's vBerti redundant-prefetch
// analysis (§IV-B3): junk requests occupy slots and delay useful ones.
//
// The queue is a fixed-capacity ring buffer paired with an open-addressed
// resident-line index, so the simulation steady state is allocation-free:
// Push is O(1) (the index replaces the old linear duplicate scan) and
// PopReady is O(1) (the ring replaces the old copy-shift dequeue).
type Queue struct {
	drainRate float64  // requests per cycle
	interval  float64  // 1/drainRate, precomputed off the push path
	items     []queued // ring storage; len(items) is the capacity
	head      int      // ring position of the oldest request
	count     int      // live requests
	resident  RegionIndex
	nextSlot  float64 // earliest cycle the next drained request may issue

	// Stats
	Enqueued  uint64
	DropsFull uint64
	DropsDup  uint64
}

type queued struct {
	req     Request
	readyAt float64
}

// NewQueue builds a queue with the given capacity and drain rate
// (requests per cycle). Both must be positive.
func NewQueue(capacity int, drainRate float64) *Queue {
	if capacity <= 0 || drainRate <= 0 {
		panic("prefetch: queue capacity and drain rate must be positive")
	}
	return &Queue{
		drainRate: drainRate,
		interval:  1 / drainRate,
		items:     make([]queued, capacity),
		resident:  NewRegionIndex(capacity),
	}
}

// Push enqueues a request at cycle now. Duplicate line addresses already
// queued are merged (keeping the more aggressive level); a full queue
// drops the request.
func (q *Queue) Push(req Request, now float64) {
	if slot := q.resident.Lookup(req.VLine); slot >= 0 {
		if req.Level < q.items[slot].req.Level {
			q.items[slot].req.Level = req.Level
		}
		q.DropsDup++
		return
	}
	if q.count >= len(q.items) {
		q.DropsFull++
		return
	}
	ready := now
	if q.nextSlot > ready {
		ready = q.nextSlot
	}
	q.nextSlot = ready + q.interval
	tail := q.head + q.count
	if tail >= len(q.items) {
		tail -= len(q.items)
	}
	q.items[tail] = queued{req: req, readyAt: ready}
	q.resident.Insert(req.VLine, tail)
	q.count++
	q.Enqueued++
}

// PopReady removes and returns the oldest request whose issue slot has
// arrived by cycle now.
func (q *Queue) PopReady(now float64) (Request, float64, bool) {
	if q.count == 0 || q.items[q.head].readyAt > now {
		return Request{}, 0, false
	}
	it := q.items[q.head]
	q.resident.Remove(it.req.VLine)
	q.head++
	if q.head == len(q.items) {
		q.head = 0
	}
	q.count--
	return it.req, it.readyAt, true
}

// Len returns the number of queued requests.
func (q *Queue) Len() int { return q.count }

// Cap returns the queue capacity.
func (q *Queue) Cap() int { return len(q.items) }

// Flush discards all queued requests (end of simulation).
func (q *Queue) Flush() {
	q.head, q.count = 0, 0
	q.resident.Clear()
}
