// Package rng provides a small, fast, deterministic pseudo-random number
// generator used by the synthetic workload generators and the experiment
// harness. Determinism matters: every paper experiment must reproduce the
// same trace stream on every run, so the generators avoid math/rand's
// global state and seed from stable strings.
package rng

// Source is a splitmix64-seeded xoshiro256** generator.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given 64-bit seed via splitmix64,
// which guarantees a well-mixed nonzero state for any seed.
func New(seed uint64) *Source {
	var src Source
	x := seed
	for i := range src.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	return &src
}

// NewFromString seeds a Source from a string (FNV-1a), so workloads can be
// keyed by their catalogue names.
func NewFromString(name string) *Source {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return New(h)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Geometric returns a sample from a geometric distribution with mean m
// (m >= 1), truncated at 64*m to bound pathological tails.
func (r *Source) Geometric(m float64) int {
	if m < 1 {
		m = 1
	}
	p := 1 / m
	n := 0
	limit := int(64 * m)
	for !r.Bool(p) && n < limit {
		n++
	}
	return n + 1
}

// Zipf returns a sample in [0, n) following an approximate Zipf(s)
// distribution, used to model skewed reuse (hot pages, hot vertices).
func (r *Source) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	// Inverse-CDF approximation for the continuous analogue; adequate for
	// workload shaping (we need skew, not statistical exactness).
	u := r.Float64()
	if s == 1 {
		s = 1.0001
	}
	x := float64(n)
	v := u*(pow(x, 1-s)-1) + 1
	idx := int(pow(v, 1/(1-s))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

func pow(x, y float64) float64 {
	// Minimal exp/log-based power to avoid importing math in hot paths is
	// not worth it; delegate to math via small wrapper.
	return mathPow(x, y)
}
