// Package jobs turns the engine's declarative experiment specs into
// durable background work — the asynchronous face of gazeserve. A Manager
// accepts sweep/simulate specs as jobs, coalesces identical in-flight
// submissions through content-addressed IDs (built from the same
// engine.Job canonical encodings the result store is keyed by), runs them
// on a bounded worker pool with FIFO + priority lanes, tracks live
// engine.Progress per job, cancels cooperatively at shard boundaries, and
// journals every state transition to disk so a restarted process resumes
// queued jobs and surfaces interrupted ones instead of silently losing
// them.
//
// The package is deliberately ignorant of HTTP and of the request types
// it executes: a Compiler injected at Open turns a Spec's raw request
// into engine jobs plus a result-assembly closure, so internal/server
// reuses exactly the validation and work caps of its synchronous
// handlers without an import cycle.
package jobs

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/sim"
)

// State is a job's lifecycle position. Jobs move queued → running →
// one of the terminal states; interrupted is terminal but resubmittable
// (Submit re-queues a job whose previous attempt failed, was canceled or
// was interrupted, under the same content-addressed ID).
type State string

// Job states.
const (
	Queued      State = "queued"
	Running     State = "running"
	Succeeded   State = "succeeded"
	Failed      State = "failed"
	Canceled    State = "canceled"
	Interrupted State = "interrupted"
)

// Terminal reports whether no further transitions can happen without a
// resubmission.
func (s State) Terminal() bool {
	switch s {
	case Succeeded, Failed, Canceled, Interrupted:
		return true
	}
	return false
}

// Priority selects a dispatch lane. The dispatcher always drains the high
// lane before the normal one; within a lane jobs start in FIFO order.
// Priority is deliberately excluded from the job ID: the same work
// submitted on both lanes is still the same work and coalesces.
type Priority string

// Dispatch lanes.
const (
	Normal Priority = "normal"
	High   Priority = "high"
)

// Spec is what clients submit: a request kind ("sweep", "simulate"), its
// raw declarative body, and an optional lane. The raw body is kept
// verbatim so it journals and replays without the jobs package knowing
// its schema.
type Spec struct {
	Type     string          `json:"type"`
	Request  json.RawMessage `json:"request"`
	Priority Priority        `json:"priority,omitempty"`
}

// Plan is a compiled spec: the engine jobs to run and a closure that
// assembles the client-facing result document from their results.
// Fingerprint is the compiler's normalized spelling of the request (field
// order and whitespace canonicalized); it feeds the job ID so two
// byte-different but semantically identical submissions coalesce, while
// requests that compile to the same engine jobs but shape their responses
// differently (a one-value axis sweep versus plain overrides) stay
// distinct.
type Plan struct {
	Fingerprint string
	Jobs        []engine.Job
	Finalize    func(results []sim.Result) any
}

// Compiler validates a spec and compiles it to a Plan. Compilation errors
// are client errors (the HTTP layer maps them to 400s).
type Compiler func(spec Spec) (*Plan, error)

// Executor runs a compiled plan's engine jobs and returns their results
// in input order. It is the manager's dispatch seam: the default executor
// runs everything on the local engine (RunAllContext), while a cluster
// coordinator substitutes one that leases the work to remote workers.
// The contract mirrors RunAllContext: cooperative cancellation through
// ctx (partial results plus ctx.Err()), one progress callback per
// completed engine job, and the first deterministic job failure returned
// as the error.
type Executor func(ctx context.Context, jobs []engine.Job, progress func(engine.Progress)) ([]sim.Result, error)

// Progress is a job's live advancement, fed by the engine's per-completion
// callbacks.
type Progress struct {
	// Done and Total count engine jobs within this job's sweep.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Cached counts completions served from the memo or store.
	Cached int `json:"cached"`
	// Elapsed is the time since the job started running; Remaining is the
	// engine's ETA extrapolation (0 until the first simulation completes).
	Elapsed   time.Duration `json:"elapsed"`
	Remaining time.Duration `json:"remaining"`
}

// Record is a point-in-time snapshot of a job, safe to hold after the
// manager moves on.
type Record struct {
	ID    string
	Spec  Spec
	State State
	// Error is set for failed jobs and explains canceled/interrupted ones.
	Error string
	// Recovered marks a job resumed from the journal after a restart.
	Recovered bool
	Created   time.Time
	Started   time.Time
	Finished  time.Time
	Progress  Progress
	// TraceID correlates the job with its spans (GET /debug/traces?job=).
	// Set when the job starts running under a tracer; the submitter's
	// trace ID when the submission carried one.
	TraceID string
	// Timings is the terminal phase breakdown (nil until the job
	// finishes). Persisted in the journal, so it survives restarts.
	Timings *Timings
	// Addresses lists the content addresses of the engine jobs a
	// succeeded job ran (deduped, plan order) — the correlation handles
	// for per-result artifacts like timeline documents. Persisted in the
	// journal like Timings.
	Addresses []string
}

// Timings is a finished job's phase-duration breakdown in milliseconds.
// Phases decomposes the job's wall clock — queue_wait + execute +
// finalize sums to ≈ TotalMS. Spans aggregates the durations of every
// instrumentation span recorded under the job (engine.materialize,
// engine.simulate, engine.shard, cluster.* ...); those ran concurrently
// across shards and slices, so their sum routinely exceeds wall time.
type Timings struct {
	TotalMS int64            `json:"total_ms"`
	Phases  map[string]int64 `json:"phases"`
	Spans   map[string]int64 `json:"spans,omitempty"`
}

// record is the manager-internal mutable job. Everything is guarded by
// Manager.mu.
type record struct {
	Record
	plan            *Plan
	cancel          context.CancelFunc
	cancelRequested bool
	doc             any
	subs            map[chan Record]struct{}
	// traceCtx is the submitter's span identity, captured by
	// SubmitContext so the background run continues the same trace.
	traceCtx obs.SpanContext
}

// Sentinel errors, mapped to HTTP statuses by internal/server.
var (
	ErrNotFound  = errors.New("jobs: no such job")
	ErrQueueFull = errors.New("jobs: queue is full")
	ErrClosed    = errors.New("jobs: manager is shut down")
	ErrNotReady  = errors.New("jobs: result not available")
	ErrTerminal  = errors.New("jobs: job already finished")
)

// Counters summarizes the manager's jobs for monitoring (/stats).
// Queued..Interrupted count current records per state; Recovered counts
// queued jobs this process resumed from the journal at Open.
type Counters struct {
	Queued      int `json:"queued"`
	Running     int `json:"running"`
	Succeeded   int `json:"succeeded"`
	Failed      int `json:"failed"`
	Canceled    int `json:"canceled"`
	Interrupted int `json:"interrupted"`
	Recovered   int `json:"recovered"`
}

// Options configures a Manager.
type Options struct {
	// Engine runs the compiled jobs; shared with the synchronous handlers
	// so background and foreground work coalesce onto one memo. Required.
	Engine *engine.Engine
	// Compile turns specs into plans. Required.
	Compile Compiler
	// Dir persists the journal (Dir/journal.ndjson) and result documents
	// (Dir/results/<id>.json). Empty disables durability: jobs live and
	// die with the process.
	Dir string
	// Workers bounds concurrently running jobs (not engine shards — each
	// running job still fans out across the engine's workers). Default 2.
	Workers int
	// QueueDepth bounds queued jobs across both lanes; Submit returns
	// ErrQueueFull beyond it. Default 64.
	QueueDepth int
	// Execute runs a plan's engine jobs. Nil selects the local engine
	// (Engine.RunAllContext); a cluster coordinator injects its
	// lease-to-workers executor here.
	Execute Executor
	// Tracer, when set, records a root span per job run (continuing the
	// submitter's trace when SubmitContext captured one) plus compile
	// spans at submission. Observability-only.
	Tracer *obs.Tracer
	// QueueWait, when set, observes each dispatched job's submit→start
	// wait into a latency histogram.
	QueueWait *obs.Histogram
}

// Manager owns the job table, the dispatch lanes and the journal. It is
// safe for concurrent use.
type Manager struct {
	eng        *engine.Engine
	compile    Compiler
	execute    Executor
	workers    int
	queueDepth int
	journal    *journal
	dir        string
	tracer     *obs.Tracer
	queueWait  *obs.Histogram

	mu        sync.Mutex
	cond      *sync.Cond
	recs      map[string]*record
	order     []string // submission order, for List
	lanes     map[Priority][]string
	running   int
	recovered int
	closing   bool

	dispatcherDone chan struct{}
}

// Open builds a Manager, replays the journal in opts.Dir (recovering
// queued jobs and marking crashed-while-running ones interrupted),
// compacts it, and starts the dispatcher.
func Open(opts Options) (*Manager, error) {
	if opts.Engine == nil || opts.Compile == nil {
		return nil, errors.New("jobs: Options.Engine and Options.Compile are required")
	}
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.Execute == nil {
		eng := opts.Engine
		opts.Execute = func(ctx context.Context, js []engine.Job, progress func(engine.Progress)) ([]sim.Result, error) {
			return eng.RunAllContext(ctx, js, progress)
		}
	}
	m := &Manager{
		eng:            opts.Engine,
		compile:        opts.Compile,
		execute:        opts.Execute,
		workers:        opts.Workers,
		queueDepth:     opts.QueueDepth,
		dir:            opts.Dir,
		tracer:         opts.Tracer,
		queueWait:      opts.QueueWait,
		recs:           make(map[string]*record),
		lanes:          map[Priority][]string{High: nil, Normal: nil},
		dispatcherDone: make(chan struct{}),
	}
	m.cond = sync.NewCond(&m.mu)
	if opts.Dir != "" {
		if err := os.MkdirAll(filepath.Join(opts.Dir, "results"), 0o755); err != nil {
			return nil, fmt.Errorf("jobs: opening journal dir: %w", err)
		}
		j, entries, err := openJournal(filepath.Join(opts.Dir, "journal.ndjson"))
		if err != nil {
			return nil, err
		}
		m.journal = j
		m.recover(entries)
		// Compact: one queued entry (carrying the spec) plus at most one
		// state entry per live job replaces the full history — and
		// rewriting atomically heals any torn tail the crash left behind.
		m.journal.rewrite(m.compactedEntries()) //nolint:errcheck // durability is best-effort
	}
	go m.dispatch()
	return m, nil
}

// Dir returns the manager's durable directory ("" when not durable).
func (m *Manager) Dir() string { return m.dir }

// Accepting reports whether Submit would currently enqueue work — false
// from the first Shutdown call on. It is the jobs half of the server's
// readiness probe: a draining process should fall out of load-balancer
// rotation before its queue refuses submissions with 503s.
func (m *Manager) Accepting() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.closing
}

// idFor derives the job's content-addressed identity from the compiled
// work itself: the spec kind, the compiler's normalized request spelling,
// and the canonical encoding of every engine job (which folds in the
// engine scale, budgets and the store schema version — the same preimage
// the result store is keyed by). Two submissions that would run the same
// simulations and shape the same response hash identically and coalesce.
func (m *Manager) idFor(spec Spec, plan *Plan) string {
	h := sha256.New()
	scale := m.eng.Scale()
	io.WriteString(h, "jobs/v1\n")
	io.WriteString(h, spec.Type)
	io.WriteString(h, "\n")
	io.WriteString(h, plan.Fingerprint)
	io.WriteString(h, "\n")
	for _, j := range plan.Jobs {
		io.WriteString(h, j.CanonicalJSON(scale))
		io.WriteString(h, "\n")
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Submit compiles and enqueues a spec. The returned bool reports
// coalescing: true when an identical job was already queued, running or
// succeeded and that record is returned instead of enqueueing new work.
// A previous attempt that failed, was canceled or was interrupted is
// re-queued under the same ID.
func (m *Manager) Submit(spec Spec) (Record, bool, error) {
	return m.SubmitContext(context.Background(), spec)
}

// SubmitContext is Submit carrying the submitter's context for
// observability only: the compile span lands under the caller's trace,
// and the span identity is captured so the background run continues the
// same trace end to end. Execution is unaffected — the job never
// inherits the request's cancellation.
func (m *Manager) SubmitContext(ctx context.Context, spec Spec) (Record, bool, error) {
	if spec.Priority == "" {
		spec.Priority = Normal
	}
	if spec.Priority != Normal && spec.Priority != High {
		return Record{}, false, fmt.Errorf("jobs: unknown priority %q (want %q or %q)", spec.Priority, Normal, High)
	}
	_, csp := obs.Start(obs.WithTracer(ctx, m.tracer), "job.compile", obs.String("type", spec.Type))
	plan, err := m.compile(spec)
	csp.End()
	if err != nil {
		return Record{}, false, err
	}
	id := m.idFor(spec, plan)
	traceCtx := obs.SpanContextFrom(ctx)

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closing {
		return Record{}, false, ErrClosed
	}
	if rec, ok := m.recs[id]; ok {
		switch rec.State {
		case Queued, Running:
			return rec.Record, true, nil
		case Succeeded:
			if m.resultAvailableLocked(rec) {
				return rec.Record, true, nil
			}
			// Succeeded but the document is gone (the best-effort result
			// write failed and the process restarted): coalescing onto it
			// would make the work permanently unfetchable — re-run instead.
		}
		// Failed / canceled / interrupted: re-run under the same identity.
		if err := m.queueDepthOK(); err != nil {
			return Record{}, false, err
		}
		rec.Spec = spec
		rec.plan = plan
		rec.State = Queued
		rec.Error = ""
		rec.Started, rec.Finished = time.Time{}, time.Time{}
		rec.Progress = Progress{}
		rec.cancelRequested = false
		rec.doc = nil
		rec.TraceID, rec.Timings, rec.Addresses = "", nil, nil
		rec.traceCtx = traceCtx
		m.enqueueLocked(rec)
		return rec.Record, false, nil
	}
	if err := m.queueDepthOK(); err != nil {
		return Record{}, false, err
	}
	rec := &record{
		Record:   Record{ID: id, Spec: spec, State: Queued, Created: time.Now()},
		plan:     plan,
		traceCtx: traceCtx,
	}
	m.recs[id] = rec
	m.order = append(m.order, id)
	m.enqueueLocked(rec)
	return rec.Record, false, nil
}

func (m *Manager) queueDepthOK() error {
	if len(m.lanes[High])+len(m.lanes[Normal]) >= m.queueDepth {
		return ErrQueueFull
	}
	return nil
}

// enqueueLocked appends the (already queued-state) record to its lane,
// journals the transition and wakes the dispatcher.
func (m *Manager) enqueueLocked(rec *record) {
	m.lanes[rec.Spec.Priority] = append(m.lanes[rec.Spec.Priority], rec.ID)
	m.journalLocked(rec)
	m.notifyLocked(rec)
	m.cond.Broadcast()
}

// popLocked removes and returns the next job to start: high lane first,
// FIFO within a lane; "" when both lanes are empty.
func (m *Manager) popLocked() string {
	for _, lane := range []Priority{High, Normal} {
		if ids := m.lanes[lane]; len(ids) > 0 {
			id := ids[0]
			m.lanes[lane] = ids[1:]
			return id
		}
	}
	return ""
}

// dispatch starts queued jobs whenever a worker slot is free, until
// shutdown.
func (m *Manager) dispatch() {
	defer close(m.dispatcherDone)
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for !m.closing && (m.running >= m.workers || m.peekLocked() == "") {
			m.cond.Wait()
		}
		if m.closing {
			return
		}
		rec := m.recs[m.popLocked()]
		ctx, cancel := context.WithCancel(context.Background())
		rec.cancel = cancel
		rec.State = Running
		rec.Started = time.Now()
		m.running++
		m.journalLocked(rec)
		m.notifyLocked(rec)
		go m.runJob(ctx, rec)
	}
}

func (m *Manager) peekLocked() string {
	for _, lane := range []Priority{High, Normal} {
		if ids := m.lanes[lane]; len(ids) > 0 {
			return ids[0]
		}
	}
	return ""
}

// runJob executes one job on the shared engine and records its terminal
// state. Runs on its own goroutine; one per running job.
func (m *Manager) runJob(ctx context.Context, rec *record) {
	// The root span continues the submitter's trace (when one was
	// captured) and every span ended under this context feeds the job's
	// phase-timing collector. Spec/Created/Started are stable while the
	// job runs, so they are read without m.mu like rec.plan below.
	ctx = obs.WithTracer(ctx, m.tracer)
	ctx = obs.WithRemoteParent(ctx, rec.traceCtx)
	collector := obs.NewTimings()
	ctx = obs.WithTimings(ctx, collector)
	ctx, root := obs.Start(ctx, "job.run",
		obs.String("job", rec.ID), obs.String("type", rec.Spec.Type))
	queueWait := rec.Started.Sub(rec.Created)
	m.queueWait.Observe(queueWait.Seconds())
	if m.tracer != nil {
		root.SetAttr("queue_wait_ms", strconv.FormatInt(queueWait.Milliseconds(), 10))
		m.mu.Lock()
		rec.TraceID = root.TraceID
		m.mu.Unlock()
	}

	var (
		results []sim.Result
		runErr  error
	)
	executeStart := time.Now()
	func() {
		// An engine panic (programmer error) must land the job in failed,
		// not kill the process.
		defer func() {
			if p := recover(); p != nil {
				runErr = fmt.Errorf("jobs: engine panic: %v", p)
			}
		}()
		ectx, esp := obs.Start(ctx, "job.execute")
		defer esp.End()
		results, runErr = m.execute(ectx, rec.plan.Jobs, func(p engine.Progress) {
			m.observeProgress(rec, p)
		})
	}()
	executeDur := time.Since(executeStart)
	finalizeStart := time.Now()
	var doc any
	if runErr == nil {
		func() {
			defer func() {
				if p := recover(); p != nil {
					runErr = fmt.Errorf("jobs: assembling result: %v", p)
				}
			}()
			_, fsp := obs.Start(ctx, "job.finalize")
			defer fsp.End()
			doc = rec.plan.Finalize(results)
		}()
	}
	finalizeDur := time.Since(finalizeStart)
	root.End()

	m.mu.Lock()
	defer m.mu.Unlock()
	m.running--
	rec.Finished = time.Now()
	rec.Timings = newTimings(rec.Finished.Sub(rec.Created), queueWait, executeDur, finalizeDur, collector)
	switch {
	case rec.cancelRequested:
		// An acknowledged Cancel (the client's 202) is authoritative even
		// when it raced the last engine job's completion: the job lands in
		// canceled either way. Completed work is not lost — it is memoized
		// in the engine, so a resubmission replays it instantly.
		rec.State = Canceled
		rec.Error = "canceled by request"
	case runErr == nil:
		rec.State = Succeeded
		rec.doc = doc
		rec.Addresses = planAddresses(m.eng.Scale(), rec.plan)
		if m.journal != nil {
			// Result durability is best-effort like the engine store: a
			// full disk must not fail the job whose results are still in
			// memory. Once the document IS durable, drop the in-memory
			// copy — retaining every finished sweep would grow the job
			// table without bound in a long-lived server.
			if writeResultFile(m.resultPath(rec.ID), doc) == nil {
				rec.doc = nil
			}
		}
	case errors.Is(runErr, context.Canceled) && m.closing:
		rec.State = Interrupted
		rec.Error = "interrupted by shutdown"
	default:
		rec.State = Failed
		rec.Error = runErr.Error()
	}
	// The compiled plan (engine-job grid + assembly closure) is dead
	// weight on a terminal record; a resubmission recompiles it.
	rec.plan = nil
	m.journalLocked(rec)
	m.notifyLocked(rec)
	m.cond.Broadcast()
}

// planAddresses lists the plan's engine-job content addresses, deduped
// in plan order (grids can repeat an address through shared baselines).
func planAddresses(scale engine.Scale, plan *Plan) []string {
	seen := make(map[string]bool, len(plan.Jobs))
	var out []string
	for _, j := range plan.Jobs {
		addr := j.ContentAddress(scale)
		if !seen[addr] {
			seen[addr] = true
			out = append(out, addr)
		}
	}
	return out
}

// newTimings assembles a job's terminal phase breakdown: the wall-clock
// decomposition (which sums to ≈ total) plus the aggregated span
// durations collected during the run. job.* spans are excluded — they
// duplicate the decomposition phases.
func newTimings(total, queueWait, execute, finalize time.Duration, c *obs.Timings) *Timings {
	t := &Timings{
		TotalMS: total.Milliseconds(),
		Phases: map[string]int64{
			"queue_wait": queueWait.Milliseconds(),
			"execute":    execute.Milliseconds(),
			"finalize":   finalize.Milliseconds(),
		},
	}
	for name, d := range c.Snapshot() {
		if strings.HasPrefix(name, "job.") {
			continue
		}
		if t.Spans == nil {
			t.Spans = make(map[string]int64)
		}
		t.Spans[name] = d.Milliseconds()
	}
	return t
}

// resultAvailableLocked reports whether a succeeded job's document can
// still be served: held in memory, or persisted on disk. A non-durable
// manager always keeps the document in memory, so a nil doc there means
// lost.
func (m *Manager) resultAvailableLocked(rec *record) bool {
	if rec.doc != nil {
		return true
	}
	if m.journal == nil {
		return false
	}
	_, err := os.Stat(m.resultPath(rec.ID))
	return err == nil
}

// observeProgress folds one engine completion into the job's progress and
// fans it out to watchers.
func (m *Manager) observeProgress(rec *record, p engine.Progress) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec.Progress.Done = p.Done
	rec.Progress.Total = p.Total
	if p.Cached {
		rec.Progress.Cached++
	}
	rec.Progress.Elapsed = p.Elapsed
	rec.Progress.Remaining = p.Remaining
	m.notifyLocked(rec)
}

// Cancel requests cooperative cancellation. A queued job lands in
// canceled immediately; a running job's context is cancelled and the
// engine stops at the next shard boundary (the returned record still
// reads running until it does). Terminal jobs return ErrTerminal.
func (m *Manager) Cancel(id string) (Record, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.recs[id]
	if !ok {
		return Record{}, ErrNotFound
	}
	switch rec.State {
	case Queued:
		m.removeQueuedLocked(id)
		rec.State = Canceled
		rec.Error = "canceled before start"
		rec.Finished = time.Now()
		rec.plan = nil
		m.journalLocked(rec)
		m.notifyLocked(rec)
	case Running:
		if !rec.cancelRequested {
			rec.cancelRequested = true
			rec.cancel()
		}
	default:
		return rec.Record, ErrTerminal
	}
	return rec.Record, nil
}

func (m *Manager) removeQueuedLocked(id string) {
	for lane, ids := range m.lanes {
		for i, qid := range ids {
			if qid == id {
				m.lanes[lane] = append(ids[:i], ids[i+1:]...)
				return
			}
		}
	}
}

// Get returns a snapshot of one job.
func (m *Manager) Get(id string) (Record, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.recs[id]
	if !ok {
		return Record{}, false
	}
	return rec.Record, true
}

// List returns snapshots of every job in submission order.
func (m *Manager) List() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Record, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.recs[id].Record)
	}
	return out
}

// Counters returns the monitoring summary.
func (m *Manager) Counters() Counters {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := Counters{Recovered: m.recovered}
	for _, rec := range m.recs {
		switch rec.State {
		case Queued:
			c.Queued++
		case Running:
			c.Running++
		case Succeeded:
			c.Succeeded++
		case Failed:
			c.Failed++
		case Canceled:
			c.Canceled++
		case Interrupted:
			c.Interrupted++
		}
	}
	return c
}

// UsesTrace reports whether any queued or running job's compiled plan
// references the named trace. It is the in-use protection behind
// DELETE /traces/{addr}: a trace that live background work will
// materialize must not be deleted out from under it. Terminal jobs drop
// their plans and never count.
func (m *Manager) UsesTrace(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, rec := range m.recs {
		if rec.plan == nil || rec.State.Terminal() {
			continue
		}
		for _, j := range rec.plan.Jobs {
			for _, tr := range j.Traces {
				if tr == name {
					return true
				}
			}
		}
	}
	return false
}

// LiveAddresses returns the content addresses of every engine job a
// queued or running background job will still run — the jobs-side ref
// source for result-store GC (engine.Engine.GC). A collector that deleted
// one of these entries would force a queued job to re-simulate work the
// store already holds; terminal jobs drop their plans and hold no refs.
func (m *Manager) LiveAddresses() map[string]bool {
	scale := m.eng.Scale()
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]bool)
	for _, rec := range m.recs {
		if rec.plan == nil || rec.State.Terminal() {
			continue
		}
		for _, j := range rec.plan.Jobs {
			out[j.ContentAddress(scale)] = true
		}
	}
	return out
}

// Result returns a succeeded job's result document: the in-memory value
// Finalize produced, or — after a restart — the persisted document as
// json.RawMessage. Non-succeeded jobs return ErrNotReady (wrapped with
// the state), unknown IDs ErrNotFound.
func (m *Manager) Result(id string) (any, error) {
	m.mu.Lock()
	rec, ok := m.recs[id]
	if !ok {
		m.mu.Unlock()
		return nil, ErrNotFound
	}
	if rec.State != Succeeded {
		err := fmt.Errorf("%w: job is %s", ErrNotReady, rec.State)
		m.mu.Unlock()
		return nil, err
	}
	if rec.doc != nil {
		doc := rec.doc
		m.mu.Unlock()
		return doc, nil
	}
	path := m.resultPath(id)
	m.mu.Unlock()
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%w: result document missing: %v", ErrNotReady, err)
	}
	return json.RawMessage(data), nil
}

// Watch subscribes to a job's snapshots: the current one immediately,
// then one per state or progress change, latest-wins when the consumer
// lags. The channel closes after the terminal snapshot. The returned stop
// function unsubscribes (idempotent; call it when done).
func (m *Manager) Watch(id string) (<-chan Record, func(), error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.recs[id]
	if !ok {
		return nil, nil, ErrNotFound
	}
	ch := make(chan Record, 1)
	ch <- rec.Record
	if rec.State.Terminal() {
		close(ch)
		return ch, func() {}, nil
	}
	if rec.subs == nil {
		rec.subs = make(map[chan Record]struct{})
	}
	rec.subs[ch] = struct{}{}
	stop := func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		delete(rec.subs, ch)
	}
	return ch, stop, nil
}

// notifyLocked fans the record's current snapshot out to subscribers.
// Sends are latest-wins: every send happens under m.mu, so draining the
// one-slot buffer before re-sending can never block or race another
// sender. Terminal snapshots close the subscription channels.
func (m *Manager) notifyLocked(rec *record) {
	snap := rec.Record
	for ch := range rec.subs {
		select {
		case ch <- snap:
		default:
			select {
			case <-ch:
			default:
			}
			ch <- snap
		}
	}
	if rec.State.Terminal() {
		for ch := range rec.subs {
			close(ch)
		}
		rec.subs = nil
	}
}

// Shutdown stops the dispatcher (queued jobs stay queued — and journaled,
// so a durable manager resumes them on the next Open), drains running
// jobs, and flushes the journal. If ctx expires before the drain
// completes, running jobs are cancelled and land in interrupted. Submit
// returns ErrClosed from the first call on.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	alreadyClosing := m.closing
	m.closing = true
	m.cond.Broadcast()
	m.mu.Unlock()
	<-m.dispatcherDone

	drained := make(chan struct{})
	go func() {
		defer close(drained)
		m.mu.Lock()
		defer m.mu.Unlock()
		for m.running > 0 {
			m.cond.Wait()
		}
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		m.mu.Lock()
		for _, rec := range m.recs {
			if rec.State == Running && rec.cancel != nil {
				rec.cancel()
			}
		}
		m.mu.Unlock()
		// Cancellation is shard-boundary granular: the drain completes
		// once in-flight simulations finish.
		<-drained
	}
	if m.journal != nil && !alreadyClosing {
		return m.journal.close()
	}
	return nil
}

func (m *Manager) resultPath(id string) string {
	return filepath.Join(m.dir, "results", id+".json")
}

// writeResultFile persists the result document with the engine store's
// torn-write discipline.
func writeResultFile(path string, doc any) error {
	data, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	return engine.WriteFileAtomic(path, data)
}
