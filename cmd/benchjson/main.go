// Command benchjson parses `go test -bench` output into a machine-readable
// BENCH.json and enforces the zero-allocation pins of the hot-path suite.
//
// Usage:
//
//	go test ./bench -run '^$' -bench . -benchtime 200x -count 3 -benchmem |
//	    go run ./cmd/benchjson -out BENCH.json -pin 'BenchmarkStep$|BenchmarkQueue$'
//
// Every benchmark line contributes its ns/op, B/op, allocs/op and custom
// metrics; repeated runs (-count) are averaged. With -pin, the command
// exits nonzero if any matching benchmark averaged more than zero
// allocs/op — the CI gate that keeps the simulation steady state
// allocation-free.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// result accumulates one benchmark's metric samples across -count runs.
type result struct {
	runs    int
	metrics map[string][]float64
}

func main() {
	var (
		in  = flag.String("in", "", "benchmark output file (default: stdin)")
		out = flag.String("out", "BENCH.json", "output JSON path")
		pin = flag.String("pin", "", "regexp of benchmarks whose allocs/op must be zero")
	)
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	results, err := parse(r)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found"))
	}

	doc := make(map[string]map[string]float64, len(results))
	names := make([]string, 0, len(results))
	for name, res := range results {
		names = append(names, name)
		m := make(map[string]float64, len(res.metrics))
		for metric, vals := range res.metrics {
			m[metric] = mean(vals)
		}
		m["runs"] = float64(res.runs)
		doc[name] = m
	}
	sort.Strings(names)

	data, err := json.MarshalIndent(doc, "", "\t")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}

	failed := false
	if *pin != "" {
		re, err := regexp.Compile(*pin)
		if err != nil {
			fatal(fmt.Errorf("bad -pin regexp: %w", err))
		}
		matched := false
		for _, name := range names {
			if !re.MatchString(name) {
				continue
			}
			matched = true
			allocs, ok := doc[name]["allocs/op"]
			if !ok {
				fmt.Fprintf(os.Stderr, "benchjson: %s has no allocs/op (run with -benchmem)\n", name)
				failed = true
			} else if allocs != 0 {
				fmt.Fprintf(os.Stderr, "benchjson: %s allocates %.2f allocs/op, want 0\n", name, allocs)
				failed = true
			}
		}
		if !matched {
			fmt.Fprintf(os.Stderr, "benchjson: -pin %q matched no benchmark\n", *pin)
			failed = true
		}
	}

	for _, name := range names {
		fmt.Printf("%-40s %12.1f ns/op  %6.0f allocs/op\n",
			name, doc[name]["ns/op"], doc[name]["allocs/op"])
	}
	if failed {
		os.Exit(1)
	}
}

// benchLine matches "BenchmarkName-8   200   12345 ns/op ..." including
// sub-benchmarks; the GOMAXPROCS suffix is stripped so counted runs of
// the same benchmark aggregate.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func parse(r io.Reader) (map[string]*result, error) {
	results := make(map[string]*result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := m[1]
		res := results[name]
		if res == nil {
			res = &result{metrics: make(map[string][]float64)}
			results[name] = res
		}
		res.runs++
		fields := strings.Fields(m[3])
		// Fields come in (value, unit) pairs: "12345 ns/op 0 B/op ...".
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("parsing %q in benchmark %s: %w", fields[i], name, err)
			}
			res.metrics[fields[i+1]] = append(res.metrics[fields[i+1]], v)
		}
	}
	return results, sc.Err()
}

func mean(vals []float64) float64 {
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
