// Command gazesim runs one simulation: a workload (or every workload of a
// suite) against one prefetcher, printing IPC, speedup and the prefetch
// metrics of §IV-A3.
//
// Usage:
//
//	gazesim -trace bwaves_s-2609 -prefetcher Gaze
//	gazesim -suite cloud -prefetcher PMP -cores 4
//	gazesim -trace lbm-1274 -prefetcher Gaze -mtps 1600 -llc-mb 1
//	gazesim -trace-dir ~/traces -trace ingested:<address> -prefetcher Gaze
//	gazesim -traces  (list the catalogue)
//
// With -trace-dir, traces ingested by gazetrace (or gazeserve's POST
// /traces) run by their `ingested:<address>` names; the trace's content
// digest folds into the shared result-store keys, so registry runs cache
// soundly across entry points too.
//
// The -mtps, -llc-mb, -l2-kb and -pq flags perturb the Table II system
// through declarative engine.Overrides — the paper's Fig 16 sensitivity
// axes — and cache soundly across entry points.
//
// gazesim shares the experiment engine's persisted result store with
// cmd/experiments and gazeserve, so repeating a run — at any entry point —
// is instant. -no-cache opts out.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/engine"
	"repro/internal/profiling"
	"repro/internal/traceset"
	"repro/internal/workload"
)

func main() {
	var (
		traceName  = flag.String("trace", "", "workload trace name")
		suite      = flag.String("suite", "", "run every trace of a suite")
		pf         = flag.String("prefetcher", "Gaze", "prefetcher name (see internal/prefetchers)")
		l2pf       = flag.String("l2", "", "optional L2 prefetcher")
		cores      = flag.Int("cores", 1, "number of cores (same trace on each)")
		length     = flag.Int("len", 200_000, "records generated per trace")
		warmup     = flag.Uint64("warmup", 200_000, "warm-up instructions per core")
		instr      = flag.Uint64("instr", 800_000, "measured instructions per core")
		mtps       = flag.Int("mtps", 0, "override DRAM MTPS (Fig 16a)")
		llcMB      = flag.Float64("llc-mb", 0, "override LLC size, MB per core (Fig 16b)")
		l2KB       = flag.Int("l2-kb", 0, "override per-core L2C size in KB (Fig 16c)")
		pq         = flag.Int("pq", 0, "override prefetch-queue capacity")
		shards     = flag.Int("slice-shards", 0, "split a single-core run into this many parallel time slices (changes results: part of the cache key)")
		telEvery   = flag.Uint64("telemetry-interval", 0, "sample interval telemetry every N measured instructions per core (0 = disabled; never changes results or cache keys)")
		telOut     = flag.String("telemetry-out", "", "write each run's interval-timeline document (JSON) to this path (suite runs write <path>.<trace>)")
		cacheDir   = flag.String("cache-dir", "", "result store directory (default: $GAZE_CACHE_DIR or the user cache dir)")
		noCache    = flag.Bool("no-cache", false, "disable the persisted result store")
		traceDir   = flag.String("trace-dir", "", "ingested-trace registry directory (enables -trace ingested:<address>)")
		traceCache = flag.Int64("trace-cache-mb", 2048, "materialized-trace cache budget in MB (0 = unbounded)")
		listTraces = flag.Bool("traces", false, "list the workload catalogue")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProfiles()

	if *traceCache > 0 {
		workload.SetTraceCacheBudget(*traceCache << 20)
	}
	var reg *traceset.Registry
	if *traceDir != "" {
		reg, err = traceset.Open(*traceDir, traceset.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		workload.RegisterSource(reg)
	}

	if *listTraces {
		for _, info := range workload.Catalogue() {
			fmt.Printf("%-8s %s\n", info.Suite, info.Name)
		}
		if reg != nil {
			for _, m := range reg.List() {
				fmt.Printf("%-8s %s\n", "ingested", m.Name())
			}
		}
		return
	}

	names := []string{*traceName}
	if *suite != "" {
		names = names[:0]
		for _, info := range workload.Suite(*suite) {
			names = append(names, info.Name)
		}
		if len(names) == 0 {
			fmt.Fprintf(os.Stderr, "unknown suite %q\n", *suite)
			os.Exit(1)
		}
	} else if *traceName == "" {
		fmt.Fprintln(os.Stderr, "need -trace or -suite (or -traces to list)")
		os.Exit(1)
	}

	// The default system scales the shared LLC by the core count, and
	// cache geometry must stay a power of two.
	if *cores < 1 || *cores&(*cores-1) != 0 {
		fmt.Fprintf(os.Stderr, "-cores must be a power of two >= 1 (got %d)\n", *cores)
		os.Exit(1)
	}
	// A zero TraceLen would make the engine silently substitute the whole
	// Standard scale, discarding the -warmup/-instr flags.
	if *length < 1 || *instr < 1 {
		fmt.Fprintln(os.Stderr, "-len and -instr must be >= 1")
		os.Exit(1)
	}

	if *telOut != "" && *telEvery == 0 {
		fmt.Fprintln(os.Stderr, "-telemetry-out requires -telemetry-interval > 0")
		os.Exit(1)
	}
	opts := engine.Options{
		Scale:             engine.Scale{TraceLen: *length, Warmup: *warmup, Sim: *instr},
		TelemetryInterval: *telEvery,
	}
	// Suite runs can take minutes; report sweep progress like
	// cmd/experiments does so the terminal isn't silent until the end.
	if len(names) > 1 {
		opts.Progress = engine.StderrProgress
	}
	if !*noCache {
		store, err := engine.Open(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opts.Store = store
	}
	eng := engine.New(opts)

	// Every sensitivity flag maps to one field of the declarative
	// Overrides, so the scenario serializes into the engine's cache keys
	// with no hand-maintained config naming.
	overrides := engine.Overrides{
		DRAMMTPS:     *mtps,
		LLCMBPerCore: *llcMB,
		L2KB:         *l2KB,
		PQCapacity:   *pq,
		SliceShards:  *shards,
	}

	// Batch every (baseline, prefetcher) pair of the whole invocation
	// through one shard-parallel sweep, then print rows in order.
	var jobs []engine.Job
	for _, name := range names {
		base, target := jobsFor(name, *pf, *l2pf, *cores, overrides)
		// Job.Validate is the engine's canonical invariant (traces exist,
		// prefetcher names construct, overrides in range); the engine
		// panics on jobs that skip it.
		if err := target.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		jobs = append(jobs, base, target)
	}
	results := eng.RunAll(jobs)

	for i, name := range names {
		base, res := results[2*i], results[2*i+1]
		fmt.Printf("%-20s %-10s IPC %.3f  speedup %.3f  accuracy %.1f%%  coverage %.1f%%  late %.1f%%  issued %d\n",
			name, *pf, res.MeanIPC(), engine.Speedup(res, base),
			100*res.Accuracy(), 100*res.Coverage(), 100*res.LateFraction(),
			res.IssuedPrefetches())
	}

	if *telOut != "" {
		scale := eng.Scale()
		for i, name := range names {
			target := jobs[2*i+1]
			doc, ok := eng.Telemetry(target.ContentAddress(scale))
			if !ok {
				// Telemetry exists only for runs computed this invocation —
				// a store or memo hit replays the result without simulating.
				fmt.Fprintf(os.Stderr, "gazesim: no timeline for %s (cached result; re-run with -no-cache to simulate)\n", name)
				continue
			}
			path := *telOut
			if len(names) > 1 {
				path = *telOut + "." + name
			}
			if err := engine.WriteFileAtomic(path, doc); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "gazesim: timeline for %s written to %s\n", name, path)
		}
	}
}

// jobsFor builds the no-prefetch baseline and the target job for one
// trace, replicated across cores.
func jobsFor(name, pf, l2pf string, cores int, o engine.Overrides) (base, target engine.Job) {
	traces := make([]string, cores)
	for i := range traces {
		traces[i] = name
	}
	target = engine.Job{Traces: traces, L1: []string{pf}, Overrides: o}
	if l2pf != "" {
		target.L2 = []string{l2pf}
	}
	return target.Baseline(), target
}
