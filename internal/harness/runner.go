// Package harness regenerates every table and figure of the paper's
// evaluation (§IV) from the simulator: it binds workloads, prefetchers and
// system configurations, runs the simulations (memoized and in parallel),
// and formats the same rows/series the paper reports.
package harness

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/prefetchers"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Scale bounds experiment cost. The paper simulates 200M+200M instructions
// per trace on a 384-core cluster over days; synthetic stationary traces
// converge much faster (DESIGN.md §1), so even Full here is laptop-scale.
type Scale struct {
	// TracesPerSuite caps traces per suite (0 = all catalogue entries).
	TracesPerSuite int
	// TraceLen is the number of generated records per trace.
	TraceLen int
	// Warmup and Sim are per-core instruction budgets.
	Warmup uint64
	Sim    uint64
}

// Predefined scales.
var (
	Quick    = Scale{TracesPerSuite: 2, TraceLen: 50_000, Warmup: 40_000, Sim: 150_000}
	Standard = Scale{TracesPerSuite: 5, TraceLen: 120_000, Warmup: 100_000, Sim: 400_000}
	Full     = Scale{TracesPerSuite: 0, TraceLen: 250_000, Warmup: 200_000, Sim: 800_000}
)

// Runner executes and memoizes simulations.
type Runner struct {
	scale Scale

	mu    sync.Mutex
	memo  map[string]sim.Result
	limit chan struct{}
}

// NewRunner builds a runner at the given scale.
func NewRunner(scale Scale) *Runner {
	if scale.TraceLen == 0 {
		scale = Standard
	}
	return &Runner{
		scale: scale,
		memo:  make(map[string]sim.Result),
		limit: make(chan struct{}, runtime.GOMAXPROCS(0)),
	}
}

// Scale returns the runner's scale.
func (r *Runner) Scale() Scale { return r.scale }

// config returns the default system config at this runner's scale.
func (r *Runner) config(cores int) sim.Config {
	cfg := sim.DefaultConfig(cores)
	cfg.WarmupInstructions = r.scale.Warmup
	cfg.SimInstructions = r.scale.Sim
	return cfg
}

// Job describes one simulation: one or more cores with traces and
// prefetchers, plus an optional config mutation.
type Job struct {
	// Traces holds one trace name per core.
	Traces []string
	// L1 holds one L1 prefetcher name per core ("" / "none" for no
	// prefetching); a single-element slice is broadcast to all cores.
	L1 []string
	// L2 optionally attaches L2 prefetchers (Fig 13), broadcast like L1.
	L2 []string
	// ConfigKey disambiguates mutated configs in the memo cache; Mutate
	// applies the mutation.
	ConfigKey string
	Mutate    func(sim.Config) sim.Config
}

func (j Job) key() string {
	return fmt.Sprintf("%v|%v|%v|%s", j.Traces, j.L1, j.L2, j.ConfigKey)
}

func broadcast(names []string, n int) []string {
	if len(names) == n {
		return names
	}
	out := make([]string, n)
	for i := range out {
		if len(names) == 1 {
			out[i] = names[0]
		} else if i < len(names) {
			out[i] = names[i]
		}
	}
	return out
}

// Run executes one job (memoized).
func (r *Runner) Run(j Job) sim.Result {
	key := j.key()
	r.mu.Lock()
	if res, ok := r.memo[key]; ok {
		r.mu.Unlock()
		return res
	}
	r.mu.Unlock()

	r.limit <- struct{}{}
	res := r.execute(j)
	<-r.limit

	r.mu.Lock()
	r.memo[key] = res
	r.mu.Unlock()
	return res
}

func (r *Runner) execute(j Job) sim.Result {
	cores := len(j.Traces)
	cfg := r.config(cores)
	if j.Mutate != nil {
		cfg = j.Mutate(cfg)
	}
	l1s := broadcast(j.L1, cores)
	l2s := broadcast(j.L2, cores)

	specs := make([]sim.CoreSpec, cores)
	for i, name := range j.Traces {
		recs := workload.MustGenerate(name, r.scale.TraceLen)
		spec := sim.CoreSpec{
			Trace:        trace.NewLooping(trace.NewSliceReader(recs)),
			L1Prefetcher: prefetchers.MustNew(l1s[i]),
		}
		if l2s[i] != "" && l2s[i] != "none" {
			spec.L2Prefetcher = prefetchers.MustNew(l2s[i])
		}
		specs[i] = spec
	}
	sys, err := sim.New(cfg, specs)
	if err != nil {
		panic(fmt.Sprintf("harness: building system for %s: %v", j.key(), err))
	}
	return sys.Run()
}

// RunAll executes jobs in parallel and returns results in order.
func (r *Runner) RunAll(jobs []Job) []sim.Result {
	results := make([]sim.Result, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = r.Run(jobs[i])
		}(i)
	}
	wg.Wait()
	return results
}

// single runs one single-core (trace, prefetcher) pair with the default
// config.
func (r *Runner) single(traceName, pf string) sim.Result {
	return r.Run(Job{Traces: []string{traceName}, L1: []string{pf}})
}

// Speedup returns IPC(pf)/IPC(none) for one trace.
func (r *Runner) Speedup(traceName, pf string) float64 {
	base := r.single(traceName, "none").MeanIPC()
	if base == 0 {
		return 0
	}
	return r.single(traceName, pf).MeanIPC() / base
}

// SuiteTraces returns the evaluated trace names of a suite at this scale.
func (r *Runner) SuiteTraces(suite string) []string {
	infos := workload.Suite(suite)
	names := make([]string, 0, len(infos))
	for _, info := range infos {
		names = append(names, info.Name)
	}
	sort.Strings(names)
	if r.scale.TracesPerSuite > 0 && len(names) > r.scale.TracesPerSuite {
		// Deterministic spread across the suite rather than a prefix.
		step := len(names) / r.scale.TracesPerSuite
		picked := make([]string, 0, r.scale.TracesPerSuite)
		for i := 0; i < r.scale.TracesPerSuite; i++ {
			picked = append(picked, names[i*step])
		}
		return picked
	}
	return names
}

// MainSuites returns the five suites of the paper's primary evaluation.
func MainSuites() []string {
	return []string{"spec06", "spec17", "ligra", "parsec", "cloud"}
}

// EvalSet returns the union of all main-suite traces at this scale.
func (r *Runner) EvalSet() []string {
	var out []string
	for _, s := range MainSuites() {
		out = append(out, r.SuiteTraces(s)...)
	}
	return out
}

// prewarm launches the (trace, pf) sims for all combinations in parallel.
func (r *Runner) prewarm(traces, pfs []string) {
	var jobs []Job
	for _, t := range traces {
		jobs = append(jobs, Job{Traces: []string{t}, L1: []string{"none"}})
		for _, p := range pfs {
			jobs = append(jobs, Job{Traces: []string{t}, L1: []string{p}})
		}
	}
	r.RunAll(jobs)
}

// vgazeSpeedup runs the vGaze variant with an arbitrary region byte size.
func (r *Runner) vgazeSpeedup(traceName string, regionBytes int) float64 {
	return r.Speedup(traceName, fmt.Sprintf("vGaze-%dB", regionBytes))
}

// gazePHTSizeSpeedup runs Gaze with a resized PHT (Fig 17b).
func (r *Runner) gazePHTSizeSpeedup(traceName string, entries int) float64 {
	return r.Speedup(traceName, fmt.Sprintf("Gaze-PHT%d", entries))
}

// suiteSpeedups computes per-suite geometric-mean speedups for a
// prefetcher.
func (r *Runner) suiteSpeedup(suite, pf string) float64 {
	var vals []float64
	for _, t := range r.SuiteTraces(suite) {
		vals = append(vals, r.Speedup(t, pf))
	}
	return stats.Geomean(vals)
}
