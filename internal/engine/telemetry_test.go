package engine_test

// Engine-level telemetry guarantees: arming interval telemetry is
// invisible to content addressing (byte-identical result stores), sliced
// execution produces one canonical timeline document regardless of slice
// parallelism, documents survive the export/import/adopt cluster path
// byte-identically, cached replays collect nothing, and GC reaps a
// result's timeline sidecar with the result.

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/sim"
)

var telTestScale = engine.Scale{TracesPerSuite: 1, TraceLen: 10_000, Warmup: 5_000, Sim: 20_000}

func telTestJob() engine.Job {
	return engine.Job{Traces: []string{"lbm-1274"}, L1: []string{"Gaze"}}
}

// runStored executes the job in a fresh store at dir with the given
// telemetry interval and returns the engine and result.
func runStored(t *testing.T, dir string, interval uint64, job engine.Job) (*engine.Engine, sim.Result) {
	t.Helper()
	store, err := engine.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(engine.Options{Scale: telTestScale, Store: store, TelemetryInterval: interval})
	res, err := e.RunContext(t.Context(), job)
	if err != nil {
		t.Fatal(err)
	}
	return e, res
}

// TestTelemetryContentAddressInvisible is the acceptance-criteria byte
// check: a store written with telemetry armed holds exactly the same
// result records — same files, same bytes — as one written bare. The
// only difference may be .timeline sidecars, which never carry a .json
// name and never enter an address.
func TestTelemetryContentAddressInvisible(t *testing.T) {
	base := t.TempDir()
	job := telTestJob()
	_, bareRes := runStored(t, filepath.Join(base, "bare"), 0, job)
	_, armedRes := runStored(t, filepath.Join(base, "armed"), 5_000, job)

	if !reflect.DeepEqual(bareRes, armedRes) {
		t.Errorf("results differ with telemetry armed:\nbare  %+v\narmed %+v", bareRes, armedRes)
	}

	bare := storeBytes(t, filepath.Join(base, "bare"))
	armed := storeBytes(t, filepath.Join(base, "armed"))
	jsonFiles := func(m map[string][]byte) map[string][]byte {
		out := map[string][]byte{}
		for rel, data := range m {
			if strings.HasSuffix(rel, ".json") {
				out[rel] = data
			}
		}
		return out
	}
	bareJSON, armedJSON := jsonFiles(bare), jsonFiles(armed)
	if len(bareJSON) == 0 {
		t.Fatal("bare run committed no result records")
	}
	if len(armedJSON) != len(bareJSON) {
		t.Fatalf("result record count: bare %d, armed %d", len(bareJSON), len(armedJSON))
	}
	for rel, want := range bareJSON {
		if got, ok := armedJSON[rel]; !ok || !bytes.Equal(got, want) {
			t.Errorf("result record %s differs byte-wise with telemetry armed", rel)
		}
	}
	if len(bare) != len(bareJSON) {
		t.Errorf("bare store holds %d files but %d result records: telemetry written while disabled", len(bare), len(bareJSON))
	}
	var sidecars int
	for rel := range armed {
		if strings.HasSuffix(rel, ".timeline") {
			sidecars++
		}
	}
	if sidecars == 0 {
		t.Error("armed run persisted no .timeline sidecar")
	}
}

// TestSlicedTelemetryDeterminism: for a K=4 sliced job, the persisted
// timeline document is byte-identical whether the slices ran serially
// (SliceWorkers 1) or fanned out (SliceWorkers 8) — the concatenation
// rule is a pure function of the slices in slice order.
func TestSlicedTelemetryDeterminism(t *testing.T) {
	job := telTestJob()
	job.Overrides = engine.Overrides{SliceShards: 4}
	if err := job.Validate(); err != nil {
		t.Fatal(err)
	}
	addr := job.ContentAddress(telTestScale)

	base := t.TempDir()
	docs := map[int][]byte{}
	for _, workers := range []int{1, 8} {
		store, err := engine.Open(filepath.Join(base, "w"+string(rune('0'+workers))))
		if err != nil {
			t.Fatal(err)
		}
		e := engine.New(engine.Options{
			Scale: telTestScale, Store: store,
			SliceWorkers: workers, TelemetryInterval: 5_000,
		})
		if _, err := e.RunContext(t.Context(), job); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		doc, ok := e.Telemetry(addr)
		if !ok {
			t.Fatalf("workers=%d: no timeline document at %s", workers, addr[:12])
		}
		docs[workers] = doc
	}
	if !bytes.Equal(docs[1], docs[8]) {
		t.Error("sliced timeline document differs between SliceWorkers 1 and 8")
	}

	// The document round-trips: samples tile one logical serial run.
	tel, err := engine.DecodeTelemetry(docs[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(tel.Cores) != 1 || len(tel.Cores[0].Samples) == 0 {
		t.Fatalf("merged telemetry shape: %+v", tel)
	}
	var prevEnd uint64
	for i, sm := range tel.Cores[0].Samples {
		if sm.Start != prevEnd {
			t.Fatalf("sample %d starts at %d, previous ended at %d: slice axes not rebased", i, sm.Start, prevEnd)
		}
		prevEnd = sm.End
	}
}

// TestTelemetryExportImportAdopt walks a document through the cluster
// path: the computing engine's persisted bytes import-verify under their
// address, adopt verbatim on a second engine, and land on its disk
// byte-identical. A document claiming a foreign address must be refused.
func TestTelemetryExportImportAdopt(t *testing.T) {
	base := t.TempDir()
	job := telTestJob()
	worker, _ := runStored(t, filepath.Join(base, "worker"), 5_000, job)
	addr := job.ContentAddress(telTestScale)
	doc, ok := worker.Telemetry(addr)
	if !ok {
		t.Fatal("worker produced no timeline document")
	}

	key, tel, err := engine.ImportTelemetry(addr, doc)
	if err != nil {
		t.Fatalf("canonical document failed import verification: %v", err)
	}
	if tel == nil || len(tel.Cores) == 0 {
		t.Fatal("import returned empty telemetry")
	}
	reenc, err := engine.ExportTelemetry(key, tel)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reenc, doc) {
		t.Error("export does not round-trip the persisted bytes: local and worker documents would diverge")
	}

	coordDir := filepath.Join(base, "coord")
	coordStore, err := engine.Open(coordDir)
	if err != nil {
		t.Fatal(err)
	}
	coord := engine.New(engine.Options{Scale: telTestScale, Store: coordStore})
	coord.AdoptTelemetry(key, doc)
	got, ok := coord.Telemetry(addr)
	if !ok || !bytes.Equal(got, doc) {
		t.Fatal("adopted document not served verbatim")
	}
	onDisk, err := os.ReadFile(filepath.Join(coordDir, addr[:2], addr[2:]+".timeline"))
	if err != nil || !bytes.Equal(onDisk, doc) {
		t.Fatalf("adopted document not persisted verbatim: %v", err)
	}

	// Verification: the same bytes under a different address are refused.
	otherAddr := strings.Repeat("0", 64)
	if _, _, err := engine.ImportTelemetry(otherAddr, doc); err == nil {
		t.Error("document accepted under an address its key does not hash to")
	}
	if _, _, err := engine.ImportTelemetry(addr, []byte("{")); err == nil {
		t.Error("garbage document accepted")
	}
}

// TestCachedRunCollectsNoTelemetry: a store hit replays the persisted
// result without simulating, so an armed engine that never computes the
// job holds no timeline for it.
func TestCachedRunCollectsNoTelemetry(t *testing.T) {
	dir := t.TempDir()
	job := telTestJob()
	runStored(t, dir, 0, job) // populate the store bare

	store, err := engine.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(engine.Options{Scale: telTestScale, Store: store, TelemetryInterval: 5_000})
	if _, err := e.RunContext(t.Context(), job); err != nil {
		t.Fatal(err)
	}
	addr := job.ContentAddress(telTestScale)
	if _, ok := e.Telemetry(addr); ok {
		t.Error("store-hit replay produced a timeline document")
	}
}

// TestGCReapsTelemetrySidecar: deleting an unreferenced result removes
// its timeline sidecar and the telemetry byte accounting with it.
func TestGCReapsTelemetrySidecar(t *testing.T) {
	dir := t.TempDir()
	job := telTestJob()
	e, _ := runStored(t, dir, 5_000, job)
	addr := job.ContentAddress(telTestScale)
	if _, ok := e.Telemetry(addr); !ok {
		t.Fatal("no timeline document before GC")
	}
	st := e.TelemetryStats()
	if st.Documents == 0 || st.Bytes == 0 {
		t.Fatalf("telemetry stats before GC: %+v", st)
	}

	stats, err := e.GC(engine.GCPolicy{}, func() map[string]bool { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Deleted == 0 {
		t.Fatal("GC deleted nothing")
	}
	sidecar := filepath.Join(dir, addr[:2], addr[2:]+".timeline")
	if _, err := os.Stat(sidecar); !os.IsNotExist(err) {
		t.Errorf("timeline sidecar survived its result's GC: %v", err)
	}
	// The memo still answers (the engine computed it this process), but
	// the store accounting must be back to zero.
	st = e.TelemetryStats()
	if st.Documents != 0 || st.Bytes != 0 {
		t.Errorf("telemetry stats after GC: %+v, want zero documents/bytes", st)
	}
}
