package bench

// Benchmarks and pins for PR 8's two perf structures: the mmap-backed
// columnar slab step path (must stay allocation-free, like the heap path)
// and time-sliced intra-trace execution (one big trace split across
// cores; the interesting number is sliced vs unsliced wall clock on a
// multi-core host).

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/traceset"
	"repro/internal/workload"
)

// mappedSlab materializes the benchmark trace as an mmap-backed columnar
// slab in a temp file. Skips when the platform has no mmap.
func mappedSlab(tb testing.TB, n int) *trace.Columns {
	tb.Helper()
	recs := workload.MustMaterialize("bwaves_s-2609", n)
	path := filepath.Join(tb.TempDir(), "bench.cols")
	if err := os.WriteFile(path, trace.EncodeColumnar(recs), 0o644); err != nil {
		tb.Fatal(err)
	}
	cols, err := trace.MapColumnar(path)
	if err != nil {
		tb.Skipf("mmap unavailable: %v", err)
	}
	if !cols.Mapped() {
		tb.Fatal("MapColumnar returned an unmapped slab")
	}
	return cols
}

// warmSystemOn is warmSystem over an arbitrary Records implementation, so
// the same steady state can be measured on heap slices and mapped slabs.
func warmSystemOn(tb testing.TB, recs trace.Records, pf prefetch.Prefetcher) *sim.System {
	tb.Helper()
	cfg := sim.DefaultConfig(1)
	cfg.WarmupInstructions = 0
	sys, err := sim.New(cfg, []sim.CoreSpec{{
		Trace:        trace.NewLooping(trace.NewRecordsReader(recs)),
		L1Prefetcher: pf,
	}})
	if err != nil {
		tb.Fatal(err)
	}
	sys.Advance(100_000)
	return sys
}

// BenchmarkStepMapped is BenchmarkStep reading records off the mmap-backed
// columnar slab instead of a heap slice — the per-record accessor cost of
// the zero-copy plane views. Pinned at 0 allocs/op by CI.
func BenchmarkStepMapped(b *testing.B) {
	sys := warmSystemOn(b, mappedSlab(b, 50_000), nextLine{})
	b.ReportAllocs()
	b.ResetTimer()
	sys.Advance(b.N)
}

// TestStepMappedZeroAlloc extends the steady-state zero-alloc pin to the
// mapped-slab path: iterating a *trace.Columns through the Records seam
// must allocate nothing per step, exactly like the heap slice.
func TestStepMappedZeroAlloc(t *testing.T) {
	sys := warmSystemOn(t, mappedSlab(t, 50_000), nextLine{})
	if n := testing.AllocsPerRun(200, func() { sys.Advance(50) }); n != 0 {
		t.Errorf("mapped-slab step allocates %.1f times per 50 steps, want 0", n)
	}
}

// bigTrace ingests one large synthetic trace into a process-lifetime
// registry and registers it as a workload source, once — both big-trace
// benchmarks (and any -count repetition) share the materialized slab, so
// iterations measure simulation, not ingest.
var bigTrace struct {
	once sync.Once
	name string
	err  error
}

const bigTraceRecords = 400_000

func bigTraceName(tb testing.TB) string {
	tb.Helper()
	bigTrace.once.Do(func() {
		dir, err := os.MkdirTemp("", "bench-bigtrace-*")
		if err != nil {
			bigTrace.err = err
			return
		}
		reg, err := traceset.Open(dir, traceset.Options{})
		if err != nil {
			bigTrace.err = err
			return
		}
		recs := make([]trace.Record, bigTraceRecords)
		state := uint64(0x5851f42d4c957f2d)
		for i := range recs {
			state = state*6364136223846793005 + 1442695040888963407
			kind := trace.Load
			if state>>62 == 3 {
				kind = trace.Store
			}
			recs[i] = trace.Record{
				PC:     0x400000 + uint64(i%2048)*4,
				Addr:   (state >> 16) &^ 63,
				NonMem: uint16(state % 7),
				Kind:   kind,
			}
		}
		m, _, err := reg.IngestRecords(recs, trace.FormatGZTR)
		if err != nil {
			bigTrace.err = err
			return
		}
		workload.RegisterSource(reg)
		bigTrace.name = m.Name()
	})
	if bigTrace.err != nil {
		tb.Fatal(bigTrace.err)
	}
	return bigTrace.name
}

// bigScale budgets one single-core job at roughly a hundred milliseconds
// of simulation on a current core — big enough that slice fan-out
// dominates its fixed costs, small enough for CI.
var bigScale = engine.Scale{TracesPerSuite: 1, TraceLen: bigTraceRecords, Warmup: 100_000, Sim: 1_200_000}

func runBigTrace(b *testing.B, shards int) {
	name := bigTraceName(b)
	job := engine.Job{
		Traces:    []string{name},
		L1:        []string{"Gaze"},
		Overrides: engine.Overrides{SliceShards: shards},
	}
	if err := job.Validate(); err != nil {
		b.Fatal(err)
	}
	// Warm the trace cache so the first iteration is not charged the
	// registry decode.
	if _, err := workload.MaterializeRecords(name, bigScale.TraceLen); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh engine per iteration defeats the memo: every iteration
		// simulates. The persisted store is off for the same reason.
		// Telemetry rides armed, as it does in the service defaults.
		eng := engine.New(engine.Options{Scale: bigScale, TelemetryInterval: sim.DefaultTelemetryInterval})
		eng.Run(job)
	}
}

// BenchmarkBigTraceUnsliced is the baseline: one big ingested trace,
// one core, serial. Compare against BenchmarkBigTraceSliced4 on a
// multi-core host for the intra-trace parallelism win (the two are NOT
// numerically identical runs — slicing is part of the job key — but they
// answer the same experimental question over the same window).
func BenchmarkBigTraceUnsliced(b *testing.B) { runBigTrace(b, 0) }

// BenchmarkBigTraceSliced4 runs the same trace as four parallel time
// slices. On a >= 4-core host this should finish in well under half the
// unsliced wall clock (per-slice warmup replay is the overhead bounding
// it below 4x).
func BenchmarkBigTraceSliced4(b *testing.B) { runBigTrace(b, 4) }
