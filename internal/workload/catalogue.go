package workload

import "fmt"

// registry maps trace names to their generation profiles. Names mirror the
// paper's trace naming so figures can reference the same labels
// (Fig 9-12, 15, 17, 18 all cite traces by these names).
var registry = map[string]profile{}

func reg(name string, p profile) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("workload: duplicate trace name %q", name))
	}
	if p.gapMean < 1 {
		p.gapMean = 1
	}
	if p.intensity == 0 {
		p.intensity = 1
	}
	if p.strideBlocks == 0 {
		p.strideBlocks = 1
	}
	registry[name] = p
}

func init() {
	registerSPEC06()
	registerSPEC17()
	registerLigra()
	registerPARSEC()
	registerCloud()
	registerGAP()
	registerQMM()
}

func registerSPEC06() {
	s := func(name string, p profile) {
		p.suite = "spec06"
		reg(name, p)
	}
	// Streaming-dominated HPC codes.
	s("bwaves-1963", profile{kind: kindStream, gapMean: 6, reuse: 0.5})
	s("bwaves-677", profile{kind: kindStream, gapMean: 7, reuse: 0.4})
	s("GemsFDTD-1169", profile{kind: kindStream, gapMean: 6, reuse: 0.2, strideBlocks: 1})
	s("GemsFDTD-1211", profile{kind: kindStream, gapMean: 5, reuse: 0.2, strideBlocks: 2})
	s("lbm-1274", profile{kind: kindStream, gapMean: 4, reuse: 0.05, intensity: 1.4})
	s("lbm-94", profile{kind: kindStream, gapMean: 4, reuse: 0.05, intensity: 1.2})
	s("leslie3d-134", profile{kind: kindStream, gapMean: 6, reuse: 0.3})
	s("leslie3d-149", profile{kind: kindStream, gapMean: 6, reuse: 0.3})
	s("leslie3d-271", profile{kind: kindStream, gapMean: 5, reuse: 0.35})
	s("libquantum-714", profile{kind: kindStream, gapMean: 7, reuse: 0.6})
	s("libquantum-1343", profile{kind: kindStream, gapMean: 7, reuse: 0.6})
	s("zeusmp-300", profile{kind: kindStream, gapMean: 6, reuse: 0.2, strideBlocks: 2})
	// Mixed spatial-pattern codes.
	s("cactusADM-1804", profile{kind: kindMixedSpatial, gapMean: 7, ambiguity: 0.2})
	s("cactusADM-734", profile{kind: kindMixedSpatial, gapMean: 7, ambiguity: 0.2})
	s("milc-127", profile{kind: kindMixedSpatial, gapMean: 6, ambiguity: 0.3})
	s("milc-360", profile{kind: kindMixedSpatial, gapMean: 6, ambiguity: 0.3})
	s("soplex-66", profile{kind: kindMixedSpatial, gapMean: 7, ambiguity: 0.4})
	s("soplex-247", profile{kind: kindMixedSpatial, gapMean: 6, ambiguity: 0.4})
	s("sphinx3-417", profile{kind: kindMixedSpatial, gapMean: 7, ambiguity: 0.3, reuse: 0.3})
	s("sphinx3-883", profile{kind: kindMixedSpatial, gapMean: 7, ambiguity: 0.3, reuse: 0.3})
	s("wrf-196", profile{kind: kindMixedSpatial, gapMean: 6, ambiguity: 0.2, reuse: 0.2})
	s("wrf-816", profile{kind: kindMixedSpatial, gapMean: 6, ambiguity: 0.2, reuse: 0.2})
	s("wrf-1254", profile{kind: kindStream, gapMean: 6, reuse: 0.25})
	s("zeusmp-100", profile{kind: kindMixedSpatial, gapMean: 7, ambiguity: 0.2})
	s("gcc-13", profile{kind: kindMixedSpatial, gapMean: 8, ambiguity: 0.5})
	s("bzip2-183", profile{kind: kindMixedSpatial, gapMean: 8, ambiguity: 0.3})
	s("hmmer-7", profile{kind: kindMixedSpatial, gapMean: 9, ambiguity: 0.2})
	s("h264ref-30", profile{kind: kindMixedSpatial, gapMean: 9, ambiguity: 0.3})
	s("gobmk-76", profile{kind: kindMixedSpatial, gapMean: 10, ambiguity: 0.4, intensity: 0.6})
	// Irregular codes.
	s("mcf-46", profile{kind: kindIrregular, gapMean: 5, intensity: 1.4})
	s("mcf-158", profile{kind: kindIrregular, gapMean: 5, intensity: 1.4})
	s("omnetpp-188", profile{kind: kindIrregular, gapMean: 7, intensity: 0.9})
	s("omnetpp-4", profile{kind: kindIrregular, gapMean: 7, intensity: 0.9})
	s("astar-23", profile{kind: kindIrregular, gapMean: 7, intensity: 0.8})
	s("astar-359", profile{kind: kindIrregular, gapMean: 7, intensity: 0.8})
	s("perlbench-105", profile{kind: kindIrregular, gapMean: 9, intensity: 0.6})
	s("sjeng-358", profile{kind: kindIrregular, gapMean: 10, intensity: 0.6})
	s("xalancbmk-148", profile{kind: kindIrregular, gapMean: 8, intensity: 0.8})
	s("gcc-56", profile{kind: kindIrregular, gapMean: 9, intensity: 0.7})
}

func registerSPEC17() {
	s := func(name string, p profile) {
		p.suite = "spec17"
		reg(name, p)
	}
	// Streaming HPC.
	s("bwaves_s-891", profile{kind: kindStream, gapMean: 6, reuse: 0.5})
	s("bwaves_s-1740", profile{kind: kindStream, gapMean: 5, reuse: 0.5})
	s("bwaves_s-2609", profile{kind: kindStream, gapMean: 5, reuse: 0.55})
	s("lbm_s-2676", profile{kind: kindStream, gapMean: 4, reuse: 0.05, intensity: 1.4})
	s("roms_s-294", profile{kind: kindStream, gapMean: 6, reuse: 0.3})
	s("roms_s-523", profile{kind: kindStream, gapMean: 5, reuse: 0.3})
	s("roms_s-1070", profile{kind: kindStream, gapMean: 6, reuse: 0.25, strideBlocks: 2})
	s("wrf_s-8065", profile{kind: kindStream, gapMean: 6, reuse: 0.25})
	s("cam4_s-490", profile{kind: kindMixedSpatial, gapMean: 7, ambiguity: 0.2, reuse: 0.2})
	s("cam4_s-1905", profile{kind: kindMixedSpatial, gapMean: 7, ambiguity: 0.25, reuse: 0.2})
	s("pop2_s-17", profile{kind: kindStream, gapMean: 6, reuse: 0.3, strideBlocks: 1})
	s("pop2_s-503", profile{kind: kindMixedSpatial, gapMean: 7, ambiguity: 0.2})
	// fotonik3d: the paper's Fig 2 workload — highly trigger-ambiguous
	// recurring footprints with strong internal temporal order.
	s("fotonik3d_s-1176", profile{kind: kindMixedSpatial, gapMean: 6, ambiguity: 0.8})
	s("fotonik3d_s-7084", profile{kind: kindMixedSpatial, gapMean: 6, ambiguity: 0.8})
	s("fotonik3d_s-8225", profile{kind: kindMixedSpatial, gapMean: 5, ambiguity: 0.85})
	s("fotonik3d_s-10881", profile{kind: kindMixedSpatial, gapMean: 6, ambiguity: 0.85})
	s("cactuBSSN_s-2421", profile{kind: kindMixedSpatial, gapMean: 6, ambiguity: 0.3, reuse: 0.2})
	s("cactuBSSN_s-3477", profile{kind: kindMixedSpatial, gapMean: 6, ambiguity: 0.3, reuse: 0.2})
	s("imagick_s-4872", profile{kind: kindMixedSpatial, gapMean: 8, ambiguity: 0.2})
	s("nab_s-12521", profile{kind: kindMixedSpatial, gapMean: 8, ambiguity: 0.25})
	s("gcc_s-404", profile{kind: kindMixedSpatial, gapMean: 8, ambiguity: 0.5})
	s("gcc_s-734", profile{kind: kindMixedSpatial, gapMean: 8, ambiguity: 0.5})
	s("gcc_s-1850", profile{kind: kindMixedSpatial, gapMean: 8, ambiguity: 0.45})
	s("gcc_s-2226", profile{kind: kindMixedSpatial, gapMean: 7, ambiguity: 0.5})
	// Irregular.
	s("mcf_s-484", profile{kind: kindIrregular, gapMean: 5, intensity: 1.4})
	s("mcf_s-665", profile{kind: kindIrregular, gapMean: 5, intensity: 1.3})
	s("mcf_s-994", profile{kind: kindIrregular, gapMean: 5, intensity: 1.3})
	s("mcf_s-1536", profile{kind: kindIrregular, gapMean: 5, intensity: 1.4})
	s("mcf_s-1554", profile{kind: kindIrregular, gapMean: 5, intensity: 1.5})
	s("omnetpp_s-141", profile{kind: kindIrregular, gapMean: 7, intensity: 0.9})
	s("omnetpp_s-874", profile{kind: kindIrregular, gapMean: 7, intensity: 0.9})
	s("xalancbmk_s-10", profile{kind: kindIrregular, gapMean: 7, intensity: 0.9})
	s("xalancbmk_s-202", profile{kind: kindIrregular, gapMean: 7, intensity: 1.0})
	s("xz_s-2302", profile{kind: kindIrregular, gapMean: 8, intensity: 0.8})
	s("xz_s-3167", profile{kind: kindIrregular, gapMean: 8, intensity: 0.8})
	s("deepsjeng_s-690", profile{kind: kindIrregular, gapMean: 10, intensity: 0.6})
	s("leela_s-800", profile{kind: kindIrregular, gapMean: 10, intensity: 0.6})
	s("perlbench_s-570", profile{kind: kindIrregular, gapMean: 9, intensity: 0.6})
	s("exchange2_s-1712", profile{kind: kindServer, gapMean: 12, intensity: 0.5})
}

func registerLigra() {
	s := func(name string, p profile) {
		p.suite = "ligra"
		reg(name, p)
	}
	// Per-algorithm trace numbers; small suffixes are the data-preparation
	// (init) phase, larger ones the compute phase (§IV-B2, Fig 10).
	algos := []struct {
		name       string
		initNums   []int
		compNums   []int
		sparsity   float64 // compute-phase irregular share (intensity knob)
		computeGap float64
	}{
		{"PageRank", []int{1, 3}, []int{19, 61, 80}, 0.5, 5},
		{"PageRank.D", []int{3}, []int{24, 52}, 0.6, 5},
		{"BC", []int{4, 5}, []int{27, 33}, 0.7, 6},
		{"BellmanFord", []int{4}, []int{25, 34}, 0.6, 6},
		{"BFS", []int{5}, []int{17, 23}, 0.7, 6},
		{"BFS.B", []int{5}, []int{18}, 0.7, 6},
		{"BFSCC", []int{1}, []int{17}, 0.7, 6},
		{"Components", []int{4}, []int{24, 30}, 0.6, 6},
		{"Components.S", []int{4}, []int{21, 22}, 0.6, 6},
		{"CF", []int{2}, []int{155, 185}, 0.4, 5},
		{"MIS", []int{3}, []int{17, 25}, 0.6, 6},
		{"Triangle", []int{1}, []int{4, 6}, 0.5, 6},
		{"Radii", []int{3}, []int{17}, 0.6, 6},
		{"KCore", []int{5}, []int{21, 29}, 0.6, 6},
	}
	count := 0
	for _, a := range algos {
		for _, n := range a.initNums {
			s(fmt.Sprintf("%s-%d", a.name, n), profile{kind: kindGraphInit, gapMean: 6})
			count++
		}
		for _, n := range a.compNums {
			s(fmt.Sprintf("%s-%d", a.name, n),
				profile{kind: kindGraphCompute, gapMean: a.computeGap, intensity: a.sparsity})
			count++
		}
	}
	// Pad with additional compute-phase traces to reach the paper's 67.
	extra := []string{
		"PageRank-100", "PageRank-120", "BC-41", "BC-55", "BellmanFord-47",
		"BellmanFord-60", "BFS-31", "BFSCC-29", "Components-44", "Components.S-37",
		"CF-201", "MIS-33", "Triangle-9", "Radii-25", "KCore-37", "PageRank.D-70",
		"BFS.B-26", "PageRank-140", "BC-68", "BellmanFord-72", "Components-58",
		"CF-230", "MIS-41", "Triangle-12", "Radii-33", "KCore-45", "BFSCC-35",
		"Components.S-49", "PageRank.D-88", "BFS-44", "BFS.B-31", "PageRank-160",
		"BellmanFord-85",
	}
	for i, name := range extra {
		if count >= 67 {
			break
		}
		s(name, profile{kind: kindGraphCompute, gapMean: 5.5, intensity: 0.4 + 0.05*float64(i%7)})
		count++
	}
}

func registerPARSEC() {
	s := func(name string, p profile) {
		p.suite = "parsec"
		reg(name, p)
	}
	s("canneal-1", profile{kind: kindIrregular, gapMean: 6, intensity: 1.2})
	s("facesim-2", profile{kind: kindMixedSpatial, gapMean: 7, ambiguity: 0.2, reuse: 0.3})
	s("facesim-22", profile{kind: kindMixedSpatial, gapMean: 6, ambiguity: 0.2, reuse: 0.3})
	s("streamcluster-5", profile{kind: kindStream, gapMean: 5, reuse: 0.6})
}

func registerCloud() {
	s := func(name string, p profile) {
		p.suite = "cloud"
		reg(name, p)
	}
	apps := []struct {
		app   string
		ps    []int
		cs    []int
		kind  kind
		gap   float64
		inten float64
	}{
		{"cassandra", []int{0, 1, 2}, []int{0, 1, 2, 3}, kindCloud, 8, 1.0},
		{"cloud9", []int{0, 1, 5}, []int{0, 1, 2, 3}, kindCloud, 9, 0.9},
		{"nutch", []int{0, 3, 4}, []int{0, 1, 2, 3}, kindCloud, 8, 1.0},
		{"classification", []int{0, 1}, []int{0, 1, 2, 3}, kindMixedSpatial, 7, 1.0},
		{"stream", []int{0, 1}, []int{0, 1, 2, 3}, kindClient, 6, 1.0},
	}
	for _, a := range apps {
		for _, p := range a.ps {
			for _, c := range a.cs {
				prof := profile{kind: a.kind, gapMean: a.gap, intensity: a.inten}
				if a.kind == kindMixedSpatial {
					prof.ambiguity = 0.7
				}
				s(fmt.Sprintf("%s-p%dc%d", a.app, p, c), prof)
			}
		}
	}
}

func registerGAP() {
	s := func(name string, p profile) {
		p.suite = "gap"
		reg(name, p)
	}
	// twitter (twi) is the irregular power-law graph, web-sk-2005 (web)
	// has much stronger locality.
	s("cc.twi.10", profile{kind: kindGraphCompute, gapMean: 5, intensity: 0.8})
	s("cc.web.10", profile{kind: kindGraphCompute, gapMean: 5, intensity: 0.3})
	s("pr.twi.10", profile{kind: kindGraphCompute, gapMean: 5, intensity: 0.7})
	s("pr.web.10", profile{kind: kindGraphCompute, gapMean: 5, intensity: 0.25})
	s("tc.twi.10", profile{kind: kindGraphCompute, gapMean: 6, intensity: 0.8})
	s("tc.web.10", profile{kind: kindGraphCompute, gapMean: 6, intensity: 0.35})
}

func registerQMM() {
	s := func(name string, p profile) {
		reg(name, p)
	}
	for _, n := range []string{"09", "27", "40", "46", "67"} {
		s("srv."+n, profile{suite: "qmm.srv", kind: kindServer, gapMean: 14, intensity: 0.7})
	}
	s("clt.fp.06", profile{suite: "qmm.clt", kind: kindClient, gapMean: 5})
	s("clt.fp.08", profile{suite: "qmm.clt", kind: kindClient, gapMean: 5})
	s("clt.int.01", profile{suite: "qmm.clt", kind: kindClient, gapMean: 6})
	s("clt.int.19", profile{suite: "qmm.clt", kind: kindClient, gapMean: 6})
	s("clt.int.31", profile{suite: "qmm.clt", kind: kindClient, gapMean: 6})
}
