package workload

import (
	"strings"
	"sync"

	"repro/internal/trace"
)

// This file is the bridge between the synthetic catalogue and external
// trace supplies. A Source resolves trace names the catalogue does not
// know — most importantly the traceset registry's ingested real traces,
// referenced as "ingested:<content-address>" — so the engine, sweeps and
// the HTTP API accept registry names exactly like catalogue names: Exists
// validates them, Materialize caches their slabs, and TraceDigest folds
// their content identity into engine cache keys.

// IngestedPrefix namespaces registry trace names: "ingested:<address>",
// where <address> is the trace's content address (the SHA-256 of its
// normalized record stream). The digest riding inside the name is what
// keeps engine result-store keys sound without the engine ever touching
// the registry.
const IngestedPrefix = "ingested:"

// IngestedName returns the workload name of an ingested trace address.
func IngestedName(address string) string { return IngestedPrefix + address }

// IngestedDigest parses an ingested trace name into its content digest.
// It is a pure string operation — no registry lookup — so content
// addressing stays deterministic even where no Source is registered.
func IngestedDigest(name string) (string, bool) {
	if rest, ok := strings.CutPrefix(name, IngestedPrefix); ok && rest != "" {
		return rest, true
	}
	return "", false
}

// TraceDigest returns the content digest a trace name contributes to
// engine cache keys, and whether it has one. Catalogue names return
// false: the name alone regenerates the records bit for bit, so the name
// is already the identity. Ingested names carry their record-stream
// digest.
func TraceDigest(name string) (string, bool) {
	if _, ok := registry[name]; ok {
		return "", false
	}
	return IngestedDigest(name)
}

// Source resolves trace names outside the synthetic catalogue. It must be
// safe for concurrent use.
type Source interface {
	// Exists reports whether the source can load the named trace.
	Exists(name string) bool
	// Load returns up to n records of the named trace (n <= 0 loads all).
	// Traces shorter than n return every record they have; the simulator
	// loops traces, so a short slab is still a complete workload.
	Load(name string, n int) ([]trace.Record, error)
}

// SlabSource optionally extends Source with direct slab access: LoadSlab
// returns up to n records as a trace.Records, preferring a zero-copy
// mapped representation (an mmap'd columnar sidecar) over a heap decode
// when one is available. Sources that cannot do better than Load simply
// don't implement it; MaterializeRecords falls back to the heap path.
type SlabSource interface {
	Source
	LoadSlab(name string, n int) (trace.Records, error)
}

var sourceReg struct {
	mu      sync.RWMutex
	sources []Source
}

// RegisterSource plugs a Source into the process-wide name resolution used
// by Exists and Materialize. Sources are consulted in registration order,
// after the synthetic catalogue.
func RegisterSource(s Source) {
	sourceReg.mu.Lock()
	defer sourceReg.mu.Unlock()
	sourceReg.sources = append(sourceReg.sources, s)
}

// ResetSources removes every registered source. For tests.
func ResetSources() {
	sourceReg.mu.Lock()
	defer sourceReg.mu.Unlock()
	sourceReg.sources = nil
}

// sourceFor returns the first registered source that can load name.
func sourceFor(name string) Source {
	sourceReg.mu.RLock()
	defer sourceReg.mu.RUnlock()
	for _, s := range sourceReg.sources {
		if s.Exists(name) {
			return s
		}
	}
	return nil
}
