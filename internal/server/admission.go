// Admission control: dependency-free per-client token buckets in front
// of the expensive compile paths (POST /simulate, /sweep, /jobs). A
// single client looping sweeps can monopolize every engine shard; the
// bucket caps each client's sustained start rate while letting bursts
// through, and over-limit requests fail fast with 429 + Retry-After
// instead of queueing behind simulations. Clients are keyed by the
// remote address' host part — crude but dependency-free, and exactly
// right for the "one runaway script" failure mode this guards against.
package server

import (
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// admission is a set of per-client token buckets. Buckets refill at rps
// tokens per second up to burst; a request takes one token or is
// rejected with the time until one refills. The zero *admission (nil)
// disables admission entirely.
type admission struct {
	rps   float64
	burst float64

	// now is the clock, swappable in tests.
	now func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxAdmissionBuckets bounds the per-client map: when exceeded, the
// stalest buckets are dropped. A dropped bucket resurrects full, so an
// attacker cycling source addresses gains bursts at most — sustained
// throughput is still capped per address — while the server's memory
// stays bounded.
const maxAdmissionBuckets = 4096

func newAdmission(rps float64, burst int) *admission {
	if rps <= 0 {
		rps = 1
	}
	if burst < 1 {
		burst = 1
	}
	return &admission{
		rps:     rps,
		burst:   float64(burst),
		now:     time.Now,
		buckets: make(map[string]*bucket),
	}
}

// take attempts to admit one request for the client. It returns ok, or
// the duration after which a retry will be admitted.
func (a *admission) take(client string) (ok bool, retryAfter time.Duration) {
	now := a.now()
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.buckets[client]
	if b == nil {
		if len(a.buckets) >= maxAdmissionBuckets {
			a.evictStalestLocked()
		}
		b = &bucket{tokens: a.burst, last: now}
		a.buckets[client] = b
	}
	b.tokens = math.Min(a.burst, b.tokens+now.Sub(b.last).Seconds()*a.rps)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / a.rps * float64(time.Second))
}

// evictStalestLocked drops the quarter of buckets with the oldest
// activity. Evicting in batches amortizes the full scan.
func (a *admission) evictStalestLocked() {
	drop := len(a.buckets) / 4
	if drop < 1 {
		drop = 1
	}
	for ; drop > 0; drop-- {
		var (
			stalest string
			oldest  time.Time
			found   bool
		)
		for k, b := range a.buckets {
			if !found || b.last.Before(oldest) {
				stalest, oldest, found = k, b.last, true
			}
		}
		delete(a.buckets, stalest)
	}
}

// clientKey identifies the requester: the host part of RemoteAddr, so
// every port a client dials from shares one bucket.
func clientKey(r *http.Request) string {
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// admitted wraps an expensive handler with admission control. With no
// admission configured it is the handler itself.
func (s *Server) admitted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.admit != nil {
			if ok, retry := s.admit.take(clientKey(r)); !ok {
				secs := int(math.Ceil(retry.Seconds()))
				if secs < 1 {
					secs = 1
				}
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				httpError(w, http.StatusTooManyRequests,
					"rate limit exceeded: retry in %ds", secs)
				return
			}
		}
		h(w, r)
	}
}
