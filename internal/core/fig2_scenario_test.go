package core

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

// TestFig2Scenario encodes the paper's Figure 2 walkthrough directly:
//
// Regions A and C share a footprint AND its internal access order; region
// B differs in both. All four regions' trigger accesses are aligned (same
// trigger offset), so trigger-only characterization faces a conflict when
// region D activates. After D's second access matches B's order, Gaze can
// make a high-confidence prediction of B's remaining footprint — and must
// NOT predict A/C's.
func TestFig2Scenario(t *testing.T) {
	g := NewDefault()
	issueTo := func(c *collect) prefetch.IssueFunc { return c.issue }
	teach := &collect{}

	const trigger = 12
	// A and C: trigger, then 20, then the rest {28, 36}.
	orderAC := []int{trigger, 20, 28, 36}
	// B: same trigger, different second and different tail {50, 58}.
	orderB := []int{trigger, 44, 50, 58}

	pages := map[string]uint64{"A": 0x100, "B": 0x200, "C": 0x300}
	play := func(page uint64, order []int) {
		for _, off := range order {
			g.Train(prefetch.Access{
				PC:    0xfeed,
				VAddr: page*mem.PageSize + uint64(off)*mem.LineSize,
			}, issueTo(teach))
		}
		g.EvictNotify(page * mem.PageSize) // deactivate: pattern learned
	}
	play(pages["A"], orderAC)
	play(pages["B"], orderB)
	play(pages["C"], orderAC)

	// Region D activates with B's internal order: trigger, then 44.
	d := &collect{}
	pageD := uint64(0x400)
	g.Train(prefetch.Access{PC: 0xfeed, VAddr: pageD*mem.PageSize + trigger*mem.LineSize}, d.issue)
	g.Train(prefetch.Access{PC: 0xfeed, VAddr: pageD*mem.PageSize + 44*mem.LineSize}, d.issue)
	// Drain the prefetch buffer.
	for i := 0; i < 32; i++ {
		g.Train(prefetch.Access{PC: 0x1, VAddr: (0x9000 + uint64(i)) * mem.PageSize}, d.issue)
	}

	got := d.lines()
	base := pageD * mem.PageSize
	// B's tail must be predicted...
	for _, off := range []int{50, 58} {
		if _, ok := got[base+uint64(off)*mem.LineSize]; !ok {
			t.Errorf("Fig 2: block %d of B's pattern not prefetched for D", off)
		}
	}
	// ...and A/C's tail must not (that is the conflict Offset-keying
	// cannot resolve).
	for _, off := range []int{20, 28, 36} {
		if _, ok := got[base+uint64(off)*mem.LineSize]; ok {
			t.Errorf("Fig 2: conflicting block %d (A/C pattern) prefetched for D", off)
		}
	}

	// Control: the Offset-only variant cannot disambiguate — trained the
	// same way, its single 64-set PHT holds whichever pattern was learned
	// last for this trigger, so its prediction for D is order-blind.
	off1 := NewOffsetOnly()
	teach2 := &collect{}
	playVariant := func(gz *Gaze, page uint64, order []int) {
		for _, off := range order {
			gz.Train(prefetch.Access{PC: 0xfeed, VAddr: page*mem.PageSize + uint64(off)*mem.LineSize}, teach2.issue)
		}
		gz.EvictNotify(page * mem.PageSize)
	}
	playVariant(off1, pages["A"], orderAC)
	playVariant(off1, pages["B"], orderB)
	playVariant(off1, pages["C"], orderAC) // most recent for this trigger: A/C pattern
	d2 := &collect{}
	off1.Train(prefetch.Access{PC: 0xfeed, VAddr: pageD*mem.PageSize + trigger*mem.LineSize}, d2.issue)
	for i := 0; i < 32; i++ {
		off1.Train(prefetch.Access{PC: 0x1, VAddr: (0xa000 + uint64(i)) * mem.PageSize}, d2.issue)
	}
	got2 := d2.lines()
	// The offset-only prediction fires at the trigger with the stale A/C
	// pattern even though D is about to follow B — a mispredict.
	if _, ok := got2[base+20*mem.LineSize]; !ok {
		t.Error("control: Offset variant did not fire the conflicting pattern")
	}
}
