// Package cache implements the set-associative cache model used at every
// level of the simulated hierarchy (L1D, L2C, LLC).
//
// The model is timing-aware in a single-pass trace-driven style: each line
// carries a readyAt cycle stamp, so a fill issued at cycle t with latency d
// is visible immediately but costs a residual wait to any access arriving
// before t+d. That one mechanism models MSHR merging of demands and the
// paper's "late prefetch" definition ("a CPU access hits on an outstanding
// prefetch request") without a discrete event queue.
//
// Lines also carry a prefetch bit and a fill origin, which drive the
// paper's metrics: overall accuracy (§IV-A3) counts a prefetched line as
// useful on its first demand touch at the level the prefetch targeted and
// useless when evicted untouched; LLC coverage counts useful prefetches
// whose data came from DRAM.
//
// Storage is structure-of-arrays, sized for the simulation hot loop: tag
// words (validity folded in as tag+1, zero = invalid) and LRU stamps are
// each packed contiguously so a 12-way tag scan touches two cache lines
// instead of nine, and per-line metadata is only dereferenced for the one
// way that hits or fills.
package cache

import (
	"fmt"

	"repro/internal/mem"
)

// Config describes one cache level.
type Config struct {
	// Name identifies the level in stats output ("L1D", "L2C", "LLC").
	Name string
	// Sets and Ways define the geometry; capacity = Sets*Ways*64B.
	Sets int
	Ways int
	// HitLatency is the access latency in CPU cycles.
	HitLatency float64
	// MSHRs bounds the number of outstanding misses. Zero disables the
	// bound (used by unit tests that only exercise placement).
	MSHRs int
}

// SizeBytes returns the cache capacity in bytes.
func (c Config) SizeBytes() int { return c.Sets * c.Ways * mem.LineSize }

// Validate reports configuration errors early instead of panicking deep in
// a simulation.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache %s: sets must be a positive power of two, got %d", c.Name, c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache %s: ways must be positive, got %d", c.Name, c.Ways)
	}
	if c.HitLatency < 0 {
		return fmt.Errorf("cache %s: negative hit latency", c.Name)
	}
	return nil
}

// lineMeta is the cold per-line state, read only for the way a scan
// resolved (tags and LRU stamps live in their own packed arrays; virtual
// line numbers live in vlines, allocated only when an evict observer
// needs them).
type lineMeta struct {
	readyAt float64
	// prefetch marks a line filled by a prefetch targeted at this level
	// and not yet touched by a demand access.
	prefetch bool
	// fromDRAM marks a prefetch fill whose data came from DRAM (it would
	// have been an off-chip miss); used for LLC coverage accounting.
	fromDRAM bool
}

// Stats accumulates per-level counters. The embedding simulator resets
// Stats at the warm-up boundary.
type Stats struct {
	DemandAccesses uint64
	DemandHits     uint64
	DemandMisses   uint64
	// PrefetchFills counts prefetch-targeted fills at this level.
	PrefetchFills uint64
	// UsefulPrefetches counts first demand touches of prefetched lines.
	UsefulPrefetches uint64
	// UselessPrefetches counts prefetched lines evicted untouched.
	UselessPrefetches uint64
	// LatePrefetches counts useful prefetches whose fill was still in
	// flight at first touch.
	LatePrefetches uint64
	// CoveredMisses counts useful prefetches that were served from DRAM,
	// i.e. demand misses this level would otherwise have sent off-chip.
	CoveredMisses uint64
}

// EvictFunc observes evictions: vline is the virtual line number recorded at
// fill time, wasPrefetch reports an untouched prefetched line.
type EvictFunc func(vline uint64, wasPrefetch bool)

// Cache is a set-associative, LRU, timing-annotated cache.
type Cache struct {
	cfg     Config
	ways    int
	setMask uint64
	onEvict EvictFunc

	// clock stamps LRU order. Stamps are uint32 to halve the victim
	// scan's memory traffic; on the (practically unreachable) wrap the
	// stamps are re-ranked per set, preserving exact LRU order — see
	// rebaseLRU.
	clock uint32

	// Structure-of-arrays line storage, Sets*Ways each: tags holds
	// lineNum+1 (0 = invalid way), lru the LRU stamps, meta the cold
	// per-line state.
	tags []uint64
	lru  []uint32
	meta []lineMeta
	// vlines records each line's virtual line number for eviction
	// notifications. Only the L1 has an evict observer, so the array is
	// allocated by SetEvictFunc rather than carried (and zeroed, and
	// written per fill) by every level.
	vlines []uint64

	// mshrFree holds the release times of the MSHR slots as a sorted
	// ring (ascending from mshrHead; the ring is always exactly full):
	// MSHRReserve reads the earliest release at the head in O(1), and
	// MSHRComplete pops the head and inserts the finish time. A finish
	// at or past the current maximum — the overwhelmingly common case,
	// since a new completion usually lands after everything in flight —
	// is one compare and one store: the freed head slot becomes the new
	// tail. Slot identity is deliberately dropped: only the *multiset*
	// of release times ever reaches timing (start = max(now, min)), and
	// among equal minima any slot is interchangeable, so this is
	// bit-identical to the historical per-slot first-min scan.
	mshrFree []float64
	mshrHead int

	// pending is the fill hint: when a miss-detecting scan (Access,
	// Probe, PromotePrefetch) establishes that a line is absent, it
	// records the victim way it computed in passing. A Fill for the same
	// line can then skip both of its scans — the simulator's miss path
	// always scans before filling. Every method that mutates line state
	// clears (or rewrites) the hint, so a hint that survives to Fill
	// proves the cache is untouched since the scan and the victim choice
	// is still exact.
	pending struct {
		tag   uint64 // lineNum+1, matching the tags array encoding
		way   int32
		valid bool
	}

	Stats Stats
}

// New constructs a cache; it panics on invalid configuration (construction
// happens at setup time where a panic is an acceptable failure mode, and
// Validate is available for callers that prefer errors).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.Sets * cfg.Ways
	c := &Cache{
		cfg:     cfg,
		ways:    cfg.Ways,
		setMask: uint64(cfg.Sets - 1),
		tags:    make([]uint64, n),
		lru:     make([]uint32, n),
		meta:    make([]lineMeta, n),
	}
	if cfg.MSHRs > 0 {
		c.mshrFree = make([]float64, cfg.MSHRs)
	}
	return c
}

// tick advances the LRU clock, re-ranking stamps first on the rare wrap.
func (c *Cache) tick() {
	if c.clock == ^uint32(0) {
		c.rebaseLRU()
	}
	c.clock++
}

// rebaseLRU compresses every set's stamps to ranks 1..ways, preserving
// their exact relative order (stamps are unique within a set; free ways
// keep stamp 0), and rewinds the clock past the highest rank. Victim
// selection before and after is therefore identical — the wrap is
// invisible to the simulation. At one tick per cache operation the wrap
// needs ~4.3 billion operations on one cache, beyond any configured
// budget, but correctness here must not depend on budget limits.
func (c *Cache) rebaseLRU() {
	orig := make([]uint32, c.ways)
	for base := 0; base+c.ways <= len(c.lru); base += c.ways {
		set := c.lru[base : base+c.ways]
		copy(orig, set) // rank against a snapshot, not half-rewritten stamps
		for i, si := range orig {
			if si == 0 {
				continue
			}
			var rank uint32 = 1
			for _, sj := range orig {
				if sj != 0 && sj < si {
					rank++
				}
			}
			set[i] = rank
		}
	}
	c.clock = uint32(c.ways)
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// SetEvictFunc installs the eviction observer.
func (c *Cache) SetEvictFunc(f EvictFunc) {
	c.onEvict = f
	if f != nil && c.vlines == nil {
		c.vlines = make([]uint64, len(c.tags))
	}
}

// setBase returns the index of way 0 of the set holding lineNum.
func (c *Cache) setBase(lineNum uint64) int {
	return int(lineNum&c.setMask) * c.ways
}

// findWay scans one set's packed tags for want (a lineNum+1 tag word) and
// returns the way holding it, or -1.
func (c *Cache) findWay(base int, want uint64) int {
	tags := c.tags[base : base+c.ways]
	for i, tg := range tags {
		if tg == want {
			return i
		}
	}
	return -1
}

// victimWay picks the way a fill of an absent line evicts: the first
// invalid way, else the LRU. One argmin pass over the stamps decides
// both, because an invalid way's stamp is always 0 (lines are never
// invalidated once filled, and the clock pre-increments, so valid lines
// stamp >= 1) and first-among-ties selects the first invalid way exactly
// like the historical scan.
func (c *Cache) victimWay(base int) int {
	lru := c.lru[base : base+c.ways]
	victim, oldest := 0, lru[0]
	for i := 1; i < len(lru); i++ {
		if lru[i] < oldest {
			victim, oldest = i, lru[i]
		}
	}
	return victim
}

// missWithHint records the fill hint for an absent line and returns -1.
func (c *Cache) missWithHint(base int, want uint64) int {
	c.pending.tag = want
	c.pending.way = int32(c.victimWay(base))
	c.pending.valid = true
	return -1
}

// AccessResult reports the outcome of a demand access.
type AccessResult struct {
	Hit bool
	// ReadyAt is the cycle the data is available (>= access cycle when the
	// line was in flight).
	ReadyAt float64
	// WasPrefetch reports that this access was the first demand touch of a
	// prefetched line.
	WasPrefetch bool
	// WasLate reports a WasPrefetch touch that arrived before the fill
	// completed (the paper's late-prefetch definition).
	WasLate bool
}

// Access performs a demand lookup at cycle now. On a hit the LRU state is
// updated, the prefetch bit is consumed and usefulness counters advance;
// a miss leaves a fill hint for the fill that follows.
func (c *Cache) Access(paddr mem.Addr, now float64) AccessResult {
	ln := mem.LineNum(paddr)
	base := c.setBase(ln)
	c.tick()
	c.Stats.DemandAccesses++
	i := c.findWay(base, ln+1)
	if i < 0 {
		c.missWithHint(base, ln+1)
		c.Stats.DemandMisses++
		return AccessResult{}
	}
	c.pending.valid = false
	c.Stats.DemandHits++
	c.lru[base+i] = c.clock
	m := &c.meta[base+i]
	res := AccessResult{Hit: true, ReadyAt: m.readyAt}
	if m.prefetch {
		m.prefetch = false
		c.Stats.UsefulPrefetches++
		res.WasPrefetch = true
		if m.readyAt > now {
			c.Stats.LatePrefetches++
			res.WasLate = true
		}
		if m.fromDRAM {
			c.Stats.CoveredMisses++
		}
	}
	return res
}

// Probe reports whether the line is present without touching LRU, prefetch
// bits or statistics. Prefetch issue logic uses it for redundancy checks;
// a miss leaves a fill hint behind for the fill that typically follows.
func (c *Cache) Probe(paddr mem.Addr) bool {
	ln := mem.LineNum(paddr)
	base := c.setBase(ln)
	if c.findWay(base, ln+1) >= 0 {
		return true
	}
	c.missWithHint(base, ln+1)
	return false
}

// InFlight reports whether the line is present but its fill has not
// completed by cycle now (an outstanding request).
func (c *Cache) InFlight(paddr mem.Addr, now float64) bool {
	ln := mem.LineNum(paddr)
	base := c.setBase(ln)
	if i := c.findWay(base, ln+1); i >= 0 {
		return c.meta[base+i].readyAt > now
	}
	return false
}

// FillOpts qualifies a Fill.
type FillOpts struct {
	// Prefetch marks a fill whose prefetch targeted this level.
	Prefetch bool
	// FromDRAM marks data served from DRAM.
	FromDRAM bool
	// VLine is the virtual line number, reported back on eviction.
	VLine uint64
}

// Fill inserts a line that becomes ready at readyAt, evicting the LRU
// victim if needed. Filling an already-present line refreshes its
// readiness only if the new fill completes earlier. When the pending fill
// hint matches — the simulator's miss paths always scan (Access, Probe or
// PromotePrefetch) right before filling — the tag and victim scans are
// skipped entirely.
func (c *Cache) Fill(paddr mem.Addr, readyAt float64, opts FillOpts) {
	ln := mem.LineNum(paddr)
	base := c.setBase(ln)
	c.tick()
	var victim int
	if c.pending.valid && c.pending.tag == ln+1 {
		// The hinting scan proved ln absent and nothing mutated the cache
		// since (every mutator clears the hint), so its victim is exact.
		victim = int(c.pending.way)
		c.pending.valid = false
	} else {
		c.pending.valid = false
		if i := c.findWay(base, ln+1); i >= 0 {
			m := &c.meta[base+i]
			if readyAt < m.readyAt {
				m.readyAt = readyAt
			}
			// A demand fill of a line previously prefetched keeps the
			// prefetch bit: usefulness is decided by demand *access*.
			return
		}
		victim = c.victimWay(base)
	}
	vm := &c.meta[base+victim]
	if c.tags[base+victim] != 0 {
		if vm.prefetch {
			c.Stats.UselessPrefetches++
		}
		if c.onEvict != nil {
			c.onEvict(c.vlines[base+victim], vm.prefetch)
		}
	}
	c.tags[base+victim] = ln + 1
	c.lru[base+victim] = c.clock
	if c.vlines != nil {
		c.vlines[base+victim] = opts.VLine
	}
	*vm = lineMeta{
		readyAt:  readyAt,
		prefetch: opts.Prefetch,
		fromDRAM: opts.FromDRAM && opts.Prefetch,
	}
	if opts.Prefetch {
		c.Stats.PrefetchFills++
	}
}

// AcquireMSHR models MSHR occupancy for a miss issued at cycle now that
// completes at completion. It returns the cycle the request can actually
// start (>= now when all slots are busy).
func (c *Cache) AcquireMSHR(now, completion float64) float64 {
	start, slot := c.MSHRReserve(now)
	if slot >= 0 {
		c.MSHRComplete(slot, completion+(start-now))
	}
	return start
}

// MSHRReserve claims the earliest-available MSHR slot for a miss arriving
// at cycle now. It returns the cycle the request may start (>= now) and an
// opaque slot token; the caller must follow up with MSHRComplete — before
// any other reservation on this cache — once the finish time is known.
// With MSHRs disabled it returns (now, -1).
func (c *Cache) MSHRReserve(now float64) (start float64, slot int) {
	if c.mshrFree == nil {
		return now, -1
	}
	start = now
	if min := c.mshrFree[c.mshrHead]; min > start {
		start = min
	}
	return start, 0
}

// MSHRComplete releases the slot of the most recent reservation at cycle
// finish: the earliest release (which that reservation claimed) is
// dropped and finish takes its sorted position.
func (c *Cache) MSHRComplete(slot int, finish float64) {
	if slot < 0 || c.mshrFree == nil {
		return
	}
	h := c.mshrFree
	n := len(h)
	head := c.mshrHead
	tail := head - 1
	if tail < 0 {
		tail += n
	}
	if finish >= h[tail] {
		// New maximum: the popped head slot is exactly where the new
		// tail belongs.
		h[head] = finish
		head++
		if head == n {
			head = 0
		}
		c.mshrHead = head
		return
	}
	// Out-of-order finish: slide smaller successors into the popped
	// head's hole until the sorted position is found.
	i := head
	for {
		j := i + 1
		if j == n {
			j = 0
		}
		if j == head || h[j] >= finish {
			break
		}
		h[i] = h[j]
		i = j
	}
	h[i] = finish
}

// ConsumePrefetch clears a resident line's prefetch bit without counting
// it as used or useless, returning whether the bit was set and whether the
// line's data came from DRAM. A higher-level prefetch that is served from
// this level inherits the attribution: the paper's overall-accuracy metric
// counts each prefetched block once (§IV-A3).
func (c *Cache) ConsumePrefetch(paddr mem.Addr) (wasPrefetch, fromDRAM bool) {
	ln := mem.LineNum(paddr)
	base := c.setBase(ln)
	c.pending.valid = false
	if i := c.findWay(base, ln+1); i >= 0 {
		m := &c.meta[base+i]
		wasPrefetch, fromDRAM = m.prefetch, m.fromDRAM
		if m.prefetch {
			// Transfer: the fill at the level above re-registers it.
			c.Stats.PrefetchFills--
			m.prefetch = false
			m.fromDRAM = false
		}
		return wasPrefetch, fromDRAM
	}
	return false, false
}

// PromotePrefetch is the fused Probe + Touch + ConsumePrefetch the
// prefetch-issue hot path uses when an L1-destined prefetch may be served
// from this level: one set scan reports residency, refreshes the line's
// LRU position, and transfers the prefetch attribution (see
// ConsumePrefetch). The clock only advances when the line is present,
// exactly as the unfused Probe-then-Touch sequence behaves; a miss leaves
// a fill hint behind.
func (c *Cache) PromotePrefetch(paddr mem.Addr) (present, wasPrefetch, fromDRAM bool) {
	ln := mem.LineNum(paddr)
	base := c.setBase(ln)
	i := c.findWay(base, ln+1)
	if i < 0 {
		c.missWithHint(base, ln+1)
		return false, false, false
	}
	c.pending.valid = false
	c.tick()
	c.lru[base+i] = c.clock
	m := &c.meta[base+i]
	wasPrefetch, fromDRAM = m.prefetch, m.fromDRAM
	if m.prefetch {
		c.Stats.PrefetchFills--
		m.prefetch = false
		m.fromDRAM = false
	}
	return true, wasPrefetch, fromDRAM
}

// ProbeTouch is the fused Probe + Touch the prefetch-issue path uses for
// levels that may serve a prefetch without inheriting attribution (the
// LLC): one scan reports residency and refreshes the LRU position. The
// clock only advances on presence, exactly like the unfused pair, and a
// miss leaves a fill hint behind.
func (c *Cache) ProbeTouch(paddr mem.Addr) bool {
	ln := mem.LineNum(paddr)
	base := c.setBase(ln)
	i := c.findWay(base, ln+1)
	if i < 0 {
		c.missWithHint(base, ln+1)
		return false
	}
	c.pending.valid = false
	c.tick()
	c.lru[base+i] = c.clock
	return true
}

// Touch refreshes a line's LRU position without affecting statistics or
// prefetch bits. The prefetch-issue path uses it when a prefetch is served
// by a lower level.
func (c *Cache) Touch(paddr mem.Addr) {
	ln := mem.LineNum(paddr)
	base := c.setBase(ln)
	c.pending.valid = false
	c.tick()
	if i := c.findWay(base, ln+1); i >= 0 {
		c.lru[base+i] = c.clock
	}
}

// MSHRBusy reports how many MSHR slots are still held at cycle now. The
// DSPatch prefetcher uses it as its bandwidth-pressure proxy.
func (c *Cache) MSHRBusy(now float64) int {
	n := 0
	for _, t := range c.mshrFree {
		if t > now {
			n++
		}
	}
	return n
}

// FlushStats finalizes end-of-simulation accounting: every still-resident
// untouched prefetched line counts as useless (it never helped).
func (c *Cache) FlushStats() {
	c.pending.valid = false
	for i := range c.meta {
		if c.tags[i] != 0 && c.meta[i].prefetch {
			c.Stats.UselessPrefetches++
			c.meta[i].prefetch = false
		}
	}
}

// ResetStats clears the statistics (used at the warm-up boundary) without
// disturbing cache contents.
func (c *Cache) ResetStats() { c.Stats = Stats{} }
