package mem

import (
	"testing"
	"testing/quick"
)

func TestLineAddr(t *testing.T) {
	cases := []struct {
		in, want Addr
	}{
		{0, 0},
		{1, 0},
		{63, 0},
		{64, 64},
		{65, 64},
		{4095, 4032},
		{4096, 4096},
	}
	for _, c := range cases {
		if got := LineAddr(c.in); got != c.want {
			t.Errorf("LineAddr(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestBlockOffsetRange(t *testing.T) {
	if err := quick.Check(func(a uint64) bool {
		off := BlockOffset(Addr(a))
		return off >= 0 && off < BlocksPerPage
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockAddrRoundTrip(t *testing.T) {
	if err := quick.Check(func(a uint64) bool {
		addr := Addr(a)
		region := PageNum(addr)
		off := BlockOffset(addr)
		back := BlockAddr(region, off)
		return back == LineAddr(addr)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPageDecomposition(t *testing.T) {
	a := Addr(0x12345_678)
	if PageNum(a) != 0x12345 {
		t.Errorf("PageNum = %#x, want 0x12345", PageNum(a))
	}
	if PageBase(a) != 0x12345_000 {
		t.Errorf("PageBase = %#x", PageBase(a))
	}
	if BlockOffset(a) != 0x678>>6 {
		t.Errorf("BlockOffset = %d, want %d", BlockOffset(a), 0x678>>6)
	}
}

func TestRegionGeometrySizes(t *testing.T) {
	for _, size := range []int{512, 1024, 2048, 4096, 8192, 16384, 32768, 65536} {
		g := NewRegionGeometry(size)
		if g.Size() != size {
			t.Errorf("size %d: Size() = %d", size, g.Size())
		}
		if g.Blocks() != size/LineSize {
			t.Errorf("size %d: Blocks() = %d, want %d", size, g.Blocks(), size/LineSize)
		}
	}
}

func TestRegionGeometry4KBMatchesPageHelpers(t *testing.T) {
	g := NewRegionGeometry(PageSize)
	if err := quick.Check(func(a uint64) bool {
		addr := Addr(a)
		return g.RegionNum(addr) == PageNum(addr) && g.Offset(addr) == BlockOffset(addr)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestRegionGeometryRoundTrip(t *testing.T) {
	g := NewRegionGeometry(16384)
	if err := quick.Check(func(a uint64) bool {
		addr := Addr(a)
		back := g.BlockAddr(g.RegionNum(addr), g.Offset(addr))
		return back == LineAddr(addr)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestNewRegionGeometryPanics(t *testing.T) {
	for _, bad := range []int{0, 1, 63, 100, 3 * 1024} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRegionGeometry(%d) did not panic", bad)
				}
			}()
			NewRegionGeometry(bad)
		}()
	}
}

func TestTranslatorPreservesPageOffset(t *testing.T) {
	tr := NewTranslator(42)
	if err := quick.Check(func(a uint64) bool {
		v := Addr(a)
		p := tr.Translate(v)
		return (p & (PageSize - 1)) == (v & (PageSize - 1))
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestTranslatorDeterministic(t *testing.T) {
	tr1 := NewTranslator(7)
	tr2 := NewTranslator(7)
	for i := 0; i < 1000; i++ {
		v := Addr(i * 4096)
		if tr1.Translate(v) != tr2.Translate(v) {
			t.Fatalf("translation not deterministic at %#x", v)
		}
	}
}

func TestTranslatorScattersAdjacentPages(t *testing.T) {
	// Adjacent virtual pages must not map to adjacent physical frames for
	// most pages; otherwise physical-address prefetchers would see virtual
	// contiguity and the virtual-vs-physical distinction would vanish.
	tr := NewTranslator(1)
	adjacent := 0
	const n = 10000
	for i := 0; i < n; i++ {
		p0 := PageNum(tr.Translate(Addr(i) * PageSize))
		p1 := PageNum(tr.Translate(Addr(i+1) * PageSize))
		if p1 == p0+1 {
			adjacent++
		}
	}
	if adjacent > n/100 {
		t.Errorf("too many adjacent frame mappings: %d/%d", adjacent, n)
	}
}

func TestTranslatorCollisionFree(t *testing.T) {
	tr := NewTranslator(3)
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 50000; i++ {
		pfn := PageNum(tr.Translate(Addr(i * PageSize)))
		if prev, ok := seen[pfn]; ok {
			t.Fatalf("frame collision: vpages %d and %d both map to frame %#x", prev, i, pfn)
		}
		seen[pfn] = i
	}
}

func TestHashPCIs12Bits(t *testing.T) {
	if err := quick.Check(func(pc uint64) bool {
		return HashPC(pc) < 1<<12
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestHashPCSpreads(t *testing.T) {
	// Sequential PCs (4-byte spaced instructions) should fill a good
	// fraction of the 4096 buckets.
	seen := make(map[uint16]bool)
	for i := uint64(0); i < 4096; i++ {
		seen[HashPC(0x400000+i*4)] = true
	}
	if len(seen) < 2000 {
		t.Errorf("HashPC spreads poorly: %d/4096 distinct buckets", len(seen))
	}
}
