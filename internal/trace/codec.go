package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary trace file format (all little-endian-free varints):
//
//	magic   "GZTR\x01"
//	records repeated:
//	  kindAndNonMem varint  (kind in low bit, NonMem in the rest)
//	  pcDelta       signed varint (delta from previous PC)
//	  addrDelta     signed varint (delta from previous Addr)
//
// Delta + varint encoding keeps streaming traces compact (~3-6 bytes per
// record) which matters for the cmd/tracegen round-trip tooling.

var magic = [5]byte{'G', 'Z', 'T', 'R', 1}

// Writer encodes records to an io.Writer.
type Writer struct {
	w        *bufio.Writer
	prevPC   uint64
	prevAddr uint64
	buf      [binary.MaxVarintLen64]byte
	started  bool
}

// NewWriter creates a trace writer and emits the file header.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	head := uint64(r.NonMem)<<1 | uint64(r.Kind&1)
	if err := w.putUvarint(head); err != nil {
		return err
	}
	if err := w.putVarint(int64(r.PC - w.prevPC)); err != nil {
		return err
	}
	if err := w.putVarint(int64(r.Addr - w.prevAddr)); err != nil {
		return err
	}
	w.prevPC, w.prevAddr = r.PC, r.Addr
	w.started = true
	return nil
}

// Flush writes any buffered bytes to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

func (w *Writer) putUvarint(v uint64) error {
	n := binary.PutUvarint(w.buf[:], v)
	_, err := w.w.Write(w.buf[:n])
	return err
}

func (w *Writer) putVarint(v int64) error {
	n := binary.PutVarint(w.buf[:], v)
	_, err := w.w.Write(w.buf[:n])
	return err
}

// FileReader decodes a binary trace stream produced by Writer.
type FileReader struct {
	r        *bufio.Reader
	prevPC   uint64
	prevAddr uint64
}

// NewFileReader validates the header and returns a trace Reader.
func NewFileReader(r io.Reader) (*FileReader, error) {
	br := bufio.NewReader(r)
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if hdr != magic {
		return nil, ErrCorrupt
	}
	return &FileReader{r: br}, nil
}

// Next implements Reader.
func (f *FileReader) Next() (Record, error) {
	head, err := binary.ReadUvarint(f.r)
	if err == io.EOF {
		return Record{}, io.EOF
	}
	if err != nil {
		return Record{}, ErrCorrupt
	}
	pcD, err := binary.ReadVarint(f.r)
	if err != nil {
		return Record{}, ErrCorrupt
	}
	addrD, err := binary.ReadVarint(f.r)
	if err != nil {
		return Record{}, ErrCorrupt
	}
	nonMem := head >> 1
	if nonMem > 0xffff {
		return Record{}, ErrCorrupt
	}
	f.prevPC += uint64(pcD)
	f.prevAddr += uint64(addrD)
	return Record{
		PC:     f.prevPC,
		Addr:   f.prevAddr,
		NonMem: uint16(nonMem),
		Kind:   Kind(head & 1),
	}, nil
}
