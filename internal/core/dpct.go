package core

// dpct is the Dense PC Table: a tiny fully-associative LRU table of hashed
// PCs recently observed to trigger fully-dense (spatial-streaming)
// footprints (§III-C, Table I: 8 entries × 12-bit hashed PC).
type dpct struct {
	pcs   []uint16
	lru   []uint64
	clock uint64
}

func newDPCT(entries int) *dpct {
	return &dpct{pcs: make([]uint16, 0, entries), lru: make([]uint64, 0, entries)}
}

// contains reports whether the hashed PC was recently recorded as dense,
// refreshing its recency on a hit.
func (d *dpct) contains(pc uint16) bool {
	for i, p := range d.pcs {
		if p == pc {
			d.clock++
			d.lru[i] = d.clock
			return true
		}
	}
	return false
}

// record inserts (or refreshes) a dense PC, evicting the LRU entry when
// full.
func (d *dpct) record(pc uint16) {
	d.clock++
	for i, p := range d.pcs {
		if p == pc {
			d.lru[i] = d.clock
			return
		}
	}
	if len(d.pcs) < cap(d.pcs) {
		d.pcs = append(d.pcs, pc)
		d.lru = append(d.lru, d.clock)
		return
	}
	victim := 0
	for i := 1; i < len(d.lru); i++ {
		if d.lru[i] < d.lru[victim] {
			victim = i
		}
	}
	d.pcs[victim] = pc
	d.lru[victim] = d.clock
}

// denseCounter is the 3-bit Dense Counter with the paper's asymmetric
// update rule: slow increment on dense footprints, slow decrement when
// weakly confident, fast halving when strongly confident but wrong
// (Fig 3a, lower part).
type denseCounter struct {
	v   int
	max int
}

func newDenseCounter() *denseCounter { return &denseCounter{max: 7} }

// increment applies the slow +1 (saturating).
func (dc *denseCounter) increment() {
	if dc.v < dc.max {
		dc.v++
	}
}

// decrement applies the confidence-scaled decrement: DC>2 halves, else -1.
func (dc *denseCounter) decrement() {
	if dc.v > 2 {
		dc.v /= 2
	} else if dc.v > 0 {
		dc.v--
	}
}

// full reports saturation (highest streaming confidence).
func (dc *denseCounter) full() bool { return dc.v == dc.max }

// halfConfident reports DC > 2 (moderate streaming confidence).
func (dc *denseCounter) halfConfident() bool { return dc.v > 2 }
