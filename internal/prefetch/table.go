package prefetch

// Table is a generic set-associative LRU metadata table — the structure
// behind FT, AT, PHT, Bingo/SMS history tables and the prefetch buffer.
// Entries hold a caller-defined payload V and are located by (set, tag).
type Table[V any] struct {
	sets  int
	ways  int
	ent   []tableEntry[V]
	clock uint64
}

type tableEntry[V any] struct {
	tag   uint64
	lru   uint64
	valid bool
	val   V
}

// NewTable allocates a sets×ways table. sets must be a power of two.
func NewTable[V any](sets, ways int) *Table[V] {
	if sets <= 0 || sets&(sets-1) != 0 || ways <= 0 {
		panic("prefetch: table sets must be a positive power of two, ways positive")
	}
	return &Table[V]{sets: sets, ways: ways, ent: make([]tableEntry[V], sets*ways)}
}

// Sets returns the number of sets.
func (t *Table[V]) Sets() int { return t.sets }

// Ways returns the associativity.
func (t *Table[V]) Ways() int { return t.ways }

// SetIndex maps an arbitrary key to a set index.
func (t *Table[V]) SetIndex(key uint64) int { return int(key) & (t.sets - 1) }

func (t *Table[V]) set(idx int) []tableEntry[V] {
	base := idx * t.ways
	return t.ent[base : base+t.ways]
}

// Lookup finds (set, tag) and refreshes its LRU position. It returns a
// pointer to the payload, valid until the next Insert into the same set.
func (t *Table[V]) Lookup(setIdx int, tag uint64) (*V, bool) {
	t.clock++
	s := t.set(setIdx & (t.sets - 1))
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			s[i].lru = t.clock
			return &s[i].val, true
		}
	}
	return nil, false
}

// Peek finds (set, tag) without refreshing LRU.
func (t *Table[V]) Peek(setIdx int, tag uint64) (*V, bool) {
	s := t.set(setIdx & (t.sets - 1))
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			return &s[i].val, true
		}
	}
	return nil, false
}

// Insert places a payload at (set, tag), evicting the LRU entry of the set
// when full. It returns the evicted payload (zero V when nothing valid was
// displaced) and whether an eviction happened.
func (t *Table[V]) Insert(setIdx int, tag uint64, val V) (evicted V, wasEvict bool) {
	t.clock++
	s := t.set(setIdx & (t.sets - 1))
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			s[i].val = val
			s[i].lru = t.clock
			return evicted, false
		}
		if !s[i].valid {
			if oldest != 0 {
				victim, oldest = i, 0
			}
			continue
		}
		if s[i].lru < oldest {
			victim, oldest = i, s[i].lru
		}
	}
	if s[victim].valid {
		evicted, wasEvict = s[victim].val, true
	}
	s[victim] = tableEntry[V]{tag: tag, lru: t.clock, valid: true, val: val}
	return evicted, wasEvict
}

// Invalidate removes (set, tag); it reports whether an entry was removed
// and returns the removed payload.
func (t *Table[V]) Invalidate(setIdx int, tag uint64) (V, bool) {
	var zero V
	s := t.set(setIdx & (t.sets - 1))
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			v := s[i].val
			s[i] = tableEntry[V]{}
			return v, true
		}
	}
	return zero, false
}

// ScanSet iterates the valid entries of one set without touching LRU
// state; fn returning false stops the scan. Bingo-style dual-tag lookups
// (exact long-event match first, then approximate short-event match) use
// this to inspect all ways of a set.
func (t *Table[V]) ScanSet(setIdx int, fn func(tag uint64, val *V) bool) {
	s := t.set(setIdx & (t.sets - 1))
	for i := range s {
		if s[i].valid {
			if !fn(s[i].tag, &s[i].val) {
				return
			}
		}
	}
}

// TouchEntry refreshes the LRU position of (set, tag) if present.
func (t *Table[V]) TouchEntry(setIdx int, tag uint64) {
	t.clock++
	s := t.set(setIdx & (t.sets - 1))
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			s[i].lru = t.clock
			return
		}
	}
}

// Range calls fn for every valid entry; fn may mutate the payload through
// the pointer. Iteration order is unspecified.
func (t *Table[V]) Range(fn func(setIdx int, tag uint64, val *V)) {
	for i := range t.ent {
		if t.ent[i].valid {
			fn(i/t.ways, t.ent[i].tag, &t.ent[i].val)
		}
	}
}

// Len returns the number of valid entries.
func (t *Table[V]) Len() int {
	n := 0
	for i := range t.ent {
		if t.ent[i].valid {
			n++
		}
	}
	return n
}

// Clear invalidates everything.
func (t *Table[V]) Clear() {
	for i := range t.ent {
		t.ent[i] = tableEntry[V]{}
	}
}
