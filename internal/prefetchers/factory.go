package prefetchers

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/prefetch"
)

// New constructs a prefetcher by its report name. Fresh state is returned
// on every call — prefetchers are stateful and must not be shared between
// simulations.
//
// Known names: none, IP-stride, SPP-PPF, IPCP-L1, vBerti, SMS, Bingo,
// DSPatch, PMP, Gaze, Gaze-PHT, Offset, PHT4SS, SM4SS, Gaze-1acc..
// Gaze-4acc, vGaze-<n>KB.
func New(name string) (prefetch.Prefetcher, error) {
	switch name {
	case "none", "":
		return prefetch.Nil{}, nil
	case "IP-stride":
		return NewIPStride(0), nil
	case "BOP":
		return NewBOP(), nil
	case "SPP-PPF":
		return NewSPPPPF(), nil
	case "IPCP-L1", "IPCP":
		return NewIPCP(), nil
	case "vBerti", "Berti":
		return NewBerti(), nil
	case "SMS":
		return NewSMS(DefaultSMSConfig()), nil
	case "Bingo":
		return NewBingo(DefaultBingoConfig()), nil
	case "DSPatch":
		return NewDSPatch(), nil
	case "PMP":
		return NewPMP(), nil
	case "Gaze":
		return core.NewDefault(), nil
	case "Gaze-PHT":
		return core.NewGazePHT(), nil
	case "Offset":
		return core.NewOffsetOnly(), nil
	case "PHT4SS":
		return core.NewPHT4SS(), nil
	case "SM4SS":
		return core.NewSM4SS(), nil
	case "Gaze-1acc":
		return core.NewGazeN(1), nil
	case "Gaze-2acc":
		return core.NewGazeN(2), nil
	case "Gaze-3acc":
		return core.NewGazeN(3), nil
	case "Gaze-4acc":
		return core.NewGazeN(4), nil
	}
	var kb int
	if _, err := fmt.Sscanf(name, "vGaze-%dKB", &kb); err == nil && kb > 0 {
		return core.NewVGaze(kb * 1024), nil
	}
	var bytes int
	if _, err := fmt.Sscanf(name, "vGaze-%dB", &bytes); err == nil && bytes > 0 {
		return core.NewVGaze(bytes), nil
	}
	var entries int
	if _, err := fmt.Sscanf(name, "Gaze-PHT%d", &entries); err == nil && entries > 0 {
		return core.NewWithPHTEntries(entries), nil
	}
	return nil, fmt.Errorf("prefetchers: unknown prefetcher %q", name)
}

// MustNew is New for known-good names.
func MustNew(name string) prefetch.Prefetcher {
	p, err := New(name)
	if err != nil {
		panic(err)
	}
	return p
}

// EvaluatedNames lists the nine prefetchers of the paper's main
// single-core comparison (Fig 6-8), in the figures' display order.
func EvaluatedNames() []string {
	return []string{
		"IP-stride", "SPP-PPF", "IPCP-L1", "vBerti",
		"SMS", "Bingo", "DSPatch", "PMP", "Gaze",
	}
}

// StorageBytes returns a prefetcher's metadata budget when it exposes one
// (the Table IV column); ok is false otherwise.
func StorageBytes(p prefetch.Prefetcher) (float64, bool) {
	type sizer interface{ StorageBytes() float64 }
	if s, ok := p.(sizer); ok {
		return s.StorageBytes(), true
	}
	if g, ok := p.(*core.Gaze); ok {
		return g.TotalStorageBytes(), true
	}
	return 0, false
}
