// Package engine executes prefetcher simulations as cacheable experiment
// jobs. It is the shared substrate under internal/harness (paper tables),
// cmd/gazesim and cmd/experiments (CLIs) and cmd/gazeserve (HTTP): every
// entry point describes work as Jobs, and the engine deduplicates them
// through an in-process memo, an optional content-addressed disk store
// (instant repeated sweeps across processes), and a shard-parallel sweep
// executor with deterministic scheduling and progress/ETA reporting.
package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/prefetchers"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Scale bounds experiment cost. The paper simulates 200M+200M instructions
// per trace on a 384-core cluster over days; synthetic stationary traces
// converge much faster (DESIGN.md §1), so even Full here is laptop-scale.
type Scale struct {
	// TracesPerSuite caps traces per suite (0 = all catalogue entries).
	TracesPerSuite int
	// TraceLen is the number of generated records per trace.
	TraceLen int
	// Warmup and Sim are per-core instruction budgets.
	Warmup uint64
	Sim    uint64
}

// Predefined scales.
var (
	Quick    = Scale{TracesPerSuite: 2, TraceLen: 50_000, Warmup: 40_000, Sim: 150_000}
	Standard = Scale{TracesPerSuite: 5, TraceLen: 120_000, Warmup: 100_000, Sim: 400_000}
	Full     = Scale{TracesPerSuite: 0, TraceLen: 250_000, Warmup: 200_000, Sim: 800_000}
)

// ScaleByName maps the CLI spelling of a scale to its definition.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "quick":
		return Quick, nil
	case "standard":
		return Standard, nil
	case "full":
		return Full, nil
	}
	return Scale{}, fmt.Errorf("engine: unknown scale %q (want quick, standard or full)", name)
}

// Job declaratively describes one simulation: one or more cores with
// traces and prefetchers, plus typed configuration Overrides. A Job holds
// only plain values — no functions — so it serializes to JSON, travels
// over HTTP unchanged, and is content-addressed by ContentAddress; two
// jobs describing the same simulation hash identically by construction.
type Job struct {
	// Traces holds one trace name per core.
	Traces []string `json:"traces"`
	// L1 holds one L1 prefetcher name per core ("" / "none" for no
	// prefetching); a single-element slice is broadcast to all cores.
	L1 []string `json:"l1,omitempty"`
	// L2 optionally attaches L2 prefetchers (Fig 13), broadcast like L1.
	L2 []string `json:"l2,omitempty"`
	// Overrides perturbs the default system configuration (Fig 16's
	// sensitivity axes and more); the zero value is the Table II default.
	Overrides Overrides `json:"overrides,omitzero"`
}

// canonicalVersion stamps the canonical job encoding. It is defined as
// the store schema version so the two cannot drift: an encoding change
// moves records to unreachable paths, and only the Open-time sweep keyed
// on StoreSchemaVersion can clean those up.
const canonicalVersion = StoreSchemaVersion

// canonicalJob is the canonical serialization that content addresses are
// computed over. It folds in every scale knob that changes the simulation
// outcome (TracesPerSuite only selects jobs, it never alters one, so it
// is excluded — a Quick and a Full sweep share entries for identical jobs
// at equal budgets). It is a struct, not a map, so encoding/json emits
// fields in one fixed order on every process and platform.
type canonicalJob struct {
	V        int      `json:"v"`
	TraceLen int      `json:"trace_len"`
	Warmup   uint64   `json:"warmup"`
	Sim      uint64   `json:"sim"`
	Traces   []string `json:"traces"`
	// TraceDigests pins per-core trace content for traces resolved outside
	// the synthetic catalogue (ingested real traces): one digest per core,
	// "" for catalogue traces, omitted entirely — preserving every
	// existing key — when all cores run catalogue traces, whose names
	// regenerate their records bit for bit and so are already identities.
	TraceDigests []string  `json:"trace_digests,omitempty"`
	L1           []string  `json:"l1,omitempty"`
	L2           []string  `json:"l2,omitempty"`
	Overrides    Overrides `json:"overrides,omitzero"`
}

// CanonicalJSON returns the job's canonical encoding at a scale — the
// preimage of ContentAddress and the self-describing key persisted inside
// store records. Inputs are normalized first so spellings that run the
// same simulation share one encoding and therefore one cache entry:
// prefetcher slices are broadcast to the core count with "none" folded
// into "", and instruction-budget overrides are folded into the warmup/sim
// fields they replace (a job overriding both budgets encodes identically
// under every scale, since the scale's budgets never reach the simulator).
func (j Job) CanonicalJSON(scale Scale) string {
	warmup, sim := j.Overrides.EffectiveBudgets(scale)
	o := j.Overrides
	o.WarmupInstructions, o.SimInstructions = 0, 0 // folded into warmup/sim
	if o.SliceShards == 1 {
		// One slice is the whole run: slice_shards 1 executes the plain
		// unsliced path, so it must share the unsliced job's address.
		// Every K >= 2 stays in the encoding — sliced results differ
		// numerically from unsliced ones (bounded per-slice warmup), so
		// each (job, K) is its own content-addressed experiment.
		o.SliceShards = 0
	}
	l1 := canonicalNames(j.L1, len(j.Traces))
	l2 := canonicalNames(j.L2, len(j.Traces))
	if l1 == nil && l2 == nil {
		// Prefetch-queue knobs only shape prefetch traffic
		// (sim.Config.PQ* feed prefetch.NewQueue and nothing else), so a
		// no-prefetch job runs identically at any queue geometry — fold
		// the knobs out so every axis value of a PQ sweep shares one
		// baseline entry instead of re-simulating it per value.
		o.PQCapacity, o.PQDrainRate = 0, 0
	}
	doc := canonicalJob{
		V:            canonicalVersion,
		TraceLen:     scale.TraceLen,
		Warmup:       warmup,
		Sim:          sim,
		Traces:       j.Traces,
		TraceDigests: traceDigests(j.Traces),
		L1:           l1,
		L2:           l2,
		Overrides:    o,
	}
	data, err := json.Marshal(doc)
	if err != nil { // no field of canonicalJob can fail to encode
		panic(fmt.Sprintf("engine: encoding job %v: %v", j, err))
	}
	return string(data)
}

// ContentAddress returns the SHA-256 hex digest of CanonicalJSON — the
// job's identity in the memo, the persisted store (which files records
// under it) and Progress reports.
func (j Job) ContentAddress(scale Scale) string {
	return hashKey(j.CanonicalJSON(scale))
}

// traceDigests returns the per-core trace-content digests the canonical
// encoding folds in, or nil when every core runs a catalogue trace.
// Ingested traces carry their record-stream digest inside the name
// (workload.TraceDigest is a pure parse, no registry I/O), so the
// encoding stays deterministic on any process — including ones with no
// trace registry attached.
func traceDigests(traces []string) []string {
	var out []string
	for i, tr := range traces {
		if d, ok := workload.TraceDigest(tr); ok {
			if out == nil {
				out = make([]string, len(traces))
			}
			out[i] = d
		}
	}
	return out
}

// canonicalNames broadcasts a prefetcher slice to n cores with "none"
// mapped to "", returning nil when no core prefetches (so an absent and
// an all-disabled slice encode identically).
func canonicalNames(names []string, n int) []string {
	out := make([]string, n)
	copy(out, Broadcast(names, n))
	any := false
	for i, name := range out {
		if name == "none" {
			out[i] = ""
		}
		any = any || out[i] != ""
	}
	if !any {
		return nil
	}
	return out
}

// String returns a compact human-readable label for progress lines and
// panic messages; cache keys use ContentAddress instead.
func (j Job) String() string {
	s := fmt.Sprintf("%v|%v|%v", j.Traces, j.L1, j.L2)
	if !j.Overrides.IsZero() {
		s += fmt.Sprintf("|%+v", j.Overrides)
	}
	return s
}

// Validate reports whether the job can execute: every trace is in the
// catalogue, every prefetcher name constructs, and the core count keeps
// the default cache geometry a power of two. Entry points MUST call it on
// untrusted input — execute treats an invalid job as programmer error and
// panics.
func (j Job) Validate() error {
	n := len(j.Traces)
	if n == 0 {
		return fmt.Errorf("engine: job has no traces")
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("engine: core count must be a power of two, got %d", n)
	}
	for _, tr := range j.Traces {
		if !workload.Exists(tr) {
			return fmt.Errorf("engine: unknown trace %q", tr)
		}
	}
	// A prefetcher slice must be empty (no prefetching), one name
	// (broadcast), or exactly one name per core: Broadcast would silently
	// zero-pad e.g. 3 names onto 4 cores, running a system the caller
	// never asked for.
	for _, level := range []struct {
		label string
		names []string
	}{{"l1", j.L1}, {"l2", j.L2}} {
		if len(level.names) > 1 && len(level.names) != n {
			return fmt.Errorf("engine: %d %s prefetcher names for %d cores (want 1 or %d)",
				len(level.names), level.label, n, n)
		}
		for _, name := range level.names {
			if name == "" || name == "none" {
				continue
			}
			if _, err := prefetchers.New(name); err != nil {
				return err
			}
		}
	}
	if j.Overrides.SliceShards > 1 && n != 1 {
		// Slicing parallelizes within one trace; multi-core jobs already
		// parallelize across cores, and slicing each core's trace would
		// multiply the simulated systems without a defined merge.
		return fmt.Errorf("engine: slice_shards = %d requires a single-core job, got %d cores",
			j.Overrides.SliceShards, n)
	}
	return j.Overrides.Validate()
}

// Baseline returns the job's no-prefetch counterpart: same traces and
// overrides, L1/L2 prefetching disabled. Its result is the denominator of
// every speedup the harness, CLIs and server report.
func (j Job) Baseline() Job {
	return Job{Traces: j.Traces, L1: []string{"none"}, Overrides: j.Overrides}
}

// Speedup returns res.MeanIPC()/base.MeanIPC(), or 0 when the baseline
// did not run.
func Speedup(res, base sim.Result) float64 {
	if base.MeanIPC() == 0 {
		return 0
	}
	return res.MeanIPC() / base.MeanIPC()
}

// Broadcast expands a 1-element name slice to n cores, leaving exact-length
// slices untouched and padding short ones with "".
func Broadcast(names []string, n int) []string {
	if len(names) == n {
		return names
	}
	out := make([]string, n)
	for i := range out {
		if len(names) == 1 {
			out[i] = names[0]
		} else if i < len(names) {
			out[i] = names[i]
		}
	}
	return out
}

// Progress reports sweep advancement after each completed job.
type Progress struct {
	// Done and Total count jobs within the current RunAll sweep.
	Done, Total int
	// Cached reports whether the job was served from the memo or store.
	Cached bool
	// Job is a human-readable label for the completed job (Job.String);
	// Address is its content address — the identity the memo and the
	// persisted store file it under.
	Job, Address string
	// Elapsed is the time since the sweep started; Remaining is the ETA
	// extrapolated from the mean per-job cost so far.
	Elapsed, Remaining time.Duration
}

// StderrProgress renders a one-line sweep status on stderr, suitable for
// Options.Progress in CLIs. The trailing spaces wipe leftovers from a
// longer previous line; the carriage return keeps it on one line until
// the sweep completes.
func StderrProgress(p Progress) {
	fmt.Fprintf(os.Stderr, "\rsweep %d/%d  elapsed %v  eta %v   ",
		p.Done, p.Total, p.Elapsed.Round(time.Second), p.Remaining.Round(time.Second))
	if p.Done == p.Total {
		fmt.Fprint(os.Stderr, "\n")
	}
}

// estimateRemaining extrapolates a sweep ETA from simulated completions
// only: cache hits finish in microseconds, and averaging them into the
// per-job cost would make a resumed sweep's ETA absurdly optimistic —
// near-zero while hits drain, then wildly jumping once real work starts.
// Until the first simulation completes there is no cost sample at all, so
// the ETA is reported as unknown (zero). Assuming every remaining job
// simulates overestimates instead, and shrinks as hits drain; the result
// is clamped so a reported ETA is never negative.
func estimateRemaining(elapsed time.Duration, simulated, done, total int) time.Duration {
	if simulated <= 0 || done >= total {
		return 0
	}
	remaining := time.Duration(float64(elapsed) / float64(simulated) * float64(total-done))
	if remaining < 0 {
		return 0
	}
	return remaining
}

// Counters tallies where results came from.
type Counters struct {
	// MemoHits were served from the in-process memo.
	MemoHits uint64
	// StoreHits were loaded from the persisted store.
	StoreHits uint64
	// Simulated were computed by running the simulator.
	Simulated uint64
}

// Options configures an Engine. The zero value is usable: Standard scale,
// no persistence, GOMAXPROCS workers.
type Options struct {
	// Scale applies to every job; a zero TraceLen selects Standard.
	Scale Scale
	// Store persists results across processes (nil = in-memory only).
	Store *Store
	// Workers bounds concurrent simulations and sweep shards
	// (0 = GOMAXPROCS).
	Workers int
	// Seed drives per-shard deterministic scheduling in RunAll.
	Seed uint64
	// Progress, when set, observes every RunAll job completion. Calls are
	// serialized engine-wide; Done/Total describe the sweep that
	// completed the job, so concurrent RunAll calls interleave their
	// counts. StderrProgress is a ready-made renderer for CLIs.
	Progress func(Progress)
	// SliceWorkers bounds the goroutines one sliced job (Overrides.
	// SliceShards > 1) fans out to (0 = GOMAXPROCS). It only throttles
	// execution — a sliced job's result is identical at every setting.
	SliceWorkers int
	// Phases, when set, observes per-phase durations (queue_wait,
	// materialize, simulate, slice, merge, store_commit, shard) into a
	// phase-labeled latency histogram. Observability-only: results and
	// content addresses are identical with or without it.
	Phases *obs.HistogramVec
	// TelemetryInterval arms interval-sampled simulation telemetry: every
	// executed job additionally produces a timeline document sampled
	// every N measured instructions (0 = disabled). Derived data only —
	// content addresses, result bytes and cache behaviour are identical
	// at every setting; sim.DefaultTelemetryInterval is the service
	// default.
	TelemetryInterval uint64
}

// Engine executes and memoizes simulations. It is safe for concurrent use.
type Engine struct {
	scale             Scale
	store             *Store
	seed              uint64
	workers           int
	sliceWorkers      int
	progress          func(Progress)
	phases            *obs.HistogramVec
	telemetryInterval uint64

	limit chan struct{}

	// progMu serializes progress callbacks across concurrent sweeps.
	progMu sync.Mutex

	mu       sync.Mutex
	memo     map[string]sim.Result
	inflight map[string]chan struct{}
	counters Counters
	gcTotals GCTotals
	// telemetryMemo caches encoded timeline documents by content address
	// (the store-less engines of cluster workers serve uploads from it);
	// telemetryMemoBytes tracks their footprint for TelemetryStats.
	telemetryMemo      map[string][]byte
	telemetryMemoBytes int64
}

// New builds an engine.
func New(opts Options) *Engine {
	if opts.Scale.TraceLen == 0 {
		opts.Scale = Standard
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		scale:             opts.Scale,
		store:             opts.Store,
		seed:              opts.Seed,
		workers:           opts.Workers,
		sliceWorkers:      opts.SliceWorkers,
		progress:          opts.Progress,
		phases:            opts.Phases,
		telemetryInterval: opts.TelemetryInterval,
		limit:             make(chan struct{}, opts.Workers),
		memo:              make(map[string]sim.Result),
		inflight:          make(map[string]chan struct{}),
	}
}

// Scale returns the engine's scale.
func (e *Engine) Scale() Scale { return e.scale }

// Store returns the engine's persisted store (nil when in-memory only).
func (e *Engine) Store() *Store { return e.store }

// Counters returns a snapshot of the cache counters.
func (e *Engine) Counters() Counters {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.counters
}

// Stats aggregates the engine's result-cache counters with the
// process-wide materialized-trace cache (workload.Materialize): how many
// trace slabs are resident, how often jobs were served one, and their
// memory footprint. The trace cache is process-global — concurrent
// engines share it — so these numbers describe the process, not one
// engine instance.
type Stats struct {
	Counters            Counters `json:"counters"`
	TraceCacheEntries   int      `json:"trace_cache_entries"`
	TraceCacheHits      uint64   `json:"trace_cache_hits"`
	TraceCacheMisses    uint64   `json:"trace_cache_misses"`
	TraceCacheBytes     int64    `json:"trace_cache_bytes"`
	TraceCacheMapped    int64    `json:"trace_cache_mapped_bytes"`
	TraceCacheEvictions uint64   `json:"trace_cache_evictions"`
	GC                  GCTotals `json:"gc"`
}

// Stats returns a snapshot of the engine and trace-cache counters.
func (e *Engine) Stats() Stats {
	tc := workload.TraceCacheStats()
	return Stats{
		Counters:            e.Counters(),
		TraceCacheEntries:   tc.Entries,
		TraceCacheHits:      tc.Hits,
		TraceCacheMisses:    tc.Misses,
		TraceCacheBytes:     tc.Bytes,
		TraceCacheMapped:    tc.MappedBytes,
		TraceCacheEvictions: tc.Evictions,
		GC:                  e.GCTotals(),
	}
}

// Lookup returns the already-computed result for a job — from the
// in-process memo or the persisted store — without ever simulating.
// It is the read-only probe the analytics layer aggregates over: an
// analytics request must reflect completed work, never trigger new work.
// Counters are untouched; Lookup is monitoring-neutral.
func (e *Engine) Lookup(j Job) (sim.Result, bool) {
	key := j.CanonicalJSON(e.scale)
	e.mu.Lock()
	r, ok := e.memo[key]
	e.mu.Unlock()
	if ok {
		return r, true
	}
	if e.store != nil {
		if r, ok := e.store.Get(key); ok {
			return r, true
		}
	}
	return sim.Result{}, false
}

// Has reports whether a job's result is already available, from the memo
// or a store stat alone — cheaper than Lookup when only existence
// matters (ETag computation probes every grid cell on every analytics
// request). Like Store.Has it can answer true for a corrupt store entry
// until a read heals it; Lookup remains authoritative.
func (e *Engine) Has(j Job) bool {
	key := j.CanonicalJSON(e.scale)
	e.mu.Lock()
	_, ok := e.memo[key]
	e.mu.Unlock()
	if ok {
		return true
	}
	return e.store != nil && e.store.Has(key)
}

// Run executes one job, deduplicated three ways: concurrent identical jobs
// coalesce onto one execution, repeated jobs hit the in-process memo, and
// repeated jobs across processes hit the persisted store. It is for
// catalogue-trace jobs, whose materialization cannot fail once validated;
// jobs that may reference registry traces (deletable at runtime) should
// use RunContext and handle the error.
func (e *Engine) Run(j Job) sim.Result {
	res, _, err := e.run(context.Background(), j)
	if err != nil { // background ctx: only a trace-supply failure
		panic(fmt.Sprintf("engine: running %s: %v", j, err))
	}
	return res
}

// RunContext is Run with cooperative cancellation and an error return:
// when ctx is done before the simulation starts (while queued on the
// worker semaphore or waiting on an identical in-flight job), it returns
// ctx's error without simulating — a simulation that already started runs
// to completion, cancellation is job-granular, never mid-simulation. It
// also surfaces trace-materialization failures (a registry trace deleted
// or damaged between validation and execution) instead of panicking.
func (e *Engine) RunContext(ctx context.Context, j Job) (sim.Result, error) {
	res, _, err := e.run(ctx, j)
	return res, err
}

func (e *Engine) run(ctx context.Context, j Job) (res sim.Result, cached bool, err error) {
	// The canonical encoding keys all three layers: the memo and
	// single-flight maps use it verbatim, the store hashes it into the
	// job's content address and persists it inside the record.
	key := j.CanonicalJSON(e.scale)
	for {
		e.mu.Lock()
		if r, ok := e.memo[key]; ok {
			e.counters.MemoHits++
			e.mu.Unlock()
			return r, true, nil
		}
		ch, busy := e.inflight[key]
		if !busy {
			ch = make(chan struct{})
			e.inflight[key] = ch
			e.mu.Unlock()
			break
		}
		e.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return sim.Result{}, false, ctx.Err()
		}
	}

	// If execute panics (programmer error — inputs are validated before
	// jobs are built), still wake single-flight waiters and drop the
	// inflight claim so the engine isn't poisoned for the key; the panic
	// itself propagates to the caller.
	completed := false
	defer func() {
		e.mu.Lock()
		if completed {
			e.memo[key] = res
			if cached {
				e.counters.StoreHits++
			} else {
				e.counters.Simulated++
			}
		}
		ch := e.inflight[key]
		delete(e.inflight, key)
		e.mu.Unlock()
		close(ch)
	}()

	if e.store != nil {
		if r, ok := e.store.Get(key); ok {
			res, cached = r, true
		}
	}
	if !cached {
		// The semaphore wait is the last cancellation point: once a
		// simulation starts it runs to completion, so a cancelled sweep
		// stops at the next job boundary rather than corrupting state
		// mid-step.
		_, _, queued := e.phase(ctx, "queue_wait")
		select {
		case e.limit <- struct{}{}:
			queued()
		case <-ctx.Done():
			queued()
			return sim.Result{}, false, ctx.Err()
		}
		defer func() { <-e.limit }()
		if err := ctx.Err(); err != nil {
			return sim.Result{}, false, err
		}
		var tel *sim.Telemetry
		res, tel, err = e.execute(ctx, j)
		if err != nil {
			// Not memoized: the failure may be transient state (a trace
			// deleted mid-flight), and completed stays false so waiters
			// retry rather than inheriting a zero result.
			return sim.Result{}, false, err
		}
		if tel != nil {
			// Persisted before the result commit: by the time a job is
			// observable as complete its timeline already exists, so the
			// serving layer's answer degrades 409 (computing) → 200, never
			// through a complete-but-timeline-less window.
			e.saveTelemetry(key, tel)
		}
	}
	if !cached && e.store != nil {
		_, _, committed := e.phase(ctx, "store_commit")
		// Persistence is best-effort: a read-only cache dir must not
		// fail the sweep.
		e.store.Put(key, res) //nolint:errcheck
		committed()
	}
	completed = true
	return res, cached, nil
}

// config returns the default system config at this engine's scale.
// Telemetry arming rides here — an engine option, never a job override,
// so it stays outside every canonical encoding.
func (e *Engine) config(cores int) sim.Config {
	cfg := sim.DefaultConfig(cores)
	cfg.WarmupInstructions = e.scale.Warmup
	cfg.SimInstructions = e.scale.Sim
	cfg.TelemetryInterval = e.telemetryInterval
	return cfg
}

// phase opens an engine-phase span ("engine."+name) under ctx and
// returns it plus a completion func that ends the span and feeds the
// phase histogram. Instrumentation stops at this granularity — phases
// wrap whole simulations, materializations and merges, never the
// per-record step loop, so the hot path stays allocation-free.
func (e *Engine) phase(ctx context.Context, name string, attrs ...obs.Attr) (context.Context, *obs.Span, func()) {
	start := time.Now()
	ctx, sp := obs.Start(ctx, "engine."+name, attrs...)
	return ctx, sp, func() {
		sp.End()
		e.phases.Observe(name, time.Since(start).Seconds())
	}
}

// execute runs one job and returns its result plus the collected
// telemetry timeline (nil when telemetry is disabled).
func (e *Engine) execute(ctx context.Context, j Job) (sim.Result, *sim.Telemetry, error) {
	if k := j.Overrides.SliceShards; k > 1 && len(j.Traces) == 1 {
		return e.executeSliced(ctx, j, k)
	}
	cores := len(j.Traces)
	cfg := j.Overrides.Apply(e.config(cores))
	l1s := Broadcast(j.L1, cores)
	l2s := Broadcast(j.L2, cores)

	specs := make([]sim.CoreSpec, cores)
	for i, name := range j.Traces {
		// The process-wide materialized-trace cache hands every job of a
		// sweep (and every concurrent shard, single-flight) one shared
		// immutable record slab per {trace, length} instead of
		// regenerating it per job. Materialization can fail at runtime for
		// registry-backed traces (deleted or damaged after validation), so
		// it flows through the error return rather than panicking —
		// catalogue generation remains infallible for validated jobs.
		recs, err := e.materialize(ctx, name, j)
		if err != nil {
			return sim.Result{}, nil, err
		}
		spec := sim.CoreSpec{
			Trace:        trace.NewLooping(trace.NewRecordsReader(recs)),
			L1Prefetcher: prefetchers.MustNew(l1s[i]),
		}
		if l2s[i] != "" && l2s[i] != "none" {
			spec.L2Prefetcher = prefetchers.MustNew(l2s[i])
		}
		specs[i] = spec
	}
	sys, err := sim.New(cfg, specs)
	if err != nil {
		panic(fmt.Sprintf("engine: building system for %s: %v", j, err))
	}
	_, _, simulated := e.phase(ctx, "simulate", obs.Int("cores", cores))
	res := sys.Run()
	simulated()
	return res, sys.Telemetry(), nil
}

// materialize wraps workload.MaterializeRecordsCached in a
// trace-attributed phase span recording whether the slab was a cache
// hit or a fresh generation.
func (e *Engine) materialize(ctx context.Context, name string, j Job) (trace.Records, error) {
	_, sp, done := e.phase(ctx, "materialize", obs.String("trace", name))
	recs, hit, err := workload.MaterializeRecordsCached(name, e.scale.TraceLen)
	if hit {
		sp.SetAttr("cache", "hit")
	} else {
		sp.SetAttr("cache", "miss")
	}
	done()
	if err != nil {
		return nil, fmt.Errorf("engine: materializing trace for %s: %w", j, err)
	}
	return recs, nil
}

// RunAll executes a sweep: jobs are split round-robin into one shard per
// worker, each shard walks its jobs in an order drawn from its own
// deterministic RNG (seeded from Options.Seed and the shard index, so
// identical sweeps schedule identically while expensive jobs spread across
// shards), and every completion feeds the Progress callback with an ETA.
// Results are returned in input order. Like Run, it is for catalogue-trace
// jobs and panics on a trace-supply failure; registry-referencing sweeps
// go through RunAllContext.
func (e *Engine) RunAll(jobs []Job) []sim.Result {
	results, err := e.RunAllContext(context.Background(), jobs, nil)
	if err != nil { // background ctx: only a trace-supply failure
		panic(fmt.Sprintf("engine: running sweep: %v", err))
	}
	return results
}

// RunAllContext is RunAll with cooperative cancellation and an optional
// per-call progress observer (nil falls back to Options.Progress). When
// ctx is cancelled, every shard stops at its next job boundary — a
// simulation already in flight runs to completion, everything not yet
// started is skipped — and ctx's error is returned alongside the partial
// results: completed indices hold real results, skipped ones are zero.
// Partial results still land in the memo and store, so a resubmitted sweep
// resumes instead of recomputing. A job whose trace supply fails (a
// registry trace deleted mid-sweep) stops its shard and the first such
// error is returned the same way — never swallowed into silent zero rows.
func (e *Engine) RunAllContext(ctx context.Context, jobs []Job, progress func(Progress)) ([]sim.Result, error) {
	results := make([]sim.Result, len(jobs))
	if len(jobs) == 0 {
		return results, ctx.Err()
	}
	if progress == nil {
		progress = e.progress
	}
	shards := e.workers
	if shards > len(jobs) {
		shards = len(jobs)
	}
	order := make([][]int, shards)
	for i := range jobs {
		order[i%shards] = append(order[i%shards], i)
	}

	start := time.Now()
	var (
		done, simulated int
		wg              sync.WaitGroup
	)
	// The job label and content address are computed by the caller,
	// outside progMu — hashing under a mutex shared by every shard would
	// serialize the cache-hit fast path.
	report := func(label, addr string, cached bool) {
		e.progMu.Lock()
		defer e.progMu.Unlock()
		done++
		if !cached {
			simulated++
		}
		elapsed := time.Since(start)
		progress(Progress{
			Done: done, Total: len(jobs), Cached: cached,
			Job: label, Address: addr,
			Elapsed:   elapsed,
			Remaining: estimateRemaining(elapsed, simulated, done, len(jobs)),
		})
	}

	// A panic inside a bare goroutine would kill the whole process (and
	// gazeserve with it) — capture the first one and re-raise it on the
	// caller's goroutine, where net/http's handler recover can see it.
	// Non-cancellation job errors (trace supply) are captured the same
	// way and returned.
	var (
		panicOnce sync.Once
		panicked  any
		errOnce   sync.Once
		jobErr    error
	)
	for s := range order {
		wg.Add(1)
		go func(shard int, idx []int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			sctx, _, shardDone := e.phase(ctx, "shard", obs.Int("shard", shard), obs.Int("jobs", len(idx)))
			defer shardDone()
			src := rng.New(e.seed ^ (uint64(shard+1) * 0x9e3779b97f4a7c15))
			for _, k := range src.Perm(len(idx)) {
				if ctx.Err() != nil {
					return
				}
				i := idx[k]
				res, cached, err := e.run(sctx, jobs[i])
				if err != nil {
					if ctx.Err() == nil {
						errOnce.Do(func() { jobErr = err })
					}
					return
				}
				results[i] = res
				if progress != nil {
					report(jobs[i].String(), jobs[i].ContentAddress(e.scale), cached)
				}
			}
		}(s, order[s])
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, jobErr
}
