package prefetch

// Queue is the prefetch queue (PQ) between a prefetcher and the memory
// system. Requests enter when the prefetcher issues them and drain at a
// bounded rate; when the queue is full, new requests are dropped — the
// saturation behaviour behind the paper's vBerti redundant-prefetch
// analysis (§IV-B3): junk requests occupy slots and delay useful ones.
type Queue struct {
	cap       int
	drainRate float64 // requests per cycle
	items     []queued
	nextSlot  float64 // earliest cycle the next drained request may issue

	// Stats
	Enqueued  uint64
	DropsFull uint64
	DropsDup  uint64
}

type queued struct {
	req     Request
	readyAt float64
}

// NewQueue builds a queue with the given capacity and drain rate
// (requests per cycle). Both must be positive.
func NewQueue(capacity int, drainRate float64) *Queue {
	if capacity <= 0 || drainRate <= 0 {
		panic("prefetch: queue capacity and drain rate must be positive")
	}
	return &Queue{cap: capacity, drainRate: drainRate}
}

// Push enqueues a request at cycle now. Duplicate line addresses already
// queued are merged (keeping the more aggressive level); a full queue
// drops the request.
func (q *Queue) Push(req Request, now float64) {
	for i := range q.items {
		if q.items[i].req.VLine == req.VLine {
			if req.Level < q.items[i].req.Level {
				q.items[i].req.Level = req.Level
			}
			q.DropsDup++
			return
		}
	}
	if len(q.items) >= q.cap {
		q.DropsFull++
		return
	}
	ready := now
	if q.nextSlot > ready {
		ready = q.nextSlot
	}
	q.nextSlot = ready + 1/q.drainRate
	q.items = append(q.items, queued{req: req, readyAt: ready})
	q.Enqueued++
}

// PopReady removes and returns the oldest request whose issue slot has
// arrived by cycle now.
func (q *Queue) PopReady(now float64) (Request, float64, bool) {
	if len(q.items) == 0 || q.items[0].readyAt > now {
		return Request{}, 0, false
	}
	it := q.items[0]
	copy(q.items, q.items[1:])
	q.items = q.items[:len(q.items)-1]
	return it.req, it.readyAt, true
}

// Len returns the number of queued requests.
func (q *Queue) Len() int { return len(q.items) }

// Flush discards all queued requests (end of simulation).
func (q *Queue) Flush() { q.items = q.items[:0] }
