package bench

import (
	"context"
	"testing"

	"repro/internal/obs"
)

// TestStepZeroAllocTraced re-runs the steady-state zero-alloc pin with
// the observability layer armed the way engine slice execution arms it:
// a live tracer, an open span and a timings collector in context.
// Instrumentation stops at slice and phase boundaries, so arming it must
// add nothing to the per-step path — on heap slices and on mapped slabs.
func TestStepZeroAllocTraced(t *testing.T) {
	tracer := obs.NewTracer(obs.TracerOptions{})
	ctx := obs.WithTracer(context.Background(), tracer)
	ctx = obs.WithTimings(ctx, obs.NewTimings())
	ctx, span := obs.Start(ctx, "bench.steady_state")
	defer span.End()
	_ = ctx

	heap := warmSystem(t, nextLine{})
	if n := testing.AllocsPerRun(200, func() { heap.Advance(50) }); n != 0 {
		t.Errorf("heap: traced steady-state step allocates %.1f times per 50 steps, want 0", n)
	}
	mapped := warmSystemOn(t, mappedSlab(t, 50_000), nextLine{})
	if n := testing.AllocsPerRun(200, func() { mapped.Advance(50) }); n != 0 {
		t.Errorf("mapped: traced steady-state step allocates %.1f times per 50 steps, want 0", n)
	}
}

// TestObsDisabledZeroAlloc pins the zero-cost-when-disabled contract:
// on a context with no tracer and no timings, the whole span API —
// Start, SetAttr, End — is a nil no-op that never touches the heap.
func TestObsDisabledZeroAlloc(t *testing.T) {
	bg := context.Background()
	if n := testing.AllocsPerRun(500, func() {
		c, s := obs.Start(bg, "noop")
		s.SetAttr("k", "v")
		s.End()
		_ = c
	}); n != 0 {
		t.Errorf("disabled span lifecycle allocates %.1f times per call, want 0", n)
	}
}
