// Package server exposes the experiment engine over HTTP — the gazeserve
// service. POST /simulate runs one job (plus its no-prefetch baseline) and
// returns the paper's §IV-A3 metrics; POST /sweep batches a whole
// trace × prefetcher grid through one shard-parallel engine pass. All
// handlers share a single engine, so concurrent and repeated requests
// coalesce onto the same memoized (and optionally disk-persisted)
// simulations.
package server

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/prefetchers"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traceset"
	"repro/internal/workload"
)

// Server serves the gazeserve HTTP API over one shared engine.
type Server struct {
	eng    *engine.Engine
	jobs   *jobs.Manager
	traces *traceset.Registry

	// cluster is the coordinator behind the /cluster worker API (nil =
	// routes answer 503).
	cluster *cluster.Coordinator

	// inflight tracks ingested traces referenced by running synchronous
	// requests, for DELETE /traces in-use protection.
	inflight traceUse

	// analytics caches assembled comparison matrices per result-set
	// content address, behind the /analytics ETags.
	analytics analyticsCache

	// admit rate-limits expensive compile paths per client (nil = no
	// admission control).
	admit *admission

	// gcAge is the default age floor for POST /admin/gc and periodic GC
	// (zero = only explicitly-aged requests collect).
	gcAge time.Duration

	// slice, when set, auto-slices big ingested-trace jobs at compile
	// time (SetSlicePolicy).
	slice *SlicePolicy

	// tracer records request spans and serves GET /debug/traces (nil =
	// tracing disabled; the route answers 503).
	tracer *obs.Tracer

	// metrics holds the latency-histogram bundle every request and
	// engine phase observes into. Always non-nil (New creates a default
	// bundle); share one bundle with the engine, jobs manager and
	// coordinator via SetMetrics so /metrics renders all families.
	metrics *obs.Metrics

	// reqLog, when set, logs one line per completed request with the
	// trace ID injected from the request's span context.
	reqLog *slog.Logger
}

// New builds a server on the given engine.
func New(e *engine.Engine) *Server { return &Server{eng: e, metrics: obs.NewMetrics()} }

// AttachTracer enables span collection: every request gets a root span
// (joining an inbound traceparent when present), and GET /debug/traces
// serves the tracer's ring buffer. Without it the route answers 503 and
// request handling takes the zero-cost no-span path.
func (s *Server) AttachTracer(t *obs.Tracer) *Server {
	s.tracer = t
	return s
}

// SetMetrics replaces the server's histogram bundle — pass the same
// bundle wired into the engine (Options.Phases), jobs manager
// (Options.QueueWait) and coordinator (Options.LeaseHold) so one
// /metrics scrape renders every family.
func (s *Server) SetMetrics(m *obs.Metrics) *Server {
	if m != nil {
		s.metrics = m
	}
	return s
}

// SetRequestLogger enables one structured log line per completed
// request. The handler logs with the request's span context, so lines
// carry trace_id when tracing is enabled.
func (s *Server) SetRequestLogger(l *slog.Logger) *Server {
	if l != nil {
		s.reqLog = slog.New(obs.ContextHandler(l.Handler()))
	}
	return s
}

// SetAdmission enables per-client token-bucket admission control on the
// expensive compile paths (POST /simulate, /sweep and /jobs): each client
// may start at most rps requests per second sustained, with bursts up to
// burst. Over-limit requests answer 429 with a Retry-After header. Cheap
// read paths (/stats, /metrics, /analytics, GETs) are never limited —
// they are exactly the endpoints monitoring and CDNs hammer.
func (s *Server) SetAdmission(rps float64, burst int) *Server {
	s.admit = newAdmission(rps, burst)
	return s
}

// SetGCAge sets the default age floor for result-store GC: POST /admin/gc
// without an explicit max_age, and the periodic collector in gazeserve,
// keep entries younger than age.
func (s *Server) SetGCAge(age time.Duration) *Server {
	s.gcAge = age
	return s
}

// AttachJobs enables the asynchronous jobs API on this server. The
// manager should be built with Compiler(e) for the same engine so
// background jobs share the synchronous handlers' validation, caps and
// memo. Without a manager the /jobs routes answer 503.
func (s *Server) AttachJobs(m *jobs.Manager) *Server {
	s.jobs = m
	return s
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET "+cluster.PathInfo, s.handleClusterInfo)
	mux.HandleFunc("POST "+cluster.PathWorkers, s.handleClusterRegister)
	mux.HandleFunc("DELETE "+cluster.PathWorkers+"/{id}", s.handleClusterDeregister)
	mux.HandleFunc("POST "+cluster.PathWorkers+"/{id}/heartbeat", s.handleClusterHeartbeat)
	mux.HandleFunc("POST "+cluster.PathLease, s.handleClusterLease)
	mux.HandleFunc("PUT "+cluster.PathResults+"{addr}", s.handleClusterResult)
	mux.HandleFunc("PUT "+cluster.PathTelemetry+"{addr}", s.handleClusterTelemetry)
	mux.HandleFunc("POST "+cluster.PathFailures+"{addr}", s.handleClusterFail)
	mux.HandleFunc("GET /traces", s.handleTraces)
	mux.HandleFunc("POST /traces", s.handleTraceUpload)
	mux.HandleFunc("GET /traces/{addr}", s.handleTraceManifest)
	mux.HandleFunc("GET /traces/{addr}/data", s.handleTraceData)
	mux.HandleFunc("DELETE /traces/{addr}", s.handleTraceDelete)
	mux.HandleFunc("GET /prefetchers", s.handlePrefetchers)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /results/{addr}/timeline", s.handleResultTimeline)
	mux.HandleFunc("GET /analytics/matrix", s.handleAnalyticsMatrix)
	mux.HandleFunc("GET /analytics/speedup", s.handleAnalyticsSpeedup)
	mux.HandleFunc("GET /analytics/timeline", s.handleAnalyticsTimeline)
	mux.HandleFunc("POST /admin/gc", s.handleAdminGC)
	mux.HandleFunc("POST /simulate", s.admitted(s.handleSimulate))
	mux.HandleFunc("POST /sweep", s.admitted(s.handleSweep))
	mux.HandleFunc("POST /jobs", s.admitted(s.handleJobSubmit))
	mux.HandleFunc("GET /jobs", s.handleJobList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJobGet)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /debug/traces", s.handleDebugTraces)
	return s.instrument(mux)
}

// SimulateRequest selects one simulation. Either Trace (replicated on
// Cores cores) or Traces (one per core) must be set. Overrides, when
// present, perturbs the default Table II system configuration; out-of-
// range knobs are rejected with a 400.
type SimulateRequest struct {
	Trace      string            `json:"trace,omitempty"`
	Traces     []string          `json:"traces,omitempty"`
	Prefetcher string            `json:"prefetcher"`
	L2         string            `json:"l2,omitempty"`
	Cores      int               `json:"cores,omitempty"`
	Overrides  *engine.Overrides `json:"overrides,omitempty"`
}

// SimulateResponse carries the metrics the paper's tables report.
// Address is the underlying engine job's content address — the identity
// the memo and persisted store file the result under — so clients can
// correlate synchronous rows, background-job rows and store entries.
type SimulateResponse struct {
	Traces           []string          `json:"traces"`
	Prefetcher       string            `json:"prefetcher"`
	L2               string            `json:"l2,omitempty"`
	Cores            int               `json:"cores"`
	Overrides        *engine.Overrides `json:"overrides,omitempty"`
	Address          string            `json:"address,omitempty"`
	IPC              float64           `json:"ipc"`
	Speedup          float64           `json:"speedup"`
	Accuracy         float64           `json:"accuracy"`
	Coverage         float64           `json:"coverage"`
	LateFraction     float64           `json:"late_fraction"`
	IssuedPrefetches uint64            `json:"issued_prefetches"`
	L1MPKI           float64           `json:"l1_mpki"`
	LLCMPKI          float64           `json:"llc_mpki"`
}

// SweepRequest describes a trace × prefetcher grid. Traces are given
// explicitly or drawn from a suite ("spec06", "spec17", "ligra",
// "parsec", "cloud", ...); each pair runs single-core. Overrides, when
// present, applies to every job of the sweep; Axis additionally walks one
// configuration knob over a value list — a Fig 16-style sensitivity curve
// ({"param": "dram_mtps", "values": [800, 1600, 3200]}) in one request.
type SweepRequest struct {
	Suite       string            `json:"suite,omitempty"`
	Traces      []string          `json:"traces,omitempty"`
	Prefetchers []string          `json:"prefetchers"`
	Overrides   *engine.Overrides `json:"overrides,omitempty"`
	Axis        *SweepAxis        `json:"axis,omitempty"`
}

// SweepAxis names one Overrides knob (its JSON field name: "dram_mtps",
// "llc_mb_per_core", "l2_kb", "pq_capacity", "pq_drain_rate") and the
// values to sweep it over. Unknown params, fractional values for integer
// knobs, and out-of-range values are rejected with a 400.
type SweepAxis struct {
	Param  string    `json:"param"`
	Values []float64 `json:"values"`
}

// SweepResponse returns one row per (trace, prefetcher[, axis value])
// combination plus aggregates: without an Axis, GeomeanSpeedup maps each
// prefetcher to its geometric-mean speedup over the swept traces (the
// number the paper's Fig 6 bars plot); with an Axis, Sensitivity holds
// one point per (value, prefetcher) — the curves of Fig 16.
type SweepResponse struct {
	Rows           []SimulateResponse `json:"rows"`
	GeomeanSpeedup map[string]float64 `json:"geomean_speedup,omitempty"`
	Sensitivity    []SensitivityPoint `json:"sensitivity,omitempty"`
}

// SensitivityPoint is one point of a sensitivity curve: the swept knob at
// one value, one prefetcher, and the geometric-mean speedup over the
// swept traces.
type SensitivityPoint struct {
	Param          string  `json:"param"`
	Value          float64 `json:"value"`
	Prefetcher     string  `json:"prefetcher"`
	GeomeanSpeedup float64 `json:"geomean_speedup"`
}

// StatsResponse reports engine cache effectiveness. StoreEntries is null
// when no persisted store is configured and 0 when the store is empty —
// distinguishable states for monitoring clients. The trace_cache_*
// fields describe the process-wide materialized-trace cache: how many
// immutable record slabs are resident, how often jobs were served one
// versus generating it, and the slabs' memory footprint. Jobs summarizes
// the background-jobs subsystem (null when no jobs manager is attached,
// mirroring store_entries): current per-state counts plus the number of
// queued jobs recovered from the journal at startup.
// IngestedTraces mirrors StoreEntries' null-vs-0 discipline for the trace
// registry: null when none is attached, the entry count otherwise.
// StatsSchemaVersion stamps the document's field set: /stats aggregates
// counters from several subsystems, and monitoring clients need one
// number — pinned by a golden test — that changes whenever a field is
// added, renamed or re-typed, instead of divining the shape from probes.
// StoreGC reports cumulative result-store garbage collection (null
// without a persisted store, like store_entries).
type StatsResponse struct {
	StatsSchemaVersion  int              `json:"stats_schema_version"`
	Scale               engine.Scale     `json:"scale"`
	Counters            engine.Counters  `json:"counters"`
	StoreDir            string           `json:"store_dir,omitempty"`
	StoreEntries        *int             `json:"store_entries"`
	StoreSchemaVersion  int              `json:"store_schema_version"`
	TraceCacheEntries   int              `json:"trace_cache_entries"`
	TraceCacheHits      uint64           `json:"trace_cache_hits"`
	TraceCacheMisses    uint64           `json:"trace_cache_misses"`
	TraceCacheBytes     int64            `json:"trace_cache_bytes"`
	TraceCacheMapped    int64            `json:"trace_cache_mapped_bytes"`
	TraceCacheEvictions uint64           `json:"trace_cache_evictions"`
	TraceRegistryDir    string           `json:"trace_registry_dir,omitempty"`
	IngestedTraces      *int             `json:"ingested_traces"`
	Jobs                *jobs.Counters   `json:"jobs"`
	StoreGC             *engine.GCTotals `json:"store_gc"`
	// Cluster summarizes the coordinator (null when this process is not
	// one, following the store_entries/jobs null-vs-0 discipline).
	Cluster *cluster.Counters `json:"cluster"`
	// Obs summarizes the tracing subsystem — spans started/finished/
	// dropped, ring occupancy and NDJSON log bytes (null when no tracer
	// is attached, same null-vs-0 discipline as the blocks above).
	Obs *obs.TracerStats `json:"obs"`
	// Telemetry summarizes the interval-timeline subsystem: the armed
	// sampling interval (0 = disabled) plus how many timeline documents
	// exist and their byte footprint. Always present — the engine always
	// has a telemetry configuration, even when it is "off".
	Telemetry engine.TelemetryStats `json:"telemetry"`
}

// StatsSchemaVersion stamps the /stats document shape. Bump it whenever
// StatsResponse gains, loses or re-types a field; the golden test pins
// the exact field set against the current version so the two cannot
// drift silently.
//
// v1: first stamped schema (PR 6) — everything before it was unversioned.
// v2: added "cluster" (coordinator lease/worker counters, PR 7).
// v3: added "trace_cache_mapped_bytes" (mmap-backed slab accounting, PR 8).
// v4: added "obs" (tracer span/ring/log counters, PR 9).
// v5: added "telemetry" (interval-timeline documents and interval, PR 10).
const StatsSchemaVersion = 5

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Name  string `json:"name"`
		Suite string `json:"suite"`
	}
	out := []entry{} // encode as [], never null
	suite := r.URL.Query().Get("suite")
	for _, info := range workload.Catalogue() {
		if suite == "" || info.Suite == suite {
			out = append(out, entry{Name: info.Name, Suite: info.Suite})
		}
	}
	// Ingested traces list beside the catalogue under the "ingested"
	// suite, named exactly as /simulate and /sweep accept them.
	if s.traces != nil && (suite == "" || suite == ingestedSuite) {
		for _, m := range s.traces.List() {
			out = append(out, entry{Name: m.Name(), Suite: ingestedSuite})
		}
	}
	// Every catalogue suite is non-empty, so zero matches under a filter
	// means the suite name is wrong — flag it like POST /sweep does. The
	// ingested suite is the exception: it exists whenever a registry is
	// attached, and an empty registry is a valid (empty) listing.
	if suite != "" && len(out) == 0 && !(suite == ingestedSuite && s.traces != nil) {
		httpError(w, http.StatusBadRequest, "unknown suite %q", suite)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handlePrefetchers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, prefetchers.EvaluatedNames())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	stats := s.eng.Stats()
	resp := StatsResponse{
		StatsSchemaVersion:  StatsSchemaVersion,
		Scale:               s.eng.Scale(),
		Counters:            stats.Counters,
		StoreSchemaVersion:  engine.StoreSchemaVersion,
		TraceCacheEntries:   stats.TraceCacheEntries,
		TraceCacheHits:      stats.TraceCacheHits,
		TraceCacheMisses:    stats.TraceCacheMisses,
		TraceCacheBytes:     stats.TraceCacheBytes,
		TraceCacheMapped:    stats.TraceCacheMapped,
		TraceCacheEvictions: stats.TraceCacheEvictions,
		Telemetry:           s.eng.TelemetryStats(),
	}
	if st := s.eng.Store(); st != nil {
		resp.StoreDir = st.Dir()
		n := st.Len()
		resp.StoreEntries = &n
		gc := stats.GC
		resp.StoreGC = &gc
	}
	if s.traces != nil {
		resp.TraceRegistryDir = s.traces.Dir()
		n := s.traces.Len()
		resp.IngestedTraces = &n
	}
	if s.jobs != nil {
		c := s.jobs.Counters()
		resp.Jobs = &c
	}
	if s.cluster != nil {
		c := s.cluster.Counters()
		resp.Cluster = &c
	}
	if s.tracer != nil {
		o := s.tracer.Stats()
		resp.Obs = &o
	}
	writeJSON(w, http.StatusOK, resp)
}

// maxBodyBytes bounds request bodies so an oversized JSON document is
// rejected before it is ever held in memory.
const maxBodyBytes = 1 << 20

// decodeStrict decodes a bounded request body, rejecting unknown fields:
// a typo'd overrides knob ("llc_mb" for "llc_mb_per_core") must come back
// as a 400, not silently simulate the default configuration — eliminating
// that class of silent misconfiguration is this API's whole point.
func decodeStrict(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := decodeStrict(w, r, &req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	plan, err := compileSimulate(s.eng.Scale(), req, s.slice)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// One batched engine pass under the request's context: the baseline
	// and the target run in parallel, both memoize for later requests, and
	// a client that disconnects mid-run aborts the work at the next shard
	// boundary instead of wasting it. Ingested traces are held referenced
	// for the duration so a concurrent DELETE /traces can refuse.
	release := s.inflight.acquire(plan.jobs)
	defer release()
	if !s.recheckIngested(w, plan.jobs) {
		return
	}
	results, err := s.eng.RunAllContext(r.Context(), plan.jobs, nil)
	if err != nil {
		if r.Context().Err() != nil {
			return // client gone; nobody to answer
		}
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, plan.assemble(results))
}

// requestPlan is a compiled synchronous request: the engine jobs to run
// and the closure assembling the response document from their results.
// It is the same shape jobs.Plan carries, so the background-jobs Compiler
// is a thin wrapper over the identical validation and caps.
type requestPlan struct {
	jobs     []engine.Job
	assemble func(results []sim.Result) any
}

// compileSimulate validates a /simulate request and plans its two engine
// jobs (baseline + target). All errors are client errors. policy (may be
// nil) auto-slices big ingested-trace jobs before addressing; the
// baseline inherits the rewritten overrides, so it slices identically.
func compileSimulate(scale engine.Scale, req SimulateRequest, policy *SlicePolicy) (*requestPlan, error) {
	job, err := jobFor(req)
	if err != nil {
		return nil, err
	}
	policy.apply(scale, &job)
	// Per-knob override bounds don't compose into a work bound on their
	// own: 16 cores at maxed-out budgets would simulate for hours. Cap the
	// request's total work (baseline + target across all cores).
	if work := 2 * uint64(len(job.Traces)) * effectiveInstructions(scale, job.Overrides); work > maxSimulateInstructions {
		return nil, fmt.Errorf(
			"request simulates %d instructions, exceeding the limit of %d (lower cores or the warmup/sim overrides)",
			work, uint64(maxSimulateInstructions))
	}
	return &requestPlan{
		jobs: []engine.Job{job.Baseline(), job},
		assemble: func(results []sim.Result) any {
			return responseFor(scale, req, job, results[1], results[0])
		},
	}, nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeStrict(w, r, &req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	plan, err := compileSweep(s.eng.Scale(), req, s.slice)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	release := s.inflight.acquire(plan.jobs)
	defer release()
	if !s.recheckIngested(w, plan.jobs) {
		return
	}
	results, err := s.eng.RunAllContext(r.Context(), plan.jobs, nil)
	if err != nil {
		if r.Context().Err() != nil {
			return // client gone; nobody to answer
		}
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, plan.assemble(results))
}

// sweepGrid is a compiled trace × prefetcher × override-point grid — the
// shared shape under POST /sweep (which simulates all of it) and the
// /analytics endpoints (which aggregate whatever of it has already
// completed). jobs is laid out point-major: for each override point, for
// each trace, the no-prefetch baseline followed by one job per
// prefetcher.
type sweepGrid struct {
	traces     []string
	pfs        []string
	points     []engine.Overrides
	axis       *SweepAxis // nil when no axis was requested
	axisValues []float64  // deduped, aligned with points when axis != nil
	jobs       []engine.Job
}

// index returns the jobs offset of (point vi, trace ti, prefetcher pi);
// pi == -1 addresses the (vi, ti) baseline.
func (g *sweepGrid) index(vi, ti, pi int) int {
	stride := len(g.pfs) + 1
	return vi*len(g.traces)*stride + ti*stride + pi + 1
}

// compileSweep validates a /sweep request and plans its full grid —
// baselines included — plus the row/geomean/sensitivity assembly. All
// errors are client errors.
func compileSweep(scale engine.Scale, req SweepRequest, policy *SlicePolicy) (*requestPlan, error) {
	g, err := compileSweepGrid(scale, req, policy)
	if err != nil {
		return nil, err
	}
	assemble := func(results []sim.Result) any {
		var resp SweepResponse
		for vi := range g.points {
			perPF := make(map[string][]float64)
			for ti, tr := range g.traces {
				baseline := results[g.index(vi, ti, -1)]
				for pi, pf := range g.pfs {
					i := g.index(vi, ti, pi)
					row := responseFor(scale, SimulateRequest{Trace: tr, Prefetcher: pf}, g.jobs[i], results[i], baseline)
					resp.Rows = append(resp.Rows, row)
					perPF[pf] = append(perPF[pf], row.Speedup)
				}
			}
			if g.axis == nil {
				resp.GeomeanSpeedup = make(map[string]float64)
				for pf, vals := range perPF {
					resp.GeomeanSpeedup[pf] = stats.Geomean(vals)
				}
				continue
			}
			for _, pf := range g.pfs {
				resp.Sensitivity = append(resp.Sensitivity, SensitivityPoint{
					Param:          g.axis.Param,
					Value:          g.axisValues[vi],
					Prefetcher:     pf,
					GeomeanSpeedup: stats.Geomean(perPF[pf]),
				})
			}
		}
		return resp
	}
	return &requestPlan{jobs: g.jobs, assemble: assemble}, nil
}

// compileSweepGrid validates a sweep-shaped request and builds its job
// grid. All errors are client errors. policy (may be nil) auto-slices
// each single-core grid job over a big ingested trace — including the
// baselines, so speedups divide sliced by sliced.
func compileSweepGrid(scale engine.Scale, req SweepRequest, policy *SlicePolicy) (*sweepGrid, error) {
	traces := req.Traces
	if req.Suite != "" {
		for _, info := range workload.Suite(req.Suite) {
			traces = append(traces, info.Name)
		}
		if len(traces) == len(req.Traces) {
			return nil, fmt.Errorf("unknown suite %q", req.Suite)
		}
	}
	if len(traces) == 0 || len(req.Prefetchers) == 0 {
		return nil, fmt.Errorf("sweep needs traces (or a suite) and prefetchers")
	}
	// Dedupe traces (suite traces can overlap explicit ones) and
	// prefetchers: a repeat would produce duplicate rows, double-weight
	// the geomeans, and eat into the job cap.
	traces = dedupe(traces)
	pfs := dedupe(req.Prefetchers)

	// Resolve the scenario points: one base Overrides for the whole sweep,
	// expanded by the axis into one point per swept value (a single
	// implicit point when no axis is given). Every point is validated —
	// unknown params, fractional values for integer knobs and out-of-range
	// values never reach the engine.
	var base engine.Overrides
	if req.Overrides != nil {
		base = *req.Overrides
	}
	if err := base.Validate(); err != nil {
		return nil, err
	}
	points := []engine.Overrides{base}
	var axisValues []float64
	if req.Axis != nil {
		if len(req.Axis.Values) == 0 {
			return nil, fmt.Errorf("axis %q has no values", req.Axis.Param)
		}
		points = points[:0]
		// Dedupe values like traces above: a repeated value would yield
		// duplicate rows and sensitivity points and eat into the job cap.
		seenVal := make(map[float64]bool, len(req.Axis.Values))
		for _, v := range req.Axis.Values {
			if seenVal[v] {
				continue
			}
			seenVal[v] = true
			o, err := base.WithParam(req.Axis.Param, v)
			if err != nil {
				return nil, err
			}
			points = append(points, o)
			axisValues = append(axisValues, v)
		}
	}

	// Parametric prefetcher names (vGaze-<n>B, Gaze-PHT<n>) are valid for
	// every positive integer, so per-name validation alone cannot bound a
	// sweep — cap the grid itself.
	if grid := len(points) * len(traces) * (len(pfs) + 1); grid > maxSweepJobs {
		return nil, fmt.Errorf(
			"sweep of %d axis values x %d traces x %d prefetchers needs %d jobs, exceeding the limit of %d",
			len(points), len(traces), len(pfs), grid, maxSweepJobs)
	}
	// The job cap alone stopped bounding cost once Overrides exposed
	// instruction budgets over HTTP: a capped grid of maxed-out budgets
	// would still simulate for days. Bound the total simulated work too.
	jobsPerPoint := uint64(len(traces)) * uint64(len(pfs)+1)
	var totalInstr uint64
	for _, o := range points {
		totalInstr += effectiveInstructions(scale, o) * jobsPerPoint
	}
	if totalInstr > maxSweepInstructions {
		return nil, fmt.Errorf(
			"sweep simulates %d instructions in total, exceeding the limit of %d (shrink the grid or the warmup/sim overrides)",
			totalInstr, uint64(maxSweepInstructions))
	}

	// Validate each distinct trace and prefetcher name once before
	// spending any simulation time (constructing a prefetcher just to
	// validate its name is not free), then batch the entire grid —
	// baselines included — through one shard-parallel pass.
	for _, tr := range traces {
		if !workload.Exists(tr) {
			return nil, fmt.Errorf("unknown trace %q", tr)
		}
	}
	for _, pf := range pfs {
		if _, err := prefetchers.New(pf); err != nil {
			return nil, err
		}
	}
	var grid []engine.Job
	for _, o := range points {
		for _, tr := range traces {
			grid = append(grid, engine.Job{Traces: []string{tr}, L1: []string{"none"}, Overrides: o})
			for _, pf := range pfs {
				grid = append(grid, engine.Job{Traces: []string{tr}, L1: []string{pf}, Overrides: o})
			}
		}
	}
	for i := range grid {
		policy.apply(scale, &grid[i])
	}
	return &sweepGrid{
		traces:     traces,
		pfs:        pfs,
		points:     points,
		axis:       req.Axis,
		axisValues: axisValues,
		jobs:       grid,
	}, nil
}

// maxCores and maxSweepJobs bound per-request simulation size: the paper
// evaluates up to eight cores and its largest figure sweeps a few hundred
// (trace, prefetcher) pairs, and one unauthenticated request must not be
// able to wedge the process with an arbitrarily large system or grid.
const (
	maxCores     = 16
	maxSweepJobs = 1024
	// maxSweepInstructions bounds the summed warmup+sim budget across a
	// sweep's jobs — generous for any paper-scale grid at Full budgets
	// (~1.5B), far below what maxed-out per-job overrides could request.
	// maxSimulateInstructions bounds one /simulate the same way (baseline
	// plus target across all cores).
	maxSweepInstructions    = 8_000_000_000
	maxSimulateInstructions = 1_000_000_000
)

// effectiveInstructions returns the per-core warmup+sim budget a job
// actually runs, per the engine's single budget-fold rule.
func effectiveInstructions(scale engine.Scale, o engine.Overrides) uint64 {
	warmup, sim := o.EffectiveBudgets(scale)
	return warmup + sim
}

// dedupe returns names with duplicates removed, preserving first-seen
// order (in place — callers pass request-owned slices).
func dedupe(names []string) []string {
	seen := make(map[string]bool, len(names))
	out := names[:0]
	for _, n := range names {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// jobFor validates a request against the workload catalogue and the
// prefetcher factory and converts it to an engine job.
func jobFor(req SimulateRequest) (engine.Job, error) {
	traces := req.Traces
	if len(traces) > 0 && (req.Trace != "" || req.Cores != 0) {
		// Silently ignoring trace/cores when traces is set would return a
		// system the client did not ask for.
		return engine.Job{}, fmt.Errorf("traces is exclusive with trace and cores")
	}
	if len(traces) == 0 {
		if req.Trace == "" {
			return engine.Job{}, fmt.Errorf("need trace or traces")
		}
		cores := req.Cores
		if cores < 1 {
			cores = 1
		}
		if cores > maxCores {
			return engine.Job{}, fmt.Errorf("cores = %d exceeds the limit of %d", cores, maxCores)
		}
		for i := 0; i < cores; i++ {
			traces = append(traces, req.Trace)
		}
	}
	if len(traces) > maxCores {
		return engine.Job{}, fmt.Errorf("%d traces exceeds the per-job core limit of %d", len(traces), maxCores)
	}
	job := engine.Job{Traces: traces, L1: []string{req.Prefetcher}}
	if req.L2 != "" {
		job.L2 = []string{req.L2}
	}
	if req.Overrides != nil {
		job.Overrides = *req.Overrides
	}
	// Job.Validate is the engine's canonical invariant (traces exist,
	// prefetcher names construct, power-of-two core count, overrides in
	// range); the engine panics on jobs that skip it.
	if err := job.Validate(); err != nil {
		return engine.Job{}, err
	}
	return job, nil
}

func responseFor(scale engine.Scale, req SimulateRequest, job engine.Job, res, base sim.Result) SimulateResponse {
	var overrides *engine.Overrides
	if !job.Overrides.IsZero() {
		o := job.Overrides
		overrides = &o
	}
	return SimulateResponse{
		Traces:           job.Traces,
		Prefetcher:       req.Prefetcher,
		L2:               req.L2,
		Cores:            len(job.Traces),
		Overrides:        overrides,
		Address:          job.ContentAddress(scale),
		IPC:              res.MeanIPC(),
		Speedup:          engine.Speedup(res, base),
		Accuracy:         res.Accuracy(),
		Coverage:         res.Coverage(),
		LateFraction:     res.LateFraction(),
		IssuedPrefetches: res.IssuedPrefetches(),
		L1MPKI:           res.L1MPKI(),
		LLCMPKI:          res.LLCMPKI(),
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
