package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestChampSimReaderParsesVariants(t *testing.T) {
	input := strings.Join([]string{
		"# a comment, then a blank line",
		"",
		"0x400100,0x10000040,L,3",          // canonical spelling
		"0x400104 0x10000080 S 0",          // whitespace-separated
		"4194568, 268435648, STORE",        // decimal, no nonmem
		"0x400110,0x100000c0",              // pc+addr only: load, nonmem 0
		"0x400114,\t0x10000100 , w , 0x10", // mixed separators, hex nonmem, write alias
	}, "\n")
	got, err := Collect(NewChampSimReader(strings.NewReader(input)), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{PC: 0x400100, Addr: 0x10000040, NonMem: 3, Kind: Load},
		{PC: 0x400104, Addr: 0x10000080, NonMem: 0, Kind: Store},
		{PC: 4194568, Addr: 268435648, Kind: Store},
		{PC: 0x400110, Addr: 0x100000c0, Kind: Load},
		{PC: 0x400114, Addr: 0x10000100, NonMem: 16, Kind: Store},
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestChampSimReaderRejectsMalformedLines(t *testing.T) {
	for _, bad := range []string{
		"0x400100",                     // too few fields
		"0x400100,1,L,2,extra",         // too many fields
		"nothex,0x10",                  // bad pc
		"0x400100,nothex",              // bad addr
		"0x400100,0x10,X",              // unknown kind
		"0x400100,0x10,L,70000",        // nonmem overflows uint16
		"0x400100,0x10,L,-1",           // negative nonmem
		"0x1,0x2,L,1\n0x400100,0x,L,1", // second line bad addr
	} {
		r := NewChampSimReader(strings.NewReader(bad))
		_, err := Collect(r, 0)
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("input %q: err = %v, want ErrCorrupt", bad, err)
		}
	}
}

// TestChampSimReaderOverlongLine: binary input mistaken for the line
// format (no newline within the scanner's token limit) must surface the
// typed ErrCorrupt — the HTTP layer turns untyped errors into 500s.
func TestChampSimReaderOverlongLine(t *testing.T) {
	blob := bytes.Repeat([]byte{0xAB}, 100_000)
	_, err := Collect(NewChampSimReader(bytes.NewReader(blob)), 0)
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("overlong line: err = %v, want ErrCorrupt", err)
	}
}

func TestChampSimWriterRoundTrip(t *testing.T) {
	recs := sampleRecords(500)
	var buf bytes.Buffer
	if err := WriteAll(&buf, FormatChampSim, recs); err != nil {
		t.Fatal(err)
	}
	got, err := Collect(NewChampSimReader(&buf), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
}

// TestDetectFormats round-trips records through every format and checks
// Detect identifies each stream and decodes identical records.
func TestDetectFormats(t *testing.T) {
	recs := sampleRecords(200)
	for _, f := range Formats() {
		var buf bytes.Buffer
		if err := WriteAll(&buf, f, recs); err != nil {
			t.Fatalf("%s: encode: %v", f, err)
		}
		rd, detected, err := Detect(&buf)
		if err != nil {
			t.Fatalf("%s: detect: %v", f, err)
		}
		if detected != f {
			t.Errorf("detected %q, want %q", detected, f)
		}
		got, err := Collect(rd, 0)
		if err != nil {
			t.Fatalf("%s: decode: %v", f, err)
		}
		if len(got) != len(recs) {
			t.Fatalf("%s: decoded %d records, want %d", f, len(got), len(recs))
		}
		for i := range got {
			if got[i] != recs[i] {
				t.Fatalf("%s: record %d: got %+v want %+v", f, i, got[i], recs[i])
			}
		}
	}
}

func TestDetectEmptyInput(t *testing.T) {
	if _, _, err := Detect(strings.NewReader("")); !errors.Is(err, ErrTruncated) {
		t.Errorf("empty input: err = %v, want ErrTruncated", err)
	}
}

func TestDetectTruncatedGzip(t *testing.T) {
	recs := sampleRecords(100)
	var buf bytes.Buffer
	if err := WriteAll(&buf, FormatGZTRGz, recs); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-7] // drop part of the gzip footer
	rd, _, err := Detect(bytes.NewReader(data))
	if err != nil {
		// Acceptable: truncation already visible at detection.
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("detect: err = %v, want typed decode error", err)
		}
		return
	}
	if _, err := Collect(rd, 0); !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated gzip: err = %v, want ErrTruncated/ErrCorrupt", err)
	}
}

func TestParseFormat(t *testing.T) {
	if _, err := ParseFormat("tar"); err == nil {
		t.Error("ParseFormat accepted an unknown format")
	}
	f, err := ParseFormat("champsim.gz")
	if err != nil || f != FormatChampSimGz {
		t.Errorf("ParseFormat(champsim.gz) = %v, %v", f, err)
	}
}

func TestNewFormatReaderExplicit(t *testing.T) {
	recs := sampleRecords(50)
	var buf bytes.Buffer
	if err := WriteAll(&buf, FormatChampSimGz, recs); err != nil {
		t.Fatal(err)
	}
	rd, err := NewFormatReader(&buf, FormatChampSimGz)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(rd, 0)
	if err != nil || len(got) != len(recs) {
		t.Fatalf("decoded %d records, err %v", len(got), err)
	}
	// Explicitly naming gztr for a non-gzip, non-gztr stream is corrupt.
	if _, err := NewFormatReader(strings.NewReader("plain text"), FormatGZTR); !errors.Is(err, ErrCorrupt) {
		t.Errorf("gztr over text: err = %v, want ErrCorrupt", err)
	}
	if _, err := NewFormatReader(strings.NewReader("plain text"), FormatGZTRGz); !errors.Is(err, ErrCorrupt) {
		t.Errorf("gztr.gz over text: err = %v, want ErrCorrupt", err)
	}
}
