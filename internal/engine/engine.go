// Package engine executes prefetcher simulations as cacheable experiment
// jobs. It is the shared substrate under internal/harness (paper tables),
// cmd/gazesim and cmd/experiments (CLIs) and cmd/gazeserve (HTTP): every
// entry point describes work as Jobs, and the engine deduplicates them
// through an in-process memo, an optional content-addressed disk store
// (instant repeated sweeps across processes), and a shard-parallel sweep
// executor with deterministic scheduling and progress/ETA reporting.
package engine

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/prefetchers"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Scale bounds experiment cost. The paper simulates 200M+200M instructions
// per trace on a 384-core cluster over days; synthetic stationary traces
// converge much faster (DESIGN.md §1), so even Full here is laptop-scale.
type Scale struct {
	// TracesPerSuite caps traces per suite (0 = all catalogue entries).
	TracesPerSuite int
	// TraceLen is the number of generated records per trace.
	TraceLen int
	// Warmup and Sim are per-core instruction budgets.
	Warmup uint64
	Sim    uint64
}

// Predefined scales.
var (
	Quick    = Scale{TracesPerSuite: 2, TraceLen: 50_000, Warmup: 40_000, Sim: 150_000}
	Standard = Scale{TracesPerSuite: 5, TraceLen: 120_000, Warmup: 100_000, Sim: 400_000}
	Full     = Scale{TracesPerSuite: 0, TraceLen: 250_000, Warmup: 200_000, Sim: 800_000}
)

// ScaleByName maps the CLI spelling of a scale to its definition.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "quick":
		return Quick, nil
	case "standard":
		return Standard, nil
	case "full":
		return Full, nil
	}
	return Scale{}, fmt.Errorf("engine: unknown scale %q (want quick, standard or full)", name)
}

// Job describes one simulation: one or more cores with traces and
// prefetchers, plus an optional config mutation.
type Job struct {
	// Traces holds one trace name per core.
	Traces []string
	// L1 holds one L1 prefetcher name per core ("" / "none" for no
	// prefetching); a single-element slice is broadcast to all cores.
	L1 []string
	// L2 optionally attaches L2 prefetchers (Fig 13), broadcast like L1.
	L2 []string
	// ConfigKey names the config mutation in cache keys; Mutate applies
	// it. Two jobs with different mutations MUST use different ConfigKeys
	// — the function itself cannot be hashed, so the key is what keeps
	// the memo and the disk store sound.
	ConfigKey string
	Mutate    func(sim.Config) sim.Config
}

// Key identifies the job within one engine (scale is engine-wide).
func (j Job) Key() string {
	return fmt.Sprintf("%v|%v|%v|%s", j.Traces, j.L1, j.L2, j.ConfigKey)
}

// Fingerprint identifies the job across processes: it folds in every
// scale knob that changes the simulation outcome (TracesPerSuite only
// selects jobs, it never alters one, so it is excluded — a Quick and a
// Full sweep share entries for identical jobs at equal budgets).
func (j Job) Fingerprint(scale Scale) string {
	return fmt.Sprintf("len=%d|warm=%d|sim=%d|%s",
		scale.TraceLen, scale.Warmup, scale.Sim, j.Key())
}

// Validate reports whether the job can execute: every trace is in the
// catalogue, every prefetcher name constructs, and the core count keeps
// the default cache geometry a power of two. Entry points MUST call it on
// untrusted input — execute treats an invalid job as programmer error and
// panics.
func (j Job) Validate() error {
	n := len(j.Traces)
	if n == 0 {
		return fmt.Errorf("engine: job has no traces")
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("engine: core count must be a power of two, got %d", n)
	}
	for _, tr := range j.Traces {
		if !workload.Exists(tr) {
			return fmt.Errorf("engine: unknown trace %q", tr)
		}
	}
	for _, name := range append(Broadcast(j.L1, n), Broadcast(j.L2, n)...) {
		if name == "" || name == "none" {
			continue
		}
		if _, err := prefetchers.New(name); err != nil {
			return err
		}
	}
	return nil
}

// Baseline returns the job's no-prefetch counterpart: same traces and
// config mutation, L1/L2 prefetching disabled. Its result is the
// denominator of every speedup the harness, CLIs and server report.
func (j Job) Baseline() Job {
	return Job{Traces: j.Traces, L1: []string{"none"}, ConfigKey: j.ConfigKey, Mutate: j.Mutate}
}

// Speedup returns res.MeanIPC()/base.MeanIPC(), or 0 when the baseline
// did not run.
func Speedup(res, base sim.Result) float64 {
	if base.MeanIPC() == 0 {
		return 0
	}
	return res.MeanIPC() / base.MeanIPC()
}

// Broadcast expands a 1-element name slice to n cores, leaving exact-length
// slices untouched and padding short ones with "".
func Broadcast(names []string, n int) []string {
	if len(names) == n {
		return names
	}
	out := make([]string, n)
	for i := range out {
		if len(names) == 1 {
			out[i] = names[0]
		} else if i < len(names) {
			out[i] = names[i]
		}
	}
	return out
}

// Progress reports sweep advancement after each completed job.
type Progress struct {
	// Done and Total count jobs within the current RunAll sweep.
	Done, Total int
	// Cached reports whether the job was served from the memo or store.
	Cached bool
	// Key is the completed job's Key.
	Key string
	// Elapsed is the time since the sweep started; Remaining is the ETA
	// extrapolated from the mean per-job cost so far.
	Elapsed, Remaining time.Duration
}

// StderrProgress renders a one-line sweep status on stderr, suitable for
// Options.Progress in CLIs. The trailing spaces wipe leftovers from a
// longer previous line; the carriage return keeps it on one line until
// the sweep completes.
func StderrProgress(p Progress) {
	fmt.Fprintf(os.Stderr, "\rsweep %d/%d  elapsed %v  eta %v   ",
		p.Done, p.Total, p.Elapsed.Round(time.Second), p.Remaining.Round(time.Second))
	if p.Done == p.Total {
		fmt.Fprint(os.Stderr, "\n")
	}
}

// Counters tallies where results came from.
type Counters struct {
	// MemoHits were served from the in-process memo.
	MemoHits uint64
	// StoreHits were loaded from the persisted store.
	StoreHits uint64
	// Simulated were computed by running the simulator.
	Simulated uint64
}

// Options configures an Engine. The zero value is usable: Standard scale,
// no persistence, GOMAXPROCS workers.
type Options struct {
	// Scale applies to every job; a zero TraceLen selects Standard.
	Scale Scale
	// Store persists results across processes (nil = in-memory only).
	Store *Store
	// Workers bounds concurrent simulations and sweep shards
	// (0 = GOMAXPROCS).
	Workers int
	// Seed drives per-shard deterministic scheduling in RunAll.
	Seed uint64
	// Progress, when set, observes every RunAll job completion. Calls are
	// serialized engine-wide; Done/Total describe the sweep that
	// completed the job, so concurrent RunAll calls interleave their
	// counts. StderrProgress is a ready-made renderer for CLIs.
	Progress func(Progress)
}

// Engine executes and memoizes simulations. It is safe for concurrent use.
type Engine struct {
	scale    Scale
	store    *Store
	seed     uint64
	workers  int
	progress func(Progress)

	limit chan struct{}

	// progMu serializes progress callbacks across concurrent sweeps.
	progMu sync.Mutex

	mu       sync.Mutex
	memo     map[string]sim.Result
	inflight map[string]chan struct{}
	counters Counters
}

// New builds an engine.
func New(opts Options) *Engine {
	if opts.Scale.TraceLen == 0 {
		opts.Scale = Standard
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		scale:    opts.Scale,
		store:    opts.Store,
		seed:     opts.Seed,
		workers:  opts.Workers,
		progress: opts.Progress,
		limit:    make(chan struct{}, opts.Workers),
		memo:     make(map[string]sim.Result),
		inflight: make(map[string]chan struct{}),
	}
}

// Scale returns the engine's scale.
func (e *Engine) Scale() Scale { return e.scale }

// Store returns the engine's persisted store (nil when in-memory only).
func (e *Engine) Store() *Store { return e.store }

// Counters returns a snapshot of the cache counters.
func (e *Engine) Counters() Counters {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.counters
}

// Run executes one job, deduplicated three ways: concurrent identical jobs
// coalesce onto one execution, repeated jobs hit the in-process memo, and
// repeated jobs across processes hit the persisted store.
func (e *Engine) Run(j Job) sim.Result {
	res, _ := e.run(j)
	return res
}

func (e *Engine) run(j Job) (res sim.Result, cached bool) {
	key := j.Key()
	for {
		e.mu.Lock()
		if r, ok := e.memo[key]; ok {
			e.counters.MemoHits++
			e.mu.Unlock()
			return r, true
		}
		ch, busy := e.inflight[key]
		if !busy {
			ch = make(chan struct{})
			e.inflight[key] = ch
			e.mu.Unlock()
			break
		}
		e.mu.Unlock()
		<-ch
	}

	// If execute panics (programmer error — inputs are validated before
	// jobs are built), still wake single-flight waiters and drop the
	// inflight claim so the engine isn't poisoned for the key; the panic
	// itself propagates to the caller.
	completed := false
	defer func() {
		e.mu.Lock()
		if completed {
			e.memo[key] = res
			if cached {
				e.counters.StoreHits++
			} else {
				e.counters.Simulated++
			}
		}
		ch := e.inflight[key]
		delete(e.inflight, key)
		e.mu.Unlock()
		close(ch)
	}()

	if e.store != nil {
		if r, ok := e.store.Get(j.Fingerprint(e.scale)); ok {
			res, cached = r, true
		}
	}
	if !cached {
		e.limit <- struct{}{}
		defer func() { <-e.limit }()
		res = e.execute(j)
	}
	if !cached && e.store != nil {
		// Persistence is best-effort: a read-only cache dir must not
		// fail the sweep.
		e.store.Put(j.Fingerprint(e.scale), res) //nolint:errcheck
	}
	completed = true
	return res, cached
}

// config returns the default system config at this engine's scale.
func (e *Engine) config(cores int) sim.Config {
	cfg := sim.DefaultConfig(cores)
	cfg.WarmupInstructions = e.scale.Warmup
	cfg.SimInstructions = e.scale.Sim
	return cfg
}

func (e *Engine) execute(j Job) sim.Result {
	cores := len(j.Traces)
	cfg := e.config(cores)
	if j.Mutate != nil {
		cfg = j.Mutate(cfg)
	}
	l1s := Broadcast(j.L1, cores)
	l2s := Broadcast(j.L2, cores)

	specs := make([]sim.CoreSpec, cores)
	for i, name := range j.Traces {
		recs := workload.MustGenerate(name, e.scale.TraceLen)
		spec := sim.CoreSpec{
			Trace:        trace.NewLooping(trace.NewSliceReader(recs)),
			L1Prefetcher: prefetchers.MustNew(l1s[i]),
		}
		if l2s[i] != "" && l2s[i] != "none" {
			spec.L2Prefetcher = prefetchers.MustNew(l2s[i])
		}
		specs[i] = spec
	}
	sys, err := sim.New(cfg, specs)
	if err != nil {
		panic(fmt.Sprintf("engine: building system for %s: %v", j.Key(), err))
	}
	return sys.Run()
}

// RunAll executes a sweep: jobs are split round-robin into one shard per
// worker, each shard walks its jobs in an order drawn from its own
// deterministic RNG (seeded from Options.Seed and the shard index, so
// identical sweeps schedule identically while expensive jobs spread across
// shards), and every completion feeds the Progress callback with an ETA.
// Results are returned in input order.
func (e *Engine) RunAll(jobs []Job) []sim.Result {
	results := make([]sim.Result, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	shards := e.workers
	if shards > len(jobs) {
		shards = len(jobs)
	}
	order := make([][]int, shards)
	for i := range jobs {
		order[i%shards] = append(order[i%shards], i)
	}

	start := time.Now()
	var (
		done, simulated int
		wg              sync.WaitGroup
	)
	report := func(j Job, cached bool) {
		if e.progress == nil {
			return
		}
		e.progMu.Lock()
		defer e.progMu.Unlock()
		done++
		if !cached {
			simulated++
		}
		elapsed := time.Since(start)
		// Extrapolate from simulated completions only: cache hits finish
		// in microseconds, and averaging them in would make a resumed
		// sweep's ETA absurdly optimistic. Assuming every remaining job
		// simulates overestimates instead, and shrinks as hits drain.
		var remaining time.Duration
		if simulated > 0 {
			remaining = time.Duration(float64(elapsed) / float64(simulated) * float64(len(jobs)-done))
		}
		e.progress(Progress{
			Done: done, Total: len(jobs), Cached: cached, Key: j.Key(),
			Elapsed: elapsed, Remaining: remaining,
		})
	}

	// A panic inside a bare goroutine would kill the whole process (and
	// gazeserve with it) — capture the first one and re-raise it on the
	// caller's goroutine, where net/http's handler recover can see it.
	var (
		panicOnce sync.Once
		panicked  any
	)
	for s := range order {
		wg.Add(1)
		go func(shard int, idx []int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			src := rng.New(e.seed ^ (uint64(shard+1) * 0x9e3779b97f4a7c15))
			for _, k := range src.Perm(len(idx)) {
				i := idx[k]
				res, cached := e.run(jobs[i])
				results[i] = res
				report(jobs[i], cached)
			}
		}(s, order[s])
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return results
}
