// Example ingest drives the trace registry end to end, without any
// external setup: it fabricates a "real captured trace" (a gzip
// ChampSim-format file, the shape §V's SPEC/GAP recordings arrive in),
// then runs the full production path —
//
//  1. POST /traces uploads the file to an in-process gazeserve handler
//     (engine + registry + jobs manager, exactly as cmd/gazeserve wires
//     them) and gets back a content-addressed manifest;
//  2. a byte-different re-upload of the same logical trace (the same
//     records re-encoded as raw GZTR) deduplicates onto the same address;
//  3. the ingested trace runs through the asynchronous jobs API as a
//     multi-prefetcher sweep, referenced by its `ingested:<address>`
//     name exactly like a catalogue workload;
//  4. GET /traces/{addr}/data exports the normalized records back out.
//
// The registry directory is throwaway here ($GAZE_EXAMPLE_TRACE_DIR
// overrides it); against a separately running `gazeserve -trace-dir ...`
// the same requests work unchanged via curl — see README "Ingesting real
// traces".
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/engine"
	"repro/internal/jobs"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/traceset"
	"repro/internal/workload"
)

func main() {
	dir := os.Getenv("GAZE_EXAMPLE_TRACE_DIR")
	if dir == "" {
		tmp, err := os.MkdirTemp("", "ingest-registry-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	// Wire engine + registry + jobs the way cmd/gazeserve does.
	eng := engine.New(engine.Options{Scale: engine.Quick})
	reg, err := traceset.Open(dir, traceset.Options{})
	if err != nil {
		log.Fatal(err)
	}
	workload.RegisterSource(reg)
	mgr, err := jobs.Open(jobs.Options{Engine: eng, Compile: server.Compiler(eng)})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, server.New(eng).AttachJobs(mgr).AttachTraces(reg).Handler()) //nolint:errcheck
	base := "http://" + ln.Addr().String()
	fmt.Println("gazeserve listening on", base, "— registry at", dir)

	// A stand-in for a real capture: records from the synthetic generator,
	// encoded as a gzip ChampSim-style file. Any external tool producing
	// `pc,addr,kind,nonmem` lines (or GZTR) ingests identically.
	recs, err := workload.Generate("leslie3d-134", 60_000)
	if err != nil {
		log.Fatal(err)
	}
	var champsimGz bytes.Buffer
	if err := trace.WriteAll(&champsimGz, trace.FormatChampSimGz, recs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n1. uploading a %d-byte champsim.gz capture (%d records)\n", champsimGz.Len(), len(recs))
	var manifest server.TraceUploadResponse
	status := post(base+"/traces", champsimGz.Bytes(), &manifest)
	fmt.Printf("   -> %d  address %s\n", status, manifest.Address)
	fmt.Printf("      footprint: %d regions, mean density %.1f blocks, trigger ambiguity %.2f\n",
		manifest.Footprint.Regions, manifest.Footprint.MeanDensity, manifest.Footprint.TriggerAmbiguity)
	if status != http.StatusCreated {
		log.Fatalf("expected 201, got %d", status)
	}

	// Same logical trace, different bytes: raw GZTR re-encoding.
	var gztr bytes.Buffer
	if err := trace.WriteAll(&gztr, trace.FormatGZTR, recs); err != nil {
		log.Fatal(err)
	}
	var dedup server.TraceUploadResponse
	status = post(base+"/traces", gztr.Bytes(), &dedup)
	fmt.Printf("2. re-uploading as raw gztr (%d bytes) -> %d, deduplicated=%v, same address: %v\n",
		gztr.Len(), status, dedup.Deduplicated, dedup.Address == manifest.Address)
	if status != http.StatusOK || dedup.Address != manifest.Address {
		log.Fatalf("dedup failed: %d %s", status, dedup.Address)
	}

	// Run the ingested trace by name through the async jobs API.
	campaign := map[string]any{
		"type": "sweep",
		"request": map[string]any{
			"traces":      []string{manifest.Name},
			"prefetchers": []string{"IP-stride", "PMP", "Gaze"},
		},
	}
	body, _ := json.Marshal(campaign)
	var job server.JobStatus
	r, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	json.NewDecoder(r.Body).Decode(&job) //nolint:errcheck
	r.Body.Close()
	fmt.Printf("3. submitted sweep over %s as job %.12s...\n", manifest.Name, job.ID)

	for job.State == string(jobs.Queued) || job.State == string(jobs.Running) {
		time.Sleep(50 * time.Millisecond)
		r, err := http.Get(base + "/jobs/" + job.ID)
		if err != nil {
			log.Fatal(err)
		}
		json.NewDecoder(r.Body).Decode(&job) //nolint:errcheck
		r.Body.Close()
	}
	if job.State != string(jobs.Succeeded) {
		log.Fatalf("job landed in %s: %s", job.State, job.Error)
	}
	r, err = http.Get(base + "/jobs/" + job.ID + "/result")
	if err != nil {
		log.Fatal(err)
	}
	var sweep server.SweepResponse
	json.NewDecoder(r.Body).Decode(&sweep) //nolint:errcheck
	r.Body.Close()
	fmt.Println("   geomean speedups on the ingested trace:")
	for pf, g := range sweep.GeomeanSpeedup {
		fmt.Printf("     %-10s %.3f\n", pf, g)
	}

	// Export the normalized records back out and verify the round trip.
	r, err = http.Get(base + "/traces/" + manifest.Address + "/data")
	if err != nil {
		log.Fatal(err)
	}
	rd, _, err := trace.Detect(r.Body)
	if err != nil {
		log.Fatal(err)
	}
	back, err := trace.Collect(rd, 0)
	r.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	identical := len(back) == len(recs)
	for i := 0; identical && i < len(back); i++ {
		identical = back[i] == recs[i]
	}
	fmt.Printf("4. exported %d records, identical to the capture: %v\n", len(back), identical)
	if !identical {
		log.Fatal("export round trip lost records")
	}
	fmt.Println("\ningest example done")
}

// post uploads a binary body and decodes the JSON response.
func post(url string, payload []byte, out any) int {
	r, err := http.Post(url, "application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		log.Fatal(err)
	}
	defer r.Body.Close()
	if out != nil {
		json.NewDecoder(r.Body).Decode(out) //nolint:errcheck
	}
	return r.StatusCode
}
