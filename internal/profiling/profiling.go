// Package profiling wires the standard pprof profiles into CLIs with two
// flags' worth of code, so perf work on the simulator stays
// profile-guided (see DESIGN.md's hot-path section) instead of guessed.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (when non-empty) and returns a
// stop function that finishes the CPU profile and writes a heap profile
// to memPath (when non-empty). Callers must invoke stop on the normal
// exit path — typically via defer in main; error-exit paths that bypass
// it simply lose the profile, which is the conventional trade-off.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
			}
		}
	}, nil
}
