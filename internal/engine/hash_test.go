package engine

import "testing"

// TestContentAddressGolden pins the canonical encoding and SHA-256
// content address of representative jobs. The persisted store files
// records under these addresses: an accidental change to the canonical
// encoding (field order, normalization rules, JSON tags) would silently
// orphan every existing store entry, so it must fail here instead. A
// deliberate encoding change must bump canonicalVersion and
// StoreSchemaVersion together and regenerate these values.
func TestContentAddressGolden(t *testing.T) {
	scale := Scale{TraceLen: 1000, Warmup: 100, Sim: 200}
	cases := []struct {
		name      string
		job       Job
		canonical string
		address   string
	}{
		{
			name:      "single-core",
			job:       Job{Traces: []string{"lbm-1274"}, L1: []string{"Gaze"}},
			canonical: `{"v":2,"trace_len":1000,"warmup":100,"sim":200,"traces":["lbm-1274"],"l1":["Gaze"]}`,
			address:   "b2bfbcbfb3e6193de8453d3410f6420aa9a3bc5445cc751e59ee1e66d413cf3d",
		},
		{
			name:      "no-prefetch baseline",
			job:       Job{Traces: []string{"lbm-1274"}, L1: []string{"none"}},
			canonical: `{"v":2,"trace_len":1000,"warmup":100,"sim":200,"traces":["lbm-1274"]}`,
			address:   "e5bc6eb4dac0d1e006141e7b16d017e30b060f384c06fa473b741104e4f47986",
		},
		{
			name: "multi-core with L2 broadcast",
			job: Job{
				Traces: []string{"lbm-1274", "mcf_s-1554"},
				L1:     []string{"Gaze", "PMP"},
				L2:     []string{"BOP"},
			},
			canonical: `{"v":2,"trace_len":1000,"warmup":100,"sim":200,"traces":["lbm-1274","mcf_s-1554"],"l1":["Gaze","PMP"],"l2":["BOP","BOP"]}`,
			address:   "d881efbc0fc43105a0cddcadf7c591febdba2afb48916a3e1998b70083e9976d",
		},
		{
			name: "one override",
			job: Job{
				Traces:    []string{"lbm-1274"},
				L1:        []string{"Gaze"},
				Overrides: Overrides{DRAMMTPS: 800},
			},
			canonical: `{"v":2,"trace_len":1000,"warmup":100,"sim":200,"traces":["lbm-1274"],"l1":["Gaze"],"overrides":{"dram_mtps":800}}`,
			address:   "0a908f2d77c8d7846d5c2aaf5a8a3349ddaf1953cf1c3ec06438e2c4346267d1",
		},
		{
			// Budget overrides fold into the warmup/sim fields they
			// replace, so the scale's unused budgets never reach the hash.
			name: "every override",
			job: Job{
				Traces: []string{"lbm-1274"},
				L1:     []string{"Gaze"},
				Overrides: Overrides{
					LLCMBPerCore: 0.5, L2KB: 256, PQCapacity: 16, PQDrainRate: 0.5,
					WarmupInstructions: 50, SimInstructions: 100,
				},
			},
			canonical: `{"v":2,"trace_len":1000,"warmup":50,"sim":100,"traces":["lbm-1274"],"l1":["Gaze"],"overrides":{"llc_mb_per_core":0.5,"l2_kb":256,"pq_capacity":16,"pq_drain_rate":0.5}}`,
			address:   "79889db4e22b517ef2c15b7aa26d30594ba9127a42065b7a86373f6d8ee469b7",
		},
		{
			// Sliced execution changes the simulated numbers (bounded
			// per-slice warmup), so slice_shards > 1 is part of the address.
			// slice_shards 1 folds to 0 (the plain unsliced path) and never
			// appears — TestSliceShardsAddressing pins that side.
			name: "sliced",
			job: Job{
				Traces:    []string{"lbm-1274"},
				L1:        []string{"Gaze"},
				Overrides: Overrides{SliceShards: 4},
			},
			canonical: `{"v":2,"trace_len":1000,"warmup":100,"sim":200,"traces":["lbm-1274"],"l1":["Gaze"],"overrides":{"slice_shards":4}}`,
			address:   "b2c8ac61379c4e4366d3f0e2c7b47541698195f7c7d2028c3b78385644267f72",
		},
		{
			// Ingested traces fold their record-stream digest into the
			// encoding (trace_digests), so result-store keys pin trace
			// CONTENT, not just a registry name. The field is omitted for
			// all-catalogue jobs — the cases above must never grow it.
			name: "ingested trace",
			job: Job{
				Traces: []string{"ingested:8a2b9f6d1f9c7a1f0d3e5b7c9a1d2e3f4a5b6c7d8e9f0a1b2c3d4e5f6a7b8c9d"},
				L1:     []string{"Gaze"},
			},
			canonical: `{"v":2,"trace_len":1000,"warmup":100,"sim":200,"traces":["ingested:8a2b9f6d1f9c7a1f0d3e5b7c9a1d2e3f4a5b6c7d8e9f0a1b2c3d4e5f6a7b8c9d"],"trace_digests":["8a2b9f6d1f9c7a1f0d3e5b7c9a1d2e3f4a5b6c7d8e9f0a1b2c3d4e5f6a7b8c9d"],"l1":["Gaze"]}`,
			address:   "a8d3b7fe0a10bff2e2c4ca73eeb07fb29eb7ea4cf565187322d480d06cf5accc",
		},
		{
			// Mixed cores: catalogue traces contribute "" digests, keeping
			// per-core alignment.
			name: "ingested and catalogue traces mixed",
			job: Job{
				Traces: []string{"ingested:8a2b9f6d1f9c7a1f0d3e5b7c9a1d2e3f4a5b6c7d8e9f0a1b2c3d4e5f6a7b8c9d", "lbm-1274"},
				L1:     []string{"Gaze", "PMP"},
			},
			canonical: `{"v":2,"trace_len":1000,"warmup":100,"sim":200,"traces":["ingested:8a2b9f6d1f9c7a1f0d3e5b7c9a1d2e3f4a5b6c7d8e9f0a1b2c3d4e5f6a7b8c9d","lbm-1274"],"trace_digests":["8a2b9f6d1f9c7a1f0d3e5b7c9a1d2e3f4a5b6c7d8e9f0a1b2c3d4e5f6a7b8c9d",""],"l1":["Gaze","PMP"]}`,
			address:   "92a09e2426cae101f775559d499d1746e29bedc436b073d492ca4030f3962726",
		},
	}
	for _, c := range cases {
		if got := c.job.CanonicalJSON(scale); got != c.canonical {
			t.Errorf("%s: canonical encoding changed\n got %s\nwant %s", c.name, got, c.canonical)
		}
		if got := c.job.ContentAddress(scale); got != c.address {
			t.Errorf("%s: content address changed\n got %s\nwant %s", c.name, got, c.address)
		}
	}
}
