package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{2}, 2},
		{[]float64{1, 4}, 2},
		{[]float64{1, 1, 8}, 2},
		{[]float64{0.5, 2}, 1},
	}
	for _, c := range cases {
		if got := Geomean(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Geomean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Non-positive input is rejected as zero (speedups are positive).
	if Geomean([]float64{1, 0}) != 0 {
		t.Error("Geomean with zero did not return 0")
	}
}

func TestGeomeanBetweenMinAndMax(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = 0.5 + float64(r)/1000
		}
		g := Geomean(vals)
		return g >= Min(vals)-1e-9 && g <= Max(vals)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanMinMax(t *testing.T) {
	vals := []float64{3, 1, 2}
	if Mean(vals) != 2 {
		t.Errorf("Mean = %v", Mean(vals))
	}
	if Min(vals) != 1 || Max(vals) != 3 {
		t.Error("Min/Max wrong")
	}
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty-input extrema not zero")
	}
}

func TestTableFormatting(t *testing.T) {
	tb := Table{
		Title:  "demo",
		Note:   "a note",
		Header: []string{"name", "value"},
	}
	tb.AddRow("short", "1.0")
	tb.AddRow("a-much-longer-name", "12.5")
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "a note") {
		t.Error("note missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header and rows are padded to a common grid: with a right-aligned
	// final column every line has the same width.
	var widths []int
	for _, ln := range lines[2:] {
		widths = append(widths, len(ln))
	}
	for i := 1; i < len(widths); i++ {
		if widths[i] != widths[0] {
			t.Errorf("columns misaligned: %v\n%s", widths, out)
			break
		}
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456, 2) != "1.23" {
		t.Errorf("F = %q", F(1.23456, 2))
	}
	if Pct(0.1234) != "12.3%" {
		t.Errorf("Pct = %q", Pct(0.1234))
	}
}
