// Result documents: the wire form of one store record, used by the
// cluster subsystem to move computed results between processes. A worker
// exports the record it would have persisted locally; the coordinator
// verifies the document against the content address it was uploaded
// under and adopts it into its own memo and store. Export and Put share
// one encoder, so a result computed remotely lands on the coordinator's
// disk byte-identical to one computed locally — the store-equality
// guarantee cluster tests pin.
package engine

import (
	"encoding/json"
	"fmt"

	"repro/internal/sim"
)

// AddressOfKey returns the content address of a canonical job key — the
// same SHA-256 hex digest Job.ContentAddress computes, for callers that
// already hold the canonical encoding.
func AddressOfKey(key string) string { return hashKey(key) }

// encodeRecord renders the on-disk (and on-wire) form of one store
// record. Store.Put and ExportResult must produce identical bytes for
// identical inputs; sharing this function is what guarantees it.
func encodeRecord(key string, res sim.Result) ([]byte, error) {
	return json.MarshalIndent(record{Version: StoreSchemaVersion, Key: key, Result: res}, "", "\t")
}

// ExportResult encodes a computed result as a self-describing document:
// the exact bytes Store.Put would persist for the same key. The caller
// supplies the canonical job key (Job.CanonicalJSON at the computing
// engine's scale); the document's address is hashKey(key).
func ExportResult(key string, res sim.Result) ([]byte, error) {
	data, err := encodeRecord(key, res)
	if err != nil {
		return nil, fmt.Errorf("engine: encoding result document: %w", err)
	}
	return data, nil
}

// ImportResult decodes and verifies a result document uploaded under a
// content address. It rejects documents whose schema version differs
// from this process's (results are not portable across schema bumps),
// and documents whose embedded key does not hash to addr — the
// verification that makes accepting uploads from untrusted workers safe:
// a document that passes can only describe the work the address names.
func ImportResult(addr string, data []byte) (key string, res sim.Result, err error) {
	if !isAddress(addr) {
		return "", sim.Result{}, fmt.Errorf("engine: %q is not a content address", addr)
	}
	var rec record
	if err := json.Unmarshal(data, &rec); err != nil {
		return "", sim.Result{}, fmt.Errorf("engine: decoding result document: %v", err)
	}
	if rec.Version != StoreSchemaVersion {
		return "", sim.Result{}, fmt.Errorf("engine: result document has store schema v%d, this process runs v%d",
			rec.Version, StoreSchemaVersion)
	}
	if hashKey(rec.Key) != addr {
		return "", sim.Result{}, fmt.Errorf("engine: result document key hashes to %s, not the claimed address %s",
			hashKey(rec.Key)[:12], addr[:12])
	}
	return rec.Key, rec.Result, nil
}

// Adopt installs an externally computed result under its canonical key:
// into the memo (so Lookup and coalescing see it immediately) and the
// persisted store when one is configured. Callers must have verified the
// key/result pairing (ImportResult); Adopt trusts it. Cache counters are
// untouched — an adopted result was neither a hit nor a local
// simulation. The store write is best-effort like the engine's own.
func (e *Engine) Adopt(key string, res sim.Result) {
	e.mu.Lock()
	e.memo[key] = res
	e.mu.Unlock()
	if e.store != nil {
		e.store.Put(key, res) //nolint:errcheck // best-effort, like run's Put
	}
}
