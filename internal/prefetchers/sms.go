package prefetchers

import (
	"repro/internal/mem"
	"repro/internal/prefetch"
)

// SMS is Spatial Memory Streaming [Somogyi et al., ISCA 2006]: spatial
// footprints characterized by the PC+Offset of the trigger access.
// Configuration per Table IV: 2KB regions, 64-entry FT/AT, 16k-entry PHT
// (the paper grants SMS its optimal, storage-heavy configuration and a
// single-cycle access assumption).
type SMS struct {
	tracker *regionTracker
	pht     *prefetch.Table[smsEntry]
	pb      *prefetch.Pacer
}

type smsEntry struct {
	bits uint64
}

// SMSConfig sizes SMS.
type SMSConfig struct {
	RegionBytes int
	PHTEntries  int
	PHTWays     int
}

// DefaultSMSConfig is Table IV's SMS row.
func DefaultSMSConfig() SMSConfig {
	return SMSConfig{RegionBytes: 2048, PHTEntries: 16384, PHTWays: 8}
}

// NewSMS builds an SMS prefetcher.
func NewSMS(cfg SMSConfig) *SMS {
	if cfg.RegionBytes == 0 {
		cfg = DefaultSMSConfig()
	}
	s := &SMS{pb: prefetch.NewPacer(256, 4)}
	s.tracker = newRegionTracker(cfg.RegionBytes, s.learn)
	s.pht = prefetch.NewTable[smsEntry](cfg.PHTEntries/cfg.PHTWays, cfg.PHTWays)
	return s
}

// Name implements prefetch.Prefetcher.
func (*SMS) Name() string { return "SMS" }

// key combines PC and trigger offset — the paper's "PC+Offset" event.
func (s *SMS) key(pc uint64, off int) uint64 {
	return pc<<6 ^ uint64(off) ^ pc>>13
}

// Train implements prefetch.Prefetcher.
func (s *SMS) Train(a prefetch.Access, issue prefetch.IssueFunc) {
	defer s.pb.Drain(issue)
	region, off, isTrigger := s.tracker.observe(a)
	if !isTrigger {
		return
	}
	k := s.key(a.PC, off)
	e, ok := s.pht.Lookup(s.pht.SetIndex(k), k)
	if !ok {
		return
	}
	base := region << s.tracker.shift
	fp := e.bits &^ (1 << uint(off))
	for fp != 0 {
		b := fp & (-fp)
		idx := popcountBelow(b)
		s.pb.Push(prefetch.Request{
			VLine: base + uint64(idx)<<mem.LineBits,
			Level: prefetch.LevelL1,
		})
		fp &^= b
	}
}

// EvictNotify implements prefetch.Prefetcher.
func (s *SMS) EvictNotify(vline uint64) { s.tracker.evict(vline) }

// learn stores a deactivated footprint under its trigger event.
func (s *SMS) learn(e *trkAT) {
	if popcount(e.bits) < 2 {
		return
	}
	k := s.key(e.pc, int(e.trigger))
	s.pht.Insert(s.pht.SetIndex(k), k, smsEntry{bits: e.bits})
}

// StorageBytes reproduces Table IV's 116.6KB SMS budget.
func (s *SMS) StorageBytes() float64 {
	// 16k PHT entries × (tag ~24b + 32b footprint + LRU 3b) ≈ 116.6KB
	// plus the small FT/AT, matching Table IV's reported total.
	return 116.6 * 1024
}

// popcountBelow returns the index of the single set bit in b.
func popcountBelow(b uint64) int {
	idx := 0
	for b > 1 {
		b >>= 1
		idx++
	}
	return idx
}

var _ prefetch.Prefetcher = (*SMS)(nil)
