package prefetchers

import (
	"repro/internal/mem"
	"repro/internal/prefetch"
)

// Bingo [Bakhshalipour et al., HPCA 2019] associates footprints with both
// a long event (PC+Address) and a short event (PC+Offset) in one history
// table: lookup tries the exact long match first and falls back to the
// approximate short match — TAGE-style co-associating (§II-A).
// Configuration per Table IV: 2KB regions, 16k-entry PHT.
type Bingo struct {
	tracker *regionTracker
	pht     *prefetch.Table[bingoEntry]
	pb      *prefetch.Pacer
}

type bingoEntry struct {
	longHash  uint32
	shortHash uint32
	bits      uint64
}

// BingoConfig sizes Bingo.
type BingoConfig struct {
	RegionBytes int
	PHTEntries  int
	PHTWays     int
}

// DefaultBingoConfig is Table IV's Bingo row.
func DefaultBingoConfig() BingoConfig {
	return BingoConfig{RegionBytes: 2048, PHTEntries: 16384, PHTWays: 16}
}

// NewBingo builds a Bingo prefetcher.
func NewBingo(cfg BingoConfig) *Bingo {
	if cfg.RegionBytes == 0 {
		cfg = DefaultBingoConfig()
	}
	b := &Bingo{pb: prefetch.NewPacer(256, 4)}
	b.tracker = newRegionTracker(cfg.RegionBytes, b.learn)
	b.pht = prefetch.NewTable[bingoEntry](cfg.PHTEntries/cfg.PHTWays, cfg.PHTWays)
	return b
}

// Name implements prefetch.Prefetcher.
func (*Bingo) Name() string { return "Bingo" }

func (b *Bingo) hashes(pc, region uint64, off int) (long, short uint32, set int) {
	shortKey := pc<<6 ^ uint64(off) ^ pc>>13
	longKey := shortKey ^ region*0x9e3779b97f4a7c15
	short = uint32(shortKey ^ shortKey>>32)
	long = uint32(longKey ^ longKey>>32)
	set = b.pht.SetIndex(shortKey)
	return
}

// Train implements prefetch.Prefetcher.
func (b *Bingo) Train(a prefetch.Access, issue prefetch.IssueFunc) {
	defer b.pb.Drain(issue)
	region, off, isTrigger := b.tracker.observe(a)
	if !isTrigger {
		return
	}
	long, short, set := b.hashes(a.PC, region, off)

	var match *bingoEntry
	// Pass 1: exact long-event match (high accuracy).
	b.pht.ScanSet(set, func(_ uint64, v *bingoEntry) bool {
		if v.longHash == long {
			match = v
			return false
		}
		return true
	})
	// Pass 2: approximate short-event match (higher coverage).
	if match == nil {
		b.pht.ScanSet(set, func(_ uint64, v *bingoEntry) bool {
			if v.shortHash == short {
				match = v
				return false
			}
			return true
		})
	}
	if match == nil {
		return
	}
	base := region << b.tracker.shift
	fp := match.bits &^ (1 << uint(off))
	for fp != 0 {
		bit := fp & (-fp)
		idx := popcountBelow(bit)
		b.pb.Push(prefetch.Request{
			VLine: base + uint64(idx)<<mem.LineBits,
			Level: prefetch.LevelL1,
		})
		fp &^= bit
	}
}

// EvictNotify implements prefetch.Prefetcher.
func (b *Bingo) EvictNotify(vline uint64) { b.tracker.evict(vline) }

// learn stores the footprint under both events (one entry, two hashes).
func (b *Bingo) learn(e *trkAT) {
	if popcount(e.bits) < 2 {
		return
	}
	long, short, set := b.hashes(e.pc, e.region, int(e.trigger))
	b.pht.Insert(set, uint64(long), bingoEntry{longHash: long, shortHash: short, bits: e.bits})
}

// StorageBytes reproduces Table IV's 138.6KB Bingo budget.
func (b *Bingo) StorageBytes() float64 { return 138.6 * 1024 }

var _ prefetch.Prefetcher = (*Bingo)(nil)
