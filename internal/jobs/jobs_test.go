package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/sim"
)

// tiny keeps manager tests fast while still running real simulations.
var tiny = engine.Scale{TracesPerSuite: 1, TraceLen: 10_000, Warmup: 5_000, Sim: 20_000}

// testRequest is the spec body the test compiler understands: a fan of
// distinct prefetch-queue capacities over one trace + prefetcher — an
// arbitrarily long batch of non-coalescing engine jobs.
type testRequest struct {
	Prefetcher string `json:"prefetcher"`
	Fan        int    `json:"fan"`
}

// testCompiler compiles testRequest specs, mirroring how internal/server
// injects its request compilation.
func testCompiler(eng *engine.Engine) Compiler {
	return func(spec Spec) (*Plan, error) {
		if spec.Type != "fan" {
			return nil, fmt.Errorf("unknown type %q", spec.Type)
		}
		var req testRequest
		if err := json.Unmarshal(spec.Request, &req); err != nil {
			return nil, err
		}
		if req.Fan <= 0 || req.Prefetcher == "" {
			return nil, fmt.Errorf("bad fan request %+v", req)
		}
		jobs := make([]engine.Job, req.Fan)
		for i := range jobs {
			jobs[i] = engine.Job{
				Traces:    []string{"lbm-1274"},
				L1:        []string{req.Prefetcher},
				Overrides: engine.Overrides{PQCapacity: 8 + i},
			}
		}
		fp, _ := json.Marshal(req)
		scale := eng.Scale()
		return &Plan{
			Fingerprint: string(fp),
			Jobs:        jobs,
			Finalize: func(results []sim.Result) any {
				addrs := make([]string, len(jobs))
				ipc := 0.0
				for i, r := range results {
					addrs[i] = jobs[i].ContentAddress(scale)
					ipc += r.MeanIPC()
				}
				return map[string]any{"addresses": addrs, "ipc_sum": ipc}
			},
		}, nil
	}
}

func newManager(t *testing.T, opts Options) *Manager {
	t.Helper()
	if opts.Engine == nil {
		opts.Engine = engine.New(engine.Options{Scale: tiny})
	}
	if opts.Compile == nil {
		opts.Compile = testCompiler(opts.Engine)
	}
	m, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Shutdown(ctx) //nolint:errcheck
	})
	return m
}

func fanSpec(pf string, fan int, pri Priority) Spec {
	return Spec{
		Type:     "fan",
		Request:  json.RawMessage(fmt.Sprintf(`{"prefetcher":%q,"fan":%d}`, pf, fan)),
		Priority: pri,
	}
}

// waitState polls until the job reaches want (or any terminal state) and
// returns the final record.
func waitState(t *testing.T, m *Manager, id string, want State) Record {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		rec, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if rec.State == want || rec.State.Terminal() {
			if rec.State != want {
				t.Fatalf("job %s landed in %s (error %q), want %s", id, rec.State, rec.Error, want)
			}
			return rec
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return Record{}
}

func TestSubmitRunsAndCoalesces(t *testing.T) {
	m := newManager(t, Options{})
	rec, coalesced, err := m.Submit(fanSpec("IP-stride", 3, ""))
	if err != nil || coalesced {
		t.Fatalf("submit: coalesced=%v err=%v", coalesced, err)
	}
	if rec.State != Queued || rec.Spec.Priority != Normal {
		t.Fatalf("fresh record = %+v", rec)
	}
	final := waitState(t, m, rec.ID, Succeeded)
	if final.Progress.Done != 3 || final.Progress.Total != 3 {
		t.Errorf("progress = %+v, want 3/3", final.Progress)
	}

	// Byte-different spelling of the same request (whitespace, field
	// order) must coalesce onto the same content-addressed job — here
	// returning the already-succeeded record without re-running.
	again, coalesced, err := m.Submit(Spec{
		Type:    "fan",
		Request: json.RawMessage(`{ "fan": 3, "prefetcher": "IP-stride" }`),
	})
	if err != nil || !coalesced || again.ID != rec.ID {
		t.Fatalf("resubmit: id %s vs %s, coalesced=%v, err=%v", again.ID, rec.ID, coalesced, err)
	}

	doc, err := m.Result(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if doc.(map[string]any)["ipc_sum"].(float64) <= 0 {
		t.Errorf("result doc = %v", doc)
	}

	// Different work hashes differently.
	other, _, err := m.Submit(fanSpec("IP-stride", 4, ""))
	if err != nil {
		t.Fatal(err)
	}
	if other.ID == rec.ID {
		t.Error("distinct specs share an ID")
	}
}

func TestSubmitValidation(t *testing.T) {
	m := newManager(t, Options{})
	for name, spec := range map[string]Spec{
		"unknown type":     fanSpec("IP-stride", 2, ""), /* patched below */
		"bad priority":     fanSpec("IP-stride", 2, "urgent"),
		"uncompilable fan": fanSpec("IP-stride", 0, ""),
	} {
		if name == "unknown type" {
			spec.Type = "nope"
		}
		if _, _, err := m.Submit(spec); err == nil {
			t.Errorf("%s: submit accepted", name)
		}
	}
	if c := m.Counters(); c.Queued+c.Running+c.Succeeded+c.Failed > 0 {
		t.Errorf("rejected submissions left records: %+v", c)
	}
}

// TestPriorityLanes: with one worker busy on a long job, a high-priority
// submission overtakes an earlier normal one.
func TestPriorityLanes(t *testing.T) {
	eng := engine.New(engine.Options{Scale: tiny, Workers: 1})
	m := newManager(t, Options{Engine: eng, Workers: 1})

	long, _, err := m.Submit(fanSpec("IP-stride", 24, ""))
	if err != nil {
		t.Fatal(err)
	}
	normal, _, err := m.Submit(fanSpec("PMP", 2, Normal))
	if err != nil {
		t.Fatal(err)
	}
	high, _, err := m.Submit(fanSpec("Gaze", 2, High))
	if err != nil {
		t.Fatal(err)
	}

	waitState(t, m, long.ID, Succeeded)
	h := waitState(t, m, high.ID, Succeeded)
	n := waitState(t, m, normal.ID, Succeeded)
	if !h.Started.Before(n.Started) {
		t.Errorf("high lane started %v, after normal lane %v", h.Started, n.Started)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	eng := engine.New(engine.Options{Scale: tiny, Workers: 1})
	m := newManager(t, Options{Engine: eng, Workers: 1})

	running, _, err := m.Submit(fanSpec("IP-stride", 64, ""))
	if err != nil {
		t.Fatal(err)
	}
	queued, _, err := m.Submit(fanSpec("PMP", 2, ""))
	if err != nil {
		t.Fatal(err)
	}

	// The queued job cancels instantly, without ever starting.
	if _, err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	rec, _ := m.Get(queued.ID)
	if rec.State != Canceled || !rec.Started.IsZero() {
		t.Fatalf("queued cancel: %+v", rec)
	}
	// Cancelling a terminal job is a conflict.
	if _, err := m.Cancel(queued.ID); !errors.Is(err, ErrTerminal) {
		t.Errorf("second cancel err = %v, want ErrTerminal", err)
	}
	if _, err := m.Cancel("no-such-id"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown cancel err = %v, want ErrNotFound", err)
	}

	// The running job stops at a shard boundary: progress made, but short
	// of the full fan.
	waitState(t, m, running.ID, Running)
	deadline := time.Now().Add(30 * time.Second)
	for {
		rec, _ := m.Get(running.ID)
		if rec.Progress.Done > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("running job made no progress")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := m.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	final := waitState(t, m, running.ID, Canceled)
	if final.Progress.Done == 0 || final.Progress.Done >= final.Progress.Total {
		t.Errorf("canceled mid-flight, progress = %d/%d", final.Progress.Done, final.Progress.Total)
	}

	// A canceled job resubmits under the same ID and can finish.
	resub, coalesced, err := m.Submit(fanSpec("PMP", 2, ""))
	if err != nil || coalesced || resub.ID != queued.ID {
		t.Fatalf("resubmit after cancel: id %s vs %s, coalesced=%v, err=%v",
			resub.ID, queued.ID, coalesced, err)
	}
	waitState(t, m, resub.ID, Succeeded)
}

func TestQueueDepth(t *testing.T) {
	eng := engine.New(engine.Options{Scale: tiny, Workers: 1})
	m := newManager(t, Options{Engine: eng, Workers: 1, QueueDepth: 1})

	long, _, err := m.Submit(fanSpec("IP-stride", 32, ""))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, long.ID, Running) // off the queue, onto the worker
	if _, _, err := m.Submit(fanSpec("PMP", 2, "")); err != nil {
		t.Fatalf("first queued submit: %v", err)
	}
	if _, _, err := m.Submit(fanSpec("Gaze", 2, "")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
}

func TestWatchStreamsMonotonicProgress(t *testing.T) {
	m := newManager(t, Options{})
	rec, _, err := m.Submit(fanSpec("IP-stride", 8, ""))
	if err != nil {
		t.Fatal(err)
	}
	ch, stop, err := m.Watch(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	last, n := -1, 0
	var final Record
	for snap := range ch {
		if snap.Progress.Done < last {
			t.Fatalf("progress went backwards: %d after %d", snap.Progress.Done, last)
		}
		last = snap.Progress.Done
		final = snap
		n++
	}
	if final.State != Succeeded || n < 2 {
		t.Errorf("final = %s after %d events", final.State, n)
	}
	// Watching a terminal job yields exactly the final snapshot.
	ch, stop, err = m.Watch(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	snap, ok := <-ch
	if !ok || snap.State != Succeeded {
		t.Fatalf("terminal watch = %+v, %v", snap, ok)
	}
	if _, again := <-ch; again {
		t.Error("terminal watch channel not closed")
	}
}

// TestConcurrentSubmitCancel hammers the manager from many goroutines —
// its assertions are weak (everything terminal, no lost records) because
// its real job is giving -race something to chew on.
func TestConcurrentSubmitCancel(t *testing.T) {
	eng := engine.New(engine.Options{Scale: tiny})
	m := newManager(t, Options{Engine: eng, Workers: 3, QueueDepth: 1024})

	const goroutines = 8
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		ids []string
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 10; i++ {
				// Small spec space on purpose: concurrent identical
				// submissions exercise coalescing.
				rec, _, err := m.Submit(fanSpec("IP-stride", 1+src.Intn(4), ""))
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				mu.Lock()
				ids = append(ids, rec.ID)
				mu.Unlock()
				if src.Intn(3) == 0 {
					m.Cancel(rec.ID) //nolint:errcheck // racing a finishing job is the point
				}
				m.Counters()
				m.List()
			}
		}(g)
	}
	wg.Wait()

	deadline := time.Now().Add(60 * time.Second)
	for _, id := range ids {
		for {
			rec, ok := m.Get(id)
			if !ok {
				t.Fatalf("job %s lost", id)
			}
			if rec.State.Terminal() {
				if rec.State == Failed || rec.State == Interrupted {
					t.Errorf("job %s: %s (%s)", id, rec.State, rec.Error)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s", id, rec.State)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// TestJournalRecovery restarts a manager over a half-written journal:
// queued jobs must resume (and then run to completion), the job that was
// running at the crash must surface as interrupted, and the torn trailing
// line must be healed by compaction.
func TestJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	queuedSpec := fanSpec("IP-stride", 2, "")
	crashedSpec := fanSpec("PMP", 3, "")

	// Forge the journal a crashed process would leave: a queued job, a
	// job that had started running, and a torn final append.
	var lines []byte
	for _, e := range []entry{
		{Time: time.Now(), ID: "crashed-job", State: Queued, Spec: &crashedSpec},
		{Time: time.Now(), ID: "queued-job", State: Queued, Spec: &queuedSpec},
		{Time: time.Now(), ID: "crashed-job", State: Running},
	} {
		data, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(append(lines, data...), '\n')
	}
	lines = append(lines, []byte(`{"time":"2026-07-30T12:00:00Z","id":"torn`)...)
	if err := os.WriteFile(filepath.Join(dir, "journal.ndjson"), lines, 0o644); err != nil {
		t.Fatal(err)
	}

	m := newManager(t, Options{Dir: dir})
	c := m.Counters()
	if c.Recovered != 1 || c.Interrupted != 1 {
		t.Fatalf("counters after recovery = %+v, want 1 recovered / 1 interrupted", c)
	}

	// The queued job resumes and completes without resubmission.
	rec := waitState(t, m, "queued-job", Succeeded)
	if !rec.Recovered {
		t.Error("resumed job not marked recovered")
	}

	// The crashed job is surfaced, not silently re-run...
	crashed, ok := m.Get("crashed-job")
	if !ok || crashed.State != Interrupted || !crashed.Recovered {
		t.Fatalf("crashed job = %+v, want interrupted+recovered", crashed)
	}
	// ...and a resubmission re-queues it under its journaled ID — except
	// the ID was forged here, so it re-queues under the content address.
	resub, coalesced, err := m.Submit(crashedSpec)
	if err != nil || coalesced {
		t.Fatalf("resubmit interrupted: coalesced=%v err=%v", coalesced, err)
	}
	waitState(t, m, resub.ID, Succeeded)

	// Compaction healed the torn line: a fresh replay parses cleanly and
	// reproduces the table.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	m2 := newManager(t, Options{Dir: dir})
	if rec, ok := m2.Get("queued-job"); !ok || rec.State != Succeeded {
		t.Errorf("after second restart, queued-job = %+v", rec)
	}
	if rec, ok := m2.Get("crashed-job"); !ok || rec.State != Interrupted {
		t.Errorf("after second restart, crashed-job = %+v", rec)
	}
	if doc, err := m2.Result(resub.ID); err != nil {
		t.Errorf("result after restart: %v", err)
	} else if _, ok := doc.(json.RawMessage); !ok {
		t.Errorf("restarted result doc is %T, want persisted json.RawMessage", doc)
	}
}

// TestShutdownInterruptsRunning: an expired drain budget cancels running
// jobs, journals them interrupted, and a restarted manager surfaces them.
func TestShutdownInterruptsRunning(t *testing.T) {
	dir := t.TempDir()
	eng := engine.New(engine.Options{Scale: tiny, Workers: 1})
	m, err := Open(Options{Engine: eng, Compile: testCompiler(eng), Dir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := m.Submit(fanSpec("IP-stride", 256, ""))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, rec.ID, Running)

	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m.Shutdown(expired); err != nil {
		t.Fatal(err)
	}
	after, _ := m.Get(rec.ID)
	if after.State != Interrupted {
		t.Fatalf("after shutdown: %+v, want interrupted", after)
	}
	if after.Progress.Done >= after.Progress.Total {
		t.Errorf("drain cancelled nothing: %d/%d", after.Progress.Done, after.Progress.Total)
	}
	if _, _, err := m.Submit(fanSpec("Gaze", 1, "")); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after shutdown: %v, want ErrClosed", err)
	}

	m2 := newManager(t, Options{Dir: dir})
	rec2, ok := m2.Get(rec.ID)
	if !ok || rec2.State != Interrupted {
		t.Fatalf("restart surfaced %+v, want interrupted", rec2)
	}
}

// TestLostResultResubmits: a succeeded job whose persisted document has
// vanished (failed best-effort write + restart, manual cleanup) must not
// coalesce into a dead end — resubmission re-runs it under the same ID.
func TestLostResultResubmits(t *testing.T) {
	dir := t.TempDir()
	m := newManager(t, Options{Dir: dir})
	spec := fanSpec("IP-stride", 2, "")
	rec, _, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, rec.ID, Succeeded)

	// While the document exists, resubmission coalesces.
	if _, coalesced, err := m.Submit(spec); err != nil || !coalesced {
		t.Fatalf("intact result: coalesced=%v err=%v", coalesced, err)
	}

	// A durable manager serves the document from disk; losing the file
	// loses the result.
	if err := os.Remove(filepath.Join(dir, "results", rec.ID+".json")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Result(rec.ID); !errors.Is(err, ErrNotReady) {
		t.Fatalf("result after loss: %v, want ErrNotReady", err)
	}
	resub, coalesced, err := m.Submit(spec)
	if err != nil || coalesced || resub.ID != rec.ID {
		t.Fatalf("lost result resubmit: id %s vs %s, coalesced=%v, err=%v",
			resub.ID, rec.ID, coalesced, err)
	}
	waitState(t, m, rec.ID, Succeeded)
	if _, err := m.Result(rec.ID); err != nil {
		t.Fatalf("result after re-run: %v", err)
	}
}

// TestExecutorSeam: Options.Execute replaces how a job's engine jobs run
// (internal/cluster injects its coordinator dispatch here) while the
// manager keeps owning compilation, progress and finalization.
func TestExecutorSeam(t *testing.T) {
	eng := engine.New(engine.Options{Scale: tiny})
	var mu sync.Mutex
	calls, jobsSeen := 0, 0
	m := newManager(t, Options{
		Engine: eng,
		Execute: func(ctx context.Context, js []engine.Job, progress func(engine.Progress)) ([]sim.Result, error) {
			mu.Lock()
			calls++
			jobsSeen += len(js)
			mu.Unlock()
			return eng.RunAllContext(ctx, js, progress)
		},
	})
	rec, _, err := m.Submit(fanSpec("IP-stride", 2, ""))
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, m, rec.ID, Succeeded)
	if final.Progress.Done != 2 {
		t.Errorf("progress = %+v, want 2 done", final.Progress)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 || jobsSeen != 2 {
		t.Errorf("executor saw %d calls / %d jobs, want 1 / 2", calls, jobsSeen)
	}
}

// TestTimingsAndTracePersistAcrossReopen: a traced job's phase breakdown
// and trace ID are journaled with the terminal state, so a restarted
// manager — even one running without a tracer — still reports them.
func TestTimingsAndTracePersistAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	tracer := obs.NewTracer(obs.TracerOptions{})
	m := newManager(t, Options{Dir: dir, Tracer: tracer})

	rec, _, err := m.Submit(fanSpec("IP-stride", 2, ""))
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m, rec.ID, Succeeded)
	if done.TraceID == "" {
		t.Fatal("traced job has no trace id")
	}
	if done.Timings == nil {
		t.Fatal("terminal job has no timings")
	}
	var sum int64
	for _, ms := range done.Timings.Phases {
		sum += ms
	}
	// The phase decomposition must account for the wall clock: no phase
	// missing (sum far under total) and no double counting (sum over).
	if total := done.Timings.TotalMS; sum > total+1 || total-sum > total/2+50 {
		t.Errorf("phases sum to %dms, wall %dms", sum, total)
	}
	if done.Timings.Spans["engine.simulate"] == 0 {
		t.Errorf("span aggregate lacks engine.simulate: %v", done.Timings.Spans)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	m2 := newManager(t, Options{Dir: dir}) // no tracer on the reopened manager
	got, ok := m2.Get(rec.ID)
	if !ok || got.State != Succeeded {
		t.Fatalf("after reopen, job = %+v", got)
	}
	if got.TraceID != done.TraceID {
		t.Errorf("reopened trace id = %q, want %q", got.TraceID, done.TraceID)
	}
	if got.Timings == nil {
		t.Fatal("timings lost across reopen")
	}
	if !reflect.DeepEqual(got.Timings, done.Timings) {
		t.Errorf("timings changed across reopen:\nbefore %+v\nafter  %+v", done.Timings, got.Timings)
	}
}
