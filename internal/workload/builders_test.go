package workload

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

// kindOf runs a builder directly through a synthetic profile.
func kindRecords(t *testing.T, k kind, n int) []trace.Record {
	t.Helper()
	g := newGen("test-kind", profile{suite: "test", kind: k, gapMean: 5, intensity: 1, strideBlocks: 1})
	return g.records(n)
}

func TestAllKindsProduceRequestedLength(t *testing.T) {
	for k := kindStream; k <= kindClient; k++ {
		recs := kindRecords(t, k, 20000)
		if len(recs) != 20000 {
			t.Errorf("kind %d: %d records", k, len(recs))
		}
	}
}

func TestStreamKindVirtualContiguity(t *testing.T) {
	// Stream traces must contain long runs of +64-byte deltas (the food
	// for delta prefetchers like vBerti).
	recs := kindRecords(t, kindStream, 30000)
	perPC := map[uint64]uint64{}
	seq, total := 0, 0
	for _, r := range recs {
		if last, ok := perPC[r.PC]; ok {
			total++
			if r.Addr == last+mem.LineSize {
				seq++
			}
		}
		perPC[r.PC] = r.Addr
	}
	frac := float64(seq) / float64(total)
	if frac < 0.8 {
		t.Errorf("per-PC sequential fraction = %.2f, want >= 0.8", frac)
	}
}

func TestGraphComputeStreamingSignature(t *testing.T) {
	// Frontier regions must show the (trigger=0, second=1) streaming
	// signature that drives Gaze's §III-C path.
	recs := kindRecords(t, kindGraphCompute, 60000)
	type seen struct {
		first, second int
		n             int
	}
	regions := map[uint64]*seen{}
	for _, r := range recs {
		page := mem.PageNum(mem.Addr(r.Addr))
		off := mem.BlockOffset(mem.Addr(r.Addr))
		s := regions[page]
		if s == nil {
			regions[page] = &seen{first: off, second: -1, n: 1}
			continue
		}
		if s.n == 1 && off != s.first {
			s.second = off
			s.n = 2
		}
	}
	streamingStarts := 0
	for _, s := range regions {
		if s.first == 0 && s.second == 1 {
			streamingStarts++
		}
	}
	if streamingStarts == 0 {
		t.Error("graph compute produced no (0,1) streaming starts")
	}
}

func TestIrregularShortRuns(t *testing.T) {
	// The pointer-chase builder keeps ~25% two-line runs (heap objects
	// spanning lines) — verify they exist but don't dominate.
	recs := kindRecords(t, kindIrregular, 30000)
	runs, total := 0, 0
	for i := 1; i < len(recs); i++ {
		total++
		if recs[i].Addr == recs[i-1].Addr+mem.LineSize {
			runs++
		}
	}
	frac := float64(runs) / float64(total)
	if frac < 0.08 || frac > 0.35 {
		t.Errorf("short-run fraction = %.2f, want ~0.2", frac)
	}
}

func TestCloudChurn(t *testing.T) {
	// Cloud footprints drift over time: the set of distinct footprints in
	// the second half should not be identical to the first half.
	recs := kindRecords(t, kindCloud, 80000)
	half := len(recs) / 2
	a := AnalyzeFootprints(recs[:half])
	b := AnalyzeFootprints(recs[half:])
	if a.Regions == 0 || b.Regions == 0 {
		t.Fatal("no regions in cloud halves")
	}
	// Both halves remain trigger-ambiguous.
	if a.TriggerAmbiguity < 2 || b.TriggerAmbiguity < 2 {
		t.Errorf("ambiguity dropped: %.1f / %.1f", a.TriggerAmbiguity, b.TriggerAmbiguity)
	}
}

func TestServerVsClientIntensity(t *testing.T) {
	srv := kindRecords(t, kindServer, 20000)
	// Direct profile construction uses gapMean 5 for both, so compare via
	// catalogue entries which carry the real gap settings.
	srvRecs := MustGenerate("srv.09", 20000)
	cltRecs := MustGenerate("clt.fp.06", 20000)
	gap := func(rs []trace.Record) float64 {
		var g int
		for _, r := range rs {
			g += int(r.NonMem)
		}
		return float64(g) / float64(len(rs))
	}
	if gap(srvRecs) <= gap(cltRecs) {
		t.Errorf("server gap %.1f <= client gap %.1f", gap(srvRecs), gap(cltRecs))
	}
	_ = srv
}

func TestFamilyActivationConsistency(t *testing.T) {
	// Activating the same family twice (no noise) must reproduce both the
	// footprint and the access order — the Fig 2 property.
	g := newGen("fam-test", profile{gapMean: 2})
	f := g.newFamily(5, 9, 8, g.pcPool(1))
	a := g.activate(f, 100, noiseOpts{})
	b := g.activate(f, 200, noiseOpts{})
	if len(a.order) != len(b.order) {
		t.Fatal("activation lengths differ without noise")
	}
	for i := range a.order {
		if a.order[i] != b.order[i] {
			t.Fatalf("access order differs at %d without noise", i)
		}
	}
	if a.order[0] != 5 || a.order[1] != 9 {
		t.Errorf("first two offsets = %d,%d, want 5,9", a.order[0], a.order[1])
	}
}

func TestFamilyChurnPreservesHead(t *testing.T) {
	g := newGen("churn-test", profile{gapMean: 2})
	f := g.newFamily(3, 7, 12, g.pcPool(2))
	f.churn(g)
	if f.trigger() != 3 || f.second() != 7 {
		t.Error("churn modified the first two offsets")
	}
}

func TestFamilySetKeyStructure(t *testing.T) {
	g := newGen("set-test", profile{gapMean: 2})
	fams := g.familySet(4, 6, 2, 4, 10)
	if len(fams) != 24 {
		t.Fatalf("familySet size = %d, want 24", len(fams))
	}
	// (trigger, second) pairs must be unique — that is what Gaze keys on.
	seen := map[[2]int]bool{}
	triggerCounts := map[int]int{}
	for _, f := range fams {
		key := [2]int{f.trigger(), f.second()}
		if seen[key] {
			t.Errorf("duplicate (trigger,second) = %v", key)
		}
		seen[key] = true
		triggerCounts[f.trigger()]++
	}
	// Triggers must collide across groups (the ambiguity PMP suffers).
	collisions := 0
	for _, n := range triggerCounts {
		if n > 1 {
			collisions++
		}
	}
	if collisions == 0 {
		t.Error("no trigger-offset collisions in family set")
	}
}
