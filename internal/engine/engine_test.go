package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// tiny keeps engine tests fast: one short trace, tiny budgets.
var tiny = Scale{TracesPerSuite: 1, TraceLen: 10_000, Warmup: 5_000, Sim: 20_000}

func tinyJob(pf string) Job {
	return Job{Traces: []string{"lbm-1274"}, L1: []string{pf}}
}

func TestRunMemoizes(t *testing.T) {
	e := New(Options{Scale: tiny})
	a := e.Run(tinyJob("IP-stride"))
	b := e.Run(tinyJob("IP-stride"))
	if a.MeanIPC() != b.MeanIPC() {
		t.Error("memoized results differ")
	}
	c := e.Counters()
	if c.Simulated != 1 || c.MemoHits != 1 {
		t.Errorf("counters = %+v, want 1 simulated / 1 memo hit", c)
	}
}

func TestStoreHitAcrossEngines(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	first := New(Options{Scale: tiny, Store: store})
	a := first.Run(tinyJob("IP-stride"))
	if c := first.Counters(); c.Simulated != 1 {
		t.Fatalf("first engine counters = %+v", c)
	}

	// A fresh engine simulates nothing: the persisted store answers.
	second := New(Options{Scale: tiny, Store: store})
	b := second.Run(tinyJob("IP-stride"))
	c := second.Counters()
	if c.Simulated != 0 || c.StoreHits != 1 {
		t.Errorf("second engine counters = %+v, want 0 simulated / 1 store hit", c)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("store round-trip changed the result:\n%+v\n%+v", a, b)
	}

	// A different scale must not reuse the entry.
	bigger := tiny
	bigger.Sim *= 2
	third := New(Options{Scale: bigger, Store: store})
	third.Run(tinyJob("IP-stride"))
	if c := third.Counters(); c.Simulated != 1 {
		t.Errorf("scaled-up engine counters = %+v, want a recompute", c)
	}
}

func TestConcurrentIdenticalJobsCoalesce(t *testing.T) {
	e := New(Options{Scale: tiny})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.Run(tinyJob("IP-stride"))
		}()
	}
	wg.Wait()
	if c := e.Counters(); c.Simulated != 1 {
		t.Errorf("counters = %+v, want exactly 1 simulation for 8 identical jobs", c)
	}
}

func TestRunAllOrderAndProgress(t *testing.T) {
	var (
		mu     sync.Mutex
		events []Progress
	)
	e := New(Options{Scale: tiny, Workers: 2, Progress: func(p Progress) {
		mu.Lock()
		events = append(events, p)
		mu.Unlock()
	}})
	jobs := []Job{tinyJob("none"), tinyJob("IP-stride"), tinyJob("BOP"), tinyJob("none")}
	results := e.RunAll(jobs)
	if len(results) != len(jobs) {
		t.Fatalf("got %d results", len(results))
	}
	// Results are in input order: identical jobs get identical results.
	if !reflect.DeepEqual(results[0], results[3]) {
		t.Error("duplicate jobs returned different results")
	}
	if results[0].MeanIPC() <= 0 || results[1].MeanIPC() <= 0 {
		t.Error("results look empty")
	}
	if len(events) != len(jobs) {
		t.Fatalf("progress events = %d, want %d", len(events), len(jobs))
	}
	last := events[len(events)-1]
	if last.Done != len(jobs) || last.Total != len(jobs) {
		t.Errorf("final progress = %+v", last)
	}
	for i, p := range events {
		if p.Done != i+1 {
			t.Errorf("event %d: Done = %d, want %d", i, p.Done, i+1)
		}
	}
}

func TestRunAllDeterministicSharding(t *testing.T) {
	jobs := []Job{tinyJob("none"), tinyJob("IP-stride"), tinyJob("BOP")}
	run := func() []sim.Result {
		return New(Options{Scale: tiny, Workers: 2, Seed: 7}).RunAll(jobs)
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Error("identical seeds produced different sweep results")
	}
}

func TestContentAddressSeparatesScaleAndOverrides(t *testing.T) {
	j := tinyJob("Gaze")
	a := j.ContentAddress(tiny)
	if b := j.ContentAddress(Standard); a == b {
		t.Error("content address ignores scale")
	}
	overridden := j
	overridden.Overrides = Overrides{DRAMMTPS: 1600}
	if overridden.ContentAddress(tiny) == a {
		t.Error("content address ignores Overrides")
	}
	// TracesPerSuite only selects jobs; equal budgets must share entries.
	wider := tiny
	wider.TracesPerSuite = 99
	if j.ContentAddress(wider) != a {
		t.Error("content address depends on TracesPerSuite")
	}
	// A job overriding both budgets runs identically under every scale
	// with the same TraceLen — the scale's unused budgets must not split
	// the cache entry.
	pinned := j
	pinned.Overrides = Overrides{WarmupInstructions: 1000, SimInstructions: 5000}
	other := tiny
	other.Warmup, other.Sim = 77, 88
	if pinned.ContentAddress(tiny) != pinned.ContentAddress(other) {
		t.Error("content address depends on scale budgets the overrides replace")
	}
	// Prefetch-queue knobs cannot affect a no-prefetch run, so a PQ-swept
	// baseline must collapse onto the plain one (one cached denominator
	// per trace, not one per axis value) — while a prefetching job must
	// keep the knobs in its identity.
	baseline := Job{Traces: []string{"lbm-1274"}, L1: []string{"none"}}
	pqBaseline := baseline
	pqBaseline.Overrides = Overrides{PQCapacity: 8, PQDrainRate: 2}
	if baseline.ContentAddress(tiny) != pqBaseline.ContentAddress(tiny) {
		t.Error("PQ overrides split the no-prefetch baseline's cache entry")
	}
	pqJob := j
	pqJob.Overrides = Overrides{PQCapacity: 8}
	if pqJob.ContentAddress(tiny) == j.ContentAddress(tiny) {
		t.Error("PQ overrides ignored for a prefetching job")
	}
}

// TestContentAddressNormalizesSpellings: spellings that run the same
// simulation must share one cache entry.
func TestContentAddressNormalizesSpellings(t *testing.T) {
	two := Job{Traces: []string{"lbm-1274", "lbm-1274"}, L1: []string{"Gaze"}}
	broadcast := Job{Traces: []string{"lbm-1274", "lbm-1274"}, L1: []string{"Gaze", "Gaze"}}
	if two.ContentAddress(tiny) != broadcast.ContentAddress(tiny) {
		t.Error("broadcast and explicit prefetcher slices hash differently")
	}
	none := Job{Traces: []string{"lbm-1274"}, L1: []string{"none"}}
	empty := Job{Traces: []string{"lbm-1274"}, L1: []string{""}}
	absent := Job{Traces: []string{"lbm-1274"}}
	if none.ContentAddress(tiny) != empty.ContentAddress(tiny) ||
		none.ContentAddress(tiny) != absent.ContentAddress(tiny) {
		t.Error(`"none", "" and absent prefetcher slices hash differently`)
	}
	if none.ContentAddress(tiny) == two.ContentAddress(tiny) {
		t.Error("distinct jobs share a content address")
	}
}

func TestOverridesAffectExecution(t *testing.T) {
	e := New(Options{Scale: tiny})
	def := e.Run(tinyJob("none"))
	throttled := tinyJob("none")
	throttled.Overrides = Overrides{DRAMMTPS: 200}
	slow := e.Run(throttled)
	if slow.MeanIPC() >= def.MeanIPC() {
		t.Errorf("200 MTPS IPC %.3f >= default IPC %.3f", slow.MeanIPC(), def.MeanIPC())
	}
	if c := e.Counters(); c.Simulated != 2 {
		t.Errorf("counters = %+v, want 2 distinct simulations", c)
	}
}

// TestSweepGeneratesTraceOnce runs a sharded sweep — many prefetchers
// over one trace, across several workers (exercised under -race in CI) —
// and asserts the materialized-trace cache generated the trace exactly
// once for the whole sweep.
func TestSweepGeneratesTraceOnce(t *testing.T) {
	workload.ResetTraceCache()
	e := New(Options{Scale: tiny, Workers: 4})
	jobs := []Job{
		{Traces: []string{"soplex-66"}, L1: []string{"none"}},
		{Traces: []string{"soplex-66"}, L1: []string{"Gaze"}},
		{Traces: []string{"soplex-66"}, L1: []string{"PMP"}},
		{Traces: []string{"soplex-66"}, L1: []string{"Bingo"}},
		{Traces: []string{"soplex-66"}, L1: []string{"SPP-PPF"}},
		{Traces: []string{"soplex-66"}, L1: []string{"IP-stride"}},
		{Traces: []string{"soplex-66"}, L1: []string{"Gaze"}, Overrides: Overrides{PQCapacity: 16}},
		{Traces: []string{"soplex-66"}, L1: []string{"Gaze"}, Overrides: Overrides{DRAMMTPS: 1600}},
	}
	e.RunAll(jobs)

	st := workload.TraceCacheStats()
	if st.Misses != 1 {
		t.Errorf("sweep generated the trace %d times, want exactly once", st.Misses)
	}
	if st.Entries != 1 {
		t.Errorf("trace cache holds %d entries, want 1", st.Entries)
	}
	stats := e.Stats()
	if stats.TraceCacheMisses != 1 || stats.TraceCacheEntries != 1 {
		t.Errorf("engine.Stats trace cache = %+v, want 1 miss / 1 entry", stats)
	}
	if stats.TraceCacheBytes != int64(tiny.TraceLen)*trace.RecordBytes {
		t.Errorf("trace_cache_bytes = %d, want %d",
			stats.TraceCacheBytes, int64(tiny.TraceLen)*trace.RecordBytes)
	}
}

func TestEstimateRemaining(t *testing.T) {
	// No simulated completions yet → no cost sample → unknown (zero),
	// not a near-zero extrapolation from cache hits.
	if got := estimateRemaining(time.Minute, 0, 50, 100); got != 0 {
		t.Errorf("all-cached ETA = %v, want 0", got)
	}
	// Mean cost excludes cached jobs: 10 jobs done but only 2 simulated
	// in 20s → 10s per simulated job, 90 jobs left → 900s.
	if got := estimateRemaining(20*time.Second, 2, 10, 100); got != 900*time.Second {
		t.Errorf("ETA = %v, want 900s", got)
	}
	// Completion and overshoot (interleaved concurrent sweeps) clamp to
	// zero rather than going negative.
	if got := estimateRemaining(time.Minute, 4, 100, 100); got != 0 {
		t.Errorf("completed-sweep ETA = %v, want 0", got)
	}
	if got := estimateRemaining(time.Minute, 4, 101, 100); got != 0 {
		t.Errorf("overshot ETA = %v, want 0 (never negative)", got)
	}
}

func TestScaleByName(t *testing.T) {
	for name, want := range map[string]Scale{"quick": Quick, "standard": Standard, "full": Full} {
		got, err := ScaleByName(name)
		if err != nil || got != want {
			t.Errorf("ScaleByName(%q) = %+v, %v", name, got, err)
		}
	}
	if _, err := ScaleByName("huge"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestBroadcast(t *testing.T) {
	if got := Broadcast([]string{"x"}, 3); len(got) != 3 || got[2] != "x" {
		t.Errorf("broadcast = %v", got)
	}
	if got := Broadcast([]string{"a", "b"}, 2); got[0] != "a" || got[1] != "b" {
		t.Errorf("exact-length broadcast = %v", got)
	}
}

func TestJobValidate(t *testing.T) {
	good := Job{Traces: []string{"lbm-1274"}, L1: []string{"Gaze"}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid job rejected: %v", err)
	}
	four := []string{"lbm-1274", "lbm-1274", "lbm-1274", "lbm-1274"}
	bad := []Job{
		{}, // no traces
		{Traces: []string{"lbm-1274", "lbm-1274", "lbm-1274"}},                   // non-pow2 cores
		{Traces: []string{"no-such-trace"}},                                      // unknown trace
		{Traces: []string{"lbm-1274"}, L1: []string{"xx"}},                       // unknown L1
		{Traces: []string{"lbm-1274"}, L1: []string{"Gaze"}, L2: []string{"xx"}}, // unknown L2
		{Traces: four, L1: []string{"Gaze", "PMP", "BOP"}},                       // 3 L1 names on 4 cores
		{Traces: four, L1: []string{"Gaze"}, L2: []string{"BOP", "BOP"}},         // 2 L2 names on 4 cores
		{Traces: []string{"lbm-1274"}, Overrides: Overrides{DRAMMTPS: -5}},       // out-of-range override
		{Traces: []string{"lbm-1274"}, Overrides: Overrides{L2KB: 1 << 30}},      // absurd override
	}
	for _, j := range bad {
		if err := j.Validate(); err == nil {
			t.Errorf("Validate(%v) accepted an invalid job", j)
		}
	}
}

// brokenSource resolves a name at validation time but fails to load it —
// the shape of a registry trace deleted (or damaged on disk) between
// validation and execution.
type brokenSource struct{ name string }

func (b brokenSource) Exists(name string) bool { return name == b.name }
func (b brokenSource) Load(string, int) ([]trace.Record, error) {
	return nil, errSupply
}

var errSupply = fmt.Errorf("trace supply failed")

// TestTraceSupplyFailureSurfacesAsError: a trace that stops materializing
// mid-flight must flow out of RunContext/RunAllContext as an error — not
// a process-killing panic, not silent zero results.
func TestTraceSupplyFailureSurfacesAsError(t *testing.T) {
	workload.ResetSources()
	workload.ResetTraceCache()
	t.Cleanup(workload.ResetSources)
	t.Cleanup(workload.ResetTraceCache)
	name := workload.IngestedName("feedfacefeedfacefeedfacefeedfacefeedfacefeedfacefeedfacefeedface")
	workload.RegisterSource(brokenSource{name: name})

	e := New(Options{Scale: tiny})
	job := Job{Traces: []string{name}, L1: []string{"none"}}
	if err := job.Validate(); err != nil {
		t.Fatalf("job should validate while the source resolves it: %v", err)
	}
	if _, err := e.RunContext(context.Background(), job); !errors.Is(err, errSupply) {
		t.Fatalf("RunContext err = %v, want the supply error", err)
	}
	// The sweep path returns the first job error rather than zero rows.
	results, err := e.RunAllContext(context.Background(), []Job{job, tinyJob("none")}, nil)
	if !errors.Is(err, errSupply) {
		t.Fatalf("RunAllContext err = %v, want the supply error", err)
	}
	_ = results
	// The engine is not poisoned: catalogue jobs still run.
	if res := e.Run(tinyJob("IP-stride")); res.MeanIPC() <= 0 {
		t.Error("engine unusable after a supply failure")
	}
}
