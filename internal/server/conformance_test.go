package server

// The server-wide HTTP conformance harness: one table enumerating every
// endpoint and its malformed-input cases, asserting the three things
// clients program against — the status code, the Content-Type, and the
// error-body contract (every handler-generated error is a JSON object
// with a non-empty "error" string; router-generated 404/405 are plain
// text). New endpoints must add rows here; the coverage check at the
// bottom fails the suite if a registered route has no row.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/traceset"
	"repro/internal/workload"
)

// conformanceCase is one request → response-contract row.
type conformanceCase struct {
	name   string
	method string
	path   string
	body   string // sent as application/json when non-empty

	wantStatus int
	// wantJSONError asserts the {"error": "..."} body shape (implied for
	// every 4xx/5xx from our handlers).
	wantJSONError bool
	// wantCT overrides the expected Content-Type prefix (default:
	// application/json for handler responses).
	wantCT string
}

func conformanceServer(t *testing.T) *httptest.Server {
	t.Helper()
	eng := engine.New(engine.Options{Scale: tiny})
	mgr, err := jobs.Open(jobs.Options{Engine: eng, Compile: Compiler(eng), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Shutdown(context.Background()) }) //nolint:errcheck
	reg, err := traceset.Open(t.TempDir(), traceset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	workload.ResetSources()
	workload.RegisterSource(reg)
	t.Cleanup(workload.ResetSources)
	coord := cluster.NewCoordinator(cluster.CoordinatorOptions{Engine: eng})
	tracer := obs.NewTracer(obs.TracerOptions{})
	ts := httptest.NewServer(New(eng).AttachJobs(mgr).AttachTraces(reg).AttachCluster(coord).AttachTracer(tracer).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestHTTPConformance(t *testing.T) {
	const missingAddr = "0000000000000000000000000000000000000000000000000000000000000000"
	cases := []conformanceCase{
		// Health and catalogue reads.
		{name: "healthz ok", method: "GET", path: "/healthz", wantStatus: 200},
		{name: "readyz ok", method: "GET", path: "/readyz", wantStatus: 200},
		{name: "traces ok", method: "GET", path: "/traces", wantStatus: 200},
		{name: "traces unknown suite", method: "GET", path: "/traces?suite=nope", wantStatus: 400, wantJSONError: true},
		{name: "prefetchers ok", method: "GET", path: "/prefetchers", wantStatus: 200},
		{name: "stats ok", method: "GET", path: "/stats", wantStatus: 200},
		{name: "metrics ok", method: "GET", path: "/metrics", wantStatus: 200, wantCT: "text/plain"},

		// Trace registry.
		{name: "trace upload garbage", method: "POST", path: "/traces?name=x", body: "not a trace",
			wantStatus: 400, wantJSONError: true},
		{name: "trace manifest missing", method: "GET", path: "/traces/" + missingAddr, wantStatus: 404, wantJSONError: true},
		{name: "trace data missing", method: "GET", path: "/traces/" + missingAddr + "/data", wantStatus: 404, wantJSONError: true},
		{name: "trace delete missing", method: "DELETE", path: "/traces/" + missingAddr, wantStatus: 404, wantJSONError: true},

		// Synchronous simulation endpoints: malformed JSON, unknown field,
		// semantic validation.
		{name: "simulate ok", method: "POST", path: "/simulate",
			body: `{"trace":"lbm-1274","prefetcher":"Gaze"}`, wantStatus: 200},
		{name: "simulate malformed json", method: "POST", path: "/simulate",
			body: `{"trace":`, wantStatus: 400, wantJSONError: true},
		{name: "simulate unknown field", method: "POST", path: "/simulate",
			body: `{"trace":"lbm-1274","prefetcher":"Gaze","bogus":1}`, wantStatus: 400, wantJSONError: true},
		{name: "simulate unknown override knob", method: "POST", path: "/simulate",
			body: `{"trace":"lbm-1274","prefetcher":"Gaze","overrides":{"llc_mb":1}}`, wantStatus: 400, wantJSONError: true},
		{name: "simulate unknown trace", method: "POST", path: "/simulate",
			body: `{"trace":"nope","prefetcher":"Gaze"}`, wantStatus: 400, wantJSONError: true},
		{name: "simulate empty body", method: "POST", path: "/simulate",
			body: " ", wantStatus: 400, wantJSONError: true},
		{name: "sweep malformed json", method: "POST", path: "/sweep",
			body: `[`, wantStatus: 400, wantJSONError: true},
		{name: "sweep unknown prefetcher", method: "POST", path: "/sweep",
			body: `{"traces":["lbm-1274"],"prefetchers":["nope"]}`, wantStatus: 400, wantJSONError: true},
		{name: "sweep axis without values", method: "POST", path: "/sweep",
			body:       `{"traces":["lbm-1274"],"prefetchers":["Gaze"],"axis":{"param":"llc_mb_per_core"}}`,
			wantStatus: 400, wantJSONError: true},

		// Analytics reads.
		{name: "analytics matrix ok", method: "GET",
			path: "/analytics/matrix?traces=lbm-1274&prefetchers=Gaze", wantStatus: 200},
		{name: "analytics matrix unknown param", method: "GET",
			path: "/analytics/matrix?bogus=1", wantStatus: 400, wantJSONError: true},
		{name: "analytics speedup ok", method: "GET",
			path: "/analytics/speedup?traces=lbm-1274&prefetchers=Gaze", wantStatus: 200},
		{name: "analytics speedup rejects axis", method: "GET",
			path:       "/analytics/speedup?traces=lbm-1274&param=llc_mb_per_core&values=1",
			wantStatus: 400, wantJSONError: true},
		{name: "analytics timeline ok", method: "GET",
			path: "/analytics/timeline?trace=lbm-1274&prefetchers=Gaze", wantStatus: 200},
		{name: "analytics timeline unknown param", method: "GET",
			path: "/analytics/timeline?trace=lbm-1274&bogus=1", wantStatus: 400, wantJSONError: true},
		{name: "analytics timeline unknown trace", method: "GET",
			path: "/analytics/timeline?trace=nope", wantStatus: 400, wantJSONError: true},
		{name: "analytics timeline missing trace", method: "GET",
			path: "/analytics/timeline?prefetchers=Gaze", wantStatus: 400, wantJSONError: true},

		// Timeline documents.
		{name: "timeline missing", method: "GET", path: "/results/" + missingAddr + "/timeline",
			wantStatus: 404, wantJSONError: true},
		{name: "timeline unknown param", method: "GET", path: "/results/" + missingAddr + "/timeline?bogus=1",
			wantStatus: 400, wantJSONError: true},
		{name: "timeline unknown format", method: "GET", path: "/results/" + missingAddr + "/timeline?format=xml",
			wantStatus: 400, wantJSONError: true},

		// Jobs API.
		{name: "job submit malformed", method: "POST", path: "/jobs",
			body: `{"type":`, wantStatus: 400, wantJSONError: true},
		{name: "job submit unknown type", method: "POST", path: "/jobs",
			body: `{"type":"nope","request":{}}`, wantStatus: 400, wantJSONError: true},
		{name: "job list ok", method: "GET", path: "/jobs", wantStatus: 200},
		{name: "job list unknown state", method: "GET", path: "/jobs?state=bogus", wantStatus: 400, wantJSONError: true},
		{name: "job list bad limit", method: "GET", path: "/jobs?limit=x", wantStatus: 400, wantJSONError: true},
		{name: "job list unknown cursor", method: "GET", path: "/jobs?after=nope", wantStatus: 400, wantJSONError: true},
		{name: "job get missing", method: "GET", path: "/jobs/nope", wantStatus: 404, wantJSONError: true},
		{name: "job result missing", method: "GET", path: "/jobs/nope/result", wantStatus: 404, wantJSONError: true},
		{name: "job events missing", method: "GET", path: "/jobs/nope/events", wantStatus: 404, wantJSONError: true},
		{name: "job cancel missing", method: "DELETE", path: "/jobs/nope", wantStatus: 404, wantJSONError: true},

		// Admin.
		{name: "admin gc bad duration", method: "POST", path: "/admin/gc",
			body: `{"max_age":"soon"}`, wantStatus: 400, wantJSONError: true},
		{name: "admin gc unknown field", method: "POST", path: "/admin/gc",
			body: `{"bogus":true}`, wantStatus: 400, wantJSONError: true},
		{name: "admin gc no store", method: "POST", path: "/admin/gc",
			body: `{}`, wantStatus: 409, wantJSONError: true},

		// Cluster API.
		{name: "cluster info ok", method: "GET", path: "/cluster", wantStatus: 200},
		{name: "cluster register malformed", method: "POST", path: "/cluster/workers",
			body: `{"name":`, wantStatus: 400, wantJSONError: true},
		{name: "cluster register incompatible", method: "POST", path: "/cluster/workers",
			body: `{"concurrency":1,"store_schema_version":999}`, wantStatus: 409, wantJSONError: true},
		{name: "cluster deregister unknown", method: "DELETE", path: "/cluster/workers/nope",
			wantStatus: 404, wantJSONError: true},
		{name: "cluster heartbeat unknown", method: "POST", path: "/cluster/workers/nope/heartbeat",
			body: `{}`, wantStatus: 404, wantJSONError: true},
		{name: "cluster lease unknown worker", method: "POST", path: "/cluster/lease",
			body: `{"worker_id":"nope"}`, wantStatus: 404, wantJSONError: true},
		{name: "cluster result garbage", method: "PUT", path: "/cluster/results/" + missingAddr,
			body: "not a result document", wantStatus: 400, wantJSONError: true},
		{name: "cluster telemetry garbage", method: "PUT", path: "/cluster/telemetry/" + missingAddr,
			body: "not a telemetry document", wantStatus: 400, wantJSONError: true},
		{name: "cluster fail unknown unit", method: "POST", path: "/cluster/failures/" + missingAddr,
			body: `{"worker_id":"nope","error":"boom"}`, wantStatus: 200},

		// Debug traces.
		{name: "debug traces ok", method: "GET", path: "/debug/traces", wantStatus: 200},
		{name: "debug traces bad limit", method: "GET", path: "/debug/traces?limit=x",
			wantStatus: 400, wantJSONError: true},
		{name: "debug traces unknown job", method: "GET", path: "/debug/traces?job=nope",
			wantStatus: 404, wantJSONError: true},

		// Router-level conformance: unknown path and wrong method come
		// from net/http's mux as plain text.
		{name: "unknown path", method: "GET", path: "/no/such/endpoint", wantStatus: 404, wantCT: "text/plain"},
		{name: "wrong method", method: "DELETE", path: "/stats", wantStatus: 405, wantCT: "text/plain"},
		{name: "wrong method simulate", method: "GET", path: "/simulate", wantStatus: 405, wantCT: "text/plain"},
	}

	ts := conformanceServer(t)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body io.Reader
			if tc.body != "" {
				body = strings.NewReader(tc.body)
			}
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, body)
			if err != nil {
				t.Fatal(err)
			}
			if tc.body != "" {
				req.Header.Set("Content-Type", "application/json")
			}
			r, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Body.Close()
			if r.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", r.StatusCode, tc.wantStatus)
			}
			wantCT := tc.wantCT
			if wantCT == "" {
				wantCT = "application/json"
			}
			if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, wantCT) {
				t.Errorf("content type = %q, want prefix %q", ct, wantCT)
			}
			if tc.wantJSONError {
				var e struct {
					Error string `json:"error"`
				}
				if err := json.NewDecoder(r.Body).Decode(&e); err != nil {
					t.Fatalf("error body is not JSON: %v", err)
				}
				if e.Error == "" {
					t.Error(`error body missing non-empty "error" field`)
				}
			}
		})
	}

	// Route coverage: every pattern Handler registers must appear in the
	// table (matched on method + first path segment), so an endpoint
	// added without conformance rows fails here, not in code review.
	t.Run("route coverage", func(t *testing.T) {
		covered := make(map[string]bool)
		for _, tc := range cases {
			covered[tc.method+" /"+firstSegment(tc.path)] = true
		}
		for _, route := range []string{
			"GET /healthz", "GET /readyz", "GET /traces", "POST /traces", "DELETE /traces",
			"GET /prefetchers", "GET /stats", "GET /metrics",
			"GET /analytics", "GET /results", "POST /admin",
			"POST /simulate", "POST /sweep",
			"POST /jobs", "GET /jobs", "DELETE /jobs",
			"GET /cluster", "POST /cluster", "PUT /cluster", "DELETE /cluster",
			"GET /debug",
		} {
			if !covered[route] {
				t.Errorf("registered route %q has no conformance case", route)
			}
		}
	})
}

func firstSegment(path string) string {
	path = strings.TrimPrefix(path, "/")
	if i := strings.IndexAny(path, "/?"); i >= 0 {
		path = path[:i]
	}
	return path
}
