// Package prefetchers implements the seven state-of-the-art prefetchers
// the paper evaluates against Gaze (§IV-A2): IP-stride, SMS, Bingo,
// DSPatch, PMP, IPCP, SPP-PPF and vBerti, each configured per Table IV.
// All operate as L1D prefetchers on virtual addresses, like Gaze.
package prefetchers

import (
	"repro/internal/mem"
	"repro/internal/prefetch"
)

// IPStride is the commercial per-instruction stride prefetcher baseline
// [Doweck, Intel whitepaper 2006]: per-PC last address + stride with a
// 2-bit confidence counter.
type IPStride struct {
	table  *prefetch.Table[ipStrideEntry]
	degree int
}

type ipStrideEntry struct {
	lastLine int64
	stride   int64
	conf     int8
}

// NewIPStride returns an IP-stride prefetcher with a 64-entry IP table and
// the given prefetch degree (0 selects the default of 3).
func NewIPStride(degree int) *IPStride {
	if degree <= 0 {
		degree = 3
	}
	return &IPStride{table: prefetch.NewTable[ipStrideEntry](16, 4), degree: degree}
}

// Name implements prefetch.Prefetcher.
func (*IPStride) Name() string { return "IP-stride" }

// Train implements prefetch.Prefetcher.
func (p *IPStride) Train(a prefetch.Access, issue prefetch.IssueFunc) {
	line := int64(a.VAddr >> mem.LineBits)
	set := p.table.SetIndex(a.PC >> 2)
	e, ok := p.table.Lookup(set, a.PC)
	if !ok {
		p.table.Insert(set, a.PC, ipStrideEntry{lastLine: line})
		return
	}
	stride := line - e.lastLine
	if stride == 0 {
		return
	}
	if stride == e.stride {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		if e.conf > 0 {
			e.conf--
		}
		if e.conf == 0 {
			e.stride = stride
		}
	}
	e.lastLine = line
	if e.conf >= 2 && e.stride != 0 {
		for d := 1; d <= p.degree; d++ {
			target := line + int64(d)*e.stride
			if target <= 0 {
				break
			}
			issue(prefetch.Request{
				VLine: uint64(target) << mem.LineBits,
				Level: prefetch.LevelL1,
			})
		}
	}
}

// EvictNotify implements prefetch.Prefetcher.
func (*IPStride) EvictNotify(uint64) {}

// StorageBytes returns the metadata budget (64 entries × ~11B).
func (p *IPStride) StorageBytes() float64 { return 64 * 11 }

var _ prefetch.Prefetcher = (*IPStride)(nil)
