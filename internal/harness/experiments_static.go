package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/prefetchers"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Table1 reproduces Table I: Gaze's per-structure storage breakdown,
// computed from the structure geometry.
func Table1(_ *Runner) []stats.Table {
	g := core.NewDefault()
	t := stats.Table{
		Title:  "Table I: Gaze storage requirements",
		Header: []string{"structure", "description", "storage"},
	}
	var total float64
	for _, item := range g.StorageBreakdown() {
		t.AddRow(item.Structure, item.Description, fmt.Sprintf("%.0fB", item.Bytes()))
		total += item.Bytes()
	}
	t.AddRow("Total", "", fmt.Sprintf("%.2fKB", total/1024))
	return []stats.Table{t}
}

// Table4 reproduces Table IV: configuration and storage overhead of the
// evaluated prefetchers.
func Table4(_ *Runner) []stats.Table {
	t := stats.Table{
		Title:  "Table IV: evaluated prefetchers — configuration and storage",
		Header: []string{"prefetcher", "configuration", "storage"},
	}
	configs := []struct{ name, cfg string }{
		{"SMS", "2KB region, 64-entry FT/AT, 16k-entry PHT, fast access"},
		{"Bingo", "2KB region, 64-entry FT/AT, 16k-entry PHT, fast access"},
		{"DSPatch", "2KB region, 64-entry PageBuffer, 256-entry SPT"},
		{"PMP", "4KB region, 64-entry FT/AT, 64-entry OPT, 32-entry PPT, MaxConf 32, L1/L2 thresh 0.5/0.15"},
		{"IPCP-L1", "64-entry IP table, 128-entry CSPT"},
		{"SPP-PPF", "per [Bhatia et al. 2019]"},
		{"vBerti", "virtual address, eight-page prefetch range"},
		{"Gaze", "4KB region, 64-entry FT/AT, 256-entry PHT, 8-entry DPCT, 32-entry PB"},
	}
	for _, c := range configs {
		p := prefetchers.MustNew(c.name)
		storage, _ := prefetchers.StorageBytes(p)
		t.AddRow(c.name, c.cfg, fmt.Sprintf("%.2fKB", storage/1024))
	}
	return []stats.Table{t}
}

// Fig02 reproduces the Figure 2 motivation quantitatively: the footprint
// structure of a fotonik3d-like workload — regions whose trigger offsets
// collide but whose first-two-access order disambiguates the pattern.
func Fig02(r *Runner) []stats.Table {
	t := stats.Table{
		Title:  "Fig 2 (motivation): footprint structure of representative traces",
		Note:   "TriggerAmbiguity = distinct footprints observed per trigger offset; >1 defeats offset-only keying",
		Header: []string{"trace", "regions", "mean density", "dense", "1-block", "trigger ambiguity"},
	}
	for _, tr := range []string{"fotonik3d_s-8225", "lbm-1274", "mcf_s-1554", "cassandra-p0c0", "PageRank-61"} {
		recs := workload.MustGenerate(tr, r.Scale().TraceLen)
		st := workload.AnalyzeFootprints(recs)
		t.AddRow(tr,
			fmt.Sprint(st.Regions),
			stats.F(st.MeanDensity, 1),
			fmt.Sprint(st.Dense),
			fmt.Sprint(st.SingleBlock),
			stats.F(st.TriggerAmbiguity, 2))
	}
	return []stats.Table{t}
}
