package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cache"
	"repro/internal/sim"
)

func sampleResult() sim.Result {
	return sim.Result{
		Cores: []sim.CoreResult{{
			IPC:          1.234,
			Instructions: 150_000,
			L1D:          cache.Stats{DemandAccesses: 10, DemandMisses: 3, UsefulPrefetches: 2},
			L2C:          cache.Stats{DemandMisses: 1, UselessPrefetches: 1},
		}},
		LLC:            cache.Stats{DemandMisses: 7},
		DRAMRequests:   42,
		DRAMRowHitRate: 0.625,
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := sampleResult()
	if _, ok := s.Get("k1"); ok {
		t.Fatal("empty store reported a hit")
	}
	if err := s.Put("k1", want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("k1")
	if !ok {
		t.Fatal("stored entry missing")
	}
	if got.MeanIPC() != want.MeanIPC() || got.Accuracy() != want.Accuracy() ||
		got.DRAMRequests != want.DRAMRequests || got.LLC.DemandMisses != want.LLC.DemandMisses {
		t.Errorf("round-trip mismatch: got %+v want %+v", got, want)
	}
	if n := s.Len(); n != 1 {
		t.Errorf("Len = %d, want 1", n)
	}
}

func TestStoreCorruptedEntryRecovers(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k1", sampleResult()); err != nil {
		t.Fatal(err)
	}
	p := s.path("k1")
	if err := os.WriteFile(p, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k1"); ok {
		t.Fatal("corrupted entry returned a hit")
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Error("corrupted entry not deleted")
	}
	// The store must accept a fresh Put for the same key afterwards.
	if err := s.Put("k1", sampleResult()); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k1"); !ok {
		t.Error("recomputed entry missing after recovery")
	}
}

func TestStoreRejectsVersionAndKeyMismatch(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k1", sampleResult()); err != nil {
		t.Fatal(err)
	}
	// A record stored under k1's hash path but claiming a different key
	// (hash collision, or a tool writing the wrong file) must miss.
	data, err := os.ReadFile(s.path("k1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path("k1"),
		[]byte(string(data[:len(data)-1])+`}`), 0o644); err != nil { // keep JSON valid
		t.Fatal(err)
	}
	forged := fmt.Appendf(nil, `{"version":%d,"key":"other","result":{}}`, StoreSchemaVersion)
	if err := os.WriteFile(s.path("k1"), forged, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k1"); ok {
		t.Error("key-mismatched record returned a hit")
	}

	stale := []byte(`{"version":999,"key":"k2","result":{}}`)
	if err := os.MkdirAll(filepath.Dir(s.path("k2")), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path("k2"), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k2"); ok {
		t.Error("stale-version record returned a hit")
	}
}

// TestOpenSweepsStaleSchemaRecords: a schema bump can change the key
// format itself, leaving old records at paths no Get will ever probe —
// the Open-time walk must delete them rather than count them forever.
func TestOpenSweepsStaleSchemaRecords(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k1", sampleResult()); err != nil {
		t.Fatal(err)
	}
	// A v1-era record under a path derived from its fingerprint-string key.
	stale := filepath.Join(dir, "ab")
	if err := os.MkdirAll(stale, 0o755); err != nil {
		t.Fatal(err)
	}
	stalePath := filepath.Join(stale, "deadbeef.json")
	if err := os.WriteFile(stalePath, []byte(`{"version":1,"key":"len=1|old","result":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := reopened.Len(); n != 1 {
		t.Errorf("Len = %d, want 1 (stale v1 record must not be counted)", n)
	}
	if _, err := os.Stat(stalePath); !os.IsNotExist(err) {
		t.Error("stale v1 record not swept at Open")
	}
	if _, ok := reopened.Get("k1"); !ok {
		t.Error("current-schema record lost by the sweep")
	}

	// A record from a NEWER schema (another binary sharing the directory)
	// must be left alone — deleting it would make mixed-version
	// deployments thrash the shared store to empty on every Open.
	newerPath := filepath.Join(dir, "ab", "cafef00d.json")
	newer := fmt.Appendf(nil, `{"version":%d,"key":"future","result":{}}`, StoreSchemaVersion+1)
	if err := os.WriteFile(newerPath, newer, 0o644); err != nil {
		t.Fatal(err)
	}
	again, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := again.Len(); n != 1 {
		t.Errorf("Len = %d, want 1 (newer-schema record not counted)", n)
	}
	if _, err := os.Stat(newerPath); err != nil {
		t.Error("newer-schema record deleted by the sweep")
	}
}

// TestRecordPrefixFastPath: the Open-time walk must recognize records Put
// writes from their leading bytes — if the emitted format and the prefix
// ever drift apart, every Open degrades to reading the whole cache.
func TestRecordPrefixFastPath(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k1", sampleResult()); err != nil {
		t.Fatal(err)
	}
	if !hasCurrentVersionPrefix(s.path("k1")) {
		data, _ := os.ReadFile(s.path("k1"))
		t.Errorf("fresh record does not start with %q:\n%.60s", recordPrefix, data)
	}
}

func TestDefaultDirEnvOverride(t *testing.T) {
	t.Setenv("GAZE_CACHE_DIR", "/tmp/gaze-test-cache")
	if d := DefaultDir(); d != "/tmp/gaze-test-cache" {
		t.Errorf("DefaultDir = %q", d)
	}
}

// TestOpenLeavesForeignSubdirectoriesAlone: the Open-time sweep must stay
// inside the store's own two-hex-digit shard directories. A foreign tree
// under the root — another tool's data, or a jobs journal mispointed
// inside the store — holds .json files with no "version" field, which the
// stale-schema cleanup would otherwise delete as garbage.
func TestOpenLeavesForeignSubdirectoriesAlone(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k1", sampleResult()); err != nil {
		t.Fatal(err)
	}
	foreign := filepath.Join(dir, "results")
	if err := os.MkdirAll(foreign, 0o755); err != nil {
		t.Fatal(err)
	}
	foreignPath := filepath.Join(foreign, "doc.json")
	if err := os.WriteFile(foreignPath, []byte(`{"rows":[{"speedup":1.5}]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(foreignPath); err != nil {
		t.Error("foreign document swept at Open")
	}
	if n := reopened.Len(); n != 1 {
		t.Errorf("Len = %d, want 1 (foreign document must not be counted)", n)
	}
}
