// Telemetry documents: the persisted (and on-wire) form of one run's
// interval timeline, stored content-addressed beside its result record.
// Telemetry is derived data, like a trace's columnar sidecar: the
// document lives at the result's address with a .timeline extension, is
// written atomically, is garbage-collected with its result, and never
// participates in content addressing — a store with telemetry armed
// holds byte-identical result records to one without.
//
// Export and the local save path share one encoder, so a timeline
// computed on a cluster worker lands on the coordinator's disk
// byte-identical to one computed locally — the same store-equality
// guarantee result documents carry.
package engine

import (
	"encoding/json"
	"fmt"

	"repro/internal/sim"
)

// TelemetrySchemaVersion stamps persisted telemetry documents; bump it
// when the sample schema or concatenation rule changes observable bytes.
const TelemetrySchemaVersion = 1

// telemetryRecord is the on-disk schema. Key is the canonical job
// encoding, stored in full like result records so a document verifies
// against the address it claims.
type telemetryRecord struct {
	Version   int            `json:"version"`
	Key       string         `json:"key"`
	Telemetry *sim.Telemetry `json:"telemetry"`
}

// encodeTelemetryRecord renders the canonical document bytes. Every
// producer (local save, worker export) goes through here.
func encodeTelemetryRecord(key string, tel *sim.Telemetry) ([]byte, error) {
	return json.MarshalIndent(telemetryRecord{
		Version: TelemetrySchemaVersion, Key: key, Telemetry: tel,
	}, "", "\t")
}

// ExportTelemetry encodes a collected timeline as a self-describing
// document: the exact bytes the computing engine persisted locally.
func ExportTelemetry(key string, tel *sim.Telemetry) ([]byte, error) {
	data, err := encodeTelemetryRecord(key, tel)
	if err != nil {
		return nil, fmt.Errorf("engine: encoding telemetry document: %w", err)
	}
	return data, nil
}

// ImportTelemetry decodes and verifies a telemetry document uploaded
// under a content address: the schema version must match and the
// embedded key must hash to addr — the same untrusted-upload check
// ImportResult applies, so a document that passes can only describe the
// job the address names.
func ImportTelemetry(addr string, data []byte) (key string, tel *sim.Telemetry, err error) {
	if !isAddress(addr) {
		return "", nil, fmt.Errorf("engine: %q is not a content address", addr)
	}
	var rec telemetryRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return "", nil, fmt.Errorf("engine: decoding telemetry document: %v", err)
	}
	if rec.Version != TelemetrySchemaVersion {
		return "", nil, fmt.Errorf("engine: telemetry document has schema v%d, this process runs v%d",
			rec.Version, TelemetrySchemaVersion)
	}
	if rec.Telemetry == nil {
		return "", nil, fmt.Errorf("engine: telemetry document has no telemetry payload")
	}
	if hashKey(rec.Key) != addr {
		return "", nil, fmt.Errorf("engine: telemetry document key hashes to %s, not the claimed address %s",
			hashKey(rec.Key)[:12], addr[:12])
	}
	return rec.Key, rec.Telemetry, nil
}

// DecodeTelemetry parses a persisted telemetry document without address
// verification — for consumers (CSV rendering, analytics overlays) that
// already trust the bytes because they came from the local store.
func DecodeTelemetry(data []byte) (*sim.Telemetry, error) {
	var rec telemetryRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("engine: decoding telemetry document: %v", err)
	}
	if rec.Telemetry == nil {
		return nil, fmt.Errorf("engine: telemetry document has no telemetry payload")
	}
	return rec.Telemetry, nil
}

// AdoptTelemetry installs an externally produced telemetry document
// under its canonical key: into the in-process memo and the persisted
// store when one is configured. The raw bytes are adopted verbatim —
// never re-encoded — so worker-produced documents stay byte-identical on
// the coordinator's disk. Callers must have verified the document
// (ImportTelemetry); AdoptTelemetry trusts it.
func (e *Engine) AdoptTelemetry(key string, doc []byte) {
	addr := hashKey(key)
	e.mu.Lock()
	if e.telemetryMemo == nil {
		e.telemetryMemo = make(map[string][]byte)
	}
	if old, ok := e.telemetryMemo[addr]; ok {
		e.telemetryMemoBytes -= int64(len(old))
	}
	e.telemetryMemo[addr] = doc
	e.telemetryMemoBytes += int64(len(doc))
	e.mu.Unlock()
	if e.store != nil {
		e.store.PutTelemetry(key, doc) //nolint:errcheck // best-effort, like run's Put
	}
}

// saveTelemetry encodes and adopts a locally collected timeline. Errors
// are swallowed: telemetry is derived data and must never fail a run.
func (e *Engine) saveTelemetry(key string, tel *sim.Telemetry) {
	doc, err := encodeTelemetryRecord(key, tel)
	if err != nil {
		return
	}
	e.AdoptTelemetry(key, doc)
}

// Telemetry returns the persisted timeline document for a content
// address, from the in-process memo or the store. The bytes are the
// canonical document — servable (and ETag-able) verbatim.
func (e *Engine) Telemetry(addr string) ([]byte, bool) {
	e.mu.Lock()
	doc, ok := e.telemetryMemo[addr]
	e.mu.Unlock()
	if ok {
		return doc, true
	}
	if e.store != nil {
		return e.store.GetTelemetry(addr)
	}
	return nil, false
}

// Computing reports whether the engine is executing the job the address
// names right now — the signal behind the timeline API's 409-until-done
// answer for in-flight jobs.
func (e *Engine) Computing(addr string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for key := range e.inflight {
		if hashKey(key) == addr {
			return true
		}
	}
	return false
}

// TelemetryStats summarizes the telemetry subsystem for /stats and
// /metrics: the armed sampling interval (0 = disabled) and how many
// documents exist with their byte footprint — on disk when a store is
// attached, in the process memo otherwise.
type TelemetryStats struct {
	Interval  uint64 `json:"interval"`
	Documents int64  `json:"documents"`
	Bytes     int64  `json:"bytes"`
}

// TelemetryStats returns a snapshot of the telemetry counters.
func (e *Engine) TelemetryStats() TelemetryStats {
	st := TelemetryStats{Interval: e.telemetryInterval}
	if e.store != nil {
		st.Documents = e.store.telemetryDocs.Load()
		st.Bytes = e.store.telemetryBytes.Load()
		return st
	}
	e.mu.Lock()
	st.Documents = int64(len(e.telemetryMemo))
	st.Bytes = e.telemetryMemoBytes
	e.mu.Unlock()
	return st
}
