// Example server demonstrates the gazeserve HTTP API end to end without
// any external setup: it starts the service in-process on a loopback
// port, then acts as a client — one POST /simulate, the same request
// again (served from the engine's memo, so it returns instantly), a
// POST /sweep over a small trace × prefetcher grid, and a POST /sweep
// with an axis that redraws a Fig 16 sensitivity curve over HTTP.
//
// Against a separately running `gazeserve` binary, the same requests work
// unchanged; point the http calls at its -addr instead.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
)

func main() {
	// Serve on an ephemeral loopback port. Quick scale keeps the demo in
	// seconds; a persisted store would make re-runs instant too, but the
	// example stays in-memory to leave no files behind.
	eng := engine.New(engine.Options{Scale: engine.Quick})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, server.New(eng).Handler()) //nolint:errcheck
	base := "http://" + ln.Addr().String()
	fmt.Println("gazeserve listening on", base)

	simReq := map[string]any{"trace": "lbm-1274", "prefetcher": "Gaze"}

	start := time.Now()
	var sim1 server.SimulateResponse
	post(base+"/simulate", simReq, &sim1)
	fmt.Printf("\nPOST /simulate (cold) in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("  %s + %s: IPC %.3f, speedup %.3f, accuracy %.1f%%, coverage %.1f%%\n",
		sim1.Traces[0], sim1.Prefetcher, sim1.IPC, sim1.Speedup, 100*sim1.Accuracy, 100*sim1.Coverage)

	start = time.Now()
	var sim2 server.SimulateResponse
	post(base+"/simulate", simReq, &sim2)
	fmt.Printf("POST /simulate (memoized) in %v — same IPC: %v\n",
		time.Since(start).Round(time.Millisecond), sim1.IPC == sim2.IPC)

	var sweep server.SweepResponse
	post(base+"/sweep", map[string]any{
		"traces":      []string{"lbm-1274", "bwaves_s-2609"},
		"prefetchers": []string{"IP-stride", "PMP", "Gaze"},
	}, &sweep)
	fmt.Println("\nPOST /sweep rows:")
	for _, row := range sweep.Rows {
		fmt.Printf("  %-16s %-10s speedup %.3f\n", row.Traces[0], row.Prefetcher, row.Speedup)
	}
	fmt.Println("geomean speedups:")
	for _, pf := range []string{"IP-stride", "PMP", "Gaze"} {
		fmt.Printf("  %-10s %.3f\n", pf, sweep.GeomeanSpeedup[pf])
	}

	// A Fig 16a-style sensitivity curve in one request: the axis walks
	// DRAM bandwidth while "overrides" could pin any other knob. Each
	// sensitivity point is the geomean speedup over the swept traces.
	var sens server.SweepResponse
	post(base+"/sweep", map[string]any{
		"traces":      []string{"lbm-1274"},
		"prefetchers": []string{"IP-stride", "Gaze"},
		"axis":        map[string]any{"param": "dram_mtps", "values": []int{800, 3200, 12800}},
	}, &sens)
	fmt.Println("\nPOST /sweep with a DRAM-bandwidth axis (Fig 16a):")
	for _, p := range sens.Sensitivity {
		fmt.Printf("  %s=%-6.0f %-10s speedup %.3f\n", p.Param, p.Value, p.Prefetcher, p.GeomeanSpeedup)
	}
}

// post sends v as JSON and decodes the response into out.
func post(url string, v, out any) {
	body, err := json.Marshal(v)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e) //nolint:errcheck
		log.Fatalf("POST %s: %s (%s)", url, resp.Status, e["error"])
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
