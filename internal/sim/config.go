// Package sim assembles the full simulated system — cores, per-core L1D
// and L2C, shared LLC and DRAM, prefetch queues — and runs traces through
// it, producing the metrics the paper reports: IPC/speedup, overall
// prefetch accuracy, LLC coverage and timeliness (§IV-A3).
package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/mem"
)

// Config describes one simulated system (Table II defaults via
// DefaultConfig).
type Config struct {
	Cores int
	CPU   cpu.Config

	L1D cache.Config // per core
	L2C cache.Config // per core
	LLC cache.Config // shared, already scaled to Cores

	DRAM dram.Config

	// PQCapacity and PQDrainRate bound the per-core prefetch queue.
	PQCapacity  int
	PQDrainRate float64

	// WarmupInstructions run before measurement; SimInstructions are
	// measured per core.
	WarmupInstructions uint64
	SimInstructions    uint64

	// TranslatorSalt seeds the virtual→physical mapping; core i uses
	// TranslatorSalt+i.
	TranslatorSalt uint64

	// TelemetryInterval samples per-core interval telemetry every N
	// measured instructions (0 = disabled). Telemetry is derived data:
	// the knob is deliberately absent from job Overrides and canonical
	// encodings, so arming it never changes a content address or a
	// result, and Validate accepts any value.
	TelemetryInterval uint64
}

// DefaultConfig returns the paper's Table II system for the given core
// count: 48KB/12-way L1D (5 cycles, 16 MSHRs), 512KB/8-way L2C (10 cycles,
// 32 MSHRs), 2MB/core 16-way LLC (20 cycles, 64 MSHRs), DDR4-3200.
func DefaultConfig(cores int) Config {
	if cores < 1 {
		cores = 1
	}
	return Config{
		Cores: cores,
		CPU:   cpu.DefaultConfig(),
		L1D: cache.Config{
			Name: "L1D", Sets: 64, Ways: 12, HitLatency: 5, MSHRs: 16,
		},
		L2C: cache.Config{
			Name: "L2C", Sets: 1024, Ways: 8, HitLatency: 10, MSHRs: 32,
		},
		LLC: cache.Config{
			Name: "LLC", Sets: 2048 * cores, Ways: 16, HitLatency: 20, MSHRs: 64 * cores,
		},
		DRAM:               dram.DDR4Config(cores),
		PQCapacity:         32,
		PQDrainRate:        1,
		WarmupInstructions: 400_000,
		SimInstructions:    1_600_000,
		TranslatorSalt:     0x6a3e,
	}
}

// WithLLCSizeMB returns a copy with the LLC scaled to mbPerCore megabytes
// per core (Fig 16b). Fractional sizes (0.5MB) are supported.
func (c Config) WithLLCSizeMB(mbPerCore float64) Config {
	lines := int(mbPerCore * 1024 * 1024 / mem.LineSize * float64(c.Cores))
	sets := lines / c.LLC.Ways
	c.LLC.Sets = nextPow2(sets)
	return c
}

// WithL2SizeKB returns a copy with per-core L2C resized (Fig 16c).
func (c Config) WithL2SizeKB(kb int) Config {
	lines := kb * 1024 / mem.LineSize
	c.L2C.Sets = nextPow2(lines / c.L2C.Ways)
	return c
}

// WithDRAMMTPS returns a copy with the DRAM transfer rate changed (Fig 16a).
func (c Config) WithDRAMMTPS(mtps int) Config {
	c.DRAM.MTPS = mtps
	return c
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	if c.Cores < 1 {
		return fmt.Errorf("sim: cores must be >= 1")
	}
	if err := c.CPU.Validate(); err != nil {
		return err
	}
	for _, cc := range []cache.Config{c.L1D, c.L2C, c.LLC} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	if c.PQCapacity <= 0 || c.PQDrainRate <= 0 {
		return fmt.Errorf("sim: prefetch queue capacity/drain must be positive")
	}
	if c.SimInstructions == 0 {
		return fmt.Errorf("sim: SimInstructions must be positive")
	}
	return nil
}

func nextPow2(n int) int {
	if n < 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
