// Structured logging: thin constructors over log/slog plus a handler
// wrapper that stamps trace_id/span_id from the context onto every
// record — so any *Context log call made under an active span is
// joinable with the span log without the call site threading IDs.
package obs

import (
	"context"
	"io"
	"log/slog"
)

// NewLogger builds the process logger. format is "json" for one JSON
// object per line, anything else for logfmt-style text. The returned
// logger injects trace/span IDs from the context on *Context calls.
func NewLogger(w io.Writer, format string) *slog.Logger {
	var h slog.Handler
	if format == "json" {
		h = slog.NewJSONHandler(w, nil)
	} else {
		h = slog.NewTextHandler(w, nil)
	}
	return slog.New(ContextHandler(h))
}

// ContextHandler wraps a slog.Handler so records logged with a context
// carrying a span (or remote parent) gain trace_id and span_id attrs.
// Idempotent: wrapping an already-wrapped handler returns it unchanged,
// so components can defensively wrap loggers handed to them without
// double-stamping the IDs.
func ContextHandler(h slog.Handler) slog.Handler {
	if _, ok := h.(ctxHandler); ok {
		return h
	}
	return ctxHandler{h}
}

type ctxHandler struct{ slog.Handler }

func (h ctxHandler) Handle(ctx context.Context, r slog.Record) error {
	if sc := SpanContextFrom(ctx); sc.Valid() {
		r.AddAttrs(slog.String("trace_id", sc.TraceID), slog.String("span_id", sc.SpanID))
	}
	return h.Handler.Handle(ctx, r)
}

func (h ctxHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return ctxHandler{h.Handler.WithAttrs(attrs)}
}

func (h ctxHandler) WithGroup(name string) slog.Handler {
	return ctxHandler{h.Handler.WithGroup(name)}
}
