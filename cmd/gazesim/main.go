// Command gazesim runs one simulation: a workload (or every workload of a
// suite) against one prefetcher, printing IPC, speedup and the prefetch
// metrics of §IV-A3.
//
// Usage:
//
//	gazesim -trace bwaves_s-2609 -prefetcher Gaze
//	gazesim -suite cloud -prefetcher PMP -cores 4
//	gazesim -traces  (list the catalogue)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/prefetchers"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		traceName  = flag.String("trace", "", "workload trace name")
		suite      = flag.String("suite", "", "run every trace of a suite")
		pf         = flag.String("prefetcher", "Gaze", "prefetcher name (see internal/prefetchers)")
		l2pf       = flag.String("l2", "", "optional L2 prefetcher")
		cores      = flag.Int("cores", 1, "number of cores (same trace on each)")
		length     = flag.Int("len", 200_000, "records generated per trace")
		warmup     = flag.Uint64("warmup", 200_000, "warm-up instructions per core")
		instr      = flag.Uint64("instr", 800_000, "measured instructions per core")
		mtps       = flag.Int("mtps", 0, "override DRAM MTPS")
		listTraces = flag.Bool("traces", false, "list the workload catalogue")
	)
	flag.Parse()

	if *listTraces {
		for _, info := range workload.Catalogue() {
			fmt.Printf("%-8s %s\n", info.Suite, info.Name)
		}
		return
	}

	names := []string{*traceName}
	if *suite != "" {
		names = names[:0]
		for _, info := range workload.Suite(*suite) {
			names = append(names, info.Name)
		}
		if len(names) == 0 {
			fmt.Fprintf(os.Stderr, "unknown suite %q\n", *suite)
			os.Exit(1)
		}
	} else if *traceName == "" {
		fmt.Fprintln(os.Stderr, "need -trace or -suite (or -traces to list)")
		os.Exit(1)
	}

	for _, name := range names {
		base, err := runOne(name, "none", "", *cores, *length, *warmup, *instr, *mtps)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res, err := runOne(name, *pf, *l2pf, *cores, *length, *warmup, *instr, *mtps)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		speedup := 0.0
		if base.MeanIPC() > 0 {
			speedup = res.MeanIPC() / base.MeanIPC()
		}
		fmt.Printf("%-20s %-10s IPC %.3f  speedup %.3f  accuracy %.1f%%  coverage %.1f%%  late %.1f%%  issued %d\n",
			name, *pf, res.MeanIPC(), speedup,
			100*res.Accuracy(), 100*res.Coverage(), 100*res.LateFraction(),
			res.IssuedPrefetches())
	}
}

func runOne(name, pf, l2pf string, cores, length int, warmup, instr uint64, mtps int) (sim.Result, error) {
	cfg := sim.DefaultConfig(cores)
	cfg.WarmupInstructions = warmup
	cfg.SimInstructions = instr
	if mtps > 0 {
		cfg = cfg.WithDRAMMTPS(mtps)
	}
	specs := make([]sim.CoreSpec, cores)
	for i := range specs {
		recs, err := workload.Generate(name, length)
		if err != nil {
			return sim.Result{}, err
		}
		p, err := prefetchers.New(pf)
		if err != nil {
			return sim.Result{}, err
		}
		spec := sim.CoreSpec{
			Trace:        trace.NewLooping(trace.NewSliceReader(recs)),
			L1Prefetcher: p,
		}
		if l2pf != "" {
			p2, err := prefetchers.New(l2pf)
			if err != nil {
				return sim.Result{}, err
			}
			spec.L2Prefetcher = p2
		}
		specs[i] = spec
	}
	sys, err := sim.New(cfg, specs)
	if err != nil {
		return sim.Result{}, err
	}
	return sys.Run(), nil
}
