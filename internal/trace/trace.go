// Package trace defines the instruction-trace model consumed by the
// simulator. A trace is a stream of Records; each Record describes one
// memory instruction (load or store) preceded by NonMem non-memory
// instructions. This compact form is equivalent to a full instruction trace
// for a timing model whose non-memory instructions all cost one issue slot.
package trace

import (
	"errors"
	"io"
	"unsafe"
)

// Kind classifies the memory operation of a Record.
type Kind uint8

const (
	// Load is a demand data load; prefetchers train on these (§III-A:
	// "Gaze is trained on cache loads").
	Load Kind = iota
	// Store is a data store; it accesses the cache but does not train
	// spatial prefetchers in this model.
	Store
)

// Record is one memory instruction plus the run of non-memory instructions
// that precede it in program order.
type Record struct {
	// PC is the program counter of the memory instruction.
	PC uint64
	// Addr is the virtual byte address accessed.
	Addr uint64
	// NonMem is the number of non-memory instructions immediately before
	// this one; it sets the trace's memory intensity (MPKI).
	NonMem uint16
	// Kind is Load or Store.
	Kind Kind
}

// Instructions returns the number of instructions this record accounts for.
func (r Record) Instructions() int { return int(r.NonMem) + 1 }

// RecordBytes is the in-memory size of one Record, used for footprint
// accounting of materialized record slabs.
const RecordBytes = int64(unsafe.Sizeof(Record{}))

// Reader yields trace records in program order. Next returns io.EOF when
// the trace is exhausted.
type Reader interface {
	Next() (Record, error)
}

// ErrCorrupt reports a malformed encoded trace.
var ErrCorrupt = errors.New("trace: corrupt encoding")

// ErrTruncated reports an encoded trace that ends mid-record — a torn
// varint tail, a partial header, or a gzip stream cut short. It is
// distinct from ErrCorrupt so ingestion can tell "this file is damaged"
// from "this upload was cut off", but both are client errors.
var ErrTruncated = errors.New("trace: truncated encoding")

// RecordWriter encodes records to a stream. Close finalizes the encoding
// (flushing buffers and, for gzip-wrapped formats, writing the footer);
// a stream abandoned before Close may be unreadable.
type RecordWriter interface {
	Write(Record) error
	Close() error
}

// SliceReader replays a materialized record slab — a heap slice or any
// other Records implementation (a mapped columnar slab). The slab is
// accessed through the Records seam; for heap slabs that is one interface
// call per record on top of the slice index, which the simulator's
// per-record cost absorbs, and it is what lets mapped slabs flow through
// the identical hot path without a second reader type.
type SliceReader struct {
	recs Records
	n    int
	pos  int
}

// NewSliceReader returns a Reader over a heap record slice.
func NewSliceReader(recs []Record) *SliceReader { return NewRecordsReader(RecSlice(recs)) }

// NewRecordsReader returns a Reader over any record slab.
func NewRecordsReader(recs Records) *SliceReader {
	return &SliceReader{recs: recs, n: recs.Len()}
}

// NewRecordsReaderAt returns a Reader over recs whose first read is record
// start; Reset (and therefore Looping's wrap) still rewinds to record 0,
// so a reader started mid-slab replays the virtual looped stream
// start, start+1, ..., n-1, 0, 1, ... — the supply a time slice of a
// looped trace needs.
func NewRecordsReaderAt(recs Records, start int) *SliceReader {
	return &SliceReader{recs: recs, n: recs.Len(), pos: start}
}

// Next implements Reader.
func (s *SliceReader) Next() (Record, error) {
	if s.pos >= s.n {
		return Record{}, io.EOF
	}
	r := s.recs.At(s.pos)
	s.pos++
	return r, nil
}

// Reset rewinds the reader to the beginning of the slab.
func (s *SliceReader) Reset() { s.pos = 0 }

// Looping wraps a resettable source so it never returns io.EOF: when the
// underlying trace ends it is replayed from the start. This mirrors the
// paper's methodology ("if a trace reaches its end before the simulator has
// executed enough instructions, it is replayed from the start"). The
// source is held concretely (not behind an interface) so the simulator's
// per-record fetch inlines end to end.
type Looping struct {
	src   *SliceReader
	wraps int
}

// NewLooping wraps src in a looping reader.
func NewLooping(src *SliceReader) *Looping { return &Looping{src: src} }

// Next implements Reader; it only fails if the underlying trace is empty.
func (l *Looping) Next() (Record, error) {
	r, err := l.src.Next()
	if err == io.EOF {
		l.src.Reset()
		l.wraps++
		r, err = l.src.Next()
		if err == io.EOF {
			return Record{}, errors.New("trace: looping over empty trace")
		}
	}
	return r, err
}

// Wraps reports how many times the trace has restarted.
func (l *Looping) Wraps() int { return l.wraps }

// Collect drains up to max records from r into a slice. max <= 0 collects
// until EOF.
func Collect(r Reader, max int) ([]Record, error) {
	var out []Record
	for max <= 0 || len(out) < max {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
	return out, nil
}
