package trace

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// Format names an encoded-trace representation the codec layer speaks:
// the native GZTR binary stream, the ChampSim-style line format, and
// gzip-wrapped variants of both.
type Format string

// Supported formats.
const (
	FormatGZTR       Format = "gztr"
	FormatGZTRGz     Format = "gztr.gz"
	FormatChampSim   Format = "champsim"
	FormatChampSimGz Format = "champsim.gz"
)

// Formats lists every supported format in display order.
func Formats() []Format {
	return []Format{FormatGZTR, FormatGZTRGz, FormatChampSim, FormatChampSimGz}
}

// ParseFormat validates a CLI/API spelling of a format.
func ParseFormat(s string) (Format, error) {
	for _, f := range Formats() {
		if s == string(f) {
			return f, nil
		}
	}
	return "", fmt.Errorf("trace: unknown format %q (want %v)", s, Formats())
}

// gzipped reports whether the format is gzip-wrapped.
func (f Format) gzipped() bool { return f == FormatGZTRGz || f == FormatChampSimGz }

var gzipMagic = []byte{0x1f, 0x8b}

// Detect sniffs r's leading bytes and returns a Reader decoding it plus
// the detected format. A gzip envelope (by magic) is unwrapped first; the
// inner stream is GZTR if it carries the GZTR magic and is otherwise read
// as ChampSim-style lines (whose first malformed line surfaces ErrCorrupt
// from Next). Empty input returns ErrTruncated.
func Detect(r io.Reader) (Reader, Format, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(gzipMagic))
	if err != nil && err != io.EOF {
		return nil, "", err
	}
	if len(head) == 0 {
		return nil, "", fmt.Errorf("%w: empty input", ErrTruncated)
	}
	if bytes.Equal(head, gzipMagic) {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, "", fmt.Errorf("%w: bad gzip envelope: %v", ErrCorrupt, err)
		}
		rd, inner, err := detectRaw(bufio.NewReader(gz))
		if err != nil {
			return nil, "", err
		}
		return rd, inner + ".gz", nil
	}
	return detectRaw(br)
}

// detectRaw dispatches on the unwrapped stream: GZTR magic or lines.
func detectRaw(br *bufio.Reader) (Reader, Format, error) {
	head, err := br.Peek(len(magic))
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, "", err
	}
	if len(head) == 0 {
		return nil, "", fmt.Errorf("%w: empty input", ErrTruncated)
	}
	if bytes.Equal(head, magic[:]) {
		fr, err := NewFileReader(br)
		if err != nil {
			return nil, "", err
		}
		return fr, FormatGZTR, nil
	}
	return NewChampSimReader(br), FormatChampSim, nil
}

// NewFormatReader decodes r as an explicitly named format — the
// non-sniffing counterpart of Detect, for CLI conversions where the
// caller states what the input is.
func NewFormatReader(r io.Reader, f Format) (Reader, error) {
	if f.gzipped() {
		gz, err := gzip.NewReader(r)
		if err != nil {
			return nil, fmt.Errorf("%w: bad gzip envelope: %v", ErrCorrupt, err)
		}
		r = gz
	}
	switch f {
	case FormatGZTR, FormatGZTRGz:
		return NewFileReader(r)
	case FormatChampSim, FormatChampSimGz:
		return NewChampSimReader(r), nil
	}
	return nil, fmt.Errorf("trace: unknown format %q", f)
}

// gzRecordWriter finalizes the gzip envelope after the inner encoder.
type gzRecordWriter struct {
	RecordWriter
	gz *gzip.Writer
}

func (g gzRecordWriter) Close() error {
	if err := g.RecordWriter.Close(); err != nil {
		return err
	}
	return g.gz.Close()
}

// NewFormatWriter encodes records to w in the named format. Callers must
// Close the returned writer to flush buffers and finalize gzip envelopes.
func NewFormatWriter(w io.Writer, f Format) (RecordWriter, error) {
	var gz *gzip.Writer
	if f.gzipped() {
		gz = gzip.NewWriter(w)
		w = gz
	}
	var (
		rw  RecordWriter
		err error
	)
	switch f {
	case FormatGZTR, FormatGZTRGz:
		rw, err = NewWriter(w)
	case FormatChampSim, FormatChampSimGz:
		rw = NewChampSimWriter(w)
	default:
		err = fmt.Errorf("trace: unknown format %q", f)
	}
	if err != nil {
		return nil, err
	}
	if gz != nil {
		return gzRecordWriter{RecordWriter: rw, gz: gz}, nil
	}
	return rw, nil
}

// WriteAll encodes recs to w in the named format and finalizes the stream.
func WriteAll(w io.Writer, f Format, recs []Record) error {
	rw, err := NewFormatWriter(w, f)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if err := rw.Write(rec); err != nil {
			return err
		}
	}
	return rw.Close()
}
