// Multicore: a four-core heterogeneous mix under shared-LLC and DRAM
// bandwidth contention (the Fig 15 setting). Aggressive low-accuracy
// prefetching that helps a core in isolation can hurt the whole mix; the
// example contrasts PMP's merged-pattern aggressiveness with Gaze.
//
//	go run ./examples/multicore
package main

import (
	"fmt"
	"log"

	"repro/internal/prefetchers"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The mix follows Table VI's mix4: two graph-compute traces, one streaming
// HPC trace, one PARSEC trace.
var mix = []string{"PageRank.D-24", "bwaves-1963", "PageRank-61", "facesim-22"}

func main() {
	fmt.Println("four-core heterogeneous mix (Table VI mix4):", mix)
	fmt.Println()

	base := run("none")
	fmt.Printf("%-8s", "core")
	for c := range mix {
		fmt.Printf("  c%d(%s)", c, shorten(mix[c]))
	}
	fmt.Println("  mean-IPC")

	for _, pf := range []string{"none", "vBerti", "PMP", "Gaze"} {
		res := run(pf)
		fmt.Printf("%-8s", pf)
		for c := range mix {
			if pf == "none" {
				fmt.Printf("  %14.3f", res.Cores[c].IPC)
			} else {
				fmt.Printf("  %13.3fx", res.Cores[c].IPC/base.Cores[c].IPC)
			}
		}
		fmt.Printf("  %8.3f\n", res.MeanIPC())
	}
}

func shorten(s string) string {
	if len(s) > 10 {
		return s[:10]
	}
	return s
}

func run(pf string) sim.Result {
	cfg := sim.DefaultConfig(len(mix))
	cfg.WarmupInstructions = 100_000
	cfg.SimInstructions = 300_000
	specs := make([]sim.CoreSpec, len(mix))
	for i, name := range mix {
		recs, err := workload.Generate(name, 120_000)
		if err != nil {
			log.Fatal(err)
		}
		p, err := prefetchers.New(pf)
		if err != nil {
			log.Fatal(err)
		}
		specs[i] = sim.CoreSpec{
			Trace:        trace.NewLooping(trace.NewSliceReader(recs)),
			L1Prefetcher: p,
		}
	}
	sys, err := sim.New(cfg, specs)
	if err != nil {
		log.Fatal(err)
	}
	return sys.Run()
}
