package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func sampleRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			PC:     0x400000 + uint64(i%7)*4,
			Addr:   0x10000000 + uint64(i)*64,
			NonMem: uint16(i % 13),
			Kind:   Kind(i % 2),
		}
	}
	return recs
}

func TestSliceReader(t *testing.T) {
	recs := sampleRecords(10)
	r := NewSliceReader(recs)
	got, err := Collect(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("collected %d records, want 10", len(got))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestSliceReaderReset(t *testing.T) {
	r := NewSliceReader(sampleRecords(3))
	if _, err := Collect(r, 0); err != nil {
		t.Fatal(err)
	}
	r.Reset()
	got, _ := Collect(r, 0)
	if len(got) != 3 {
		t.Errorf("after Reset, collected %d", len(got))
	}
}

func TestCollectMax(t *testing.T) {
	r := NewSliceReader(sampleRecords(100))
	got, err := Collect(r, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Errorf("Collect(max=7) returned %d", len(got))
	}
}

func TestLoopingWraps(t *testing.T) {
	recs := sampleRecords(4)
	l := NewLooping(NewSliceReader(recs))
	for i := 0; i < 10; i++ {
		rec, err := l.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rec != recs[i%4] {
			t.Fatalf("loop step %d: got %+v want %+v", i, rec, recs[i%4])
		}
	}
	if l.Wraps() != 2 {
		t.Errorf("Wraps() = %d, want 2", l.Wraps())
	}
}

func TestLoopingEmptyTrace(t *testing.T) {
	l := NewLooping(NewSliceReader(nil))
	if _, err := l.Next(); err == nil {
		t.Error("expected error on empty looping trace")
	}
}

func TestRecordInstructions(t *testing.T) {
	r := Record{NonMem: 9}
	if r.Instructions() != 10 {
		t.Errorf("Instructions() = %d, want 10", r.Instructions())
	}
}

func TestCodecRoundTrip(t *testing.T) {
	recs := sampleRecords(1000)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	fr, err := NewFileReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(fr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(pcs []uint64, addrs []uint64, nonmems []uint16) bool {
		n := len(pcs)
		if len(addrs) < n {
			n = len(addrs)
		}
		if len(nonmems) < n {
			n = len(nonmems)
		}
		recs := make([]Record, n)
		for i := 0; i < n; i++ {
			recs[i] = Record{PC: pcs[i], Addr: addrs[i], NonMem: nonmems[i], Kind: Kind(i % 2)}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, rec := range recs {
			if w.Write(rec) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		fr, err := NewFileReader(&buf)
		if err != nil {
			return false
		}
		got, err := Collect(fr, 0)
		if err != nil || len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFileReaderBadMagic(t *testing.T) {
	if _, err := NewFileReader(bytes.NewReader([]byte("NOPE\x01xxx"))); err == nil {
		t.Error("expected error on bad magic")
	}
}

func TestFileReaderTruncated(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	_ = w.Write(Record{PC: 1, Addr: 2, NonMem: 3})
	_ = w.Flush()
	data := buf.Bytes()
	// Truncate mid-record.
	fr, err := NewFileReader(bytes.NewReader(data[:len(data)-1]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fr.Next(); err == nil {
		t.Error("expected corrupt/EOF error on truncated record")
	}
}

func TestCodecCompactness(t *testing.T) {
	// Sequential access traces should compress well below 8 bytes/record.
	recs := make([]Record, 10000)
	for i := range recs {
		recs[i] = Record{PC: 0x400100, Addr: uint64(i) * 64, NonMem: 10}
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for _, rec := range recs {
		_ = w.Write(rec)
	}
	_ = w.Flush()
	perRec := float64(buf.Len()) / float64(len(recs))
	if perRec > 8 {
		t.Errorf("encoding too large: %.1f bytes/record", perRec)
	}
}
