// Analytics API: the comparison matrices the paper's §V tables and
// Fig 16 curves report, served as cacheable reads. The product of the
// reproduction is comparisons — speedup/coverage/accuracy across
// prefetchers × workloads × override points — yet /simulate and /sweep
// return raw per-job rows and always cost simulation time. The analytics
// endpoints aggregate *completed* results only: they probe the engine's
// memo and persisted store and never simulate, so they are safe to hammer
// from dashboards and CDNs.
//
//	GET /analytics/matrix   full metric matrix (+ sensitivity with an axis)
//	GET /analytics/speedup  speedup-only matrix + per-prefetcher geomeans
//
// Identity and caching: the requested grid compiles to the same engine
// jobs a POST /sweep of the same shape would run, and the *result set*
// is content-addressed as the SHA-256 over the sorted set of those jobs'
// content addresses — permutation-invariant by construction (listing
// prefetchers or traces in a different order names the same result set).
// The ETag is derived from the result-set address plus the sorted subset
// of addresses whose results exist, so it changes exactly when new
// underlying results complete (or are GC'd) and a matching If-None-Match
// answers 304 without touching a single record. Assembled documents are
// cached in-process per (endpoint, result set); the cache holds a ref on
// every address backing a cached document, which result-store GC honors.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/engine"
	"repro/internal/prefetchers"
	"repro/internal/sim"
	"repro/internal/stats"
)

// AnalyticsSchemaVersion stamps the analytics document shape, like
// StatsSchemaVersion stamps /stats.
//
// v1: first version (PR 6).
const AnalyticsSchemaVersion = 1

// AnalyticsPoint identifies one override point of an analytics grid: the
// swept knob at one value, or the base overrides point when no axis was
// requested (Param empty).
type AnalyticsPoint struct {
	Param string  `json:"param,omitempty"`
	Value float64 `json:"value,omitempty"`
}

// AnalyticsCell is one (point, trace, prefetcher) cell of the matrix. A
// cell is Complete when both its job's result and its baseline's exist;
// metric fields are meaningful only then. Address and BaselineAddress
// are the engine content addresses the cell aggregates — the identities
// a client can correlate with /sweep rows, job results and store entries.
type AnalyticsCell struct {
	Trace           string  `json:"trace"`
	Prefetcher      string  `json:"prefetcher"`
	Param           string  `json:"param,omitempty"`
	Value           float64 `json:"value,omitempty"`
	Address         string  `json:"address"`
	BaselineAddress string  `json:"baseline_address"`
	Complete        bool    `json:"complete"`
	Speedup         float64 `json:"speedup,omitempty"`
	IPC             float64 `json:"ipc,omitempty"`
	Accuracy        float64 `json:"accuracy,omitempty"`
	Coverage        float64 `json:"coverage,omitempty"`
	LateFraction    float64 `json:"late_fraction,omitempty"`
	L1MPKI          float64 `json:"l1_mpki,omitempty"`
	LLCMPKI         float64 `json:"llc_mpki,omitempty"`
}

// MatrixResponse is the GET /analytics/matrix document: every cell of
// the requested grid with the paper's §IV-A3 metrics where complete,
// plus the aggregates — per-prefetcher geomean speedups over complete
// cells (no axis) or Fig 16-style sensitivity points (with an axis).
type MatrixResponse struct {
	SchemaVersion  int                `json:"schema_version"`
	ResultSet      string             `json:"result_set"`
	ETag           string             `json:"etag"`
	Traces         []string           `json:"traces"`
	Prefetchers    []string           `json:"prefetchers"`
	Points         []AnalyticsPoint   `json:"points"`
	CellsTotal     int                `json:"cells_total"`
	CellsComplete  int                `json:"cells_complete"`
	Cells          []AnalyticsCell    `json:"cells"`
	GeomeanSpeedup map[string]float64 `json:"geomean_speedup,omitempty"`
	Sensitivity    []SensitivityPoint `json:"sensitivity,omitempty"`
}

// SpeedupResponse is the GET /analytics/speedup document: the speedup
// matrix alone (prefetcher → trace → speedup, complete cells only) with
// per-prefetcher geomeans — the numbers the paper's Fig 6 bars plot.
type SpeedupResponse struct {
	SchemaVersion  int                           `json:"schema_version"`
	ResultSet      string                        `json:"result_set"`
	ETag           string                        `json:"etag"`
	Traces         []string                      `json:"traces"`
	Prefetchers    []string                      `json:"prefetchers"`
	CellsTotal     int                           `json:"cells_total"`
	CellsComplete  int                           `json:"cells_complete"`
	Speedup        map[string]map[string]float64 `json:"speedup"`
	GeomeanSpeedup map[string]float64            `json:"geomean_speedup"`
}

// analyticsQueryParams is the accepted query-parameter set. Unknown
// parameters are rejected with a 400, mirroring the strict JSON decoding
// of the POST endpoints: a typo'd parameter must not silently aggregate
// a grid the client did not ask for.
var analyticsQueryParams = map[string]bool{
	"suite": true, "traces": true, "prefetchers": true,
	"param": true, "values": true,
}

// parseAnalyticsQuery maps GET query parameters onto the same SweepRequest
// shape POST /sweep validates, so both faces of the grid share one
// compiler. List-valued parameters are comma-separated; prefetchers
// defaults to the paper's full evaluated roster.
func parseAnalyticsQuery(q url.Values, allowAxis bool) (SweepRequest, error) {
	for k := range q {
		if !analyticsQueryParams[k] {
			return SweepRequest{}, fmt.Errorf("unknown query parameter %q (want suite, traces, prefetchers, param, values)", k)
		}
	}
	req := SweepRequest{
		Suite:       q.Get("suite"),
		Traces:      splitList(q.Get("traces")),
		Prefetchers: splitList(q.Get("prefetchers")),
	}
	if len(req.Prefetchers) == 0 {
		req.Prefetchers = prefetchers.EvaluatedNames()
	}
	param, values := q.Get("param"), q.Get("values")
	if (param == "") != (values == "") {
		return SweepRequest{}, fmt.Errorf("param and values must be given together")
	}
	if param != "" {
		if !allowAxis {
			return SweepRequest{}, fmt.Errorf("this endpoint does not take a sensitivity axis; use /analytics/matrix")
		}
		axis := &SweepAxis{Param: param}
		for _, s := range splitList(values) {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return SweepRequest{}, fmt.Errorf("values: %q is not a number", s)
			}
			axis.Values = append(axis.Values, v)
		}
		req.Axis = axis
	}
	return req, nil
}

// splitList splits a comma-separated query value, dropping empty items
// (so a trailing comma is not an empty name).
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// resultSetAddress content-addresses a grid: the SHA-256 over the sorted
// deduped set of its engine-job addresses. Sorting makes the address a
// function of the *set* — two requests spelling the same grid in any
// order (or overlapping through shared baselines) name the same result
// set.
func resultSetAddress(addrs []string) string {
	h := sha256.New()
	io.WriteString(h, "analytics/v1\n")
	for _, a := range addrs {
		io.WriteString(h, a)
		io.WriteString(h, "\n")
	}
	return hex.EncodeToString(h.Sum(nil))
}

// analyticsView is one compiled analytics request: the grid, the per-job
// content addresses (aligned with grid.jobs), and the sorted unique
// address set with its content address.
type analyticsView struct {
	grid      *sweepGrid
	addrs     []string
	unique    []string // sorted, deduped
	resultSet string
}

func (s *Server) compileAnalytics(r *http.Request, allowAxis bool) (*analyticsView, error) {
	req, err := parseAnalyticsQuery(r.URL.Query(), allowAxis)
	if err != nil {
		return nil, err
	}
	// The server's slice policy applies here too: analytics aggregates
	// whatever /sweep persisted, so its grid must address exactly the jobs
	// an auto-slicing sweep compiled.
	grid, err := compileSweepGrid(s.eng.Scale(), req, s.slice)
	if err != nil {
		return nil, err
	}
	scale := s.eng.Scale()
	v := &analyticsView{grid: grid, addrs: make([]string, len(grid.jobs))}
	seen := make(map[string]bool, len(grid.jobs))
	for i, j := range grid.jobs {
		v.addrs[i] = j.ContentAddress(scale)
		if !seen[v.addrs[i]] {
			seen[v.addrs[i]] = true
			v.unique = append(v.unique, v.addrs[i])
		}
	}
	sort.Strings(v.unique)
	v.resultSet = resultSetAddress(v.unique)
	return v, nil
}

// completedSet probes every unique address of the view — memo first,
// then a store stat — and returns the sorted subset whose results exist.
// jobByAddr maps an address back to one representative job so the
// rebuild path can Lookup the actual records.
func (v *analyticsView) completedSet(eng *engine.Engine) (completed []string, jobByAddr map[string]engine.Job) {
	jobByAddr = make(map[string]engine.Job, len(v.unique))
	for i, j := range v.grid.jobs {
		if _, ok := jobByAddr[v.addrs[i]]; !ok {
			jobByAddr[v.addrs[i]] = j
		}
	}
	for _, addr := range v.unique { // already sorted
		if eng.Has(jobByAddr[addr]) {
			completed = append(completed, addr)
		}
	}
	return completed, jobByAddr
}

// analyticsETag derives the strong ETag: a hash of the result-set
// address plus the completed subset. For a fixed URL the result set is
// fixed, so the ETag changes iff the set of completed underlying results
// changes.
func analyticsETag(resultSet string, completed []string) string {
	h := sha256.New()
	io.WriteString(h, "analytics-etag/v1\n")
	io.WriteString(h, resultSet)
	io.WriteString(h, "\n")
	for _, a := range completed {
		io.WriteString(h, a)
		io.WriteString(h, "\n")
	}
	return `"` + hex.EncodeToString(h.Sum(nil)) + `"`
}

// etagMatches implements the If-None-Match comparison: a comma-separated
// list of entity tags, or "*". Weak-validator prefixes are compared
// weakly (W/"x" matches "x") — fine for a cache whose tags are strong.
func etagMatches(header, etag string) bool {
	for _, tok := range strings.Split(header, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "*" || tok == etag || strings.TrimPrefix(tok, "W/") == etag {
			return true
		}
	}
	return false
}

// analyticsCache holds assembled documents per (endpoint, result set),
// invalidated by ETag: a cached document is served only while the
// completed-set hash it was built from still matches. Entries are capped
// and evicted least-recently-used; the zero value is ready to use.
type analyticsCache struct {
	mu      sync.Mutex
	entries map[string]*analyticsEntry
	hits    uint64
	misses  uint64
	clock   uint64
}

type analyticsEntry struct {
	etag    string
	body    []byte
	refs    []string // completed addresses backing body — GC ref source
	lastUse uint64
}

// maxAnalyticsEntries bounds the document cache. Documents are a few KB
// to a few hundred KB; 128 of them is dashboard-plenty and memory-cheap.
const maxAnalyticsEntries = 128

// get returns the cached document for key if it was built from exactly
// the given etag.
func (c *analyticsCache) get(key, etag string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || e.etag != etag {
		c.misses++
		return nil, false
	}
	c.hits++
	c.clock++
	e.lastUse = c.clock
	return e.body, true
}

func (c *analyticsCache) put(key, etag string, body []byte, refs []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries == nil {
		c.entries = make(map[string]*analyticsEntry)
	}
	c.clock++
	c.entries[key] = &analyticsEntry{etag: etag, body: body, refs: refs, lastUse: c.clock}
	for len(c.entries) > maxAnalyticsEntries {
		var (
			victimKey string
			victim    *analyticsEntry
		)
		for k, e := range c.entries {
			if victim == nil || e.lastUse < victim.lastUse {
				victimKey, victim = k, e
			}
		}
		delete(c.entries, victimKey)
	}
}

// liveAddresses returns the union of addresses backing cached documents —
// the analytics-side ref source for result-store GC. Collecting an entry
// a cached matrix was built from would be harmless for serving (the
// document is already assembled) but would silently flip its cells to
// incomplete on the next rebuild; holding the ref keeps a dashboard's
// view stable until the cache entry itself ages out.
func (c *analyticsCache) liveAddresses() map[string]bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]bool)
	for _, e := range c.entries {
		for _, a := range e.refs {
			out[a] = true
		}
	}
	return out
}

// counters returns (entries, hits, misses) for /metrics.
func (c *analyticsCache) counters() (int, uint64, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries), c.hits, c.misses
}

// analyticsAssemble builds one endpoint's document from the view and the
// completed results.
type analyticsAssemble func(v *analyticsView, etag string, results map[string]sim.Result) any

func (s *Server) handleAnalyticsMatrix(w http.ResponseWriter, r *http.Request) {
	s.serveAnalytics(w, r, true, "matrix", buildMatrixDoc)
}

func (s *Server) handleAnalyticsSpeedup(w http.ResponseWriter, r *http.Request) {
	s.serveAnalytics(w, r, false, "speedup", buildSpeedupDoc)
}

func (s *Server) serveAnalytics(w http.ResponseWriter, r *http.Request, allowAxis bool, endpoint string, build analyticsAssemble) {
	v, err := s.compileAnalytics(r, allowAxis)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	completed, jobByAddr := v.completedSet(s.eng)
	etag := analyticsETag(v.resultSet, completed)
	w.Header().Set("ETag", etag)
	// Pure read, revalidate-cheaply: intermediaries may cache but must
	// ask again, and the ask is a stat-only 304 most of the time.
	w.Header().Set("Cache-Control", "public, no-cache")
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	key := endpoint + "\x00" + v.resultSet
	if body, ok := s.analytics.get(key, etag); ok {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(body) //nolint:errcheck // client disconnects are routine
		return
	}
	// Rebuild: load the completed results for real. A probe that answered
	// true but fails to Load (a store entry corrupted between the stat
	// and the read) drops out of the completed set here; the document
	// stays coherent with itself, merely one revalidation staler than the
	// ETag, and the next request re-derives both.
	results := make(map[string]sim.Result, len(completed))
	refs := completed[:0:0]
	for _, addr := range completed {
		if res, ok := s.eng.Lookup(jobByAddr[addr]); ok {
			results[addr] = res
			refs = append(refs, addr)
		}
	}
	doc := build(v, etag, results)
	body, err := json.Marshal(doc)
	if err != nil { // analytics documents marshal by construction
		httpError(w, http.StatusInternalServerError, "encoding analytics document: %v", err)
		return
	}
	s.analytics.put(key, etag, body, refs)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body) //nolint:errcheck // client disconnects are routine
}

// buildMatrixDoc assembles the full matrix document, aggregating only
// over complete cells (both the prefetcher's and the baseline's results
// available).
func buildMatrixDoc(v *analyticsView, etag string, results map[string]sim.Result) any {
	g := v.grid
	resp := MatrixResponse{
		SchemaVersion: AnalyticsSchemaVersion,
		ResultSet:     v.resultSet,
		ETag:          etag,
		Traces:        g.traces,
		Prefetchers:   g.pfs,
		CellsTotal:    len(g.points) * len(g.traces) * len(g.pfs),
	}
	for vi := range g.points {
		pt := AnalyticsPoint{}
		if g.axis != nil {
			pt = AnalyticsPoint{Param: g.axis.Param, Value: g.axisValues[vi]}
		}
		resp.Points = append(resp.Points, pt)
		perPF := make(map[string][]float64)
		for ti, tr := range g.traces {
			baseAddr := v.addrs[g.index(vi, ti, -1)]
			base, baseOK := results[baseAddr]
			for pi, pf := range g.pfs {
				i := g.index(vi, ti, pi)
				cell := AnalyticsCell{
					Trace: tr, Prefetcher: pf,
					Param: pt.Param, Value: pt.Value,
					Address: v.addrs[i], BaselineAddress: baseAddr,
				}
				if res, ok := results[v.addrs[i]]; ok && baseOK {
					cell.Complete = true
					cell.Speedup = engine.Speedup(res, base)
					cell.IPC = res.MeanIPC()
					cell.Accuracy = res.Accuracy()
					cell.Coverage = res.Coverage()
					cell.LateFraction = res.LateFraction()
					cell.L1MPKI = res.L1MPKI()
					cell.LLCMPKI = res.LLCMPKI()
					resp.CellsComplete++
					perPF[pf] = append(perPF[pf], cell.Speedup)
				}
				resp.Cells = append(resp.Cells, cell)
			}
		}
		if g.axis == nil {
			resp.GeomeanSpeedup = make(map[string]float64)
			for pf, vals := range perPF {
				resp.GeomeanSpeedup[pf] = stats.Geomean(vals)
			}
			continue
		}
		for _, pf := range g.pfs {
			if vals := perPF[pf]; len(vals) > 0 {
				resp.Sensitivity = append(resp.Sensitivity, SensitivityPoint{
					Param:          g.axis.Param,
					Value:          g.axisValues[vi],
					Prefetcher:     pf,
					GeomeanSpeedup: stats.Geomean(vals),
				})
			}
		}
	}
	return resp
}

// buildSpeedupDoc assembles the condensed speedup-only document.
func buildSpeedupDoc(v *analyticsView, etag string, results map[string]sim.Result) any {
	g := v.grid
	resp := SpeedupResponse{
		SchemaVersion:  AnalyticsSchemaVersion,
		ResultSet:      v.resultSet,
		ETag:           etag,
		Traces:         g.traces,
		Prefetchers:    g.pfs,
		CellsTotal:     len(g.traces) * len(g.pfs),
		Speedup:        make(map[string]map[string]float64),
		GeomeanSpeedup: make(map[string]float64),
	}
	perPF := make(map[string][]float64)
	for ti, tr := range g.traces {
		base, baseOK := results[v.addrs[g.index(0, ti, -1)]]
		for pi, pf := range g.pfs {
			res, ok := results[v.addrs[g.index(0, ti, pi)]]
			if !ok || !baseOK {
				continue
			}
			if resp.Speedup[pf] == nil {
				resp.Speedup[pf] = make(map[string]float64)
			}
			sp := engine.Speedup(res, base)
			resp.Speedup[pf][tr] = sp
			perPF[pf] = append(perPF[pf], sp)
			resp.CellsComplete++
		}
	}
	for pf, vals := range perPF {
		resp.GeomeanSpeedup[pf] = stats.Geomean(vals)
	}
	return resp
}
