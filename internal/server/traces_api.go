// Trace registry API: upload real traces and run them by name. A trace
// POSTed in any supported format (native GZTR, ChampSim-style lines,
// gzip-wrapped variants) becomes a durable, content-addressed registry
// entry usable as `ingested:<address>` everywhere a catalogue name is —
// sync /simulate and /sweep, the async jobs API, and the CLIs sharing the
// registry directory.
//
//	POST   /traces               upload → 201 + manifest (200 on dedup)
//	GET    /traces               catalogue + ingested entries (existing route)
//	GET    /traces/{addr}        manifest
//	GET    /traces/{addr}/data   export (?format=gztr|champsim[.gz])
//	DELETE /traces/{addr}        delete; 409 while referenced by live work
package server

import (
	"errors"
	"io"
	"net/http"
	"sync"

	"repro/internal/engine"
	"repro/internal/trace"
	"repro/internal/traceset"
	"repro/internal/workload"
)

// maxTraceUploadBytes bounds one trace upload (the encoded stream, not
// the decoded records — the registry's record cap bounds those). Far
// above any sweep-request body, far below a memory-exhaustion payload.
const maxTraceUploadBytes = 256 << 20

// AttachTraces enables the trace-registry API on this server. The caller
// should also workload.RegisterSource(reg) so ingested names resolve in
// the engine; the server only serves the registry over HTTP. Without a
// registry the /traces mutation routes answer 503.
func (s *Server) AttachTraces(reg *traceset.Registry) *Server {
	s.traces = reg
	return s
}

// tracesEnabled answers 503 (and returns false) when no registry is
// attached — mirroring jobsEnabled so clients get a clear signal.
func (s *Server) tracesEnabled(w http.ResponseWriter) bool {
	if s.traces == nil {
		httpError(w, http.StatusServiceUnavailable, "trace registry not enabled on this server")
		return false
	}
	return true
}

// traceUse counts ingested-trace references held by in-flight synchronous
// requests, so DELETE /traces/{addr} can refuse while a /simulate or
// /sweep is actively running the trace (async jobs are covered by
// jobs.Manager.UsesTrace — their plans outlive the HTTP request).
type traceUse struct {
	mu sync.Mutex
	n  map[string]int
}

// acquire registers every ingested trace the job grid references and
// returns the matching release. Catalogue traces are skipped — they are
// not deletable, so tracking them would be pure overhead.
func (u *traceUse) acquire(jobs []engine.Job) (release func()) {
	var names []string
	for _, j := range jobs {
		for _, tr := range j.Traces {
			if _, ok := workload.IngestedDigest(tr); ok {
				names = append(names, tr)
			}
		}
	}
	if len(names) == 0 {
		return func() {}
	}
	u.mu.Lock()
	if u.n == nil {
		u.n = make(map[string]int)
	}
	for _, name := range names {
		u.n[name]++
	}
	u.mu.Unlock()
	return func() {
		u.mu.Lock()
		defer u.mu.Unlock()
		for _, name := range names {
			if u.n[name]--; u.n[name] <= 0 {
				delete(u.n, name)
			}
		}
	}
}

// inUse reports whether any in-flight synchronous request references name.
func (u *traceUse) inUse(name string) bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.n[name] > 0
}

// recheckIngested closes the delete race on the synchronous paths: a
// DELETE /traces that slipped between compile-time validation and the
// inflight acquire has already removed its trace, so re-validating the
// ingested names AFTER acquiring guarantees every surviving trace is
// visible to the delete handler's in-use check for the rest of the
// request. On a missing trace it answers 409 and returns false.
func (s *Server) recheckIngested(w http.ResponseWriter, jobs []engine.Job) bool {
	for _, j := range jobs {
		for _, tr := range j.Traces {
			if _, ok := workload.IngestedDigest(tr); ok && !workload.Exists(tr) {
				httpError(w, http.StatusConflict, "trace %q was deleted while the request was being prepared", tr)
				return false
			}
		}
	}
	return true
}

// TraceUploadResponse is the POST /traces (and GET /traces/{addr}) body:
// the registry manifest plus the workload name the entry runs under.
type TraceUploadResponse struct {
	// Name is the trace's workload name ("ingested:<address>") — what
	// /simulate, /sweep and job requests reference.
	Name string `json:"name"`
	// Deduplicated reports that the upload matched an existing entry
	// (POST answers 200 instead of 201).
	Deduplicated bool `json:"deduplicated,omitempty"`
	traceset.Manifest
}

func (s *Server) handleTraceUpload(w http.ResponseWriter, r *http.Request) {
	if !s.tracesEnabled(w) {
		return
	}
	m, created, err := s.traces.Ingest(http.MaxBytesReader(w, r.Body, maxTraceUploadBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		switch {
		case errors.As(err, &tooBig):
			httpError(w, http.StatusRequestEntityTooLarge, "trace exceeds the %d-byte upload limit", int64(maxTraceUploadBytes))
		case errors.Is(err, traceset.ErrEmpty),
			errors.Is(err, traceset.ErrTooLarge),
			errors.Is(err, trace.ErrCorrupt),
			errors.Is(err, trace.ErrTruncated):
			httpError(w, http.StatusBadRequest, "ingesting trace: %v", err)
		default:
			httpError(w, http.StatusInternalServerError, "ingesting trace: %v", err)
		}
		return
	}
	status := http.StatusCreated
	if !created {
		status = http.StatusOK
	}
	writeJSON(w, status, TraceUploadResponse{Name: m.Name(), Deduplicated: !created, Manifest: m})
}

func (s *Server) handleTraceManifest(w http.ResponseWriter, r *http.Request) {
	if !s.tracesEnabled(w) {
		return
	}
	addr := r.PathValue("addr")
	m, ok := s.traces.Get(addr)
	if !ok {
		httpError(w, http.StatusNotFound, "no ingested trace %q", addr)
		return
	}
	writeJSON(w, http.StatusOK, TraceUploadResponse{Name: m.Name(), Manifest: m})
}

func (s *Server) handleTraceData(w http.ResponseWriter, r *http.Request) {
	if !s.tracesEnabled(w) {
		return
	}
	addr := r.PathValue("addr")
	format := trace.FormatGZTR
	if q := r.URL.Query().Get("format"); q != "" {
		var err error
		if format, err = trace.ParseFormat(q); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	// The registry stores the raw gztr representation: copy it verbatim,
	// or re-encode record by record for other formats. Either way the
	// export streams in constant memory — a 10M-record trace must not
	// cost a quarter-gigabyte slab per concurrent download.
	f, err := s.traces.OpenData(addr)
	if err != nil {
		httpError(w, http.StatusNotFound, "no ingested trace %q", addr)
		return
	}
	defer f.Close()
	if format == trace.FormatChampSim {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	} else {
		w.Header().Set("Content-Type", "application/octet-stream")
	}
	if format == trace.FormatGZTR {
		io.Copy(w, f) //nolint:errcheck // client disconnects are routine
		return
	}
	fr, err := trace.NewFileReader(f)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "reading stored trace: %v", err)
		return
	}
	rw, err := trace.NewFormatWriter(w, format)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Errors past this point are mid-stream (client gone, or a damaged
	// stored file): the status line is already written, so just stop.
	for {
		rec, err := fr.Next()
		if err != nil {
			break
		}
		if rw.Write(rec) != nil {
			return
		}
	}
	rw.Close() //nolint:errcheck // finalizes gzip envelopes; client disconnects are routine
}

func (s *Server) handleTraceDelete(w http.ResponseWriter, r *http.Request) {
	if !s.tracesEnabled(w) {
		return
	}
	addr := r.PathValue("addr")
	if _, ok := s.traces.Get(addr); !ok {
		httpError(w, http.StatusNotFound, "no ingested trace %q", addr)
		return
	}
	// In-use protection: queued/running background jobs hold compiled
	// plans naming the trace, and in-flight sync requests hold acquired
	// references. Deleting under either would fail their materialization
	// mid-sweep.
	name := workload.IngestedName(addr)
	if (s.jobs != nil && s.jobs.UsesTrace(name)) || s.inflight.inUse(name) {
		httpError(w, http.StatusConflict, "trace %q is referenced by in-flight work; cancel or wait, then retry", name)
		return
	}
	if err := s.traces.Delete(addr); err != nil {
		if errors.Is(err, traceset.ErrNotFound) {
			httpError(w, http.StatusNotFound, "no ingested trace %q", addr)
			return
		}
		httpError(w, http.StatusInternalServerError, "deleting trace: %v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ingestedSuite is the suite label ingested traces carry in GET /traces
// listings, distinguishing them from every synthetic catalogue suite.
const ingestedSuite = "ingested"
