// Package obs is the dependency-free observability layer: lightweight
// spans with context propagation (W3C traceparent-style), an in-process
// ring buffer plus append-only NDJSON export, fixed-bucket latency
// histograms rendered in Prometheus text format, a per-job phase-timing
// collector, and slog helpers that stamp trace IDs onto log lines.
//
// Everything is nil-safe and allocation-free when disabled: obs.Start
// returns a nil *Span unless a Tracer or Timings collector is present in
// the context, and every method on a nil *Span, *Tracer, *Histogram and
// *Timings is a no-op. Instrumentation is expected at phase granularity
// (per request, per shard, per slice) — never inside the simulator's
// per-record step loop, whose zero-alloc pin must keep passing with
// tracing enabled.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key=val span attribute.
type Attr struct {
	Key   string
	Value string
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: strconv.Itoa(v)} }

// SpanContext is the propagatable identity of a span: hex-encoded
// 16-byte trace ID and 8-byte span ID, the two fields a traceparent
// header carries.
type SpanContext struct {
	TraceID string
	SpanID  string
}

// Valid reports whether the context carries well-formed IDs.
func (sc SpanContext) Valid() bool {
	return len(sc.TraceID) == 32 && len(sc.SpanID) == 16 && isHex(sc.TraceID) && isHex(sc.SpanID)
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Span is one timed operation. Fields are set by Start and frozen by
// End; a nil *Span (tracing disabled) accepts every method as a no-op.
type Span struct {
	TraceID  string
	SpanID   string
	ParentID string
	Name     string
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr

	tracer  *Tracer
	timings *Timings
}

// spanWire is the JSON shape shared by the NDJSON log and
// GET /debug/traces.
type spanWire struct {
	TraceID    string            `json:"trace_id"`
	SpanID     string            `json:"span_id"`
	ParentID   string            `json:"parent_id,omitempty"`
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationUS int64             `json:"duration_us"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// MarshalJSON renders the span in the wire shape used by both the
// NDJSON span log and GET /debug/traces.
func (s Span) MarshalJSON() ([]byte, error) {
	w := spanWire{
		TraceID:    s.TraceID,
		SpanID:     s.SpanID,
		ParentID:   s.ParentID,
		Name:       s.Name,
		Start:      s.Start,
		DurationUS: s.Duration.Microseconds(),
	}
	if len(s.Attrs) > 0 {
		w.Attrs = make(map[string]string, len(s.Attrs))
		for _, a := range s.Attrs {
			w.Attrs[a.Key] = a.Value
		}
	}
	return json.Marshal(w)
}

// SetAttr adds (or overwrites) a key=val attribute.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	for i := range s.Attrs {
		if s.Attrs[i].Key == k {
			s.Attrs[i].Value = v
			return
		}
	}
	s.Attrs = append(s.Attrs, Attr{Key: k, Value: v})
}

// SetName renames the span — used by the HTTP middleware, which only
// learns the matched route pattern after the mux has dispatched.
func (s *Span) SetName(name string) {
	if s != nil {
		s.Name = name
	}
}

// Context returns the span's propagatable identity (zero for nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.TraceID, SpanID: s.SpanID}
}

// End freezes the span's duration, feeds the phase-timing collector (if
// one was in scope at Start), and hands the span to the tracer's ring
// buffer and NDJSON log. Call exactly once.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.Duration = time.Since(s.Start)
	s.timings.Add(s.Name, s.Duration)
	if s.tracer != nil {
		s.tracer.record(s)
	}
}

// Tracer collects finished spans: the most recent RingSize in a ring
// buffer (served by GET /debug/traces) and, when Log is set, every span
// as one NDJSON line.
type Tracer struct {
	mu   sync.Mutex
	ring []Span
	head int // next write slot
	n    int // occupancy

	logMu sync.Mutex
	logW  io.Writer

	started  atomic.Uint64
	finished atomic.Uint64
	dropped  atomic.Uint64
	logBytes atomic.Int64
}

// TracerOptions configures NewTracer.
type TracerOptions struct {
	// RingSize caps the in-memory span buffer (default 512). The oldest
	// span is dropped (and counted) when the ring is full.
	RingSize int
	// Log, when set, receives every finished span as one NDJSON line.
	Log io.Writer
}

// NewTracer builds a tracer.
func NewTracer(o TracerOptions) *Tracer {
	if o.RingSize <= 0 {
		o.RingSize = 512
	}
	return &Tracer{ring: make([]Span, o.RingSize), logW: o.Log}
}

func (t *Tracer) record(s *Span) {
	t.finished.Add(1)
	t.mu.Lock()
	t.ring[t.head] = *s
	t.head = (t.head + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	} else {
		t.dropped.Add(1)
	}
	t.mu.Unlock()
	if t.logW != nil {
		line, err := json.Marshal(*s)
		if err != nil {
			return
		}
		line = append(line, '\n')
		t.logMu.Lock()
		n, _ := t.logW.Write(line) // best effort: a full disk must not fail the request
		t.logMu.Unlock()
		t.logBytes.Add(int64(n))
	}
}

// Observe records an already-measured operation as a finished span —
// for call sites where start and end are observed in different stack
// frames (e.g. a lease granted in one HTTP exchange and settled in
// another). The span joins parent's trace when parent is valid.
func (t *Tracer) Observe(parent SpanContext, name string, start time.Time, d time.Duration, attrs ...Attr) {
	if t == nil {
		return
	}
	s := Span{
		TraceID:  parent.TraceID,
		ParentID: parent.SpanID,
		SpanID:   newID(8),
		Name:     name,
		Start:    start,
		Duration: d,
		Attrs:    attrs,
	}
	if !parent.Valid() {
		s.TraceID, s.ParentID = newID(16), ""
	}
	t.started.Add(1)
	t.record(&s)
}

// Recent returns up to limit spans from the ring buffer, newest first
// (all of them when limit <= 0).
func (t *Tracer) Recent(limit int) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.n
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]Span, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, t.ring[(t.head-i+len(t.ring))%len(t.ring)])
	}
	return out
}

// TracerStats is the tracer's counter snapshot, shaped for the /stats
// "obs" block.
type TracerStats struct {
	SpansStarted  uint64 `json:"spans_started"`
	SpansFinished uint64 `json:"spans_finished"`
	SpansDropped  uint64 `json:"spans_dropped"`
	RingOccupancy int    `json:"ring_occupancy"`
	TraceLogBytes int64  `json:"trace_log_bytes"`
}

// Stats snapshots the tracer's counters (zero value for nil).
func (t *Tracer) Stats() TracerStats {
	if t == nil {
		return TracerStats{}
	}
	t.mu.Lock()
	occ := t.n
	t.mu.Unlock()
	return TracerStats{
		SpansStarted:  t.started.Load(),
		SpansFinished: t.finished.Load(),
		SpansDropped:  t.dropped.Load(),
		RingOccupancy: occ,
		TraceLogBytes: t.logBytes.Load(),
	}
}

// Timings accumulates span durations by name — one collector per job,
// carried in the job's context, aggregated into the job's phase-timing
// breakdown. Durations for spans that ran concurrently (parallel
// shards, slices) add up and may exceed wall time.
type Timings struct {
	mu sync.Mutex
	d  map[string]time.Duration
}

// NewTimings builds an empty collector.
func NewTimings() *Timings { return &Timings{d: make(map[string]time.Duration)} }

// Add accumulates d under name (no-op on nil).
func (t *Timings) Add(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.d[name] += d
	t.mu.Unlock()
}

// Snapshot copies the accumulated durations.
func (t *Timings) Snapshot() map[string]time.Duration {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]time.Duration, len(t.d))
	for k, v := range t.d {
		out[k] = v
	}
	return out
}

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
	remoteKey
	timingsKey
)

// WithTracer arms a context: spans started under it are recorded by t.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the context's tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// WithRemoteParent marks sc as the parent for the next span started
// under ctx — how a worker's spans join the coordinator's trace.
func WithRemoteParent(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, remoteKey, sc)
}

// WithTimings attaches a phase-duration collector: every span ended
// under ctx adds its duration to tm, keyed by span name.
func WithTimings(ctx context.Context, tm *Timings) context.Context {
	if tm == nil {
		return ctx
	}
	return context.WithValue(ctx, timingsKey, tm)
}

// TimingsFrom returns the context's collector, or nil.
func TimingsFrom(ctx context.Context) *Timings {
	t, _ := ctx.Value(timingsKey).(*Timings)
	return t
}

// FromContext returns the current span, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// SpanContextFrom resolves the trace identity visible in ctx: the
// current span's, else a remote parent's, else zero.
func SpanContextFrom(ctx context.Context) SpanContext {
	if s := FromContext(ctx); s != nil {
		return s.Context()
	}
	sc, _ := ctx.Value(remoteKey).(SpanContext)
	return sc
}

// Start opens a span named name as a child of the context's current
// span (or remote parent, or as a new trace root) and returns a context
// carrying it. When the context has neither a tracer nor a timings
// collector the fast path returns (ctx, nil) — two map-free Value
// lookups and no allocation.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	tr, _ := ctx.Value(tracerKey).(*Tracer)
	tm, _ := ctx.Value(timingsKey).(*Timings)
	if tr == nil && tm == nil {
		return ctx, nil
	}
	s := &Span{Name: name, Start: time.Now(), Attrs: attrs, tracer: tr, timings: tm}
	if parent := FromContext(ctx); parent != nil {
		s.TraceID, s.ParentID = parent.TraceID, parent.SpanID
	} else if rc, ok := ctx.Value(remoteKey).(SpanContext); ok && rc.Valid() {
		s.TraceID, s.ParentID = rc.TraceID, rc.SpanID
	} else {
		s.TraceID = newID(16)
	}
	s.SpanID = newID(8)
	if tr != nil {
		tr.started.Add(1)
	}
	return context.WithValue(ctx, spanKey, s), s
}

// newID returns n random bytes hex-encoded.
func newID(n int) string {
	var buf [16]byte
	b := buf[:n]
	if _, err := rand.Read(b); err != nil {
		// crypto/rand never fails on supported platforms; a zero ID is
		// still well-formed if it somehow does.
		for i := range b {
			b[i] = 0
		}
	}
	return hex.EncodeToString(b)
}

// TraceparentHeader is the propagation header name (W3C trace-context
// style: "00-<trace-id>-<span-id>-01").
const TraceparentHeader = "traceparent"

// Traceparent formats sc as a traceparent header value ("" if invalid).
func Traceparent(sc SpanContext) string {
	if !sc.Valid() {
		return ""
	}
	return "00-" + sc.TraceID + "-" + sc.SpanID + "-01"
}

// ContextTraceparent formats the trace identity visible in ctx ("" when
// none) — what the coordinator stamps onto work units.
func ContextTraceparent(ctx context.Context) string {
	return Traceparent(SpanContextFrom(ctx))
}

// ParseTraceparent parses a traceparent header value.
func ParseTraceparent(v string) (SpanContext, bool) {
	// version(2) - trace(32) - span(16) - flags(2)
	if len(v) != 2+1+32+1+16+1+2 || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return SpanContext{}, false
	}
	sc := SpanContext{TraceID: v[3:35], SpanID: v[36:52]}
	if !isHex(v[:2]) || !isHex(v[53:]) || !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// Inject stamps ctx's trace identity onto an outbound request's headers
// (no-op when ctx carries no span).
func Inject(ctx context.Context, h http.Header) {
	if tp := ContextTraceparent(ctx); tp != "" {
		h.Set(TraceparentHeader, tp)
	}
}

// Extract reads a remote trace identity from inbound request headers.
func Extract(h http.Header) (SpanContext, bool) {
	return ParseTraceparent(h.Get(TraceparentHeader))
}
