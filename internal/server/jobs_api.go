// Jobs API: the asynchronous face of /simulate and /sweep. A job is the
// same declarative request, submitted with POST /jobs and executed in the
// background by internal/jobs on the same shared engine — so a job and a
// synchronous request describing the same work coalesce onto one
// simulation and return rows with identical content addresses.
//
//	POST   /jobs              submit  → 202 + content-addressed id
//	GET    /jobs              list jobs (?state= filter, ?limit=/?after= pagination)
//	GET    /jobs/{id}         status, progress, ETA
//	GET    /jobs/{id}/result  the SweepResponse / SimulateResponse document
//	GET    /jobs/{id}/events  NDJSON stream of status snapshots
//	DELETE /jobs/{id}         cooperative cancel
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/engine"
	"repro/internal/jobs"
)

// Compiler adapts the server's declarative request types to the jobs
// subsystem: spec type "sweep" compiles a SweepRequest, "simulate" a
// SimulateRequest, with exactly the validation, strict decoding and work
// caps of the synchronous handlers. Inject it into jobs.Open for the
// same engine the server runs on.
func Compiler(eng *engine.Engine) jobs.Compiler {
	return CompilerWithPolicy(eng, nil)
}

// CompilerWithPolicy is Compiler with a slice policy: background jobs
// auto-slice exactly like the synchronous handlers, so both paths address
// (and therefore memoize) identically. Pass the same policy given to
// SetSlicePolicy.
func CompilerWithPolicy(eng *engine.Engine, policy *SlicePolicy) jobs.Compiler {
	return func(spec jobs.Spec) (*jobs.Plan, error) {
		if len(bytes.TrimSpace(spec.Request)) == 0 {
			return nil, fmt.Errorf("job has no request body")
		}
		scale := eng.Scale()
		switch spec.Type {
		case "sweep":
			var req SweepRequest
			if err := decodeSpecJSON(spec.Request, &req); err != nil {
				return nil, err
			}
			plan, err := compileSweep(scale, req, policy)
			return planFor(req, plan, err)
		case "simulate":
			var req SimulateRequest
			if err := decodeSpecJSON(spec.Request, &req); err != nil {
				return nil, err
			}
			plan, err := compileSimulate(scale, req, policy)
			return planFor(req, plan, err)
		}
		return nil, fmt.Errorf("unknown job type %q (want \"sweep\" or \"simulate\")", spec.Type)
	}
}

// planFor wraps a compiled request plan as a jobs.Plan. The fingerprint
// is the decoded request re-marshaled — one canonical spelling per
// semantic request, so byte-different submissions of the same work hash
// to the same job ID.
func planFor(req any, plan *requestPlan, err error) (*jobs.Plan, error) {
	if err != nil {
		return nil, err
	}
	fp, err := json.Marshal(req)
	if err != nil { // request types marshal by construction
		return nil, err
	}
	return &jobs.Plan{Fingerprint: string(fp), Jobs: plan.jobs, Finalize: plan.assemble}, nil
}

// decodeSpecJSON strict-decodes a raw spec body with the same
// unknown-field rejection as the synchronous handlers.
func decodeSpecJSON(raw json.RawMessage, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request: %v", err)
	}
	return nil
}

// JobSubmitRequest is the POST /jobs body: which handler's request type
// to run ("sweep" or "simulate"), the request itself, and an optional
// dispatch lane ("high" runs before "normal").
type JobSubmitRequest struct {
	Type     string          `json:"type"`
	Priority string          `json:"priority,omitempty"`
	Request  json.RawMessage `json:"request"`
}

// JobProgress is a job's live advancement in wire-friendly units.
type JobProgress struct {
	Done        int   `json:"done"`
	Total       int   `json:"total"`
	Cached      int   `json:"cached"`
	ElapsedMS   int64 `json:"elapsed_ms"`
	RemainingMS int64 `json:"remaining_ms"`
}

// JobStatus is one job on the wire — the submit/list/get/events payload.
type JobStatus struct {
	ID        string      `json:"id"`
	Type      string      `json:"type"`
	Priority  string      `json:"priority"`
	State     string      `json:"state"`
	Error     string      `json:"error,omitempty"`
	Recovered bool        `json:"recovered,omitempty"`
	Coalesced bool        `json:"coalesced,omitempty"`
	Created   time.Time   `json:"created"`
	Started   *time.Time  `json:"started,omitempty"`
	Finished  *time.Time  `json:"finished,omitempty"`
	Progress  JobProgress `json:"progress"`
	// TraceID is the job's run-trace identity — pass it (or the job ID)
	// to GET /debug/traces to see the job's spans. Empty when tracing
	// was off at execution time.
	TraceID string `json:"trace_id,omitempty"`
	// Timings is the per-phase duration breakdown, present once the job
	// reaches a terminal state (and preserved across restarts).
	Timings *jobs.Timings `json:"timings,omitempty"`
	// Timelines links the interval-telemetry documents of this job's
	// completed engine runs (GET /results/{addr}/timeline paths).
	// Populated by GET /jobs/{id} only, for succeeded jobs whose runs
	// executed with telemetry armed; cached replays have no timelines.
	Timelines []string `json:"timelines,omitempty"`
}

// JobListResponse wraps GET /jobs (jobs is [] when empty, never null).
// NextAfter is set when ?limit= truncated the listing: pass it back as
// ?after= to resume — the cursor is a job ID, so the page boundary stays
// stable as new jobs are appended behind it.
type JobListResponse struct {
	Jobs      []JobStatus `json:"jobs"`
	NextAfter string      `json:"next_after,omitempty"`
}

func statusFor(rec jobs.Record) JobStatus {
	st := JobStatus{
		ID:        rec.ID,
		Type:      rec.Spec.Type,
		Priority:  string(rec.Spec.Priority),
		State:     string(rec.State),
		Error:     rec.Error,
		Recovered: rec.Recovered,
		Created:   rec.Created,
		Progress: JobProgress{
			Done:        rec.Progress.Done,
			Total:       rec.Progress.Total,
			Cached:      rec.Progress.Cached,
			ElapsedMS:   rec.Progress.Elapsed.Milliseconds(),
			RemainingMS: rec.Progress.Remaining.Milliseconds(),
		},
	}
	if !rec.Started.IsZero() {
		t := rec.Started
		st.Started = &t
	}
	if !rec.Finished.IsZero() {
		t := rec.Finished
		st.Finished = &t
	}
	st.TraceID = rec.TraceID
	st.Timings = rec.Timings
	return st
}

// jobsEnabled answers 503 (and returns false) when no jobs manager is
// attached — the routes always exist so clients get a clear signal
// rather than a generic 404.
func (s *Server) jobsEnabled(w http.ResponseWriter) bool {
	if s.jobs == nil {
		httpError(w, http.StatusServiceUnavailable, "jobs subsystem not enabled on this server")
		return false
	}
	return true
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	var req JobSubmitRequest
	if err := decodeStrict(w, r, &req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	rec, coalesced, err := s.jobs.SubmitContext(r.Context(), jobs.Spec{
		Type:     req.Type,
		Request:  req.Request,
		Priority: jobs.Priority(req.Priority),
	})
	switch {
	case errors.Is(err, jobs.ErrQueueFull), errors.Is(err, jobs.ErrClosed):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st := statusFor(rec)
	st.Coalesced = coalesced
	writeJSON(w, http.StatusAccepted, st)
}

// handleJobList lists jobs in submission order, with operator-scale
// controls: ?state= filters to one lifecycle state, ?limit= caps the
// page size, and ?after=<job id> resumes past a previous page's last
// row. The cursor indexes the full submission-ordered list (not the
// filtered view), so a row's page position never shifts when jobs in
// other states appear — and since every returned ID exists in that
// list, next_after is always a valid cursor.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	q := r.URL.Query()
	stateFilter := jobs.State(q.Get("state"))
	if stateFilter != "" {
		switch stateFilter {
		case jobs.Queued, jobs.Running, jobs.Succeeded, jobs.Failed, jobs.Canceled, jobs.Interrupted:
		default:
			httpError(w, http.StatusBadRequest, "unknown state %q", stateFilter)
			return
		}
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			httpError(w, http.StatusBadRequest, "limit must be a positive integer, got %q", v)
			return
		}
		limit = n
	}
	recs := s.jobs.List()
	if after := q.Get("after"); after != "" {
		start := -1
		for i, rec := range recs {
			if rec.ID == after {
				start = i + 1
				break
			}
		}
		if start < 0 {
			httpError(w, http.StatusBadRequest, "unknown cursor %q", after)
			return
		}
		recs = recs[start:]
	}
	resp := JobListResponse{Jobs: []JobStatus{}}
	for _, rec := range recs {
		if stateFilter != "" && rec.State != stateFilter {
			continue
		}
		if limit > 0 && len(resp.Jobs) == limit {
			resp.NextAfter = resp.Jobs[limit-1].ID
			break
		}
		resp.Jobs = append(resp.Jobs, statusFor(rec))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	rec, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	st := statusFor(rec)
	// Link only timelines that actually exist: a job's runs produce
	// documents exactly when they executed with telemetry armed, so
	// cached replays and telemetry-off runs link nothing.
	for _, addr := range rec.Addresses {
		if _, ok := s.eng.Telemetry(addr); ok {
			st.Timelines = append(st.Timelines, "/results/"+addr+"/timeline")
		}
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	doc, err := s.jobs.Result(r.PathValue("id"))
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	case err != nil:
		// Not succeeded (yet): the body names the state so clients know
		// whether to keep polling or give up.
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	rec, err := s.jobs.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	case errors.Is(err, jobs.ErrTerminal):
		httpError(w, http.StatusConflict, "job already %s", rec.State)
		return
	}
	// 202, not 200: a running job cancels cooperatively at the next shard
	// boundary; poll GET /jobs/{id} (or stream events) for the terminal
	// state.
	writeJSON(w, http.StatusAccepted, statusFor(rec))
}

// handleJobEvents streams NDJSON status snapshots — one JobStatus per
// line, an immediate snapshot first, then one per state/progress change,
// ending after the terminal snapshot. Consumers lagging behind receive
// latest-wins snapshots (progress is monotonic, never rewound).
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	if !s.jobsEnabled(w) {
		return
	}
	ch, stop, err := s.jobs.Watch(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	defer stop()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		select {
		case rec, ok := <-ch:
			if !ok {
				return // terminal snapshot already sent
			}
			if err := enc.Encode(statusFor(rec)); err != nil {
				return // client gone
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}
