package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/engine"
)

// TestAdmissionBucket drives the token bucket with a fake clock.
func TestAdmissionBucket(t *testing.T) {
	now := time.Unix(1000, 0)
	a := newAdmission(2, 3) // 2 tokens/s, burst 3
	a.now = func() time.Time { return now }

	for i := 0; i < 3; i++ {
		if ok, _ := a.take("alice"); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	ok, retry := a.take("alice")
	if ok {
		t.Fatal("over-burst request admitted")
	}
	// Empty bucket at 2 tokens/s: the next token is 500ms out.
	if retry <= 0 || retry > 500*time.Millisecond {
		t.Fatalf("retry = %v, want (0, 500ms]", retry)
	}

	// Another client has its own bucket.
	if ok, _ := a.take("bob"); !ok {
		t.Fatal("independent client rejected")
	}

	// After the refill interval the client is admitted again — and tokens
	// cap at burst, not beyond.
	now = now.Add(10 * time.Second)
	for i := 0; i < 3; i++ {
		if ok, _ := a.take("alice"); !ok {
			t.Fatalf("post-refill request %d rejected", i)
		}
	}
	if ok, _ := a.take("alice"); ok {
		t.Fatal("refill exceeded burst cap")
	}
}

// TestAdmissionBucketBound checks the per-client map stays bounded under
// an address-cycling client.
func TestAdmissionBucketBound(t *testing.T) {
	a := newAdmission(1, 1)
	for i := 0; i < maxAdmissionBuckets+100; i++ {
		a.take("client-" + strconv.Itoa(i))
	}
	a.mu.Lock()
	n := len(a.buckets)
	a.mu.Unlock()
	if n > maxAdmissionBuckets {
		t.Fatalf("buckets = %d, want <= %d", n, maxAdmissionBuckets)
	}
}

// TestAdmissionHTTP exercises the 429 path end to end: status,
// Retry-After header, JSON error body — and that cheap read endpoints
// are never limited.
func TestAdmissionHTTP(t *testing.T) {
	srv := New(engine.New(engine.Options{Scale: tiny})).SetAdmission(0.001, 1)
	now := time.Unix(1000, 0)
	srv.admit.now = func() time.Time { return now }
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// First request takes the lone burst token.
	if r := postJSON(t, ts.URL+"/simulate", SimulateRequest{Trace: "lbm-1274", Prefetcher: "Gaze"}, nil); r.StatusCode != http.StatusOK {
		t.Fatalf("first request: status = %d", r.StatusCode)
	}
	// Second is rejected with Retry-After and the standard error body.
	r := postJSON(t, ts.URL+"/simulate", SimulateRequest{Trace: "lbm-1274", Prefetcher: "Gaze"}, nil)
	if r.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status = %d, want 429", r.StatusCode)
	}
	ra, err := strconv.Atoi(r.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer of seconds", r.Header.Get("Retry-After"))
	}
	if r.Header.Get("Content-Type") != "application/json" {
		t.Errorf("content type = %q", r.Header.Get("Content-Type"))
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.Error == "" {
		t.Errorf("429 body not the standard error shape: %v %q", err, body.Error)
	}

	// The other expensive endpoints share the same bucket.
	if r := postJSON(t, ts.URL+"/sweep", SweepRequest{Traces: []string{"lbm-1274"}, Prefetchers: []string{"Gaze"}}, nil); r.StatusCode != http.StatusTooManyRequests {
		t.Errorf("sweep while limited: status = %d, want 429", r.StatusCode)
	}

	// Cheap reads are never limited.
	for _, path := range []string{"/stats", "/metrics", "/analytics/matrix?traces=lbm-1274&prefetchers=Gaze", "/healthz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s while limited: status = %d, want 200", path, resp.StatusCode)
		}
	}

	// After the advertised wait, the client is admitted again.
	now = now.Add(time.Duration(ra) * time.Second)
	if r := postJSON(t, ts.URL+"/simulate", SimulateRequest{Trace: "lbm-1274", Prefetcher: "Gaze"}, nil); r.StatusCode != http.StatusOK {
		t.Fatalf("after Retry-After: status = %d, want 200", r.StatusCode)
	}
}

// TestAdmissionDisabledByDefault: a server without SetAdmission never
// rate-limits.
func TestAdmissionDisabledByDefault(t *testing.T) {
	ts := newTestServer(t)
	for i := 0; i < 20; i++ {
		if r := postJSON(t, ts.URL+"/simulate", SimulateRequest{Trace: "lbm-1274", Prefetcher: "Gaze"}, nil); r.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status = %d", i, r.StatusCode)
		}
	}
}
