package sim

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/prefetch"
	"repro/internal/trace"
)

// l2Recorder counts what an L2-attached prefetcher observes: it must see
// only L1-miss traffic.
type l2Recorder struct {
	observed int
	issued   int
}

func (*l2Recorder) Name() string { return "l2rec" }
func (r *l2Recorder) Train(a prefetch.Access, issue prefetch.IssueFunc) {
	r.observed++
	line := a.VAddr &^ (mem.LineSize - 1)
	issue(prefetch.Request{VLine: line + 4*mem.LineSize, Level: prefetch.LevelL2})
	r.issued++
}
func (*l2Recorder) EvictNotify(uint64) {}

func TestL2PrefetcherSpecPath(t *testing.T) {
	cfg := smallCfg(1)
	rec := &l2Recorder{}
	specs := []CoreSpec{{
		Trace:        trace.NewLooping(trace.NewSliceReader(streamTrace(8192, 9))),
		L1Prefetcher: nil,
		L2Prefetcher: rec,
	}}
	sys, err := New(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	if rec.observed == 0 {
		t.Fatal("L2 prefetcher never trained")
	}
	// Its fills land at L2, never L1.
	if res.Cores[0].L1D.PrefetchFills != 0 {
		t.Error("L2-attached prefetcher filled L1D")
	}
	if res.Cores[0].L2C.PrefetchFills == 0 {
		t.Error("L2-attached prefetcher produced no L2 fills")
	}

	// An L2 prefetcher only observes L1-miss traffic: on a cache-resident
	// trace it must see (almost) nothing.
	resident := make([]trace.Record, 2048)
	for i := range resident {
		resident[i] = trace.Record{PC: 0x400, Addr: 0x9000 + uint64(i%8)*64, NonMem: 9, Kind: trace.Load}
	}
	quiet := &l2Recorder{}
	sys2, err := New(cfg, []CoreSpec{{
		Trace:        trace.NewLooping(trace.NewSliceReader(resident)),
		L2Prefetcher: quiet,
	}})
	if err != nil {
		t.Fatal(err)
	}
	sys2.Run()
	if quiet.observed > 16 {
		t.Errorf("L2 prefetcher observed %d events on a cache-resident trace", quiet.observed)
	}
}

func TestL1AndL2PrefetchersCompose(t *testing.T) {
	// Fig 13 plumbing: both levels active simultaneously. The L1
	// prefetcher here only re-requests demanded lines (all dropped as
	// redundant), so L1 misses keep flowing to the L2 prefetcher.
	cfg := smallCfg(1)
	specs := []CoreSpec{{
		Trace:        trace.NewLooping(trace.NewSliceReader(streamTrace(8192, 9))),
		L1Prefetcher: redundantPF{},
		L2Prefetcher: &l2Recorder{},
	}}
	sys, err := New(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run()
	if res.Cores[0].PrefetchesRedundant == 0 {
		t.Error("L1 prefetcher idle in composed config")
	}
	if res.Cores[0].L2C.PrefetchFills == 0 {
		t.Error("L2 prefetcher idle in composed config")
	}
}

func TestConfigSweepsChangeOutcomes(t *testing.T) {
	// Fig 16 plumbing: bandwidth and cache-size mutations must actually
	// move performance on a memory-bound workload.
	recs := pointerChaseTrace(60000, 9)
	slow := smallCfg(1).WithDRAMMTPS(800)
	fast := smallCfg(1).WithDRAMMTPS(12800)
	ipcSlow := runOne(t, slow, recs, nil).Cores[0].IPC
	ipcFast := runOne(t, fast, recs, nil).Cores[0].IPC
	if ipcFast <= ipcSlow {
		t.Errorf("12800MTPS IPC %.3f <= 800MTPS %.3f", ipcFast, ipcSlow)
	}

	// A 768KB working set fits an 8MB LLC but thrashes a 0.5MB one. The
	// window must cover several sweeps so the big LLC's hits materialize:
	// 12000 lines re-swept, ~10 instructions per access.
	llcCfg := smallCfg(1)
	llcCfg.WarmupInstructions = 130_000
	llcCfg.SimInstructions = 250_000
	ws := make([]trace.Record, 0, 36000)
	for i := 0; i < 36000; i++ {
		ws = append(ws, trace.Record{
			PC: 0x400, Addr: 0x40000000 + uint64(i%12000)*64, NonMem: 9, Kind: trace.Load,
		})
	}
	ipcSmall := runOne(t, llcCfg.WithLLCSizeMB(0.5), ws, nil).Cores[0].IPC
	ipcBig := runOne(t, llcCfg.WithLLCSizeMB(8), ws, nil).Cores[0].IPC
	if ipcBig <= ipcSmall {
		t.Errorf("8MB-LLC IPC %.3f <= 0.5MB-LLC %.3f", ipcBig, ipcSmall)
	}
}

func TestStoresAccessCacheWithoutTraining(t *testing.T) {
	recs := make([]trace.Record, 4096)
	for i := range recs {
		recs[i] = trace.Record{
			PC: 0x400, Addr: 0x50000000 + uint64(i)*64, NonMem: 9, Kind: trace.Store,
		}
	}
	pf := &evictRecorder{}
	trainCounter := &countingPF{}
	res := runOne(t, smallCfg(1), recs, trainCounter)
	_ = pf
	if trainCounter.trains != 0 {
		t.Errorf("stores trained the prefetcher %d times", trainCounter.trains)
	}
	if res.Cores[0].L1D.DemandAccesses == 0 {
		t.Error("stores did not access the cache")
	}
}

type countingPF struct{ trains int }

func (*countingPF) Name() string { return "counting" }
func (c *countingPF) Train(prefetch.Access, prefetch.IssueFunc) {
	c.trains++
}
func (*countingPF) EvictNotify(uint64) {}
