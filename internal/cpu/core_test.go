package cpu

import (
	"math"
	"testing"
)

func TestIdealIPCEqualsWidth(t *testing.T) {
	c := New(DefaultConfig())
	c.BeginMeasurement()
	c.ExecuteRun(100000)
	ipc := c.IPC()
	if math.Abs(ipc-4) > 0.05 {
		t.Errorf("ideal IPC = %v, want ~4", ipc)
	}
}

func TestShortLatencyHidden(t *testing.T) {
	// L1-hit-style loads (5 cycles) interleaved with non-mem work must not
	// reduce IPC below ~width: the ROB hides them.
	c := New(DefaultConfig())
	c.BeginMeasurement()
	for i := 0; i < 20000; i++ {
		c.Execute(5)
		c.ExecuteRun(3)
	}
	if ipc := c.IPC(); ipc < 3.5 {
		t.Errorf("IPC with hidden L1 hits = %v, want ~4", ipc)
	}
}

func TestLongMissesLimitedByROB(t *testing.T) {
	// Every 100th instruction is a 400-cycle miss. With a 352-entry ROB,
	// roughly 3.5 misses overlap, so the per-miss effective cost is
	// ~400/3.5 ≈ 114 cycles per 100 instructions ⇒ IPC ≈ 100/(114+25).
	c := New(DefaultConfig())
	c.BeginMeasurement()
	for i := 0; i < 5000; i++ {
		c.Execute(400)
		c.ExecuteRun(99)
	}
	ipc := c.IPC()
	if ipc < 0.4 || ipc > 1.5 {
		t.Errorf("miss-bound IPC = %v, want in (0.4, 1.5)", ipc)
	}
	// And a bigger ROB must raise it.
	big := New(Config{FetchWidth: 4, RetireWidth: 4, ROBSize: 2048})
	big.BeginMeasurement()
	for i := 0; i < 5000; i++ {
		big.Execute(400)
		big.ExecuteRun(99)
	}
	if big.IPC() <= ipc {
		t.Errorf("larger ROB did not raise IPC: %v vs %v", big.IPC(), ipc)
	}
}

func TestSerializedMisses(t *testing.T) {
	// Back-to-back dependent-style misses (one per ROB window) cannot
	// overlap: IPC must collapse towards lat/instr ratio.
	c := New(Config{FetchWidth: 4, RetireWidth: 4, ROBSize: 8})
	c.BeginMeasurement()
	for i := 0; i < 2000; i++ {
		c.Execute(200)
		c.ExecuteRun(7)
	}
	// 8-entry ROB: a 200-cycle miss every 8 instructions, no overlap
	// (next miss fetches only after previous retires). IPC ≈ 8/200 = 0.04.
	if ipc := c.IPC(); ipc > 0.1 {
		t.Errorf("tiny-ROB IPC = %v, want < 0.1", ipc)
	}
}

func TestFetchTimeMonotone(t *testing.T) {
	c := New(DefaultConfig())
	prev := -1.0
	for i := 0; i < 1000; i++ {
		var f float64
		if i%7 == 0 {
			f = c.Execute(300)
		} else {
			f = c.Execute(0)
		}
		if f < prev {
			t.Fatalf("fetch time went backwards at %d: %v < %v", i, f, prev)
		}
		prev = f
	}
}

func TestNextFetchMatchesExecute(t *testing.T) {
	c := New(DefaultConfig())
	for i := 0; i < 100; i++ {
		want := c.NextFetch()
		got := c.Execute(float64(i % 50))
		if got != want {
			t.Fatalf("step %d: NextFetch=%v but Execute fetched at %v", i, want, got)
		}
	}
}

func TestMeasurementWindow(t *testing.T) {
	c := New(DefaultConfig())
	c.ExecuteRun(1000) // warm-up
	c.BeginMeasurement()
	c.ExecuteRun(500)
	if c.MeasuredInstructions() != 500 {
		t.Errorf("MeasuredInstructions = %d, want 500", c.MeasuredInstructions())
	}
	if c.Instructions() != 1500 {
		t.Errorf("Instructions = %d, want 1500", c.Instructions())
	}
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	for _, bad := range []Config{{}, {FetchWidth: 4}, {FetchWidth: 4, RetireWidth: 4}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
}

func TestIPCZeroBeforeWork(t *testing.T) {
	c := New(DefaultConfig())
	c.BeginMeasurement()
	if ipc := c.IPC(); ipc != 0 {
		t.Errorf("IPC with no work = %v", ipc)
	}
}
