package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/engine"
	"repro/internal/workload"
)

// tiny keeps HTTP tests fast while still exercising real simulations.
var tiny = engine.Scale{TracesPerSuite: 1, TraceLen: 10_000, Warmup: 5_000, Sim: 20_000}

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(engine.New(engine.Options{Scale: tiny})).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, req, resp any) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Body.Close() })
	if resp != nil && r.StatusCode == http.StatusOK {
		if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestSimulateEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var resp SimulateResponse
	r := postJSON(t, ts.URL+"/simulate",
		SimulateRequest{Trace: "lbm-1274", Prefetcher: "Gaze"}, &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", r.StatusCode)
	}
	if r.Header.Get("Content-Type") != "application/json" {
		t.Errorf("content type = %q", r.Header.Get("Content-Type"))
	}
	if resp.IPC <= 0 {
		t.Errorf("IPC = %v, want > 0", resp.IPC)
	}
	// Gaze on a streaming trace must beat the no-prefetch baseline and
	// report sane fractional metrics — the IPC/coverage/accuracy JSON the
	// acceptance criteria name.
	if resp.Speedup <= 1 {
		t.Errorf("speedup = %v, want > 1 on lbm", resp.Speedup)
	}
	if resp.Accuracy < 0 || resp.Accuracy > 1 || resp.Coverage < 0 || resp.Coverage > 1 {
		t.Errorf("accuracy/coverage out of range: %+v", resp)
	}
	if resp.IssuedPrefetches == 0 {
		t.Error("no prefetches issued")
	}
	if len(resp.Traces) != 1 || resp.Traces[0] != "lbm-1274" || resp.Cores != 1 {
		t.Errorf("echoed job wrong: %+v", resp)
	}
}

func TestSimulateMultiCore(t *testing.T) {
	ts := newTestServer(t)
	var resp SimulateResponse
	postJSON(t, ts.URL+"/simulate",
		SimulateRequest{Trace: "lbm-1274", Prefetcher: "IP-stride", Cores: 2}, &resp)
	if resp.Cores != 2 || len(resp.Traces) != 2 {
		t.Errorf("cores = %d traces = %v", resp.Cores, resp.Traces)
	}
}

func TestSimulateValidation(t *testing.T) {
	ts := newTestServer(t)
	cases := []SimulateRequest{
		{Prefetcher: "Gaze"},                                                       // no trace
		{Trace: "no-such-trace", Prefetcher: "Gaze"},                               // unknown trace
		{Trace: "lbm-1274", Prefetcher: "no-such-pf"},                              // unknown prefetcher
		{Trace: "lbm-1274", Prefetcher: "Gaze", L2: "xx"},                          // unknown L2
		{Trace: "lbm-1274", Prefetcher: "Gaze", Cores: 1 << 20},                    // absurd core count
		{Trace: "lbm-1274", Prefetcher: "Gaze", Cores: 3},                          // non-power-of-two cores
		{Traces: []string{"lbm-1274", "lbm-1274", "lbm-1274"}, Prefetcher: "Gaze"}, // ditto via traces
		{Traces: []string{"lbm-1274"}, Trace: "lbm-1274", Prefetcher: "Gaze"},      // trace and traces both set
		{Traces: []string{"lbm-1274"}, Cores: 8, Prefetcher: "Gaze"},               // cores contradicts traces
	}
	for _, c := range cases {
		r := postJSON(t, ts.URL+"/simulate", c, nil)
		if r.StatusCode != http.StatusBadRequest {
			t.Errorf("%+v: status = %d, want 400", c, r.StatusCode)
		}
	}
	for name, body := range map[string]string{
		"malformed body":   "{not json",
		"unknown field":    `{"trace":"lbm-1274","prefetcher":"Gaze","coers":2}`,
		"typo'd override":  `{"trace":"lbm-1274","prefetcher":"Gaze","overrides":{"llc_mb":2}}`,
		"unknown override": `{"trace":"lbm-1274","prefetcher":"Gaze","overrides":{"dram_mtps":800,"bogus":1}}`,
	} {
		r, err := http.Post(ts.URL+"/simulate", "application/json",
			bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, r.StatusCode)
		}
	}
}

func TestSweepEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var resp SweepResponse
	r := postJSON(t, ts.URL+"/sweep", SweepRequest{
		Traces:      []string{"lbm-1274", "bwaves_s-2609"},
		Prefetchers: []string{"IP-stride", "Gaze"},
	}, &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", r.StatusCode)
	}
	if len(resp.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(resp.Rows))
	}
	for _, row := range resp.Rows {
		if row.IPC <= 0 || row.Speedup <= 0 {
			t.Errorf("empty row: %+v", row)
		}
	}
	for _, pf := range []string{"IP-stride", "Gaze"} {
		if resp.GeomeanSpeedup[pf] <= 0 {
			t.Errorf("geomean for %s missing: %v", pf, resp.GeomeanSpeedup)
		}
	}
}

func TestSimulateWithOverrides(t *testing.T) {
	ts := newTestServer(t)
	var def, slow SimulateResponse
	postJSON(t, ts.URL+"/simulate",
		SimulateRequest{Trace: "lbm-1274", Prefetcher: "none"}, &def)
	r := postJSON(t, ts.URL+"/simulate", SimulateRequest{
		Trace: "lbm-1274", Prefetcher: "none",
		Overrides: &engine.Overrides{DRAMMTPS: 200},
	}, &slow)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", r.StatusCode)
	}
	if slow.Overrides == nil || slow.Overrides.DRAMMTPS != 200 {
		t.Errorf("overrides not echoed: %+v", slow.Overrides)
	}
	if def.Overrides != nil {
		t.Errorf("default run echoed overrides: %+v", def.Overrides)
	}
	// Starving DRAM bandwidth must show up in the metric.
	if slow.IPC >= def.IPC {
		t.Errorf("200 MTPS IPC %.3f >= default IPC %.3f", slow.IPC, def.IPC)
	}

	for _, o := range []engine.Overrides{
		{DRAMMTPS: -5}, {LLCMBPerCore: 1000}, {L2KB: 1}, {PQCapacity: 1 << 20},
	} {
		r := postJSON(t, ts.URL+"/simulate", SimulateRequest{
			Trace: "lbm-1274", Prefetcher: "Gaze", Overrides: &o,
		}, nil)
		if r.StatusCode != http.StatusBadRequest {
			t.Errorf("overrides %+v: status = %d, want 400", o, r.StatusCode)
		}
	}
}

// TestSweepAxisDRAMSensitivity reproduces a Fig 16a-style curve over
// HTTP: sweep DRAM bandwidth across the request's prefetchers and expect
// one sensitivity point per (value, prefetcher), with starved bandwidth
// changing the reported speedups.
func TestSweepAxisDRAMSensitivity(t *testing.T) {
	ts := newTestServer(t)
	values := []float64{200, 12800}
	pfs := []string{"IP-stride", "Gaze"}
	var resp SweepResponse
	r := postJSON(t, ts.URL+"/sweep", SweepRequest{
		Traces:      []string{"lbm-1274"},
		Prefetchers: pfs,
		// The repeated 200 must be deduplicated, not plotted twice.
		Axis: &SweepAxis{Param: "dram_mtps", Values: []float64{200, 12800, 200}},
	}, &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", r.StatusCode)
	}
	if len(resp.Sensitivity) != len(values)*len(pfs) {
		t.Fatalf("sensitivity points = %d, want %d", len(resp.Sensitivity), len(values)*len(pfs))
	}
	if len(resp.Rows) != len(values)*len(pfs) {
		t.Fatalf("rows = %d, want %d", len(resp.Rows), len(values)*len(pfs))
	}
	curve := map[string]map[float64]float64{}
	for _, p := range resp.Sensitivity {
		if p.Param != "dram_mtps" || p.GeomeanSpeedup <= 0 {
			t.Errorf("bad sensitivity point: %+v", p)
		}
		if curve[p.Prefetcher] == nil {
			curve[p.Prefetcher] = map[float64]float64{}
		}
		curve[p.Prefetcher][p.Value] = p.GeomeanSpeedup
	}
	for _, pf := range pfs {
		pts := curve[pf]
		if len(pts) != len(values) {
			t.Fatalf("%s: points at %v, want one per value", pf, pts)
		}
		if pts[200] == pts[12800] {
			t.Errorf("%s: speedup identical (%.3f) at 200 and 12800 MTPS", pf, pts[200])
		}
	}
	// Per-row detail carries the scenario each row ran under.
	for _, row := range resp.Rows {
		if row.Overrides == nil || row.Overrides.DRAMMTPS == 0 {
			t.Errorf("axis row missing overrides: %+v", row)
		}
	}
}

func TestSweepAxisValidation(t *testing.T) {
	ts := newTestServer(t)
	base := SweepRequest{Traces: []string{"lbm-1274"}, Prefetchers: []string{"Gaze"}}
	for name, axis := range map[string]*SweepAxis{
		"unknown param":   {Param: "llc", Values: []float64{1}},
		"no values":       {Param: "dram_mtps", Values: nil},
		"fractional int":  {Param: "dram_mtps", Values: []float64{800.5}},
		"zero value":      {Param: "dram_mtps", Values: []float64{0, 800}},
		"out of range":    {Param: "llc_mb_per_core", Values: []float64{1000}},
		"negative":        {Param: "l2_kb", Values: []float64{-256}},
		"huge value grid": {Param: "dram_mtps", Values: hugeValues()},
	} {
		req := base
		req.Axis = axis
		r := postJSON(t, ts.URL+"/sweep", req, nil)
		if r.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, r.StatusCode)
		}
	}
	// Base overrides are validated even without an axis.
	req := base
	req.Overrides = &engine.Overrides{DRAMMTPS: -1}
	if r := postJSON(t, ts.URL+"/sweep", req, nil); r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad base overrides: status = %d, want 400", r.StatusCode)
	}
}

// hugeValues builds an axis whose individually valid values multiply the
// grid past the sweep job cap.
func hugeValues() []float64 {
	vals := make([]float64, 2000)
	for i := range vals {
		vals[i] = float64(100 + i)
	}
	return vals
}

func TestSweepDedupesTraces(t *testing.T) {
	ts := newTestServer(t)
	var resp SweepResponse
	r := postJSON(t, ts.URL+"/sweep", SweepRequest{
		Traces:      []string{"lbm-1274", "lbm-1274"},
		Prefetchers: []string{"IP-stride"},
	}, &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", r.StatusCode)
	}
	// A repeated trace must not produce duplicate rows or double-weight
	// the geomean.
	if len(resp.Rows) != 1 {
		t.Errorf("rows = %d, want 1 after dedupe", len(resp.Rows))
	}

	// Same for prefetchers.
	r = postJSON(t, ts.URL+"/sweep", SweepRequest{
		Traces:      []string{"lbm-1274"},
		Prefetchers: []string{"IP-stride", "IP-stride"},
	}, &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", r.StatusCode)
	}
	if len(resp.Rows) != 1 {
		t.Errorf("rows = %d, want 1 after prefetcher dedupe", len(resp.Rows))
	}
}

// TestSweepInstructionBudgetCap: the job-count cap alone no longer bounds
// cost now that warmup/sim budgets ride in over HTTP — a modest grid of
// maxed-out budgets must be rejected, instantly, with a 400.
func TestSweepInstructionBudgetCap(t *testing.T) {
	ts := newTestServer(t)
	values := make([]float64, 50)
	for i := range values {
		values[i] = float64(100 + i)
	}
	r := postJSON(t, ts.URL+"/sweep", SweepRequest{
		Traces:      []string{"lbm-1274"},
		Prefetchers: []string{"Gaze"},
		Overrides:   &engine.Overrides{WarmupInstructions: 50_000_000, SimInstructions: 50_000_000},
		Axis:        &SweepAxis{Param: "dram_mtps", Values: values},
	}, nil)
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("100-job x 100M-instruction sweep: status = %d, want 400", r.StatusCode)
	}

	// /simulate has the same exposure via cores x budgets.
	r = postJSON(t, ts.URL+"/simulate", SimulateRequest{
		Trace: "lbm-1274", Prefetcher: "Gaze", Cores: 16,
		Overrides: &engine.Overrides{WarmupInstructions: 50_000_000, SimInstructions: 50_000_000},
	}, nil)
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("16-core x 100M-instruction simulate: status = %d, want 400", r.StatusCode)
	}
}

func TestSweepBySuite(t *testing.T) {
	ts := newTestServer(t)
	var resp SweepResponse
	r := postJSON(t, ts.URL+"/sweep", SweepRequest{
		Suite:       "cloud",
		Prefetchers: []string{"IP-stride"},
	}, &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", r.StatusCode)
	}
	if len(resp.Rows) == 0 {
		t.Error("suite sweep returned no rows")
	}
}

func TestSweepValidation(t *testing.T) {
	ts := newTestServer(t)
	for _, c := range []SweepRequest{
		{Prefetchers: []string{"Gaze"}},                             // no traces
		{Suite: "no-such-suite", Prefetchers: []string{"Gaze"}},     // bad suite
		{Traces: []string{"lbm-1274"}},                              // no prefetchers
		{Traces: []string{"lbm-1274"}, Prefetchers: []string{"xx"}}, // bad pf
		{Traces: []string{"lbm-1274"}, Prefetchers: hugeGrid()},     // unbounded parametric grid
	} {
		r := postJSON(t, ts.URL+"/sweep", c, nil)
		if r.StatusCode != http.StatusBadRequest {
			t.Errorf("%+v: status = %d, want 400", c, r.StatusCode)
		}
	}
}

// hugeGrid builds thousands of individually valid parametric prefetcher
// names — the shape a resource-exhaustion request would use.
func hugeGrid() []string {
	names := make([]string, 5000)
	for i := range names {
		names[i] = fmt.Sprintf("vGaze-%dB", i+1)
	}
	return names
}

func TestMetadataEndpoints(t *testing.T) {
	ts := newTestServer(t)

	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d", r.StatusCode)
	}

	r, err = http.Get(ts.URL + "/traces?suite=cloud")
	if err != nil {
		t.Fatal(err)
	}
	var traces []struct{ Name, Suite string }
	if err := json.NewDecoder(r.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(traces) == 0 || traces[0].Suite != "cloud" {
		t.Errorf("traces = %v", traces)
	}

	r, err = http.Get(ts.URL + "/traces?suite=no-such-suite")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown suite filter: status = %d, want 400", r.StatusCode)
	}

	r, err = http.Get(ts.URL + "/prefetchers")
	if err != nil {
		t.Fatal(err)
	}
	var pfs []string
	if err := json.NewDecoder(r.Body).Decode(&pfs); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(pfs) != 9 {
		t.Errorf("prefetchers = %v, want the 9 evaluated names", pfs)
	}
}

func TestStatsReflectsMemoization(t *testing.T) {
	ts := newTestServer(t)
	req := SimulateRequest{Trace: "lbm-1274", Prefetcher: "IP-stride"}
	postJSON(t, ts.URL+"/simulate", req, nil)
	postJSON(t, ts.URL+"/simulate", req, nil)

	r, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	// First request simulates baseline+target; the repeat is pure memo.
	if st.Counters.Simulated != 2 {
		t.Errorf("simulated = %d, want 2", st.Counters.Simulated)
	}
	if st.Counters.MemoHits < 2 {
		t.Errorf("memo hits = %d, want >= 2", st.Counters.MemoHits)
	}
}

// TestStatsStoreFields: store_entries must always be present — null
// without a store, 0 with an empty one — and store_schema_version always
// reported, so monitoring clients can tell the states apart.
func TestStatsStoreFields(t *testing.T) {
	getStats := func(ts *httptest.Server) map[string]json.RawMessage {
		t.Helper()
		r, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var raw map[string]json.RawMessage
		if err := json.NewDecoder(r.Body).Decode(&raw); err != nil {
			t.Fatal(err)
		}
		return raw
	}

	noStore := getStats(newTestServer(t))
	if got, ok := noStore["store_entries"]; !ok || string(got) != "null" {
		t.Errorf("no store: store_entries = %s, want null", got)
	}

	store, err := engine.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(engine.New(engine.Options{Scale: tiny, Store: store})).Handler())
	t.Cleanup(ts.Close)
	withStore := getStats(ts)
	if got, ok := withStore["store_entries"]; !ok || string(got) != "0" {
		t.Errorf("empty store: store_entries = %s, want 0", got)
	}
	for _, raw := range []map[string]json.RawMessage{noStore, withStore} {
		if got := string(raw["store_schema_version"]); got != fmt.Sprint(engine.StoreSchemaVersion) {
			t.Errorf("store_schema_version = %s, want %d", got, engine.StoreSchemaVersion)
		}
		for _, field := range []string{
			"trace_cache_entries", "trace_cache_hits", "trace_cache_misses", "trace_cache_bytes",
		} {
			if _, ok := raw[field]; !ok {
				t.Errorf("stats response missing %q", field)
			}
		}
	}
}

// TestStatsReportsTraceCache: after a simulation the trace cache must
// hold the simulated trace's slab and report a non-zero footprint. The
// cache is process-wide, so the test pins the delta against a snapshot
// rather than absolute counts.
func TestStatsReportsTraceCache(t *testing.T) {
	before := workload.TraceCacheStats()
	ts := newTestServer(t)
	postJSON(t, ts.URL+"/simulate", SimulateRequest{Trace: "wrf-196", Prefetcher: "none"}, nil)

	r, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.TraceCacheEntries < 1 {
		t.Errorf("trace_cache_entries = %d, want >= 1", st.TraceCacheEntries)
	}
	if st.TraceCacheBytes <= 0 {
		t.Errorf("trace_cache_bytes = %d, want > 0", st.TraceCacheBytes)
	}
	if st.TraceCacheMisses <= before.Misses && st.TraceCacheHits <= before.Hits {
		t.Error("simulating did not touch the trace cache at all")
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t)
	r, err := http.Get(ts.URL + "/simulate")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /simulate status = %d, want 405", r.StatusCode)
	}
}
