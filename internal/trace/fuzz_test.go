package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReader feeds arbitrary bytes through the GZTR decoder. The decoder
// must never panic, never loop past the input (each record consumes at
// least three bytes), and must terminate every stream with exactly one of
// the defined outcomes: a clean io.EOF, ErrTruncated for a stream that
// ends mid-record, or ErrCorrupt for structurally invalid bytes. CI runs
// this as a short smoke (-fuzztime=10s) on every push; the seed corpus
// covers the interesting boundaries so even the no-fuzzing `go test` run
// exercises them.
func FuzzReader(f *testing.F) {
	// Valid stream: header + three records.
	var valid bytes.Buffer
	if err := WriteAll(&valid, FormatGZTR, []Record{
		{PC: 0x400100, Addr: 0x10000040, NonMem: 3},
		{PC: 0x400104, Addr: 0x10000080, NonMem: 0, Kind: Store},
		{PC: 0x400100, Addr: 0xffffffffffffffff, NonMem: 65535},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()-1])                                                                           // torn varint tail
	f.Add(valid.Bytes()[:len(magic)+1])                                                                            // one dangling head byte
	f.Add(magic[:])                                                                                                // header only: clean empty trace
	f.Add(magic[:3])                                                                                               // truncated header
	f.Add([]byte("NOPE\x01"))                                                                                      // bad magic
	f.Add([]byte{})                                                                                                // empty input
	f.Add(append(append([]byte{}, magic[:]...), 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80)) // overlong varint

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := NewFileReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
				t.Fatalf("NewFileReader: untyped error %v", err)
			}
			return
		}
		// Each record consumes >= 3 bytes, so the loop is bounded by the
		// input length; exceeding it means the reader fabricated records.
		max := len(data)
		for n := 0; ; n++ {
			_, err := fr.Next()
			if err == nil {
				if n > max {
					t.Fatalf("decoded %d records from %d bytes", n, len(data))
				}
				continue
			}
			if err != io.EOF && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
				t.Fatalf("Next: untyped error %v", err)
			}
			break
		}
	})
}
