// Interval-sampled simulation telemetry (DESIGN.md §11). A run with
// Config.TelemetryInterval > 0 records, per core, one IntervalSample
// every N *measured* instructions: IPC, demand MPKI per cache level,
// prefetch issue/usefulness/timeliness, prefetch-queue occupancy and the
// DRAM row-hit rate over that window, plus a final prefetcher
// characterization snapshot through the prefetch.Introspector seam.
//
// Telemetry is derived data: collecting it never perturbs the simulation
// (sampling reads counters the run maintains anyway) and never enters a
// content address — the same job produces byte-identical results with
// telemetry on or off. The collection discipline is boundary-only: the
// steady-state step loop pays exactly one integer compare per record
// (against a MaxUint64 sentinel when disabled), and all sample storage is
// preallocated at construction so the measured window allocates nothing.
package sim

import (
	"math"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/prefetch"
)

// DefaultTelemetryInterval is the sampling interval services arm by
// default: fine enough to resolve phase behaviour inside the Standard
// scale's 400k-instruction measurement window, coarse enough that a
// timeline document stays a few KB.
const DefaultTelemetryInterval = 50_000

// telemetryDisabled is the boundary sentinel: a core whose telNext holds
// it never samples, so the disabled case costs one always-false compare.
const telemetryDisabled = math.MaxUint64

// IntervalSample is one per-core telemetry row covering the half-open
// measured-instruction window [Start, End). Counters are deltas over the
// window; PQOccupancy is instantaneous at the sample boundary. The rows
// of a core partition its measurement window exactly, so every counter
// column sums to the run's CoreResult value.
type IntervalSample struct {
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
	// IPC is instructions per cycle over the window.
	IPC float64 `json:"ipc"`
	// L1MPKI/L2MPKI/LLCMPKI are demand misses per kilo-instruction at
	// each level. LLC misses are the shared cache's, windowed by this
	// core's boundaries.
	L1MPKI  float64 `json:"l1_mpki"`
	L2MPKI  float64 `json:"l2_mpki"`
	LLCMPKI float64 `json:"llc_mpki"`
	// PrefetchesIssued counts requests injected into the memory system
	// (both fill levels); Useful/Late mirror the cache attribution.
	PrefetchesIssued uint64 `json:"prefetches_issued"`
	UsefulPrefetches uint64 `json:"useful_prefetches"`
	LatePrefetches   uint64 `json:"late_prefetches"`
	// Accuracy is useful/(useful+useless) over the window; Coverage is
	// covered/(covered+LLC demand misses) — the paper's metrics (§IV-A3)
	// per interval instead of per run.
	Accuracy float64 `json:"accuracy"`
	Coverage float64 `json:"coverage"`
	// PQOccupancy is the prefetch-queue depth at the boundary (both
	// queues when an L2 prefetcher is attached).
	PQOccupancy int `json:"pq_occupancy"`
	// DRAMRowHitRate is row hits over requests in the window.
	DRAMRowHitRate float64 `json:"dram_row_hit_rate"`
}

// CoreTelemetry is one core's timeline plus its prefetcher's final
// characterization snapshot (nil when the prefetcher does not implement
// prefetch.Introspector).
type CoreTelemetry struct {
	Prefetcher    string                  `json:"prefetcher"`
	Samples       []IntervalSample        `json:"samples"`
	Introspection *prefetch.Introspection `json:"introspection,omitempty"`
}

// Telemetry is a full run's collected timelines.
type Telemetry struct {
	// Interval is the sampling interval in measured instructions.
	Interval uint64          `json:"interval"`
	Cores    []CoreTelemetry `json:"cores"`
}

// telSnapshot is the counter baseline of a core's current interval: the
// values of everything a sample differences, captured at the previous
// boundary. The shared LLC/DRAM counters are snapshotted per core so
// each core's rows window the shared resources by its own boundaries.
type telSnapshot struct {
	instructions uint64
	cycles       float64
	l1, l2, llc  cache.Stats
	issuedL1     uint64
	issuedL2     uint64
	dram         dram.Stats
}

// telemetryPrealloc sizes a core's sample slice so boundary appends
// never allocate for any sane interval; pathological intervals (one
// sample per instruction on a huge budget) fall back to append growth,
// which still only happens at boundaries.
func telemetryPrealloc(cfg Config) int {
	n := cfg.SimInstructions/cfg.TelemetryInterval + 2
	if n > 1<<16 {
		n = 1 << 16
	}
	return int(n)
}

// telemetryRecord closes core c's current interval: it emits one row of
// counter deltas since the previous boundary and re-baselines. Called
// from Run at interval boundaries and once, post-FlushStats, when the
// core completes — so the final (possibly partial) row includes the
// end-of-run useless-prefetch sweep and the rows sum to the CoreResult.
func (s *System) telemetryRecord(c *coreState) {
	cur := telSnapshot{
		instructions: c.core.MeasuredInstructions(),
		cycles:       c.core.Cycles(),
		l1:           c.l1.Stats,
		l2:           c.l2.Stats,
		llc:          s.llc.Stats,
		issuedL1:     c.issuedL1,
		issuedL2:     c.issuedL2,
		dram:         s.dram.Stats,
	}
	prev := &c.telPrev
	row := IntervalSample{Start: prev.instructions, End: cur.instructions}
	dInstr := cur.instructions - prev.instructions
	if dc := cur.cycles - prev.cycles; dc > 0 {
		row.IPC = float64(dInstr) / dc
	}
	if dInstr > 0 {
		k := 1000 / float64(dInstr)
		row.L1MPKI = float64(cur.l1.DemandMisses-prev.l1.DemandMisses) * k
		row.L2MPKI = float64(cur.l2.DemandMisses-prev.l2.DemandMisses) * k
		row.LLCMPKI = float64(cur.llc.DemandMisses-prev.llc.DemandMisses) * k
	}
	row.PrefetchesIssued = (cur.issuedL1 + cur.issuedL2) - (prev.issuedL1 + prev.issuedL2)
	useful := (cur.l1.UsefulPrefetches + cur.l2.UsefulPrefetches) -
		(prev.l1.UsefulPrefetches + prev.l2.UsefulPrefetches)
	useless := (cur.l1.UselessPrefetches + cur.l2.UselessPrefetches) -
		(prev.l1.UselessPrefetches + prev.l2.UselessPrefetches)
	row.UsefulPrefetches = useful
	row.LatePrefetches = (cur.l1.LatePrefetches + cur.l2.LatePrefetches) -
		(prev.l1.LatePrefetches + prev.l2.LatePrefetches)
	if useful+useless > 0 {
		row.Accuracy = float64(useful) / float64(useful+useless)
	}
	covered := (cur.l1.CoveredMisses + cur.l2.CoveredMisses) -
		(prev.l1.CoveredMisses + prev.l2.CoveredMisses)
	llcMisses := cur.llc.DemandMisses - prev.llc.DemandMisses
	if covered+llcMisses > 0 {
		row.Coverage = float64(covered) / float64(covered+llcMisses)
	}
	row.PQOccupancy = c.pq.Len()
	if c.pq2 != nil {
		row.PQOccupancy += c.pq2.Len()
	}
	if dr := cur.dram.Requests - prev.dram.Requests; dr > 0 {
		row.DRAMRowHitRate = float64(cur.dram.RowHits-prev.dram.RowHits) / float64(dr)
	}
	c.telSamples = append(c.telSamples, row)
	c.telPrev = cur
}

// Telemetry assembles the collected timelines after Run, or nil when
// collection was disabled.
func (s *System) Telemetry() *Telemetry {
	if s.cfg.TelemetryInterval == 0 {
		return nil
	}
	t := &Telemetry{Interval: s.cfg.TelemetryInterval}
	for _, c := range s.cores {
		ct := CoreTelemetry{Prefetcher: c.pf.Name(), Samples: c.telSamples}
		if ct.Samples == nil {
			ct.Samples = []IntervalSample{}
		}
		if c.intro != nil {
			in := c.intro.Introspect()
			ct.Introspection = &in
		}
		t.Cores = append(t.Cores, ct)
	}
	return t
}

// ConcatSliceTelemetry combines the telemetry of K time slices of one
// single-core run into the timeline of the logical serial run, mirroring
// MergeSlices: a pure function of the parts in slice order, independent
// of how (or how parallel) the slices executed. Samples concatenate with
// instruction positions rebased onto the merged run's measured axis.
// Introspection event counters sum across slices; table occupancy is the
// last slice's (each slice trains a fresh prefetcher, so the final
// slice's tables are the closest analogue of end-of-run state). Nil
// parts (skipped slices) are ignored; all-nil input returns nil.
func ConcatSliceTelemetry(parts []*Telemetry) *Telemetry {
	merged := &Telemetry{}
	var (
		core  CoreTelemetry
		intro prefetch.Introspection
		hasIn bool
		off   uint64
	)
	for _, p := range parts {
		if p == nil || len(p.Cores) == 0 {
			continue
		}
		if merged.Interval == 0 {
			merged.Interval = p.Interval
		}
		c := p.Cores[0]
		if core.Prefetcher == "" {
			core.Prefetcher = c.Prefetcher
		}
		for _, sm := range c.Samples {
			sm.Start += off
			sm.End += off
			core.Samples = append(core.Samples, sm)
		}
		if n := len(core.Samples); n > 0 {
			off = core.Samples[n-1].End
		}
		if c.Introspection != nil {
			hasIn = true
			intro.PatternEntries = c.Introspection.PatternEntries
			intro.PatternCapacity = c.Introspection.PatternCapacity
			intro.StreamHits += c.Introspection.StreamHits
			intro.PatternHits += c.Introspection.PatternHits
			for i := range intro.ReuseHistogram {
				intro.ReuseHistogram[i] += c.Introspection.ReuseHistogram[i]
			}
		}
	}
	if merged.Interval == 0 {
		return nil
	}
	if core.Samples == nil {
		core.Samples = []IntervalSample{}
	}
	if hasIn {
		in := intro
		core.Introspection = &in
	}
	merged.Cores = []CoreTelemetry{core}
	return merged
}
