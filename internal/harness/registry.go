package harness

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Experiment regenerates one paper table or figure.
type Experiment struct {
	// ID is the short identifier ("fig6", "tab1", ...).
	ID string
	// Description summarizes what the paper artifact shows.
	Description string
	// Run produces the result tables.
	Run func(*Runner) []stats.Table
}

// Experiments returns the full registry, ordered by ID.
func Experiments() []Experiment {
	exps := []Experiment{
		{"fig1", "Characterization schemes: CloudSuite vs SPEC17 speedup + storage", Fig01},
		{"fig2", "Motivation: footprint structure and trigger-offset ambiguity", Fig02},
		{"fig4", "Number of initial accesses used for matching (1-4)", Fig04},
		{"fig6", "Single-core speedup per suite, nine prefetchers", Fig06},
		{"fig7", "Overall prefetch accuracy per suite", Fig07},
		{"fig8", "LLC coverage and late-prefetch fraction per suite", Fig08},
		{"fig9", "Characterization ablation: Offset vs Gaze-PHT vs full Gaze", Fig09},
		{"fig10", "Streaming-module ablation: PHT4SS vs SM4SS vs Gaze", Fig10},
		{"fig11", "Representative traces: vBerti vs PMP vs Gaze", Fig11},
		{"fig12", "GAP and QMM supplements", Fig12},
		{"fig13", "Multi-level prefetching combinations", Fig13},
		{"fig14", "Multi-core homogeneous and heterogeneous speedups", Fig14},
		{"fig15", "Four-core Table VI mixes, per-core speedups", Fig15},
		{"fig16", "Sensitivity to DRAM bandwidth, LLC and L2C sizes", Fig16},
		{"fig17", "Gaze region-size and PHT-size sensitivity", Fig17},
		{"fig18", "vGaze with large (huge-page) regions", Fig18},
		{"tab1", "Gaze storage breakdown", Table1},
		{"tab4", "Evaluated prefetcher configurations and storage", Table4},
		{"tab5", "Qualitative comparison grid", Table5},
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].ID < exps[j].ID })
	return exps
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q", id)
}
