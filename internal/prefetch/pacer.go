package prefetch

// Pacer is the uniform Prefetch Buffer used by the spatial-pattern-based
// baselines (SMS, Bingo, DSPatch, PMP): predicted patterns enter a bounded
// FIFO and drain a few requests per observed access, so a 64-block dense
// prediction does not flood the downstream prefetch queue in one burst.
// The paper fine-tunes one PB design and uses it uniformly across the
// spatial prefetchers (§IV-A2); Gaze's own PB lives in internal/core.
//
// Like Queue, storage is a fixed ring plus an open-addressed duplicate
// index, so pushing and draining never allocate and never shift.
type Pacer struct {
	buf      []Request // ring storage; len(buf) is the capacity
	head     int
	count    int
	resident RegionIndex
	perDrain int

	// Dropped counts requests lost to a full buffer.
	Dropped uint64
}

// NewPacer builds a pacer holding up to capacity requests and draining
// perDrain per Drain call.
func NewPacer(capacity, perDrain int) *Pacer {
	if capacity <= 0 || perDrain <= 0 {
		panic("prefetch: pacer capacity and drain must be positive")
	}
	return &Pacer{
		buf:      make([]Request, capacity),
		resident: NewRegionIndex(capacity),
		perDrain: perDrain,
	}
}

// Push buffers a request, merging duplicates (keeping the stronger level).
func (p *Pacer) Push(req Request) {
	if slot := p.resident.Lookup(req.VLine); slot >= 0 {
		if req.Level < p.buf[slot].Level {
			p.buf[slot].Level = req.Level
		}
		return
	}
	if p.count >= len(p.buf) {
		p.Dropped++
		return
	}
	tail := p.head + p.count
	if tail >= len(p.buf) {
		tail -= len(p.buf)
	}
	p.buf[tail] = req
	p.resident.Insert(req.VLine, tail)
	p.count++
}

// Drain forwards up to perDrain buffered requests to issue.
func (p *Pacer) Drain(issue IssueFunc) {
	n := p.perDrain
	if n > p.count {
		n = p.count
	}
	for i := 0; i < n; i++ {
		req := p.buf[p.head]
		p.resident.Remove(req.VLine)
		p.head++
		if p.head == len(p.buf) {
			p.head = 0
		}
		p.count--
		issue(req)
	}
}

// Len returns the number of buffered requests.
func (p *Pacer) Len() int { return p.count }
