// Cloud server: the Fig 1 / Fig 2 motivation on a CloudSuite-style
// workload. Server traces have many recurring footprint patterns whose
// trigger offsets collide, so offset-keyed characterization (PMP) merges
// unrelated patterns while Gaze's (trigger, second) key separates them.
//
//	go run ./examples/cloudserver
package main

import (
	"fmt"
	"log"

	"repro/internal/prefetchers"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	const name = "cassandra-p0c0"

	// First, show the workload property that defeats coarse keying.
	recs, err := workload.Generate(name, 150_000)
	if err != nil {
		log.Fatal(err)
	}
	st := workload.AnalyzeFootprints(recs)
	fmt.Printf("workload %s: %d regions, mean footprint density %.1f blocks\n",
		name, st.Regions, st.MeanDensity)
	fmt.Printf("trigger ambiguity: %.1f distinct footprints per trigger offset\n", st.TriggerAmbiguity)
	fmt.Println("(every trigger offset maps to many different patterns — the")
	fmt.Println(" situation of Fig 2, where only the second access disambiguates)")
	fmt.Println()

	// Then compare the offset-keyed and temporally-keyed prefetchers.
	fmt.Printf("%-10s %9s %10s %10s %10s\n", "prefetcher", "speedup", "accuracy", "coverage", "issued")
	base := run(name, "none")
	for _, pf := range []string{"Offset", "PMP", "DSPatch", "SMS", "Bingo", "Gaze"} {
		res := run(name, pf)
		fmt.Printf("%-10s %8.3fx %9.1f%% %9.1f%% %10d\n",
			pf, res.MeanIPC()/base.MeanIPC(),
			100*res.Accuracy(), 100*res.Coverage(), res.IssuedPrefetches())
	}
	fmt.Println()
	fmt.Println("Coarse context keys (Offset, PMP per-offset merging, DSPatch per-PC)")
	fmt.Println("collide on server patterns; the footprint-internal temporal key")
	fmt.Println("(trigger offset indexed, second offset tagged) stays accurate at a")
	fmt.Println("fraction of Bingo/SMS's >100KB storage.")
}

func run(name, pf string) sim.Result {
	cfg := sim.DefaultConfig(1)
	cfg.WarmupInstructions = 100_000
	cfg.SimInstructions = 400_000
	recs, err := workload.Generate(name, 150_000)
	if err != nil {
		log.Fatal(err)
	}
	p, err := prefetchers.New(pf)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := sim.New(cfg, []sim.CoreSpec{{
		Trace:        trace.NewLooping(trace.NewSliceReader(recs)),
		L1Prefetcher: p,
	}})
	if err != nil {
		log.Fatal(err)
	}
	return sys.Run()
}
